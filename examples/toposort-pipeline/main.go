// TopoSort on a dense layered DAG, comparing locking-based and pipelined
// message generation on the simulated MIC — the contention experiment of
// Figure 5(e): a large number of messages converge on single vertices, so
// per-column locking collapses and the worker/mover pipeline wins.
package main

import (
	"fmt"
	"log"

	"hetgraph"
)

func main() {
	log.SetFlags(0)

	g, err := hetgraph.GenerateDAG(hetgraph.DefaultDAG(2000, 400000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DAG:", hetgraph.Stats(g))

	for _, scheme := range []hetgraph.Scheme{hetgraph.SchemeLocking, hetgraph.SchemePipelined} {
		app := hetgraph.NewTopoSort()
		res, err := hetgraph.Run(app, g, hetgraph.Options{
			Dev:        hetgraph.MIC(),
			Scheme:     scheme,
			Vectorized: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !app.Ordered() {
			log.Fatal("not a DAG: some vertices unordered")
		}
		fmt.Printf("MIC %-5v: %3d supersteps, sim %8.3f ms (generate %8.3f), wall %.3fs\n",
			scheme, res.Iterations, 1e3*res.SimSeconds, 1e3*res.Phases.Generate, res.WallSeconds)
		if scheme == hetgraph.SchemeLocking {
			fmt.Printf("          expected lock conflicts: %.0f (hot columns drive these)\n",
				res.Counters.ConflictExpected)
		}
	}
}
