// Partition explorer: the Figure-6 experiment on one graph — compare
// continuous, round-robin, and hybrid CPU-MIC partitioning on balance,
// cross edges, and resulting heterogeneous SSSP time.
package main

import (
	"fmt"
	"log"

	"hetgraph"
)

func main() {
	log.SetFlags(0)

	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(30000))
	if err != nil {
		log.Fatal(err)
	}
	g, err = hetgraph.AddRandomWeights(g, 0, 10, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", hetgraph.Stats(g))

	ratio := hetgraph.Ratio{A: 1, B: 1}
	methods := []struct {
		name   string
		method hetgraph.PartitionMethod
	}{
		{"continuous", hetgraph.PartitionContinuous},
		{"roundrobin", hetgraph.PartitionRoundRobin},
		{"hybrid", hetgraph.PartitionHybrid},
	}
	fmt.Printf("%-12s %12s %14s %12s %12s %12s\n",
		"method", "cross edges", "workload CPU%", "exec(ms)", "comm(ms)", "total(ms)")
	for _, m := range methods {
		assign, err := hetgraph.Partition(m.method, g, ratio)
		if err != nil {
			log.Fatal(err)
		}
		cross := hetgraph.CrossEdges(g, assign)
		var cpuEdges, total int64
		for v := 0; v < g.NumVertices(); v++ {
			d := int64(g.OutDegree(hetgraph.VertexID(v)))
			total += d
			if assign[v] == 0 {
				cpuEdges += d
			}
		}
		app := hetgraph.NewSSSP(0)
		res, err := hetgraph.RunHetero(app, g, assign,
			hetgraph.Options{Dev: hetgraph.CPU(), Scheme: hetgraph.SchemeLocking, Vectorized: true},
			hetgraph.Options{Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12d %13.1f%% %12.3f %12.3f %12.3f\n",
			m.name, cross, 100*float64(cpuEdges)/float64(total),
			1e3*res.ExecSeconds, 1e3*res.CommSeconds, 1e3*res.SimSeconds)
	}
	fmt.Println("\nhybrid keeps the workload split near the requested ratio like round-robin,")
	fmt.Println("but cuts far fewer edges, so its communication time is the lowest (Fig. 6).")
}
