// Quickstart: run the paper's running example — SSSP (Listing 1) — on a
// small generated graph on the simulated MIC, then verify a few distances
// and print the runtime's phase breakdown.
package main

import (
	"fmt"
	"log"

	"hetgraph"
)

func main() {
	log.SetFlags(0)

	// A 10K-vertex Pokec-like power-law graph with random positive weights.
	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(10000))
	if err != nil {
		log.Fatal(err)
	}
	g, err = hetgraph.AddRandomWeights(g, 0, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", hetgraph.Stats(g))

	// Single-source shortest paths from vertex 0, on the modeled Xeon Phi,
	// with pipelined message generation and SIMD message reduction.
	app := hetgraph.NewSSSP(0)
	res, err := hetgraph.Run(app, g, hetgraph.Options{
		Dev:        hetgraph.MIC(),
		Scheme:     hetgraph.SchemePipelined,
		Vectorized: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged=%v after %d iterations\n", res.Converged, res.Iterations)
	fmt.Printf("simulated MIC time: %.3f ms (generate %.3f, process %.3f, update %.3f)\n",
		1e3*res.SimSeconds, 1e3*res.Phases.Generate, 1e3*res.Phases.Process, 1e3*res.Phases.Update)
	fmt.Printf("messages: %d across %d SIMD rows (lane occupancy %.1f%%)\n",
		res.Counters.Messages, res.Counters.VecRows,
		100*float64(res.Counters.ReducedMessages)/float64(res.Counters.VecRows*16))
	for _, v := range []hetgraph.VertexID{1, 100, 9999} {
		fmt.Printf("dist[%d] = %.3f\n", v, app.Dist[v])
	}
}
