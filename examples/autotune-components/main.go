// Auto-tuned connected components: demonstrates the paper's future-work
// features implemented in this reproduction — auto-tuning the worker/mover
// split and the CPU:MIC partitioning ratio — plus the per-superstep trace,
// on the ConnectedComponents extension app.
package main

import (
	"fmt"
	"log"

	"hetgraph"
)

func main() {
	log.SetFlags(0)

	g, err := hetgraph.GenerateCommunity(hetgraph.DefaultCommunity(12000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", hetgraph.Stats(g))

	newApp := func() hetgraph.AppF32 { return hetgraph.NewConnectedComponents() }

	// 1. Tune the pipelined worker/mover split on the MIC.
	split, err := hetgraph.TuneWorkerMoverSplit(newApp, g, hetgraph.MIC(), hetgraph.TuneBudget{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned MIC split: %d workers + %d movers (probe %.3f ms; paper's default is 180+60)\n",
		split.Workers, split.Movers, 1e3*split.ProbeSimSeconds)
	for _, p := range split.Probes {
		fmt.Printf("  probe %3d+%-3d -> %.3f ms\n", p.Workers, p.Movers, 1e3*p.SimSeconds)
	}

	// 2. Tune the CPU:MIC partitioning ratio.
	optCPU := hetgraph.Options{Dev: hetgraph.CPU(), Scheme: hetgraph.SchemeLocking, Vectorized: true}
	optMIC := hetgraph.Options{
		Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true,
		Workers: split.Workers, Movers: split.Movers,
	}
	ratio, err := hetgraph.TunePartitionRatio(newApp, g, hetgraph.PartitionHybrid, optCPU, optMIC, hetgraph.TuneBudget{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned CPU:MIC ratio: %d:%d (probe %.3f ms)\n", ratio.Ratio.A, ratio.Ratio.B, 1e3*ratio.ProbeSimSeconds)

	// 3. Full heterogeneous run with the tuned configuration and a trace.
	assign, err := hetgraph.Partition(hetgraph.PartitionHybrid, g, ratio.Ratio)
	if err != nil {
		log.Fatal(err)
	}
	rec := hetgraph.NewTraceRecorder()
	optCPU.Trace, optMIC.Trace = rec, rec
	app := hetgraph.NewConnectedComponents()
	res, err := hetgraph.RunHetero(app, g, assign, optCPU, optMIC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconnected components: %d components in %d supersteps, sim %.3f ms (exec %.3f + comm %.3f)\n",
		app.NumComponents(), res.Iterations, 1e3*res.SimSeconds, 1e3*res.ExecSeconds, 1e3*res.CommSeconds)

	ok, detail := hetgraph.VerifyAgainstSequential("cc", app, g, 0, 0)
	fmt.Println("verify:", ok, "—", detail)

	fmt.Println("\ntrace summary:")
	fmt.Print(hetgraph.FormatTraceSummary(rec.Summarize()))
}
