// PageRank on a Pokec-like social graph, comparing single-device execution
// with heterogeneous CPU-MIC execution under hybrid partitioning — the
// configuration of Figure 5(a) in the paper.
package main

import (
	"fmt"
	"log"

	"hetgraph"
)

const iterations = 10

func main() {
	log.SetFlags(0)

	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(40000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", hetgraph.Stats(g))

	// Single device runs: locking on the CPU, pipelining on the MIC (the
	// paper's best configurations).
	cpuApp := hetgraph.NewPageRank()
	cpuRes, err := hetgraph.Run(cpuApp, g, hetgraph.Options{
		Dev: hetgraph.CPU(), Scheme: hetgraph.SchemeLocking, Vectorized: true,
		MaxIterations: iterations,
	})
	if err != nil {
		log.Fatal(err)
	}
	micApp := hetgraph.NewPageRank()
	micRes, err := hetgraph.Run(micApp, g, hetgraph.Options{
		Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true,
		MaxIterations: iterations,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPU  (lock): sim %.3f ms\n", 1e3*cpuRes.SimSeconds)
	fmt.Printf("MIC  (pipe): sim %.3f ms\n", 1e3*micRes.SimSeconds)

	// Heterogeneous run at the paper's best PageRank ratio 3:5, with the
	// hybrid (Metis-blocked, round-robin dealt) partitioning.
	assign, err := hetgraph.Partition(hetgraph.PartitionHybrid, g, hetgraph.Ratio{A: 3, B: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid partitioning 3:5 cuts %d of %d edges\n", hetgraph.CrossEdges(g, assign), g.NumEdges())

	hetApp := hetgraph.NewPageRank()
	hetRes, err := hetgraph.RunHetero(hetApp, g, assign,
		hetgraph.Options{Dev: hetgraph.CPU(), Scheme: hetgraph.SchemeLocking, Vectorized: true, MaxIterations: iterations},
		hetgraph.Options{Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true, MaxIterations: iterations},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPU-MIC    : sim %.3f ms (exec %.3f + comm %.3f)\n",
		1e3*hetRes.SimSeconds, 1e3*hetRes.ExecSeconds, 1e3*hetRes.CommSeconds)

	best := cpuRes.SimSeconds
	if micRes.SimSeconds < best {
		best = micRes.SimSeconds
	}
	fmt.Printf("heterogeneous speedup over best single device: %.2fx\n", best/hetRes.SimSeconds)

	// Sanity: the three runs agree on the ranking values.
	for v := 0; v < 3; v++ {
		fmt.Printf("rank[%d]: cpu %.5f  mic %.5f  cpu-mic %.5f\n",
			v, cpuApp.Ranks[v], micApp.Ranks[v], hetApp.Ranks[v])
	}
}
