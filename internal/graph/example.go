package graph

// PaperExample returns the 16-vertex directed graph of Figure 1 in the
// paper, built from the exact CSR arrays shown there. It is the fixture for
// the CSB construction and Table-I message tests.
//
//	offsets: 0 2 5 8 8 11 12 13 14 15 19 20 22 24 26 27 28
//	edges:   4 5 | 0 2 5 | 3 5 7 | - | 5 8 9 | 2 | 2 | 2 | 0 |
//	         4 5 6 8 | 11 | 6 9 | 8 13 | 9 12 | 10 | 7
func PaperExample() *CSR {
	g := &CSR{
		Offsets: []int64{0, 2, 5, 8, 8, 11, 12, 13, 14, 15, 19, 20, 22, 24, 26, 27, 28},
		Edges: []VertexID{
			4, 5, // 0
			0, 2, 5, // 1
			3, 5, 7, // 2
			// 3: none
			5, 8, 9, // 4
			2,          // 5
			2,          // 6
			2,          // 7
			0,          // 8
			4, 5, 6, 8, // 9
			11,   // 10
			6, 9, // 11
			8, 13, // 12
			9, 12, // 13
			10, // 14
			7,  // 15
		},
	}
	if err := g.Validate(); err != nil {
		panic("graph: paper example invalid: " + err.Error())
	}
	return g
}

// PaperExampleSortedByInDegree is the descending in-degree vertex order of
// the Figure-3 table, used to pin the CSB construction against the paper.
var PaperExampleSortedByInDegree = []VertexID{5, 2, 8, 9, 0, 4, 6, 7, 3, 10, 11, 12, 13, 1, 14, 15}
