package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes a graph's degree structure. The partitioning experiments
// (Fig. 6) depend on skew: power-law graphs concentrate high out-degree
// vertices, which is what breaks continuous partitioning.
type Stats struct {
	NumVertices int
	NumEdges    int64
	MaxOut      int32
	MaxIn       int32
	MeanDegree  float64
	// GiniOut is the Gini coefficient of the out-degree distribution:
	// 0 = perfectly uniform, →1 = extremely skewed.
	GiniOut float64
	// FrontLoad is the fraction of all edges owned by the first half of the
	// vertex ID range; >0.5 means high-degree vertices cluster at the front
	// (the Pokec property the paper calls out).
	FrontLoad float64
}

// ComputeStats scans g once per metric and returns its Stats.
func ComputeStats(g *CSR) Stats {
	n := g.NumVertices()
	s := Stats{NumVertices: n, NumEdges: g.NumEdges()}
	if n == 0 {
		return s
	}
	s.MeanDegree = float64(s.NumEdges) / float64(n)
	out := g.OutDegrees()
	in := g.InDegrees()
	for v := 0; v < n; v++ {
		if out[v] > s.MaxOut {
			s.MaxOut = out[v]
		}
		if in[v] > s.MaxIn {
			s.MaxIn = in[v]
		}
	}
	var front int64
	for v := 0; v < n/2; v++ {
		front += int64(out[v])
	}
	if s.NumEdges > 0 {
		s.FrontLoad = float64(front) / float64(s.NumEdges)
	}
	s.GiniOut = gini(out)
	return s
}

// gini computes the Gini coefficient of a non-negative integer distribution.
func gini(deg []int32) float64 {
	n := len(deg)
	if n == 0 {
		return 0
	}
	sorted := make([]int32, n)
	copy(sorted, deg)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var cum, weighted float64
	for i, d := range sorted {
		cum += float64(d)
		weighted += float64(d) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("V=%d E=%d maxOut=%d maxIn=%d mean=%.2f gini=%.3f frontLoad=%.3f",
		s.NumVertices, s.NumEdges, s.MaxOut, s.MaxIn, s.MeanDegree, s.GiniOut, s.FrontLoad)
}

// DegreeHistogram buckets a degree distribution into power-of-two bins:
// bin i counts vertices with degree in [2^(i-1), 2^i) (bin 0 counts degree
// 0). The log-log shape of this histogram is the standard power-law
// diagnostic.
func DegreeHistogram(deg []int32) []int64 {
	var bins []int64
	grow := func(i int) {
		for len(bins) <= i {
			bins = append(bins, 0)
		}
	}
	for _, d := range deg {
		i := 0
		for v := d; v > 0; v >>= 1 {
			i++
		}
		grow(i)
		bins[i]++
	}
	return bins
}

// Percentile returns the p-th percentile (0..100) of a degree distribution
// using nearest-rank.
func Percentile(deg []int32, p float64) int32 {
	if len(deg) == 0 {
		return 0
	}
	sorted := make([]int32, len(deg))
	copy(sorted, deg)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
