package graph

import (
	"bytes"
	"reflect"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := PaperExample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Offsets, g2.Offsets) || !reflect.DeepEqual(g.Edges, g2.Edges) {
		t.Fatal("binary round trip changed graph")
	}
	if g2.Weighted() {
		t.Fatal("unweighted graph gained weights")
	}
}

func TestBinaryRoundTripWeighted(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(1, 2, -2.25)
	g, _ := b.Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Weights, g2.Weights) {
		t.Fatalf("weights changed: %v vs %v", g.Weights, g2.Weights)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := PaperExample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { c := clone(b); c[0] = 'X'; return c }},
		{"unknown flags", func(b []byte) []byte { c := clone(b); c[4] = 0xFF; return c }},
		{"truncated", func(b []byte) []byte { return clone(b)[:len(b)/2] }},
		{"huge vertex count", func(b []byte) []byte {
			c := clone(b)
			for i := 8; i < 16; i++ {
				c[i] = 0xFF
			}
			return c
		}},
		{"edge out of range", func(b []byte) []byte {
			c := clone(b)
			// First edge entry lives after 4+4+8+8 + 17*8 bytes of offsets.
			off := 24 + 17*8
			c[off] = 0xFF
			c[off+1] = 0xFF
			c[off+2] = 0xFF
			c[off+3] = 0x7F
			return c
		}},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		if _, err := ReadBinary(bytes.NewReader(tc.mutate(good))); err == nil {
			t.Errorf("%s: ReadBinary succeeded on corrupt input", tc.name)
		}
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestBinaryFileAndAutoDetect(t *testing.T) {
	dir := t.TempDir()
	g := PaperExample()
	binPath := dir + "/g.bin"
	txtPath := dir + "/g.adj"
	if err := SaveBinaryFile(binPath, g); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(txtPath, g); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{binPath, txtPath} {
		got, err := LoadAuto(path)
		if err != nil {
			t.Fatalf("LoadAuto(%s): %v", path, err)
		}
		if got.NumEdges() != g.NumEdges() {
			t.Fatalf("LoadAuto(%s) lost edges", path)
		}
	}
	if _, err := LoadBinaryFile(txtPath); err == nil {
		t.Fatal("binary loader accepted text file")
	}
	if _, err := LoadAuto(dir + "/missing"); err == nil {
		t.Fatal("LoadAuto of missing file succeeded")
	}
	if _, err := LoadBinaryFile(dir + "/missing"); err == nil {
		t.Fatal("LoadBinaryFile of missing file succeeded")
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := &CSR{Offsets: []int64{0}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 0 || g2.NumEdges() != 0 {
		t.Fatal("empty graph changed")
	}
}
