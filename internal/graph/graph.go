// Package graph provides the Compressed Sparse Row (CSR) graph substrate the
// framework operates on, together with builders, loaders, transposition, and
// validation. It mirrors Section II-B of the paper: vertices are dense
// integer IDs, the out-edge structure is an offsets array with a trailing
// dummy vertex whose offset equals the edge count, and edge destinations (and
// optional float32 weights) are stored contiguously.
package graph

import (
	"errors"
	"fmt"
)

// VertexID indexes a vertex. Graphs in this reproduction are bounded well
// below 2^31 vertices, so 32-bit IDs keep the edge array compact, which is
// the same consideration the paper's memory-constrained MIC forces.
type VertexID = int32

// CSR is a directed graph in Compressed Sparse Row form. Offsets has
// NumVertices+1 entries ("dummy vertex, offset = num_edges" in Fig. 1);
// the out-edges of vertex v are Edges[Offsets[v]:Offsets[v+1]], and
// Weights, when non-nil, is parallel to Edges.
type CSR struct {
	Offsets []int64
	Edges   []VertexID
	Weights []float32
}

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the edge count.
func (g *CSR) NumEdges() int64 {
	if len(g.Offsets) == 0 {
		return 0
	}
	return g.Offsets[len(g.Offsets)-1]
}

// OutDegree returns the out-degree of v.
func (g *CSR) OutDegree(v VertexID) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the out-neighbor slice of v, aliasing the edge array.
func (g *CSR) Neighbors(v VertexID) []VertexID {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// EdgeWeights returns the weights of v's out-edges, parallel to Neighbors(v).
// It returns nil for unweighted graphs.
func (g *CSR) EdgeWeights(v VertexID) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// Weighted reports whether the graph carries edge weights.
func (g *CSR) Weighted() bool { return g.Weights != nil }

// InDegrees computes the in-degree of every vertex in one pass over the
// edge array. The CSB construction sorts by these.
func (g *CSR) InDegrees() []int32 {
	deg := make([]int32, g.NumVertices())
	for _, d := range g.Edges {
		deg[d]++
	}
	return deg
}

// OutDegrees returns the out-degree of every vertex.
func (g *CSR) OutDegrees() []int32 {
	n := g.NumVertices()
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Offsets[v+1] - g.Offsets[v])
	}
	return deg
}

// Transpose returns the reverse graph (CSC of g): an edge u->v in g becomes
// v->u. Weights follow their edges. Within each reversed adjacency list the
// sources appear in ascending order, making the result deterministic.
func (g *CSR) Transpose() *CSR {
	n := g.NumVertices()
	t := &CSR{
		Offsets: make([]int64, n+1),
		Edges:   make([]VertexID, len(g.Edges)),
	}
	if g.Weights != nil {
		t.Weights = make([]float32, len(g.Weights))
	}
	// Counting sort by destination.
	for _, d := range g.Edges {
		t.Offsets[d+1]++
	}
	for v := 0; v < n; v++ {
		t.Offsets[v+1] += t.Offsets[v]
	}
	cursor := make([]int64, n)
	copy(cursor, t.Offsets[:n])
	for u := 0; u < n; u++ {
		for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
			d := g.Edges[i]
			p := cursor[d]
			cursor[d]++
			t.Edges[p] = VertexID(u)
			if t.Weights != nil {
				t.Weights[p] = g.Weights[i]
			}
		}
	}
	return t
}

// ErrInvalid is wrapped by all Validate failures.
var ErrInvalid = errors.New("graph: invalid CSR")

// Validate checks the CSR structural invariants: a non-empty offsets array
// starting at 0, monotonically non-decreasing, ending at len(Edges); every
// edge destination in range; weights, if present, parallel to edges.
func (g *CSR) Validate() error {
	if len(g.Offsets) == 0 {
		return fmt.Errorf("%w: empty offsets", ErrInvalid)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("%w: offsets[0] = %d, want 0", ErrInvalid, g.Offsets[0])
	}
	for v := 1; v < len(g.Offsets); v++ {
		if g.Offsets[v] < g.Offsets[v-1] {
			return fmt.Errorf("%w: offsets not monotone at %d", ErrInvalid, v)
		}
	}
	if g.Offsets[len(g.Offsets)-1] != int64(len(g.Edges)) {
		return fmt.Errorf("%w: offsets end %d != %d edges", ErrInvalid, g.Offsets[len(g.Offsets)-1], len(g.Edges))
	}
	n := VertexID(g.NumVertices())
	for i, d := range g.Edges {
		if d < 0 || d >= n {
			return fmt.Errorf("%w: edge %d destination %d out of range [0,%d)", ErrInvalid, i, d, n)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("%w: %d weights for %d edges", ErrInvalid, len(g.Weights), len(g.Edges))
	}
	return nil
}

// IsDAG reports whether the graph has no directed cycle, using Kahn's
// algorithm (TopoSort's input contract).
func (g *CSR) IsDAG() bool {
	n := g.NumVertices()
	indeg := g.InDegrees()
	queue := make([]VertexID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, d := range g.Neighbors(u) {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	return seen == n
}
