package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Adjacency-list text format (the paper's "graph file stored in an adjacency
// list format"):
//
//	# comment lines and blank lines are ignored
//	<numVertices> <numEdges> [weighted]
//	<src> <dst1>[:w1] <dst2>[:w2] ...
//
// Vertices with no out-edges may be omitted. The header edge count is
// checked against the body.

// WriteAdjacency writes g in the adjacency-list text format.
func WriteAdjacency(w io.Writer, g *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	header := fmt.Sprintf("%d %d", g.NumVertices(), g.NumEdges())
	if g.Weighted() {
		header += " weighted"
	}
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		nb := g.Neighbors(VertexID(v))
		if len(nb) == 0 {
			continue
		}
		bw.WriteString(strconv.Itoa(v))
		ws := g.EdgeWeights(VertexID(v))
		for i, d := range nb {
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(int(d)))
			if ws != nil {
				bw.WriteByte(':')
				bw.WriteString(strconv.FormatFloat(float64(ws[i]), 'g', -1, 32))
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// corruptAdj builds a line-attributed adjacency CorruptInputError.
func corruptAdj(line int, format string, args ...any) error {
	return &CorruptInputError{Format: "adjacency", Line: line, Reason: fmt.Sprintf(format, args...)}
}

// ReadAdjacency parses the adjacency-list text format into a validated CSR.
// Malformed input — a bad header, negative or overflowing counts, an edge
// endpoint outside the declared vertex range, a body that contradicts the
// header's edge count — is rejected with a line-attributed
// *CorruptInputError rather than building a bad CSR.
func ReadAdjacency(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var (
		b        *Builder
		declared int64
		numV     int64
		lineNo   int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if b == nil {
			if len(fields) < 2 || len(fields) > 3 {
				return nil, corruptAdj(lineNo, "bad header %q", line)
			}
			n, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil || n < 0 {
				return nil, corruptAdj(lineNo, "bad vertex count %q", fields[0])
			}
			if n >= maxBinaryVertices {
				return nil, corruptAdj(lineNo, "vertex count %d exceeds limit %d", n, int64(maxBinaryVertices))
			}
			m, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || m < 0 {
				return nil, corruptAdj(lineNo, "bad edge count %q", fields[1])
			}
			if m >= maxBinaryEdges {
				return nil, corruptAdj(lineNo, "edge count %d exceeds limit %d", m, int64(maxBinaryEdges))
			}
			weighted := false
			if len(fields) == 3 {
				if fields[2] != "weighted" {
					return nil, corruptAdj(lineNo, "bad header flag %q", fields[2])
				}
				weighted = true
			}
			b = NewBuilder(int(n), weighted)
			declared = m
			numV = n
			continue
		}
		src64, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, corruptAdj(lineNo, "bad source %q", fields[0])
		}
		if src64 < 0 || src64 >= numV {
			return nil, corruptAdj(lineNo, "source %d out of range [0,%d)", src64, numV)
		}
		src := VertexID(src64)
		for _, tok := range fields[1:] {
			dstTok, wTok, hasW := strings.Cut(tok, ":")
			dst64, err := strconv.ParseInt(dstTok, 10, 32)
			if err != nil {
				return nil, corruptAdj(lineNo, "bad destination %q", tok)
			}
			if dst64 < 0 || dst64 >= numV {
				return nil, corruptAdj(lineNo, "destination %d out of range [0,%d)", dst64, numV)
			}
			var w float32
			if hasW {
				wf, err := strconv.ParseFloat(wTok, 32)
				if err != nil {
					return nil, corruptAdj(lineNo, "bad weight %q", tok)
				}
				w = float32(wf)
			}
			b.AddEdge(src, VertexID(dst64), w)
		}
		// Reject a body that overruns its declared edge count as soon as it
		// does, instead of accumulating an unbounded edge list first.
		if int64(b.NumEdges()) > declared {
			return nil, corruptAdj(lineNo, "body exceeds declared %d edges", declared)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, &CorruptInputError{Format: "adjacency", Reason: "empty input"}
	}
	if int64(b.NumEdges()) != declared {
		return nil, &CorruptInputError{Format: "adjacency",
			Reason: fmt.Sprintf("header declares %d edges, body has %d", declared, b.NumEdges())}
	}
	return b.Build()
}

// LoadFile reads an adjacency-list graph file from disk.
func LoadFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAdjacency(f)
}

// SaveFile writes g to disk in the adjacency-list format.
func SaveFile(path string, g *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteAdjacency(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
