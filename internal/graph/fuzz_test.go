package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// textHeaderVertexCount cheaply extracts the vertex count a text input's
// header declares, or 0 if there is no parsable header.
func textHeaderVertexCount(b []byte) int64 {
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return n
	}
	return 0
}

// FuzzLoadGraph feeds arbitrary bytes to both graph parsers. Property: no
// panic, and whatever a parser accepts must be a CSR that passes its own
// validation — corrupt input either errors out or was not actually corrupt.
func FuzzLoadGraph(f *testing.F) {
	// Valid text corpus.
	f.Add([]byte("3 3\n0 1 2\n1 2\n"))
	f.Add([]byte("2 1 weighted\n0 1:2.5\n"))
	f.Add([]byte("# comment\n1 0\n"))
	// Valid binary corpus.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, PaperExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// Hostile seeds: truncations and lying headers.
	f.Add(buf.Bytes()[:9])
	f.Add([]byte("HGB1"))
	f.Add([]byte("99999 1\n0 1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		// A tiny text header may legitimately declare millions of isolated
		// vertices, and the resulting CSR really is gigabytes — correct, but
		// useless to mutate toward. Bound declared n to keep throughput up.
		if hdr := textHeaderVertexCount(b); hdr > 1<<17 {
			t.Skip("declared vertex count too large for fuzzing")
		}
		if g, err := ReadAdjacency(strings.NewReader(string(b))); err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("text parser accepted an invalid CSR: %v", verr)
			}
		}
		if g, err := ReadBinary(bytes.NewReader(b)); err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("binary parser accepted an invalid CSR: %v", verr)
			}
		}
	})
}
