package graph

import "fmt"

// CorruptInputError reports malformed graph input — a bad header, an
// out-of-range edge endpoint, a truncated binary stream. Loaders return it
// (possibly wrapped) instead of silently building a bad CSR or panicking,
// so callers can errors.As against it to distinguish corrupt data files
// from I/O failures.
type CorruptInputError struct {
	// Format is the input format: "adjacency" or "binary".
	Format string
	// Line is the 1-based input line for text formats (0 when the format
	// has no lines or the error is not line-attributable).
	Line int
	// Reason says what is wrong.
	Reason string
	// Err is the underlying cause, when one exists.
	Err error
}

func (e *CorruptInputError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("graph: corrupt %s input: line %d: %s", e.Format, e.Line, e.Reason)
	}
	return fmt.Sprintf("graph: corrupt %s input: %s", e.Format, e.Reason)
}

func (e *CorruptInputError) Unwrap() error { return e.Err }
