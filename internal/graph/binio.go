package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary CSR format, for graphs too large for the text adjacency format to
// load quickly (the text parser spends most of its time in integer
// parsing; the binary loader is a few sequential reads).
//
// Layout (little endian):
//
//	magic   [4]byte  "HGB1"
//	flags   uint32   bit 0: weighted
//	n       uint64   vertex count
//	m       uint64   edge count
//	offsets [n+1]int64
//	edges   [m]int32
//	weights [m]float32   (present iff weighted)

var binMagic = [4]byte{'H', 'G', 'B', '1'}

const binFlagWeighted = 1

// WriteBinary writes g in the binary CSR format.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Weighted() {
		flags |= binFlagWeighted
	}
	if err := binary.Write(bw, binary.LittleEndian, flags); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumVertices())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumEdges())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Edges); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxBinaryVertices/Edges bound allocations against corrupt headers.
const (
	maxBinaryVertices = 1 << 31
	maxBinaryEdges    = 1 << 35
)

// ReadBinary parses the binary CSR format and validates the result.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q (want %q)", magic, binMagic)
	}
	var flags uint32
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	if flags&^uint32(binFlagWeighted) != 0 {
		return nil, fmt.Errorf("graph: unknown flags %#x", flags)
	}
	var n, m uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n >= maxBinaryVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds limit", n)
	}
	if m >= maxBinaryEdges {
		return nil, fmt.Errorf("graph: edge count %d exceeds limit", m)
	}
	g := &CSR{
		Offsets: make([]int64, n+1),
		Edges:   make([]VertexID, m),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, fmt.Errorf("graph: offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Edges); err != nil {
		return nil, fmt.Errorf("graph: edges: %w", err)
	}
	if flags&binFlagWeighted != 0 {
		g.Weights = make([]float32, m)
		if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
			return nil, fmt.Errorf("graph: weights: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveBinaryFile writes g to path in the binary format.
func SaveBinaryFile(path string, g *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile reads a binary-format graph from path.
func LoadBinaryFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// LoadAuto loads a graph file in either format, detecting the binary magic.
func LoadAuto(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if magic == binMagic {
		return ReadBinary(f)
	}
	return ReadAdjacency(f)
}
