package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary CSR format, for graphs too large for the text adjacency format to
// load quickly (the text parser spends most of its time in integer
// parsing; the binary loader is a few sequential reads).
//
// Layout (little endian):
//
//	magic   [4]byte  "HGB1"
//	flags   uint32   bit 0: weighted
//	n       uint64   vertex count
//	m       uint64   edge count
//	offsets [n+1]int64
//	edges   [m]int32
//	weights [m]float32   (present iff weighted)

var binMagic = [4]byte{'H', 'G', 'B', '1'}

const binFlagWeighted = 1

// WriteBinary writes g in the binary CSR format.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Weighted() {
		flags |= binFlagWeighted
	}
	if err := binary.Write(bw, binary.LittleEndian, flags); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumVertices())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumEdges())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Edges); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxBinaryVertices/Edges bound allocations against corrupt headers.
const (
	maxBinaryVertices = 1 << 31
	maxBinaryEdges    = 1 << 35
)

// corruptBin builds a binary CorruptInputError, optionally wrapping a cause.
func corruptBin(cause error, format string, args ...any) error {
	return &CorruptInputError{Format: "binary", Reason: fmt.Sprintf(format, args...), Err: cause}
}

// binBodySize returns the expected byte size of the sections after the
// 24-byte header for the given counts.
func binBodySize(n, m uint64, weighted bool) int64 {
	size := 8*(int64(n)+1) + 4*int64(m)
	if weighted {
		size += 4 * int64(m)
	}
	return size
}

// readChunked reads n little-endian values without trusting n for the
// allocation: data arrives in bounded chunks, so a header that claims
// counts near the limits on a short stream fails after one chunk instead
// of allocating gigabytes for the claim. (LoadBinaryFile additionally
// prechecks counts against the file size; this guards plain io.Readers,
// where no size is knowable.)
func readChunked[T int64 | VertexID | float32](r io.Reader, n uint64) ([]T, error) {
	const chunk = 1 << 18
	out := make([]T, 0, min(n, chunk))
	buf := make([]T, min(n, chunk))
	for uint64(len(out)) < n {
		k := n - uint64(len(out))
		if k > chunk {
			k = chunk
		}
		if err := binary.Read(r, binary.LittleEndian, buf[:k]); err != nil {
			return nil, err
		}
		out = append(out, buf[:k]...)
	}
	return out, nil
}

// ReadBinary parses the binary CSR format and validates the result. A
// truncated stream, an unknown version or flag, counts past the allocation
// limits, or a CSR that fails validation all come back as a typed
// *CorruptInputError (wrapping ErrInvalid where the CSR itself is the
// problem) instead of a panic or a silently bad graph.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, corruptBin(err, "truncated header")
	}
	if magic != binMagic {
		return nil, corruptBin(nil, "bad magic %q (want %q)", magic, binMagic)
	}
	var flags uint32
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, corruptBin(err, "truncated flags")
	}
	if flags&^uint32(binFlagWeighted) != 0 {
		return nil, corruptBin(nil, "unknown flags %#x", flags)
	}
	var n, m uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, corruptBin(err, "truncated vertex count")
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, corruptBin(err, "truncated edge count")
	}
	if n >= maxBinaryVertices {
		return nil, corruptBin(nil, "vertex count %d exceeds limit %d", n, int64(maxBinaryVertices))
	}
	if m >= maxBinaryEdges {
		return nil, corruptBin(nil, "edge count %d exceeds limit %d", m, int64(maxBinaryEdges))
	}
	g := &CSR{}
	var err error
	if g.Offsets, err = readChunked[int64](br, n+1); err != nil {
		return nil, corruptBin(err, "truncated offsets (%d vertices declared)", n)
	}
	if g.Edges, err = readChunked[VertexID](br, m); err != nil {
		return nil, corruptBin(err, "truncated edges (%d declared)", m)
	}
	if flags&binFlagWeighted != 0 {
		if g.Weights, err = readChunked[float32](br, m); err != nil {
			return nil, corruptBin(err, "truncated weights (%d declared)", m)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, corruptBin(err, "inconsistent CSR")
	}
	return g, nil
}

// SaveBinaryFile writes g to path in the binary format.
func SaveBinaryFile(path string, g *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// precheckBinarySize compares the file's actual size to what the header's
// counts imply, before ReadBinary allocates arrays for them. A header whose
// counts promise more data than the file holds is rejected up front — a
// truncated or count-corrupted file never triggers a multi-gigabyte
// allocation. Leaves the read position at the start of the file.
func precheckBinarySize(f *os.File) error {
	var hdr [24]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return corruptBin(err, "truncated header")
	}
	defer f.Seek(0, io.SeekStart)
	if *(*[4]byte)(hdr[:4]) != binMagic {
		return corruptBin(nil, "bad magic %q (want %q)", hdr[:4], binMagic)
	}
	flags := binary.LittleEndian.Uint32(hdr[4:])
	n := binary.LittleEndian.Uint64(hdr[8:])
	m := binary.LittleEndian.Uint64(hdr[16:])
	if n >= maxBinaryVertices || m >= maxBinaryEdges {
		return corruptBin(nil, "counts %d/%d exceed limits", n, m)
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if want := 24 + binBodySize(n, m, flags&binFlagWeighted != 0); st.Size() != want {
		return corruptBin(nil, "file is %d bytes, header implies %d (n=%d m=%d)", st.Size(), want, n, m)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// LoadBinaryFile reads a binary-format graph from path. The header's counts
// are checked against the file size before anything is allocated.
func LoadBinaryFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := precheckBinarySize(f); err != nil {
		return nil, err
	}
	return ReadBinary(f)
}

// LoadAuto loads a graph file in either format, detecting the binary magic.
// Files too short to hold the magic are handed to the text parser (a tiny
// adjacency file is legitimate; only actual binary files must start with
// the full header).
func LoadAuto(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [4]byte
	k, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if k == len(magic) && magic == binMagic {
		if err := precheckBinarySize(f); err != nil {
			return nil, err
		}
		return ReadBinary(f)
	}
	return ReadAdjacency(f)
}
