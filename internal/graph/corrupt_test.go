package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadAdjacencyCorruptInputs(t *testing.T) {
	cases := []struct {
		name   string
		input  string
		reason string // substring the error must carry
	}{
		{"Empty", "", "empty input"},
		{"CommentsOnly", "# nothing\n\n# here\n", "empty input"},
		{"HeaderOneField", "5\n", "bad header"},
		{"HeaderFourFields", "5 4 weighted extra\n", "bad header"},
		{"NegativeVertexCount", "-3 2\n0 1\n", "bad vertex count"},
		{"OverflowVertexCount", "99999999999999999999 2\n", "bad vertex count"},
		{"VertexCountPastLimit", "4294967296 2\n", "exceeds limit"},
		{"NegativeEdgeCount", "3 -1\n", "bad edge count"},
		{"BadHeaderFlag", "3 1 wheighted\n0 1\n", "bad header flag"},
		{"BadSource", "3 1\nx 1\n", "bad source"},
		{"SourceOutOfRange", "3 1\n7 1\n", "out of range"},
		{"NegativeSource", "3 1\n-1 1\n", "out of range"},
		{"BadDestination", "3 1\n0 banana\n", "bad destination"},
		{"DestinationOutOfRange", "3 1\n0 3\n", "out of range"},
		{"NegativeDestination", "3 1\n0 -2\n", "out of range"},
		{"BadWeight", "3 1 weighted\n0 1:heavy\n", "bad weight"},
		{"TooFewEdges", "3 2\n0 1\n", "header declares 2 edges, body has 1"},
		{"TooManyEdges", "3 1\n0 1 2\n", "exceeds declared 1 edges"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadAdjacency(strings.NewReader(tc.input))
			var cie *CorruptInputError
			if !errors.As(err, &cie) {
				t.Fatalf("got %v, want *CorruptInputError", err)
			}
			if !strings.Contains(err.Error(), tc.reason) {
				t.Fatalf("error %q does not mention %q", err, tc.reason)
			}
			if cie.Format != "adjacency" {
				t.Fatalf("Format = %q, want adjacency", cie.Format)
			}
		})
	}
}

// validBinary serializes the paper example graph to the binary format.
func validBinary(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, PaperExample()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadBinaryCorruptInputs(t *testing.T) {
	valid := validBinary(t)
	mutate := func(f func([]byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := []struct {
		name   string
		input  []byte
		reason string
	}{
		{"Empty", nil, "truncated header"},
		{"ShortMagic", []byte("HG"), "truncated header"},
		{"BadMagic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), "bad magic"},
		{"TruncatedAfterMagic", valid[:4], "truncated flags"},
		{"TruncatedCounts", valid[:10], "truncated"},
		{"UnknownFlags", mutate(func(b []byte) []byte { b[4] |= 0x80; return b }), "unknown flags"},
		{"TruncatedOffsets", valid[:26], "truncated offsets"},
		{"TruncatedEdges", valid[:len(valid)-2], "truncated"},
		{"VertexCountPastLimit", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 1<<40)
			return b
		}), "exceeds limit"},
		{"EdgeCountPastLimit", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 1<<40)
			return b
		}), "exceeds limit"},
		{"CorruptOffsets", mutate(func(b []byte) []byte {
			// First offset must be 0; a nonzero value breaks CSR invariants.
			binary.LittleEndian.PutUint64(b[24:], 999)
			return b
		}), "inconsistent CSR"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(tc.input))
			var cie *CorruptInputError
			if !errors.As(err, &cie) {
				t.Fatalf("got %v, want *CorruptInputError", err)
			}
			if !strings.Contains(err.Error(), tc.reason) {
				t.Fatalf("error %q does not mention %q", err, tc.reason)
			}
		})
	}
}

func TestCorruptCSRKeepsErrInvalid(t *testing.T) {
	b := validBinary(t)
	binary.LittleEndian.PutUint64(b[24:], 999)
	_, err := ReadBinary(bytes.NewReader(b))
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("CSR-invariant failure %v does not unwrap to ErrInvalid", err)
	}
}

func TestLoadBinaryFileSizePrecheck(t *testing.T) {
	dir := t.TempDir()
	valid := validBinary(t)

	// A header that promises more edges than the file holds must be caught
	// by the size precheck, not by an allocation attempt.
	lying := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(lying[16:], 1<<30)
	path := filepath.Join(dir, "lying.hgb")
	if err := os.WriteFile(path, lying, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadBinaryFile(path)
	var cie *CorruptInputError
	if !errors.As(err, &cie) || !strings.Contains(err.Error(), "header implies") {
		t.Fatalf("oversized counts: %v, want size-precheck CorruptInputError", err)
	}

	// Truncated file: same protection.
	path = filepath.Join(dir, "trunc.hgb")
	if err := os.WriteFile(path, valid[:len(valid)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBinaryFile(path); !errors.As(err, &cie) {
		t.Fatalf("truncated file: %v, want *CorruptInputError", err)
	}

	// The untouched file still loads.
	path = filepath.Join(dir, "ok.hgb")
	if err := os.WriteFile(path, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBinaryFile(path); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
}

func TestLoadAutoShortTextFile(t *testing.T) {
	// A legitimate adjacency file shorter than the 4-byte magic probe must
	// go to the text parser, not fail the probe.
	path := filepath.Join(t.TempDir(), "tiny.adj")
	if err := os.WriteFile(path, []byte("1 0"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadAuto(path)
	if err != nil {
		t.Fatalf("LoadAuto on 3-byte text file: %v", err)
	}
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Fatalf("got %d vertices / %d edges, want 1/0", g.NumVertices(), g.NumEdges())
	}
}
