package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperExampleShape(t *testing.T) {
	g := PaperExample()
	if g.NumVertices() != 16 {
		t.Fatalf("NumVertices = %d, want 16", g.NumVertices())
	}
	if g.NumEdges() != 28 {
		t.Fatalf("NumEdges = %d, want 28", g.NumEdges())
	}
	if g.OutDegree(3) != 0 {
		t.Errorf("vertex 3 out-degree = %d, want 0", g.OutDegree(3))
	}
	if got := g.Neighbors(9); !reflect.DeepEqual(got, []VertexID{4, 5, 6, 8}) {
		t.Errorf("Neighbors(9) = %v", got)
	}
}

func TestPaperExampleInDegrees(t *testing.T) {
	// Pinned against Figure 3's sorted table.
	g := PaperExample()
	in := g.InDegrees()
	want := map[VertexID]int32{5: 5, 2: 4, 8: 3, 9: 3, 0: 2, 4: 2, 6: 2, 7: 2,
		3: 1, 10: 1, 11: 1, 12: 1, 13: 1, 1: 0, 14: 0, 15: 0}
	for v, d := range want {
		if in[v] != d {
			t.Errorf("in-degree of %d = %d, want %d", v, in[v], d)
		}
	}
	// The figure's descending sort order must be reproducible with a
	// stable tie-break on vertex ID.
	prev := int32(1 << 30)
	for _, v := range PaperExampleSortedByInDegree {
		if in[v] > prev {
			t.Errorf("PaperExampleSortedByInDegree not descending at vertex %d", v)
		}
		prev = in[v]
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(2, 0, 1.5)
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(0, 3, 3.5)
	b.AddEdge(2, 1, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Neighbors(0), []VertexID{1, 3}) {
		t.Errorf("Neighbors(0) = %v", g.Neighbors(0))
	}
	if !reflect.DeepEqual(g.EdgeWeights(2), []float32{1.5, 0.5}) {
		t.Errorf("EdgeWeights(2) = %v", g.EdgeWeights(2))
	}
	if g.OutDegree(1) != 0 || g.OutDegree(3) != 0 {
		t.Errorf("isolated vertices have edges")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 5, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range destination")
	}
	b = NewBuilder(2, false)
	b.AddEdge(-1, 0, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted negative source")
	}
}

func TestBuilderUndirected(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddUndirected(0, 2, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.Neighbors(0)[0] != 2 || g.Neighbors(2)[0] != 0 {
		t.Fatalf("undirected edge not duplicated")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name string
		g    CSR
	}{
		{"empty offsets", CSR{}},
		{"nonzero start", CSR{Offsets: []int64{1, 1}, Edges: nil}},
		{"non-monotone", CSR{Offsets: []int64{0, 2, 1}, Edges: []VertexID{0, 1}}},
		{"end mismatch", CSR{Offsets: []int64{0, 1}, Edges: []VertexID{0, 0}}},
		{"edge out of range", CSR{Offsets: []int64{0, 1}, Edges: []VertexID{5}}},
		{"negative edge", CSR{Offsets: []int64{0, 1}, Edges: []VertexID{-1}}},
		{"weights mismatch", CSR{Offsets: []int64{0, 1}, Edges: []VertexID{0}, Weights: []float32{1, 2}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", c.name)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := PaperExample()
	tt := g.Transpose().Transpose()
	if !reflect.DeepEqual(g.Offsets, tt.Offsets) {
		t.Fatal("transpose twice changed offsets")
	}
	if !reflect.DeepEqual(g.Edges, tt.Edges) {
		t.Fatal("transpose twice changed edges")
	}
}

func TestTransposeDegrees(t *testing.T) {
	g := PaperExample()
	tr := g.Transpose()
	in := g.InDegrees()
	for v := 0; v < g.NumVertices(); v++ {
		if int32(tr.OutDegree(VertexID(v))) != in[v] {
			t.Errorf("transpose out-degree(%d) = %d, want in-degree %d", v, tr.OutDegree(VertexID(v)), in[v])
		}
	}
}

func TestTransposeWeightsFollowEdges(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 2, 10)
	b.AddEdge(1, 2, 20)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Transpose()
	nb := tr.Neighbors(2)
	ws := tr.EdgeWeights(2)
	if len(nb) != 2 {
		t.Fatalf("transposed in-edges of 2: %v", nb)
	}
	for i, u := range nb {
		want := float32(10)
		if u == 1 {
			want = 20
		}
		if ws[i] != want {
			t.Errorf("weight of %d->2 = %v, want %v", u, ws[i], want)
		}
	}
}

// property: for random edge lists, transpose preserves the edge multiset.
func TestQuickTransposePreservesEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n, false)
		m := rng.Intn(100)
		type pair struct{ u, v VertexID }
		count := map[pair]int{}
		for i := 0; i < m; i++ {
			u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
			b.AddEdge(u, v, 0)
			count[pair{u, v}]++
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		tr := g.Transpose()
		for v := 0; v < n; v++ {
			for _, u := range tr.Neighbors(VertexID(v)) {
				count[pair{u, VertexID(v)}]--
			}
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIsDAG(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(0, 3, 0)
	g, _ := b.Build()
	if !g.IsDAG() {
		t.Error("acyclic graph reported cyclic")
	}
	b = NewBuilder(3, false)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(2, 0, 0)
	g, _ = b.Build()
	if g.IsDAG() {
		t.Error("3-cycle reported acyclic")
	}
	if !PaperExample().IsDAG() == PaperExample().IsDAG() {
		t.Error("IsDAG not deterministic")
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	g := PaperExample()
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Offsets, g2.Offsets) || !reflect.DeepEqual(g.Edges, g2.Edges) {
		t.Fatal("round trip changed graph")
	}
}

func TestAdjacencyRoundTripWeighted(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 1.25)
	b.AddEdge(0, 2, 3.5)
	b.AddEdge(2, 1, 0.125)
	g, _ := b.Build()
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Weighted() {
		t.Fatal("weights lost")
	}
	if !reflect.DeepEqual(g.Weights, g2.Weights) {
		t.Fatalf("weights changed: %v vs %v", g.Weights, g2.Weights)
	}
}

func TestReadAdjacencyErrors(t *testing.T) {
	bad := []string{
		"",                        // empty
		"x y",                     // bad header ints
		"3 1 wrong\n0 1",          // bad flag
		"2 2\n0 1",                // edge count mismatch
		"2 1\n0 9",                // out of range (caught by Build)
		"2 1\nzz 1",               // bad source
		"2 1\n0 q",                // bad destination
		"2 1 weighted\n0 1:abc",   // bad weight
		"2 1 weighted extra\n0 1", // too many header fields
	}
	for _, s := range bad {
		if _, err := ReadAdjacency(strings.NewReader(s)); err == nil {
			t.Errorf("ReadAdjacency(%q) succeeded, want error", s)
		}
	}
}

func TestReadAdjacencySkipsCommentsAndBlank(t *testing.T) {
	in := "# header comment\n\n3 2\n# edge comment\n0 1 2\n"
	g, err := ReadAdjacency(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.OutDegree(0) != 2 {
		t.Fatalf("parsed wrong graph: %v edges", g.NumEdges())
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := PaperExample()
	path := t.TempDir() + "/g.adj"
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("LoadFile of missing path succeeded")
	}
}

func TestSubgraph(t *testing.T) {
	g := PaperExample()
	keep := make([]bool, 16)
	for _, v := range []VertexID{0, 1, 2, 5} {
		keep[v] = true
	}
	sub, toOld, err := Subgraph(g, keep)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 4 {
		t.Fatalf("sub vertices = %d", sub.NumVertices())
	}
	if !reflect.DeepEqual(toOld, []VertexID{0, 1, 2, 5}) {
		t.Fatalf("toOld = %v", toOld)
	}
	// Edges inside {0,1,2,5}: 0->5, 1->0, 1->2, 1->5, 2->5, 5->2.
	if sub.NumEdges() != 6 {
		t.Fatalf("sub edges = %d, want 6", sub.NumEdges())
	}
	if _, _, err := Subgraph(g, keep[:3]); err == nil {
		t.Fatal("Subgraph accepted short mask")
	}
}

func TestStats(t *testing.T) {
	g := PaperExample()
	s := ComputeStats(g)
	if s.NumVertices != 16 || s.NumEdges != 28 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.MaxIn != 5 {
		t.Errorf("MaxIn = %d, want 5 (vertex 5)", s.MaxIn)
	}
	if s.MaxOut != 4 {
		t.Errorf("MaxOut = %d, want 4 (vertex 9)", s.MaxOut)
	}
	if s.GiniOut < 0 || s.GiniOut > 1 {
		t.Errorf("GiniOut = %v out of [0,1]", s.GiniOut)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	// Uniform distribution has Gini 0.
	b := NewBuilder(4, false)
	for v := VertexID(0); v < 4; v++ {
		b.AddEdge(v, (v+1)%4, 0)
	}
	u, _ := b.Build()
	if gs := ComputeStats(u); gs.GiniOut > 1e-9 {
		t.Errorf("uniform Gini = %v, want 0", gs.GiniOut)
	}
	if es := ComputeStats(&CSR{Offsets: []int64{0}}); es.NumVertices != 0 {
		t.Errorf("empty graph stats wrong")
	}
}

// property: the text adjacency format round-trips arbitrary weighted graphs.
func TestQuickAdjacencyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		b := NewBuilder(n, true)
		m := rng.Intn(120)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), rng.Float32()*100)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteAdjacency(&buf, g); err != nil {
			return false
		}
		g2, err := ReadAdjacency(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g.Offsets, g2.Offsets) &&
			reflect.DeepEqual(g.Edges, g2.Edges) &&
			reflect.DeepEqual(g.Weights, g2.Weights)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// property: the binary format round-trips arbitrary graphs bit-exactly.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, weighted bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		b := NewBuilder(n, weighted)
		m := rng.Intn(120)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), rng.Float32())
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g.Offsets, g2.Offsets) &&
			reflect.DeepEqual(g.Edges, g2.Edges) &&
			reflect.DeepEqual(g.Weights, g2.Weights)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	deg := []int32{0, 0, 1, 1, 2, 3, 4, 7, 8}
	bins := DegreeHistogram(deg)
	// bin 0: degree 0 (x2); bin 1: degree 1 (x2); bin 2: 2-3 (x2);
	// bin 3: 4-7 (x2); bin 4: 8-15 (x1).
	want := []int64{2, 2, 2, 2, 1}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v, want %v", bins, want)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bin %d = %d, want %d", i, bins[i], want[i])
		}
	}
	if got := DegreeHistogram(nil); len(got) != 0 {
		t.Fatal("empty histogram not empty")
	}
}

func TestPercentile(t *testing.T) {
	deg := []int32{5, 1, 9, 3, 7}
	if Percentile(deg, 0) != 1 || Percentile(deg, 100) != 9 {
		t.Fatal("extremes wrong")
	}
	if Percentile(deg, 50) != 5 {
		t.Fatalf("median = %d, want 5", Percentile(deg, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile not 0")
	}
	if Percentile(deg, -5) != 1 || Percentile(deg, 200) != 9 {
		t.Fatal("clamping wrong")
	}
}
