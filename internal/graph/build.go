package graph

import (
	"fmt"
	"sort"
)

// Edge is one directed edge with an optional weight, the unit the Builder
// accumulates before freezing into CSR.
type Edge struct {
	Src, Dst VertexID
	Weight   float32
}

// Builder accumulates edges and freezes them into a validated CSR. It is not
// safe for concurrent use; build graphs before launching the runtime.
type Builder struct {
	n        int
	weighted bool
	edges    []Edge
}

// NewBuilder creates a builder for a graph with n vertices. If weighted is
// false, AddEdge weights are ignored and the CSR carries no weight array.
func NewBuilder(n int, weighted bool) *Builder {
	return &Builder{n: n, weighted: weighted}
}

// AddEdge records a directed edge src -> dst.
func (b *Builder) AddEdge(src, dst VertexID, w float32) {
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Weight: w})
}

// AddUndirected records both directions of an undirected edge, the paper's
// recipe for fitting DBLP into the directed framework ("duplicating each
// edge").
func (b *Builder) AddUndirected(u, v VertexID, w float32) {
	b.AddEdge(u, v, w)
	b.AddEdge(v, u, w)
}

// NumEdges returns the number of edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build freezes the accumulated edges into a CSR. Edges are grouped by
// source (stable on insertion order within a source, so adjacency order is
// deterministic). Endpoints are range-checked.
func (b *Builder) Build() (*CSR, error) {
	for _, e := range b.edges {
		if e.Src < 0 || int(e.Src) >= b.n {
			return nil, fmt.Errorf("graph: edge source %d out of range [0,%d)", e.Src, b.n)
		}
		if e.Dst < 0 || int(e.Dst) >= b.n {
			return nil, fmt.Errorf("graph: edge destination %d out of range [0,%d)", e.Dst, b.n)
		}
	}
	sort.SliceStable(b.edges, func(i, j int) bool { return b.edges[i].Src < b.edges[j].Src })
	g := &CSR{
		Offsets: make([]int64, b.n+1),
		Edges:   make([]VertexID, len(b.edges)),
	}
	if b.weighted {
		g.Weights = make([]float32, len(b.edges))
	}
	for _, e := range b.edges {
		g.Offsets[e.Src+1]++
	}
	for v := 0; v < b.n; v++ {
		g.Offsets[v+1] += g.Offsets[v]
	}
	cursor := make([]int64, b.n)
	copy(cursor, g.Offsets[:b.n])
	for _, e := range b.edges {
		p := cursor[e.Src]
		cursor[e.Src]++
		g.Edges[p] = e.Dst
		if b.weighted {
			g.Weights[p] = e.Weight
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromArrays constructs a CSR directly from raw arrays (used by tests and by
// the paper's Figure-1 example) and validates it.
func FromArrays(offsets []int64, edges []VertexID, weights []float32) (*CSR, error) {
	g := &CSR{Offsets: offsets, Edges: edges, Weights: weights}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Subgraph extracts the induced subgraph on the vertices where keep[v] is
// true, relabeling kept vertices densely in ascending original order. It
// returns the subgraph and the mapping from new IDs to original IDs. Edges
// with either endpoint dropped are discarded.
func Subgraph(g *CSR, keep []bool) (*CSR, []VertexID, error) {
	n := g.NumVertices()
	if len(keep) != n {
		return nil, nil, fmt.Errorf("graph: keep mask length %d != %d vertices", len(keep), n)
	}
	newID := make([]VertexID, n)
	var toOld []VertexID
	for v := 0; v < n; v++ {
		if keep[v] {
			newID[v] = VertexID(len(toOld))
			toOld = append(toOld, VertexID(v))
		} else {
			newID[v] = -1
		}
	}
	b := NewBuilder(len(toOld), g.Weighted())
	for _, old := range toOld {
		ws := g.EdgeWeights(old)
		for i, d := range g.Neighbors(old) {
			if newID[d] < 0 {
				continue
			}
			var w float32
			if ws != nil {
				w = ws[i]
			}
			b.AddEdge(newID[old], newID[d], w)
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, toOld, nil
}
