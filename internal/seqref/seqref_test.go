package seqref

import (
	"math"
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/vec"
)

func TestClassicBFSPaperGraph(t *testing.T) {
	g := graph.PaperExample()
	levels := ClassicBFS(g, 1)
	// 1 -> {0,2,5}; 0 -> {4,5}; 2 -> {3,7}; ...
	want := map[int]int32{1: 0, 0: 1, 2: 1, 5: 1, 4: 2, 3: 2, 7: 2}
	for v, l := range want {
		if levels[v] != l {
			t.Errorf("level[%d] = %d, want %d", v, levels[v], l)
		}
	}
	// Vertices 14, 15 are unreachable from 1.
	if levels[14] != -1 || levels[15] != -1 {
		t.Error("unreachable vertices got levels")
	}
}

func TestClassicSSSPSmall(t *testing.T) {
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1, 5)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 1, 1)
	b.AddEdge(1, 3, 1)
	g, _ := b.Build()
	d := ClassicSSSP(g, 0)
	if d[1] != 2 || d[2] != 1 || d[3] != 3 {
		t.Fatalf("distances = %v", d)
	}
}

func TestClassicTopoSortAndValidation(t *testing.T) {
	g, err := gen.RandomDAG(gen.DAGConfig{N: 200, M: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	order := ClassicTopoSort(g)
	if !ValidTopoOrder(g, order) {
		t.Fatal("Kahn order invalid")
	}
	// Corrupt it: swap two adjacent-ordered endpoints of some edge.
	bad := append([]int64(nil), order...)
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(graph.VertexID(v))
		if len(nb) > 0 {
			u := nb[0]
			bad[v], bad[u] = bad[u], bad[v]
			break
		}
	}
	if ValidTopoOrder(g, bad) {
		t.Fatal("validation accepted corrupted order")
	}
	if ValidTopoOrder(g, bad[:10]) {
		t.Fatal("validation accepted short order")
	}
	dup := append([]int64(nil), order...)
	dup[0] = dup[1]
	if ValidTopoOrder(g, dup) {
		t.Fatal("validation accepted duplicate positions")
	}
	// Cyclic graph: Kahn leaves -1s.
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 0, 0)
	cg, _ := b.Build()
	cyc := ClassicTopoSort(cg)
	if cyc[0] != -1 || cyc[1] != -1 {
		t.Fatal("cycle got ordered")
	}
}

func TestClassicPageRankConservation(t *testing.T) {
	// On a graph where every vertex has in- and out-edges, total rank is
	// conserved at n by the damping formulation.
	n := 50
	b := graph.NewBuilder(n, false)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n), 0)
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+7)%n), 0)
	}
	g, _ := b.Build()
	rank := ClassicPageRank(g, 0.85, 20)
	var sum float64
	for _, r := range rank {
		sum += float64(r)
	}
	if math.Abs(sum-float64(n)) > 0.01*float64(n) {
		t.Fatalf("total rank = %v, want ~%d", sum, n)
	}
}

func TestRunF32SeqCountsEvents(t *testing.T) {
	g := graph.PaperExample()
	wg, err := gen.WithWeights(g, 0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	app := apps.NewSSSP(0)
	iters, c, err := RunF32Seq(app, wg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 2 {
		t.Fatalf("iters = %d", iters)
	}
	if c.Messages == 0 || c.EdgesTraversed != c.Messages {
		t.Errorf("message counters wrong: %+v", c)
	}
	if c.UpdatedVertices == 0 || c.ActiveVertices == 0 {
		t.Errorf("activity counters wrong: %+v", c)
	}
	want := ClassicSSSP(wg, 0)
	for v := range want {
		if app.Dist[v] != want[v] {
			t.Fatalf("seq driver dist[%d] = %v, want %v", v, app.Dist[v], want[v])
		}
	}
}

func TestRunF32SeqFixedActive(t *testing.T) {
	g := graph.PaperExample()
	app := apps.NewPageRank()
	iters, c, err := RunF32Seq(app, g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if iters != 5 {
		t.Fatalf("fixed-active seq ran %d iters, want 5", iters)
	}
	if c.Messages != 5*g.NumEdges() {
		t.Fatalf("messages = %d, want %d", c.Messages, 5*g.NumEdges())
	}
}

func TestRunGenericSeqTerminates(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 200, Communities: 2, IntraDeg: 3, InterFrac: 0.05, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	app := apps.NewSemiClustering(3, 4, 0.2)
	iters, c, err := RunGenericSeq[apps.SCMsg](app, g, 50)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 || iters == 50 {
		t.Fatalf("SC seq iters = %d (no fixed point?)", iters)
	}
	if c.ReducedMessages == 0 {
		t.Error("no messages processed")
	}
	for v := range app.Clusters {
		if len(app.Clusters[v]) == 0 {
			t.Fatalf("vertex %d has no clusters", v)
		}
	}
}

func TestClassicWCC(t *testing.T) {
	b := graph.NewBuilder(7, false)
	b.AddUndirected(0, 1, 0)
	b.AddUndirected(1, 2, 0)
	b.AddUndirected(4, 5, 0)
	g, _ := b.Build()
	labels := ClassicWCC(g)
	want := []graph.VertexID{0, 0, 0, 3, 4, 4, 6}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

// panicF32 is a vertex program whose Update panics — seqref must recover
// the panic into an error rather than killing the test process.
type panicF32 struct{}

func (panicF32) Profile() machine.AppProfile {
	return machine.AppProfile{Name: "panic", GenOps: 1, ProcOps: 1, UpdOps: 1, MsgBytes: 4, Reducible: true}
}
func (panicF32) Init(g *graph.CSR) []graph.VertexID { return []graph.VertexID{0} }
func (panicF32) Generate(v graph.VertexID, emit func(graph.VertexID, float32)) {
	emit(v, 1)
}
func (panicF32) Identity() float32                  { return 0 }
func (panicF32) ReduceVec(arr *vec.ArrayF32, n int) {}
func (panicF32) ReduceScalar(a, b float32) float32  { return a + b }
func (panicF32) Update(v graph.VertexID, m float32) bool {
	panic("buggy vertex program")
}

type panicGen struct{ panicF32 }

func (panicGen) Generate(v graph.VertexID, emit func(graph.VertexID, int)) { emit(v, 1) }
func (panicGen) Combine(a, b int) int                                      { return a + b }
func (panicGen) Process(v graph.VertexID, msgs []int) int                  { panic("buggy process") }
func (panicGen) Update(v graph.VertexID, res int) bool                     { return false }

func TestSeqRecoversUserPanic(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 0)
	g, _ := b.Build()
	if _, _, err := RunF32Seq(panicF32{}, g, 5); err == nil {
		t.Fatal("RunF32Seq: panic in Update not surfaced as error")
	}
	if _, _, err := RunGenericSeq[int](panicGen{}, g, 5); err == nil {
		t.Fatal("RunGenericSeq: panic in Process not surfaced as error")
	}
}
