// Package seqref provides sequential reference implementations: the
// single-core baselines of Table II, and correctness oracles for the
// parallel runtime.
//
// Two independent layers are provided. RunF32Seq / RunGenericSeq execute a
// vertex program with plain single-threaded BSP semantics — no CSB, no
// pipeline, no scheduler — which is what the paper's hand-written sequential
// C/C++ versions do, and they report the event counters the cost model needs
// for Table II. The classic algorithms (Dijkstra-like SSSP, queue BFS, Kahn
// toposort, power-iteration PageRank) are written independently of the
// framework's abstractions and validate the vertex programs themselves.
package seqref

import (
	"container/heap"
	"fmt"
	"math"

	"hetgraph/internal/core"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
)

// RunF32Seq executes an AppF32 with sequential BSP semantics and returns
// the iteration count and the run's event counters. A panic in a user
// function is recovered and returned as an error, mirroring the parallel
// engines — chaos tests diff hetero runs against this oracle, and a buggy
// vertex program must fail both sides the same way instead of killing the
// process here.
func RunF32Seq(app core.AppF32, g *graph.CSR, maxIters int) (iters int64, c machine.Counters, err error) {
	defer func() {
		if r := recover(); r != nil {
			iters, c, err = 0, machine.Counters{}, fmt.Errorf("seqref: user function panicked: %v", r)
		}
	}()
	n := g.NumVertices()
	active := app.Init(g)
	fixed := core.IsFixedActive(app)
	initial := append([]graph.VertexID(nil), active...)
	vals := make([]float32, n)
	has := make([]bool, n)
	var touched []graph.VertexID
	for len(active) > 0 && iters < int64(maxIters) {
		iters++
		c.Iterations++
		c.ActiveVertices += int64(len(active))
		// Message generation with immediate scalar combination (the
		// sequential code has no buffer to fill).
		for _, v := range active {
			app.Generate(v, func(dst graph.VertexID, val float32) {
				c.EdgesTraversed++
				c.Messages++
				if has[dst] {
					vals[dst] = app.ReduceScalar(vals[dst], val)
					c.ReducedMessages++
				} else {
					has[dst] = true
					vals[dst] = val
					touched = append(touched, dst)
				}
			})
		}
		// Vertex updating.
		active = active[:0]
		for _, dst := range touched {
			c.UpdatedVertices++
			if app.Update(dst, vals[dst]) {
				active = append(active, dst)
			}
			has[dst] = false
		}
		touched = touched[:0]
		if fixed {
			active = append(active[:0], initial...)
		}
	}
	return iters, c, nil
}

// RunGenericSeq executes an AppGeneric with sequential BSP semantics. Panics
// in user functions are recovered into errors, as in RunF32Seq.
func RunGenericSeq[T any](app core.AppGeneric[T], g *graph.CSR, maxIters int) (iters int64, c machine.Counters, err error) {
	defer func() {
		if r := recover(); r != nil {
			iters, c, err = 0, machine.Counters{}, fmt.Errorf("seqref: user function panicked: %v", r)
		}
	}()
	n := g.NumVertices()
	active := app.Init(g)
	fixed := core.IsFixedActive(app)
	initial := append([]graph.VertexID(nil), active...)
	lists := make([][]T, n)
	var touched []graph.VertexID
	for len(active) > 0 && iters < int64(maxIters) {
		iters++
		c.Iterations++
		c.ActiveVertices += int64(len(active))
		for _, v := range active {
			app.Generate(v, func(dst graph.VertexID, val T) {
				c.EdgesTraversed++
				c.Messages++
				if len(lists[dst]) == 0 {
					touched = append(touched, dst)
				}
				lists[dst] = append(lists[dst], val)
			})
		}
		active = active[:0]
		for _, dst := range touched {
			res := app.Process(dst, lists[dst])
			c.ReducedMessages += int64(len(lists[dst]))
			c.UpdatedVertices++
			if app.Update(dst, res) {
				active = append(active, dst)
			}
			lists[dst] = lists[dst][:0]
		}
		touched = touched[:0]
		if fixed {
			active = append(active[:0], initial...)
		}
	}
	return iters, c, nil
}

// ClassicPageRank is an independent power-iteration PageRank matching the
// vertex program's update rule (rank = (1-d) + d*sum over in-neighbors of
// rank/outdeg), run for exactly iters iterations.
func ClassicPageRank(g *graph.CSR, damping float32, iters int) []float32 {
	n := g.NumVertices()
	rank := make([]float32, n)
	for v := range rank {
		rank[v] = 1
	}
	sums := make([]float32, n)
	for it := 0; it < iters; it++ {
		for i := range sums {
			sums[i] = 0
		}
		for v := 0; v < n; v++ {
			d := g.OutDegree(graph.VertexID(v))
			if d == 0 {
				continue
			}
			share := rank[v] / float32(d)
			for _, u := range g.Neighbors(graph.VertexID(v)) {
				sums[u] += share
			}
		}
		for v := 0; v < n; v++ {
			// Vertices with no in-edges receive no message and keep their
			// rank, matching the message-driven framework semantics.
			if in := sums[v]; in != 0 || hasInEdge(g, graph.VertexID(v)) {
				rank[v] = (1 - damping) + damping*in
			}
		}
	}
	return rank
}

var inDegCache struct {
	g  *graph.CSR
	in []int32
}

func hasInEdge(g *graph.CSR, v graph.VertexID) bool {
	if inDegCache.g != g {
		inDegCache.g = g
		inDegCache.in = g.InDegrees()
	}
	return inDegCache.in[v] > 0
}

// ClassicBFS is a queue-based BFS returning levels (-1 unreached).
func ClassicBFS(g *graph.CSR, src graph.VertexID) []int32 {
	levels := make([]int32, g.NumVertices())
	for i := range levels {
		levels[i] = -1
	}
	levels[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range g.Neighbors(v) {
			if levels[d] < 0 {
				levels[d] = levels[v] + 1
				queue = append(queue, d)
			}
		}
	}
	return levels
}

// ClassicSSSP is a Dijkstra shortest-path returning float32 distances
// (+Inf unreached). Distances accumulate along paths exactly as the vertex
// program does (dist[u] + w), so converged values match bit-for-bit.
func ClassicSSSP(g *graph.CSR, src graph.VertexID) []float32 {
	n := g.NumVertices()
	dist := make([]float32, n)
	inf := float32(math.Inf(1))
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := &distHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		ws := g.EdgeWeights(it.v)
		for i, u := range g.Neighbors(it.v) {
			nd := dist[it.v] + ws[i]
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{u, nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v graph.VertexID
	d float32
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// ClassicTopoSort is Kahn's algorithm returning order positions (-1 when
// the input has a cycle).
func ClassicTopoSort(g *graph.CSR) []int64 {
	n := g.NumVertices()
	remain := g.InDegrees()
	order := make([]int64, n)
	for i := range order {
		order[i] = -1
	}
	var queue []graph.VertexID
	for v := 0; v < n; v++ {
		if remain[v] == 0 {
			queue = append(queue, graph.VertexID(v))
		}
	}
	var pos int64
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order[v] = pos
		pos++
		for _, d := range g.Neighbors(v) {
			remain[d]--
			if remain[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	return order
}

// ValidTopoOrder checks that order is a permutation assignment consistent
// with g's edges (every edge points forward).
func ValidTopoOrder(g *graph.CSR, order []int64) bool {
	n := g.NumVertices()
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, o := range order {
		if o < 0 || o >= int64(n) || seen[o] {
			return false
		}
		seen[o] = true
	}
	for v := 0; v < n; v++ {
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			if order[v] >= order[d] {
				return false
			}
		}
	}
	return true
}

// ClassicWCC labels weakly connected components with union-find (path
// compression + union by size), the oracle for the ConnectedComponents
// vertex program. Returned labels are the minimum vertex ID per component.
func ClassicWCC(g *graph.CSR) []graph.VertexID {
	n := g.NumVertices()
	parent := make([]graph.VertexID, n)
	size := make([]int32, n)
	for v := range parent {
		parent[v] = graph.VertexID(v)
		size[v] = 1
	}
	var find func(v graph.VertexID) graph.VertexID
	find = func(v graph.VertexID) graph.VertexID {
		for parent[v] != v {
			parent[v] = parent[parent[v]] // path halving
			v = parent[v]
		}
		return v
	}
	union := func(a, b graph.VertexID) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			union(graph.VertexID(u), v)
		}
	}
	// Canonicalize to the minimum member ID per component.
	minOf := make(map[graph.VertexID]graph.VertexID)
	for v := 0; v < n; v++ {
		r := find(graph.VertexID(v))
		if m, ok := minOf[r]; !ok || graph.VertexID(v) < m {
			minOf[r] = graph.VertexID(v)
		}
	}
	labels := make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		labels[v] = minOf[find(graph.VertexID(v))]
	}
	return labels
}
