package gen

import (
	"fmt"
	"math/rand"

	"hetgraph/internal/graph"
)

// RMATConfig parameterizes the recursive-matrix (R-MAT) generator of
// Chakrabarti et al., the synthetic-graph standard of Graph500. Each edge
// recursively descends into one of four adjacency-matrix quadrants with
// probabilities A, B, C, D; skewed quadrant weights produce the heavy
// community-within-community structure real social graphs show.
type RMATConfig struct {
	// Scale is log2 of the vertex count.
	Scale int
	// EdgeFactor is edges per vertex (Graph500 uses 16).
	EdgeFactor int
	// A, B, C are the quadrant probabilities (D = 1-A-B-C). The Graph500
	// values are 0.57, 0.19, 0.19.
	A, B, C float64
	// Noise perturbs the quadrant probabilities per level, avoiding the
	// artificial staircase degree distribution of pure R-MAT.
	Noise float64
	Seed  int64
}

// DefaultRMAT returns the Graph500 parameterization at the given scale.
func DefaultRMAT(scale int) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, Noise: 0.1, Seed: 2}
}

// RMAT generates an R-MAT directed multigraph with 2^Scale vertices and
// EdgeFactor*2^Scale edges. Self-loops are retargeted to the next vertex.
func RMAT(cfg RMATConfig) (*graph.CSR, error) {
	if cfg.Scale < 1 || cfg.Scale > 24 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of [1,24]", cfg.Scale)
	}
	if cfg.EdgeFactor < 1 {
		return nil, fmt.Errorf("gen: RMAT edge factor %d < 1", cfg.EdgeFactor)
	}
	d := 1 - cfg.A - cfg.B - cfg.C
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || d < 0 {
		return nil, fmt.Errorf("gen: RMAT quadrant probabilities invalid (A=%v B=%v C=%v)", cfg.A, cfg.B, cfg.C)
	}
	if cfg.Noise < 0 || cfg.Noise >= 1 {
		return nil, fmt.Errorf("gen: RMAT noise %v out of [0,1)", cfg.Noise)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 1 << cfg.Scale
	m := cfg.EdgeFactor * n
	b := graph.NewBuilder(n, false)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for level := 0; level < cfg.Scale; level++ {
			// Per-level noisy quadrant weights.
			na := cfg.A * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
			nb := cfg.B * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
			nc := cfg.C * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
			nd := d * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
			total := na + nb + nc + nd
			r := rng.Float64() * total
			u <<= 1
			v <<= 1
			switch {
			case r < na:
				// top-left: no bits set
			case r < na+nb:
				v |= 1
			case r < na+nb+nc:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		if u == v {
			v = (v + 1) % n
		}
		b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0)
	}
	return b.Build()
}
