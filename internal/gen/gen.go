// Package gen produces the seeded synthetic input graphs used in place of
// the paper's datasets. The paper evaluates on Pokec (power-law social graph,
// high-degree vertices concentrated at the front of the ID range), DBLP
// (undirected co-authorship graph with community structure, duplicated into a
// directed graph), and a dense random DAG for TopoSort. Each generator is
// parameterized to reproduce the property that drives the corresponding
// experiment, and is fully deterministic for a given seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hetgraph/internal/graph"
)

// PowerLawConfig parameterizes the Pokec-like generator.
type PowerLawConfig struct {
	N       int     // number of vertices
	MeanDeg float64 // target mean out-degree
	// Alpha is the Pareto tail exponent of the out-degree distribution.
	// Pokec-like social graphs sit around 2.0–2.5.
	Alpha float64
	// FrontBias controls how strongly high out-degree vertices concentrate
	// in the low ID range (0 = none, 1 = perfectly sorted descending).
	// The paper's Fig. 6 discussion requires this Pokec property: it is what
	// makes continuous partitioning imbalanced.
	FrontBias float64
	// Locality is the fraction of edges whose destination is drawn from a
	// window near the source ID instead of globally. Crawl-ordered social
	// graphs like Pokec exhibit strong ID locality; it is what lets a
	// min-connectivity partitioner find a low cut where round-robin cannot.
	Locality float64
	// LocalWindow is the half-width of the locality window as a fraction
	// of N (defaulting to 0.02 when zero).
	LocalWindow float64
	Seed        int64
}

// DefaultPowerLaw returns the configuration used by the benchmark harness
// for the Pokec substitute, scaled to this machine (~1/8 of Pokec's vertex
// count, same mean degree ~19).
func DefaultPowerLaw(n int) PowerLawConfig {
	return PowerLawConfig{N: n, MeanDeg: 19, Alpha: 2.1, FrontBias: 0.85, Locality: 0.75, LocalWindow: 0.02, Seed: 42}
}

// PowerLaw generates a directed power-law graph. Out-degrees are Pareto
// samples rescaled to the target mean; destinations are chosen by
// preferential attachment over in-degree so the in-degree distribution is
// skewed as well (which is what exercises the CSB's degree-sorted grouping).
func PowerLaw(cfg PowerLawConfig) (*graph.CSR, error) {
	if cfg.N <= 1 {
		return nil, fmt.Errorf("gen: PowerLaw needs N > 1, got %d", cfg.N)
	}
	if cfg.MeanDeg <= 0 || cfg.Alpha <= 1 {
		return nil, fmt.Errorf("gen: PowerLaw needs MeanDeg > 0 and Alpha > 1 (got %v, %v)", cfg.MeanDeg, cfg.Alpha)
	}
	if cfg.FrontBias < 0 || cfg.FrontBias > 1 {
		return nil, fmt.Errorf("gen: FrontBias %v out of [0,1]", cfg.FrontBias)
	}
	if cfg.Locality < 0 || cfg.Locality > 1 {
		return nil, fmt.Errorf("gen: Locality %v out of [0,1]", cfg.Locality)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N

	// Sample raw Pareto(alpha) out-degrees and rescale to the target mean.
	raw := make([]float64, n)
	var sum float64
	for i := range raw {
		u := rng.Float64()
		raw[i] = math.Pow(1-u, -1/(cfg.Alpha-1)) // Pareto with xm=1
		sum += raw[i]
	}
	scale := cfg.MeanDeg * float64(n) / sum
	degs := make([]int, n)
	for i := range degs {
		d := int(raw[i] * scale)
		if d >= n-1 {
			d = n - 1
		}
		degs[i] = d
	}

	// Front-load: sort degrees descending, then displace each by a random
	// offset proportional to (1-FrontBias) so the trend survives with noise.
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	if cfg.FrontBias < 1 {
		window := int(float64(n) * (1 - cfg.FrontBias))
		if window > 1 {
			for i := range degs {
				j := i + rng.Intn(window)
				if j >= n {
					j = n - 1
				}
				degs[i], degs[j] = degs[j], degs[i]
			}
		}
	}

	// Preferential-attachment destination sampling: maintain a repeated-ID
	// pool where each vertex appears once plus once per in-edge received.
	pool := make([]graph.VertexID, 0, n+int(cfg.MeanDeg)*n)
	for v := 0; v < n; v++ {
		pool = append(pool, graph.VertexID(v))
	}
	window := int(cfg.LocalWindow * float64(n))
	if window < 1 {
		window = int(0.02 * float64(n))
		if window < 1 {
			window = 1
		}
	}
	b := graph.NewBuilder(n, false)
	for v := 0; v < n; v++ {
		src := graph.VertexID(v)
		need := degs[v]
		for k := 0; k < need; k++ {
			var dst graph.VertexID
			if rng.Float64() < cfg.Locality {
				// Local edge: destination within +-window of the source.
				off := rng.Intn(2*window+1) - window
				d := v + off
				if d < 0 {
					d += n
				}
				if d >= n {
					d -= n
				}
				dst = graph.VertexID(d)
			} else {
				dst = pool[rng.Intn(len(pool))]
			}
			if dst == src {
				dst = graph.VertexID((v + 1 + rng.Intn(n-1)) % n)
			}
			b.AddEdge(src, dst, 0)
			pool = append(pool, dst)
		}
	}
	return b.Build()
}

// CommunityConfig parameterizes the DBLP-like undirected generator.
type CommunityConfig struct {
	N           int     // number of vertices
	Communities int     // number of communities
	IntraDeg    float64 // mean undirected intra-community degree
	// InterFrac is the fraction of a vertex's edges that cross communities.
	InterFrac float64
	Seed      int64
}

// DefaultCommunity returns the DBLP-substitute configuration (mean degree
// ~2.5 undirected, strong community locality).
func DefaultCommunity(n int) CommunityConfig {
	return CommunityConfig{N: n, Communities: n / 200, IntraDeg: 2.5, InterFrac: 0.05, Seed: 7}
}

// Community generates an undirected community graph, returned as a directed
// CSR with every edge duplicated in both directions (the paper's DBLP
// conversion). Edge weights model interaction frequency, higher within
// communities. Community membership is contiguous in vertex IDs with
// variable community sizes, giving the hybrid partitioner real structure to
// find.
func Community(cfg CommunityConfig) (*graph.CSR, error) {
	if cfg.N <= 1 {
		return nil, fmt.Errorf("gen: Community needs N > 1, got %d", cfg.N)
	}
	if cfg.Communities <= 0 {
		return nil, fmt.Errorf("gen: Communities must be positive, got %d", cfg.Communities)
	}
	if cfg.InterFrac < 0 || cfg.InterFrac > 1 {
		return nil, fmt.Errorf("gen: InterFrac %v out of [0,1]", cfg.InterFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, c := cfg.N, cfg.Communities
	if c > n {
		c = n
	}

	// Variable community sizes: sample cut points.
	cuts := make([]int, c+1)
	cuts[c] = n
	for i := 1; i < c; i++ {
		cuts[i] = 1 + rng.Intn(n-1)
	}
	sort.Ints(cuts)

	b := graph.NewBuilder(n, true)
	seen := map[[2]graph.VertexID]bool{}
	addOnce := func(u, v graph.VertexID, w float32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		key := [2]graph.VertexID{u, v}
		if seen[key] {
			return
		}
		seen[key] = true
		b.AddUndirected(u, v, w)
	}
	for ci := 0; ci < c; ci++ {
		lo, hi := cuts[ci], cuts[ci+1]
		size := hi - lo
		if size < 2 {
			continue
		}
		// Denser communities sit at the front of the ID range (prolific
		// collaborations cluster among early-crawled authors); this skew is
		// what breaks continuous partitioning on the DBLP-like input.
		slope := 1.6 - 1.2*float64(lo)/float64(n)
		edges := int(cfg.IntraDeg * slope * float64(size) / 2)
		for e := 0; e < edges; e++ {
			u := graph.VertexID(lo + rng.Intn(size))
			if rng.Float64() < cfg.InterFrac {
				// Cross-community edge, weaker interaction.
				v := graph.VertexID(rng.Intn(n))
				addOnce(u, v, 0.1+0.4*rng.Float32())
			} else {
				v := graph.VertexID(lo + rng.Intn(size))
				addOnce(u, v, 0.5+0.5*rng.Float32())
			}
		}
	}
	// Guarantee no isolated vertex: link each untouched vertex to a
	// community peer so every vertex participates in SC.
	touched := make([]bool, n)
	for k := range seen {
		touched[k[0]], touched[k[1]] = true, true
	}
	for ci := 0; ci < c; ci++ {
		lo, hi := cuts[ci], cuts[ci+1]
		for v := lo; v < hi; v++ {
			if touched[v] {
				continue
			}
			peer := lo + rng.Intn(maxInt(hi-lo, 1))
			if peer == v {
				peer = (v + 1) % n
			}
			addOnce(graph.VertexID(v), graph.VertexID(peer), 0.5)
		}
	}
	return b.Build()
}

// DAGConfig parameterizes the dense random DAG generator for TopoSort.
type DAGConfig struct {
	N    int // number of vertices
	M    int // target number of edges (N*(N-1)/2 max)
	Seed int64
	// Layers, when positive, produces a layered DAG: vertices are split
	// into equal contiguous layers and every edge points from a layer to a
	// strictly higher one, so the TopoSort wavefront has exactly `Layers`
	// supersteps with M/Layers messages each — the "highly connected
	// graph... large number of messages sent to a single vertex" regime of
	// §V-B. Zero gives the unconstrained u<v random DAG, whose wavefront
	// is deep and thin.
	Layers int
	// HotFrac, in (0,1], concentrates a layered DAG's edges onto the first
	// HotFrac fraction of each target layer, creating the hot receive
	// columns that drive the locking-contention results (0 = uniform).
	HotFrac float64
}

// DefaultDAG returns the TopoSort input configuration: a highly connected
// layered DAG where edges vastly outnumber vertices (the paper uses 40K
// vertices and 200M edges; we scale down keeping the density direction and
// the few-deep-supersteps/hot-columns shape).
func DefaultDAG(n, m int) DAGConfig {
	return DAGConfig{N: n, M: m, Seed: 99, Layers: 16, HotFrac: 0.1}
}

// RandomDAG generates a random DAG: every edge points from a lower to a
// higher vertex ID, so acyclicity holds by construction. Duplicate edges are
// avoided. The mean out-degree is uniform over feasible sources, producing
// the high fan-in on late vertices that makes TopoSort contention-heavy.
func RandomDAG(cfg DAGConfig) (*graph.CSR, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("gen: RandomDAG needs N >= 2, got %d", cfg.N)
	}
	maxEdges := int64(cfg.N) * int64(cfg.N-1) / 2
	if int64(cfg.M) > maxEdges {
		return nil, fmt.Errorf("gen: RandomDAG M=%d exceeds max %d for N=%d", cfg.M, maxEdges, cfg.N)
	}
	if cfg.Layers < 0 || cfg.Layers > cfg.N {
		return nil, fmt.Errorf("gen: RandomDAG Layers=%d out of [0,%d]", cfg.Layers, cfg.N)
	}
	if cfg.HotFrac < 0 || cfg.HotFrac > 1 {
		return nil, fmt.Errorf("gen: RandomDAG HotFrac=%v out of [0,1]", cfg.HotFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Layers > 1 {
		return layeredDAG(cfg, rng)
	}
	b := graph.NewBuilder(cfg.N, false)
	// Spread the edge budget evenly over sources; late vertices have small
	// forward spans, so walk sources from high to low IDs and carry any
	// unsatisfiable remainder to earlier vertices, which always have room
	// (total capacity was checked above).
	perSrc := cfg.M / (cfg.N - 1)
	extra := cfg.M % (cfg.N - 1)
	carry := 0
	for u := cfg.N - 2; u >= 0; u-- {
		want := perSrc + carry
		if u < extra {
			want++
		}
		span := cfg.N - 1 - u
		if want > span {
			carry = want - span
			want = span
		} else {
			carry = 0
		}
		if want == 0 {
			continue
		}
		if want*2 >= span {
			// Dense source: partial Fisher-Yates over the full target range.
			targets := make([]int, span)
			for i := range targets {
				targets[i] = u + 1 + i
			}
			rng.Shuffle(span, func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
			for _, v := range targets[:want] {
				b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0)
			}
		} else {
			seen := make(map[int]bool, want)
			for len(seen) < want {
				v := u + 1 + rng.Intn(span)
				if !seen[v] {
					seen[v] = true
					b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0)
				}
			}
		}
	}
	return b.Build()
}

// layeredDAG builds the Layers-deep DAG described in DAGConfig. Sources are
// spread uniformly over layers 0..L-2; each edge targets a vertex in a
// strictly higher layer (biased to the next layer), and within the target
// layer the destination falls in the hot prefix with probability 1/2 when
// HotFrac is set. Parallel edges are permitted (multiple interactions); the
// TopoSort semantics counts them in the in-degree, so correctness holds.
func layeredDAG(cfg DAGConfig, rng *rand.Rand) (*graph.CSR, error) {
	n, L := cfg.N, cfg.Layers
	layerSize := (n + L - 1) / L
	layerOf := func(v int) int { return v / layerSize }
	layerLo := func(l int) int { return l * layerSize }
	layerLen := func(l int) int {
		hi := (l + 1) * layerSize
		if hi > n {
			hi = n
		}
		return hi - layerLo(l)
	}
	b := graph.NewBuilder(n, false)
	numLayers := layerOf(n-1) + 1
	for e := 0; e < cfg.M; e++ {
		// Source: any vertex not in the last layer.
		var u int
		for {
			u = rng.Intn(n)
			if layerOf(u) < numLayers-1 {
				break
			}
		}
		// Target layer: usually the next one, occasionally further.
		tl := layerOf(u) + 1
		if rng.Intn(4) == 0 && tl < numLayers-1 {
			tl += 1 + rng.Intn(numLayers-1-tl)
		}
		span := layerLen(tl)
		off := rng.Intn(span)
		if cfg.HotFrac > 0 && rng.Intn(2) == 0 {
			hot := int(cfg.HotFrac * float64(span))
			if hot < 1 {
				hot = 1
			}
			off = rng.Intn(hot)
		}
		b.AddEdge(graph.VertexID(u), graph.VertexID(layerLo(tl)+off), 0)
	}
	return b.Build()
}

// Uniform generates m uniformly random directed edges over n vertices
// (self-loops excluded, duplicates possible, as in an Erdős–Rényi multigraph).
func Uniform(n, m int, seed int64) (*graph.CSR, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Uniform needs n >= 2, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("gen: negative edge count %d", m)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0)
	}
	return b.Build()
}

// WithWeights returns a copy of g carrying uniformly random edge weights in
// (lo, hi], the paper's SSSP setup ("randomly generated weight value for
// each edge", positive). The topology is shared with g; only the weight
// array is new.
func WithWeights(g *graph.CSR, lo, hi float32, seed int64) (*graph.CSR, error) {
	if lo < 0 || hi <= lo {
		return nil, fmt.Errorf("gen: bad weight range (%v, %v]", lo, hi)
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float32, len(g.Edges))
	for i := range w {
		w[i] = lo + (hi-lo)*(1-rng.Float32()) // in (lo, hi]
	}
	return &graph.CSR{Offsets: g.Offsets, Edges: g.Edges, Weights: w}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
