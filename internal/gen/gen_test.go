package gen

import (
	"testing"
	"testing/quick"

	"hetgraph/internal/graph"
)

func TestPowerLawShape(t *testing.T) {
	cfg := DefaultPowerLaw(5000)
	g, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.MeanDegree < cfg.MeanDeg*0.5 || s.MeanDegree > cfg.MeanDeg*1.5 {
		t.Errorf("mean degree %v too far from target %v", s.MeanDegree, cfg.MeanDeg)
	}
	// Power-law graph must be skewed...
	if s.GiniOut < 0.4 {
		t.Errorf("GiniOut = %v, want skew >= 0.4", s.GiniOut)
	}
	// ...and front-loaded (the Pokec property Fig. 6 depends on).
	if s.FrontLoad < 0.6 {
		t.Errorf("FrontLoad = %v, want >= 0.6", s.FrontLoad)
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	cfg := DefaultPowerLaw(1000)
	g1, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatalf("same seed, different edge %d", i)
		}
	}
	cfg.Seed++
	g3, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := g3.NumEdges() == g1.NumEdges()
	if same {
		for i := range g1.Edges {
			if g1.Edges[i] != g3.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestPowerLawRejectsBadConfig(t *testing.T) {
	bad := []PowerLawConfig{
		{N: 1, MeanDeg: 5, Alpha: 2},
		{N: 100, MeanDeg: 0, Alpha: 2},
		{N: 100, MeanDeg: 5, Alpha: 1},
		{N: 100, MeanDeg: 5, Alpha: 2, FrontBias: 1.5},
		{N: 100, MeanDeg: 5, Alpha: 2, FrontBias: -0.1},
	}
	for i, cfg := range bad {
		if _, err := PowerLaw(cfg); err == nil {
			t.Errorf("case %d: PowerLaw accepted bad config %+v", i, cfg)
		}
	}
}

func TestPowerLawNoSelfLoops(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{N: 500, MeanDeg: 8, Alpha: 2.2, FrontBias: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			if d == graph.VertexID(v) {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
}

func TestCommunityShape(t *testing.T) {
	cfg := DefaultCommunity(4000)
	g, err := Community(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("community graph must carry interaction weights")
	}
	// Directed representation of an undirected graph: symmetric.
	tr := g.Transpose()
	if tr.NumEdges() != g.NumEdges() {
		t.Fatal("edge counts differ under transpose")
	}
	in := g.InDegrees()
	out := g.OutDegrees()
	for v := range in {
		if in[v] != out[v] {
			t.Fatalf("vertex %d: in %d != out %d (not symmetric)", v, in[v], out[v])
		}
	}
	// No isolated vertices (SC requires every vertex to participate).
	for v, d := range out {
		if d == 0 {
			t.Fatalf("isolated vertex %d", v)
		}
	}
	// Weights positive.
	for i, w := range g.Weights {
		if w <= 0 {
			t.Fatalf("non-positive weight %v at %d", w, i)
		}
	}
}

func TestCommunityLocality(t *testing.T) {
	// Most edges should be short-range (within contiguous communities):
	// that locality is what the hybrid partitioner exploits.
	g, err := Community(CommunityConfig{N: 6000, Communities: 30, IntraDeg: 3, InterFrac: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	span := int32(6000 / 30 * 2)
	var local, total int
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			diff := d - int32(v)
			if diff < 0 {
				diff = -diff
			}
			if diff <= span {
				local++
			}
			total++
		}
	}
	if frac := float64(local) / float64(total); frac < 0.7 {
		t.Errorf("local edge fraction = %v, want >= 0.7", frac)
	}
}

func TestCommunityRejectsBadConfig(t *testing.T) {
	bad := []CommunityConfig{
		{N: 1, Communities: 1},
		{N: 100, Communities: 0},
		{N: 100, Communities: 5, InterFrac: -1},
		{N: 100, Communities: 5, InterFrac: 2},
	}
	for i, cfg := range bad {
		if _, err := Community(cfg); err == nil {
			t.Errorf("case %d: Community accepted bad config", i)
		}
	}
}

func TestRandomDAGIsDAG(t *testing.T) {
	g, err := RandomDAG(DefaultDAG(500, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsDAG() {
		t.Fatal("RandomDAG produced a cycle")
	}
	if got := g.NumEdges(); got != 20000 {
		t.Fatalf("edges = %d, want 20000", got)
	}
}

func TestRandomDAGNoDuplicates(t *testing.T) {
	g, err := RandomDAG(DAGConfig{N: 100, M: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		seen := map[graph.VertexID]bool{}
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			if seen[d] {
				t.Fatalf("duplicate edge %d->%d", v, d)
			}
			if d <= graph.VertexID(v) {
				t.Fatalf("backward edge %d->%d", v, d)
			}
			seen[d] = true
		}
	}
}

func TestRandomDAGDense(t *testing.T) {
	// Near-complete DAG exercises the dense (Fisher-Yates) path.
	n := 40
	m := n * (n - 1) / 2
	g, err := RandomDAG(DAGConfig{N: n, M: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if int(g.NumEdges()) != m {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), m)
	}
	if !g.IsDAG() {
		t.Fatal("dense DAG has cycle")
	}
}

func TestRandomDAGRejectsBadConfig(t *testing.T) {
	if _, err := RandomDAG(DAGConfig{N: 1, M: 0}); err == nil {
		t.Error("accepted N=1")
	}
	if _, err := RandomDAG(DAGConfig{N: 4, M: 100}); err == nil {
		t.Error("accepted M above max")
	}
}

func TestUniform(t *testing.T) {
	g, err := Uniform(200, 5000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			if d == graph.VertexID(v) {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
	if _, err := Uniform(1, 5, 0); err == nil {
		t.Error("accepted n=1")
	}
	if _, err := Uniform(10, -1, 0); err == nil {
		t.Error("accepted negative m")
	}
}

func TestWithWeights(t *testing.T) {
	g := graph.PaperExample()
	wg, err := WithWeights(g, 0, 10, 23)
	if err != nil {
		t.Fatal(err)
	}
	if !wg.Weighted() {
		t.Fatal("no weights")
	}
	if len(wg.Weights) != len(g.Edges) {
		t.Fatalf("weight count %d != edge count %d", len(wg.Weights), len(g.Edges))
	}
	for i, w := range wg.Weights {
		if w <= 0 || w > 10 {
			t.Fatalf("weight[%d] = %v out of (0,10]", i, w)
		}
	}
	// Topology shared, not copied.
	if &wg.Edges[0] != &g.Edges[0] {
		t.Error("WithWeights copied topology")
	}
	if _, err := WithWeights(g, 5, 5, 0); err == nil {
		t.Error("accepted empty weight range")
	}
	if _, err := WithWeights(g, -1, 5, 0); err == nil {
		t.Error("accepted negative lo")
	}
}

// property: Uniform always yields a valid CSR with the requested edge count.
func TestQuickUniformValid(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := 2 + int(nRaw)%64
		m := int(mRaw)
		g, err := Uniform(n, m, seed)
		if err != nil {
			return false
		}
		return g.Validate() == nil && int(g.NumEdges()) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLayeredDAG(t *testing.T) {
	cfg := DefaultDAG(800, 60000)
	if cfg.Layers < 2 {
		t.Fatal("default DAG must be layered")
	}
	g, err := RandomDAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsDAG() {
		t.Fatal("layered DAG has a cycle")
	}
	if g.NumEdges() != 60000 {
		t.Fatalf("edges = %d, want 60000", g.NumEdges())
	}
	// Every edge must point to a strictly higher layer.
	layerSize := (cfg.N + cfg.Layers - 1) / cfg.Layers
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			if int(d)/layerSize <= v/layerSize {
				t.Fatalf("edge %d->%d does not advance layers", v, d)
			}
		}
	}
	// The wavefront depth equals the layer count (all supersteps wide), and
	// hot columns exist (HotFrac concentrates in-degree).
	in := g.InDegrees()
	var maxIn int32
	for _, d := range in {
		if d > maxIn {
			maxIn = d
		}
	}
	meanIn := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(maxIn) < 3*meanIn {
		t.Errorf("max in-degree %d not hot vs mean %.1f", maxIn, meanIn)
	}
}

func TestLayeredDAGValidation(t *testing.T) {
	if _, err := RandomDAG(DAGConfig{N: 10, M: 5, Layers: -1}); err == nil {
		t.Error("accepted negative layers")
	}
	if _, err := RandomDAG(DAGConfig{N: 10, M: 5, Layers: 11}); err == nil {
		t.Error("accepted layers > N")
	}
	if _, err := RandomDAG(DAGConfig{N: 10, M: 5, Layers: 2, HotFrac: 1.5}); err == nil {
		t.Error("accepted HotFrac > 1")
	}
}

func TestRMATShape(t *testing.T) {
	cfg := DefaultRMAT(12)
	g, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1<<12 || int(g.NumEdges()) != 16<<12 {
		t.Fatalf("shape = %d/%d", g.NumVertices(), g.NumEdges())
	}
	s := graph.ComputeStats(g)
	// R-MAT with Graph500 parameters is strongly skewed.
	if s.GiniOut < 0.5 {
		t.Errorf("RMAT GiniOut = %v, want >= 0.5", s.GiniOut)
	}
	// No self loops.
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			if d == graph.VertexID(v) {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, err := RMAT(DefaultRMAT(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(DefaultRMAT(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed differs")
		}
	}
}

func TestRMATValidation(t *testing.T) {
	bad := []RMATConfig{
		{Scale: 0, EdgeFactor: 4, A: 0.5, B: 0.2, C: 0.2},
		{Scale: 30, EdgeFactor: 4, A: 0.5, B: 0.2, C: 0.2},
		{Scale: 8, EdgeFactor: 0, A: 0.5, B: 0.2, C: 0.2},
		{Scale: 8, EdgeFactor: 4, A: 0.9, B: 0.2, C: 0.2}, // D < 0
		{Scale: 8, EdgeFactor: 4, A: -0.1, B: 0.2, C: 0.2},
		{Scale: 8, EdgeFactor: 4, A: 0.5, B: 0.2, C: 0.2, Noise: 1.5},
	}
	for i, cfg := range bad {
		if _, err := RMAT(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
