package core_test

import (
	"fmt"
	"math"
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/core"
	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/seqref"
	"hetgraph/internal/trace"
)

// directionGraphs returns the oracle-equivalence graph set: a skewed
// power-law graph (the case direction switching exists for — the frontier
// blows up to a hub-dominated majority within a few hops) and a seeded
// uniform random graph (narrow frontiers, the push-biased case).
func directionGraphs(t testing.TB) map[string]*graph.CSR {
	t.Helper()
	pl, err := gen.PowerLaw(gen.PowerLawConfig{N: 900, MeanDeg: 8, Alpha: 2.1, FrontBias: 0.7, Locality: 0.6, LocalWindow: 0.05, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := gen.Uniform(600, 2400, 72)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.CSR{"powerlaw": pl, "uniform": uni}
}

func directions() []core.Direction {
	return []core.Direction{core.DirectionPush, core.DirectionPull, core.DirectionAuto}
}

// TestDirectionOracleBFS: push, pull, and auto single-device BFS all produce
// exactly the classic level assignment, on both graph shapes. Pull recomputes
// each frontier parent's message from its state, so the reduced multiset —
// and therefore every level — is identical, not merely equivalent.
func TestDirectionOracleBFS(t *testing.T) {
	for name, g := range directionGraphs(t) {
		want := seqref.ClassicBFS(g, 0)
		for _, dir := range directions() {
			t.Run(fmt.Sprintf("%s/%s", name, dir), func(t *testing.T) {
				app := apps.NewBFS(0)
				res, err := core.RunF32(app, g, core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true, Direction: dir})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatal("did not converge")
				}
				for v := range want {
					if app.Levels[v] != want[v] {
						t.Fatalf("level[%d] = %d, want %d", v, app.Levels[v], want[v])
					}
				}
				if dir == core.DirectionPull && res.Counters.PullSupersteps == 0 {
					t.Fatal("pull run recorded no pull supersteps")
				}
			})
		}
	}
}

// TestDirectionOracleSSSP: same property for the weighted min-fold app,
// where pull cannot early-exit and must fold every frontier parent.
func TestDirectionOracleSSSP(t *testing.T) {
	for name, g := range directionGraphs(t) {
		wg, err := gen.WithWeights(g, 0, 10, 73)
		if err != nil {
			t.Fatal(err)
		}
		want := seqref.ClassicSSSP(wg, 0)
		for _, dir := range directions() {
			t.Run(fmt.Sprintf("%s/%s", name, dir), func(t *testing.T) {
				app := apps.NewSSSP(0)
				res, err := core.RunF32(app, wg, core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true, Direction: dir})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatal("did not converge")
				}
				for v := range want {
					if app.Dist[v] != want[v] {
						t.Fatalf("dist[%d] = %v, want %v", v, app.Dist[v], want[v])
					}
				}
			})
		}
	}
}

// TestDirectionOracleHetero: per-rank autonomous direction decisions stay
// exact in a device group — cut-edge influence always travels as messages,
// so a pulling rank and a pushing rank interoperate within one superstep.
func TestDirectionOracleHetero(t *testing.T) {
	g := directionGraphs(t)["powerlaw"]
	wg, err := gen.WithWeights(g, 0, 10, 74)
	if err != nil {
		t.Fatal(err)
	}
	wantBFS := seqref.ClassicBFS(wg, 0)
	wantSSSP := seqref.ClassicSSSP(wg, 0)
	for _, n := range []int{2, 3} {
		assign := nrankAssign(t, wg, n)
		for _, dir := range directions() {
			t.Run(fmt.Sprintf("ranks=%d/%s", n, dir), func(t *testing.T) {
				opts := nrankOpts(t, n, core.DefaultMaxIterations, 0, "")
				for r := range opts {
					opts[r].Direction = dir
				}
				bfs := apps.NewBFS(0)
				if _, err := core.RunF32Hetero(bfs, wg, assign, opts...); err != nil {
					t.Fatal(err)
				}
				for v := range wantBFS {
					if bfs.Levels[v] != wantBFS[v] {
						t.Fatalf("bfs level[%d] = %d, want %d", v, bfs.Levels[v], wantBFS[v])
					}
				}
				sssp := apps.NewSSSP(0)
				if _, err := core.RunF32Hetero(sssp, wg, assign, opts...); err != nil {
					t.Fatal(err)
				}
				for v := range wantSSSP {
					if sssp.Dist[v] != wantSSSP[v] {
						t.Fatalf("sssp dist[%d] = %v, want %v", v, sssp.Dist[v], wantSSSP[v])
					}
				}
			})
		}
	}
}

// TestDirectionDegradedRejoinOracle: an auto-direction group run through a
// flaky-rank fault plan (degrade at superstep 2, rejoin two supersteps
// later) still lands exactly on the classic answer — the direction state is
// reconstructed from app state, not from history the failed rank lost.
func TestDirectionDegradedRejoinOracle(t *testing.T) {
	g := chaosGraph(t)
	want := seqref.ClassicSSSP(g, 0)
	const n = 3
	assign := nrankAssign(t, g, n)
	opts := nrankOpts(t, n, core.DefaultMaxIterations, 1, "rank2:flaky@2x2")
	opts[0].Rejoin = true
	for r := range opts {
		opts[r].Direction = core.DirectionAuto
	}
	app := apps.NewSSSP(0)
	res, err := core.RunF32Hetero(app, g, assign, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Healed {
		t.Fatal("run did not heal despite flaky fault and Rejoin")
	}
	for v := range want {
		if app.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, app.Dist[v], want[v])
		}
	}
}

// TestDirectionAutoSwitchesAndSaves: on a power-law BFS, auto must actually
// switch (trace shows both push and pull supersteps), label every phase
// sample with its superstep's direction, and generate no more messages than
// pure push — the point of the optimization.
func TestDirectionAutoSwitchesAndSaves(t *testing.T) {
	g := directionGraphs(t)["powerlaw"]
	run := func(dir core.Direction, rec *trace.Recorder) machine.Counters {
		app := apps.NewBFS(0)
		res, err := core.RunF32(app, g, core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true, Direction: dir, Trace: rec})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters
	}
	rec := trace.NewRecorder()
	auto := run(core.DirectionAuto, rec)
	push := run(core.DirectionPush, nil)

	seen := map[string]bool{}
	for _, s := range rec.Samples() {
		if s.Direction == "" {
			t.Fatalf("sample %s/%d/%s has no direction label", s.Device, s.Iteration, s.Phase)
		}
		seen[s.Direction] = true
	}
	if !seen["push"] || !seen["pull"] {
		t.Fatalf("auto run used directions %v, want both push and pull", seen)
	}
	if auto.PullSupersteps == 0 {
		t.Fatal("auto run recorded no pull supersteps")
	}
	if push.PullSupersteps != 0 || push.PullEdgesScanned != 0 {
		t.Fatalf("push run recorded pull work: %d supersteps, %d edges", push.PullSupersteps, push.PullEdgesScanned)
	}
	if auto.Messages > push.Messages {
		t.Fatalf("auto generated %d messages, more than push's %d", auto.Messages, push.Messages)
	}
}

// TestDirectionPullRejectedForPushOnlyApps: explicit pull with an app that
// cannot pull (PageRank, and every generic-message app) is a typed options
// error; auto silently stays push.
func TestDirectionPullRejectedForPushOnlyApps(t *testing.T) {
	g := directionGraphs(t)["uniform"]
	_, err := core.RunF32(apps.NewPageRank(), g, core.Options{Dev: machine.CPU(), Direction: core.DirectionPull, MaxIterations: 2})
	var ioe *core.InvalidOptionsError
	if !asInvalidOptions(err, &ioe) || ioe.Field != "Direction" {
		t.Fatalf("pagerank pull: got %v, want *InvalidOptionsError on Direction", err)
	}
	// Auto with a push-only app runs, pushes, and labels nothing.
	res, err := core.RunF32(apps.NewPageRank(), g, core.Options{Dev: machine.CPU(), Direction: core.DirectionAuto, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.PullSupersteps != 0 {
		t.Fatal("push-only app recorded pull supersteps under auto")
	}
	// Unknown direction values are rejected up front.
	if _, err := core.RunF32(apps.NewBFS(0), g, core.Options{Dev: machine.CPU(), Direction: core.Direction(9)}); err == nil {
		t.Fatal("accepted unknown Direction")
	}
}

func asInvalidOptions(err error, target **core.InvalidOptionsError) bool {
	ioe, ok := err.(*core.InvalidOptionsError)
	if ok {
		*target = ioe
	}
	return ok
}

// TestPageRankByteDeterminism: repeated PageRank runs — multi-threaded,
// locking and pipelined, single device and a 2-rank group — produce
// bit-identical ranks, because the engine folds its float32 sums in
// canonical sorted order (sorted CSB lanes, sorting remote combiner).
func TestPageRankByteDeterminism(t *testing.T) {
	g := directionGraphs(t)["powerlaw"]
	const iters = 15
	bits := func(rs []float32) []uint32 {
		out := make([]uint32, len(rs))
		for i, r := range rs {
			out[i] = math.Float32bits(r)
		}
		return out
	}
	single := func(scheme core.Scheme) []uint32 {
		app := apps.NewPageRank()
		if _, err := core.RunF32(app, g, core.Options{Dev: machine.CPU(), Scheme: scheme, Vectorized: true, MaxIterations: iters}); err != nil {
			t.Fatal(err)
		}
		return bits(app.Ranks)
	}
	hetero := func() []uint32 {
		assign := nrankAssign(t, g, 2)
		app := apps.NewPageRank()
		if _, err := core.RunF32Hetero(app, g, assign, nrankOpts(t, 2, iters, 0, "")...); err != nil {
			t.Fatal(err)
		}
		return bits(app.Ranks)
	}
	for name, run := range map[string]func() []uint32{
		"locking":   func() []uint32 { return single(core.SchemeLocking) },
		"pipelined": func() []uint32 { return single(core.SchemePipelined) },
		"hetero2":   hetero,
	} {
		t.Run(name, func(t *testing.T) {
			want := run()
			for trial := 0; trial < 3; trial++ {
				got := run()
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("trial %d: rank[%d] bits %08x != %08x — float32 fold order leaked", trial, v, got[v], want[v])
					}
				}
			}
		})
	}
}
