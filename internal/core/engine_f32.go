package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hetgraph/internal/comm"
	"hetgraph/internal/csb"
	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/metrics"
	"hetgraph/internal/pipeline"
	"hetgraph/internal/sched"
	"hetgraph/internal/trace"
)

// delivery is one reduced message ready for vertex updating.
type delivery struct {
	v   graph.VertexID
	val float32
}

// deviceF32 is one device's engine state for a float32-message application.
// For single-device runs assign is nil; for heterogeneous runs it maps each
// vertex to its owner rank and ep connects to the peer device.
type deviceF32 struct {
	app    AppF32
	g      *graph.CSR
	opt    Options
	cm     machine.CostModel
	buf    *csb.Buffer
	rank   int
	assign []int32
	ep     *comm.Endpoint[float32]
	// step is the current superstep, used to index injected faults.
	step int64
	// wall holds the current iteration's measured wall-clock phase
	// durations; written only when opt.Metrics is non-nil (exchange is the
	// exception: comm measures it regardless, the copy here is free).
	wall phaseWallNS

	remoteMu sync.Mutex
	remote   remoteCombinerF32
	remCount atomic.Int64

	fillScratch []int32
	pipe        *pipeline.Pipelined[float32]

	// din holds the direction-optimizing state (transpose, bitmap
	// frontiers, switch heuristic); nil for push-only configurations, which
	// keeps the original hot path branch-free beyond one nil check.
	din *directionState
	// sortLanes canonicalizes reduction order for order-sensitive apps
	// (float32 sums): each CSB lane is sorted ascending before folding, so
	// repeated runs reduce identical multisets in identical order.
	sortLanes bool
}

// remoteCombinerF32 is the remote message buffer contract the engine needs:
// the eager comm.Combiner for exactly-associative reductions, or the
// order-canonicalizing comm.SortingCombiner for order-sensitive ones.
type remoteCombinerF32 interface {
	Add(dst graph.VertexID, v float32)
	DrainRouted(out [][]comm.Msg[float32], rankOf func(graph.VertexID) int) [][]comm.Msg[float32]
	Len() int
}

func newDeviceF32(app AppF32, g *graph.CSR, opt Options, rank int, assign []int32, ep *comm.Endpoint[float32]) (*deviceF32, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	cm, err := machine.NewCostModel(opt.Dev, app.Profile())
	if err != nil {
		return nil, err
	}
	buf, err := csb.Build(g, csb.Config{
		Width:    opt.Dev.SIMDWidth,
		K:        opt.K,
		Identity: app.Identity(),
		Mode:     opt.CSBMode,
	})
	if err != nil {
		return nil, err
	}
	d := &deviceF32{app: app, g: g, opt: opt, cm: cm, buf: buf, rank: rank, assign: assign, ep: ep}
	if opt.Scheme == SchemePipelined {
		d.pipe, err = pipeline.NewPipelined[float32](opt.Workers, opt.Movers, opt.GenBatchSize)
		if err != nil {
			return nil, err
		}
	}
	if assign != nil {
		if IsOrderSensitive(app) {
			d.remote = comm.NewSortingCombiner[float32](g.NumVertices(), app.ReduceScalar)
		} else {
			d.remote = comm.NewCombiner(g.NumVertices(), app.ReduceScalar)
		}
	}
	d.sortLanes = IsOrderSensitive(app)
	if opt.Direction != DirectionPush {
		if p, ok := app.(PullerF32); ok {
			d.din = newDirectionState(p, g, rank, assign)
		} else if opt.Direction == DirectionPull {
			return nil, &InvalidOptionsError{Field: "Direction", Reason: fmt.Sprintf("pull requires the application to implement core.PullerF32; %T does not (auto falls back to push)", app)}
		}
	}
	return d, nil
}

// local reports whether this device owns v.
func (d *deviceF32) local(v graph.VertexID) bool {
	return d.assign == nil || d.assign[v] == int32(d.rank)
}

// route is the locking-scheme emit target: local messages enter the CSB
// through its synchronized insert, remote ones accumulate in the combiner.
func (d *deviceF32) route(dst graph.VertexID, val float32) {
	if d.local(dst) {
		d.buf.Insert(dst, val)
		return
	}
	d.remoteMu.Lock()
	d.remote.Add(dst, val)
	d.remoteMu.Unlock()
	d.remCount.Add(1)
}

// routeOwnedBatch is the pipelined-scheme sink: the calling mover is the
// unique owner of every destination in the batch, so local runs go through
// the CSB's lock-free batch insert. The remote combiner is shared across
// movers and keeps its mutex (remote messages are rare relative to local
// ones for any sensible partition).
func (d *deviceF32) routeOwnedBatch(dsts []graph.VertexID, vals []float32) {
	for i := 0; i < len(dsts); {
		if d.local(dsts[i]) {
			j := i + 1
			for j < len(dsts) && d.local(dsts[j]) {
				j++
			}
			d.buf.InsertOwnedBatch(dsts[i:j], vals[i:j])
			i = j
			continue
		}
		d.remoteMu.Lock()
		d.remote.Add(dsts[i], vals[i])
		d.remoteMu.Unlock()
		d.remCount.Add(1)
		i++
	}
}

// generate runs the superstep's generate phase: it resolves the traversal
// direction (when the app supports pulling), then either runs the
// configured message-generation scheme (push) or emits only cut-edge
// messages (pull; see generatePull).
func (d *deviceF32) generate(active []graph.VertexID, c *machine.Counters) error {
	if d.din != nil {
		d.decideDirection(active)
		if d.din.mode == DirectionPull {
			return d.generatePull(active, c)
		}
	}
	gen := func(v graph.VertexID, emit func(graph.VertexID, float32)) {
		if d.opt.Fault.PanicNow(d.rank, d.step, fault.PhaseGenerate) {
			panic(fmt.Sprintf("fault: injected panic, rank %d superstep %d phase generate", d.rank, d.step))
		}
		d.app.Generate(v, emit)
	}
	var st pipeline.Stats
	var err error
	switch d.opt.Scheme {
	case SchemeLocking:
		st, err = pipeline.RunLocking(active, d.opt.Threads, gen, d.route)
	case SchemePipelined:
		st, err = d.pipe.RunBatched(active, gen, d.routeOwnedBatch)
	default:
		err = fmt.Errorf("core: unknown scheme %v", d.opt.Scheme)
	}
	if err != nil {
		return err
	}
	c.ActiveVertices += int64(len(active))
	c.EdgesTraversed += st.Messages
	c.Messages += st.Messages
	c.TaskFetches += st.TaskFetches
	c.QueueOps += st.QueueOps
	c.QueueBatchOps += st.QueueBatchOps
	c.RemoteMessages += d.remCount.Swap(0)
	c.ColumnsUsed += d.buf.ColumnsUsed()
	c.Steps++
	if d.opt.Scheme == SchemeLocking {
		// Contention statistics from the real per-column insert counts,
		// priced for the modeled device's thread count.
		d.fillScratch = d.buf.ColumnFills(d.fillScratch[:0])
		exp, floor := machine.ContentionStats(d.fillScratch, d.opt.Dev.Threads())
		c.ConflictExpected += exp
		if floor > c.SerialFloorMsgs {
			c.SerialFloorMsgs = floor
		}
	}
	return nil
}

// exchange performs the cross-device round: drains the remote combiner
// routed per destination owner, swaps payloads with every live peer, and
// inserts received messages locally. It returns the peers' summed active
// count from the previous update step, or a *comm.DeviceFailedError when
// the round failed (timeout, dead peer, or an injected fault on this rank).
// With no endpoint or no live peers the round is a no-op (a lone member
// owns every vertex, so the combiner is empty by construction).
func (d *deviceF32) exchange(activeLocal int64, c *machine.Counters, pt *PhaseTimes) (int64, error) {
	if d.ep == nil || d.ep.NumLivePeers() == 0 {
		return 0, nil
	}
	// Drain into fresh per-rank slices: the payload crosses to peers that
	// may still be reading it while this device runs ahead — reusing a
	// scratch buffer here would race with the receivers.
	send := d.remote.DrainRouted(make([][]comm.Msg[float32], d.ep.Ranks()), func(v graph.VertexID) int { return int(d.assign[v]) })
	recv, activeRemote, st, err := d.ep.ExchangeAll(send, activeLocal)
	if err != nil {
		return 0, err
	}
	for _, m := range recv {
		d.buf.Insert(m.Dst, m.Val)
	}
	c.Messages += int64(len(recv))
	c.BytesSent += st.BytesSent
	c.Exchanges++
	pt.Exchange += st.SimSeconds
	d.wall.exchange += st.WallNS
	return activeRemote, nil
}

// process dispatches the superstep's process phase: the CSB reduction for
// push supersteps, or the bottom-up sweep (which also reduces the CSB's
// remote deliveries first) for pull supersteps.
func (d *deviceF32) process(c *machine.Counters) ([]delivery, error) {
	if d.din != nil && d.din.mode == DirectionPull {
		return d.processPull(c)
	}
	return d.processPush(c)
}

// processPush runs message processing over the CSB task units with dynamic
// scheduling, on the vectorized or scalar path, and returns the reduced
// deliveries.
func (d *deviceF32) processPush(c *machine.Counters) ([]delivery, error) {
	nTasks := int64(d.buf.NumTasks())
	s, err := sched.New(nTasks, sched.ChunkFor(nTasks, d.opt.Threads))
	if err != nil {
		return nil, err
	}
	vectorized := d.opt.Vectorized && d.app.Profile().Reducible
	perThread := make([][]delivery, d.opt.Threads)
	var vecRows, reduced atomic.Int64
	var wg sync.WaitGroup
	var pc pipeline.PanicCollector
	for t := 0; t < d.opt.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			defer pc.Capture()
			if d.opt.Fault.PanicNow(d.rank, d.step, fault.PhaseProcess) {
				panic(fmt.Sprintf("fault: injected panic, rank %d superstep %d phase process", d.rank, d.step))
			}
			var out []delivery
			var lanes []csb.Lane
			var sortScratch []float32
			var localRows, localReduced int64
			for {
				lo, hi, ok := s.Next()
				if !ok {
					break
				}
				for task := lo; task < hi; task++ {
					arr, rows := d.buf.Task(int(task))
					if rows == 0 {
						continue
					}
					lanes = d.buf.Lanes(int(task), lanes[:0])
					if d.sortLanes {
						// Canonicalize each lane's fold order: the lane holds a
						// deterministic multiset (insertion order varies with
						// thread interleaving), so sorting it makes the
						// subsequent reduction — vectorized or scalar —
						// byte-deterministic. Identity padding is untouched and
						// exact under the fold.
						for _, l := range lanes {
							sortScratch = arr.SortLane(l.Lane, int(l.Count), sortScratch)
						}
					}
					if vectorized {
						d.app.ReduceVec(arr, rows)
						localRows += int64(rows)
						for _, l := range lanes {
							out = append(out, delivery{l.Vertex, arr.At(0, l.Lane)})
							localReduced += int64(l.Count)
						}
					} else {
						for _, l := range lanes {
							v := arr.At(0, l.Lane)
							for r := 1; r < int(l.Count); r++ {
								v = d.app.ReduceScalar(v, arr.At(r, l.Lane))
							}
							out = append(out, delivery{l.Vertex, v})
							localReduced += int64(l.Count)
						}
					}
				}
			}
			perThread[t] = out
			vecRows.Add(localRows)
			reduced.Add(localReduced)
		}(t)
	}
	wg.Wait()
	if err := pc.Err(); err != nil {
		return nil, err
	}
	var total int
	for _, out := range perThread {
		total += len(out)
	}
	deliveries := make([]delivery, 0, total)
	for _, out := range perThread {
		deliveries = append(deliveries, out...)
	}
	c.VecRows += vecRows.Load()
	c.ReducedMessages += reduced.Load()
	c.TaskFetches += s.Fetches()
	c.Steps++
	return deliveries, nil
}

// update applies the reduced messages with dynamic scheduling and returns
// the vertices active in the next iteration.
func (d *deviceF32) update(deliveries []delivery, c *machine.Counters) ([]graph.VertexID, error) {
	n := int64(len(deliveries))
	s, err := sched.New(n, sched.ChunkFor(n, d.opt.Threads))
	if err != nil {
		return nil, err
	}
	perThread := make([][]graph.VertexID, d.opt.Threads)
	var wg sync.WaitGroup
	var pc pipeline.PanicCollector
	for t := 0; t < d.opt.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			defer pc.Capture()
			if d.opt.Fault.PanicNow(d.rank, d.step, fault.PhaseUpdate) {
				panic(fmt.Sprintf("fault: injected panic, rank %d superstep %d phase update", d.rank, d.step))
			}
			var act []graph.VertexID
			for {
				lo, hi, ok := s.Next()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					dl := deliveries[i]
					if d.app.Update(dl.v, dl.val) {
						act = append(act, dl.v)
					}
				}
			}
			perThread[t] = act
		}(t)
	}
	wg.Wait()
	if err := pc.Err(); err != nil {
		return nil, err
	}
	var next []graph.VertexID
	for _, act := range perThread {
		next = append(next, act...)
	}
	c.UpdatedVertices += n
	c.TaskFetches += s.Fetches()
	c.Steps++
	return next, nil
}

// phaseTimes prices one iteration's counters on the modeled device.
func (d *deviceF32) phaseTimes(c machine.Counters) PhaseTimes {
	var pt PhaseTimes
	switch d.opt.Scheme {
	case SchemePipelined:
		pt.Generate = d.cm.GeneratePipelined(c, d.opt.Dev.Threads()-machineMovers(d.opt), machineMovers(d.opt))
	default:
		pt.Generate = d.cm.GenerateLocking(c, d.opt.Dev.Threads())
	}
	pt.Process = d.cm.Process(c, d.opt.Dev.Threads(), d.opt.Vectorized)
	// Pull supersteps add the bottom-up in-edge sweep to the process phase;
	// zero when no edges were scanned.
	pt.Process += d.cm.Pull(c, d.opt.Dev.Threads())
	pt.Update = d.cm.Update(c, d.opt.Dev.Threads())
	return pt
}

// machineMovers returns the mover count scaled to the modeled device (the
// real goroutine split may differ when Threads is overridden).
func machineMovers(o Options) int {
	_, movers := machine.DefaultPipeSplit(o.Dev)
	if o.Movers > 0 && o.Workers > 0 && o.Workers+o.Movers == o.Dev.Threads() {
		return o.Movers
	}
	return movers
}

// phaseWallNS is one iteration's measured wall-clock phase durations in
// nanoseconds.
type phaseWallNS struct {
	generate, exchange, process, update int64
}

// emitEvent records e on sink, stamping the host time; nil-safe.
func emitEvent(sink metrics.Sink, e metrics.Event) {
	if sink == nil {
		return
	}
	if e.UnixNano == 0 {
		e.UnixNano = time.Now().UnixNano()
	}
	sink.RecordEvent(e)
}

// recordMetrics emits the iteration's wall-clock + simulated phase samples
// to the configured metrics sink, if any, and resets the wall scratch.
func (d *deviceF32) recordMetrics(iter int64, c machine.Counters, pt PhaseTimes) {
	sink := d.opt.Metrics
	if sink == nil {
		return
	}
	dev := d.opt.traceLabel()
	dir := d.direction()
	sink.RecordPhase(metrics.PhaseSample{Device: dev, Rank: d.rank, Superstep: iter, Phase: metrics.PhaseGenerate, Direction: dir, WallNS: d.wall.generate, SimSeconds: pt.Generate, Events: c.Messages})
	if c.Exchanges > 0 {
		sink.RecordPhase(metrics.PhaseSample{Device: dev, Rank: d.rank, Superstep: iter, Phase: metrics.PhaseExchange, Direction: dir, WallNS: d.wall.exchange, SimSeconds: pt.Exchange, Events: c.BytesSent})
	}
	sink.RecordPhase(metrics.PhaseSample{Device: dev, Rank: d.rank, Superstep: iter, Phase: metrics.PhaseProcess, Direction: dir, WallNS: d.wall.process, SimSeconds: pt.Process, Events: c.ReducedMessages})
	sink.RecordPhase(metrics.PhaseSample{Device: dev, Rank: d.rank, Superstep: iter, Phase: metrics.PhaseUpdate, Direction: dir, WallNS: d.wall.update, SimSeconds: pt.Update, Events: c.UpdatedVertices})
	d.wall = phaseWallNS{}
}

// recordTrace emits the iteration's phase samples to the configured
// recorder, if any.
func (d *deviceF32) recordTrace(iter int64, c machine.Counters, pt PhaseTimes) {
	r := d.opt.Trace
	if r == nil {
		return
	}
	dev := d.opt.traceLabel()
	dir := d.direction()
	r.Record(trace.Sample{Device: dev, Iteration: iter, Phase: trace.PhaseGenerate, Direction: dir, SimSeconds: pt.Generate, Events: c.Messages})
	if c.Exchanges > 0 {
		r.Record(trace.Sample{Device: dev, Iteration: iter, Phase: trace.PhaseExchange, Direction: dir, SimSeconds: pt.Exchange, Events: c.BytesSent})
	}
	r.Record(trace.Sample{Device: dev, Iteration: iter, Phase: trace.PhaseProcess, Direction: dir, SimSeconds: pt.Process, Events: c.ReducedMessages})
	r.Record(trace.Sample{Device: dev, Iteration: iter, Phase: trace.PhaseUpdate, Direction: dir, SimSeconds: pt.Update, Events: c.UpdatedVertices})
}

// runIteration executes one full superstep (without exchange) and returns
// the next active set, the iteration counters, and their simulated time.
func (d *deviceF32) runIteration(active []graph.VertexID) ([]graph.VertexID, machine.Counters, PhaseTimes, error) {
	measured := d.opt.Metrics != nil
	var c machine.Counters
	c.Iterations = 1
	c.BufferResetBytes = d.buf.Reset()
	var t time.Time
	if measured {
		t = time.Now()
	}
	if err := d.generate(active, &c); err != nil {
		return nil, c, PhaseTimes{}, err
	}
	if measured {
		now := time.Now()
		d.wall.generate = now.Sub(t).Nanoseconds()
		t = now
	}
	deliveries, err := d.process(&c)
	if err != nil {
		return nil, c, PhaseTimes{}, err
	}
	if measured {
		now := time.Now()
		d.wall.process = now.Sub(t).Nanoseconds()
		t = now
	}
	next, err := d.update(deliveries, &c)
	if err != nil {
		return nil, c, PhaseTimes{}, err
	}
	if measured {
		d.wall.update = time.Since(t).Nanoseconds()
	}
	return next, c, d.phaseTimes(c), nil
}

// RunF32 executes app on a single modeled device until no vertex is active
// or MaxIterations is reached.
func RunF32(app AppF32, g *graph.CSR, opt Options) (Result, error) {
	if err := validateRunArgs(app, g); err != nil {
		return Result{}, err
	}
	d, err := newDeviceF32(app, g, opt, 0, nil, nil)
	if err != nil {
		return Result{}, err
	}
	return runF32Loop(d, app.Init(g), d.opt.MaxIterations)
}

// runF32Loop drives the single-device BSP loop for at most maxIter
// iterations starting from the given active set. It is shared by RunF32 and
// by the degraded single-device continuation after a heterogeneous failure.
func runF32Loop(d *deviceF32, active []graph.VertexID, maxIter int) (Result, error) {
	start := time.Now()
	var res Result
	fixed := IsFixedActive(d.app)
	initial := active
	for iter := 0; iter < maxIter; iter++ {
		d.step = int64(iter)
		if len(active) == 0 {
			res.Converged = true
			break
		}
		if abortRequested(d.opt.Abort) {
			emitEvent(d.opt.Metrics, metrics.Event{
				Kind: metrics.EventRunAborted, Rank: d.rank,
				Superstep: int64(iter), Detail: "cooperative abort at superstep boundary",
			})
			res.SimSeconds = res.Phases.Total()
			res.WallSeconds = time.Since(start).Seconds()
			return res, &RunAbortedError{Superstep: int64(iter)}
		}
		next, c, pt, err := d.runIteration(active)
		if err != nil {
			// Attribute the failure to its superstep and return the result
			// accumulated so far — the counters and phase times of every
			// completed iteration are diagnostic material, not garbage.
			err = fmt.Errorf("core: superstep %d: %w", iter, err)
			emitEvent(d.opt.Metrics, metrics.Event{
				Kind: metrics.EventSuperstepError, Rank: d.rank,
				Superstep: int64(iter), Detail: err.Error(),
			})
			res.SimSeconds = res.Phases.Total()
			res.WallSeconds = time.Since(start).Seconds()
			return res, err
		}
		d.recordTrace(res.Iterations, c, pt)
		d.recordMetrics(res.Iterations, c, pt)
		res.Iterations++
		res.Counters.Add(c)
		res.Phases.Add(pt)
		if fixed {
			active = initial
		} else {
			active = next
		}
	}
	if len(active) == 0 {
		res.Converged = true
	}
	res.SimSeconds = res.Phases.Total()
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}
