package core_test

import (
	"fmt"
	"math"
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/core"
	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/metrics"
	"hetgraph/internal/partition"
	"hetgraph/internal/seqref"
)

// nrankAssign splits the graph evenly across n ranks.
func nrankAssign(t testing.TB, g *graph.CSR, n int) []int32 {
	t.Helper()
	weights := make([]int, n)
	for i := range weights {
		weights[i] = 1
	}
	assign, err := partition.MakeN(partition.MethodRoundRobin, g, weights)
	if err != nil {
		t.Fatal(err)
	}
	return assign
}

// nrankOpts builds one Options per rank: rank 0 is the CPU with the locking
// scheme (and carries the injector/checkpoint config, which the supervisor
// propagates to the group), every other rank a MIC.
func nrankOpts(t testing.TB, n, iters, ckEvery int, plan string) []core.Options {
	t.Helper()
	var inj *fault.Injector
	if plan != "" {
		p, err := fault.Parse(plan)
		if err != nil {
			t.Fatal(err)
		}
		inj, err = fault.NewInjector(p)
		if err != nil {
			t.Fatal(err)
		}
	}
	opts := make([]core.Options, n)
	opts[0] = core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true,
		MaxIterations: iters, CheckpointEvery: ckEvery, Fault: inj}
	for r := 1; r < n; r++ {
		opts[r] = core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
			MaxIterations: iters}
	}
	return opts
}

// TestNRankPageRankMatchesClassic is the N-rank acceptance property for the
// fixed-length app: a fault-free group run at N ∈ {3, 4} must match the
// sequential power-iteration oracle within the usual PageRank tolerance.
func TestNRankPageRankMatchesClassic(t *testing.T) {
	g := chaosGraph(t)
	const iters = 10
	want := seqref.ClassicPageRank(g, 0.85, iters)
	for _, n := range []int{3, 4} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			assign := nrankAssign(t, g, n)
			app := apps.NewPageRank()
			res, err := core.RunF32Hetero(app, g, assign, nrankOpts(t, n, iters, 0, "")...)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Dev) != n {
				t.Fatalf("len(Dev) = %d, want %d", len(res.Dev), n)
			}
			if res.Iterations != iters {
				t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
			}
			for v := range want {
				diff := math.Abs(float64(app.Ranks[v] - want[v]))
				if diff > 2e-3*math.Max(1, float64(want[v])) {
					t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
				}
			}
		})
	}
}

// TestNRankSSSPMatchesDijkstra is the N-rank acceptance property for the
// moving-frontier app: group runs at N ∈ {3, 4} must reach the exact
// Dijkstra fixed point. The 3-rank case uses the single-Options Devices
// form to cover device-group expansion.
func TestNRankSSSPMatchesDijkstra(t *testing.T) {
	g := chaosGraph(t)
	want := seqref.ClassicSSSP(g, 0)
	for _, n := range []int{3, 4} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			assign := nrankAssign(t, g, n)
			app := apps.NewSSSP(0)
			var (
				res core.HeteroResult
				err error
			)
			if n == 3 {
				group := make([]machine.DeviceSpec, n)
				group[0] = machine.CPU()
				for r := 1; r < n; r++ {
					group[r] = machine.MIC()
				}
				res, err = core.RunF32Hetero(app, g, assign, core.Options{
					Devices: group, Scheme: core.SchemePipelined, Vectorized: true,
					MaxIterations: core.DefaultMaxIterations,
				})
			} else {
				res, err = core.RunF32Hetero(app, g, assign, nrankOpts(t, n, core.DefaultMaxIterations, 0, "")...)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("SSSP group run did not converge")
			}
			for v := range want {
				if app.Dist[v] != want[v] {
					t.Fatalf("dist[%d] = %v, Dijkstra says %v", v, app.Dist[v], want[v])
				}
			}
		})
	}
}

// TestQuorumBlameTwoSimultaneousFailures drops two of four ranks at the same
// exchange round: the blame quorum must convict exactly those two, the two
// survivors restore the checkpoint and finish as a group, and the result
// still matches the oracle. No heal is attempted (no recovery declared).
func TestQuorumBlameTwoSimultaneousFailures(t *testing.T) {
	g := chaosGraph(t)
	const n, iters = 4, 10
	want := seqref.ClassicPageRank(g, 0.85, iters)
	assign := nrankAssign(t, g, n)
	app := apps.NewPageRank()
	res, err := core.RunF32Hetero(app, g, assign, nrankOpts(t, n, iters, 1, "rank1:drop@3;rank3:drop@3")...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("run did not degrade after two rank failures")
	}
	if len(res.FailedRanks) != 2 || res.FailedRanks[0] != 1 || res.FailedRanks[1] != 3 {
		t.Fatalf("FailedRanks = %v, want [1 3]", res.FailedRanks)
	}
	if res.FailedRank != 1 {
		t.Errorf("FailedRank = %d, want 1 (lowest convicted)", res.FailedRank)
	}
	if res.FailedSuperstep != 3 {
		t.Errorf("FailedSuperstep = %d, want 3", res.FailedSuperstep)
	}
	if res.Healed {
		t.Error("Healed = true with no declared recovery")
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
}

// TestFourRankDegradeRejoinChaos runs the full lifecycle at N=4: rank 2
// drops at superstep 3 and recovers two supersteps later, the three
// survivors continue as a group from the checkpoint, and with Rejoin the
// healed run finishes at full membership matching the oracle — with the
// degraded→rejoined event pair in order.
func TestFourRankDegradeRejoinChaos(t *testing.T) {
	g := chaosGraph(t)
	const n, iters = 4, 10
	want := seqref.ClassicPageRank(g, 0.85, iters)
	assign := nrankAssign(t, g, n)
	app := apps.NewPageRank()
	col := metrics.NewCollector()
	opts := nrankOpts(t, n, iters, 1, "rank2:flaky@3x2")
	opts[0].Rejoin = true
	for r := range opts {
		opts[r].Metrics = col
	}
	res, err := core.RunF32Hetero(app, g, assign, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Healed {
		t.Fatal("4-rank run did not heal despite flaky fault and Rejoin")
	}
	if res.FailedRank != 2 || res.FailedSuperstep != 3 {
		t.Errorf("FailedRank=%d FailedSuperstep=%d, want rank 2 at superstep 3",
			res.FailedRank, res.FailedSuperstep)
	}
	if res.RejoinSuperstep != 5 {
		t.Errorf("RejoinSuperstep = %d, want 5", res.RejoinSuperstep)
	}
	if res.FailedRanks != nil {
		t.Errorf("FailedRanks = %v after heal, want nil", res.FailedRanks)
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
	events := col.Events()
	di := eventIndex(events, metrics.EventDegraded)
	ri := eventIndex(events, metrics.EventRejoined)
	if di < 0 || ri < 0 || di > ri {
		t.Fatalf("lifecycle events out of order: degraded@%d rejoined@%d", di, ri)
	}
	// The healed tail must be 4-rank again: the restarted rank records
	// phase samples at supersteps >= the rejoin point.
	tail := false
	for _, s := range col.Phases() {
		if s.Rank == 2 && s.Superstep >= res.RejoinSuperstep {
			tail = true
			break
		}
	}
	if !tail {
		t.Error("no rank-2 phase samples after the rejoin superstep: tail was not 4-rank")
	}
}
