package core

import (
	"sync"
	"time"
)

// AbortController owns an Options.Abort channel and the ways it gets closed:
// an explicit Abort call (operator signal, client cancel), a wall-clock
// deadline (AbortAfter), or a parent channel closing (Follow). It exists so
// job-scoped cancellation composes — the serve daemon merges "server is
// draining", "job deadline expired", and "client canceled" into the one
// channel the engine watches — and so hetgraph-run's -job-timeout shares the
// same plumbing as its signal handler. All methods are safe for concurrent
// use and Abort is idempotent.
type AbortController struct {
	ch   chan struct{}
	once sync.Once

	mu    sync.Mutex
	timer *time.Timer
	stop  chan struct{} // closed by Stop; ends Follow goroutines
}

// NewAbortController creates a controller whose channel is open.
func NewAbortController() *AbortController {
	return &AbortController{ch: make(chan struct{}), stop: make(chan struct{})}
}

// Channel returns the abort channel to set on Options.Abort.
func (a *AbortController) Channel() <-chan struct{} { return a.ch }

// Abort closes the channel. Idempotent; safe from any goroutine.
func (a *AbortController) Abort() {
	a.once.Do(func() { close(a.ch) })
}

// Aborted reports whether the channel is closed.
func (a *AbortController) Aborted() bool {
	select {
	case <-a.ch:
		return true
	default:
		return false
	}
}

// AbortAfter arms (or re-arms) a wall-clock deadline: the controller aborts
// d from now unless Stop is called first. d <= 0 aborts immediately.
func (a *AbortController) AbortAfter(d time.Duration) {
	if d <= 0 {
		a.Abort()
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.timer != nil {
		a.timer.Stop()
	}
	a.timer = time.AfterFunc(d, a.Abort)
}

// Follow propagates parent: when parent closes, this controller aborts. The
// watcher goroutine exits once parent closes, the controller aborts, or Stop
// is called. A nil parent is a no-op.
func (a *AbortController) Follow(parent <-chan struct{}) {
	if parent == nil {
		return
	}
	a.mu.Lock()
	stop := a.stop
	a.mu.Unlock()
	if stop == nil { // already stopped: nothing to watch for
		return
	}
	go func() {
		select {
		case <-parent:
			// A Stop that completed before the parent closed wins: the
			// select may have picked the parent case even with both ready.
			select {
			case <-stop:
			default:
				a.Abort()
			}
		case <-a.ch:
		case <-stop:
		}
	}()
}

// Stop cancels a pending deadline and releases Follow watchers without
// aborting. Call it when the guarded work finished before the deadline.
func (a *AbortController) Stop() {
	a.mu.Lock()
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	stop := a.stop
	a.stop = nil
	a.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}
