package core_test

import (
	"testing"
	"time"

	"hetgraph/internal/core"
)

func waitClosed(t *testing.T, ch <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s not aborted within the deadline guard", what)
	}
}

func TestAbortControllerIdempotent(t *testing.T) {
	ctl := core.NewAbortController()
	defer ctl.Stop()
	if ctl.Aborted() {
		t.Fatal("fresh controller reports aborted")
	}
	ctl.Abort()
	ctl.Abort() // second abort must not panic (close of closed channel)
	if !ctl.Aborted() {
		t.Fatal("controller not aborted after Abort")
	}
	waitClosed(t, ctl.Channel(), "controller")
}

func TestAbortAfterFires(t *testing.T) {
	ctl := core.NewAbortController()
	defer ctl.Stop()
	ctl.AbortAfter(time.Millisecond)
	waitClosed(t, ctl.Channel(), "deadline controller")
}

func TestAbortAfterZeroIsImmediate(t *testing.T) {
	ctl := core.NewAbortController()
	defer ctl.Stop()
	ctl.AbortAfter(0)
	if !ctl.Aborted() {
		t.Fatal("AbortAfter(0) did not abort immediately")
	}
}

func TestAbortAfterRearm(t *testing.T) {
	ctl := core.NewAbortController()
	defer ctl.Stop()
	ctl.AbortAfter(time.Hour)
	ctl.AbortAfter(time.Millisecond) // re-arm to a sooner deadline
	waitClosed(t, ctl.Channel(), "re-armed controller")
}

func TestStopDisarmsDeadline(t *testing.T) {
	ctl := core.NewAbortController()
	ctl.AbortAfter(20 * time.Millisecond)
	ctl.Stop()
	time.Sleep(60 * time.Millisecond)
	if ctl.Aborted() {
		t.Fatal("Stop did not disarm the pending deadline")
	}
}

func TestFollowPropagatesParentAbort(t *testing.T) {
	parent := core.NewAbortController()
	defer parent.Stop()
	child := core.NewAbortController()
	defer child.Stop()
	child.Follow(parent.Channel())
	parent.Abort()
	waitClosed(t, child.Channel(), "following child")
}

func TestFollowNilParentIsNoop(t *testing.T) {
	ctl := core.NewAbortController()
	defer ctl.Stop()
	ctl.Follow(nil)
	if ctl.Aborted() {
		t.Fatal("Follow(nil) aborted the controller")
	}
}

func TestStopDetachesFollower(t *testing.T) {
	parent := core.NewAbortController()
	defer parent.Stop()
	child := core.NewAbortController()
	child.Follow(parent.Channel())
	child.Stop()
	parent.Abort()
	time.Sleep(20 * time.Millisecond)
	if child.Aborted() {
		t.Fatal("stopped child still followed its parent's abort")
	}
}
