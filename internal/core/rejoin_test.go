package core_test

import (
	"errors"
	"math"
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/core"
	"hetgraph/internal/machine"
	"hetgraph/internal/metrics"
	"hetgraph/internal/seqref"
)

// eventIndex returns the index of the first event of the given kind, or -1.
func eventIndex(events []metrics.Event, kind string) int {
	for i, e := range events {
		if e.Kind == kind {
			return i
		}
	}
	return -1
}

// TestHeteroPageRankHealsAfterFlaky is the healing acceptance property: a
// transient rank-1 failure at superstep 3 that clears two supersteps later
// must degrade, replay the restarted rank from the newest checkpoint, rejoin
// at superstep 5, finish in two-device lockstep, and match the fault-free
// sequential reference within the usual PageRank tolerance.
func TestHeteroPageRankHealsAfterFlaky(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 10
	want := seqref.ClassicPageRank(g, 0.85, iters)

	app := apps.NewPageRank()
	col := metrics.NewCollector()
	opt0, opt1 := chaosOpts(iters, 1, "rank1:flaky@3x2", t)
	opt0.Rejoin = true
	opt0.Metrics = col
	opt1.Metrics = col
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Healed {
		t.Fatal("run did not heal despite flaky fault and Rejoin")
	}
	if res.Degraded {
		t.Fatal("Degraded = true after a successful rejoin with no later failure")
	}
	if res.FailedRank != 1 || res.FailedSuperstep != 3 {
		t.Errorf("FailedRank=%d FailedSuperstep=%d, want rank 1 at superstep 3",
			res.FailedRank, res.FailedSuperstep)
	}
	// flaky@3x2 clears at superstep 3+2=5: the survivor covers supersteps
	// 3 and 4 alone, then both ranks run 5..9.
	if res.RejoinSuperstep != 5 {
		t.Errorf("RejoinSuperstep = %d, want 5", res.RejoinSuperstep)
	}
	if res.DegradedSupersteps != 2 {
		t.Errorf("DegradedSupersteps = %d, want 2", res.DegradedSupersteps)
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}

	events := col.Events()
	di := eventIndex(events, metrics.EventDegraded)
	ri := eventIndex(events, metrics.EventRejoined)
	if di < 0 || ri < 0 {
		t.Fatalf("missing lifecycle events: degraded@%d rejoined@%d (events %v)", di, ri, events)
	}
	if di > ri {
		t.Errorf("EventDegraded recorded at %d after EventRejoined at %d", di, ri)
	}
	if fi := eventIndex(events, metrics.EventRejoinFailed); fi >= 0 {
		t.Errorf("unexpected %s event: %+v", metrics.EventRejoinFailed, events[fi])
	}

	// The healed tail must actually be two-device: rank 1 records phase
	// samples at supersteps >= the rejoin point.
	tail := false
	for _, s := range col.Phases() {
		if s.Rank == 1 && s.Superstep >= res.RejoinSuperstep {
			tail = true
			break
		}
	}
	if !tail {
		t.Error("no rank-1 phase samples after the rejoin superstep: tail was not two-device")
	}
}

// TestHeteroSSSPHealsAfterFlaky checks healing on the moving-frontier path:
// the restarted rank replays from a checkpoint whose frontiers must be split
// and re-admitted exactly for SSSP to reach the Dijkstra fixed point.
func TestHeteroSSSPHealsAfterFlaky(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	want := seqref.ClassicSSSP(g, 0)

	app := apps.NewSSSP(0)
	opt0, opt1 := chaosOpts(core.DefaultMaxIterations, 1, "rank1:flaky@2x2", t)
	opt0.Rejoin = true
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Healed {
		t.Fatal("SSSP run did not heal")
	}
	if res.Degraded {
		t.Fatal("Degraded = true after successful rejoin")
	}
	if res.RejoinSuperstep != 4 {
		t.Errorf("RejoinSuperstep = %d, want 4", res.RejoinSuperstep)
	}
	if !res.Converged {
		t.Fatal("healed SSSP did not converge")
	}
	// Min-reductions are order-insensitive: the result is exact.
	for v := range want {
		if app.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, app.Dist[v], want[v])
		}
	}
}

// TestHeteroFlakyWithoutRejoinStaysDegraded pins the compatibility contract:
// without Options.Rejoin the same flaky plan degrades permanently, exactly
// like a drop, and still produces a correct single-device result.
func TestHeteroFlakyWithoutRejoinStaysDegraded(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 10
	want := seqref.ClassicPageRank(g, 0.85, iters)

	app := apps.NewPageRank()
	opt0, opt1 := chaosOpts(iters, 1, "rank1:flaky@3x2", t)
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Healed {
		t.Fatal("Healed = true without Rejoin enabled")
	}
	if !res.Degraded {
		t.Fatal("run did not degrade")
	}
	if res.DegradedSupersteps == 0 {
		t.Error("DegradedSupersteps = 0 on a permanently degraded run")
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
}

// TestHeteroHealThenPermanentFailure composes a transient failure that heals
// with a later permanent drop: the run must report both Healed (it did
// rejoin) and Degraded (it ended single-device), and still be correct.
func TestHeteroHealThenPermanentFailure(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 10
	want := seqref.ClassicPageRank(g, 0.85, iters)

	app := apps.NewPageRank()
	opt0, opt1 := chaosOpts(iters, 1, "rank1:flaky@2x1;rank1:drop@6", t)
	opt0.Rejoin = true
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Healed {
		t.Fatal("run did not heal from the flaky failure")
	}
	if res.RejoinSuperstep != 3 {
		t.Errorf("RejoinSuperstep = %d, want 3", res.RejoinSuperstep)
	}
	if !res.Degraded {
		t.Fatal("run did not end degraded despite the permanent drop@6")
	}
	if res.FailedSuperstep != 6 {
		t.Errorf("FailedSuperstep = %d, want 6 (the last failure)", res.FailedSuperstep)
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
}

// TestHeteroRecoverEventHeals exercises the explicit recover grammar: a
// permanent drop paired with rank1:recover@5 heals at superstep 5.
func TestHeteroRecoverEventHeals(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 10
	want := seqref.ClassicPageRank(g, 0.85, iters)

	app := apps.NewPageRank()
	opt0, opt1 := chaosOpts(iters, 1, "rank1:drop@3;rank1:recover@5", t)
	opt0.Rejoin = true
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Healed || res.Degraded {
		t.Fatalf("Healed=%v Degraded=%v, want healed and not degraded", res.Healed, res.Degraded)
	}
	if res.RejoinSuperstep != 5 {
		t.Errorf("RejoinSuperstep = %d, want 5", res.RejoinSuperstep)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
}

// TestHeteroAbort requests a shutdown before the run starts: both ranks must
// stop at the superstep-0 boundary and surface *RunAbortedError with the
// abort event recorded.
func TestHeteroAbort(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)

	app := apps.NewPageRank()
	col := metrics.NewCollector()
	abort := make(chan struct{})
	close(abort)
	opt0, opt1 := chaosOpts(10, 1, "", t)
	opt0.Abort = abort
	opt0.Metrics = col
	_, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	var aerr *core.RunAbortedError
	if !errors.As(err, &aerr) {
		t.Fatalf("err = %v, want *RunAbortedError", err)
	}
	if aerr.Superstep != 0 {
		t.Errorf("aborted at superstep %d, want 0", aerr.Superstep)
	}
	if eventIndex(col.Events(), metrics.EventRunAborted) < 0 {
		t.Errorf("no %s event recorded (events %v)", metrics.EventRunAborted, col.Events())
	}
}

// TestRejoinRequiresCheckpointing pins the validation contract: Rejoin
// without a checkpoint cadence or directory is an options error naming the
// field, for both single-device and heterogeneous entry points.
func TestRejoinRequiresCheckpointing(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)

	check := func(t *testing.T, err error) {
		t.Helper()
		var ierr *core.InvalidOptionsError
		if !errors.As(err, &ierr) {
			t.Fatalf("err = %v, want *InvalidOptionsError", err)
		}
		if ierr.Field != "Rejoin" {
			t.Fatalf("Field = %q, want \"Rejoin\"", ierr.Field)
		}
	}

	t.Run("single", func(t *testing.T) {
		opt := core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, MaxIterations: 4, Rejoin: true}
		_, err := core.RunF32(apps.NewPageRank(), g, opt)
		check(t, err)
	})
	t.Run("hetero", func(t *testing.T) {
		opt0, opt1 := chaosOpts(4, 0, "", t)
		opt1.Rejoin = true // merged across ranks: either side setting it counts
		_, err := core.RunF32Hetero(apps.NewPageRank(), g, assign, opt0, opt1)
		check(t, err)
	})
	t.Run("hetero-with-checkpointing-ok", func(t *testing.T) {
		opt0, opt1 := chaosOpts(4, 2, "", t)
		opt0.Rejoin = true
		res, err := core.RunF32Hetero(apps.NewPageRank(), g, assign, opt0, opt1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Healed || res.Degraded {
			t.Fatalf("fault-free run reported Healed=%v Degraded=%v", res.Healed, res.Degraded)
		}
	})
}
