package core_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/checkpoint"
	"hetgraph/internal/core"
	"hetgraph/internal/gen"
	"hetgraph/internal/seqref"
)

// durableOpts is chaosOpts plus a durable store: checkpoints flush to dir,
// and resume asks for a cold start from it.
func durableOpts(iters, ckEvery int, dir, plan string, resume bool, t testing.TB) (core.Options, core.Options) {
	t.Helper()
	opt0, opt1 := chaosOpts(iters, ckEvery, plan, t)
	opt0.CheckpointDir = dir
	opt0.Resume = resume
	return opt0, opt1
}

// TestCrashRestartResumePageRank is the tentpole acceptance property: a run
// whose durable commit fails mid-computation aborts like a crash, and a
// fresh process (here: a fresh app instance and engine) resumes from the
// on-disk store and produces the sequential-oracle result.
func TestCrashRestartResumePageRank(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 8
	want := seqref.ClassicPageRank(g, 0.85, iters)
	dir := t.TempDir()

	// Phase 1: the commit of superstep 3's checkpoint hits an injected
	// fsync failure. The storage path is shared, so the run must abort with
	// the store error — not degrade to a single device.
	app := apps.NewPageRank()
	opt0, opt1 := durableOpts(iters, 1, dir, "rank0:iofail@3:sync", false, t)
	_, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	var serr *checkpoint.StoreError
	if !errors.As(err, &serr) {
		t.Fatalf("faulted commit: %v, want wrapped *checkpoint.StoreError", err)
	}

	// Phase 2: restart. A brand-new app resumes from the newest on-disk
	// generation (superstep 2) and finishes the remaining supersteps.
	app2 := apps.NewPageRank()
	opt0, opt1 = durableOpts(iters, 1, dir, "", true, t)
	res, err := core.RunF32Hetero(app2, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DiskResumed {
		t.Fatal("result does not record the disk resume")
	}
	if res.ResumedSuperstep != 2 {
		t.Fatalf("ResumedSuperstep = %d, want 2 (last committed boundary)", res.ResumedSuperstep)
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d (absolute supersteps)", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app2.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app2.Ranks[v], want[v], diff)
		}
	}
}

// TestCrashRestartResumeCorruptNewestFallsBack: the newest on-disk
// generation is deliberately corrupted (a torn write that the commit never
// noticed); resume must fall back to the previous generation and still
// reach the oracle result.
func TestCrashRestartResumeCorruptNewestFallsBack(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 8
	want := seqref.ClassicPageRank(g, 0.85, iters)
	dir := t.TempDir()

	// Superstep 2's commit is torn (silently half-written, "successful");
	// superstep 3's commit fails hard, crashing the run.
	app := apps.NewPageRank()
	opt0, opt1 := durableOpts(iters, 1, dir, "rank0:torn@2;rank0:iofail@3:sync", false, t)
	_, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	var serr *checkpoint.StoreError
	if !errors.As(err, &serr) {
		t.Fatalf("faulted commit: %v, want wrapped *checkpoint.StoreError", err)
	}

	app2 := apps.NewPageRank()
	opt0, opt1 = durableOpts(iters, 1, dir, "", true, t)
	res, err := core.RunF32Hetero(app2, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	// The torn superstep-2 generation is newest on disk but unverifiable;
	// the store must fall back to superstep 1.
	if res.ResumedSuperstep != 1 {
		t.Fatalf("ResumedSuperstep = %d, want 1 (fallback past torn generation)", res.ResumedSuperstep)
	}
	for v := range want {
		diff := math.Abs(float64(app2.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v", v, app2.Ranks[v], want[v])
		}
	}
}

// TestCrashRestartResumeFrontierApps covers the moving-frontier apps: the
// restored per-rank frontiers must be exact for BFS levels, SSSP distances,
// and CC labels to reach their fixed points after a cold start.
func TestCrashRestartResumeFrontierApps(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)

	t.Run("SSSP", func(t *testing.T) {
		want := seqref.ClassicSSSP(g, 0)
		dir := t.TempDir()
		app := apps.NewSSSP(0)
		opt0, opt1 := durableOpts(core.DefaultMaxIterations, 1, dir, "rank0:iofail@2:write", false, t)
		if _, err := core.RunF32Hetero(app, g, assign, opt0, opt1); err == nil {
			t.Fatal("faulted commit did not abort the run")
		}
		app2 := apps.NewSSSP(0)
		opt0, opt1 = durableOpts(core.DefaultMaxIterations, 1, dir, "", true, t)
		res, err := core.RunF32Hetero(app2, g, assign, opt0, opt1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || !res.DiskResumed {
			t.Fatalf("Converged=%v DiskResumed=%v, want true/true", res.Converged, res.DiskResumed)
		}
		for v := range want {
			if app2.Dist[v] != want[v] {
				t.Fatalf("dist[%d] = %v, want %v", v, app2.Dist[v], want[v])
			}
		}
	})

	t.Run("BFS", func(t *testing.T) {
		want := seqref.ClassicBFS(g, 0)
		dir := t.TempDir()
		app := apps.NewBFS(0)
		opt0, opt1 := durableOpts(core.DefaultMaxIterations, 1, dir, "rank0:iofail@2:write", false, t)
		if _, err := core.RunF32Hetero(app, g, assign, opt0, opt1); err == nil {
			t.Fatal("faulted commit did not abort the run")
		}
		app2 := apps.NewBFS(0)
		opt0, opt1 = durableOpts(core.DefaultMaxIterations, 1, dir, "", true, t)
		res, err := core.RunF32Hetero(app2, g, assign, opt0, opt1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("resumed BFS did not converge")
		}
		for v := range want {
			if app2.Levels[v] != want[v] {
				t.Fatalf("level[%d] = %d, want %d", v, app2.Levels[v], want[v])
			}
		}
	})

	t.Run("CC", func(t *testing.T) {
		// Min-label propagation matches the union-find WCC oracle only on a
		// symmetrized graph (it follows directed edges), so CC gets its own.
		cg, err := gen.Community(gen.CommunityConfig{N: 600, Communities: 6, IntraDeg: 2, InterFrac: 0.02, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		cassign := chaosAssign(t, cg)
		want := seqref.ClassicWCC(cg)
		dir := t.TempDir()
		app := apps.NewConnectedComponents()
		opt0, opt1 := durableOpts(core.DefaultMaxIterations, 1, dir, "rank0:iofail@2:write", false, t)
		if _, err := core.RunF32Hetero(app, cg, cassign, opt0, opt1); err == nil {
			t.Fatal("faulted commit did not abort the run")
		}
		app2 := apps.NewConnectedComponents()
		opt0, opt1 = durableOpts(core.DefaultMaxIterations, 1, dir, "", true, t)
		res, err := core.RunF32Hetero(app2, cg, cassign, opt0, opt1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("resumed CC did not converge")
		}
		// Labels are canonical minimum vertex IDs: compare per-vertex.
		for v := range want {
			if app2.Labels[v] != float32(want[v]) {
				t.Fatalf("label[%d] = %v, want %v", v, app2.Labels[v], want[v])
			}
		}
	})
}

// TestResumeOptionValidation: the new durability options fail fast with
// typed errors instead of surfacing mid-run.
func TestResumeOptionValidation(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	var ioe *core.InvalidOptionsError

	t.Run("DirWithoutEvery", func(t *testing.T) {
		app := apps.NewPageRank()
		opt0, opt1 := chaosOpts(4, 0, "", t)
		opt0.CheckpointDir = t.TempDir()
		_, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
		if !errors.As(err, &ioe) {
			t.Fatalf("CheckpointDir without CheckpointEvery: %v, want *core.InvalidOptionsError", err)
		}
	})

	t.Run("ResumeWithoutDir", func(t *testing.T) {
		app := apps.NewPageRank()
		opt0, opt1 := chaosOpts(4, 1, "", t)
		opt0.Resume = true
		_, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
		if !errors.As(err, &ioe) {
			t.Fatalf("Resume without CheckpointDir: %v, want *core.InvalidOptionsError", err)
		}
	})

	t.Run("ResumeEmptyStore", func(t *testing.T) {
		app := apps.NewPageRank()
		opt0, opt1 := durableOpts(4, 1, t.TempDir(), "", true, t)
		_, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
		if !errors.As(err, &ioe) || ioe.Field != "Resume" {
			t.Fatalf("Resume from empty store: %v, want *core.InvalidOptionsError{Field: Resume}", err)
		}
	})

	t.Run("UnwritableDir", func(t *testing.T) {
		// A path under a regular file cannot be created, root or not.
		blocker := filepath.Join(t.TempDir(), "file")
		if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		app := apps.NewPageRank()
		opt0, opt1 := durableOpts(4, 1, filepath.Join(blocker, "sub"), "", false, t)
		_, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
		if !errors.As(err, &ioe) || ioe.Field != "CheckpointDir" {
			t.Fatalf("unwritable dir: %v, want *core.InvalidOptionsError{Field: CheckpointDir}", err)
		}
	})

	t.Run("BadRetain", func(t *testing.T) {
		app := apps.NewPageRank()
		opt0, opt1 := durableOpts(4, 1, t.TempDir(), "", false, t)
		opt0.CheckpointRetain = 1
		_, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
		if !errors.As(err, &ioe) {
			t.Fatalf("CheckpointRetain 1: %v, want *core.InvalidOptionsError", err)
		}
	})
}

// TestRestartRecoveryAfterDegradedRun: durable checkpointing composes with
// the PR-2 degradation path — a run that degrades after a peer failure
// still commits its checkpoints, and its store remains resumable.
func TestRestartRecoveryAfterDegradedRun(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 6
	want := seqref.ClassicPageRank(g, 0.85, iters)
	dir := t.TempDir()

	app := apps.NewPageRank()
	opt0, opt1 := durableOpts(iters, 1, dir, "rank1:drop@3", false, t)
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.FailedRank != 1 {
		t.Fatalf("Degraded=%v FailedRank=%d, want degraded rank 1", res.Degraded, res.FailedRank)
	}

	// The store still holds the pre-failure boundary checkpoints: a fresh
	// resume from disk re-runs the tail and reaches the same fixed point.
	app2 := apps.NewPageRank()
	opt0, opt1 = durableOpts(iters, 1, dir, "", true, t)
	res2, err := core.RunF32Hetero(app2, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.DiskResumed || res2.ResumedGeneration == 0 {
		t.Fatalf("DiskResumed=%v ResumedGeneration=%d, want resumed from a positive generation",
			res2.DiskResumed, res2.ResumedGeneration)
	}
	if res2.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res2.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app2.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v", v, app2.Ranks[v], want[v])
		}
	}
}
