package core_test

import (
	"errors"
	"math"
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/comm"
	"hetgraph/internal/core"
	"hetgraph/internal/gen"
	"hetgraph/internal/metrics"
	"hetgraph/internal/seqref"
)

// TestPartitionFenceHeal4Rank is the split-brain acceptance property: a
// 4-rank run partitioned into {0,1}|{2,3} at superstep 3 must fence the
// minority side ({2,3} — the tie breaks toward the side holding rank 0),
// degrade-and-continue on the quorum side, re-admit the fenced ranks at the
// heal@6 boundary through the epoch-fenced rejoin handshake, and finish at
// full membership matching the fault-free oracle.
func TestPartitionFenceHeal4Rank(t *testing.T) {
	g := chaosGraph(t)
	const n, iters = 4, 10
	want := seqref.ClassicPageRank(g, 0.85, iters)
	assign := nrankAssign(t, g, n)
	app := apps.NewPageRank()
	col := metrics.NewCollector()
	opts := nrankOpts(t, n, iters, 1, "partition@3:{0,1}|{2,3};heal@6")
	opts[0].Rejoin = true
	for r := range opts {
		opts[r].Metrics = col
	}
	res, err := core.RunF32Hetero(app, g, assign, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partitioned {
		t.Fatal("Partitioned = false: the supervisor did not detect the split")
	}
	if res.PartitionSuperstep != 3 {
		t.Errorf("PartitionSuperstep = %d, want 3", res.PartitionSuperstep)
	}
	if len(res.PartitionMajority) != 2 || res.PartitionMajority[0] != 0 || res.PartitionMajority[1] != 1 {
		t.Errorf("PartitionMajority = %v, want [0 1] (tie breaks toward rank 0's side)", res.PartitionMajority)
	}
	if len(res.PartitionMinority) != 2 || res.PartitionMinority[0] != 2 || res.PartitionMinority[1] != 3 {
		t.Errorf("PartitionMinority = %v, want [2 3]", res.PartitionMinority)
	}
	if !res.Healed {
		t.Fatal("run did not heal at the heal@6 boundary")
	}
	if res.Degraded {
		t.Fatal("Degraded = true after a successful rejoin")
	}
	if res.RejoinSuperstep != 6 {
		t.Errorf("RejoinSuperstep = %d, want 6", res.RejoinSuperstep)
	}
	if res.FailedRanks != nil {
		t.Errorf("FailedRanks = %v after heal, want nil", res.FailedRanks)
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
	events := col.Events()
	pi := eventIndex(events, metrics.EventPartitioned)
	ri := eventIndex(events, metrics.EventRejoined)
	if pi < 0 || ri < 0 || pi > ri {
		t.Fatalf("lifecycle events out of order: partitioned@%d rejoined@%d", pi, ri)
	}
	if fi := eventIndex(events, metrics.EventDeviceFailed); fi >= 0 {
		t.Errorf("unexpected %s event for a fenced (not failed) minority: %+v", metrics.EventDeviceFailed, events[fi])
	}
	// The healed tail must be 4-rank again.
	tail := false
	for _, s := range col.Phases() {
		if s.Rank == 3 && s.Superstep >= res.RejoinSuperstep {
			tail = true
			break
		}
	}
	if !tail {
		t.Error("no rank-3 phase samples after the rejoin superstep: tail was not 4-rank")
	}
	if len(res.Links) == 0 {
		t.Error("Links empty on a 4-rank run")
	}
}

// TestPartitionWithoutHealEndsDegraded pins the permanent-partition contract:
// with no heal event the quorum side finishes degraded and still matches the
// oracle; the minority stays fenced.
func TestPartitionWithoutHealEndsDegraded(t *testing.T) {
	g := chaosGraph(t)
	const n, iters = 4, 10
	want := seqref.ClassicPageRank(g, 0.85, iters)
	assign := nrankAssign(t, g, n)
	app := apps.NewPageRank()
	opts := nrankOpts(t, n, iters, 1, "partition@3:{0,1}|{2,3}")
	opts[0].Rejoin = true
	res, err := core.RunF32Hetero(app, g, assign, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partitioned || !res.Degraded || res.Healed {
		t.Fatalf("Partitioned=%v Degraded=%v Healed=%v, want partitioned, degraded, not healed",
			res.Partitioned, res.Degraded, res.Healed)
	}
	if len(res.FailedRanks) != 2 || res.FailedRanks[0] != 2 || res.FailedRanks[1] != 3 {
		t.Errorf("FailedRanks = %v, want the fenced minority [2 3]", res.FailedRanks)
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
}

// TestPartitionWithoutCheckpointReturnsTypedError: with no checkpointing
// there is no quorum-side continuation — the run aborts, but with a typed
// *comm.PartitionedError naming both sides instead of a deadlock or an
// anonymous failure.
func TestPartitionWithoutCheckpointReturnsTypedError(t *testing.T) {
	g := chaosGraph(t)
	const n = 4
	assign := nrankAssign(t, g, n)
	opts := nrankOpts(t, n, 10, 0, "partition@2:{0,3}|{1,2}")
	_, err := core.RunF32Hetero(apps.NewPageRank(), g, assign, opts...)
	var perr *comm.PartitionedError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *comm.PartitionedError", err)
	}
	if perr.Superstep != 2 {
		t.Errorf("Superstep = %d, want 2", perr.Superstep)
	}
	if len(perr.Majority) != 2 || perr.Majority[0] != 0 || perr.Majority[1] != 3 {
		t.Errorf("Majority = %v, want [0 3]", perr.Majority)
	}
	if len(perr.Minority) != 2 || perr.Minority[0] != 1 || perr.Minority[1] != 2 {
		t.Errorf("Minority = %v, want [1 2]", perr.Minority)
	}
}

// TestPartitionMinoritySideQuorumFencesRank0 covers the asymmetric split: in
// a 3-rank group cut {0}|{1,2}, the two-rank side holds quorum even though
// the lone side is rank 0 — size beats storage ownership when there is no
// tie.
func TestPartitionMinoritySideQuorumFencesRank0(t *testing.T) {
	g := chaosGraph(t)
	const n, iters = 3, 10
	want := seqref.ClassicPageRank(g, 0.85, iters)
	assign := nrankAssign(t, g, n)
	app := apps.NewPageRank()
	opts := nrankOpts(t, n, iters, 1, "partition@2:{0}|{1,2}")
	res, err := core.RunF32Hetero(app, g, assign, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partitioned || !res.Degraded {
		t.Fatalf("Partitioned=%v Degraded=%v, want both", res.Partitioned, res.Degraded)
	}
	if len(res.PartitionMajority) != 2 || res.PartitionMajority[0] != 1 || res.PartitionMajority[1] != 2 {
		t.Errorf("PartitionMajority = %v, want [1 2]", res.PartitionMajority)
	}
	if len(res.FailedRanks) != 1 || res.FailedRanks[0] != 0 {
		t.Errorf("FailedRanks = %v, want the fenced [0]", res.FailedRanks)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
}

// TestGenericHeteroPartitionReturnsTypedError: structured-message runs have
// no checkpoint recovery, so a partition aborts — with the typed error, from
// every rank's perspective, without deadlock.
func TestGenericHeteroPartitionReturnsTypedError(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 400, Communities: 4, IntraDeg: 3, InterFrac: 0.03, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	assign := nrankAssign(t, g, 3)
	opts := nrankOpts(t, 3, 6, 0, "partition@1:{0,1}|{2}")
	gopts := make([]core.Options, 3)
	for r := range gopts {
		gopts[r] = core.Options{Dev: opts[r].Dev, Scheme: core.SchemeLocking, MaxIterations: 6, Fault: opts[r].Fault}
	}
	_, err = core.RunGenericHetero[apps.LPAMsg](apps.NewLabelPropagation(), g, assign, gopts...)
	var perr *comm.PartitionedError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *comm.PartitionedError", err)
	}
	if len(perr.Majority) != 2 || len(perr.Minority) != 1 || perr.Minority[0] != 2 {
		t.Errorf("sides %v|%v, want [0 1]|[2]", perr.Majority, perr.Minority)
	}
}

// TestCorruptRetransmitByteIdentical is the wire-integrity acceptance
// property: a run whose packets are corrupted in flight must detect every
// bad delivery by checksum, repair it by retransmission, and produce results
// byte-identical to the clean run — corruption is invisible to the
// application, visible only in the integrity counters.
func TestCorruptRetransmitByteIdentical(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 8

	clean := apps.NewPageRank()
	co0, co1 := chaosOpts(iters, 0, "", t)
	if _, err := core.RunF32Hetero(clean, g, assign, co0, co1); err != nil {
		t.Fatal(err)
	}

	app := apps.NewPageRank()
	opt0, opt1 := chaosOpts(iters, 0, "rank1:corrupt@2;rank0:corrupt@5x2", t)
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.FailedRank != -1 {
		t.Fatalf("transient corruption degraded the run: %+v", res)
	}
	if res.Integrity.CorruptDrops == 0 {
		t.Error("Integrity.CorruptDrops = 0: the injected corruption was never detected")
	}
	if res.Integrity.Retransmits == 0 {
		t.Error("Integrity.Retransmits = 0: nothing was repaired")
	}
	retrans := int64(0)
	for _, l := range res.Links {
		retrans += l.Retransmits
	}
	if retrans != res.Integrity.Retransmits {
		t.Errorf("per-link retransmits sum to %d, Integrity says %d", retrans, res.Integrity.Retransmits)
	}
	for v := range clean.Ranks {
		if math.Float32bits(app.Ranks[v]) != math.Float32bits(clean.Ranks[v]) {
			t.Fatalf("rank[%d] = %v under corruption, clean run says %v: repaired run is not byte-identical",
				v, app.Ranks[v], clean.Ranks[v])
		}
	}
}

// TestDupReorderInvisibleToResult: duplicated and reordered deliveries are
// fenced by the packet sequence numbers; the run's output must be
// byte-identical to clean, with the drops counted.
func TestDupReorderInvisibleToResult(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 8

	clean := apps.NewPageRank()
	co0, co1 := chaosOpts(iters, 0, "", t)
	if _, err := core.RunF32Hetero(clean, g, assign, co0, co1); err != nil {
		t.Fatal(err)
	}

	app := apps.NewPageRank()
	opt0, opt1 := chaosOpts(iters, 0, "rank1:dup@1;rank0:reorder@4", t)
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Integrity.DupDrops == 0 {
		t.Error("Integrity.DupDrops = 0: neither the duplicate nor the reordered stale packet was fenced")
	}
	for v := range clean.Ranks {
		if math.Float32bits(app.Ranks[v]) != math.Float32bits(clean.Ranks[v]) {
			t.Fatalf("rank[%d] = %v under dup/reorder, clean run says %v", v, app.Ranks[v], clean.Ranks[v])
		}
	}
}
