// Package core is the paper's primary contribution: the vertex-centric BSP
// runtime of Fig. 2. Each iteration runs message generation (locking or
// pipelined), an implicit cross-device remote-message exchange, message
// processing (SIMD reduction over the Condensed Static Buffer where the
// application's reduction allows it), and vertex updating, with dynamic
// intra-device load balancing in every step.
//
// Applications implement the three user functions of §III —
// GenerateMessages, ProcessMessages, UpdateVertex — through the App
// interfaces below. Float32-message applications (PageRank, BFS, SSSP,
// TopoSort) use AppF32 and get CSB storage plus SIMD reduction;
// applications with structured messages (Semi-Clustering) use AppGeneric
// and a per-vertex list buffer, exactly as the paper excludes them from
// SIMD reduction.
package core

import (
	"fmt"
	"time"

	"hetgraph/internal/csb"
	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/metrics"
	"hetgraph/internal/pipeline"
	"hetgraph/internal/trace"
	"hetgraph/internal/vec"
)

// AppF32 is a vertex program whose messages are float32 values with an
// associative, commutative reduction.
type AppF32 interface {
	// Profile describes the app's per-event costs for the device model.
	Profile() machine.AppProfile
	// Init (re)initializes vertex state for graph g and returns the
	// initially active vertices.
	Init(g *graph.CSR) []graph.VertexID
	// Generate is the user generate_messages(): called once per active
	// vertex per iteration; it must emit every outgoing message.
	Generate(v graph.VertexID, emit func(dst graph.VertexID, val float32))
	// Identity is the reduction identity stored in empty buffer cells.
	Identity() float32
	// ReduceVec is the user process_messages() on the SIMD path: it must
	// reduce rows [0, rows) of arr into row 0 using vec operations.
	ReduceVec(arr *vec.ArrayF32, rows int)
	// ReduceScalar is the scalar reduction used on the no-vectorization
	// path and for combining remote messages.
	ReduceScalar(a, b float32) float32
	// Update is the user update_vertex(): applies the reduced message and
	// reports whether the vertex is active in the next iteration.
	Update(v graph.VertexID, msg float32) bool
}

// AppGeneric is a vertex program with structured messages of type T, which
// cannot use SIMD reduction (§III).
type AppGeneric[T any] interface {
	Profile() machine.AppProfile
	Init(g *graph.CSR) []graph.VertexID
	Generate(v graph.VertexID, emit func(dst graph.VertexID, val T))
	// Combine merges two messages for the same destination; used for the
	// remote-buffer combination before a cross-device exchange.
	Combine(a, b T) T
	// Process reduces a vertex's received messages to one result.
	Process(v graph.VertexID, msgs []T) T
	Update(v graph.VertexID, res T) bool
}

// FixedActiveSet is optionally implemented by applications whose active set
// never changes — PageRank, where "all vertices generate messages along all
// edges every iteration" (§V-C). The engine then reuses the initial active
// set each iteration instead of deriving it from updates, and the run is
// bounded by MaxIterations.
type FixedActiveSet interface {
	FixedActiveSet() bool
}

// IsFixedActive reports whether app declares a fixed active set.
func IsFixedActive(app any) bool {
	f, ok := app.(FixedActiveSet)
	return ok && f.FixedActiveSet()
}

// Direction selects the traversal direction policy for applications that
// support pull/bottom-up sweeps (those implementing PullerF32 — BFS and
// SSSP among the bundled apps).
type Direction int

const (
	// DirectionPush is the paper's original scheme: active vertices insert
	// messages along their out-edges (generate → exchange → process →
	// update). The default, and the only mode for apps without PullerF32.
	DirectionPush Direction = iota
	// DirectionPull runs every superstep bottom-up: instead of inserting
	// local messages, the process phase scans candidate vertices' in-edges
	// and reads frontier parents' state directly. Cross-rank (cut-edge)
	// influence still travels as messages. Requires PullerF32.
	DirectionPull
	// DirectionAuto switches per superstep per rank with the GAS-style
	// heuristic: push → pull when the frontier's out-edges exceed the
	// unexplored out-edges divided by PullAlpha; pull → push when frontier
	// occupancy falls below the rank's vertex count divided by PullBeta.
	// Falls back to push for apps without PullerF32.
	DirectionAuto
)

func (d Direction) String() string {
	switch d {
	case DirectionPush:
		return "push"
	case DirectionPull:
		return "pull"
	case DirectionAuto:
		return "auto"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Default thresholds of the auto direction switch (Beamer's α and β;
// tunable via Options.PullAlpha / Options.PullBeta).
const (
	DefaultPullAlpha = 14.0
	DefaultPullBeta  = 24.0
)

// StragglerPolicy selects how a heterogeneous run responds when the health
// scorer confirms a rank as a straggler (alive but persistently slow — a
// gray failure, distinct from the dead-rank exchange-deadline path).
type StragglerPolicy int

const (
	// StragglerOff disables gray-failure mitigation: the health scorer
	// still classifies ranks (surfaced in HeteroResult.SuspectRanks when a
	// threshold is set), but the group keeps waiting for stragglers at
	// every barrier. The default.
	StragglerOff StragglerPolicy = iota
	// StragglerDemote soft-degrades a confirmed straggler at the next
	// checkpoint barrier: its vertices move to the healthy survivors and it
	// becomes a non-owning member, but it is never re-admitted.
	StragglerDemote
	// StragglerDemoteRehab soft-degrades like StragglerDemote and then
	// rehabilitates the rank — restores its vertices via the rejoin/replay
	// path — once its latency has stayed normal for the probation window.
	StragglerDemoteRehab
)

func (p StragglerPolicy) String() string {
	switch p {
	case StragglerOff:
		return "off"
	case StragglerDemote:
		return "demote"
	case StragglerDemoteRehab:
		return "demote-rehab"
	default:
		return fmt.Sprintf("StragglerPolicy(%d)", int(p))
	}
}

// ParseStragglerPolicy parses a policy name as used by the CLI flag.
func ParseStragglerPolicy(s string) (StragglerPolicy, error) {
	switch s {
	case "off", "":
		return StragglerOff, nil
	case "demote":
		return StragglerDemote, nil
	case "demote-rehab":
		return StragglerDemoteRehab, nil
	default:
		return 0, fmt.Errorf("core: unknown straggler policy %q (want off|demote|demote-rehab)", s)
	}
}

// Scheme selects the message-generation scheme of §IV-C.
type Scheme int

const (
	// SchemeLocking inserts messages directly under per-column
	// synchronization.
	SchemeLocking Scheme = iota
	// SchemePipelined splits threads into workers and movers connected by
	// SPSC queues.
	SchemePipelined
)

func (s Scheme) String() string {
	switch s {
	case SchemeLocking:
		return "lock"
	case SchemePipelined:
		return "pipe"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Options configures one device's engine.
type Options struct {
	// Dev is the modeled device this engine simulates time for.
	Dev machine.DeviceSpec
	// Devices, when non-empty, declares an N-rank device group for a hetero
	// run from a single Options value: rank r runs on Devices[r] and every
	// rank inherits the remaining fields. Mutually exclusive with passing
	// one Options per rank; ignored by single-device runs.
	Devices []machine.DeviceSpec
	// TraceLabel overrides the device name used in trace and metrics phase
	// samples. Empty means Dev.Name; hetero runs auto-disambiguate duplicate
	// names within a group as name#rank so per-rank output stays separable.
	TraceLabel string
	// Scheme is the message-generation scheme.
	Scheme Scheme
	// Vectorized enables the SIMD reduction path (ignored for apps whose
	// profile is not reducible).
	Vectorized bool
	// K is the CSB vertex-group width factor (default 2).
	K int
	// CSBMode selects dynamic column allocation (default) or the
	// one-to-one ablation mapping.
	CSBMode csb.InsertMode
	// Direction selects push (default), pull, or automatic per-superstep
	// push/pull switching for traversal apps implementing PullerF32.
	// DirectionPull with a push-only app is an InvalidOptionsError;
	// DirectionAuto silently runs push for push-only apps. Per-rank
	// decisions in a device group are autonomous and compose with the
	// degrade/rejoin lifecycle (see docs/architecture.md).
	Direction Direction
	// PullAlpha tunes the auto push→pull switch threshold: pull when
	// frontier out-edges > unexplored out-edges / PullAlpha. 0 means
	// DefaultPullAlpha.
	PullAlpha float64
	// PullBeta tunes the auto pull→push switch-back threshold: push when
	// frontier occupancy < rank vertices / PullBeta. 0 means
	// DefaultPullBeta.
	PullBeta float64
	// MaxIterations bounds the BSP loop; 0 means DefaultMaxIterations.
	MaxIterations int
	// Threads overrides the device's hardware thread count for the real
	// goroutine pool (0 = Dev.Threads()). Simulated time always uses the
	// modeled device's geometry.
	Threads int
	// Workers/Movers override the pipelined split (0 = paper's best split
	// via machine.DefaultPipeSplit).
	Workers, Movers int
	// GenBatchSize is the worker→mover SPSC handoff batch size under the
	// pipelined scheme: workers flush per-mover-class buffers of this many
	// messages through a single cursor publication, and movers drain whole
	// batches into the buffer. 0 resolves to 1 — the paper's per-element
	// handoff, which keeps simulated times bit-identical to the original
	// scheme; set DefaultGenBatch (or tune with autotune.TuneGenBatch) to
	// amortize the handshake. Ignored by the locking scheme.
	GenBatchSize int
	// Trace, when non-nil, records a per-superstep per-phase timeline of
	// the run (see internal/trace).
	Trace *trace.Recorder
	// Metrics, when non-nil, receives wall-clock phase samples and the
	// runtime event log (checkpoints, faults, degradations, resumes; see
	// internal/metrics). A nil sink disables all measurement at the cost of
	// one branch per phase, with no allocation on the iteration hot path —
	// the same contract as Trace. Hetero runs record each device's phases to
	// its own option's sink; run-level events go to the first non-nil sink
	// across the two device options.
	Metrics metrics.Sink
	// ExchangeTimeout bounds every cross-device exchange round in a
	// heterogeneous run: a peer that does not show up within the deadline
	// is declared dead and the run fails (or degrades to single-device when
	// checkpointing is on) instead of deadlocking. 0 = unbounded. For a
	// hetero run the first non-zero value across the two device options
	// wins (the interconnect is shared).
	ExchangeTimeout time.Duration
	// CheckpointEvery takes a superstep-boundary checkpoint of vertex
	// state and the active frontier every N completed supersteps; the app
	// must implement checkpoint.Snapshotter. After a device failure the
	// survivor restores the last checkpoint and finishes single-device.
	// 0 disables checkpointing. Hetero runs use the first non-zero value
	// across the two device options.
	CheckpointEvery int
	// CheckpointDir, when non-empty, flushes every captured checkpoint to
	// this directory through the durable store (atomic commits, CRC32C,
	// generation manifest), so a crashed process can cold-start from disk
	// with Resume. Requires CheckpointEvery > 0 (or Resume). Hetero runs
	// use the first non-empty value across the two device options.
	CheckpointDir string
	// CheckpointRetain bounds how many checkpoint generations the store
	// keeps on disk (0 = checkpoint.DefaultRetain; must be >= 2 so a
	// corrupt newest generation always leaves a fallback).
	CheckpointRetain int
	// Resume cold-starts the run from the newest verifiable generation in
	// CheckpointDir instead of from App.Init. Requires CheckpointDir; it
	// is an error when the directory holds no usable checkpoint.
	Resume bool
	// Fault, when non-nil, injects the planned faults (exchange drops,
	// delays, transient link failures, user-function panics) into the run.
	// Hetero runs use the first non-nil injector across the two options.
	Fault *fault.Injector
	// Rejoin lets a heterogeneous run heal after single-device degradation:
	// when the fault plan declares the failed rank recovered (flaky/recover
	// events), the supervisor restarts its engine from the newest
	// checkpoint and re-admits it at a superstep barrier. Requires
	// CheckpointEvery > 0 or a CheckpointDir — rejoin replays the restarted
	// rank from a checkpoint, so a run that never captures one cannot heal
	// (InvalidOptionsError otherwise). Hetero runs OR the flag across the
	// two device options.
	Rejoin bool
	// Abort, when non-nil, requests a cooperative shutdown: the run stops
	// at the next superstep boundary once the channel is closed, captures a
	// final checkpoint when checkpointing is configured, and returns the
	// partial Result alongside a *RunAbortedError.
	Abort <-chan struct{}
	// StragglerThreshold arms the per-rank health scorer of heterogeneous
	// runs: a rank whose EWMA per-superstep time exceeds the threshold
	// turns suspect, and after a few consecutive over-threshold supersteps
	// is confirmed a straggler (see internal/core/health.go for the
	// hysteresis). 0 disables scoring. Hetero runs use the first non-zero
	// value across the device options.
	StragglerThreshold time.Duration
	// StragglerPolicy selects the mitigation applied to confirmed
	// stragglers: off (observe only), demote (soft-degrade at a checkpoint
	// barrier, reassigning the straggler's vertices to healthy survivors
	// while it stays a heartbeating non-owning member), or demote-rehab
	// (demote, then restore the rank via the rejoin path once its latency
	// re-normalizes). Demotion replays state from a checkpoint, so a
	// non-off policy requires CheckpointEvery > 0, and a
	// StragglerThreshold to detect stragglers with. Hetero runs use the
	// first non-off value across the device options.
	StragglerPolicy StragglerPolicy
}

// DefaultMaxIterations guards against non-terminating vertex programs.
const DefaultMaxIterations = 10000

// DefaultGenBatch is the recommended GenBatchSize for batched pipelined
// generation (re-exported from the pipeline package).
const DefaultGenBatch = pipeline.DefaultBatch

// traceLabel is the device label used in trace and metrics samples.
func (o Options) traceLabel() string {
	if o.TraceLabel != "" {
		return o.TraceLabel
	}
	return o.Dev.Name
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 2
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = DefaultMaxIterations
	}
	if o.Threads == 0 {
		o.Threads = o.Dev.Threads()
	}
	if o.Workers == 0 || o.Movers == 0 {
		o.Workers, o.Movers = machine.DefaultPipeSplit(o.Dev)
	}
	if o.GenBatchSize == 0 {
		o.GenBatchSize = 1
	}
	if o.PullAlpha == 0 {
		o.PullAlpha = DefaultPullAlpha
	}
	if o.PullBeta == 0 {
		o.PullBeta = DefaultPullBeta
	}
	return o
}

// InvalidOptionsError reports a rejected Options field (or a nil app/graph
// argument) at Run entry. Callers can errors.As against it to distinguish
// configuration mistakes from runtime failures.
type InvalidOptionsError struct {
	// Field names the offending Options field or argument.
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *InvalidOptionsError) Error() string {
	return fmt.Sprintf("core: invalid options: %s: %s", e.Field, e.Reason)
}

// validate checks the resolved options.
func (o Options) validate() error {
	if err := o.Dev.Validate(); err != nil {
		return &InvalidOptionsError{Field: "Dev", Reason: err.Error()}
	}
	if o.Scheme != SchemeLocking && o.Scheme != SchemePipelined {
		return &InvalidOptionsError{Field: "Scheme", Reason: fmt.Sprintf("unknown scheme %d", int(o.Scheme))}
	}
	if o.Threads < 1 {
		return &InvalidOptionsError{Field: "Threads", Reason: fmt.Sprintf("%d < 1", o.Threads)}
	}
	if o.Workers < 1 || o.Movers < 1 {
		return &InvalidOptionsError{Field: "Workers/Movers", Reason: fmt.Sprintf("%d/%d, both must be >= 1", o.Workers, o.Movers)}
	}
	if o.K < 1 {
		return &InvalidOptionsError{Field: "K", Reason: fmt.Sprintf("%d < 1", o.K)}
	}
	if o.GenBatchSize < 1 {
		return &InvalidOptionsError{Field: "GenBatchSize", Reason: fmt.Sprintf("%d < 1", o.GenBatchSize)}
	}
	if o.MaxIterations < 1 {
		return &InvalidOptionsError{Field: "MaxIterations", Reason: fmt.Sprintf("%d < 1", o.MaxIterations)}
	}
	if o.Direction != DirectionPush && o.Direction != DirectionPull && o.Direction != DirectionAuto {
		return &InvalidOptionsError{Field: "Direction", Reason: fmt.Sprintf("unknown direction %d (want push | pull | auto)", int(o.Direction))}
	}
	if o.PullAlpha <= 0 {
		return &InvalidOptionsError{Field: "PullAlpha", Reason: fmt.Sprintf("%g <= 0", o.PullAlpha)}
	}
	if o.PullBeta <= 0 {
		return &InvalidOptionsError{Field: "PullBeta", Reason: fmt.Sprintf("%g <= 0", o.PullBeta)}
	}
	if o.CheckpointEvery < 0 {
		return &InvalidOptionsError{Field: "CheckpointEvery", Reason: fmt.Sprintf("%d < 0", o.CheckpointEvery)}
	}
	if o.CheckpointRetain < 0 {
		return &InvalidOptionsError{Field: "CheckpointRetain", Reason: fmt.Sprintf("%d < 0", o.CheckpointRetain)}
	}
	if o.CheckpointRetain == 1 {
		return &InvalidOptionsError{Field: "CheckpointRetain", Reason: "1 < 2: corruption fallback needs a spare generation"}
	}
	if o.CheckpointDir != "" && o.CheckpointEvery == 0 && !o.Resume {
		return &InvalidOptionsError{Field: "CheckpointDir", Reason: "requires CheckpointEvery > 0 (or Resume) — a durable store with nothing to commit is a misconfiguration"}
	}
	if o.Resume && o.CheckpointDir == "" {
		return &InvalidOptionsError{Field: "Resume", Reason: "requires CheckpointDir: there is no store to resume from"}
	}
	if o.ExchangeTimeout < 0 {
		return &InvalidOptionsError{Field: "ExchangeTimeout", Reason: fmt.Sprintf("%s < 0", o.ExchangeTimeout)}
	}
	if o.Rejoin && o.CheckpointEvery == 0 && o.CheckpointDir == "" {
		return &InvalidOptionsError{Field: "Rejoin", Reason: "requires CheckpointEvery > 0 or CheckpointDir: rejoin replays the restarted rank from a checkpoint, and a run that never captures one cannot heal"}
	}
	if o.StragglerThreshold < 0 {
		return &InvalidOptionsError{Field: "StragglerThreshold", Reason: fmt.Sprintf("%s < 0", o.StragglerThreshold)}
	}
	switch o.StragglerPolicy {
	case StragglerOff:
	case StragglerDemote, StragglerDemoteRehab:
		if o.StragglerThreshold == 0 {
			return &InvalidOptionsError{Field: "StragglerPolicy", Reason: fmt.Sprintf("%s requires StragglerThreshold > 0: there is no straggler definition to act on", o.StragglerPolicy)}
		}
		if o.CheckpointEvery == 0 {
			return &InvalidOptionsError{Field: "StragglerPolicy", Reason: fmt.Sprintf("%s requires CheckpointEvery > 0: soft-degrade and rehabilitation act at checkpoint barriers", o.StragglerPolicy)}
		}
	default:
		return &InvalidOptionsError{Field: "StragglerPolicy", Reason: fmt.Sprintf("unknown policy %d (want off|demote|demote-rehab)", int(o.StragglerPolicy))}
	}
	return nil
}

// RunAbortedError reports a run stopped cooperatively via Options.Abort at a
// superstep boundary. The accompanying Result holds the partial run up to
// Superstep; when checkpointing is configured the final state was captured
// first, so the run can be resumed later.
type RunAbortedError struct {
	// Superstep is the boundary the run stopped at (completed supersteps).
	Superstep int64
}

func (e *RunAbortedError) Error() string {
	return fmt.Sprintf("core: run aborted at superstep %d", e.Superstep)
}

// abortRequested reports whether the abort channel is closed.
func abortRequested(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// validateRunArgs rejects nil app/graph arguments with a typed error before
// any engine state is built.
func validateRunArgs(app any, g *graph.CSR) error {
	if app == nil {
		return &InvalidOptionsError{Field: "app", Reason: "nil application"}
	}
	if g == nil {
		return &InvalidOptionsError{Field: "graph", Reason: "nil graph"}
	}
	return nil
}

// PhaseTimes is the simulated per-phase time breakdown (seconds on the
// modeled device).
type PhaseTimes struct {
	Generate float64
	Process  float64
	Update   float64
	Exchange float64
}

// Total sums all phases.
func (p PhaseTimes) Total() float64 {
	return p.Generate + p.Process + p.Update + p.Exchange
}

// Add accumulates o into p.
func (p *PhaseTimes) Add(o PhaseTimes) {
	p.Generate += o.Generate
	p.Process += o.Process
	p.Update += o.Update
	p.Exchange += o.Exchange
}

// Result reports one engine run.
type Result struct {
	// Iterations actually executed.
	Iterations int64
	// Converged is true when the run ended because no vertex stayed
	// active (as opposed to hitting MaxIterations).
	Converged bool
	// Counters aggregates the real event counts of the whole run.
	Counters machine.Counters
	// Phases is the simulated per-phase time on the modeled device.
	Phases PhaseTimes
	// SimSeconds is Phases.Total(): the modeled device time of the run.
	SimSeconds float64
	// WallSeconds is host wall-clock time (no cross-device meaning; see
	// machine package docs).
	WallSeconds float64
}
