package core

import (
	"fmt"
	"time"
)

// Rank health as scored by the heterogeneous supervisor. Gray failures —
// a rank that is alive but persistently slow — are classified separately
// from the dead-rank deadline path: the exchange timeout convicts a rank
// that stopped responding, while the health scorer watches ranks that keep
// responding, just too slowly, and lets the supervisor demote them at a
// checkpoint barrier instead of stalling every superstep behind them.
type rankHealth int

const (
	// rankHealthy: EWMA superstep latency at or under the threshold.
	rankHealthy rankHealth = iota
	// rankSuspect: latency over the threshold, but not yet long enough to
	// act on (hysteresis: transient spikes must not trigger a demotion).
	rankSuspect
	// rankStraggler: latency stayed over the threshold for
	// stragglerConfirmSupersteps consecutive observations; the supervisor
	// may soft-degrade the rank at the next barrier.
	rankStraggler
)

func (s rankHealth) String() string {
	switch s {
	case rankHealthy:
		return "healthy"
	case rankSuspect:
		return "suspect"
	case rankStraggler:
		return "straggler"
	default:
		return fmt.Sprintf("rankHealth(%d)", int(s))
	}
}

// Hysteresis constants of the health state machine. The EWMA smooths
// superstep-to-superstep noise; the confirm/rehabilitate streaks make both
// transitions deliberately sticky, so one slow superstep cannot demote a
// rank and one fast probe cannot restore it.
const (
	// healthEWMAAlpha weights the newest observation in the moving average.
	healthEWMAAlpha = 0.5
	// stragglerConfirmSupersteps is how many consecutive over-threshold
	// observations turn a suspect into a confirmed straggler.
	stragglerConfirmSupersteps = 3
	// rehabilitateSupersteps is how many consecutive normal observations
	// (or heartbeat probes, for a demoted rank) clear a suspect or make a
	// demoted rank eligible for rehabilitation.
	rehabilitateSupersteps = 2
)

// healthScorer tracks per-rank EWMA superstep time against a fixed
// threshold and classifies ranks healthy → suspect → straggler with
// hysteresis in both directions. It is driven single-threaded by the
// supervisor between lockstep segments; the per-rank samples it consumes
// (injected stall plus modeled compute, the time the runtime charges a
// superstep) are collected race-free inside the segment (each rank
// goroutine writes only its own slice).
type healthScorer struct {
	threshold float64 // seconds
	ewma      []float64
	seeded    []bool
	state     []rankHealth
	over      []int // consecutive over-threshold observations
	normal    []int // consecutive normal observations/probes
}

// newHealthScorer builds a scorer for n ranks with every rank healthy.
func newHealthScorer(n int, threshold time.Duration) *healthScorer {
	return &healthScorer{
		threshold: threshold.Seconds(),
		ewma:      make([]float64, n),
		seeded:    make([]bool, n),
		state:     make([]rankHealth, n),
		over:      make([]int, n),
		normal:    make([]int, n),
	}
}

// Observe folds one charged superstep time (stall plus modeled compute,
// excluding the lockstep exchange wait — which would smear one rank's
// slowness onto every peer) into the rank's EWMA and advances its state
// machine. It returns the state before and after the observation.
func (h *healthScorer) Observe(rank int, sampleSeconds float64) (prev, now rankHealth) {
	prev = h.state[rank]
	if !h.seeded[rank] {
		h.ewma[rank] = sampleSeconds
		h.seeded[rank] = true
	} else {
		h.ewma[rank] = healthEWMAAlpha*sampleSeconds + (1-healthEWMAAlpha)*h.ewma[rank]
	}
	// The streak counters run on the raw sample, not the EWMA: a single
	// large spike decays through the EWMA over several supersteps and would
	// otherwise count as "consecutively over", defeating the hysteresis.
	// The smoothed average still gates straggler confirmation, so a rank
	// whose raw samples barely flicker over the line is not demoted unless
	// its sustained latency really is over the threshold.
	if sampleSeconds > h.threshold {
		h.over[rank]++
		h.normal[rank] = 0
		switch {
		case h.state[rank] == rankHealthy:
			h.state[rank] = rankSuspect
		case h.state[rank] == rankSuspect &&
			h.over[rank] >= stragglerConfirmSupersteps && h.ewma[rank] > h.threshold:
			h.state[rank] = rankStraggler
		}
	} else {
		h.over[rank] = 0
		h.normal[rank]++
		if h.state[rank] != rankHealthy && h.normal[rank] >= rehabilitateSupersteps {
			h.state[rank] = rankHealthy
		}
	}
	return prev, h.state[rank]
}

// Probe feeds one heartbeat of a demoted (non-running) rank: normal reports
// whether the rank's latency looked nominal for that superstep. Probes drive
// the same streak counters as Observe, so rehabilitation eligibility uses
// the same hysteresis as every other transition.
func (h *healthScorer) Probe(rank int, normal bool) {
	if normal {
		h.normal[rank]++
		h.over[rank] = 0
	} else {
		h.normal[rank] = 0
		h.over[rank]++
	}
}

// Rehabilitatable reports whether the rank's latency has stayed normal for
// rehabilitateSupersteps consecutive probes.
func (h *healthScorer) Rehabilitatable(rank int) bool {
	return h.normal[rank] >= rehabilitateSupersteps
}

// Reset returns the rank to a fresh healthy state with an unseeded EWMA —
// used at rehabilitation (and heal), so the stale pre-demotion average
// cannot instantly re-convict a rank that has genuinely recovered.
func (h *healthScorer) Reset(rank int) {
	h.state[rank] = rankHealthy
	h.ewma[rank] = 0
	h.seeded[rank] = false
	h.over[rank] = 0
	h.normal[rank] = 0
}

// State returns the rank's current classification.
func (h *healthScorer) State(rank int) rankHealth { return h.state[rank] }

// EWMA returns the rank's current EWMA superstep time in seconds
// (zero before the first observation).
func (h *healthScorer) EWMA(rank int) float64 {
	if !h.seeded[rank] {
		return 0
	}
	return h.ewma[rank]
}
