package core_test

import (
	"math"
	"testing"
	"time"

	"hetgraph/internal/apps"
	"hetgraph/internal/core"
	"hetgraph/internal/metrics"
	"hetgraph/internal/seqref"
)

// stragglerOpts builds a 4-rank option set with health scoring armed: a
// 60ms straggler threshold against sustained 200ms gslow stalls, acting at
// every checkpoint barrier so demotion and rehabilitation timing is exact.
func stragglerOpts(t testing.TB, iters int, plan string, policy core.StragglerPolicy) []core.Options {
	t.Helper()
	opts := nrankOpts(t, 4, iters, 1, plan)
	for r := range opts {
		opts[r].StragglerThreshold = 60 * time.Millisecond
		opts[r].StragglerPolicy = policy
	}
	return opts
}

// TestStragglerDemoteRehabLifecycle is the gray-failure acceptance property:
// a rank stalled 200ms per superstep for supersteps 0..5 must be detected
// (suspect, then straggler), soft-degraded at a barrier, probed while the
// stall plan is still live, rehabilitated once its latency re-normalizes for
// two consecutive supersteps, and the mitigated run must still match the
// fault-free sequential oracle.
func TestStragglerDemoteRehabLifecycle(t *testing.T) {
	g := chaosGraph(t)
	assign := nrankAssign(t, g, 4)
	const iters = 12
	want := seqref.ClassicPageRank(g, 0.85, iters)

	app := apps.NewPageRank()
	col := metrics.NewCollector()
	opts := stragglerOpts(t, iters, "rank1:gslow@0x6:200ms", core.StragglerDemoteRehab)
	for r := range opts {
		opts[r].Metrics = col
	}
	res, err := core.RunF32Hetero(app, g, assign, opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Detection and mitigation surface on the result.
	if len(res.SoftDegraded) != 1 || res.SoftDegraded[0] != 1 {
		t.Fatalf("SoftDegraded = %v, want [1]", res.SoftDegraded)
	}
	if len(res.Rehabilitated) != 1 || res.Rehabilitated[0] != 1 {
		t.Fatalf("Rehabilitated = %v, want [1]", res.Rehabilitated)
	}
	if !containsRank(res.SuspectRanks, 1) {
		t.Fatalf("SuspectRanks = %v, want to contain 1", res.SuspectRanks)
	}
	if res.SoftDegradeSuperstep <= 0 || res.RehabilitateSuperstep <= res.SoftDegradeSuperstep {
		t.Fatalf("SoftDegradeSuperstep=%d RehabilitateSuperstep=%d, want 0 < demote < rehab",
			res.SoftDegradeSuperstep, res.RehabilitateSuperstep)
	}

	// Soft-degrade is not the dead-rank path: no conviction, no hard
	// degradation, and the run completes every superstep.
	if res.Degraded {
		t.Fatal("Degraded = true: soft-degrade must not take the dead-rank path")
	}
	if res.FailedRank != -1 {
		t.Fatalf("FailedRank = %d, want -1 (no conviction)", res.FailedRank)
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}

	// Event ordering: suspect before straggler before soft-degrade before
	// rehabilitation.
	events := col.Events()
	si := eventIndex(events, metrics.EventRankSuspect)
	gi := eventIndex(events, metrics.EventRankStraggler)
	di := eventIndex(events, metrics.EventSoftDegraded)
	ri := eventIndex(events, metrics.EventRehabilitated)
	if si < 0 || gi < 0 || di < 0 || ri < 0 {
		t.Fatalf("missing lifecycle events: suspect@%d straggler@%d soft-degraded@%d rehabilitated@%d",
			si, gi, di, ri)
	}
	if !(si < gi && gi < di && di < ri) {
		t.Fatalf("lifecycle events out of order: suspect@%d straggler@%d soft-degraded@%d rehabilitated@%d",
			si, gi, di, ri)
	}

	// The mitigated run still answers the fault-free oracle.
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
}

// TestStragglerDemoteRehabOracleBFSSSSP: the moving-frontier apps fold with
// min, which is insensitive to how contributions are grouped across owners,
// so the demote-rehab run must land exactly on the classic answers in every
// traversal direction.
func TestStragglerDemoteRehabOracleBFSSSSP(t *testing.T) {
	g := chaosGraph(t)
	assign := nrankAssign(t, g, 4)
	wantBFS := seqref.ClassicBFS(g, 0)
	wantSSSP := seqref.ClassicSSSP(g, 0)

	for _, dir := range directions() {
		t.Run(dir.String(), func(t *testing.T) {
			opts := stragglerOpts(t, core.DefaultMaxIterations, "rank1:gslow@0x6:200ms", core.StragglerDemoteRehab)
			for r := range opts {
				opts[r].Direction = dir
			}
			bfs := apps.NewBFS(0)
			if _, err := core.RunF32Hetero(bfs, g, assign, opts...); err != nil {
				t.Fatal(err)
			}
			for v := range wantBFS {
				if bfs.Levels[v] != wantBFS[v] {
					t.Fatalf("bfs level[%d] = %d, want %d", v, bfs.Levels[v], wantBFS[v])
				}
			}
			sssp := apps.NewSSSP(0)
			res, err := core.RunF32Hetero(sssp, g, assign, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.SoftDegraded) == 0 {
				t.Fatal("SSSP run never soft-degraded: the scenario did not exercise mitigation")
			}
			for v := range wantSSSP {
				if sssp.Dist[v] != wantSSSP[v] {
					t.Fatalf("sssp dist[%d] = %v, want %v", v, sssp.Dist[v], wantSSSP[v])
				}
			}
		})
	}
}

// TestStragglerMitigationByteDeterminism: two identical demote-rehab
// PageRank runs must produce bit-identical float32 ranks — mitigation
// re-partitions mid-run, but it does so deterministically, so the canonical
// fold order is reproducible run to run.
func TestStragglerMitigationByteDeterminism(t *testing.T) {
	g := chaosGraph(t)
	assign := nrankAssign(t, g, 4)
	const iters = 12

	run := func() *apps.PageRank {
		app := apps.NewPageRank()
		opts := stragglerOpts(t, iters, "rank1:gslow@0x6:200ms", core.StragglerDemoteRehab)
		res, err := core.RunF32Hetero(app, g, assign, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.SoftDegraded) == 0 || len(res.Rehabilitated) == 0 {
			t.Fatalf("run did not demote and rehabilitate (SoftDegraded=%v Rehabilitated=%v)",
				res.SoftDegraded, res.Rehabilitated)
		}
		return app
	}
	a, b := run(), run()
	for v := range a.Ranks {
		if math.Float32bits(a.Ranks[v]) != math.Float32bits(b.Ranks[v]) {
			t.Fatalf("rank[%d] differs across identical mitigated runs: %x vs %x",
				v, math.Float32bits(a.Ranks[v]), math.Float32bits(b.Ranks[v]))
		}
	}
}

// TestSlowUnderDeadlineNotMisdiagnosed is the misdiagnosis regression: a
// one-off stall well under the exchange deadline must never be convicted as
// a dead rank (no DeviceFailedError, no degradation) — with scoring off, and
// with scoring on, where a single spike may raise suspicion but hysteresis
// must prevent demotion.
func TestSlowUnderDeadlineNotMisdiagnosed(t *testing.T) {
	g := chaosGraph(t)
	assign := nrankAssign(t, g, 4)
	const iters = 8
	want := seqref.ClassicPageRank(g, 0.85, iters)

	check := func(t *testing.T, arm func(opts []core.Options)) {
		app := apps.NewPageRank()
		opts := nrankOpts(t, 4, iters, 1, "rank1:slow@3:200ms")
		for r := range opts {
			opts[r].ExchangeTimeout = 2 * time.Second
		}
		arm(opts)
		res, err := core.RunF32Hetero(app, g, assign, opts...)
		if err != nil {
			t.Fatalf("slow rank under the deadline produced an error: %v", err)
		}
		if res.Degraded || res.FailedRank != -1 || len(res.FailedRanks) != 0 {
			t.Fatalf("slow rank misdiagnosed as dead: Degraded=%v FailedRank=%d FailedRanks=%v",
				res.Degraded, res.FailedRank, res.FailedRanks)
		}
		if len(res.SoftDegraded) != 0 {
			t.Fatalf("one-off stall demoted a rank: SoftDegraded=%v", res.SoftDegraded)
		}
		for v := range want {
			diff := math.Abs(float64(app.Ranks[v] - want[v]))
			if diff > 2e-3*math.Max(1, float64(want[v])) {
				t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
			}
		}
	}

	t.Run("scoring-off", func(t *testing.T) {
		check(t, func(opts []core.Options) {})
	})
	t.Run("scoring-on", func(t *testing.T) {
		check(t, func(opts []core.Options) {
			for r := range opts {
				opts[r].StragglerThreshold = 60 * time.Millisecond
				opts[r].StragglerPolicy = core.StragglerDemoteRehab
			}
		})
	})
}

// TestStragglerDemoteOnlyStaysDemoted: under the demote-only policy a
// confirmed straggler is never restored, even after its stall plan would
// have ended — the result records the demotion and no rehabilitation, and
// the answer still matches the oracle.
func TestStragglerDemoteOnlyStaysDemoted(t *testing.T) {
	g := chaosGraph(t)
	assign := nrankAssign(t, g, 4)
	const iters = 12
	want := seqref.ClassicPageRank(g, 0.85, iters)

	app := apps.NewPageRank()
	opts := stragglerOpts(t, iters, "rank1:gslow@0x6:200ms", core.StragglerDemote)
	res, err := core.RunF32Hetero(app, g, assign, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SoftDegraded) != 1 || res.SoftDegraded[0] != 1 {
		t.Fatalf("SoftDegraded = %v, want [1]", res.SoftDegraded)
	}
	if len(res.Rehabilitated) != 0 {
		t.Fatalf("Rehabilitated = %v, want none under %s", res.Rehabilitated, core.StragglerDemote)
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
}

// TestStragglerMitigationSimSpeedup: demoting a sustained straggler must pay
// off on simulated time. With the stall charged into per-superstep compute,
// the unmitigated run carries 40ms of extra critical path per superstep for
// the whole run; the mitigated run stops paying it after the demotion
// barrier.
func TestStragglerMitigationSimSpeedup(t *testing.T) {
	g := chaosGraph(t)
	assign := nrankAssign(t, g, 4)
	const iters = 12
	const plan = "rank1:gslow@0x12:200ms"

	run := func(policy core.StragglerPolicy) core.HeteroResult {
		app := apps.NewPageRank()
		opts := stragglerOpts(t, iters, plan, policy)
		res, err := core.RunF32Hetero(app, g, assign, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(core.StragglerOff)
	mit := run(core.StragglerDemote)
	if len(off.SoftDegraded) != 0 {
		t.Fatalf("policy off soft-degraded ranks: %v", off.SoftDegraded)
	}
	if len(mit.SoftDegraded) != 1 {
		t.Fatalf("mitigated run did not demote: SoftDegraded=%v", mit.SoftDegraded)
	}
	// Demotion at barrier 3 saves at least 9 stalled supersteps x 200ms of
	// simulated exec; 0.5s leaves generous slack for scheduling noise.
	if mit.ExecSeconds >= off.ExecSeconds-0.5 {
		t.Fatalf("mitigation did not pay off: mitigated ExecSeconds=%v, unmitigated=%v",
			mit.ExecSeconds, off.ExecSeconds)
	}
}

// TestStragglerPolicyValidation: a non-off policy with no threshold has no
// straggler definition to act on, and one with no checkpoint cadence has no
// barrier to act at — both must be rejected as invalid options.
func TestStragglerPolicyValidation(t *testing.T) {
	g := chaosGraph(t)
	assign := nrankAssign(t, g, 4)

	t.Run("no-threshold", func(t *testing.T) {
		opts := nrankOpts(t, 4, 4, 1, "")
		for r := range opts {
			opts[r].StragglerPolicy = core.StragglerDemote
		}
		_, err := core.RunF32Hetero(apps.NewPageRank(), g, assign, opts...)
		var ioe *core.InvalidOptionsError
		if !asInvalidOptions(err, &ioe) || ioe.Field != "StragglerPolicy" {
			t.Fatalf("err = %v, want InvalidOptionsError on StragglerPolicy", err)
		}
	})
	t.Run("no-checkpoint-cadence", func(t *testing.T) {
		opts := nrankOpts(t, 4, 4, 0, "")
		for r := range opts {
			opts[r].StragglerThreshold = 60 * time.Millisecond
			opts[r].StragglerPolicy = core.StragglerDemoteRehab
		}
		_, err := core.RunF32Hetero(apps.NewPageRank(), g, assign, opts...)
		var ioe *core.InvalidOptionsError
		if !asInvalidOptions(err, &ioe) || ioe.Field != "StragglerPolicy" {
			t.Fatalf("err = %v, want InvalidOptionsError on StragglerPolicy", err)
		}
	})
}

// containsRank reports whether xs contains r.
func containsRank(xs []int, r int) bool {
	for _, x := range xs {
		if x == r {
			return true
		}
	}
	return false
}
