package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hetgraph/internal/comm"
	"hetgraph/internal/csb"
	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/metrics"
	"hetgraph/internal/pipeline"
	"hetgraph/internal/sched"
)

// deviceGeneric is one device's engine for structured-message applications
// (Semi-Clustering). Messages live in a per-vertex list buffer; there is no
// SIMD reduction path (§III), so processing always walks the lists.
type deviceGeneric[T any] struct {
	app    AppGeneric[T]
	g      *graph.CSR
	opt    Options
	cm     machine.CostModel
	buf    *csb.GenericBuffer[T]
	rank   int
	assign []int32
	ep     *comm.Endpoint[T]
	// step is the current superstep, used to index injected faults. Note
	// the generic engine performs two exchange rounds per superstep, so
	// fault-plan steps that target the exchange count rounds, not
	// supersteps (see docs/robustness.md).
	step int64

	remoteMu sync.Mutex
	remote   *comm.Combiner[T]
	remCount atomic.Int64

	fillScratch []int32
	pipe        *pipeline.Pipelined[T]

	// wall accumulates measured host time per phase for the current
	// superstep; only written when opt.Metrics is non-nil.
	wall phaseWallNS
}

func newDeviceGeneric[T any](app AppGeneric[T], g *graph.CSR, opt Options, rank int, assign []int32, ep *comm.Endpoint[T]) (*deviceGeneric[T], error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	// The generic engine is push-only: structured messages carry data the
	// pull sweep cannot recompute from parent state alone. Explicit pull is
	// rejected; auto falls back to push.
	if opt.Direction == DirectionPull {
		return nil, &InvalidOptionsError{Field: "Direction", Reason: "pull traversal requires a float32 application implementing core.PullerF32; the generic engine is push-only"}
	}
	cm, err := machine.NewCostModel(opt.Dev, app.Profile())
	if err != nil {
		return nil, err
	}
	d := &deviceGeneric[T]{
		app:  app,
		g:    g,
		opt:  opt,
		cm:   cm,
		buf:  csb.NewGenericBuffer[T](g.NumVertices(), 4*opt.Threads),
		rank: rank, assign: assign, ep: ep,
	}
	if opt.Scheme == SchemePipelined {
		d.pipe, err = pipeline.NewPipelined[T](opt.Workers, opt.Movers, opt.GenBatchSize)
		if err != nil {
			return nil, err
		}
	}
	if assign != nil {
		d.remote = comm.NewCombiner(g.NumVertices(), app.Combine)
	}
	return d, nil
}

func (d *deviceGeneric[T]) local(v graph.VertexID) bool {
	return d.assign == nil || d.assign[v] == int32(d.rank)
}

// routeLocked is the locking-scheme emit target.
func (d *deviceGeneric[T]) routeLocked(dst graph.VertexID, val T) {
	if d.local(dst) {
		d.buf.Insert(dst, val)
		return
	}
	d.remoteMu.Lock()
	d.remote.Add(dst, val)
	d.remoteMu.Unlock()
	d.remCount.Add(1)
}

// routeOwnedBatch is the pipelined-scheme sink: the calling mover is the
// unique mover for every destination in the batch, so local runs use the
// lock-free batch insert. The remote combiner is still shared across movers
// and keeps its mutex.
func (d *deviceGeneric[T]) routeOwnedBatch(dsts []graph.VertexID, vals []T) {
	for i := 0; i < len(dsts); {
		if d.local(dsts[i]) {
			j := i + 1
			for j < len(dsts) && d.local(dsts[j]) {
				j++
			}
			d.buf.InsertOwnedBatch(dsts[i:j], vals[i:j])
			i = j
			continue
		}
		d.remoteMu.Lock()
		d.remote.Add(dsts[i], vals[i])
		d.remoteMu.Unlock()
		d.remCount.Add(1)
		i++
	}
}

func (d *deviceGeneric[T]) generate(active []graph.VertexID, c *machine.Counters) error {
	gen := func(v graph.VertexID, emit func(graph.VertexID, T)) {
		if d.opt.Fault.PanicNow(d.rank, d.step, fault.PhaseGenerate) {
			panic(fmt.Sprintf("fault: injected panic, rank %d superstep %d phase generate", d.rank, d.step))
		}
		d.app.Generate(v, emit)
	}
	var st pipeline.Stats
	var err error
	switch d.opt.Scheme {
	case SchemePipelined:
		st, err = d.pipe.RunBatched(active, gen, d.routeOwnedBatch)
	default:
		st, err = pipeline.RunLocking(active, d.opt.Threads, gen, d.routeLocked)
	}
	if err != nil {
		return err
	}
	c.ActiveVertices += int64(len(active))
	c.EdgesTraversed += st.Messages
	c.Messages += st.Messages
	c.TaskFetches += st.TaskFetches
	c.QueueOps += st.QueueOps
	c.QueueBatchOps += st.QueueBatchOps
	c.RemoteMessages += d.remCount.Swap(0)
	c.Steps++
	if d.opt.Scheme == SchemeLocking {
		d.fillScratch = d.buf.ColumnFills(d.fillScratch[:0])
		exp, floor := machine.ContentionStats(d.fillScratch, d.opt.Dev.Threads())
		c.ConflictExpected += exp
		if floor > c.SerialFloorMsgs {
			c.SerialFloorMsgs = floor
		}
		c.ColumnsUsed += int64(len(d.fillScratch))
	}
	return nil
}

func (d *deviceGeneric[T]) exchange(activeLocal int64, c *machine.Counters, pt *PhaseTimes) (int64, error) {
	if d.ep == nil || d.ep.NumLivePeers() == 0 {
		return 0, nil
	}
	// Fresh per-rank slices per exchange: the receivers may still be reading
	// the previous payload while this device runs ahead (see deviceF32).
	send := d.remote.DrainRouted(make([][]comm.Msg[T], d.ep.Ranks()), func(v graph.VertexID) int { return int(d.assign[v]) })
	recv, activeRemote, st, err := d.ep.ExchangeAll(send, activeLocal)
	if err != nil {
		return 0, err
	}
	for _, m := range recv {
		d.buf.InsertOwned(m.Dst, m.Val)
	}
	c.Messages += int64(len(recv))
	c.BytesSent += st.BytesSent
	c.Exchanges++
	pt.Exchange += st.SimSeconds
	d.wall.exchange += st.WallNS
	return activeRemote, nil
}

// processAndUpdate walks every vertex with messages, reduces its list via
// the user Process, applies Update, and returns the next active set. The
// two steps are fused over the vertex-chunk schedule (each vertex's
// messages are consumed exactly once), but counted as two steps, matching
// the runtime structure.
func (d *deviceGeneric[T]) processAndUpdate(c *machine.Counters) ([]graph.VertexID, error) {
	n := int64(d.g.NumVertices())
	s, err := sched.New(n, sched.ChunkFor(n, d.opt.Threads))
	if err != nil {
		return nil, err
	}
	perThread := make([][]graph.VertexID, d.opt.Threads)
	var reduced, updated atomic.Int64
	var wg sync.WaitGroup
	var pc pipeline.PanicCollector
	for t := 0; t < d.opt.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			defer pc.Capture()
			if d.opt.Fault.PanicNow(d.rank, d.step, fault.PhaseProcess) || d.opt.Fault.PanicNow(d.rank, d.step, fault.PhaseUpdate) {
				panic(fmt.Sprintf("fault: injected panic, rank %d superstep %d phase process/update", d.rank, d.step))
			}
			var act []graph.VertexID
			var localReduced, localUpdated int64
			for {
				lo, hi, ok := s.Next()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					v := graph.VertexID(i)
					if !d.buf.Has(v) {
						continue
					}
					msgs := d.buf.Drain(v)
					res := d.app.Process(v, msgs)
					localReduced += int64(len(msgs))
					localUpdated++
					if d.app.Update(v, res) {
						act = append(act, v)
					}
				}
			}
			perThread[t] = act
			reduced.Add(localReduced)
			updated.Add(localUpdated)
		}(t)
	}
	wg.Wait()
	if err := pc.Err(); err != nil {
		return nil, err
	}
	var next []graph.VertexID
	for _, act := range perThread {
		next = append(next, act...)
	}
	c.ReducedMessages += reduced.Load()
	c.UpdatedVertices += updated.Load()
	c.TaskFetches += s.Fetches()
	c.Steps += 2
	return next, nil
}

// recordMetrics emits the superstep's wall-clock + simulated phase samples
// to the configured metrics sink, if any, and resets the wall scratch. The
// generic engine fuses process and update over one vertex walk, so the
// fused wall time is attributed to the process sample and the update sample
// carries only simulated time (see docs/observability.md).
func (d *deviceGeneric[T]) recordMetrics(superstep int64, c machine.Counters, pt PhaseTimes) {
	sink := d.opt.Metrics
	if sink == nil {
		return
	}
	dev := d.opt.traceLabel()
	sink.RecordPhase(metrics.PhaseSample{Device: dev, Rank: d.rank, Superstep: superstep, Phase: metrics.PhaseGenerate, WallNS: d.wall.generate, SimSeconds: pt.Generate, Events: c.Messages})
	if c.Exchanges > 0 {
		sink.RecordPhase(metrics.PhaseSample{Device: dev, Rank: d.rank, Superstep: superstep, Phase: metrics.PhaseExchange, WallNS: d.wall.exchange, SimSeconds: pt.Exchange, Events: c.BytesSent})
	}
	sink.RecordPhase(metrics.PhaseSample{Device: dev, Rank: d.rank, Superstep: superstep, Phase: metrics.PhaseProcess, WallNS: d.wall.process, SimSeconds: pt.Process, Events: c.ReducedMessages})
	sink.RecordPhase(metrics.PhaseSample{Device: dev, Rank: d.rank, Superstep: superstep, Phase: metrics.PhaseUpdate, WallNS: d.wall.update, SimSeconds: pt.Update, Events: c.UpdatedVertices})
	d.wall = phaseWallNS{}
}

func (d *deviceGeneric[T]) phaseTimes(c machine.Counters) PhaseTimes {
	var pt PhaseTimes
	switch d.opt.Scheme {
	case SchemePipelined:
		pt.Generate = d.cm.GeneratePipelined(c, d.opt.Dev.Threads()-machineMovers(d.opt), machineMovers(d.opt))
	default:
		pt.Generate = d.cm.GenerateLocking(c, d.opt.Dev.Threads())
	}
	pt.Process = d.cm.Process(c, d.opt.Dev.Threads(), false)
	pt.Update = d.cm.Update(c, d.opt.Dev.Threads())
	return pt
}

// RunGeneric executes a structured-message app on a single modeled device.
func RunGeneric[T any](app AppGeneric[T], g *graph.CSR, opt Options) (Result, error) {
	if err := validateRunArgs(app, g); err != nil {
		return Result{}, err
	}
	start := time.Now()
	d, err := newDeviceGeneric(app, g, opt, 0, nil, nil)
	if err != nil {
		return Result{}, err
	}
	var res Result
	active := app.Init(g)
	fixed := IsFixedActive(app)
	initial := active
	for iter := 0; iter < d.opt.MaxIterations; iter++ {
		d.step = int64(iter)
		if len(active) == 0 {
			res.Converged = true
			break
		}
		if abortRequested(d.opt.Abort) {
			emitEvent(d.opt.Metrics, metrics.Event{
				Kind: metrics.EventRunAborted, Rank: d.rank,
				Superstep: int64(iter), Detail: "cooperative abort at superstep boundary",
			})
			res.SimSeconds = res.Phases.Total()
			res.WallSeconds = time.Since(start).Seconds()
			return res, &RunAbortedError{Superstep: int64(iter)}
		}
		var c machine.Counters
		c.Iterations = 1
		d.buf.Reset()
		measured := d.opt.Metrics != nil
		var t time.Time
		if measured {
			t = time.Now()
		}
		if err := d.generate(active, &c); err != nil {
			err = fmt.Errorf("core: superstep %d: %w", iter, err)
			emitEvent(d.opt.Metrics, metrics.Event{Kind: metrics.EventSuperstepError, Rank: d.rank, Superstep: int64(iter), Detail: err.Error()})
			res.SimSeconds = res.Phases.Total()
			res.WallSeconds = time.Since(start).Seconds()
			return res, err
		}
		if measured {
			d.wall.generate = time.Since(t).Nanoseconds()
			t = time.Now()
		}
		next, err := d.processAndUpdate(&c)
		if err != nil {
			err = fmt.Errorf("core: superstep %d: %w", iter, err)
			emitEvent(d.opt.Metrics, metrics.Event{Kind: metrics.EventSuperstepError, Rank: d.rank, Superstep: int64(iter), Detail: err.Error()})
			res.SimSeconds = res.Phases.Total()
			res.WallSeconds = time.Since(start).Seconds()
			return res, err
		}
		if measured {
			d.wall.process = time.Since(t).Nanoseconds()
		}
		res.Iterations++
		res.Counters.Add(c)
		pt := d.phaseTimes(c)
		res.Phases.Add(pt)
		d.recordMetrics(int64(iter), c, pt)
		if fixed {
			active = initial
		} else {
			active = next
		}
	}
	if len(active) == 0 {
		res.Converged = true
	}
	res.SimSeconds = res.Phases.Total()
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// RunGenericHetero executes a structured-message app across a group of
// N >= 2 modeled devices, mirroring RunF32Hetero. Exchange deadlines and
// fault injection apply here too, but there is no checkpoint-based recovery
// for structured-message apps: a rank failure surfaces as an error (the
// Snapshotter-driven degradation path is float32-only; see
// docs/robustness.md).
func RunGenericHetero[T any](app AppGeneric[T], g *graph.CSR, assign []int32, deviceOpts ...Options) (HeteroResult, error) {
	if err := validateRunArgs(app, g); err != nil {
		return HeteroResult{}, err
	}
	start := time.Now()
	opts, err := expandDeviceGroup(deviceOpts)
	if err != nil {
		return HeteroResult{}, err
	}
	n := len(opts)
	if err := validAssign(g, assign, n); err != nil {
		return HeteroResult{}, err
	}
	net, err := comm.NewGroupNet[T](machine.PCIe(), app.Profile().MsgBytes, n)
	if err != nil {
		return HeteroResult{}, err
	}
	cfg := resolveFaultConfig(opts...)
	net.SetTimeout(cfg.timeout)
	net.SetInjector(cfg.inj)
	// Every rank consults the resolved injector for in-phase events and
	// the merged abort channel for cooperative shutdown.
	for r := range opts {
		opts[r].Fault = cfg.inj
		opts[r].Abort = cfg.abort
	}
	resolveTraceLabels(opts)
	devs := make([]*deviceGeneric[T], n)
	for r := 0; r < n; r++ {
		ep, err := net.Endpoint(r)
		if err != nil {
			return HeteroResult{}, err
		}
		devs[r], err = newDeviceGeneric(app, g, opts[r], r, assign, ep)
		if err != nil {
			return HeteroResult{}, err
		}
	}
	maxIter := devs[0].opt.MaxIterations
	for r := 1; r < n; r++ {
		if devs[r].opt.MaxIterations < maxIter {
			maxIter = devs[r].opt.MaxIterations
		}
	}
	active := app.Init(g)
	actives := splitActiveN(active, assign, n)

	var (
		res       HeteroResult
		iterTimes = make([][]float64, n)
		wg        sync.WaitGroup
		runErr    = make([]error, n)
	)
	res.Dev = make([]Result, n)
	res.FailedRank = -1
	res.FailedSuperstep = -1
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			d := devs[r]
			// On any error, declare this rank dead so the peer's next
			// exchange fails fast instead of deadlocking.
			defer func() {
				if runErr[r] != nil {
					d.ep.Abort()
				}
			}()
			active := actives[r]
			fixed := IsFixedActive(d.app)
			initial := active
			fail := func(iter int, err error) {
				err = fmt.Errorf("core: rank %d superstep %d: %w", r, iter, err)
				emitEvent(d.opt.Metrics, metrics.Event{Kind: metrics.EventSuperstepError, Rank: r, Superstep: int64(iter), Detail: err.Error()})
				runErr[r] = err
			}
			for iter := 0; iter < maxIter; iter++ {
				if abortRequested(d.opt.Abort) {
					runErr[r] = &RunAbortedError{Superstep: int64(iter)}
					return
				}
				d.step = int64(iter)
				var c machine.Counters
				var pt PhaseTimes
				c.Iterations = 1
				d.buf.Reset()
				measured := d.opt.Metrics != nil
				var t time.Time
				if measured {
					t = time.Now()
				}
				if err := d.generate(active, &c); err != nil {
					fail(iter, err)
					return
				}
				if measured {
					d.wall.generate = time.Since(t).Nanoseconds()
				}
				if _, err := d.exchange(int64(len(active)), &c, &pt); err != nil {
					fail(iter, err)
					return
				}
				if measured {
					t = time.Now()
				}
				next, err := d.processAndUpdate(&c)
				if err != nil {
					fail(iter, err)
					return
				}
				if measured {
					d.wall.process = time.Since(t).Nanoseconds()
				}
				compute := d.phaseTimes(c)
				pt.Generate, pt.Process, pt.Update = compute.Generate, compute.Process, compute.Update
				_, remoteActive, st, err := d.ep.ExchangeAll(make([][]comm.Msg[T], n), int64(len(next)))
				if err != nil {
					fail(iter, err)
					return
				}
				c.Exchanges++
				pt.Exchange += st.SimSeconds
				d.wall.exchange += st.WallNS

				res.Dev[r].Iterations++
				res.Dev[r].Counters.Add(c)
				res.Dev[r].Phases.Add(pt)
				res.Dev[r].SimSeconds = res.Dev[r].Phases.Total()
				iterTimes[r] = append(iterTimes[r], pt.Generate+pt.Process+pt.Update)
				d.recordMetrics(int64(iter), c, pt)
				if fixed {
					active = initial
				} else {
					active = next
				}
				if int64(len(next))+remoteActive == 0 && !fixed {
					res.Dev[r].Converged = true
					return
				}
			}
		}(r)
	}
	wg.Wait()
	// An abort takes precedence over the peers' collateral failure errors.
	for r := 0; r < n; r++ {
		var aerr *RunAbortedError
		if errors.As(runErr[r], &aerr) {
			emitEvent(cfg.sink, metrics.Event{
				Kind: metrics.EventRunAborted, Rank: -1, Superstep: aerr.Superstep,
				Detail: fmt.Sprintf("cooperative abort at superstep boundary %d", aerr.Superstep),
			})
			return HeteroResult{}, aerr
		}
	}
	// A clean two-sided partition outranks the per-rank severed-link
	// verdicts: there is no checkpoint recovery here, so the run aborts, but
	// with a typed error naming both sides.
	if maj, minr, pstep, ok := severedPartition(allRanks(n), runErr); ok {
		perr := &comm.PartitionedError{Superstep: pstep, Majority: maj, Minority: minr}
		emitEvent(cfg.sink, metrics.Event{
			Kind: metrics.EventPartitioned, Rank: -1, Superstep: pstep, Detail: perr.Error(),
		})
		return HeteroResult{}, perr
	}
	for r := 0; r < n; r++ {
		if runErr[r] != nil {
			return HeteroResult{}, runErr[r]
		}
	}
	res.Links = net.LinkStats()
	res.Integrity = net.Integrity()
	recordLinks(cfg.sink, res.Links, res.Integrity)
	res.Iterations = res.Dev[0].Iterations
	res.Converged = true
	for r := 0; r < n; r++ {
		if !res.Dev[r].Converged {
			res.Converged = false
		}
	}
	res.ExecSeconds = lockstepSeconds(iterTimes, 0, len(iterTimes[0]))
	res.CommSeconds = res.Dev[0].Phases.Exchange
	res.SimSeconds = res.ExecSeconds + res.CommSeconds
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}
