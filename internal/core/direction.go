package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hetgraph/internal/fault"
	"hetgraph/internal/frontier"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/pipeline"
	"hetgraph/internal/sched"
)

// PullerF32 is optionally implemented by AppF32 programs that support
// pull/bottom-up traversal. In a pull superstep the engine does not insert
// local messages at all: the process phase scans each candidate vertex's
// in-edges and computes, via PullFrom, exactly the message each frontier
// parent would have pushed. The multiset of contributions a vertex sees is
// therefore identical to the push schedule's, which is what makes push,
// pull, and auto byte-equivalent for min-style reductions (the oracle
// tests assert this against internal/seqref).
type PullerF32 interface {
	// PullTarget reports whether v can still be influenced this superstep
	// and should have its in-edges scanned (BFS: unvisited vertices; SSSP:
	// every vertex, since any distance may yet improve).
	PullTarget(v graph.VertexID) bool
	// PullFrom returns the message a frontier parent u would have pushed
	// along the edge u→v with weight w (0 on unweighted graphs).
	PullFrom(u graph.VertexID, w float32) float32
	// PullEarlyExit reports whether a single contribution decides the
	// reduced result, letting the sweep stop at the first frontier parent
	// (BFS: every frontier member offers the same level+1).
	PullEarlyExit() bool
}

// OrderSensitiveReduction is optionally implemented by AppF32 programs
// whose ReduceScalar is not exactly associative — float32 summation, where
// (a+b)+c and a+(b+c) differ in the last bit. The engine then canonicalizes
// every reduction order: CSB lanes are sorted ascending before folding, and
// the remote combiner buffers duplicates and folds them in sorted order at
// drain (comm.SortingCombiner). Repeated and crash-resumed runs of such
// apps produce byte-identical vertex state.
type OrderSensitiveReduction interface {
	OrderSensitiveReduction() bool
}

// IsOrderSensitive reports whether app declares an order-sensitive
// reduction.
func IsOrderSensitive(app any) bool {
	o, ok := app.(OrderSensitiveReduction)
	return ok && o.OrderSensitiveReduction()
}

// directionState is one device's direction-optimizing machinery: the
// transposed graph for in-edge scans, bitmap frontiers with popcount
// occupancy, the unexplored-edge estimate behind the auto heuristic, and
// scratch for merging remote deliveries into the pull sweep. It is nil on
// devices running a push-only app (or Options.Direction == DirectionPush),
// which keeps the push hot path untouched.
type directionState struct {
	puller PullerF32
	// tg is the transposed CSR: tg.Neighbors(v) are the sources of v's
	// in-edges, weights preserved and aligned.
	tg       *graph.CSR
	weighted bool
	// frontier holds the current superstep's active set.
	frontier *frontier.Bitmap
	// everActive marks vertices that have been active at least once;
	// unexplored is the summed out-degree of local vertices not yet in it
	// (the m_u of the push→pull heuristic). Seeded from PullTarget on the
	// first superstep so a resumed or rejoined device reconstructs the
	// estimate from app state rather than lost history.
	everActive *frontier.Bitmap
	unexplored int64
	// nLocal is the number of vertices this device owns.
	nLocal int
	// frontierEdges is the summed out-degree of the current frontier (m_f).
	frontierEdges int64
	// mode is the resolved direction of the current superstep; push or
	// pull, never auto.
	mode   Direction
	seeded bool
	// has/vals scatter the CSB's reduced remote deliveries so the sweep can
	// fold them with pulled contributions per destination.
	has  []bool
	vals []float32
}

// newDirectionState builds the pull machinery for one device. The
// transpose is built per device: every rank holds the full CSR already,
// and the in-edge structure must cover remote parents too (they are
// skipped during the sweep but present in the adjacency).
func newDirectionState(p PullerF32, g *graph.CSR, rank int, assign []int32) *directionState {
	n := g.NumVertices()
	ds := &directionState{
		puller:     p,
		tg:         g.Transpose(),
		weighted:   g.Weighted(),
		frontier:   frontier.NewBitmap(n),
		everActive: frontier.NewBitmap(n),
		has:        make([]bool, n),
		vals:       make([]float32, n),
	}
	for v := 0; v < n; v++ {
		if assign == nil || assign[v] == int32(rank) {
			ds.nLocal++
			ds.unexplored += int64(g.OutDegree(graph.VertexID(v)))
		}
	}
	return ds
}

// decide resolves the superstep's direction from the active set and the
// configured policy, and refreshes the frontier bitmap and unexplored-edge
// estimate. Called once per superstep at generate entry; per-rank decisions
// in a device group are autonomous (cut-edge influence always travels as
// messages, so a push rank and a pull rank interoperate within one
// superstep).
func (d *deviceF32) decideDirection(active []graph.VertexID) {
	ds := d.din
	if !ds.seeded {
		// Reconstruct the unexplored estimate from app state: vertices that
		// are no longer pull targets have been explored (exact for BFS's
		// visited set; a no-op for SSSP's always-true targets).
		for v := 0; v < d.g.NumVertices(); v++ {
			vid := graph.VertexID(v)
			if d.local(vid) && !ds.puller.PullTarget(vid) && !ds.everActive.Has(vid) {
				ds.everActive.Set(vid)
				ds.unexplored -= int64(d.g.OutDegree(vid))
			}
		}
		ds.seeded = true
	}
	ds.frontier.ClearAll()
	ds.frontierEdges = 0
	for _, v := range active {
		ds.frontier.Set(v)
		ds.frontierEdges += int64(d.g.OutDegree(v))
		if !ds.everActive.Has(v) {
			ds.everActive.Set(v)
			ds.unexplored -= int64(d.g.OutDegree(v))
		}
	}
	switch d.opt.Direction {
	case DirectionPull:
		ds.mode = DirectionPull
	case DirectionAuto:
		unexplored := ds.unexplored
		if unexplored < 0 {
			unexplored = 0
		}
		if ds.mode == DirectionPull {
			// Hysteresis: stay bottom-up until the frontier thins out.
			if float64(ds.frontier.Count()) < float64(ds.nLocal)/d.opt.PullBeta {
				ds.mode = DirectionPush
			}
		} else if float64(ds.frontierEdges) > float64(unexplored)/d.opt.PullAlpha {
			ds.mode = DirectionPull
		}
	default:
		ds.mode = DirectionPush
	}
}

// direction returns the label recorded on this superstep's metrics/trace
// samples ("push"/"pull"), or "" for direction-less apps.
func (d *deviceF32) direction() string {
	if d.din == nil {
		return ""
	}
	return d.din.mode.String()
}

// generatePull is the generate phase of a pull superstep: local
// destinations receive nothing (the sweep reads parent state directly in
// process), so only cut edges — out-edges crossing to another rank — emit,
// through the app's own Generate filtered to remote destinations. A
// single-device run, a lone degraded survivor, and a group with no live
// peers all skip the walk entirely.
func (d *deviceF32) generatePull(active []graph.VertexID, c *machine.Counters) error {
	c.ActiveVertices += int64(len(active))
	c.PullSupersteps++
	c.Steps++
	if d.assign == nil || d.ep == nil || d.ep.NumLivePeers() == 0 {
		return nil
	}
	gen := func(v graph.VertexID, emit func(graph.VertexID, float32)) {
		if d.opt.Fault.PanicNow(d.rank, d.step, fault.PhaseGenerate) {
			panic(fmt.Sprintf("fault: injected panic, rank %d superstep %d phase generate", d.rank, d.step))
		}
		d.app.Generate(v, func(dst graph.VertexID, val float32) {
			if !d.local(dst) {
				emit(dst, val)
			}
		})
	}
	// Cut messages are a small fraction of the frontier's edges, so the
	// locking scheme's direct path is right regardless of the configured
	// scheme — there is no local insert traffic to pipeline.
	st, err := pipeline.RunLocking(active, d.opt.Threads, gen, d.route)
	if err != nil {
		return err
	}
	// The walk visits every frontier out-edge to find the cut ones, even
	// though only the cut edges message.
	c.EdgesTraversed += d.din.frontierEdges
	c.Messages += st.Messages
	c.TaskFetches += st.TaskFetches
	c.RemoteMessages += d.remCount.Swap(0)
	return nil
}

// processPull is the process phase of a pull superstep. Remote (cut-edge)
// contributions arrived as ordinary messages and are reduced off the CSB
// first, then scattered per destination; the bottom-up sweep walks every
// local pull target's in-edges, folds frontier parents' contributions via
// PullFrom/ReduceScalar, merges the remote value, and emits at most one
// delivery per vertex — exactly the delivery the push schedule would have
// produced.
func (d *deviceF32) processPull(c *machine.Counters) ([]delivery, error) {
	remote, err := d.processPush(c)
	if err != nil {
		return nil, err
	}
	ds := d.din
	for _, dl := range remote {
		ds.has[dl.v] = true
		ds.vals[dl.v] = dl.val
	}
	n := int64(d.g.NumVertices())
	s, err := sched.New(n, sched.ChunkFor(n, d.opt.Threads))
	if err != nil {
		return nil, err
	}
	earlyExit := ds.puller.PullEarlyExit()
	perThread := make([][]delivery, d.opt.Threads)
	var scanned atomic.Int64
	var wg sync.WaitGroup
	var pc pipeline.PanicCollector
	for t := 0; t < d.opt.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			defer pc.Capture()
			var out []delivery
			var localScanned int64
			for {
				lo, hi, ok := s.Next()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					v := graph.VertexID(i)
					if !d.local(v) {
						continue
					}
					acc, hasAcc := ds.vals[v], ds.has[v]
					if ds.puller.PullTarget(v) {
						nb := ds.tg.Neighbors(v)
						var ws []float32
						if ds.weighted {
							ws = ds.tg.EdgeWeights(v)
						}
						for j, u := range nb {
							localScanned++
							if !d.local(u) || !ds.frontier.Has(u) {
								continue
							}
							var w float32
							if ws != nil {
								w = ws[j]
							}
							val := ds.puller.PullFrom(u, w)
							if hasAcc {
								acc = d.app.ReduceScalar(acc, val)
							} else {
								acc, hasAcc = val, true
							}
							if earlyExit {
								break
							}
						}
					}
					if hasAcc {
						out = append(out, delivery{v, acc})
					}
				}
			}
			perThread[t] = out
			scanned.Add(localScanned)
		}(t)
	}
	wg.Wait()
	if err := pc.Err(); err != nil {
		return nil, err
	}
	// Reset the scatter scratch for the next superstep.
	for _, dl := range remote {
		ds.has[dl.v] = false
		ds.vals[dl.v] = 0
	}
	var total int
	for _, out := range perThread {
		total += len(out)
	}
	deliveries := make([]delivery, 0, total)
	for _, out := range perThread {
		deliveries = append(deliveries, out...)
	}
	c.PullEdgesScanned += scanned.Load()
	c.TaskFetches += s.Fetches()
	c.Steps++
	return deliveries, nil
}
