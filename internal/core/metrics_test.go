package core_test

import (
	"strings"
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/core"
	"hetgraph/internal/fault"
	"hetgraph/internal/machine"
	"hetgraph/internal/metrics"
)

// samplesFor filters a collector's phase timeline by rank and phase.
func samplesFor(col *metrics.Collector, rank int, phase string) []metrics.PhaseSample {
	var out []metrics.PhaseSample
	for _, s := range col.Phases() {
		if s.Rank == rank && s.Phase == phase {
			out = append(out, s)
		}
	}
	return out
}

func eventKinds(col *metrics.Collector) map[string]int {
	out := map[string]int{}
	for _, e := range col.Events() {
		out[e.Kind]++
	}
	return out
}

// TestMetricsSingleDeviceRecordsPhases checks the f32 engine emits one
// wall+sim sample per compute phase per superstep (no exchange samples on a
// single device), with plausible values.
func TestMetricsSingleDeviceRecordsPhases(t *testing.T) {
	g := testGraph(t)
	col := metrics.NewCollector()
	const iters = 4
	res, err := core.RunF32(apps.NewPageRank(), g, core.Options{
		Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
		MaxIterations: iters, Metrics: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{metrics.PhaseGenerate, metrics.PhaseProcess, metrics.PhaseUpdate} {
		ss := samplesFor(col, 0, phase)
		if len(ss) != iters {
			t.Fatalf("phase %s: %d samples, want %d", phase, len(ss), iters)
		}
		var wall, events int64
		var sim float64
		for i, s := range ss {
			if s.Superstep != int64(i) {
				t.Fatalf("phase %s sample %d: superstep %d", phase, i, s.Superstep)
			}
			if s.Device != "MIC" {
				t.Fatalf("phase %s: device %q", phase, s.Device)
			}
			if s.WallNS < 0 || s.SimSeconds < 0 {
				t.Fatalf("phase %s: negative time %+v", phase, s)
			}
			wall += s.WallNS
			sim += s.SimSeconds
			events += s.Events
		}
		if wall == 0 {
			t.Errorf("phase %s: zero total wall time across %d supersteps", phase, iters)
		}
		if sim == 0 || events == 0 {
			t.Errorf("phase %s: zero sim time or events", phase)
		}
	}
	if ex := samplesFor(col, 0, metrics.PhaseExchange); len(ex) != 0 {
		t.Errorf("single-device run recorded %d exchange samples", len(ex))
	}
	// Per-phase simulated time must sum to the result's phase totals.
	var simTotal float64
	for _, s := range col.Phases() {
		simTotal += s.SimSeconds
	}
	if diff := simTotal - res.SimSeconds; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("sample sim total %v != result sim %v", simTotal, res.SimSeconds)
	}
}

// TestMetricsHeteroRecordsBothRanks checks a clean two-device run records
// all four phases for both ranks into a shared sink, including exchange
// wall time measured inside the comm layer.
func TestMetricsHeteroRecordsBothRanks(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	col := metrics.NewCollector()
	const iters = 5
	opt0 := core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true,
		MaxIterations: iters, Metrics: col}
	opt1 := core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
		MaxIterations: iters, Metrics: col}
	if _, err := core.RunF32Hetero(apps.NewPageRank(), g, assign, opt0, opt1); err != nil {
		t.Fatal(err)
	}
	for rank, dev := range map[int]string{0: "CPU", 1: "MIC"} {
		for _, phase := range []string{metrics.PhaseGenerate, metrics.PhaseExchange, metrics.PhaseProcess, metrics.PhaseUpdate} {
			ss := samplesFor(col, rank, phase)
			if len(ss) != iters {
				t.Fatalf("rank %d phase %s: %d samples, want %d", rank, phase, len(ss), iters)
			}
			var wall int64
			for _, s := range ss {
				if s.Device != dev {
					t.Fatalf("rank %d: device %q, want %q", rank, s.Device, dev)
				}
				wall += s.WallNS
			}
			if wall == 0 {
				t.Errorf("rank %d phase %s: zero total wall time", rank, phase)
			}
		}
	}
}

// TestMetricsDegradedRunEventLog checks the operational event log of a
// checkpointed run that loses a device: checkpoints (with wall cost), the
// failure, and the degradation must all appear, in causal order.
func TestMetricsDegradedRunEventLog(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	opt0, opt1 := chaosOpts(10, 2, "rank1:drop@5", t)
	col := metrics.NewCollector()
	opt0.Metrics = col
	res, err := core.RunF32Hetero(apps.NewPageRank(), g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("run did not degrade")
	}
	kinds := eventKinds(col)
	if kinds[metrics.EventCheckpoint] == 0 {
		t.Error("no checkpoint events recorded")
	}
	if kinds[metrics.EventDeviceFailed] != 1 || kinds[metrics.EventDegraded] != 1 {
		t.Errorf("event kinds = %v, want one device-failed and one degraded", kinds)
	}
	var failedAt, degradedAt int = -1, -1
	for i, e := range col.Events() {
		switch e.Kind {
		case metrics.EventCheckpoint:
			if e.WallNS <= 0 {
				t.Errorf("checkpoint event %d has no wall cost: %+v", i, e)
			}
		case metrics.EventDeviceFailed:
			failedAt = i
			if e.Rank != 1 || e.Superstep != 5 {
				t.Errorf("device-failed attribution: %+v", e)
			}
		case metrics.EventDegraded:
			degradedAt = i
		}
		if e.UnixNano == 0 {
			t.Errorf("event %d missing timestamp: %+v", i, e)
		}
	}
	if failedAt == -1 || degradedAt < failedAt {
		t.Errorf("degraded event (index %d) not after device-failed (index %d)", degradedAt, failedAt)
	}
}

// TestMetricsSuperstepErrorReturnsPartialResult checks the runF32Loop fix:
// a mid-run failure must surface the superstep index in the error, keep the
// counters accumulated so far, and log a superstep-error event.
func TestMetricsSuperstepErrorReturnsPartialResult(t *testing.T) {
	g := testGraph(t)
	plan, err := fault.Parse("rank0:panic@2:generate")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	res, err := core.RunF32(apps.NewPageRank(), g, core.Options{
		Dev: machine.CPU(), Scheme: core.SchemeLocking, MaxIterations: 6,
		Fault: inj, Metrics: col,
	})
	if err == nil {
		t.Fatal("injected panic did not fail the run")
	}
	if !strings.Contains(err.Error(), "superstep 2") {
		t.Errorf("error does not name the failing superstep: %v", err)
	}
	if res.Iterations != 2 {
		t.Errorf("partial result lost: Iterations = %d, want 2 completed supersteps", res.Iterations)
	}
	if res.Counters.Messages == 0 || res.SimSeconds == 0 {
		t.Errorf("partial counters zeroed: %+v", res.Counters)
	}
	found := false
	for _, e := range col.Events() {
		if e.Kind == metrics.EventSuperstepError && e.Superstep == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no superstep-error event at superstep 2; events: %+v", col.Events())
	}
}

// TestMetricsGenericEngineFusedAttribution checks the structured-message
// engine's documented wall attribution: the fused process+update walk is
// charged to the process sample; the update sample carries simulated time
// only.
func TestMetricsGenericEngineFusedAttribution(t *testing.T) {
	g := testGraph(t)
	col := metrics.NewCollector()
	const iters = 3
	_, err := core.RunGeneric[apps.LPAMsg](apps.NewLabelPropagation(), g, core.Options{
		Dev: machine.CPU(), Scheme: core.SchemeLocking, MaxIterations: iters, Metrics: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := samplesFor(col, 0, metrics.PhaseGenerate)
	proc := samplesFor(col, 0, metrics.PhaseProcess)
	upd := samplesFor(col, 0, metrics.PhaseUpdate)
	if len(gen) != iters || len(proc) != iters || len(upd) != iters {
		t.Fatalf("sample counts: gen %d proc %d upd %d, want %d each", len(gen), len(proc), len(upd), iters)
	}
	var genWall, procWall int64
	for i := range gen {
		genWall += gen[i].WallNS
		procWall += proc[i].WallNS
		if upd[i].WallNS != 0 {
			t.Errorf("update sample %d has wall time %d; the fused walk charges process", i, upd[i].WallNS)
		}
		if upd[i].SimSeconds <= 0 {
			t.Errorf("update sample %d missing simulated time", i)
		}
	}
	if genWall == 0 || procWall == 0 {
		t.Errorf("zero wall totals: generate %d, process %d", genWall, procWall)
	}
}

// TestMetricsNilSinkRecordsNothing pins the contract that a nil sink leaves
// no trace of the metrics layer in results (the whole suite runs with nil
// sinks, so behavioral equivalence is covered; this guards the plumbing).
func TestMetricsNilSinkRecordsNothing(t *testing.T) {
	g := chaosGraph(t)
	res1, err := core.RunF32(apps.NewPageRank(), g, core.Options{
		Dev: machine.MIC(), Scheme: core.SchemeLocking, MaxIterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	res2, err := core.RunF32(apps.NewPageRank(), g, core.Options{
		Dev: machine.MIC(), Scheme: core.SchemeLocking, MaxIterations: 3, Metrics: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res1.SimSeconds != res2.SimSeconds || res1.Counters != res2.Counters {
		t.Errorf("metrics collection changed the modeled run: sim %v vs %v", res1.SimSeconds, res2.SimSeconds)
	}
	if col.Len() == 0 {
		t.Error("collector empty after instrumented run")
	}
}
