package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hetgraph/internal/checkpoint"
	"hetgraph/internal/comm"
	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/metrics"
)

// HeteroResult reports a CPU+MIC run. Per-iteration the devices run in
// lockstep (the exchange is the synchronization point), so the combined
// execution time is the sum over iterations of the slower device's phase
// time, plus the communication time.
type HeteroResult struct {
	Iterations int64
	Converged  bool
	// Dev holds each device's own result (its counters and phase times).
	// In a degraded run these cover only the iterations before the failure.
	Dev [2]Result
	// ExecSeconds is sum_i max(dev0_i, dev1_i) over compute phases. In a
	// degraded run it covers the lockstep iterations up to the restored
	// checkpoint plus the single-device continuation's compute time.
	ExecSeconds float64
	// CommSeconds is the modeled PCIe exchange time (including the
	// per-iteration active-count allreduce).
	CommSeconds float64
	// SimSeconds = ExecSeconds + CommSeconds.
	SimSeconds float64
	// WallSeconds is host wall-clock time.
	WallSeconds float64

	// Degraded is true when one device failed mid-run and the survivor
	// finished the run single-device from the last checkpoint.
	Degraded bool
	// FailedRank is the rank that failed (-1 when no failure).
	FailedRank int
	// FailedSuperstep is the superstep at which the failure was detected
	// (-1 if it could not be attributed to a specific superstep).
	FailedSuperstep int64
	// ResumedSuperstep is the checkpointed superstep the survivor resumed
	// from; supersteps in (ResumedSuperstep, failure) were recomputed. For
	// a disk-resumed run it is the superstep the cold start restored.
	ResumedSuperstep int64
	// Recovery is the single-device continuation's result (zero unless
	// Degraded).
	Recovery Result

	// DiskResumed is true when the run cold-started from an on-disk
	// checkpoint (Options.Resume) instead of App.Init.
	DiskResumed bool
	// ResumedGeneration is the store generation the cold start restored
	// from (zero unless DiskResumed).
	ResumedGeneration uint64
}

// validAssign checks a device assignment vector against g.
func validAssign(g *graph.CSR, assign []int32) error {
	if len(assign) != g.NumVertices() {
		return fmt.Errorf("core: assignment covers %d vertices, graph has %d", len(assign), g.NumVertices())
	}
	for v, a := range assign {
		if a != 0 && a != 1 {
			return fmt.Errorf("core: vertex %d assigned to device %d (want 0 or 1)", v, a)
		}
	}
	return nil
}

// splitActive partitions the initially active vertices by owner.
func splitActive(active []graph.VertexID, assign []int32) (a0, a1 []graph.VertexID) {
	for _, v := range active {
		if assign[v] == 0 {
			a0 = append(a0, v)
		} else {
			a1 = append(a1, v)
		}
	}
	return a0, a1
}

// robustnessConfig is the merged robustness settings of a heterogeneous
// run: the interconnect, the checkpoint schedule, and the durable store are
// all shared between the ranks.
type robustnessConfig struct {
	timeout time.Duration
	inj     *fault.Injector
	every   int
	dir     string
	retain  int
	resume  bool
	// sink receives run-level events (checkpoints, failures, degradation,
	// resume); per-device phase samples go to each option's own sink.
	sink metrics.Sink
}

// resolveFaultConfig merges the robustness settings of the two device
// options: the first non-zero/non-nil value wins (Resume is an OR — either
// side asking for a cold start makes the run one).
func resolveFaultConfig(o0, o1 Options) robustnessConfig {
	c := robustnessConfig{
		timeout: o0.ExchangeTimeout,
		inj:     o0.Fault,
		every:   o0.CheckpointEvery,
		dir:     o0.CheckpointDir,
		retain:  o0.CheckpointRetain,
		resume:  o0.Resume || o1.Resume,
		sink:    o0.Metrics,
	}
	if c.timeout == 0 {
		c.timeout = o1.ExchangeTimeout
	}
	if c.inj == nil {
		c.inj = o1.Fault
	}
	if c.every == 0 {
		c.every = o1.CheckpointEvery
	}
	if c.dir == "" {
		c.dir = o1.CheckpointDir
	}
	if c.retain == 0 {
		c.retain = o1.CheckpointRetain
	}
	if c.sink == nil {
		c.sink = o1.Metrics
	}
	return c
}

// blameRank resolves which rank err accuses of failing. r is the rank that
// observed the error: a *comm.DeviceFailedError carries the verdict
// explicitly (a rank that suffered an injected fault blames itself; a rank
// whose peer vanished blames the peer); a checkpoint barrier broken by peer
// death blames the peer; anything else — a recovered panic in a user
// function, a scheduler error — is the observer's own failure.
func blameRank(r int, err error) int {
	var dfe *comm.DeviceFailedError
	if errors.As(err, &dfe) {
		return dfe.Rank
	}
	if errors.Is(err, checkpoint.ErrPeerDead) {
		return 1 - r
	}
	return r
}

// RunF32Hetero executes app across two modeled devices. assign maps each
// vertex to its owner (0 = optDev0's device, conventionally the CPU;
// 1 = optDev1's, the MIC). Vertex state is partitioned by ownership: each
// device generates from and updates only its own vertices, so the shared
// state arrays carry no cross-device races.
//
// With Options.CheckpointEvery > 0 (app must implement
// checkpoint.Snapshotter) the run is fault-tolerant: when one device fails —
// by injected fault, exchange timeout, or a panic in a user function — the
// survivor restores the last superstep-boundary checkpoint, absorbs the dead
// rank's partition, and finishes the run single-device; the result records
// the degradation. Without checkpointing a device failure is returned as an
// error (typically a *comm.DeviceFailedError) instead of deadlocking.
func RunF32Hetero(app AppF32, g *graph.CSR, assign []int32, optDev0, optDev1 Options) (HeteroResult, error) {
	start := time.Now()
	if err := validateRunArgs(app, g); err != nil {
		return HeteroResult{}, err
	}
	if err := validAssign(g, assign); err != nil {
		return HeteroResult{}, err
	}
	net, err := comm.NewNet[float32](machine.PCIe(), app.Profile().MsgBytes)
	if err != nil {
		return HeteroResult{}, err
	}
	cfg := resolveFaultConfig(optDev0, optDev1)
	net.SetTimeout(cfg.timeout)
	net.SetInjector(cfg.inj)
	opts := [2]Options{optDev0, optDev1}
	// The resolved injector governs the whole run: both devices consult it
	// for in-phase (panic) events, whichever option carried it.
	opts[0].Fault, opts[1].Fault = cfg.inj, cfg.inj
	devs := [2]*deviceF32{}
	for r := 0; r < 2; r++ {
		ep, err := net.Endpoint(r)
		if err != nil {
			return HeteroResult{}, err
		}
		devs[r], err = newDeviceF32(app, g, opts[r], r, assign, ep)
		if err != nil {
			return HeteroResult{}, err
		}
	}
	maxIter := devs[0].opt.MaxIterations
	if devs[1].opt.MaxIterations < maxIter {
		maxIter = devs[1].opt.MaxIterations
	}

	// Checkpointing (in-memory or durable) and resume all need the app to
	// snapshot/restore its state.
	var snapper checkpoint.Snapshotter
	if cfg.every > 0 || cfg.dir != "" {
		var ok bool
		if snapper, ok = app.(checkpoint.Snapshotter); !ok {
			field := "CheckpointEvery"
			if cfg.every == 0 {
				field = "CheckpointDir"
			}
			return HeteroResult{}, &InvalidOptionsError{
				Field:  field,
				Reason: fmt.Sprintf("app %T does not implement checkpoint.Snapshotter", app),
			}
		}
	}
	var store *checkpoint.Store
	if cfg.dir != "" {
		store, err = checkpoint.OpenStore(cfg.dir, checkpoint.StoreOptions{
			Retain: cfg.retain,
			Rank:   0, // the host owns the storage path
			Fault:  cfg.inj,
		})
		if err != nil {
			return HeteroResult{}, &InvalidOptionsError{Field: "CheckpointDir", Reason: err.Error()}
		}
	}

	// Init always runs (it sizes the state arrays); a cold-start resume then
	// overwrites the freshly initialized state with the restored snapshot and
	// takes its frontiers from the checkpoint instead of Init's active set.
	active := app.Init(g)
	a0, a1 := splitActive(active, assign)
	var (
		resumeFrom int64
		resumedGen uint64
	)
	if cfg.resume {
		snap, gen, err := store.Load()
		if err != nil {
			return HeteroResult{}, &InvalidOptionsError{Field: "Resume", Reason: err.Error()}
		}
		if err := snapper.Restore(snap.State); err != nil {
			return HeteroResult{}, fmt.Errorf("core: resume from %s gen %d: %w", cfg.dir, gen, err)
		}
		a0 = snap.Frontier[0]
		a1 = snap.Frontier[1]
		resumeFrom = snap.Superstep
		resumedGen = gen
		emitEvent(cfg.sink, metrics.Event{
			Kind: metrics.EventResume, Rank: -1, Superstep: resumeFrom,
			Detail: fmt.Sprintf("cold start from %s generation %d", cfg.dir, gen),
		})
	}
	actives := [2][]graph.VertexID{a0, a1}

	var coord *checkpoint.Coordinator
	if cfg.every > 0 {
		coord, err = checkpoint.NewCoordinator(snapper, cfg.every, cfg.timeout)
		if err != nil {
			return HeteroResult{}, err
		}
		coord.SetStore(store)
		coord.SetSink(cfg.sink)
		// Superstep-0 snapshot (or the restored superstep's, on resume),
		// taken before the rank loops start: recovery is possible from any
		// point of the run, including a failure in the very first superstep.
		if err := coord.InitialAt(resumeFrom, a0, a1); err != nil {
			return HeteroResult{}, err
		}
	}

	var (
		res       HeteroResult
		iterTimes [2][]float64 // per-iteration compute time per device
		wg        sync.WaitGroup
		runErr    [2]error
	)
	res.FailedRank = -1
	res.FailedSuperstep = -1
	res.DiskResumed = cfg.resume
	res.ResumedGeneration = resumedGen
	if cfg.resume {
		res.ResumedSuperstep = resumeFrom
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			d := devs[r]
			// On any error, declare this rank dead on both the interconnect
			// and the checkpoint barrier, so the peer fails fast wherever it
			// is waiting instead of deadlocking.
			defer func() {
				if runErr[r] != nil {
					d.ep.Abort()
					if coord != nil {
						coord.MarkDead(r)
					}
				}
			}()
			if cfg.resume {
				// Both ranks must have restored the same store generation,
				// and from here on exchange rounds (and the fault plan's
				// step indices) count absolute supersteps.
				if _, err := d.ep.ResumeHandshake(resumedGen); err != nil {
					runErr[r] = err
					return
				}
				d.ep.SetStep(resumeFrom)
			}
			active := actives[r]
			fixed := IsFixedActive(d.app)
			initial := active
			measured := d.opt.Metrics != nil
			for iter := int(resumeFrom); iter < maxIter; iter++ {
				d.step = int64(iter)
				var c machine.Counters
				var pt PhaseTimes
				c.Iterations = 1
				c.BufferResetBytes = d.buf.Reset()
				// Generate (local inserts + remote accumulation).
				var t time.Time
				if measured {
					t = time.Now()
				}
				if err := d.generate(active, &c); err != nil {
					runErr[r] = err
					return
				}
				if measured {
					d.wall.generate = time.Since(t).Nanoseconds()
				}
				// Implicit remote message exchange (Fig. 2). It carries this
				// iteration's active count, which doubles as the BSP
				// termination allreduce: when no vertex was active anywhere,
				// nothing was generated and the run is over. (Its wall time —
				// including the lockstep wait for the peer — is measured by
				// comm and copied into d.wall by exchange.)
				remoteActive, err := d.exchange(int64(len(active)), &c, &pt)
				if err != nil {
					runErr[r] = err
					return
				}
				if int64(len(active))+remoteActive == 0 && !fixed {
					// The convergence-detection superstep carries only
					// generate + exchange work.
					devs[r].recordIter(&res.Dev[r], c, pt)
					d.recordMetrics(d.step, c, pt)
					res.Dev[r].Converged = true
					return
				}
				// Process + update locally.
				if measured {
					t = time.Now()
				}
				deliveries, err := d.process(&c)
				if err != nil {
					runErr[r] = err
					return
				}
				if measured {
					now := time.Now()
					d.wall.process = now.Sub(t).Nanoseconds()
					t = now
				}
				next, err := d.update(deliveries, &c)
				if err != nil {
					runErr[r] = err
					return
				}
				if measured {
					d.wall.update = time.Since(t).Nanoseconds()
				}
				compute := d.phaseTimes(c)
				pt.Generate = compute.Generate
				pt.Process = compute.Process
				pt.Update = compute.Update

				d.recordTrace(res.Dev[r].Iterations, c, pt)
				d.recordMetrics(d.step, c, pt)
				devs[r].recordIter(&res.Dev[r], c, pt)
				iterTimes[r] = append(iterTimes[r], pt.Generate+pt.Process+pt.Update)
				if fixed {
					active = initial
				} else {
					active = next
				}
				// Superstep iter is complete; checkpoint at the boundary if
				// due. `active` is exactly this rank's frontier for the next
				// superstep, which is what the snapshot must carry.
				if coord != nil {
					if completed := int64(iter) + 1; coord.Due(completed) {
						if err := coord.Checkpoint(r, completed, active); err != nil {
							runErr[r] = err
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()

	if runErr[0] != nil || runErr[1] != nil {
		return recoverF32Hetero(app, g, opts, coord, res, iterTimes, runErr, maxIter, resumeFrom, start)
	}

	res.Iterations = resumeFrom + res.Dev[0].Iterations
	res.Converged = res.Dev[0].Converged && res.Dev[1].Converged
	// Lockstep combination: per iteration the node waits for the slower
	// device; communication time is identical on both sides (full-duplex
	// model), so take device 0's.
	res.ExecSeconds = lockstepSeconds(iterTimes, len(iterTimes[0]))
	res.CommSeconds = res.Dev[0].Phases.Exchange
	res.SimSeconds = res.ExecSeconds + res.CommSeconds
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// lockstepSeconds sums max(dev0_i, dev1_i) over the first n iterations.
func lockstepSeconds(iterTimes [2][]float64, n int) float64 {
	var total float64
	for i := 0; i < n && i < len(iterTimes[0]); i++ {
		t := iterTimes[0][i]
		if i < len(iterTimes[1]) && iterTimes[1][i] > t {
			t = iterTimes[1][i]
		}
		total += t
	}
	return total
}

// recoverF32Hetero handles a failed heterogeneous run: it identifies the
// dead rank from the two loops' errors, restores the last checkpoint, and
// finishes the run on a single device built from the survivor's options.
// Without a coordinator (or when both ranks failed independently) the
// failure is returned as an error.
func recoverF32Hetero(
	app AppF32, g *graph.CSR, opts [2]Options, coord *checkpoint.Coordinator,
	res HeteroResult, iterTimes [2][]float64, runErr [2]error, maxIter int, resumeFrom int64, start time.Time,
) (HeteroResult, error) {
	sink := resolveFaultConfig(opts[0], opts[1]).sink
	// A failed durable commit is not a device failure: the storage path is
	// shared, so degrading to a single device would keep hitting the same
	// broken disk. Treat it like a process crash — abort the whole run; the
	// previously committed generations are intact and a restart with
	// Options.Resume picks the run back up.
	for r := 0; r < 2; r++ {
		var serr *checkpoint.StoreError
		if errors.As(runErr[r], &serr) {
			err := fmt.Errorf("core: run aborted, durable checkpoint store failed (restart with Options.Resume to recover): %w", runErr[r])
			emitEvent(sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: r, Superstep: -1, Detail: err.Error()})
			return HeteroResult{}, err
		}
	}
	// Resolve the failed rank. Both loops usually error (the survivor's
	// error names the dead peer), and their verdicts must agree; a lone
	// error also identifies the failure (the peer finished its loop before
	// noticing).
	failed := -1
	failedStep := int64(-1)
	var firstErr error
	for r := 0; r < 2; r++ {
		if runErr[r] == nil {
			continue
		}
		if firstErr == nil {
			firstErr = runErr[r]
		}
		b := blameRank(r, runErr[r])
		if failed == -1 {
			failed = b
		} else if failed != b {
			err := fmt.Errorf("core: both devices failed, cannot degrade: rank 0: %v; rank 1: %v", runErr[0], runErr[1])
			emitEvent(sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: -1, Superstep: -1, Detail: err.Error()})
			return HeteroResult{}, err
		}
		var dfe *comm.DeviceFailedError
		if errors.As(runErr[r], &dfe) && dfe.Rank == b {
			failedStep = dfe.Superstep
		}
	}
	emitEvent(sink, metrics.Event{
		Kind: metrics.EventDeviceFailed, Rank: failed, Superstep: failedStep,
		Detail: firstErr.Error(),
	})
	if coord == nil {
		return HeteroResult{}, firstErr
	}
	snap, err := coord.Restore()
	if err != nil {
		return HeteroResult{}, fmt.Errorf("core: device failure (%v) and recovery failed: %w", firstErr, err)
	}
	survivor := 1 - failed
	ropt := opts[survivor]
	// The continuation is a fresh single-device engine: no assignment, no
	// endpoint, and no fault injection (the plan described the heterogeneous
	// run; re-firing its events against the survivor would kill recovery).
	ropt.Fault = nil
	sd, err := newDeviceF32(app, g, ropt, 0, nil, nil)
	if err != nil {
		return HeteroResult{}, fmt.Errorf("core: device failure (%v) and recovery engine failed: %w", firstErr, err)
	}
	emitEvent(sink, metrics.Event{
		Kind: metrics.EventDegraded, Rank: failed, Superstep: snap.Superstep,
		Detail: fmt.Sprintf("rank %d survives; restored checkpointed superstep %d, continuing single-device", survivor, snap.Superstep),
	})
	remaining := maxIter - int(snap.Superstep)
	rec, err := runF32Loop(sd, snap.MergedFrontier(), remaining)
	if err != nil {
		return HeteroResult{}, fmt.Errorf("core: device failure (%v) and degraded continuation failed: %w", firstErr, err)
	}

	res.Degraded = true
	res.FailedRank = failed
	res.FailedSuperstep = failedStep
	res.ResumedSuperstep = snap.Superstep
	res.Recovery = rec
	res.Iterations = snap.Superstep + rec.Iterations
	res.Converged = rec.Converged
	// Simulated time: lockstep pairs up to the restored checkpoint (work
	// past it was recomputed and is not double-counted; on a disk-resumed
	// run iterTimes index supersteps relative to the cold start), plus the
	// single-device continuation's compute; communication time covers what
	// actually crossed the link before the failure.
	res.ExecSeconds = lockstepSeconds(iterTimes, int(snap.Superstep-resumeFrom)) +
		rec.Phases.Generate + rec.Phases.Process + rec.Phases.Update
	res.CommSeconds = res.Dev[0].Phases.Exchange
	res.SimSeconds = res.ExecSeconds + res.CommSeconds
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// recordIter accumulates one iteration into a device's Result.
func (d *deviceF32) recordIter(r *Result, c machine.Counters, pt PhaseTimes) {
	r.Iterations++
	r.Counters.Add(c)
	r.Phases.Add(pt)
	r.SimSeconds = r.Phases.Total()
}
