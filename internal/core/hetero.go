package core

import (
	"fmt"
	"sync"
	"time"

	"hetgraph/internal/comm"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
)

// HeteroResult reports a CPU+MIC run. Per-iteration the devices run in
// lockstep (the exchange is the synchronization point), so the combined
// execution time is the sum over iterations of the slower device's phase
// time, plus the communication time.
type HeteroResult struct {
	Iterations int64
	Converged  bool
	// Dev holds each device's own result (its counters and phase times).
	Dev [2]Result
	// ExecSeconds is sum_i max(dev0_i, dev1_i) over compute phases.
	ExecSeconds float64
	// CommSeconds is the modeled PCIe exchange time (including the
	// per-iteration active-count allreduce).
	CommSeconds float64
	// SimSeconds = ExecSeconds + CommSeconds.
	SimSeconds float64
	// WallSeconds is host wall-clock time.
	WallSeconds float64
}

// validAssign checks a device assignment vector against g.
func validAssign(g *graph.CSR, assign []int32) error {
	if len(assign) != g.NumVertices() {
		return fmt.Errorf("core: assignment covers %d vertices, graph has %d", len(assign), g.NumVertices())
	}
	for v, a := range assign {
		if a != 0 && a != 1 {
			return fmt.Errorf("core: vertex %d assigned to device %d (want 0 or 1)", v, a)
		}
	}
	return nil
}

// splitActive partitions the initially active vertices by owner.
func splitActive(active []graph.VertexID, assign []int32) (a0, a1 []graph.VertexID) {
	for _, v := range active {
		if assign[v] == 0 {
			a0 = append(a0, v)
		} else {
			a1 = append(a1, v)
		}
	}
	return a0, a1
}

// RunF32Hetero executes app across two modeled devices. assign maps each
// vertex to its owner (0 = optDev0's device, conventionally the CPU;
// 1 = optDev1's, the MIC). Vertex state is partitioned by ownership: each
// device generates from and updates only its own vertices, so the shared
// state arrays carry no cross-device races.
func RunF32Hetero(app AppF32, g *graph.CSR, assign []int32, optDev0, optDev1 Options) (HeteroResult, error) {
	start := time.Now()
	if err := validAssign(g, assign); err != nil {
		return HeteroResult{}, err
	}
	net, err := comm.NewNet[float32](machine.PCIe(), app.Profile().MsgBytes)
	if err != nil {
		return HeteroResult{}, err
	}
	opts := [2]Options{optDev0, optDev1}
	devs := [2]*deviceF32{}
	for r := 0; r < 2; r++ {
		ep, err := net.Endpoint(r)
		if err != nil {
			return HeteroResult{}, err
		}
		devs[r], err = newDeviceF32(app, g, opts[r], r, assign, ep)
		if err != nil {
			return HeteroResult{}, err
		}
	}
	maxIter := devs[0].opt.MaxIterations
	if devs[1].opt.MaxIterations < maxIter {
		maxIter = devs[1].opt.MaxIterations
	}

	active := app.Init(g)
	a0, a1 := splitActive(active, assign)
	actives := [2][]graph.VertexID{a0, a1}

	var (
		res       HeteroResult
		iterTimes [2][]float64 // per-iteration compute time per device
		wg        sync.WaitGroup
		runErr    [2]error
	)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			d := devs[r]
			active := actives[r]
			fixed := IsFixedActive(d.app)
			initial := active
			for iter := 0; iter < maxIter; iter++ {
				var c machine.Counters
				var pt PhaseTimes
				c.Iterations = 1
				c.BufferResetBytes = d.buf.Reset()
				// Generate (local inserts + remote accumulation).
				if err := d.generate(active, &c); err != nil {
					runErr[r] = err
					return
				}
				// Implicit remote message exchange (Fig. 2). It carries this
				// iteration's active count, which doubles as the BSP
				// termination allreduce: when no vertex was active anywhere,
				// nothing was generated and the run is over.
				remoteActive := d.exchange(int64(len(active)), &c, &pt)
				if int64(len(active))+remoteActive == 0 && !fixed {
					devs[r].recordIter(&res.Dev[r], c, pt)
					res.Dev[r].Converged = true
					return
				}
				// Process + update locally.
				deliveries, err := d.process(&c)
				if err != nil {
					runErr[r] = err
					return
				}
				next, err := d.update(deliveries, &c)
				if err != nil {
					runErr[r] = err
					return
				}
				compute := d.phaseTimes(c)
				pt.Generate = compute.Generate
				pt.Process = compute.Process
				pt.Update = compute.Update

				d.recordTrace(res.Dev[r].Iterations, c, pt)
				devs[r].recordIter(&res.Dev[r], c, pt)
				iterTimes[r] = append(iterTimes[r], pt.Generate+pt.Process+pt.Update)
				if fixed {
					active = initial
				} else {
					active = next
				}
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		if runErr[r] != nil {
			return HeteroResult{}, runErr[r]
		}
	}
	res.Iterations = res.Dev[0].Iterations
	res.Converged = res.Dev[0].Converged && res.Dev[1].Converged
	// Lockstep combination: per iteration the node waits for the slower
	// device; communication time is identical on both sides (full-duplex
	// model), so take device 0's.
	for i := range iterTimes[0] {
		t0 := iterTimes[0][i]
		t1 := 0.0
		if i < len(iterTimes[1]) {
			t1 = iterTimes[1][i]
		}
		if t1 > t0 {
			t0 = t1
		}
		res.ExecSeconds += t0
	}
	res.CommSeconds = res.Dev[0].Phases.Exchange
	res.SimSeconds = res.ExecSeconds + res.CommSeconds
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// recordIter accumulates one iteration into a device's Result.
func (d *deviceF32) recordIter(r *Result, c machine.Counters, pt PhaseTimes) {
	r.Iterations++
	r.Counters.Add(c)
	r.Phases.Add(pt)
	r.SimSeconds = r.Phases.Total()
}
