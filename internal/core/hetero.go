package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hetgraph/internal/checkpoint"
	"hetgraph/internal/comm"
	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/metrics"
)

// HeteroResult reports a CPU+MIC run. Per-iteration the devices run in
// lockstep (the exchange is the synchronization point), so the combined
// execution time is the sum over iterations of the slower device's phase
// time, plus the communication time.
type HeteroResult struct {
	Iterations int64
	Converged  bool
	// Dev holds each device's own result (its counters and phase times).
	// In a degraded run these cover only the iterations before the failure;
	// in a healed run the restarted rank's result covers its lockstep
	// supersteps (pre-failure plus post-rejoin).
	Dev [2]Result
	// ExecSeconds is sum_i max(dev0_i, dev1_i) over compute phases. In a
	// degraded or healed run it covers the lockstep iterations up to each
	// restored checkpoint plus the single-device windows' compute time.
	ExecSeconds float64
	// CommSeconds is the modeled PCIe exchange time (including the
	// per-iteration active-count allreduce).
	CommSeconds float64
	// SimSeconds = ExecSeconds + CommSeconds.
	SimSeconds float64
	// WallSeconds is host wall-clock time.
	WallSeconds float64

	// Degraded is true when one device failed mid-run and the run *ended*
	// single-device: the survivor restored the last checkpoint and finished
	// alone. A run that degraded but healed (see Healed) ends with
	// Degraded=false.
	Degraded bool
	// FailedRank is the rank that failed (-1 when no failure; the latest
	// failure when there were several).
	FailedRank int
	// FailedSuperstep is the superstep at which the failure was detected
	// (-1 if it could not be attributed to a specific superstep).
	FailedSuperstep int64
	// ResumedSuperstep is the checkpointed superstep the survivor resumed
	// from; supersteps in (ResumedSuperstep, failure) were recomputed. For
	// a disk-resumed run it is the superstep the cold start restored.
	ResumedSuperstep int64
	// Recovery is the single-device result accumulated while the run was
	// degraded (zero unless a failure occurred): the permanent continuation,
	// or — with Options.Rejoin — the degraded windows between failure and
	// rejoin.
	Recovery Result

	// DiskResumed is true when the run cold-started from an on-disk
	// checkpoint (Options.Resume) instead of App.Init.
	DiskResumed bool
	// ResumedGeneration is the store generation the cold start restored
	// from (zero unless DiskResumed).
	ResumedGeneration uint64

	// Healed is true when a failed rank was restarted and re-admitted at a
	// superstep barrier (Options.Rejoin), returning the run to two-device
	// lockstep. Healed stays true even if a later failure degraded the run
	// again.
	Healed bool
	// RejoinSuperstep is the superstep barrier the restarted rank rejoined
	// at (zero unless Healed; the latest rejoin when there were several).
	RejoinSuperstep int64
	// DegradedSupersteps counts the supersteps executed single-device while
	// the run was degraded — the permanent continuation's supersteps, or
	// the rejoin-mode degraded windows'.
	DegradedSupersteps int64
}

// validAssign checks a device assignment vector against g.
func validAssign(g *graph.CSR, assign []int32) error {
	if len(assign) != g.NumVertices() {
		return fmt.Errorf("core: assignment covers %d vertices, graph has %d", len(assign), g.NumVertices())
	}
	for v, a := range assign {
		if a != 0 && a != 1 {
			return fmt.Errorf("core: vertex %d assigned to device %d (want 0 or 1)", v, a)
		}
	}
	return nil
}

// splitActive partitions the initially active vertices by owner.
func splitActive(active []graph.VertexID, assign []int32) (a0, a1 []graph.VertexID) {
	for _, v := range active {
		if assign[v] == 0 {
			a0 = append(a0, v)
		} else {
			a1 = append(a1, v)
		}
	}
	return a0, a1
}

// robustnessConfig is the merged robustness settings of a heterogeneous
// run: the interconnect, the checkpoint schedule, and the durable store are
// all shared between the ranks.
type robustnessConfig struct {
	timeout time.Duration
	inj     *fault.Injector
	every   int
	dir     string
	retain  int
	resume  bool
	rejoin  bool
	abort   <-chan struct{}
	// sink receives run-level events (checkpoints, failures, degradation,
	// resume); per-device phase samples go to each option's own sink.
	sink metrics.Sink
}

// resolveFaultConfig merges the robustness settings of the two device
// options: the first non-zero/non-nil value wins (Resume and Rejoin are ORs
// — either side asking makes the run one).
func resolveFaultConfig(o0, o1 Options) robustnessConfig {
	c := robustnessConfig{
		timeout: o0.ExchangeTimeout,
		inj:     o0.Fault,
		every:   o0.CheckpointEvery,
		dir:     o0.CheckpointDir,
		retain:  o0.CheckpointRetain,
		resume:  o0.Resume || o1.Resume,
		rejoin:  o0.Rejoin || o1.Rejoin,
		abort:   o0.Abort,
		sink:    o0.Metrics,
	}
	if c.timeout == 0 {
		c.timeout = o1.ExchangeTimeout
	}
	if c.inj == nil {
		c.inj = o1.Fault
	}
	if c.every == 0 {
		c.every = o1.CheckpointEvery
	}
	if c.dir == "" {
		c.dir = o1.CheckpointDir
	}
	if c.retain == 0 {
		c.retain = o1.CheckpointRetain
	}
	if c.abort == nil {
		c.abort = o1.Abort
	}
	if c.sink == nil {
		c.sink = o1.Metrics
	}
	return c
}

// blameRank resolves which rank err accuses of failing. r is the rank that
// observed the error: a *comm.DeviceFailedError carries the verdict
// explicitly (a rank that suffered an injected fault blames itself; a rank
// whose peer vanished blames the peer); a checkpoint barrier broken by peer
// death blames the peer; anything else — a recovered panic in a user
// function, a scheduler error — is the observer's own failure.
func blameRank(r int, err error) int {
	var dfe *comm.DeviceFailedError
	if errors.As(err, &dfe) {
		return dfe.Rank
	}
	if errors.Is(err, checkpoint.ErrPeerDead) {
		return 1 - r
	}
	return r
}

// RunF32Hetero executes app across two modeled devices. assign maps each
// vertex to its owner (0 = optDev0's device, conventionally the CPU;
// 1 = optDev1's, the MIC). Vertex state is partitioned by ownership: each
// device generates from and updates only its own vertices, so the shared
// state arrays carry no cross-device races.
//
// With Options.CheckpointEvery > 0 (app must implement
// checkpoint.Snapshotter) the run is fault-tolerant: when one device fails —
// by injected fault, exchange timeout, or a panic in a user function — the
// survivor restores the last superstep-boundary checkpoint, absorbs the dead
// rank's partition, and finishes the run single-device; the result records
// the degradation. Without checkpointing a device failure is returned as an
// error (typically a *comm.DeviceFailedError) instead of deadlocking.
//
// With Options.Rejoin the run additionally heals: while degraded, the
// supervisor polls the fault plan for the failed rank's recovery
// (flaky/recover events); on recovery it restarts the rank's engine, replays
// it from a fresh checkpoint at the rejoin boundary, opens a new comm epoch
// (fencing off stale packets from before the failure), and re-admits the
// rank at a RejoinHandshake barrier, returning the run to two-device
// lockstep.
//
// Options.Abort, when closed, stops the run cooperatively at the next
// superstep boundary: a final checkpoint is captured when possible and the
// partial result is returned with a *RunAbortedError.
func RunF32Hetero(app AppF32, g *graph.CSR, assign []int32, optDev0, optDev1 Options) (HeteroResult, error) {
	start := time.Now()
	if err := validateRunArgs(app, g); err != nil {
		return HeteroResult{}, err
	}
	if err := validAssign(g, assign); err != nil {
		return HeteroResult{}, err
	}
	net, err := comm.NewNet[float32](machine.PCIe(), app.Profile().MsgBytes)
	if err != nil {
		return HeteroResult{}, err
	}
	cfg := resolveFaultConfig(optDev0, optDev1)
	if cfg.rejoin && cfg.every == 0 && cfg.dir == "" {
		return HeteroResult{}, &InvalidOptionsError{
			Field:  "Rejoin",
			Reason: "requires CheckpointEvery > 0 or CheckpointDir: rejoin replays the restarted rank from a checkpoint, and a run that never captures one cannot heal",
		}
	}
	net.SetTimeout(cfg.timeout)
	net.SetInjector(cfg.inj)
	opts := [2]Options{optDev0, optDev1}
	// The merged robustness settings govern the whole run; propagate them
	// onto both options so the engines (in-phase fault injection, abort
	// checks) and per-option validation see one consistent configuration
	// regardless of which option carried each knob.
	for r := range opts {
		opts[r].Fault = cfg.inj
		opts[r].ExchangeTimeout = cfg.timeout
		opts[r].CheckpointEvery = cfg.every
		opts[r].CheckpointDir = cfg.dir
		opts[r].CheckpointRetain = cfg.retain
		opts[r].Resume = cfg.resume
		opts[r].Rejoin = cfg.rejoin
		opts[r].Abort = cfg.abort
	}
	devs := [2]*deviceF32{}
	for r := 0; r < 2; r++ {
		ep, err := net.Endpoint(r)
		if err != nil {
			return HeteroResult{}, err
		}
		devs[r], err = newDeviceF32(app, g, opts[r], r, assign, ep)
		if err != nil {
			return HeteroResult{}, err
		}
	}
	maxIter := devs[0].opt.MaxIterations
	if devs[1].opt.MaxIterations < maxIter {
		maxIter = devs[1].opt.MaxIterations
	}

	// Checkpointing (in-memory or durable), resume, and rejoin all need the
	// app to snapshot/restore its state.
	var snapper checkpoint.Snapshotter
	if cfg.every > 0 || cfg.dir != "" {
		var ok bool
		if snapper, ok = app.(checkpoint.Snapshotter); !ok {
			field := "CheckpointEvery"
			if cfg.every == 0 {
				field = "CheckpointDir"
			}
			return HeteroResult{}, &InvalidOptionsError{
				Field:  field,
				Reason: fmt.Sprintf("app %T does not implement checkpoint.Snapshotter", app),
			}
		}
	}
	var store *checkpoint.Store
	if cfg.dir != "" {
		store, err = checkpoint.OpenStore(cfg.dir, checkpoint.StoreOptions{
			Retain: cfg.retain,
			Rank:   0, // the host owns the storage path
			Fault:  cfg.inj,
		})
		if err != nil {
			return HeteroResult{}, &InvalidOptionsError{Field: "CheckpointDir", Reason: err.Error()}
		}
	}

	// Init always runs (it sizes the state arrays); a cold-start resume then
	// overwrites the freshly initialized state with the restored snapshot and
	// takes its frontiers from the checkpoint instead of Init's active set.
	active := app.Init(g)
	a0, a1 := splitActive(active, assign)
	var (
		resumeFrom int64
		resumedGen uint64
	)
	if cfg.resume {
		snap, gen, err := store.Load()
		if err != nil {
			return HeteroResult{}, &InvalidOptionsError{Field: "Resume", Reason: err.Error()}
		}
		if err := snapper.Restore(snap.State); err != nil {
			return HeteroResult{}, fmt.Errorf("core: resume from %s gen %d: %w", cfg.dir, gen, err)
		}
		a0 = snap.Frontier[0]
		a1 = snap.Frontier[1]
		resumeFrom = snap.Superstep
		resumedGen = gen
		emitEvent(cfg.sink, metrics.Event{
			Kind: metrics.EventResume, Rank: -1, Superstep: resumeFrom,
			Detail: fmt.Sprintf("cold start from %s generation %d", cfg.dir, gen),
		})
	}

	var coord *checkpoint.Coordinator
	if cfg.every > 0 {
		coord, err = checkpoint.NewCoordinator(snapper, cfg.every, cfg.timeout)
		if err != nil {
			return HeteroResult{}, err
		}
		coord.SetStore(store)
		coord.SetSink(cfg.sink)
		// Superstep-0 snapshot (or the restored superstep's, on resume),
		// taken before the rank loops start: recovery is possible from any
		// point of the run, including a failure in the very first superstep.
		if err := coord.InitialAt(resumeFrom, a0, a1); err != nil {
			return HeteroResult{}, err
		}
	}

	h := &heteroF32{
		app: app, g: g, assign: assign, net: net, cfg: cfg, opts: opts,
		snapper: snapper, coord: coord, store: store,
		maxIter: maxIter, start: start, lastRejoin: -1,
	}
	h.res.FailedRank = -1
	h.res.FailedSuperstep = -1
	h.res.DiskResumed = cfg.resume
	h.res.ResumedGeneration = resumedGen
	if cfg.resume {
		h.res.ResumedSuperstep = resumeFrom
	}
	var handshake func(*deviceF32) error
	if cfg.resume {
		handshake = func(d *deviceF32) error {
			// Both ranks must have restored the same store generation, and
			// from here on exchange rounds (and the fault plan's step
			// indices) count absolute supersteps.
			if _, err := d.ep.ResumeHandshake(resumedGen); err != nil {
				return err
			}
			d.ep.SetStep(resumeFrom)
			return nil
		}
	}
	return h.run(devs, [2][]graph.VertexID{a0, a1}, resumeFrom, handshake)
}

// heteroF32 supervises one heterogeneous run: it drives lockstep segments,
// attributes failures, degrades to the survivor, and (with Options.Rejoin)
// heals the run by restarting the failed rank and re-admitting it at a
// superstep barrier under a new comm epoch.
type heteroF32 struct {
	app     AppF32
	g       *graph.CSR
	assign  []int32
	net     *comm.Net[float32]
	cfg     robustnessConfig
	opts    [2]Options
	snapper checkpoint.Snapshotter
	coord   *checkpoint.Coordinator
	store   *checkpoint.Store
	maxIter int
	start   time.Time

	res  HeteroResult
	exec float64 // accumulated compute seconds (lockstep max-pairs + degraded windows)
	// lastRejoin guards rejoin progress: a new rejoin only happens at a
	// strictly later superstep, so a deterministically failing rejoin cannot
	// loop forever (at least one degraded superstep separates attempts,
	// bounded by maxIter).
	lastRejoin int64
}

// run is the supervisor loop: lockstep segments separated by failure
// handling, and (in rejoin mode) degraded windows that may end in a rejoin.
func (h *heteroF32) run(devs [2]*deviceF32, actives [2][]graph.VertexID, from int64, handshake func(*deviceF32) error) (HeteroResult, error) {
	for {
		seg := h.runSegment(devs, actives, from, handshake)
		handshake = nil

		// Cooperative abort: a rank saw Options.Abort closed at a superstep
		// boundary (the peer usually exits with a collateral peer-death
		// error, which the abort takes precedence over).
		if step, ok := segmentAbortStep(seg); ok {
			h.exec += lockstepSeconds(seg.iterTimes, len(seg.iterTimes[0]))
			// Best-effort final checkpoint: only when both ranks stopped at
			// the same boundary is the shared state a consistent snapshot.
			if h.coord != nil && seg.abortStep[0] == seg.abortStep[1] {
				_ = h.coord.InitialAt(step, seg.frontier[0], seg.frontier[1])
			}
			emitEvent(h.cfg.sink, metrics.Event{
				Kind: metrics.EventRunAborted, Rank: -1, Superstep: step,
				Detail: fmt.Sprintf("cooperative abort at superstep boundary %d", step),
			})
			h.res.Iterations = step
			return h.finalize(), &RunAbortedError{Superstep: step}
		}

		if seg.runErr[0] == nil && seg.runErr[1] == nil {
			// Clean finish: both loops ran to convergence or maxIter.
			h.exec += lockstepSeconds(seg.iterTimes, len(seg.iterTimes[0]))
			h.res.Iterations = from + seg.iters[0]
			h.res.Converged = h.res.Dev[0].Converged && h.res.Dev[1].Converged
			return h.finalize(), nil
		}

		// A failed durable commit is not a device failure: the storage path
		// is shared, so degrading to a single device would keep hitting the
		// same broken disk. Treat it like a process crash — abort the whole
		// run; the previously committed generations are intact and a restart
		// with Options.Resume picks the run back up.
		for r := 0; r < 2; r++ {
			var serr *checkpoint.StoreError
			if errors.As(seg.runErr[r], &serr) {
				err := fmt.Errorf("core: run aborted, durable checkpoint store failed (restart with Options.Resume to recover): %w", seg.runErr[r])
				emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: r, Superstep: -1, Detail: err.Error()})
				return HeteroResult{}, err
			}
		}

		// Resolve the failed rank. Both loops usually error (the survivor's
		// error names the dead peer), and their verdicts must agree; a lone
		// error also identifies the failure (the peer finished its loop
		// before noticing).
		failed := -1
		failedStep := int64(-1)
		var firstErr error
		for r := 0; r < 2; r++ {
			if seg.runErr[r] == nil {
				continue
			}
			if firstErr == nil {
				firstErr = seg.runErr[r]
			}
			b := blameRank(r, seg.runErr[r])
			if failed == -1 {
				failed = b
			} else if failed != b {
				err := fmt.Errorf("core: both devices failed, cannot degrade: rank 0: %v; rank 1: %v", seg.runErr[0], seg.runErr[1])
				emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: -1, Superstep: -1, Detail: err.Error()})
				return HeteroResult{}, err
			}
			var dfe *comm.DeviceFailedError
			if errors.As(seg.runErr[r], &dfe) && dfe.Rank == b {
				failedStep = dfe.Superstep
			}
		}
		emitEvent(h.cfg.sink, metrics.Event{
			Kind: metrics.EventDeviceFailed, Rank: failed, Superstep: failedStep,
			Detail: firstErr.Error(),
		})
		if h.coord == nil {
			return HeteroResult{}, firstErr
		}
		snap, err := h.coord.Restore()
		if err != nil {
			return HeteroResult{}, fmt.Errorf("core: device failure (%v) and recovery failed: %w", firstErr, err)
		}
		// Simulated time: lockstep pairs up to the restored checkpoint (work
		// past it was recomputed and is not double-counted; iterTimes index
		// supersteps relative to the segment's start).
		h.exec += lockstepSeconds(seg.iterTimes, int(snap.Superstep-from))

		survivor := 1 - failed
		h.res.FailedRank = failed
		h.res.FailedSuperstep = failedStep
		h.res.ResumedSuperstep = snap.Superstep

		// The continuation is a fresh single-device engine: no assignment, no
		// endpoint, and no fault injection (the plan described the
		// heterogeneous run; re-firing its events against the survivor would
		// kill recovery).
		ropt := h.opts[survivor]
		ropt.Fault = nil
		sd, err := newDeviceF32(h.app, h.g, ropt, 0, nil, nil)
		if err != nil {
			return HeteroResult{}, fmt.Errorf("core: device failure (%v) and recovery engine failed: %w", firstErr, err)
		}
		emitEvent(h.cfg.sink, metrics.Event{
			Kind: metrics.EventDegraded, Rank: failed, Superstep: snap.Superstep,
			Detail: fmt.Sprintf("rank %d survives; restored checkpointed superstep %d, continuing single-device", survivor, snap.Superstep),
		})

		if !h.cfg.rejoin {
			return h.runPermanentDegraded(sd, snap, firstErr)
		}

		// Rejoin mode: run the survivor superstep-at-a-time, polling the
		// fault plan for the failed rank's recovery.
		w, err := h.runDegradedWindow(sd, failed, failedStep, snap)
		if err != nil {
			var serr *checkpoint.StoreError
			if errors.As(err, &serr) {
				aerr := fmt.Errorf("core: run aborted, durable checkpoint store failed (restart with Options.Resume to recover): %w", err)
				emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: 0, Superstep: -1, Detail: aerr.Error()})
				return HeteroResult{}, aerr
			}
			return HeteroResult{}, fmt.Errorf("core: device failure (%v) and degraded continuation failed: %w", firstErr, err)
		}
		switch w.outcome {
		case windowAborted:
			emitEvent(h.cfg.sink, metrics.Event{
				Kind: metrics.EventRunAborted, Rank: -1, Superstep: w.step,
				Detail: fmt.Sprintf("cooperative abort during degraded window at superstep %d", w.step),
			})
			h.res.Degraded = true
			h.res.Iterations = w.step
			return h.finalize(), &RunAbortedError{Superstep: w.step}
		case windowFinished:
			h.res.Degraded = true
			h.res.Iterations = w.step
			h.res.Converged = w.converged
			return h.finalize(), nil
		}

		// windowHealed: restart the failed rank, replay it from a fresh
		// checkpoint at the rejoin boundary, and re-enter lockstep.
		devs2, hs, err := h.rejoin(w.step, w.frontier, failed)
		if err != nil {
			var serr *checkpoint.StoreError
			if errors.As(err, &serr) {
				aerr := fmt.Errorf("core: run aborted, durable checkpoint store failed (restart with Options.Resume to recover): %w", err)
				emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: 0, Superstep: -1, Detail: aerr.Error()})
				return HeteroResult{}, aerr
			}
			emitEvent(h.cfg.sink, metrics.Event{
				Kind: metrics.EventRejoinFailed, Rank: failed, Superstep: w.step,
				Detail: err.Error(),
			})
			return h.runPermanentDegradedFrom(sd, w.step, w.frontier, firstErr)
		}
		devs = devs2
		f0, f1 := splitActive(w.frontier, h.assign)
		actives = [2][]graph.VertexID{f0, f1}
		from = w.step
		handshake = hs
	}
}

// segmentOutcome is one lockstep segment's result: per-rank errors,
// per-iteration compute times (indexed relative to the segment's start),
// supersteps recorded, and — when Options.Abort stopped a rank — the abort
// boundary and the rank's frontier there.
type segmentOutcome struct {
	runErr    [2]error
	iterTimes [2][]float64
	iters     [2]int64
	frontier  [2][]graph.VertexID
	abortStep [2]int64
}

// segmentAbortStep reports the boundary a cooperative abort stopped the
// segment at (the earliest rank's, when both recorded one).
func segmentAbortStep(seg segmentOutcome) (int64, bool) {
	step, ok := int64(-1), false
	for r := 0; r < 2; r++ {
		var aerr *RunAbortedError
		if errors.As(seg.runErr[r], &aerr) {
			if !ok || aerr.Superstep < step {
				step = aerr.Superstep
			}
			ok = true
		}
	}
	return step, ok
}

// runSegment runs both rank loops in lockstep from superstep `from` until
// convergence, maxIter, an abort, or a failure. handshake, when non-nil,
// runs on each rank before its loop (resume or rejoin barrier agreement).
func (h *heteroF32) runSegment(devs [2]*deviceF32, actives [2][]graph.VertexID, from int64, handshake func(*deviceF32) error) segmentOutcome {
	out := segmentOutcome{abortStep: [2]int64{-1, -1}}
	startIters := [2]int64{h.res.Dev[0].Iterations, h.res.Dev[1].Iterations}
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			d := devs[r]
			// On any error (or an abort), declare this rank dead on both the
			// interconnect and the checkpoint barrier, so the peer fails
			// fast wherever it is waiting instead of deadlocking.
			defer func() {
				if out.runErr[r] != nil {
					d.ep.Abort()
					if h.coord != nil {
						h.coord.MarkDead(r)
					}
				}
			}()
			if handshake != nil {
				if err := handshake(d); err != nil {
					out.runErr[r] = err
					return
				}
			}
			active := actives[r]
			fixed := IsFixedActive(d.app)
			initial := active
			measured := d.opt.Metrics != nil
			for iter := int(from); iter < h.maxIter; iter++ {
				if abortRequested(d.opt.Abort) {
					out.abortStep[r] = int64(iter)
					out.frontier[r] = active
					out.runErr[r] = &RunAbortedError{Superstep: int64(iter)}
					return
				}
				d.step = int64(iter)
				var c machine.Counters
				var pt PhaseTimes
				c.Iterations = 1
				c.BufferResetBytes = d.buf.Reset()
				// Generate (local inserts + remote accumulation).
				var t time.Time
				if measured {
					t = time.Now()
				}
				if err := d.generate(active, &c); err != nil {
					out.runErr[r] = err
					return
				}
				if measured {
					d.wall.generate = time.Since(t).Nanoseconds()
				}
				// Implicit remote message exchange (Fig. 2). It carries this
				// iteration's active count, which doubles as the BSP
				// termination allreduce: when no vertex was active anywhere,
				// nothing was generated and the run is over. (Its wall time —
				// including the lockstep wait for the peer — is measured by
				// comm and copied into d.wall by exchange.)
				remoteActive, err := d.exchange(int64(len(active)), &c, &pt)
				if err != nil {
					out.runErr[r] = err
					return
				}
				if int64(len(active))+remoteActive == 0 && !fixed {
					// The convergence-detection superstep carries only
					// generate + exchange work.
					d.recordIter(&h.res.Dev[r], c, pt)
					d.recordMetrics(d.step, c, pt)
					h.res.Dev[r].Converged = true
					return
				}
				// Process + update locally.
				if measured {
					t = time.Now()
				}
				deliveries, err := d.process(&c)
				if err != nil {
					out.runErr[r] = err
					return
				}
				if measured {
					now := time.Now()
					d.wall.process = now.Sub(t).Nanoseconds()
					t = now
				}
				next, err := d.update(deliveries, &c)
				if err != nil {
					out.runErr[r] = err
					return
				}
				if measured {
					d.wall.update = time.Since(t).Nanoseconds()
				}
				compute := d.phaseTimes(c)
				pt.Generate = compute.Generate
				pt.Process = compute.Process
				pt.Update = compute.Update

				d.recordTrace(h.res.Dev[r].Iterations, c, pt)
				d.recordMetrics(d.step, c, pt)
				d.recordIter(&h.res.Dev[r], c, pt)
				out.iterTimes[r] = append(out.iterTimes[r], pt.Generate+pt.Process+pt.Update)
				if fixed {
					active = initial
				} else {
					active = next
				}
				// Superstep iter is complete; checkpoint at the boundary if
				// due. `active` is exactly this rank's frontier for the next
				// superstep, which is what the snapshot must carry.
				if h.coord != nil {
					if completed := int64(iter) + 1; h.coord.Due(completed) {
						if err := h.coord.Checkpoint(r, completed, active); err != nil {
							out.runErr[r] = err
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	out.iters = [2]int64{
		h.res.Dev[0].Iterations - startIters[0],
		h.res.Dev[1].Iterations - startIters[1],
	}
	return out
}

// windowOutcome is how a rejoin-mode degraded window ended.
type windowOutcome int

const (
	// windowHealed: the fault plan declared the failed rank recovered; the
	// supervisor should rejoin it.
	windowHealed windowOutcome = iota
	// windowFinished: the run ran out (converged or maxIter) still degraded.
	windowFinished
	// windowAborted: Options.Abort stopped the window at a boundary.
	windowAborted
)

// windowResult is a degraded window's outcome: the absolute superstep it
// stopped at and the merged frontier for that superstep.
type windowResult struct {
	outcome   windowOutcome
	step      int64
	frontier  []graph.VertexID
	converged bool
}

// runDegradedWindow drives the survivor superstep-at-a-time from the
// restored checkpoint, checkpointing at the configured cadence, until the
// fault plan declares the failed rank recovered, the run finishes, or an
// abort lands. Degraded supersteps accumulate into res.Recovery.
func (h *heteroF32) runDegradedWindow(sd *deviceF32, failed int, failedStep int64, snap *checkpoint.Snapshot) (windowResult, error) {
	frontier := snap.MergedFrontier()
	step := snap.Superstep
	fixed := IsFixedActive(h.app)
	initial := frontier
	for {
		if abortRequested(h.cfg.abort) {
			// Final checkpoint at the abort boundary: the window is
			// single-party, so the snapshot is always consistent.
			if h.coord != nil {
				f0, f1 := splitActive(frontier, h.assign)
				_ = h.coord.InitialAt(step, f0, f1)
			}
			return windowResult{outcome: windowAborted, step: step, frontier: frontier}, nil
		}
		if len(frontier) == 0 && !fixed {
			return windowResult{outcome: windowFinished, step: step, converged: true}, nil
		}
		if int(step) >= h.maxIter {
			return windowResult{outcome: windowFinished, step: step}, nil
		}
		// Heal check before running superstep `step`: the rank rejoins at
		// the boundary the plan declares it recovered at. The lastRejoin
		// guard keeps a deterministically failing rejoin from looping.
		if step > h.lastRejoin && h.cfg.inj.RecoverAt(failed, failedStep, step) {
			return windowResult{outcome: windowHealed, step: step, frontier: frontier}, nil
		}
		sd.step = step
		next, c, pt, err := sd.runIteration(frontier)
		if err != nil {
			err = fmt.Errorf("core: superstep %d: %w", step, err)
			emitEvent(sd.opt.Metrics, metrics.Event{
				Kind: metrics.EventSuperstepError, Rank: sd.rank,
				Superstep: step, Detail: err.Error(),
			})
			return windowResult{}, err
		}
		sd.recordTrace(h.res.Recovery.Iterations, c, pt)
		sd.recordMetrics(step, c, pt)
		sd.recordIter(&h.res.Recovery, c, pt)
		h.exec += pt.Generate + pt.Process + pt.Update
		h.res.DegradedSupersteps++
		step++
		if fixed {
			frontier = initial
		} else {
			frontier = next
		}
		if h.coord != nil && h.coord.Due(step) {
			f0, f1 := splitActive(frontier, h.assign)
			if err := h.coord.InitialAt(step, f0, f1); err != nil {
				return windowResult{}, err
			}
		}
	}
}

// rejoin restarts the failed rank for re-admission at superstep `step`: it
// captures a fresh checkpoint at the rejoin boundary, replays the restarted
// engine from it (state is partitioned by ownership, so the restored arrays
// carry exactly the supersteps the dead rank missed), opens a new comm
// epoch so packets from before the failure are fenced off, reopens the
// checkpoint barrier, and rebuilds both rank engines. The returned
// handshake runs RejoinHandshake on each rank before the next segment.
func (h *heteroF32) rejoin(step int64, frontier []graph.VertexID, failed int) ([2]*deviceF32, func(*deviceF32) error, error) {
	var devs [2]*deviceF32
	f0, f1 := splitActive(frontier, h.assign)
	if err := h.coord.InitialAt(step, f0, f1); err != nil {
		return devs, nil, fmt.Errorf("rejoin checkpoint at superstep %d: %w", step, err)
	}
	// The replay: the restarted rank loads the rejoin snapshot. The arrays
	// are shared in-process, so this also re-verifies the snapshot decodes.
	snap := h.coord.Latest()
	if err := h.snapper.Restore(snap.State); err != nil {
		return devs, nil, fmt.Errorf("rejoin replay at superstep %d: %w", step, err)
	}
	var gen uint64
	if h.store != nil {
		if gens := h.store.Generations(); len(gens) > 0 {
			gen = gens[0].Gen
		}
	}
	epoch := h.net.NewEpoch()
	h.coord.Reopen()
	for r := 0; r < 2; r++ {
		ep, err := h.net.Endpoint(r)
		if err != nil {
			return devs, nil, err
		}
		devs[r], err = newDeviceF32(h.app, h.g, h.opts[r], r, h.assign, ep)
		if err != nil {
			return devs, nil, fmt.Errorf("rejoin engine restart, rank %d: %w", r, err)
		}
	}
	handshake := func(d *deviceF32) error {
		if err := d.ep.RejoinHandshake(epoch, gen, step); err != nil {
			return err
		}
		d.ep.SetStep(step)
		return nil
	}
	emitEvent(h.cfg.sink, metrics.Event{
		Kind: metrics.EventRejoined, Rank: failed, Superstep: step,
		Detail: fmt.Sprintf("rank %d restarted from generation %d, rejoined at superstep %d (epoch %d)", failed, gen, step, epoch),
	})
	h.res.Healed = true
	h.res.RejoinSuperstep = step
	h.lastRejoin = step
	return devs, handshake, nil
}

// runPermanentDegraded finishes the run single-device from the restored
// checkpoint — the non-rejoin degradation path, unchanged from before
// rejoin existed (one batched runF32Loop continuation).
func (h *heteroF32) runPermanentDegraded(sd *deviceF32, snap *checkpoint.Snapshot, firstErr error) (HeteroResult, error) {
	remaining := h.maxIter - int(snap.Superstep)
	rec, err := runF32Loop(sd, snap.MergedFrontier(), remaining)
	var aerr *RunAbortedError
	if err != nil && !errors.As(err, &aerr) {
		return HeteroResult{}, fmt.Errorf("core: device failure (%v) and degraded continuation failed: %w", firstErr, err)
	}
	h.res.Degraded = true
	h.res.Recovery = rec
	h.res.Iterations = snap.Superstep + rec.Iterations
	h.res.Converged = rec.Converged
	h.res.DegradedSupersteps += rec.Iterations
	h.exec += rec.Phases.Generate + rec.Phases.Process + rec.Phases.Update
	if aerr != nil {
		abs := snap.Superstep + aerr.Superstep
		h.res.Iterations = abs
		h.res.Converged = false
		return h.finalize(), &RunAbortedError{Superstep: abs}
	}
	return h.finalize(), nil
}

// runPermanentDegradedFrom finishes the run single-device from an arbitrary
// mid-window boundary — the fallback when a rejoin attempt fails.
func (h *heteroF32) runPermanentDegradedFrom(sd *deviceF32, step int64, frontier []graph.VertexID, firstErr error) (HeteroResult, error) {
	rec, err := runF32Loop(sd, frontier, h.maxIter-int(step))
	var aerr *RunAbortedError
	if err != nil && !errors.As(err, &aerr) {
		return HeteroResult{}, fmt.Errorf("core: device failure (%v) and degraded continuation failed: %w", firstErr, err)
	}
	h.res.Degraded = true
	h.res.Recovery.Iterations += rec.Iterations
	h.res.Recovery.Converged = rec.Converged
	h.res.Recovery.Counters.Add(rec.Counters)
	h.res.Recovery.Phases.Add(rec.Phases)
	h.res.Recovery.SimSeconds = h.res.Recovery.Phases.Total()
	h.res.Iterations = step + rec.Iterations
	h.res.Converged = rec.Converged
	h.res.DegradedSupersteps += rec.Iterations
	h.exec += rec.Phases.Generate + rec.Phases.Process + rec.Phases.Update
	if aerr != nil {
		abs := step + aerr.Superstep
		h.res.Iterations = abs
		h.res.Converged = false
		return h.finalize(), &RunAbortedError{Superstep: abs}
	}
	return h.finalize(), nil
}

// finalize stamps the run-level times into the accumulated result.
func (h *heteroF32) finalize() HeteroResult {
	h.res.ExecSeconds = h.exec
	// Communication time is identical on both sides (full-duplex model), so
	// take device 0's.
	h.res.CommSeconds = h.res.Dev[0].Phases.Exchange
	h.res.SimSeconds = h.res.ExecSeconds + h.res.CommSeconds
	h.res.WallSeconds = time.Since(h.start).Seconds()
	return h.res
}

// lockstepSeconds sums max(dev0_i, dev1_i) over the first n iterations.
func lockstepSeconds(iterTimes [2][]float64, n int) float64 {
	var total float64
	for i := 0; i < n && i < len(iterTimes[0]); i++ {
		t := iterTimes[0][i]
		if i < len(iterTimes[1]) && iterTimes[1][i] > t {
			t = iterTimes[1][i]
		}
		total += t
	}
	return total
}

// recordIter accumulates one iteration into a device's Result.
func (d *deviceF32) recordIter(r *Result, c machine.Counters, pt PhaseTimes) {
	r.Iterations++
	r.Counters.Add(c)
	r.Phases.Add(pt)
	r.SimSeconds = r.Phases.Total()
}
