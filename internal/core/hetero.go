package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hetgraph/internal/checkpoint"
	"hetgraph/internal/comm"
	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/metrics"
)

// HeteroResult reports a heterogeneous device-group run. Per-iteration the
// ranks run in lockstep (the exchange is the synchronization point), so the
// combined execution time is the sum over iterations of the slowest rank's
// phase time, plus the communication time.
type HeteroResult struct {
	Iterations int64
	Converged  bool
	// Dev holds each rank's own result (its counters and phase times),
	// indexed by rank. In a degraded run these cover only the iterations
	// before the failure; in a healed run a restarted rank's result covers
	// its lockstep supersteps (pre-failure plus post-rejoin).
	Dev []Result
	// ExecSeconds is sum_i max_r(rank r's compute time in superstep i). In a
	// degraded or healed run it covers the lockstep iterations up to each
	// restored checkpoint plus the degraded windows' compute time.
	ExecSeconds float64
	// CommSeconds is the modeled interconnect exchange time (including the
	// per-iteration active-count allreduce).
	CommSeconds float64
	// SimSeconds = ExecSeconds + CommSeconds.
	SimSeconds float64
	// WallSeconds is host wall-clock time.
	WallSeconds float64

	// Degraded is true when at least one rank failed mid-run and the run
	// *ended* on the surviving subset: the survivors restored the last
	// checkpoint and finished without the failed ranks. A run that degraded
	// but healed (see Healed) ends with Degraded=false.
	Degraded bool
	// FailedRank is the rank that failed (-1 when no failure; the lowest
	// rank of the latest failure batch when several failed at once).
	FailedRank int
	// FailedRanks lists the ranks that were still down when the run ended,
	// sorted ascending (nil when the run ended at full membership).
	FailedRanks []int
	// FailedSuperstep is the superstep at which the failure was detected
	// (-1 if it could not be attributed to a specific superstep).
	FailedSuperstep int64
	// ResumedSuperstep is the checkpointed superstep the survivors resumed
	// from; supersteps in (ResumedSuperstep, failure) were recomputed. For
	// a disk-resumed run it is the superstep the cold start restored.
	ResumedSuperstep int64
	// Recovery aggregates the work done while the run was degraded (zero
	// unless a failure occurred): the permanent continuation, or — with
	// Options.Rejoin — the degraded windows between failure and rejoin.
	// With multiple survivors the counters and phases sum over them.
	Recovery Result

	// DiskResumed is true when the run cold-started from an on-disk
	// checkpoint (Options.Resume) instead of App.Init.
	DiskResumed bool
	// ResumedGeneration is the store generation the cold start restored
	// from (zero unless DiskResumed).
	ResumedGeneration uint64

	// Healed is true when the failed ranks were restarted and re-admitted at
	// a superstep barrier (Options.Rejoin), returning the run to full-group
	// lockstep. Healed stays true even if a later failure degraded the run
	// again.
	Healed bool
	// RejoinSuperstep is the superstep barrier the restarted ranks rejoined
	// at (zero unless Healed; the latest rejoin when there were several).
	RejoinSuperstep int64
	// DegradedSupersteps counts the supersteps executed by the surviving
	// subset while the run was degraded — the permanent continuation's
	// supersteps, or the rejoin-mode degraded windows'.
	DegradedSupersteps int64

	// Partitioned is true when the supervisor detected a network partition
	// (every live rank reported severed links and the surviving-link graph
	// split into exactly two sides) and fenced the minority side. The quorum
	// side degrades-and-continues; a heal event lets the fenced ranks rejoin.
	Partitioned bool
	// PartitionSuperstep is the superstep the partition was detected at
	// (zero unless Partitioned).
	PartitionSuperstep int64
	// PartitionMajority and PartitionMinority name the two sides of the
	// latest detected partition, sorted ascending (nil unless Partitioned).
	// The majority is the larger side; a tie breaks toward the side holding
	// the lowest rank, which owns the storage path.
	PartitionMajority []int
	PartitionMinority []int

	// SuspectRanks lists every rank the health scorer ever classified
	// suspect or worse (EWMA superstep latency over
	// Options.StragglerThreshold), sorted ascending; nil when scoring was
	// off or every rank stayed healthy.
	SuspectRanks []int
	// SoftDegraded lists the ranks demoted as confirmed stragglers, sorted
	// ascending: their vertices were reassigned to the healthy owners at a
	// checkpoint barrier, but unlike hard degradation they stayed in the
	// group as non-owning members and their failure was never recorded. A
	// rank that was later rehabilitated stays listed — the list records
	// that the demotion happened.
	SoftDegraded []int
	// SoftDegradeSuperstep is the barrier the latest soft-degrade acted at
	// (zero unless SoftDegraded is non-empty).
	SoftDegradeSuperstep int64
	// Rehabilitated lists the soft-degraded ranks restored to ownership
	// after their latency re-normalized for K consecutive supersteps,
	// sorted ascending (StragglerDemoteRehab only).
	Rehabilitated []int
	// RehabilitateSuperstep is the barrier the latest rehabilitation acted
	// at (zero unless Rehabilitated is non-empty).
	RehabilitateSuperstep int64

	// Links is the per-link traffic observed on the interconnect (message
	// and byte counts, plus wire-level retransmissions), covering every
	// epoch of the run.
	Links []comm.LinkStat
	// Integrity aggregates the wire-integrity counters across all links:
	// checksum-failed packets dropped and repaired by retransmission,
	// duplicate and stale deliveries fenced off by the sequence numbers.
	Integrity comm.IntegrityStats
}

// validAssign checks a rank assignment vector against g.
func validAssign(g *graph.CSR, assign []int32, ranks int) error {
	if len(assign) != g.NumVertices() {
		return fmt.Errorf("core: assignment covers %d vertices, graph has %d", len(assign), g.NumVertices())
	}
	for v, a := range assign {
		if int(a) < 0 || int(a) >= ranks {
			if ranks == 2 {
				return fmt.Errorf("core: vertex %d assigned to device %d (want 0 or 1)", v, a)
			}
			return fmt.Errorf("core: vertex %d assigned to device %d (want 0..%d)", v, a, ranks-1)
		}
	}
	return nil
}

// splitActive partitions the initially active vertices between two ranks.
func splitActive(active []graph.VertexID, assign []int32) (a0, a1 []graph.VertexID) {
	for _, v := range active {
		if assign[v] == 0 {
			a0 = append(a0, v)
		} else {
			a1 = append(a1, v)
		}
	}
	return a0, a1
}

// splitActiveN partitions the active vertices by owner across n ranks,
// preserving order within each rank.
func splitActiveN(active []graph.VertexID, assign []int32, n int) [][]graph.VertexID {
	out := make([][]graph.VertexID, n)
	for _, v := range active {
		r := int(assign[v])
		out[r] = append(out[r], v)
	}
	return out
}

// allRanks returns [0, n).
func allRanks(n int) []int {
	rs := make([]int, n)
	for i := range rs {
		rs[i] = i
	}
	return rs
}

// robustnessConfig is the merged robustness settings of a heterogeneous
// run: the interconnect, the checkpoint schedule, and the durable store are
// all shared between the ranks.
type robustnessConfig struct {
	timeout time.Duration
	inj     *fault.Injector
	every   int
	dir     string
	retain  int
	resume  bool
	rejoin  bool
	abort   <-chan struct{}
	// stragglerThreshold arms the per-rank health scorer; stragglerPolicy
	// decides what the supervisor does with its verdicts (see
	// Options.StragglerPolicy).
	stragglerThreshold time.Duration
	stragglerPolicy    StragglerPolicy
	// sink receives run-level events (checkpoints, failures, degradation,
	// resume); per-rank phase samples go to each option's own sink.
	sink metrics.Sink
}

// resolveFaultConfig merges the robustness settings across the rank options:
// the first non-zero/non-nil value wins (Resume and Rejoin are ORs — any
// rank asking makes the run one).
func resolveFaultConfig(opts ...Options) robustnessConfig {
	var c robustnessConfig
	for _, o := range opts {
		if c.timeout == 0 {
			c.timeout = o.ExchangeTimeout
		}
		if c.inj == nil {
			c.inj = o.Fault
		}
		if c.every == 0 {
			c.every = o.CheckpointEvery
		}
		if c.dir == "" {
			c.dir = o.CheckpointDir
		}
		if c.retain == 0 {
			c.retain = o.CheckpointRetain
		}
		c.resume = c.resume || o.Resume
		c.rejoin = c.rejoin || o.Rejoin
		if c.stragglerThreshold == 0 {
			c.stragglerThreshold = o.StragglerThreshold
		}
		if c.stragglerPolicy == StragglerOff {
			c.stragglerPolicy = o.StragglerPolicy
		}
		if c.abort == nil {
			c.abort = o.Abort
		}
		if c.sink == nil {
			c.sink = o.Metrics
		}
	}
	return c
}

// expandDeviceGroup resolves the rank options of a hetero run: either one
// Options per rank (the classic CPU+MIC pair is the 2-element case), or a
// single Options whose Devices field declares an N-rank device group — every
// rank then inherits the base options with its own device spec.
func expandDeviceGroup(opts []Options) ([]Options, error) {
	for i, o := range opts {
		if len(o.Devices) > 0 && len(opts) != 1 {
			return nil, &InvalidOptionsError{
				Field:  "Devices",
				Reason: fmt.Sprintf("option %d sets Devices in a %d-option call: a device group is declared by a single Options value", i, len(opts)),
			}
		}
	}
	if len(opts) == 1 {
		base := opts[0]
		specs := base.Devices
		if len(specs) < 2 {
			return nil, &InvalidOptionsError{
				Field:  "Devices",
				Reason: "a heterogeneous run needs at least 2 ranks: pass one Options per rank, or a single Options whose Devices lists the group",
			}
		}
		base.Devices = nil
		base.TraceLabel = ""
		out := make([]Options, len(specs))
		for r, spec := range specs {
			o := base
			o.Dev = spec
			out[r] = o
		}
		return out, nil
	}
	if len(opts) < 2 {
		return nil, &InvalidOptionsError{
			Field:  "Devices",
			Reason: "a heterogeneous run needs at least 2 ranks: pass one Options per rank, or a single Options whose Devices lists the group",
		}
	}
	return append([]Options(nil), opts...), nil
}

// resolveTraceLabels gives every rank a distinct trace/metrics device label:
// the device name when unique within the group, name#rank otherwise. A
// user-set TraceLabel always wins.
func resolveTraceLabels(opts []Options) {
	names := map[string]int{}
	for _, o := range opts {
		names[o.Dev.Name]++
	}
	for r := range opts {
		if opts[r].TraceLabel == "" && names[opts[r].Dev.Name] > 1 {
			opts[r].TraceLabel = fmt.Sprintf("%s#%d", opts[r].Dev.Name, r)
		}
	}
}

// RunF32Hetero executes app across a group of N >= 2 modeled devices. assign
// maps each vertex to its owner rank. The classic CPU+MIC pair is the
// 2-option call (rank 0 conventionally the CPU, rank 1 the MIC); arbitrary
// groups pass one Options per rank, or a single Options whose Devices field
// lists the group's specs. Vertex state is partitioned by ownership: each
// rank generates from and updates only its own vertices, so the shared
// state arrays carry no cross-rank races.
//
// With Options.CheckpointEvery > 0 (app must implement
// checkpoint.Snapshotter) the run is fault-tolerant: when ranks fail — by
// injected fault, exchange timeout, or a panic in a user function — failure
// attribution is by quorum over the survivors' verdicts, the surviving
// subset restores the last superstep-boundary checkpoint, absorbs the dead
// ranks' partitions, and finishes the run without them; the result records
// the degradation. Without checkpointing a rank failure is returned as an
// error (typically a *comm.DeviceFailedError) instead of deadlocking.
//
// With Options.Rejoin the run additionally heals: while degraded, the
// supervisor consults the fault plan for the failed ranks' recovery
// (flaky/recover events); on recovery it restarts their engines, replays
// them from a fresh checkpoint at the rejoin boundary, opens a new comm
// epoch (fencing off stale packets from before the failure), and re-admits
// them at a RejoinHandshake barrier, returning the run to full-group
// lockstep.
//
// Options.Abort, when closed, stops the run cooperatively at the next
// superstep boundary: a final checkpoint is captured when possible and the
// partial result is returned with a *RunAbortedError.
func RunF32Hetero(app AppF32, g *graph.CSR, assign []int32, deviceOpts ...Options) (HeteroResult, error) {
	start := time.Now()
	if err := validateRunArgs(app, g); err != nil {
		return HeteroResult{}, err
	}
	opts, err := expandDeviceGroup(deviceOpts)
	if err != nil {
		return HeteroResult{}, err
	}
	n := len(opts)
	if err := validAssign(g, assign, n); err != nil {
		return HeteroResult{}, err
	}
	net, err := comm.NewGroupNet[float32](machine.PCIe(), app.Profile().MsgBytes, n)
	if err != nil {
		return HeteroResult{}, err
	}
	cfg := resolveFaultConfig(opts...)
	if cfg.rejoin && cfg.every == 0 && cfg.dir == "" {
		return HeteroResult{}, &InvalidOptionsError{
			Field:  "Rejoin",
			Reason: "requires CheckpointEvery > 0 or CheckpointDir: rejoin replays the restarted rank from a checkpoint, and a run that never captures one cannot heal",
		}
	}
	if cfg.stragglerPolicy != StragglerOff {
		if cfg.stragglerThreshold == 0 {
			return HeteroResult{}, &InvalidOptionsError{
				Field:  "StragglerPolicy",
				Reason: fmt.Sprintf("%s requires StragglerThreshold > 0: there is no straggler definition to act on", cfg.stragglerPolicy),
			}
		}
		if cfg.every == 0 {
			return HeteroResult{}, &InvalidOptionsError{
				Field:  "StragglerPolicy",
				Reason: fmt.Sprintf("%s requires CheckpointEvery > 0: soft-degrade and rehabilitation act at checkpoint barriers", cfg.stragglerPolicy),
			}
		}
	}
	net.SetTimeout(cfg.timeout)
	net.SetInjector(cfg.inj)
	// The merged robustness settings govern the whole run; propagate them
	// onto every option so the engines (in-phase fault injection, abort
	// checks) and per-option validation see one consistent configuration
	// regardless of which option carried each knob.
	for r := range opts {
		opts[r].Fault = cfg.inj
		opts[r].ExchangeTimeout = cfg.timeout
		opts[r].CheckpointEvery = cfg.every
		opts[r].CheckpointDir = cfg.dir
		opts[r].CheckpointRetain = cfg.retain
		opts[r].Resume = cfg.resume
		opts[r].Rejoin = cfg.rejoin
		opts[r].Abort = cfg.abort
		opts[r].StragglerThreshold = cfg.stragglerThreshold
		opts[r].StragglerPolicy = cfg.stragglerPolicy
	}
	resolveTraceLabels(opts)
	devs := make([]*deviceF32, n)
	for r := 0; r < n; r++ {
		ep, err := net.Endpoint(r)
		if err != nil {
			return HeteroResult{}, err
		}
		devs[r], err = newDeviceF32(app, g, opts[r], r, assign, ep)
		if err != nil {
			return HeteroResult{}, err
		}
	}
	maxIter := devs[0].opt.MaxIterations
	for r := 1; r < n; r++ {
		if devs[r].opt.MaxIterations < maxIter {
			maxIter = devs[r].opt.MaxIterations
		}
	}

	// Checkpointing (in-memory or durable), resume, and rejoin all need the
	// app to snapshot/restore its state.
	var snapper checkpoint.Snapshotter
	if cfg.every > 0 || cfg.dir != "" {
		var ok bool
		if snapper, ok = app.(checkpoint.Snapshotter); !ok {
			field := "CheckpointEvery"
			if cfg.every == 0 {
				field = "CheckpointDir"
			}
			return HeteroResult{}, &InvalidOptionsError{
				Field:  field,
				Reason: fmt.Sprintf("app %T does not implement checkpoint.Snapshotter", app),
			}
		}
	}
	var store *checkpoint.Store
	if cfg.dir != "" {
		store, err = checkpoint.OpenStore(cfg.dir, checkpoint.StoreOptions{
			Retain: cfg.retain,
			Rank:   0, // the host owns the storage path
			Fault:  cfg.inj,
		})
		if err != nil {
			return HeteroResult{}, &InvalidOptionsError{Field: "CheckpointDir", Reason: err.Error()}
		}
	}

	// Init always runs (it sizes the state arrays); a cold-start resume then
	// overwrites the freshly initialized state with the restored snapshot and
	// takes its frontiers from the checkpoint instead of Init's active set.
	active := app.Init(g)
	actives := splitActiveN(active, assign, n)
	var (
		resumeFrom int64
		resumedGen uint64
	)
	if cfg.resume {
		snap, gen, err := store.Load()
		if err != nil {
			return HeteroResult{}, &InvalidOptionsError{Field: "Resume", Reason: err.Error()}
		}
		if err := snapper.Restore(snap.State); err != nil {
			return HeteroResult{}, fmt.Errorf("core: resume from %s gen %d: %w", cfg.dir, gen, err)
		}
		// Re-split the merged frontier by the run's own assignment: the
		// snapshot may have been captured by a differently-sized group (or
		// under a degraded re-partition), and ownership is what the engines
		// assume.
		actives = splitActiveN(snap.MergedFrontier(), assign, n)
		resumeFrom = snap.Superstep
		resumedGen = gen
		emitEvent(cfg.sink, metrics.Event{
			Kind: metrics.EventResume, Rank: -1, Superstep: resumeFrom,
			Detail: fmt.Sprintf("cold start from %s generation %d", cfg.dir, gen),
		})
	}

	var coord *checkpoint.Coordinator
	if cfg.every > 0 {
		coord, err = checkpoint.NewGroupCoordinator(snapper, n, cfg.every, cfg.timeout)
		if err != nil {
			return HeteroResult{}, err
		}
		coord.SetStore(store)
		coord.SetSink(cfg.sink)
		// Superstep-0 snapshot (or the restored superstep's, on resume),
		// taken before the rank loops start: recovery is possible from any
		// point of the run, including a failure in the very first superstep.
		if err := coord.InitialAt(resumeFrom, actives...); err != nil {
			return HeteroResult{}, err
		}
	}

	h := &heteroF32{
		app: app, g: g, assign: assign, net: net, cfg: cfg, opts: opts,
		snapper: snapper, coord: coord, store: store,
		n: n, members: allRanks(n), downStep: map[int]int64{},
		softDown: map[int]int64{}, suspects: map[int]bool{},
		maxIter: maxIter, start: start, lastRejoin: -1,
	}
	if cfg.stragglerThreshold > 0 {
		h.health = newHealthScorer(n, cfg.stragglerThreshold)
	}
	h.res.Dev = make([]Result, n)
	h.res.FailedRank = -1
	h.res.FailedSuperstep = -1
	h.res.DiskResumed = cfg.resume
	h.res.ResumedGeneration = resumedGen
	if cfg.resume {
		h.res.ResumedSuperstep = resumeFrom
	}
	var handshake func(*deviceF32) error
	if cfg.resume {
		handshake = func(d *deviceF32) error {
			// All ranks must have restored the same store generation, and
			// from here on exchange rounds (and the fault plan's step
			// indices) count absolute supersteps.
			if _, err := d.ep.ResumeHandshake(resumedGen); err != nil {
				return err
			}
			d.ep.SetStep(resumeFrom)
			return nil
		}
	}
	return h.run(devs, actives, resumeFrom, handshake)
}

// heteroF32 supervises one heterogeneous run: it drives lockstep segments,
// attributes failures by quorum, degrades to the surviving subset, and
// (with Options.Rejoin) heals the run by restarting the failed ranks and
// re-admitting them at a superstep barrier under a new comm epoch.
type heteroF32 struct {
	app     AppF32
	g       *graph.CSR
	assign  []int32
	net     *comm.Net[float32]
	cfg     robustnessConfig
	opts    []Options
	snapper checkpoint.Snapshotter
	coord   *checkpoint.Coordinator
	store   *checkpoint.Store
	maxIter int
	start   time.Time

	n        int
	members  []int         // live owning ranks, ascending
	downStep map[int]int64 // failure superstep per down rank
	// Gray-failure state: health scores per-rank superstep latency when
	// Options.StragglerThreshold is set (nil otherwise); softDown maps each
	// soft-degraded rank to its demotion superstep — such ranks are alive
	// (never in downStep) but own no vertices; suspects accumulates every
	// rank the scorer ever classified suspect or worse.
	health   *healthScorer
	softDown map[int]int64
	suspects map[int]bool

	res  HeteroResult
	exec float64 // accumulated compute seconds (lockstep maxes + degraded windows)
	// lastRejoin guards rejoin progress: a new rejoin only happens at a
	// strictly later superstep, so a deterministically failing rejoin cannot
	// loop forever (at least one degraded superstep separates attempts,
	// bounded by maxIter).
	lastRejoin int64
	// segRec collects per-rank results of a degraded multi-survivor segment;
	// folded into res.Recovery when the segment ends. recBase is the
	// Recovery iteration count at segment start (trace indexing).
	segRec  []Result
	recBase int64
}

// down returns the currently failed ranks, sorted ascending.
func (h *heteroF32) down() []int {
	var d []int
	for r := range h.downStep {
		d = append(d, r)
	}
	sort.Ints(d)
	return d
}

// softRanks returns the currently soft-degraded ranks, sorted ascending.
func (h *heteroF32) softRanks() []int {
	var d []int
	for r := range h.softDown {
		d = append(d, r)
	}
	sort.Ints(d)
	return d
}

// recomputeMembers rebuilds the owning membership: every rank that is
// neither dead nor soft-degraded, ascending.
func (h *heteroF32) recomputeMembers() {
	h.members = nil
	for r := 0; r < h.n; r++ {
		if _, dead := h.downStep[r]; dead {
			continue
		}
		if _, soft := h.softDown[r]; soft {
			continue
		}
		h.members = append(h.members, r)
	}
}

// ownerAssign returns the effective vertex-ownership vector: h.assign with
// every vertex of a dead or soft-degraded rank reassigned round-robin to the
// current owning members. At full ownership it is h.assign itself.
func (h *heteroF32) ownerAssign() []int32 {
	if len(h.downStep) == 0 && len(h.softDown) == 0 {
		return h.assign
	}
	sub := make([]int32, len(h.assign))
	for v, a := range h.assign {
		_, dead := h.downStep[int(a)]
		_, soft := h.softDown[int(a)]
		if dead || soft {
			sub[v] = int32(h.members[v%len(h.members)])
		} else {
			sub[v] = a
		}
	}
	return sub
}

// nextBarrier returns the first checkpoint-cadence boundary strictly after
// `from` — where the supervisor examines health verdicts under an active
// straggler policy (cfg.every > 0 is validated up front).
func (h *heteroF32) nextBarrier(from int64) int64 {
	every := int64(h.cfg.every)
	return (from/every + 1) * every
}

// observeHealth folds a clean segment's charged per-rank superstep times
// into the health scorer, surfacing state transitions as events and the
// current classification as gauges.
func (h *heteroF32) observeHealth(seg segmentOutcome, from int64) {
	if h.health == nil {
		return
	}
	for _, r := range h.members {
		for i, ns := range seg.healthNS[r] {
			prev, now := h.health.Observe(r, float64(ns)/1e9)
			if now == prev {
				continue
			}
			step := from + int64(i)
			switch now {
			case rankSuspect:
				h.suspects[r] = true
				emitEvent(h.cfg.sink, metrics.Event{
					Kind: metrics.EventRankSuspect, Rank: r, Superstep: step,
					Detail: fmt.Sprintf("rank %d EWMA superstep time %.3fms over threshold %.3fms", r, h.health.EWMA(r)*1e3, h.cfg.stragglerThreshold.Seconds()*1e3),
				})
			case rankStraggler:
				h.suspects[r] = true
				emitEvent(h.cfg.sink, metrics.Event{
					Kind: metrics.EventRankStraggler, Rank: r, Superstep: step,
					Detail: fmt.Sprintf("rank %d confirmed straggler: EWMA %.3fms over threshold for %d consecutive supersteps", r, h.health.EWMA(r)*1e3, stragglerConfirmSupersteps),
				})
			}
		}
	}
	h.recordHealthGauges()
}

// confirmedStragglers returns the owning ranks the scorer has confirmed as
// stragglers and the active policy allows demoting — never the whole
// membership, since someone has to own the vertices.
func (h *heteroF32) confirmedStragglers() []int {
	if h.health == nil || h.cfg.stragglerPolicy == StragglerOff {
		return nil
	}
	var out []int
	for _, r := range h.members {
		if h.health.State(r) == rankStraggler {
			out = append(out, r)
		}
	}
	if len(out) == 0 || len(out) >= len(h.members) {
		return nil
	}
	return out
}

// rehabReady feeds the demoted ranks' heartbeats over the executed window
// [from, endStep) into the scorer — a demoted rank is not running, so its
// heartbeat latency signal is the fault plan's stall for each superstep —
// and reports whether every soft-degraded rank has stayed normal long
// enough to rehabilitate. Partial returns are not attempted: the group
// restores to full membership in one barrier.
func (h *heteroF32) rehabReady(from, endStep int64) bool {
	if h.cfg.stragglerPolicy != StragglerDemoteRehab || len(h.softDown) == 0 {
		return false
	}
	for r := range h.softDown {
		for s := from; s < endStep; s++ {
			h.health.Probe(r, h.cfg.inj.Slow(r, s) == 0)
		}
	}
	for r := range h.softDown {
		if !h.health.Rehabilitatable(r) {
			return false
		}
	}
	return true
}

// recordHealthGauges exports each rank's health classification and EWMA
// superstep latency as live gauges (hetgraph_rank_health_<r>: 0 healthy,
// 1 suspect, 2 straggler; hetgraph_rank_ewma_ns_<r>).
func (h *heteroF32) recordHealthGauges() {
	if h.health == nil {
		return
	}
	gr, ok := h.cfg.sink.(metrics.GaugeRecorder)
	if !ok {
		return
	}
	for r := 0; r < h.n; r++ {
		gr.SetGauge(fmt.Sprintf("rank_health_%d", r), int64(h.health.State(r)))
		gr.SetGauge(fmt.Sprintf("rank_ewma_ns_%d", r), int64(h.health.EWMA(r)*1e9))
	}
}

// softDegrade demotes confirmed stragglers at the superstep barrier `step`:
// their vertices are reassigned round-robin to the healthy owners (the same
// re-partition machinery as hard degradation), but unlike a hard degrade
// the demoted ranks stay in the group as non-owning members — no failure is
// recorded, they keep heartbeating through the fault plan, and (policy
// demote-rehab) they are rehabilitated once their latency re-normalizes.
// The fault injector stays armed: the demoted stretch runs forward from the
// barrier, not a checkpoint replay, so the plan's remaining events must
// still fire.
func (h *heteroF32) softDegrade(stragglers []int, step int64, frontier []graph.VertexID) ([]*deviceF32, func(*deviceF32) error, error) {
	for _, s := range stragglers {
		h.softDown[s] = step
	}
	h.recomputeMembers()
	// Anchor the demotion at a durable barrier: the demoted stretch stays
	// recoverable, and rehabilitation replays from a descendant of this
	// snapshot.
	if err := h.coord.InitialAt(step, splitActiveN(frontier, h.assign, h.n)...); err != nil {
		return nil, nil, fmt.Errorf("soft-degrade checkpoint at superstep %d: %w", step, err)
	}
	sub := h.ownerAssign()
	h.net.NewEpoch()
	h.net.SetMembers(h.members)
	h.coord.Reopen()
	h.coord.SetMembers(h.members)
	devs := make([]*deviceF32, h.n)
	for _, r := range h.members {
		ep, err := h.net.Endpoint(r)
		if err != nil {
			return nil, nil, err
		}
		devs[r], err = newDeviceF32(h.app, h.g, h.opts[r], r, sub, ep)
		if err != nil {
			return nil, nil, fmt.Errorf("soft-degrade engine restart, rank %d: %w", r, err)
		}
	}
	resume := step
	handshake := func(d *deviceF32) error {
		d.ep.SetStep(resume)
		return nil
	}
	for _, s := range stragglers {
		emitEvent(h.cfg.sink, metrics.Event{
			Kind: metrics.EventSoftDegraded, Rank: s, Superstep: step,
			Detail: fmt.Sprintf("rank %d demoted at superstep %d: vertices reassigned to ranks %v, rank stays a non-owning member", s, step, h.members),
		})
		if !containsInt(h.res.SoftDegraded, s) {
			h.res.SoftDegraded = append(h.res.SoftDegraded, s)
		}
	}
	sort.Ints(h.res.SoftDegraded)
	h.res.SoftDegradeSuperstep = step
	h.recordHealthGauges()
	return devs, handshake, nil
}

// containsInt reports whether xs contains x.
func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// run is the supervisor loop: lockstep segments over the live membership,
// separated by quorum failure attribution, degraded continuation on the
// surviving subset, and (in rejoin mode) heals back to full membership.
func (h *heteroF32) run(devs []*deviceF32, actives [][]graph.VertexID, from int64, handshake func(*deviceF32) error) (HeteroResult, error) {
	for {
		// A soft-degraded run (stragglers demoted, membership reduced but no
		// rank dead) is NOT degraded in the hard sense: it keeps recording
		// into the per-rank Dev results and never replays checkpoints.
		degraded := len(h.downStep) > 0
		lead := h.members[0]
		until := h.maxIter
		healable := false
		if degraded {
			if heal, ok := h.healStep(from); ok && heal < int64(h.maxIter) {
				until = int(heal)
				healable = true
			}
			h.segRec = make([]Result, h.n)
			h.recBase = h.res.Recovery.Iterations
		} else if h.cfg.stragglerPolicy != StragglerOff && h.health != nil {
			// Bound the segment at the next checkpoint barrier: demotion and
			// rehabilitation both act at barriers, so health verdicts must be
			// examined there rather than once at the end of the run.
			if b := h.nextBarrier(from); b < int64(until) {
				until = int(b)
			}
		}
		seg := h.runSegment(h.members, devs, actives, from, until, handshake, degraded)
		handshake = nil

		// Cooperative abort: a rank saw Options.Abort closed at a superstep
		// boundary (the peers usually exit with collateral peer-death
		// errors, which the abort takes precedence over).
		if step, ok := segmentAbortStep(seg, h.members); ok {
			if degraded {
				h.foldDegraded(seg, lead)
			} else {
				h.exec += lockstepSeconds(seg.iterTimes, lead, len(seg.iterTimes[lead]))
			}
			// Best-effort final checkpoint: only when every live rank stopped
			// at the same boundary is the shared state a consistent snapshot.
			same := true
			for _, r := range h.members {
				if seg.abortStep[r] != step {
					same = false
				}
			}
			if h.coord != nil && same {
				_ = h.coord.InitialAt(step, seg.frontier...)
			}
			detail := fmt.Sprintf("cooperative abort at superstep boundary %d", step)
			if degraded {
				detail = fmt.Sprintf("cooperative abort during degraded window at superstep %d", step)
				h.res.Degraded = true
			}
			emitEvent(h.cfg.sink, metrics.Event{
				Kind: metrics.EventRunAborted, Rank: -1, Superstep: step,
				Detail: detail,
			})
			h.res.Iterations = step
			return h.finalize(), &RunAbortedError{Superstep: step}
		}

		clean := true
		for _, r := range h.members {
			if seg.runErr[r] != nil {
				clean = false
			}
		}
		if clean {
			if !degraded {
				// Clean segment end: convergence, maxIter, or a
				// straggler-policy checkpoint barrier.
				h.exec += lockstepSeconds(seg.iterTimes, lead, len(seg.iterTimes[lead]))
				endStep := from + seg.iters[lead]
				h.observeHealth(seg, from)
				conv := true
				for _, r := range h.members {
					if !h.res.Dev[r].Converged {
						conv = false
					}
				}
				if conv || int(endStep) >= h.maxIter {
					h.res.Iterations = endStep
					h.res.Converged = conv
					return h.finalize(), nil
				}
				// The segment stopped at a straggler-policy barrier: act on
				// the scorer's verdicts, then continue lockstep.
				var merged []graph.VertexID
				for _, r := range h.members {
					merged = append(merged, seg.frontier[r]...)
				}
				if sl := h.confirmedStragglers(); len(sl) > 0 {
					devs2, hs, err := h.softDegrade(sl, endStep, merged)
					if err != nil {
						var serr *checkpoint.StoreError
						if errors.As(err, &serr) {
							aerr := fmt.Errorf("core: run aborted, durable checkpoint store failed (restart with Options.Resume to recover): %w", err)
							emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: 0, Superstep: -1, Detail: aerr.Error()})
							return HeteroResult{}, aerr
						}
						return HeteroResult{}, fmt.Errorf("core: soft-degrade at superstep %d failed: %w", endStep, err)
					}
					devs = devs2
					actives = splitActiveN(merged, h.ownerAssign(), h.n)
					from = endStep
					handshake = hs
					continue
				}
				if h.rehabReady(from, endStep) {
					devs2, hs, err := h.rehabilitate(endStep, merged)
					if err != nil {
						var serr *checkpoint.StoreError
						if errors.As(err, &serr) {
							aerr := fmt.Errorf("core: run aborted, durable checkpoint store failed (restart with Options.Resume to recover): %w", err)
							emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: 0, Superstep: -1, Detail: aerr.Error()})
							return HeteroResult{}, aerr
						}
						for s := range h.softDown {
							emitEvent(h.cfg.sink, metrics.Event{
								Kind: metrics.EventRejoinFailed, Rank: s, Superstep: endStep,
								Detail: fmt.Sprintf("rehabilitation failed: %v", err),
							})
						}
						// Carry on soft-degraded; the next barrier retries.
						actives = seg.frontier
						from = endStep
						continue
					}
					devs = devs2
					actives = splitActiveN(merged, h.assign, h.n)
					from = endStep
					handshake = hs
					continue
				}
				actives = seg.frontier
				from = endStep
				handshake = nil
				continue
			}
			executed := seg.iters[lead]
			conv := h.foldDegraded(seg, lead)
			endStep := from + executed
			if healable && !conv && endStep == int64(until) {
				// The fault plan declares every down rank recovered at this
				// boundary: heal back to full membership.
				var merged []graph.VertexID
				for _, r := range h.members {
					merged = append(merged, seg.frontier[r]...)
				}
				devs2, hs, err := h.rejoin(endStep, merged)
				if err != nil {
					var serr *checkpoint.StoreError
					if errors.As(err, &serr) {
						aerr := fmt.Errorf("core: run aborted, durable checkpoint store failed (restart with Options.Resume to recover): %w", err)
						emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: 0, Superstep: -1, Detail: aerr.Error()})
						return HeteroResult{}, aerr
					}
					for _, c := range h.down() {
						emitEvent(h.cfg.sink, metrics.Event{
							Kind: metrics.EventRejoinFailed, Rank: c, Superstep: endStep,
							Detail: err.Error(),
						})
					}
					// Carry on degraded; the lastRejoin guard stops an
					// immediate identical retry.
					h.lastRejoin = endStep
					actives = seg.frontier
					from = endStep
					continue
				}
				devs = devs2
				actives = splitActiveN(merged, h.assign, h.n)
				from = endStep
				handshake = hs
				continue
			}
			h.res.Degraded = true
			h.res.Iterations = endStep
			h.res.Converged = conv
			return h.finalize(), nil
		}

		// A failed durable commit is not a device failure: the storage path
		// is shared, so degrading would keep hitting the same broken disk.
		// Treat it like a process crash — abort the whole run; the previously
		// committed generations are intact and a restart with Options.Resume
		// picks the run back up.
		for _, r := range h.members {
			var serr *checkpoint.StoreError
			if errors.As(seg.runErr[r], &serr) {
				err := fmt.Errorf("core: run aborted, durable checkpoint store failed (restart with Options.Resume to recover): %w", seg.runErr[r])
				emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: r, Superstep: -1, Detail: err.Error()})
				return HeteroResult{}, err
			}
		}

		// Attribute the failure by quorum over the live ranks' verdicts: a
		// *comm.DeviceFailedError carries an explicit accusation (a rank that
		// suffered an injected fault blames itself; a rank whose peer
		// vanished blames the peer); a checkpoint barrier broken by peer
		// death cannot name the peer in a group, so it abstains (with two
		// live ranks the peer is unambiguous); anything else — a recovered
		// panic in a user function, a scheduler error — is a self-conviction.
		// A self-conviction always convicts; an external accusation convicts
		// on a majority of the cast votes.
		//
		// Split-brain comes first: when every live rank reports severed links
		// and the topology forms exactly two islands, no rank failed — the
		// interconnect did. The quorum side fences the minority and continues
		// degraded; the minority is convicted wholesale with a typed
		// PartitionedError naming both sides.
		var (
			convicted []int
			firstErr  error
		)
		partStep := int64(-1)
		if maj, minr, pstep, ok := severedPartition(h.members, seg.runErr); ok {
			convicted = minr
			partStep = pstep
			firstErr = &comm.PartitionedError{Superstep: pstep, Majority: maj, Minority: minr}
			h.res.Partitioned = true
			h.res.PartitionSuperstep = pstep
			h.res.PartitionMajority = append([]int(nil), maj...)
			h.res.PartitionMinority = append([]int(nil), minr...)
			emitEvent(h.cfg.sink, metrics.Event{
				Kind: metrics.EventPartitioned, Rank: -1, Superstep: pstep,
				Detail: firstErr.Error(),
			})
		} else {
			convicted, firstErr = h.quorumBlame(seg)
		}
		if len(convicted) == 0 || len(convicted) == len(h.members) {
			var err error
			if h.n == 2 && !degraded {
				err = fmt.Errorf("core: both devices failed, cannot degrade: rank 0: %v; rank 1: %v", seg.runErr[0], seg.runErr[1])
			} else {
				msg := "core: cannot attribute failure, aborting:"
				for _, r := range h.members {
					if seg.runErr[r] != nil {
						msg += fmt.Sprintf(" rank %d: %v;", r, seg.runErr[r])
					}
				}
				err = errors.New(msg[:len(msg)-1])
			}
			emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: -1, Superstep: -1, Detail: err.Error()})
			return HeteroResult{}, err
		}
		stepOf := func(c int) int64 {
			if partStep >= 0 {
				return partStep
			}
			for _, r := range h.members {
				var dfe *comm.DeviceFailedError
				if errors.As(seg.runErr[r], &dfe) && dfe.Rank == c {
					return dfe.Superstep
				}
			}
			return -1
		}
		// A fenced minority did not fail — the partition event above covers
		// it; only genuine device convictions get a device-failed event.
		if partStep < 0 {
			for _, c := range convicted {
				emitEvent(h.cfg.sink, metrics.Event{
					Kind: metrics.EventDeviceFailed, Rank: c, Superstep: stepOf(c),
					Detail: firstErr.Error(),
				})
			}
		}
		if h.coord == nil {
			return HeteroResult{}, firstErr
		}
		snap, err := h.coord.Restore()
		if err != nil {
			return HeteroResult{}, fmt.Errorf("core: device failure (%v) and recovery failed: %w", firstErr, err)
		}
		// Simulated time: lockstep maxes up to the restored checkpoint (work
		// past it was recomputed and is not double-counted; iterTimes index
		// supersteps relative to the segment's start).
		h.exec += lockstepSeconds(seg.iterTimes, lead, int(snap.Superstep-from))

		for _, c := range convicted {
			h.downStep[c] = stepOf(c)
		}
		downs := h.down()
		h.recomputeMembers()
		h.res.FailedRank = convicted[0]
		h.res.FailedSuperstep = stepOf(convicted[0])
		h.res.ResumedSuperstep = snap.Superstep
		h.res.FailedRanks = append([]int(nil), downs...)

		if len(h.members) == 1 {
			// A single survivor runs without the interconnect: a fresh
			// single-device engine with no assignment, no endpoint, and no
			// fault injection (the plan described the group run; re-firing
			// its events against the survivor would kill recovery).
			survivor := h.members[0]
			ropt := h.opts[survivor]
			ropt.Fault = nil
			sd, err := newDeviceF32(h.app, h.g, ropt, 0, nil, nil)
			if err != nil {
				return HeteroResult{}, fmt.Errorf("core: device failure (%v) and recovery engine failed: %w", firstErr, err)
			}
			emitEvent(h.cfg.sink, metrics.Event{
				Kind: metrics.EventDegraded, Rank: h.res.FailedRank, Superstep: snap.Superstep,
				Detail: fmt.Sprintf("rank %d survives; restored checkpointed superstep %d, continuing single-device", survivor, snap.Superstep),
			})

			if !h.cfg.rejoin || len(downs) != 1 {
				return h.runPermanentDegraded(sd, snap, firstErr)
			}

			// Rejoin mode: run the survivor superstep-at-a-time, polling the
			// fault plan for the failed rank's recovery.
			failed := downs[0]
			w, err := h.runDegradedWindow(sd, failed, h.downStep[failed], snap)
			if err != nil {
				var serr *checkpoint.StoreError
				if errors.As(err, &serr) {
					aerr := fmt.Errorf("core: run aborted, durable checkpoint store failed (restart with Options.Resume to recover): %w", err)
					emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: 0, Superstep: -1, Detail: aerr.Error()})
					return HeteroResult{}, aerr
				}
				return HeteroResult{}, fmt.Errorf("core: device failure (%v) and degraded continuation failed: %w", firstErr, err)
			}
			switch w.outcome {
			case windowAborted:
				emitEvent(h.cfg.sink, metrics.Event{
					Kind: metrics.EventRunAborted, Rank: -1, Superstep: w.step,
					Detail: fmt.Sprintf("cooperative abort during degraded window at superstep %d", w.step),
				})
				h.res.Degraded = true
				h.res.Iterations = w.step
				return h.finalize(), &RunAbortedError{Superstep: w.step}
			case windowFinished:
				h.res.Degraded = true
				h.res.Iterations = w.step
				h.res.Converged = w.converged
				return h.finalize(), nil
			}

			// windowHealed: restart the failed rank, replay it from a fresh
			// checkpoint at the rejoin boundary, and re-enter lockstep.
			devs2, hs, err := h.rejoin(w.step, w.frontier)
			if err != nil {
				var serr *checkpoint.StoreError
				if errors.As(err, &serr) {
					aerr := fmt.Errorf("core: run aborted, durable checkpoint store failed (restart with Options.Resume to recover): %w", err)
					emitEvent(h.cfg.sink, metrics.Event{Kind: metrics.EventRunAborted, Rank: 0, Superstep: -1, Detail: aerr.Error()})
					return HeteroResult{}, aerr
				}
				emitEvent(h.cfg.sink, metrics.Event{
					Kind: metrics.EventRejoinFailed, Rank: failed, Superstep: w.step,
					Detail: err.Error(),
				})
				return h.runPermanentDegradedFrom(sd, w.step, w.frontier, firstErr)
			}
			devs = devs2
			actives = splitActiveN(w.frontier, h.assign, h.n)
			from = w.step
			handshake = hs
			continue
		}

		// Two or more survivors: re-partition the dead (and soft-degraded)
		// ranks' vertices across the survivors and continue lockstep among
		// them. The injector is suspended while degraded — the surviving
		// subset replays checkpointed supersteps, and re-firing the plan's
		// events against it would kill recovery; it is re-armed on heal.
		subAssign := h.ownerAssign()
		h.net.NewEpoch()
		h.net.SetMembers(h.members)
		h.net.SetInjector(nil)
		h.coord.Reopen()
		h.coord.SetMembers(h.members)
		sdevs := make([]*deviceF32, h.n)
		for _, r := range h.members {
			ropt := h.opts[r]
			ropt.Fault = nil
			ep, err := h.net.Endpoint(r)
			if err != nil {
				return HeteroResult{}, err
			}
			sdevs[r], err = newDeviceF32(h.app, h.g, ropt, r, subAssign, ep)
			if err != nil {
				return HeteroResult{}, fmt.Errorf("core: device failure (%v) and recovery engine failed: %w", firstErr, err)
			}
		}
		emitEvent(h.cfg.sink, metrics.Event{
			Kind: metrics.EventDegraded, Rank: h.res.FailedRank, Superstep: snap.Superstep,
			Detail: fmt.Sprintf("ranks %v survive; restored checkpointed superstep %d, continuing %d-device", h.members, snap.Superstep, len(h.members)),
		})
		devs = sdevs
		actives = splitActiveN(snap.MergedFrontier(), subAssign, h.n)
		from = snap.Superstep
		resumeStep := from
		handshake = func(d *deviceF32) error {
			d.ep.SetStep(resumeStep)
			return nil
		}
	}
}

// severedPartition inspects the live ranks' errors for a clean network
// partition: every rank must have failed with a *comm.LinkSeveredError, and
// the surviving-link graph those verdicts describe must have exactly two
// connected components. majority is the larger side (a tie breaks toward the
// side holding the lowest live rank — rank 0 owns the storage path); step is
// the earliest superstep a severed link was reported at. ok is false when
// the errors describe anything else (a partial link failure, a mix of link
// and device faults, more than two islands), which falls back to per-rank
// quorum attribution.
func severedPartition(members []int, runErr []error) (majority, minority []int, step int64, ok bool) {
	step = -1
	severed := map[int]map[int]bool{}
	for _, r := range members {
		var lse *comm.LinkSeveredError
		if !errors.As(runErr[r], &lse) {
			return nil, nil, 0, false
		}
		cut := map[int]bool{}
		for _, p := range lse.Peers {
			cut[p] = true
		}
		severed[r] = cut
		if step < 0 || lse.Superstep < step {
			step = lse.Superstep
		}
	}
	// Connected components of the surviving-link graph over the live ranks
	// (a link survives only if neither endpoint reported it cut).
	comp := map[int]bool{}
	var comps [][]int
	for _, r := range members {
		if comp[r] {
			continue
		}
		comp[r] = true
		queue := []int{r}
		var c []int
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			c = append(c, v)
			for _, w := range members {
				if comp[w] || severed[v][w] || severed[w][v] {
					continue
				}
				comp[w] = true
				queue = append(queue, w)
			}
		}
		sort.Ints(c)
		comps = append(comps, c)
	}
	if len(comps) != 2 {
		return nil, nil, 0, false
	}
	// comps[0] holds the lowest live rank, so on a tie it stays the majority.
	majority, minority = comps[0], comps[1]
	if len(minority) > len(majority) {
		majority, minority = minority, majority
	}
	return majority, minority, step, true
}

// quorumBlame resolves which live ranks the segment's errors convict. It
// returns the convicted ranks (sorted) and the first error observed.
func (h *heteroF32) quorumBlame(seg segmentOutcome) ([]int, error) {
	votes := map[int]int{}
	self := map[int]bool{}
	voters := 0
	var firstErr error
	live := map[int]bool{}
	for _, r := range h.members {
		live[r] = true
	}
	for _, r := range h.members {
		err := seg.runErr[r]
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		var dfe *comm.DeviceFailedError
		var lse *comm.LinkSeveredError
		switch {
		case errors.As(err, &dfe):
			voters++
			if dfe.Rank == r {
				self[r] = true
			} else if live[dfe.Rank] {
				votes[dfe.Rank]++
			}
		case errors.As(err, &lse):
			// A severed-link verdict names the peers this rank lost, not a
			// culprit. When the topology is not a clean two-sided partition
			// (severedPartition already handled that), count each lost live
			// peer as accused — an asymmetric link failure then resolves
			// like a peer death.
			voters++
			for _, p := range lse.Peers {
				if live[p] && p != r {
					votes[p]++
				}
			}
		case errors.Is(err, checkpoint.ErrPeerDead):
			// The barrier broke because a peer died, but the coordinator
			// cannot name it; with exactly two live ranks the peer is
			// unambiguous, otherwise abstain.
			if len(h.members) == 2 {
				voters++
				peer := h.members[0] + h.members[1] - r
				votes[peer]++
			}
		default:
			voters++
			self[r] = true
		}
	}
	majority := voters/2 + 1
	var convicted []int
	for _, r := range h.members {
		if self[r] || votes[r] >= majority {
			convicted = append(convicted, r)
		}
	}
	return convicted, firstErr
}

// healStep computes the earliest superstep boundary at which every down rank
// is declared recovered by the fault plan (the max of the per-rank recovery
// steps). ok is false when any down rank never recovers.
func (h *heteroF32) healStep(from int64) (int64, bool) {
	if !h.cfg.rejoin || len(h.downStep) == 0 {
		return 0, false
	}
	heal := int64(-1)
	for c, failedStep := range h.downStep {
		s := h.cfg.inj.RecoverStep(c, failedStep)
		if s < 0 {
			return 0, false
		}
		if s > heal {
			heal = s
		}
	}
	if heal <= h.lastRejoin {
		heal = h.lastRejoin + 1
	}
	if heal < from {
		heal = from
	}
	return heal, true
}

// foldDegraded accumulates a degraded multi-survivor segment's per-rank
// scratch results into res.Recovery, advances the degraded counters, and
// reports whether the segment converged.
func (h *heteroF32) foldDegraded(seg segmentOutcome, lead int) bool {
	executed := seg.iters[lead]
	conv := false
	for _, r := range h.members {
		h.res.Recovery.Counters.Add(h.segRec[r].Counters)
		h.res.Recovery.Phases.Add(h.segRec[r].Phases)
		if h.segRec[r].Converged {
			conv = true
		}
	}
	h.res.Recovery.Iterations += executed
	h.res.Recovery.SimSeconds = h.res.Recovery.Phases.Total()
	if conv {
		h.res.Recovery.Converged = true
	}
	h.res.DegradedSupersteps += executed
	h.exec += lockstepSeconds(seg.iterTimes, lead, int(executed))
	return conv
}

// segmentOutcome is one lockstep segment's result, indexed by rank:
// per-rank errors, per-iteration compute times (indexed relative to the
// segment's start), supersteps recorded, the frontier each rank ended at,
// and — when Options.Abort stopped a rank — the abort boundary.
type segmentOutcome struct {
	runErr    []error
	iterTimes [][]float64
	iters     []int64
	frontier  [][]graph.VertexID
	abortStep []int64
	// healthNS holds each rank's charged per-superstep time (injected stall
	// plus modeled compute — the same quantity charged into iterTimes, and
	// deliberately not the host wall clock, so health verdicts are
	// deterministic and immune to runner noise), index-aligned with
	// iterTimes; collected only when the health scorer is armed. Each rank
	// goroutine appends only to its own slice.
	healthNS [][]int64
}

// segmentAbortStep reports the boundary a cooperative abort stopped the
// segment at (the earliest live rank's, when several recorded one).
func segmentAbortStep(seg segmentOutcome, members []int) (int64, bool) {
	step, ok := int64(-1), false
	for _, r := range members {
		var aerr *RunAbortedError
		if errors.As(seg.runErr[r], &aerr) {
			if !ok || aerr.Superstep < step {
				step = aerr.Superstep
			}
			ok = true
		}
	}
	return step, ok
}

// runSegment runs the member rank loops in lockstep from superstep `from`
// until convergence, the `until` boundary, an abort, or a failure.
// handshake, when non-nil, runs on each rank before its loop (resume or
// rejoin barrier agreement). degraded selects the record target: the
// per-rank Dev results at full membership, the Recovery scratch otherwise.
func (h *heteroF32) runSegment(members []int, devs []*deviceF32, actives [][]graph.VertexID, from int64, until int, handshake func(*deviceF32) error, degraded bool) segmentOutcome {
	out := segmentOutcome{
		runErr:    make([]error, h.n),
		iterTimes: make([][]float64, h.n),
		iters:     make([]int64, h.n),
		frontier:  make([][]graph.VertexID, h.n),
		abortStep: make([]int64, h.n),
		healthNS:  make([][]int64, h.n),
	}
	for r := range out.abortStep {
		out.abortStep[r] = -1
	}
	rec := func(r int) *Result {
		if degraded {
			return &h.segRec[r]
		}
		return &h.res.Dev[r]
	}
	traceBase := int64(0)
	if degraded {
		traceBase = h.recBase
	}
	startIters := make([]int64, h.n)
	for _, r := range members {
		startIters[r] = rec(r).Iterations
	}
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			d := devs[r]
			// On any error (or an abort), declare this rank dead on both the
			// interconnect and the checkpoint barrier, so the peers fail
			// fast wherever they are waiting instead of deadlocking.
			defer func() {
				if out.runErr[r] != nil {
					d.ep.Abort()
					if h.coord != nil {
						h.coord.MarkDead(r)
					}
				}
			}()
			if handshake != nil {
				if err := handshake(d); err != nil {
					out.runErr[r] = err
					return
				}
			}
			active := actives[r]
			fixed := IsFixedActive(d.app)
			initial := active
			measured := d.opt.Metrics != nil
			scored := h.health != nil && !degraded
			for iter := int(from); iter < until; iter++ {
				if abortRequested(d.opt.Abort) {
					out.abortStep[r] = int64(iter)
					out.frontier[r] = active
					out.runErr[r] = &RunAbortedError{Superstep: int64(iter)}
					return
				}
				// Gray-fault injection: a slow/gslow event stalls this rank
				// before its local compute. The stall is charged into the
				// rank's superstep time below, so lockstep makes the whole
				// group wait — exactly the signal the health scorer feeds on
				// — while its own exchange deadline only starts afterwards, so
				// a stall under the timeout is never misdiagnosed as death.
				// Like the rest of the plan, suspended during checkpoint
				// replay (degraded segments).
				var stallSec float64
				if !degraded {
					if stall := h.cfg.inj.Slow(r, int64(iter)); stall > 0 {
						time.Sleep(stall)
						stallSec = stall.Seconds()
					}
				}
				d.step = int64(iter)
				var c machine.Counters
				var pt PhaseTimes
				c.Iterations = 1
				c.BufferResetBytes = d.buf.Reset()
				// Generate (local inserts + remote accumulation).
				var t time.Time
				if measured {
					t = time.Now()
				}
				if err := d.generate(active, &c); err != nil {
					out.runErr[r] = err
					return
				}
				if measured {
					d.wall.generate = time.Since(t).Nanoseconds()
				}
				// Implicit remote message exchange (Fig. 2). It carries this
				// iteration's active count, which doubles as the BSP
				// termination allreduce: when no vertex was active anywhere,
				// nothing was generated and the run is over. (Its wall time —
				// including the lockstep wait for the peers — is measured by
				// comm and copied into d.wall by exchange.)
				remoteActive, err := d.exchange(int64(len(active)), &c, &pt)
				if err != nil {
					out.runErr[r] = err
					return
				}
				if int64(len(active))+remoteActive == 0 && !fixed {
					// The convergence-detection superstep carries only
					// generate + exchange work.
					d.recordIter(rec(r), c, pt)
					d.recordMetrics(d.step, c, pt)
					rec(r).Converged = true
					out.frontier[r] = active
					return
				}
				// Process + update locally.
				if measured {
					t = time.Now()
				}
				deliveries, err := d.process(&c)
				if err != nil {
					out.runErr[r] = err
					return
				}
				if measured {
					now := time.Now()
					d.wall.process = now.Sub(t).Nanoseconds()
					t = now
				}
				next, err := d.update(deliveries, &c)
				if err != nil {
					out.runErr[r] = err
					return
				}
				if measured {
					d.wall.update = time.Since(t).Nanoseconds()
				}
				compute := d.phaseTimes(c)
				pt.Generate = compute.Generate
				pt.Process = compute.Process
				pt.Update = compute.Update

				d.recordTrace(traceBase+rec(r).Iterations, c, pt)
				d.recordMetrics(d.step, c, pt)
				d.recordIter(rec(r), c, pt)
				// An injected stall is real superstep time on this rank: it
				// flows into the lockstep max, so mitigation (demoting the
				// straggler) shows up as a simulated-time win. Float32 results
				// are untouched — the stall never enters the reductions.
				charged := stallSec + pt.Generate + pt.Process + pt.Update
				out.iterTimes[r] = append(out.iterTimes[r], charged)
				// The health sample is this same charged time, not a host
				// wall measurement: modeled compute is a deterministic
				// function of the work counts, so identical runs reach
				// identical verdicts at identical supersteps — and a loaded
				// runner (or the race detector) can never fake a straggler.
				// The lockstep exchange wait is excluded either way: it
				// reflects the slowest peer, and folding it in would smear
				// one rank's slowness onto every healthy rank's score.
				if scored {
					out.healthNS[r] = append(out.healthNS[r], int64(charged*1e9))
				}
				if fixed {
					active = initial
				} else {
					active = next
				}
				// Superstep iter is complete; checkpoint at the boundary if
				// due. `active` is exactly this rank's frontier for the next
				// superstep, which is what the snapshot must carry.
				if h.coord != nil {
					if completed := int64(iter) + 1; h.coord.Due(completed) {
						if err := h.coord.Checkpoint(r, completed, active); err != nil {
							out.runErr[r] = err
							return
						}
					}
				}
			}
			out.frontier[r] = active
		}(m)
	}
	wg.Wait()
	for _, r := range members {
		out.iters[r] = rec(r).Iterations - startIters[r]
	}
	return out
}

// windowOutcome is how a rejoin-mode degraded window ended.
type windowOutcome int

const (
	// windowHealed: the fault plan declared the failed rank recovered; the
	// supervisor should rejoin it.
	windowHealed windowOutcome = iota
	// windowFinished: the run ran out (converged or maxIter) still degraded.
	windowFinished
	// windowAborted: Options.Abort stopped the window at a boundary.
	windowAborted
)

// windowResult is a degraded window's outcome: the absolute superstep it
// stopped at and the merged frontier for that superstep.
type windowResult struct {
	outcome   windowOutcome
	step      int64
	frontier  []graph.VertexID
	converged bool
}

// runDegradedWindow drives the lone survivor superstep-at-a-time from the
// restored checkpoint, checkpointing at the configured cadence, until the
// fault plan declares the failed rank recovered, the run finishes, or an
// abort lands. Degraded supersteps accumulate into res.Recovery.
func (h *heteroF32) runDegradedWindow(sd *deviceF32, failed int, failedStep int64, snap *checkpoint.Snapshot) (windowResult, error) {
	frontier := snap.MergedFrontier()
	step := snap.Superstep
	fixed := IsFixedActive(h.app)
	initial := frontier
	for {
		if abortRequested(h.cfg.abort) {
			// Final checkpoint at the abort boundary: the window is
			// single-party, so the snapshot is always consistent.
			if h.coord != nil {
				_ = h.coord.InitialAt(step, splitActiveN(frontier, h.assign, h.n)...)
			}
			return windowResult{outcome: windowAborted, step: step, frontier: frontier}, nil
		}
		if len(frontier) == 0 && !fixed {
			return windowResult{outcome: windowFinished, step: step, converged: true}, nil
		}
		if int(step) >= h.maxIter {
			return windowResult{outcome: windowFinished, step: step}, nil
		}
		// Heal check before running superstep `step`: the rank rejoins at
		// the boundary the plan declares it recovered at. The lastRejoin
		// guard keeps a deterministically failing rejoin from looping.
		if step > h.lastRejoin && h.cfg.inj.RecoverAt(failed, failedStep, step) {
			return windowResult{outcome: windowHealed, step: step, frontier: frontier}, nil
		}
		sd.step = step
		next, c, pt, err := sd.runIteration(frontier)
		if err != nil {
			err = fmt.Errorf("core: superstep %d: %w", step, err)
			emitEvent(sd.opt.Metrics, metrics.Event{
				Kind: metrics.EventSuperstepError, Rank: sd.rank,
				Superstep: step, Detail: err.Error(),
			})
			return windowResult{}, err
		}
		sd.recordTrace(h.res.Recovery.Iterations, c, pt)
		sd.recordMetrics(step, c, pt)
		sd.recordIter(&h.res.Recovery, c, pt)
		h.exec += pt.Generate + pt.Process + pt.Update
		h.res.DegradedSupersteps++
		step++
		if fixed {
			frontier = initial
		} else {
			frontier = next
		}
		if h.coord != nil && h.coord.Due(step) {
			if err := h.coord.InitialAt(step, splitActiveN(frontier, h.assign, h.n)...); err != nil {
				return windowResult{}, err
			}
		}
	}
}

// restoreFullMembership re-admits every rank at superstep `step`: it
// captures a fresh checkpoint at the boundary, replays the restarted
// engines from it (state is partitioned by ownership, so the restored arrays
// carry exactly the supersteps the returning ranks missed), opens a new comm
// epoch so packets from before the membership change are fenced off,
// restores full membership on the interconnect and the checkpoint barrier,
// re-arms the fault injector, and rebuilds every rank engine against the
// original assignment. The returned handshake runs RejoinHandshake on each
// rank before the next segment. Shared by rejoin (dead ranks healing) and
// rehabilitate (soft-degraded stragglers returning).
func (h *heteroF32) restoreFullMembership(step int64, frontier []graph.VertexID) (devs []*deviceF32, handshake func(*deviceF32) error, gen uint64, epoch uint64, err error) {
	devs = make([]*deviceF32, h.n)
	if err := h.coord.InitialAt(step, splitActiveN(frontier, h.assign, h.n)...); err != nil {
		return devs, nil, 0, 0, fmt.Errorf("rejoin checkpoint at superstep %d: %w", step, err)
	}
	// The replay: the restarted ranks load the boundary snapshot. The arrays
	// are shared in-process, so this also re-verifies the snapshot decodes.
	snap := h.coord.Latest()
	if err := h.snapper.Restore(snap.State); err != nil {
		return devs, nil, 0, 0, fmt.Errorf("rejoin replay at superstep %d: %w", step, err)
	}
	if h.store != nil {
		if gens := h.store.Generations(); len(gens) > 0 {
			gen = gens[0].Gen
		}
	}
	epoch = h.net.NewEpoch()
	h.net.SetMembers(allRanks(h.n))
	h.net.SetInjector(h.cfg.inj)
	h.coord.Reopen()
	h.coord.SetMembers(allRanks(h.n))
	for r := 0; r < h.n; r++ {
		ep, err := h.net.Endpoint(r)
		if err != nil {
			return devs, nil, 0, 0, err
		}
		devs[r], err = newDeviceF32(h.app, h.g, h.opts[r], r, h.assign, ep)
		if err != nil {
			return devs, nil, 0, 0, fmt.Errorf("rejoin engine restart, rank %d: %w", r, err)
		}
	}
	handshake = func(d *deviceF32) error {
		if err := d.ep.RejoinHandshake(epoch, gen, step); err != nil {
			return err
		}
		d.ep.SetStep(step)
		return nil
	}
	return devs, handshake, gen, epoch, nil
}

// rejoin restarts the down ranks for re-admission at superstep `step`,
// returning the run to full-group lockstep.
func (h *heteroF32) rejoin(step int64, frontier []graph.VertexID) ([]*deviceF32, func(*deviceF32) error, error) {
	devs, handshake, gen, epoch, err := h.restoreFullMembership(step, frontier)
	if err != nil {
		return devs, nil, err
	}
	for _, c := range h.down() {
		emitEvent(h.cfg.sink, metrics.Event{
			Kind: metrics.EventRejoined, Rank: c, Superstep: step,
			Detail: fmt.Sprintf("rank %d restarted from generation %d, rejoined at superstep %d (epoch %d)", c, gen, step, epoch),
		})
	}
	h.res.Healed = true
	h.res.RejoinSuperstep = step
	h.res.FailedRanks = nil
	h.lastRejoin = step
	h.downStep = map[int]int64{}
	// A heal restores the whole group, soft-demotions included: re-admitting
	// a still-on-probation rank here keeps the membership invariant (owners
	// + down + soft-degraded = all ranks) simple, and the scorer will simply
	// re-demote it if it is still slow.
	for s := range h.softDown {
		delete(h.softDown, s)
		if h.health != nil {
			h.health.Reset(s)
		}
	}
	h.recomputeMembers()
	return devs, handshake, nil
}

// rehabilitate restores the soft-degraded ranks to ownership at superstep
// `step` after their latency re-normalized: the same replay machinery as
// rejoin, but the outcome is recorded as a rehabilitation — the ranks never
// failed, so Healed and FailedRanks stay untouched.
func (h *heteroF32) rehabilitate(step int64, frontier []graph.VertexID) ([]*deviceF32, func(*deviceF32) error, error) {
	ranks := h.softRanks()
	devs, handshake, gen, epoch, err := h.restoreFullMembership(step, frontier)
	if err != nil {
		return devs, nil, err
	}
	for _, s := range ranks {
		emitEvent(h.cfg.sink, metrics.Event{
			Kind: metrics.EventRehabilitated, Rank: s, Superstep: step,
			Detail: fmt.Sprintf("rank %d latency re-normalized for %d supersteps; restored from generation %d at superstep %d (epoch %d)", s, rehabilitateSupersteps, gen, step, epoch),
		})
		if !containsInt(h.res.Rehabilitated, s) {
			h.res.Rehabilitated = append(h.res.Rehabilitated, s)
		}
		h.health.Reset(s)
	}
	sort.Ints(h.res.Rehabilitated)
	h.res.RehabilitateSuperstep = step
	h.lastRejoin = step
	h.softDown = map[int]int64{}
	h.recomputeMembers()
	h.recordHealthGauges()
	return devs, handshake, nil
}

// runPermanentDegraded finishes the run single-device from the restored
// checkpoint — the non-rejoin degradation path, unchanged from before
// rejoin existed (one batched runF32Loop continuation).
func (h *heteroF32) runPermanentDegraded(sd *deviceF32, snap *checkpoint.Snapshot, firstErr error) (HeteroResult, error) {
	remaining := h.maxIter - int(snap.Superstep)
	rec, err := runF32Loop(sd, snap.MergedFrontier(), remaining)
	var aerr *RunAbortedError
	if err != nil && !errors.As(err, &aerr) {
		return HeteroResult{}, fmt.Errorf("core: device failure (%v) and degraded continuation failed: %w", firstErr, err)
	}
	h.res.Degraded = true
	h.res.Recovery = rec
	h.res.Iterations = snap.Superstep + rec.Iterations
	h.res.Converged = rec.Converged
	h.res.DegradedSupersteps += rec.Iterations
	h.exec += rec.Phases.Generate + rec.Phases.Process + rec.Phases.Update
	if aerr != nil {
		abs := snap.Superstep + aerr.Superstep
		h.res.Iterations = abs
		h.res.Converged = false
		return h.finalize(), &RunAbortedError{Superstep: abs}
	}
	return h.finalize(), nil
}

// runPermanentDegradedFrom finishes the run single-device from an arbitrary
// mid-window boundary — the fallback when a rejoin attempt fails.
func (h *heteroF32) runPermanentDegradedFrom(sd *deviceF32, step int64, frontier []graph.VertexID, firstErr error) (HeteroResult, error) {
	rec, err := runF32Loop(sd, frontier, h.maxIter-int(step))
	var aerr *RunAbortedError
	if err != nil && !errors.As(err, &aerr) {
		return HeteroResult{}, fmt.Errorf("core: device failure (%v) and degraded continuation failed: %w", firstErr, err)
	}
	h.res.Degraded = true
	h.res.Recovery.Iterations += rec.Iterations
	h.res.Recovery.Converged = rec.Converged
	h.res.Recovery.Counters.Add(rec.Counters)
	h.res.Recovery.Phases.Add(rec.Phases)
	h.res.Recovery.SimSeconds = h.res.Recovery.Phases.Total()
	h.res.Iterations = step + rec.Iterations
	h.res.Converged = rec.Converged
	h.res.DegradedSupersteps += rec.Iterations
	h.exec += rec.Phases.Generate + rec.Phases.Process + rec.Phases.Update
	if aerr != nil {
		abs := step + aerr.Superstep
		h.res.Iterations = abs
		h.res.Converged = false
		return h.finalize(), &RunAbortedError{Superstep: abs}
	}
	return h.finalize(), nil
}

// recordLinks pushes the interconnect's per-link traffic and integrity
// totals into the sink if it opts in via metrics.LinkRecorder; the base
// two-method Sink contract is untouched.
func recordLinks(sink metrics.Sink, links []comm.LinkStat, integ comm.IntegrityStats) {
	lr, ok := sink.(metrics.LinkRecorder)
	if !ok {
		return
	}
	la := make([]metrics.LinkActivity, len(links))
	for i, l := range links {
		la[i] = metrics.LinkActivity{
			From: l.From, To: l.To,
			Msgs: l.Msgs, Bytes: l.Bytes, Retransmits: l.Retransmits,
		}
	}
	lr.RecordLinks(la, metrics.IntegritySnapshot{
		CorruptDrops: integ.CorruptDrops,
		DupDrops:     integ.DupDrops,
		StaleDrops:   integ.StaleDrops,
		Retransmits:  integ.Retransmits,
	})
}

// finalize stamps the run-level times and the interconnect's link/integrity
// record into the accumulated result.
func (h *heteroF32) finalize() HeteroResult {
	for r := range h.suspects {
		h.res.SuspectRanks = append(h.res.SuspectRanks, r)
	}
	sort.Ints(h.res.SuspectRanks)
	h.res.Links = h.net.LinkStats()
	h.res.Integrity = h.net.Integrity()
	recordLinks(h.cfg.sink, h.res.Links, h.res.Integrity)
	h.res.ExecSeconds = h.exec
	// Communication time is identical on every side (full-duplex model), so
	// take rank 0's.
	h.res.CommSeconds = h.res.Dev[0].Phases.Exchange
	h.res.SimSeconds = h.res.ExecSeconds + h.res.CommSeconds
	h.res.WallSeconds = time.Since(h.start).Seconds()
	return h.res
}

// lockstepSeconds sums, over the first n iterations, the slowest rank's
// compute time. lead bounds the iteration count (the reference rank, rank 0
// at full membership).
func lockstepSeconds(iterTimes [][]float64, lead, n int) float64 {
	var total float64
	for i := 0; i < n && i < len(iterTimes[lead]); i++ {
		t := iterTimes[lead][i]
		for _, times := range iterTimes {
			if i < len(times) && times[i] > t {
				t = times[i]
			}
		}
		total += t
	}
	return total
}

// recordIter accumulates one iteration into a rank's Result.
func (d *deviceF32) recordIter(r *Result, c machine.Counters, pt PhaseTimes) {
	r.Iterations++
	r.Counters.Add(c)
	r.Phases.Add(pt)
	r.SimSeconds = r.Phases.Total()
}
