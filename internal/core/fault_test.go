package core_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/comm"
	"hetgraph/internal/core"
	"hetgraph/internal/fault"
	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/partition"
	"hetgraph/internal/seqref"
)

// chaosGraph is a small weighted power-law graph for fault-injection runs
// (smaller than testGraph so the many chaos scenarios stay fast).
func chaosGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 700, MeanDeg: 7, Alpha: 2.2, FrontBias: 0.7, Locality: 0.6, LocalWindow: 0.05, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	wg, err := gen.WithWeights(g, 0, 10, 22)
	if err != nil {
		t.Fatal(err)
	}
	return wg
}

func chaosAssign(t testing.TB, g *graph.CSR) []int32 {
	t.Helper()
	assign, err := partition.Make(partition.MethodRoundRobin, g, partition.Ratio{A: 1, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	return assign
}

func chaosOpts(iters, ckEvery int, plan string, t testing.TB) (core.Options, core.Options) {
	t.Helper()
	var inj *fault.Injector
	if plan != "" {
		p, err := fault.Parse(plan)
		if err != nil {
			t.Fatal(err)
		}
		inj, err = fault.NewInjector(p)
		if err != nil {
			t.Fatal(err)
		}
	}
	opt0 := core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true,
		MaxIterations: iters, CheckpointEvery: ckEvery, Fault: inj}
	opt1 := core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
		MaxIterations: iters}
	return opt0, opt1
}

// TestHeteroPageRankDegradesAfterDrop is the acceptance property: a rank-1
// exchange failure injected at superstep k must finish single-device with a
// PageRank result matching the never-failed single-device run within
// tolerance, for several k and checkpoint intervals — including k=0, where
// only the superstep-0 initial snapshot exists.
func TestHeteroPageRankDegradesAfterDrop(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 8
	want := seqref.ClassicPageRank(g, 0.85, iters)

	for _, ckEvery := range []int{1, 2} {
		for _, k := range []int64{0, 1, 3, 5} {
			t.Run(fmt.Sprintf("every=%d/drop@%d", ckEvery, k), func(t *testing.T) {
				app := apps.NewPageRank()
				opt0, opt1 := chaosOpts(iters, ckEvery, fmt.Sprintf("rank1:drop@%d", k), t)
				res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Degraded {
					t.Fatal("run did not degrade despite injected drop")
				}
				if res.FailedRank != 1 {
					t.Fatalf("FailedRank = %d, want 1", res.FailedRank)
				}
				if res.FailedSuperstep != k {
					t.Errorf("FailedSuperstep = %d, want %d", res.FailedSuperstep, k)
				}
				// The restored checkpoint is the last boundary at or before
				// the failure.
				wantResume := (k / int64(ckEvery)) * int64(ckEvery)
				if res.ResumedSuperstep != wantResume {
					t.Errorf("ResumedSuperstep = %d, want %d", res.ResumedSuperstep, wantResume)
				}
				if res.Iterations != iters {
					t.Fatalf("Iterations = %d, want %d (resumed %d + recovery %d)",
						res.Iterations, iters, res.ResumedSuperstep, res.Recovery.Iterations)
				}
				for v := range want {
					diff := math.Abs(float64(app.Ranks[v] - want[v]))
					if diff > 2e-3*math.Max(1, float64(want[v])) {
						t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
					}
				}
			})
		}
	}
}

// TestHeteroSSSPDegradesAfterDrop checks the non-fixed-frontier path: SSSP's
// active set shrinks and moves, so the checkpointed frontiers must be
// restored and merged exactly for the continuation to reach the Dijkstra
// fixed point.
func TestHeteroSSSPDegradesAfterDrop(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	want := seqref.ClassicSSSP(g, 0)

	for _, k := range []int64{1, 2} {
		t.Run(fmt.Sprintf("drop@%d", k), func(t *testing.T) {
			app := apps.NewSSSP(0)
			opt0, opt1 := chaosOpts(core.DefaultMaxIterations, 1, fmt.Sprintf("rank1:drop@%d", k), t)
			res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Degraded || res.FailedRank != 1 {
				t.Fatalf("Degraded=%v FailedRank=%d, want degraded rank 1", res.Degraded, res.FailedRank)
			}
			if !res.Converged {
				t.Fatal("degraded SSSP did not converge")
			}
			// Min-reductions are order-insensitive: the result is exact.
			for v := range want {
				if app.Dist[v] != want[v] {
					t.Fatalf("dist[%d] = %v, want %v", v, app.Dist[v], want[v])
				}
			}
		})
	}
}

// TestHeteroPanicDegrades injects panics into each compute phase of either
// rank; the run must recover the panic, identify the panicking rank, and
// degrade to a correct single-device finish.
func TestHeteroPanicDegrades(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 6
	want := seqref.ClassicPageRank(g, 0.85, iters)

	for _, tc := range []struct {
		plan string
		rank int
	}{
		{"rank0:panic@1:generate", 0},
		{"rank1:panic@2:process", 1},
		{"rank1:panic@3:update", 1},
	} {
		t.Run(tc.plan, func(t *testing.T) {
			app := apps.NewPageRank()
			opt0, opt1 := chaosOpts(iters, 1, tc.plan, t)
			res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Degraded {
				t.Fatal("run did not degrade despite injected panic")
			}
			if res.FailedRank != tc.rank {
				t.Fatalf("FailedRank = %d, want %d", res.FailedRank, tc.rank)
			}
			if res.Iterations != iters {
				t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
			}
			for v := range want {
				diff := math.Abs(float64(app.Ranks[v] - want[v]))
				if diff > 2e-3*math.Max(1, float64(want[v])) {
					t.Fatalf("rank[%d] = %v, want %v", v, app.Ranks[v], want[v])
				}
			}
		})
	}
}

// TestHeteroDropWithoutCheckpointReturnsError: with no checkpointing the
// failure must surface as a typed error promptly — not a deadlock.
func TestHeteroDropWithoutCheckpointReturnsError(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	app := apps.NewPageRank()
	opt0, opt1 := chaosOpts(6, 0, "rank1:drop@1", t)
	_, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	var dfe *comm.DeviceFailedError
	if !errors.As(err, &dfe) {
		t.Fatalf("got %v, want *comm.DeviceFailedError", err)
	}
	if dfe.Rank != 1 {
		t.Fatalf("blamed rank %d, want 1", dfe.Rank)
	}
}

// TestHeteroTransientLinkFaultRetried: a short fault burst is retried away
// and the run completes normally, un-degraded.
func TestHeteroTransientLinkFaultRetried(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 5
	want := seqref.ClassicPageRank(g, 0.85, iters)
	app := apps.NewPageRank()
	opt0, opt1 := chaosOpts(iters, 1, "rank1:fail@1x3", t)
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("transient fault degraded the run")
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 2e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v", v, app.Ranks[v], want[v])
		}
	}
}

// TestGenericHeteroFaultReturnsError: structured-message apps have no
// checkpoint recovery; an injected failure must surface as an error from
// both the erroring rank and the peer, without deadlock.
func TestGenericHeteroFaultReturnsError(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 400, Communities: 4, IntraDeg: 3, InterFrac: 0.03, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	assign := chaosAssign(t, g)
	plan, err := fault.Parse("rank1:drop@1")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	app := apps.NewLabelPropagation()
	_, err = core.RunGenericHetero[apps.LPAMsg](app, g, assign,
		core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, MaxIterations: 6, Fault: inj},
		core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, MaxIterations: 6})
	var dfe *comm.DeviceFailedError
	if !errors.As(err, &dfe) {
		t.Fatalf("got %v, want *comm.DeviceFailedError", err)
	}
	if dfe.Rank != 1 {
		t.Fatalf("blamed rank %d, want 1", dfe.Rank)
	}
}

// TestSingleDeviceInjectedPanicSurfaced: the injector's panic events fire in
// single-device runs too and are recovered into errors for every phase.
func TestSingleDeviceInjectedPanicSurfaced(t *testing.T) {
	g := chaosGraph(t)
	for _, plan := range []string{
		"rank0:panic@1:generate",
		"rank0:panic@1:process",
		"rank0:panic@1:update",
	} {
		t.Run(plan, func(t *testing.T) {
			p, err := fault.Parse(plan)
			if err != nil {
				t.Fatal(err)
			}
			inj, err := fault.NewInjector(p)
			if err != nil {
				t.Fatal(err)
			}
			app := apps.NewPageRank()
			_, err = core.RunF32(app, g, core.Options{
				Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true,
				MaxIterations: 3, Fault: inj,
			})
			if err == nil {
				t.Fatal("injected panic not surfaced as error")
			}
		})
	}
}

// TestOptionsValidationTyped: bad configuration and nil arguments are
// rejected with *core.InvalidOptionsError before any work starts.
func TestOptionsValidationTyped(t *testing.T) {
	g := graph.PaperExample()
	base := core.Options{Dev: machine.CPU()}

	cases := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"NegativeGenBatchSize", func(o *core.Options) { o.GenBatchSize = -4 }},
		{"NegativeK", func(o *core.Options) { o.K = -1 }},
		{"NegativeMaxIterations", func(o *core.Options) { o.MaxIterations = -1 }},
		{"NegativeCheckpointEvery", func(o *core.Options) { o.CheckpointEvery = -2 }},
		{"NegativeExchangeTimeout", func(o *core.Options) { o.ExchangeTimeout = -1 }},
		{"NegativeThreads", func(o *core.Options) { o.Threads = -8 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := base
			tc.mutate(&opt)
			_, err := core.RunF32(apps.NewBFS(0), g, opt)
			var ioe *core.InvalidOptionsError
			if !errors.As(err, &ioe) {
				t.Fatalf("got %v, want *core.InvalidOptionsError", err)
			}
		})
	}

	var ioe *core.InvalidOptionsError
	if _, err := core.RunF32(nil, g, base); !errors.As(err, &ioe) {
		t.Errorf("nil app: got %v, want *core.InvalidOptionsError", err)
	}
	if _, err := core.RunF32(apps.NewBFS(0), nil, base); !errors.As(err, &ioe) {
		t.Errorf("nil graph: got %v, want *core.InvalidOptionsError", err)
	}
	if _, err := core.RunGeneric[apps.LPAMsg](nil, g, base); !errors.As(err, &ioe) {
		t.Errorf("nil generic app: got %v, want *core.InvalidOptionsError", err)
	}

	// Checkpointing demands a Snapshotter: an app without one is rejected
	// up front rather than failing at the first boundary.
	g2 := chaosGraph(t)
	assign := chaosAssign(t, g2)
	opt0, opt1 := chaosOpts(4, 1, "", t)
	app := apps.NewTopoSort() // no Snapshot/Restore
	if _, err := core.RunF32Hetero(app, g2, assign, opt0, opt1); !errors.As(err, &ioe) {
		t.Errorf("non-Snapshotter app with CheckpointEvery: got %v, want *core.InvalidOptionsError", err)
	}
}

// TestHeteroCheckpointCleanRunUnchanged: checkpointing a healthy run must
// not perturb the result.
func TestHeteroCheckpointCleanRunUnchanged(t *testing.T) {
	g := chaosGraph(t)
	assign := chaosAssign(t, g)
	const iters = 5
	want := seqref.ClassicPageRank(g, 0.85, iters)
	app := apps.NewPageRank()
	opt0, opt1 := chaosOpts(iters, 2, "", t)
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.FailedRank != -1 {
		t.Fatalf("clean run reported failure: %+v", res)
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 1e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v", v, app.Ranks[v], want[v])
		}
	}
}
