package core_test

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"hetgraph/internal/apps"
	"hetgraph/internal/checkpoint"
	"hetgraph/internal/comm"
	"hetgraph/internal/core"
	"hetgraph/internal/fault"
	"hetgraph/internal/seqref"
)

// TestChaosSweepRandomFaults is the randomized robustness sweep: ~50 seeded
// random fault plans mixing every event kind the grammar knows — drops,
// panics, flaky ranks, delays, transient link failures, wire corruption,
// duplicates, reorders, partitions with heals, store faults — over 3- and
// 4-rank groups. The contract for every plan: the run either completes with
// a result matching the fault-free oracle, or fails with a typed error
// (*comm.DeviceFailedError, *comm.PartitionedError, *checkpoint.StoreError);
// it never hangs (each run is bounded by a deadline guard) and never
// returns an anonymous failure.
func TestChaosSweepRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is long; skipped in -short mode")
	}
	g := chaosGraph(t)
	const iters = 10
	want := seqref.ClassicPageRank(g, 0.85, iters)

	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		ranks := 3 + int(seed%2)
		t.Run(fmt.Sprintf("seed=%d/ranks=%d", seed, ranks), func(t *testing.T) {
			t.Parallel()
			plan := fault.RandomGroup(seed, iters-2, 6, ranks)
			if err := plan.Validate(); err != nil {
				t.Fatalf("RandomGroup produced an invalid plan %q: %v", plan, err)
			}
			inj, err := fault.NewInjector(plan)
			if err != nil {
				t.Fatal(err)
			}
			assign := nrankAssign(t, g, ranks)
			app := apps.NewPageRank()
			opts := nrankOpts(t, ranks, iters, 1, "")
			opts[0].Fault = inj
			opts[0].Rejoin = true
			opts[0].ExchangeTimeout = 2 * time.Second

			type outcome struct {
				res core.HeteroResult
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := core.RunF32Hetero(app, g, assign, opts...)
				done <- outcome{res, err}
			}()
			var o outcome
			select {
			case o = <-done:
			case <-time.After(60 * time.Second):
				t.Fatalf("plan %q hung: no outcome within the deadline", plan)
			}

			if o.err != nil {
				var dfe *comm.DeviceFailedError
				var perr *comm.PartitionedError
				var serr *checkpoint.StoreError
				switch {
				case errors.As(o.err, &dfe), errors.As(o.err, &perr), errors.As(o.err, &serr):
					t.Logf("plan %q failed with typed error: %v", plan, o.err)
				default:
					t.Fatalf("plan %q returned an untyped error: %v", plan, o.err)
				}
				return
			}
			if o.res.Iterations != iters {
				t.Fatalf("plan %q: Iterations = %d, want %d", plan, o.res.Iterations, iters)
			}
			for v := range want {
				diff := math.Abs(float64(app.Ranks[v] - want[v]))
				if diff > 2e-3*math.Max(1, float64(want[v])) {
					t.Fatalf("plan %q: rank[%d] = %v, oracle says %v (diff %v; Degraded=%v Healed=%v Partitioned=%v)",
						plan, v, app.Ranks[v], want[v], diff, o.res.Degraded, o.res.Healed, o.res.Partitioned)
				}
			}
		})
	}
}
