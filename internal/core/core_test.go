package core_test

import (
	"math"
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/core"
	"hetgraph/internal/csb"
	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/partition"
	"hetgraph/internal/seqref"
	"hetgraph/internal/trace"
	"hetgraph/internal/vec"
)

// testGraph is a mid-size weighted power-law graph shared by the tests.
func testGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 3000, MeanDeg: 8, Alpha: 2.2, FrontBias: 0.7, Locality: 0.6, LocalWindow: 0.02, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	wg, err := gen.WithWeights(g, 0, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	return wg
}

// allConfigs enumerates the engine configurations correctness must hold
// under.
func allConfigs() []core.Options {
	var out []core.Options
	for _, dev := range []machine.DeviceSpec{machine.CPU(), machine.MIC()} {
		for _, scheme := range []core.Scheme{core.SchemeLocking, core.SchemePipelined} {
			for _, vecOn := range []bool{true, false} {
				for _, mode := range []csb.InsertMode{csb.Dynamic, csb.OneToOne} {
					out = append(out, core.Options{Dev: dev, Scheme: scheme, Vectorized: vecOn, CSBMode: mode})
				}
			}
		}
	}
	return out
}

func TestOptionsValidation(t *testing.T) {
	g := graph.PaperExample()
	app := apps.NewBFS(0)
	if _, err := core.RunF32(app, g, core.Options{Dev: machine.CPU(), Scheme: core.Scheme(9)}); err == nil {
		t.Error("accepted unknown scheme")
	}
	bad := machine.CPU()
	bad.Cores = 0
	if _, err := core.RunF32(app, g, core.Options{Dev: bad}); err == nil {
		t.Error("accepted invalid device")
	}
	if _, err := core.RunF32(app, g, core.Options{Dev: machine.CPU(), MaxIterations: -1}); err == nil {
		t.Error("accepted negative MaxIterations")
	}
	if core.SchemeLocking.String() != "lock" || core.SchemePipelined.String() != "pipe" || core.Scheme(9).String() == "" {
		t.Error("scheme names wrong")
	}
}

func TestSSSPAllConfigsMatchDijkstra(t *testing.T) {
	g := testGraph(t)
	want := seqref.ClassicSSSP(g, 0)
	for _, opt := range allConfigs() {
		app := apps.NewSSSP(0)
		res, err := core.RunF32(app, g, opt)
		if err != nil {
			t.Fatalf("%s/%v: %v", opt.Dev.Name, opt.Scheme, err)
		}
		if !res.Converged {
			t.Errorf("%s/%v: did not converge", opt.Dev.Name, opt.Scheme)
		}
		for v := range want {
			if app.Dist[v] != want[v] {
				t.Fatalf("%s/%v/vec=%v/mode=%v: dist[%d] = %v, want %v",
					opt.Dev.Name, opt.Scheme, opt.Vectorized, opt.CSBMode, v, app.Dist[v], want[v])
			}
		}
	}
}

func TestBFSMatchesClassic(t *testing.T) {
	g := testGraph(t)
	want := seqref.ClassicBFS(g, 0)
	for _, opt := range allConfigs()[:4] { // CPU configs suffice; full matrix covered by SSSP
		app := apps.NewBFS(0)
		if _, err := core.RunF32(app, g, opt); err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if app.Levels[v] != want[v] {
				t.Fatalf("level[%d] = %d, want %d", v, app.Levels[v], want[v])
			}
		}
	}
}

func TestPageRankMatchesClassic(t *testing.T) {
	g := testGraph(t)
	const iters = 10
	want := seqref.ClassicPageRank(g, 0.85, iters)
	app := apps.NewPageRank()
	res, err := core.RunF32(app, g, core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true, MaxIterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != iters {
		t.Fatalf("iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 1e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("rank[%d] = %v, want %v (diff %v)", v, app.Ranks[v], want[v], diff)
		}
	}
}

func TestTopoSortProducesValidOrder(t *testing.T) {
	g, err := gen.RandomDAG(gen.DAGConfig{N: 800, M: 40000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []core.Scheme{core.SchemeLocking, core.SchemePipelined} {
		app := apps.NewTopoSort()
		res, err := core.RunF32(app, g, core.Options{Dev: machine.MIC(), Scheme: scheme, Vectorized: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("toposort did not converge")
		}
		if !app.Ordered() {
			t.Fatal("some vertices unordered")
		}
		if !seqref.ValidTopoOrder(g, app.Order) {
			t.Fatalf("%v: invalid topological order", scheme)
		}
	}
}

func TestSeqRefMatchesEngineSSSP(t *testing.T) {
	// The sequential BSP driver and the parallel engine must agree exactly.
	g := testGraph(t)
	seqApp := apps.NewSSSP(0)
	iters, c, err := seqref.RunF32Seq(seqApp, g, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 || c.Messages == 0 {
		t.Fatal("sequential run did nothing")
	}
	parApp := apps.NewSSSP(0)
	res, err := core.RunF32(parApp, g, core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != iters {
		t.Errorf("iterations differ: engine %d, seq %d", res.Iterations, iters)
	}
	for v := range parApp.Dist {
		if parApp.Dist[v] != seqApp.Dist[v] {
			t.Fatalf("dist[%d]: engine %v, seq %v", v, parApp.Dist[v], seqApp.Dist[v])
		}
	}
	// Message counts must agree too: same algorithm, same schedule.
	if res.Counters.Messages != c.Messages {
		t.Errorf("messages: engine %d, seq %d", res.Counters.Messages, c.Messages)
	}
}

func TestHeteroMatchesSingleDevice(t *testing.T) {
	g := testGraph(t)
	assign, err := partition.Make(partition.MethodHybrid, g, partition.Ratio{A: 1, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := seqref.ClassicSSSP(g, 0)
	app := apps.NewSSSP(0)
	optCPU := core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true}
	optMIC := core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true}
	res, err := core.RunF32Hetero(app, g, assign, optCPU, optMIC)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("hetero SSSP did not converge")
	}
	for v := range want {
		if app.Dist[v] != want[v] {
			t.Fatalf("hetero dist[%d] = %v, want %v", v, app.Dist[v], want[v])
		}
	}
	if res.Dev[0].Counters.RemoteMessages == 0 || res.Dev[1].Counters.RemoteMessages == 0 {
		t.Error("no remote messages despite cross edges")
	}
	if res.CommSeconds <= 0 || res.ExecSeconds <= 0 {
		t.Error("missing time components")
	}
	if res.SimSeconds != res.ExecSeconds+res.CommSeconds {
		t.Error("SimSeconds != Exec + Comm")
	}
}

func TestHeteroPageRankMatchesClassic(t *testing.T) {
	g := testGraph(t)
	assign, err := partition.Make(partition.MethodRoundRobin, g, partition.Ratio{A: 3, B: 5})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 6
	want := seqref.ClassicPageRank(g, 0.85, iters)
	app := apps.NewPageRank()
	opt0 := core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true, MaxIterations: iters}
	opt1 := core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true, MaxIterations: iters}
	res, err := core.RunF32Hetero(app, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != iters {
		t.Fatalf("iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		diff := math.Abs(float64(app.Ranks[v] - want[v]))
		if diff > 1e-3*math.Max(1, float64(want[v])) {
			t.Fatalf("hetero rank[%d] = %v, want %v", v, app.Ranks[v], want[v])
		}
	}
}

func TestHeteroValidatesAssignment(t *testing.T) {
	g := testGraph(t)
	app := apps.NewSSSP(0)
	opt := core.Options{Dev: machine.CPU()}
	if _, err := core.RunF32Hetero(app, g, make([]int32, 3), opt, opt); err == nil {
		t.Error("accepted short assignment")
	}
	bad := make([]int32, g.NumVertices())
	bad[5] = 7
	if _, err := core.RunF32Hetero(app, g, bad, opt, opt); err == nil {
		t.Error("accepted rank 7")
	}
}

func TestSemiClusteringEngineMatchesSeq(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 600, Communities: 6, IntraDeg: 3, InterFrac: 0.05, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	const maxIters = 5
	seqApp := apps.NewSemiClustering(3, 4, 0.2)
	if _, _, err := seqref.RunGenericSeq[apps.SCMsg](seqApp, g, maxIters); err != nil {
		t.Fatal(err)
	}

	for _, scheme := range []core.Scheme{core.SchemeLocking, core.SchemePipelined} {
		parApp := apps.NewSemiClustering(3, 4, 0.2)
		_, err := core.RunGeneric[apps.SCMsg](parApp, g, core.Options{Dev: machine.MIC(), Scheme: scheme, MaxIterations: maxIters})
		if err != nil {
			t.Fatal(err)
		}
		for v := range seqApp.Clusters {
			a, b := seqApp.Clusters[v], parApp.Clusters[v]
			if len(a) != len(b) {
				t.Fatalf("%v: vertex %d cluster count %d vs %d", scheme, v, len(b), len(a))
			}
			for i := range a {
				if a[i].Score != b[i].Score {
					t.Fatalf("%v: vertex %d cluster %d score %v vs %v", scheme, v, i, b[i].Score, a[i].Score)
				}
			}
		}
	}
}

func TestSemiClusteringHetero(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 400, Communities: 4, IntraDeg: 3, InterFrac: 0.05, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	const maxIters = 4
	seqApp := apps.NewSemiClustering(3, 4, 0.2)
	if _, _, err := seqref.RunGenericSeq[apps.SCMsg](seqApp, g, maxIters); err != nil {
		t.Fatal(err)
	}

	assign, err := partition.Make(partition.MethodRoundRobin, g, partition.Ratio{A: 2, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	hetApp := apps.NewSemiClustering(3, 4, 0.2)
	opt0 := core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, MaxIterations: maxIters}
	opt1 := core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, MaxIterations: maxIters}
	res, err := core.RunGenericHetero[apps.SCMsg](hetApp, g, assign, opt0, opt1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
	for v := range seqApp.Clusters {
		a, b := seqApp.Clusters[v], hetApp.Clusters[v]
		if len(a) != len(b) {
			t.Fatalf("vertex %d cluster count %d vs %d", v, len(b), len(a))
		}
		for i := range a {
			if a[i].Score != b[i].Score {
				t.Fatalf("vertex %d cluster %d score %v vs %v", v, i, b[i].Score, a[i].Score)
			}
		}
	}
}

func TestCountersPopulated(t *testing.T) {
	g := testGraph(t)
	app := apps.NewPageRank()
	const iters = 3
	res, err := core.RunF32(app, g, core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true, MaxIterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.Iterations != iters {
		t.Errorf("Iterations = %d", c.Iterations)
	}
	// Every iteration sends one message per edge.
	if want := int64(iters) * g.NumEdges(); c.Messages != want {
		t.Errorf("Messages = %d, want %d", c.Messages, want)
	}
	if c.QueueOps != 2*c.Messages {
		t.Errorf("QueueOps = %d, want %d", c.QueueOps, 2*c.Messages)
	}
	if c.VecRows == 0 || c.ReducedMessages != c.Messages {
		t.Errorf("reduction counters: rows=%d reduced=%d", c.VecRows, c.ReducedMessages)
	}
	if c.TaskFetches == 0 || c.Steps != 3*iters {
		t.Errorf("fetches=%d steps=%d", c.TaskFetches, c.Steps)
	}
	if res.Phases.Generate <= 0 || res.Phases.Process <= 0 || res.Phases.Update <= 0 {
		t.Errorf("phases not populated: %+v", res.Phases)
	}
	if res.SimSeconds != res.Phases.Total() {
		t.Error("SimSeconds mismatch")
	}
	// Locking run populates contention stats on a skewed graph.
	res2, err := core.RunF32(apps.NewPageRank(), g, core.Options{Dev: machine.MIC(), Scheme: core.SchemeLocking, Vectorized: true, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counters.ConflictExpected <= 0 {
		t.Error("locking run recorded no expected conflicts")
	}
}

func TestBatchedGenerationCountersAndResults(t *testing.T) {
	g := testGraph(t)
	const iters = 3
	run := func(batch int) (*apps.PageRank, core.Result) {
		app := apps.NewPageRank()
		res, err := core.RunF32(app, g, core.Options{
			Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
			MaxIterations: iters, GenBatchSize: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return app, res
	}
	perApp, perRes := run(1)
	batApp, batRes := run(core.DefaultGenBatch)
	// Same results: the handoff granularity must not change what the
	// application computes (up to float summation order inside a column).
	for v := range perApp.Ranks {
		diff := math.Abs(float64(perApp.Ranks[v] - batApp.Ranks[v]))
		if diff > 1e-4*math.Max(1, float64(perApp.Ranks[v])) {
			t.Fatalf("rank[%d]: per-element %v, batched %v", v, perApp.Ranks[v], batApp.Ranks[v])
		}
	}
	pc, bc := perRes.Counters, batRes.Counters
	if pc.Messages != bc.Messages {
		t.Fatalf("message counts differ: %d vs %d", pc.Messages, bc.Messages)
	}
	// Disjoint accounting: per-element runs report QueueOps (exactly two
	// per message), batched runs report only QueueBatchOps.
	if pc.QueueOps != 2*pc.Messages || pc.QueueBatchOps != 0 {
		t.Errorf("per-element counters: QueueOps=%d QueueBatchOps=%d Messages=%d", pc.QueueOps, pc.QueueBatchOps, pc.Messages)
	}
	if bc.QueueOps != 0 || bc.QueueBatchOps < 1 || bc.QueueBatchOps >= 2*bc.Messages {
		t.Errorf("batched counters: QueueOps=%d QueueBatchOps=%d Messages=%d", bc.QueueOps, bc.QueueBatchOps, bc.Messages)
	}
	// The cost model prices the amortized handoff cheaper.
	if batRes.Phases.Generate >= perRes.Phases.Generate {
		t.Errorf("batched generate %v not below per-element %v", batRes.Phases.Generate, perRes.Phases.Generate)
	}
}

func TestVectorizedAndScalarSameResultDifferentCost(t *testing.T) {
	g := testGraph(t)
	run := func(vecOn bool) (*apps.SSSP, core.Result) {
		app := apps.NewSSSP(0)
		res, err := core.RunF32(app, g, core.Options{Dev: machine.MIC(), Scheme: core.SchemeLocking, Vectorized: vecOn})
		if err != nil {
			t.Fatal(err)
		}
		return app, res
	}
	appV, resV := run(true)
	appS, resS := run(false)
	for v := range appV.Dist {
		if appV.Dist[v] != appS.Dist[v] {
			t.Fatalf("vec/scalar disagree at %d", v)
		}
	}
	if resV.Phases.Process >= resS.Phases.Process {
		t.Errorf("vectorized processing %v not cheaper than scalar %v", resV.Phases.Process, resS.Phases.Process)
	}
	if resV.Counters.VecRows == 0 || resS.Counters.VecRows != 0 {
		t.Errorf("VecRows accounting wrong: %d / %d", resV.Counters.VecRows, resS.Counters.VecRows)
	}
}

func TestMaxIterationsBoundsRun(t *testing.T) {
	g := testGraph(t)
	app := apps.NewPageRank()
	res, err := core.RunF32(app, g, core.Options{Dev: machine.CPU(), MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 || res.Converged {
		t.Errorf("fixed-active run: iters=%d converged=%v", res.Iterations, res.Converged)
	}
}

func TestEmptyActiveConvergesImmediately(t *testing.T) {
	// A BFS from an isolated source converges after one iteration.
	b := graph.NewBuilder(4, true)
	b.AddEdge(1, 2, 1)
	g, _ := b.Build()
	app := apps.NewBFS(3)
	res, err := core.RunF32(app, g, core.Options{Dev: machine.CPU()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 (source generates nothing)", res.Iterations)
	}
}

func TestConnectedComponentsMatchesUnionFind(t *testing.T) {
	// Symmetrized community graph: min-label propagation must agree with
	// the union-find oracle under every scheme.
	g, err := gen.Community(gen.CommunityConfig{N: 1500, Communities: 12, IntraDeg: 2, InterFrac: 0.02, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	want := seqref.ClassicWCC(g)
	for _, scheme := range []core.Scheme{core.SchemeLocking, core.SchemePipelined} {
		app := apps.NewConnectedComponents()
		res, err := core.RunF32(app, g, core.Options{Dev: machine.MIC(), Scheme: scheme, Vectorized: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("CC did not converge")
		}
		for v := range want {
			if app.Labels[v] != float32(want[v]) {
				t.Fatalf("%v: label[%d] = %v, want %d", scheme, v, app.Labels[v], want[v])
			}
		}
	}
}

func TestConnectedComponentsHetero(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 1000, Communities: 8, IntraDeg: 2, InterFrac: 0.02, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	want := seqref.ClassicWCC(g)
	assign, err := partition.Make(partition.MethodRoundRobin, g, partition.Ratio{A: 1, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	app := apps.NewConnectedComponents()
	_, err = core.RunF32Hetero(app, g, assign,
		core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true},
		core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if app.Labels[v] != float32(want[v]) {
			t.Fatalf("hetero label[%d] = %v, want %d", v, app.Labels[v], want[v])
		}
	}
}

func TestEnginePanicSurfacedAsError(t *testing.T) {
	// A vertex program that panics during generation must fail the run
	// with an error, not kill the process.
	g := testGraph(t)
	app := &panickyApp{inner: apps.NewPageRank()}
	_, err := core.RunF32(app, g, core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, MaxIterations: 2})
	if err == nil {
		t.Fatal("panic in Generate not surfaced")
	}
}

// panickyApp wraps PageRank and panics on one vertex.
type panickyApp struct{ inner *apps.PageRank }

func (p *panickyApp) Profile() machine.AppProfile        { return p.inner.Profile() }
func (p *panickyApp) Init(g *graph.CSR) []graph.VertexID { return p.inner.Init(g) }
func (p *panickyApp) Generate(v graph.VertexID, emit func(graph.VertexID, float32)) {
	if v == 100 {
		panic("user bug")
	}
	p.inner.Generate(v, emit)
}
func (p *panickyApp) Identity() float32                         { return p.inner.Identity() }
func (p *panickyApp) ReduceVec(arr *vec.ArrayF32, rows int)     { p.inner.ReduceVec(arr, rows) }
func (p *panickyApp) ReduceScalar(a, b float32) float32         { return p.inner.ReduceScalar(a, b) }
func (p *panickyApp) Update(v graph.VertexID, msg float32) bool { return p.inner.Update(v, msg) }

func TestTraceRecordsPhases(t *testing.T) {
	g := testGraph(t)
	rec := trace.NewRecorder()
	app := apps.NewPageRank()
	res, err := core.RunF32(app, g, core.Options{
		Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
		MaxIterations: 3, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 samples per iteration (no exchange on a single device).
	if got := rec.Len(); got != int(3*res.Iterations) {
		t.Fatalf("samples = %d, want %d", got, 3*res.Iterations)
	}
	sum := rec.Summarize()
	if sum.Iterations["MIC"] != res.Iterations {
		t.Fatalf("trace iterations = %d", sum.Iterations["MIC"])
	}
	// Trace totals must reconcile with the run's phase totals.
	var gen float64
	for _, pt := range sum.Totals {
		if pt.Phase == trace.PhaseGenerate {
			gen += pt.SimSeconds
		}
	}
	if diff := gen - res.Phases.Generate; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("trace generate total %v != result %v", gen, res.Phases.Generate)
	}
}

func TestTraceHeteroIncludesExchange(t *testing.T) {
	g := testGraph(t)
	assign, err := partition.Make(partition.MethodRoundRobin, g, partition.Ratio{A: 1, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	app := apps.NewSSSP(0)
	opt0 := core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true, Trace: rec}
	opt1 := core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true, Trace: rec}
	if _, err := core.RunF32Hetero(app, g, assign, opt0, opt1); err != nil {
		t.Fatal(err)
	}
	sum := rec.Summarize()
	devs := map[string]bool{}
	phases := map[string]bool{}
	for _, pt := range sum.Totals {
		devs[pt.Device] = true
		phases[pt.Phase] = true
	}
	if !devs["CPU"] || !devs["MIC"] {
		t.Fatalf("trace missing a device: %v", devs)
	}
	if !phases[trace.PhaseExchange] {
		t.Fatal("hetero trace has no exchange samples")
	}
}

func TestTopoSortHetero(t *testing.T) {
	g, err := gen.RandomDAG(gen.DAGConfig{N: 600, M: 60000, Seed: 8, Layers: 10, HotFrac: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	assign, err := partition.Make(partition.MethodRoundRobin, g, partition.Ratio{A: 1, B: 3})
	if err != nil {
		t.Fatal(err)
	}
	app := apps.NewTopoSort()
	res, err := core.RunF32Hetero(app, g, assign,
		core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true},
		core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !app.Ordered() {
		t.Fatal("hetero toposort incomplete")
	}
	if !seqref.ValidTopoOrder(g, app.Order) {
		t.Fatal("hetero toposort order invalid")
	}
}

func TestDeterministicSimSeconds(t *testing.T) {
	// The cost model is a pure function of the counted events, and the
	// engine's counting is deterministic for a fixed input, so two
	// identical runs must report identical simulated time (wall time will
	// differ — that is the point of the split).
	g := testGraph(t)
	run := func() core.Result {
		res, err := core.RunF32(apps.NewSSSP(0), g, core.Options{
			Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.SimSeconds != b.SimSeconds {
		t.Errorf("sim time not deterministic: %v vs %v", a.SimSeconds, b.SimSeconds)
	}
	if a.Counters.Messages != b.Counters.Messages || a.Counters.VecRows != b.Counters.VecRows {
		t.Errorf("counters not deterministic")
	}
}

func TestThreadsOverride(t *testing.T) {
	// Real goroutine count can be overridden (e.g. for debugging) without
	// changing the modeled device's simulated time basis.
	g := testGraph(t)
	app := apps.NewSSSP(0)
	res, err := core.RunF32(app, g, core.Options{
		Dev: machine.MIC(), Scheme: core.SchemeLocking, Vectorized: true, Threads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := seqref.ClassicSSSP(g, 0)
	for v := range want {
		if app.Dist[v] != want[v] {
			t.Fatalf("dist[%d] wrong under thread override", v)
		}
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
}

func TestGenericEnginePanicContained(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 200, Communities: 2, IntraDeg: 3, InterFrac: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	app := &panickySC{inner: apps.NewSemiClustering(2, 3, 0.2)}
	_, err = core.RunGeneric[apps.SCMsg](app, g, core.Options{Dev: machine.CPU(), MaxIterations: 3})
	if err == nil {
		t.Fatal("generic engine did not surface user panic")
	}
}

type panickySC struct{ inner *apps.SemiClustering }

func (p *panickySC) Profile() machine.AppProfile        { return p.inner.Profile() }
func (p *panickySC) Init(g *graph.CSR) []graph.VertexID { return p.inner.Init(g) }
func (p *panickySC) Combine(a, b apps.SCMsg) apps.SCMsg { return p.inner.Combine(a, b) }
func (p *panickySC) Process(v graph.VertexID, m []apps.SCMsg) apps.SCMsg {
	return p.inner.Process(v, m)
}
func (p *panickySC) Update(v graph.VertexID, r apps.SCMsg) bool { return p.inner.Update(v, r) }
func (p *panickySC) Generate(v graph.VertexID, emit func(graph.VertexID, apps.SCMsg)) {
	if v == 50 {
		panic("sc user bug")
	}
	p.inner.Generate(v, emit)
}

func TestLabelPropagationEngineMatchesSeq(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 800, Communities: 8, IntraDeg: 3, InterFrac: 0.03, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	const maxIters = 8
	seqApp := apps.NewLabelPropagation()
	if _, _, err := seqref.RunGenericSeq[apps.LPAMsg](seqApp, g, maxIters); err != nil {
		t.Fatal(err)
	}

	parApp := apps.NewLabelPropagation()
	_, err = core.RunGeneric[apps.LPAMsg](parApp, g, core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, MaxIterations: maxIters})
	if err != nil {
		t.Fatal(err)
	}
	for v := range seqApp.Labels {
		if parApp.Labels[v] != seqApp.Labels[v] {
			t.Fatalf("label[%d]: engine %d, seq %d", v, parApp.Labels[v], seqApp.Labels[v])
		}
	}
	// On a community graph LPA must find far fewer communities than
	// vertices.
	if parApp.NumCommunities() > g.NumVertices()/4 {
		t.Errorf("LPA found %d communities of %d vertices", parApp.NumCommunities(), g.NumVertices())
	}
}

func TestLabelPropagationHetero(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 500, Communities: 5, IntraDeg: 3, InterFrac: 0.03, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	const maxIters = 6
	seqApp := apps.NewLabelPropagation()
	if _, _, err := seqref.RunGenericSeq[apps.LPAMsg](seqApp, g, maxIters); err != nil {
		t.Fatal(err)
	}
	assign, err := partition.Make(partition.MethodRoundRobin, g, partition.Ratio{A: 1, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	hetApp := apps.NewLabelPropagation()
	_, err = core.RunGenericHetero[apps.LPAMsg](hetApp, g, assign,
		core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, MaxIterations: maxIters},
		core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, MaxIterations: maxIters})
	if err != nil {
		t.Fatal(err)
	}
	for v := range seqApp.Labels {
		if hetApp.Labels[v] != seqApp.Labels[v] {
			t.Fatalf("hetero label[%d]: %d vs %d", v, hetApp.Labels[v], seqApp.Labels[v])
		}
	}
}
