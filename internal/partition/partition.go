// Package partition implements the workload partitioning schemes of §IV-E,
// generalized to N-rank device groups. A partitioning assigns every vertex
// to a device rank before the run — classically 0 = CPU and 1 = MIC at a
// user-specified ratio a:b of expected workload, or any rank of a larger
// group at spec-weighted shares (the *N variants):
//
//   - Continuous: the first a/(a+b) of the vertex range goes to the CPU —
//     broken by power-law graphs whose high-degree vertices cluster at the
//     front;
//   - RoundRobin: interleaves vertices a-then-b — balanced, but cuts a huge
//     number of edges;
//   - Hybrid: a Metis-style blocked min-connectivity partitioning (256
//     blocks by default) whose blocks are dealt to the devices round-robin —
//     balanced *and* low-cut. The blocked partitioning is computed once per
//     graph and reused for any ratio.
package partition

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"hetgraph/internal/graph"
	"hetgraph/internal/metis"
)

// Method identifies a partitioning scheme.
type Method int

const (
	MethodContinuous Method = iota
	MethodRoundRobin
	MethodHybrid
)

func (m Method) String() string {
	switch m {
	case MethodContinuous:
		return "continuous"
	case MethodRoundRobin:
		return "roundrobin"
	case MethodHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// DefaultBlocks is the paper's block count for the hybrid scheme, used on
// Pokec-scale graphs (1.6M vertices, ~6K vertices per block).
const DefaultBlocks = 256

// BlocksFor scales the block count to the graph so block size stays near
// the paper's ~4-6K vertices per block; too-fine blocks cut through local
// neighborhoods and negate the hybrid scheme's advantage.
func BlocksFor(n int) int {
	b := n / 4096
	if b < 8 {
		b = 8
	}
	if b > DefaultBlocks {
		b = DefaultBlocks
	}
	return b
}

// Ratio is the expected workload split a:b between device 0 and device 1.
type Ratio struct{ A, B int }

// Validate checks the ratio.
func (r Ratio) Validate() error {
	if r.A < 0 || r.B < 0 || r.A+r.B == 0 {
		return fmt.Errorf("partition: invalid ratio %d:%d", r.A, r.B)
	}
	return nil
}

// Frac0 returns device 0's expected workload fraction.
func (r Ratio) Frac0() float64 { return float64(r.A) / float64(r.A+r.B) }

// Continuous assigns the first a/(a+b) of the vertex-ID range to device 0
// and the rest to device 1.
func Continuous(n int, r Ratio) ([]int32, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	split := int(float64(n) * r.Frac0())
	assign := make([]int32, n)
	for v := split; v < n; v++ {
		assign[v] = 1
	}
	return assign, nil
}

// RoundRobin interleaves vertices: of every a+b consecutive IDs, the first
// a go to device 0 and the remaining b to device 1.
func RoundRobin(n int, r Ratio) ([]int32, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	window := r.A + r.B
	assign := make([]int32, n)
	for v := 0; v < n; v++ {
		if v%window >= r.A {
			assign[v] = 1
		}
	}
	return assign, nil
}

// Blocks computes the reusable blocked min-connectivity partitioning of g
// (the expensive Metis stage, run once per dataset).
func Blocks(g *graph.CSR, blocks int, opts metis.Options) ([]int32, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("partition: blocks %d < 1", blocks)
	}
	return metis.Partition(g, blocks, opts)
}

// HybridFromBlocks assigns precomputed blocks to devices round-robin at
// ratio a:b: of every a+b consecutive block IDs, the first a belong to
// device 0. Since blocks are workload-balanced, the device workload ratio
// tracks a:b while cross edges stay near the blocked partitioning's cut.
func HybridFromBlocks(blockOf []int32, r Ratio) ([]int32, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	window := int32(r.A + r.B)
	assign := make([]int32, len(blockOf))
	for v, b := range blockOf {
		if b%window >= int32(r.A) {
			assign[v] = 1
		}
	}
	return assign, nil
}

// HybridBalanced deals precomputed blocks to the devices with an explicit
// balance objective: blocks are taken in descending workload order and each
// goes to the device furthest below its target share. This refines the
// plain round-robin deal when block weights vary (our from-scratch
// partitioner tolerates a few percent of block imbalance; Metis blocks are
// tighter, which is why the paper's round-robin deal suffices there). Cross
// edges are unaffected in expectation — the deal only permutes whole
// blocks.
func HybridBalanced(g *graph.CSR, blockOf []int32, r Ratio) ([]int32, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	numBlocks := 0
	for _, b := range blockOf {
		if int(b) >= numBlocks {
			numBlocks = int(b) + 1
		}
	}
	weights := make([]int64, numBlocks)
	var total int64
	for v := 0; v < g.NumVertices(); v++ {
		w := 1 + int64(g.OutDegree(graph.VertexID(v)))
		weights[blockOf[v]] += w
		total += w
	}
	order := make([]int, numBlocks)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return weights[order[i]] > weights[order[j]] })
	target0 := r.Frac0() * float64(total)
	blockDev := make([]int32, numBlocks)
	var w0, w1 float64
	for _, b := range order {
		// Deficit-greedy: place the block where the achieved fraction is
		// furthest below target.
		if w0/maxF(target0, 1) <= w1/maxF(float64(total)-target0, 1) {
			blockDev[b] = 0
			w0 += float64(weights[b])
		} else {
			blockDev[b] = 1
			w1 += float64(weights[b])
		}
	}
	assign := make([]int32, len(blockOf))
	for v, b := range blockOf {
		assign[v] = blockDev[b]
	}
	return assign, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Hybrid runs the full hybrid scheme: blocked partitioning, then the
// balance-aware deal at ratio r.
func Hybrid(g *graph.CSR, r Ratio, blocks int, opts metis.Options) ([]int32, error) {
	blockOf, err := Blocks(g, blocks, opts)
	if err != nil {
		return nil, err
	}
	return HybridBalanced(g, blockOf, r)
}

// validateWeights checks an N-rank workload weight vector (one non-negative
// entry per rank, at least one positive).
func validateWeights(weights []int) error {
	if len(weights) < 1 {
		return fmt.Errorf("partition: empty weight vector")
	}
	sum := 0
	for r, w := range weights {
		if w < 0 {
			return fmt.Errorf("partition: negative weight %d for rank %d", w, r)
		}
		sum += w
	}
	if sum == 0 {
		return fmt.Errorf("partition: all-zero weight vector")
	}
	return nil
}

// ContinuousN is Continuous for an N-rank group: the vertex-ID range is cut
// into len(weights) consecutive spans proportional to the weights (e.g. each
// rank's hardware thread count). ContinuousN(n, []int{a, b}) matches
// Continuous(n, Ratio{a, b}).
func ContinuousN(n int, weights []int) ([]int32, error) {
	if err := validateWeights(weights); err != nil {
		return nil, err
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	assign := make([]int32, n)
	start, acc := 0, 0
	for r, w := range weights {
		acc += w
		end := int(float64(n) * float64(acc) / float64(total))
		if r == len(weights)-1 {
			end = n
		}
		for v := start; v < end; v++ {
			assign[v] = int32(r)
		}
		start = end
	}
	return assign, nil
}

// RoundRobinN is RoundRobin for an N-rank group: of every sum(weights)
// consecutive IDs, the first weights[0] go to rank 0, the next weights[1] to
// rank 1, and so on. RoundRobinN(n, []int{a, b}) matches
// RoundRobin(n, Ratio{a, b}).
func RoundRobinN(n int, weights []int) ([]int32, error) {
	if err := validateWeights(weights); err != nil {
		return nil, err
	}
	window := 0
	for _, w := range weights {
		window += w
	}
	// rankAt[i] is the rank owning offset i of the window.
	rankAt := make([]int32, window)
	i := 0
	for r, w := range weights {
		for k := 0; k < w; k++ {
			rankAt[i] = int32(r)
			i++
		}
	}
	assign := make([]int32, n)
	for v := 0; v < n; v++ {
		assign[v] = rankAt[v%window]
	}
	return assign, nil
}

// HybridBalancedN deals precomputed blocks to an N-rank group with the same
// deficit-greedy balance objective as HybridBalanced: blocks are taken in
// descending workload order and each goes to the rank furthest below its
// weighted target share.
func HybridBalancedN(g *graph.CSR, blockOf []int32, weights []int) ([]int32, error) {
	if err := validateWeights(weights); err != nil {
		return nil, err
	}
	numBlocks := 0
	for _, b := range blockOf {
		if int(b) >= numBlocks {
			numBlocks = int(b) + 1
		}
	}
	blockW := make([]int64, numBlocks)
	var total int64
	for v := 0; v < g.NumVertices(); v++ {
		w := 1 + int64(g.OutDegree(graph.VertexID(v)))
		blockW[blockOf[v]] += w
		total += w
	}
	order := make([]int, numBlocks)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return blockW[order[i]] > blockW[order[j]] })
	wSum := 0
	for _, w := range weights {
		wSum += w
	}
	targets := make([]float64, len(weights))
	for r, w := range weights {
		targets[r] = float64(w) / float64(wSum) * float64(total)
	}
	got := make([]float64, len(weights))
	blockDev := make([]int32, numBlocks)
	for _, b := range order {
		// Deficit-greedy: place the block where the achieved fraction is
		// furthest below target; zero-weight ranks never receive blocks.
		best, bestFrac := -1, 0.0
		for r := range weights {
			if weights[r] == 0 {
				continue
			}
			frac := got[r] / maxF(targets[r], 1)
			if best < 0 || frac < bestFrac {
				best, bestFrac = r, frac
			}
		}
		blockDev[b] = int32(best)
		got[best] += float64(blockW[b])
	}
	assign := make([]int32, len(blockOf))
	for v, b := range blockOf {
		assign[v] = blockDev[b]
	}
	return assign, nil
}

// HybridN runs the full hybrid scheme for an N-rank group: blocked
// partitioning, then the balance-aware deal at the weighted shares.
func HybridN(g *graph.CSR, weights []int, blocks int, opts metis.Options) ([]int32, error) {
	blockOf, err := Blocks(g, blocks, opts)
	if err != nil {
		return nil, err
	}
	return HybridBalancedN(g, blockOf, weights)
}

// MakeN dispatches on method for an N-rank group with one workload weight
// per rank. Hybrid uses BlocksFor-scaled blocks and default Metis options.
func MakeN(method Method, g *graph.CSR, weights []int) ([]int32, error) {
	switch method {
	case MethodContinuous:
		return ContinuousN(g.NumVertices(), weights)
	case MethodRoundRobin:
		return RoundRobinN(g.NumVertices(), weights)
	case MethodHybrid:
		return HybridN(g, weights, BlocksFor(g.NumVertices()), metis.DefaultOptions())
	default:
		return nil, fmt.Errorf("partition: unknown method %d", int(method))
	}
}

// Make dispatches on method. Hybrid uses DefaultBlocks and default Metis
// options.
func Make(method Method, g *graph.CSR, r Ratio) ([]int32, error) {
	switch method {
	case MethodContinuous:
		return Continuous(g.NumVertices(), r)
	case MethodRoundRobin:
		return RoundRobin(g.NumVertices(), r)
	case MethodHybrid:
		return Hybrid(g, r, BlocksFor(g.NumVertices()), metis.DefaultOptions())
	default:
		return nil, fmt.Errorf("partition: unknown method %d", int(method))
	}
}

// CrossEdges counts directed edges whose endpoints live on different
// devices — each becomes a remote message every time it fires.
func CrossEdges(g *graph.CSR, assign []int32) int64 {
	var cross int64
	for u := 0; u < g.NumVertices(); u++ {
		au := assign[u]
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if assign[v] != au {
				cross++
			}
		}
	}
	return cross
}

// WorkloadSplit returns the cumulative out-degree per device — the paper's
// balance criterion ("edges_CPU : edges_MIC should be close to a : b").
func WorkloadSplit(g *graph.CSR, assign []int32) (edges0, edges1 int64) {
	for v := 0; v < g.NumVertices(); v++ {
		d := int64(g.OutDegree(graph.VertexID(v)))
		if assign[v] == 0 {
			edges0 += d
		} else {
			edges1 += d
		}
	}
	return edges0, edges1
}

// WorkloadSplitN returns the cumulative out-degree per rank of an N-rank
// group — the balance criterion generalized from WorkloadSplit.
func WorkloadSplitN(g *graph.CSR, assign []int32, ranks int) []int64 {
	edges := make([]int64, ranks)
	for v := 0; v < g.NumVertices(); v++ {
		edges[assign[v]] += int64(g.OutDegree(graph.VertexID(v)))
	}
	return edges
}

// BalanceError returns how far the achieved workload split is from the
// requested ratio, as |achievedFrac0 - wantFrac0|.
func BalanceError(g *graph.CSR, assign []int32, r Ratio) float64 {
	e0, e1 := WorkloadSplit(g, assign)
	if e0+e1 == 0 {
		return 0
	}
	got := float64(e0) / float64(e0+e1)
	diff := got - r.Frac0()
	if diff < 0 {
		diff = -diff
	}
	return diff
}

// Write emits the partitioning file format: a header line with the vertex
// count, then one device rank per line ("a graph partitioning file
// indicating which device each vertex belongs to").
func Write(w io.Writer, assign []int32) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintln(bw, len(assign)); err != nil {
		return err
	}
	for _, a := range assign {
		bw.WriteString(strconv.Itoa(int(a)))
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a partitioning file.
func Read(r io.Reader) ([]int32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var assign []int32
	n := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("partition: bad line %q", line)
		}
		if n < 0 {
			if v < 0 {
				return nil, fmt.Errorf("partition: negative vertex count %d", v)
			}
			n = v
			assign = make([]int32, 0, n)
			continue
		}
		if v < 0 {
			return nil, fmt.Errorf("partition: negative device rank %d", v)
		}
		assign = append(assign, int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("partition: empty input")
	}
	if len(assign) != n {
		return nil, fmt.Errorf("partition: header declares %d vertices, got %d", n, len(assign))
	}
	return assign, nil
}

// SaveFile writes assign to path.
func SaveFile(path string, assign []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, assign); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a partitioning from path.
func LoadFile(path string) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
