package partition

import (
	"bytes"
	"strings"
	"testing"

	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
	"hetgraph/internal/metis"
)

func TestRatioValidate(t *testing.T) {
	for _, r := range []Ratio{{0, 0}, {-1, 2}, {2, -1}} {
		if r.Validate() == nil {
			t.Errorf("accepted ratio %v", r)
		}
	}
	if (Ratio{3, 5}).Validate() != nil {
		t.Error("rejected 3:5")
	}
	if f := (Ratio{3, 5}).Frac0(); f != 0.375 {
		t.Errorf("Frac0 = %v", f)
	}
}

func TestMethodString(t *testing.T) {
	if MethodContinuous.String() != "continuous" || MethodRoundRobin.String() != "roundrobin" ||
		MethodHybrid.String() != "hybrid" || Method(7).String() == "" {
		t.Error("method names wrong")
	}
}

func TestContinuous(t *testing.T) {
	assign, err := Continuous(10, Ratio{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if assign[v] != 0 {
			t.Fatalf("vertex %d on device %d", v, assign[v])
		}
	}
	for v := 5; v < 10; v++ {
		if assign[v] != 1 {
			t.Fatalf("vertex %d on device %d", v, assign[v])
		}
	}
	if _, err := Continuous(10, Ratio{}); err == nil {
		t.Error("accepted zero ratio")
	}
}

func TestRoundRobin(t *testing.T) {
	assign, err := RoundRobin(8, Ratio{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 1, 1, 0, 1, 1, 1}
	for v := range want {
		if assign[v] != want[v] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
	if _, err := RoundRobin(8, Ratio{0, 0}); err == nil {
		t.Error("accepted zero ratio")
	}
}

func TestHybridFromBlocks(t *testing.T) {
	blockOf := []int32{0, 0, 1, 1, 2, 2, 3, 3}
	assign, err := HybridFromBlocks(blockOf, Ratio{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Blocks 0,2 -> device 0; blocks 1,3 -> device 1.
	want := []int32{0, 0, 1, 1, 0, 0, 1, 1}
	for v := range want {
		if assign[v] != want[v] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
	if _, err := HybridFromBlocks(blockOf, Ratio{}); err == nil {
		t.Error("accepted zero ratio")
	}
}

func TestCrossEdgesAndWorkload(t *testing.T) {
	g := graph.PaperExample()
	all0 := make([]int32, 16)
	if CrossEdges(g, all0) != 0 {
		t.Error("single-device cross edges != 0")
	}
	e0, e1 := WorkloadSplit(g, all0)
	if e0 != 28 || e1 != 0 {
		t.Errorf("workload = %d,%d", e0, e1)
	}
	if BalanceError(g, all0, Ratio{1, 0}) != 0 {
		t.Error("perfect assignment has nonzero balance error")
	}
	// Empty graph degenerate case.
	if BalanceError(&graph.CSR{Offsets: []int64{0}}, nil, Ratio{1, 1}) != 0 {
		t.Error("empty graph balance error != 0")
	}
}

// The Fig. 6 mechanism on a Pokec-like graph: continuous partitioning is
// imbalanced, round-robin is balanced but high-cut, hybrid is balanced and
// low-cut.
func TestSchemeTradeoffsOnPowerLaw(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 6000, MeanDeg: 12, Alpha: 2.1, FrontBias: 0.85, Locality: 0.75, LocalWindow: 0.02, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := Ratio{3, 5}
	cont, err := Make(MethodContinuous, g, r)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Make(MethodRoundRobin, g, r)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Hybrid(g, r, BlocksFor(g.NumVertices()), metis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Balance: continuous must be far off; round-robin and hybrid close.
	if be := BalanceError(g, cont, r); be < 0.10 {
		t.Errorf("continuous balance error = %.3f, want >= 0.10 on front-loaded graph", be)
	}
	if be := BalanceError(g, rr, r); be > 0.05 {
		t.Errorf("roundrobin balance error = %.3f, want <= 0.05", be)
	}
	if be := BalanceError(g, hyb, r); be > 0.12 {
		t.Errorf("hybrid balance error = %.3f, want <= 0.12", be)
	}
	// Cut: hybrid must cut far fewer edges than round-robin.
	if ch, cr := CrossEdges(g, hyb), CrossEdges(g, rr); ch*2 > cr {
		t.Errorf("hybrid cross edges %d not well below roundrobin %d", ch, cr)
	}
}

func TestMakeDispatch(t *testing.T) {
	g := graph.PaperExample()
	for _, m := range []Method{MethodContinuous, MethodRoundRobin, MethodHybrid} {
		assign, err := Make(m, g, Ratio{1, 1})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(assign) != 16 {
			t.Fatalf("%v: length %d", m, len(assign))
		}
		for _, a := range assign {
			if a != 0 && a != 1 {
				t.Fatalf("%v: device %d", m, a)
			}
		}
	}
	if _, err := Make(Method(9), g, Ratio{1, 1}); err == nil {
		t.Error("accepted unknown method")
	}
	if _, err := Blocks(g, 0, metis.DefaultOptions()); err == nil {
		t.Error("accepted zero blocks")
	}
}

func TestFileRoundTrip(t *testing.T) {
	assign := []int32{0, 1, 1, 0, 1}
	var buf bytes.Buffer
	if err := Write(&buf, assign); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(assign) {
		t.Fatalf("length %d", len(got))
	}
	for i := range assign {
		if got[i] != assign[i] {
			t.Fatalf("round trip changed entry %d", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"",         // empty
		"abc",      // bad header
		"-3",       // negative count
		"2\n0",     // short body
		"1\n0\n1",  // long body
		"2\n0\n-1", // negative rank
		"1\nxyz",   // bad rank
	}
	for _, s := range bad {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("Read(%q) succeeded", s)
		}
	}
	// Comments and blanks are fine.
	got, err := Read(strings.NewReader("# partition\n2\n\n0\n1\n"))
	if err != nil || len(got) != 2 {
		t.Fatalf("comment handling: %v %v", got, err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := t.TempDir() + "/p.part"
	assign := []int32{1, 0, 1}
	if err := SaveFile(path, assign); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("LoadFile = %v", got)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("loaded missing file")
	}
}
