package vec

// float64 row operations. A register of the same physical width holds half
// as many float64 lanes (Width.Lanes64); callers size rows accordingly.

// AddF64 sets dst[i] = a[i] + b[i].
func AddF64(dst, a, b []float64) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// SubF64 sets dst[i] = a[i] - b[i].
func SubF64(dst, a, b []float64) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// MulF64 sets dst[i] = a[i] * b[i].
func MulF64(dst, a, b []float64) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] * b[i]
	}
}

// MinF64 sets dst[i] = min(a[i], b[i]).
func MinF64(dst, a, b []float64) {
	_ = dst[len(a)-1]
	for i := range a {
		if b[i] < a[i] {
			dst[i] = b[i]
		} else {
			dst[i] = a[i]
		}
	}
}

// MaxF64 sets dst[i] = max(a[i], b[i]).
func MaxF64(dst, a, b []float64) {
	_ = dst[len(a)-1]
	for i := range a {
		if b[i] > a[i] {
			dst[i] = b[i]
		} else {
			dst[i] = a[i]
		}
	}
}

// FillF64 broadcasts s into every lane of dst.
func FillF64(dst []float64, s float64) {
	for i := range dst {
		dst[i] = s
	}
}

// MaskAddF64 sets dst[i] = a[i] + b[i] for enabled lanes.
func MaskAddF64(dst, a, b []float64, m Mask) {
	_ = dst[len(a)-1]
	for i := range a {
		if m.Bit(i) {
			dst[i] = a[i] + b[i]
		}
	}
}

// HSumF64 returns the horizontal sum of the row.
func HSumF64(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// HMinF64 returns the horizontal minimum of the row.
func HMinF64(a []float64) float64 {
	m := a[0]
	for _, v := range a[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
