package vec

import "math"

// Extended row operations completing the paper's vtype surface: fused
// multiply-add (one IMCI instruction), absolute value, negation, square
// root, comparisons in both directions, lane conversions between vint and
// vfloat, and horizontal argmin. These round out the overloaded-operator
// set ("+, -, x, ÷, etc.") of §IV-C for user-defined reductions beyond the
// five evaluated applications.

// FMAF32 sets dst[i] = a[i]*b[i] + c[i] (vfmadd).
func FMAF32(dst, a, b, c []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i]*b[i] + c[i]
	}
}

// AbsF32 sets dst[i] = |a[i]|.
func AbsF32(dst, a []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = float32(math.Abs(float64(a[i])))
	}
}

// NegF32 sets dst[i] = -a[i].
func NegF32(dst, a []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = -a[i]
	}
}

// SqrtF32 sets dst[i] = sqrt(a[i]).
func SqrtF32(dst, a []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = float32(math.Sqrt(float64(a[i])))
	}
}

// CmpLeF32 returns a mask of lanes where a[i] <= b[i].
func CmpLeF32(a, b []float32) Mask {
	var m Mask
	for i := range a {
		if a[i] <= b[i] {
			m = m.Set(i)
		}
	}
	return m
}

// CmpGtF32 returns a mask of lanes where a[i] > b[i].
func CmpGtF32(a, b []float32) Mask {
	var m Mask
	for i := range a {
		if a[i] > b[i] {
			m = m.Set(i)
		}
	}
	return m
}

// CmpEqF32 returns a mask of lanes where a[i] == b[i].
func CmpEqF32(a, b []float32) Mask {
	var m Mask
	for i := range a {
		if a[i] == b[i] {
			m = m.Set(i)
		}
	}
	return m
}

// MaskSubF32 sets dst[i] = a[i] - b[i] for enabled lanes.
func MaskSubF32(dst, a, b []float32, m Mask) {
	_ = dst[len(a)-1]
	for i := range a {
		if m.Bit(i) {
			dst[i] = a[i] - b[i]
		}
	}
}

// MaskMulF32 sets dst[i] = a[i] * b[i] for enabled lanes.
func MaskMulF32(dst, a, b []float32, m Mask) {
	_ = dst[len(a)-1]
	for i := range a {
		if m.Bit(i) {
			dst[i] = a[i] * b[i]
		}
	}
}

// HArgMinF32 returns the lane index of the row minimum (lowest index on
// ties) and the minimum itself. Panics on an empty row.
func HArgMinF32(a []float32) (lane int, min float32) {
	lane, min = 0, a[0]
	for i, v := range a[1:] {
		if v < min {
			min = v
			lane = i + 1
		}
	}
	return lane, min
}

// HCountF32 returns the number of lanes equal to v (useful for counting
// identity bubbles in diagnostics).
func HCountF32(a []float32, v float32) int {
	n := 0
	for _, x := range a {
		if x == v {
			n++
		}
	}
	return n
}

// CvtI32toF32 converts int32 lanes to float32 (vcvtdq2ps).
func CvtI32toF32(dst []float32, a []int32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = float32(a[i])
	}
}

// CvtF32toI32 converts float32 lanes to int32, truncating toward zero
// (vcvttps2dq).
func CvtF32toI32(dst []int32, a []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = int32(a[i])
	}
}

// AndI32 sets dst[i] = a[i] & b[i].
func AndI32(dst, a, b []int32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] & b[i]
	}
}

// OrI32 sets dst[i] = a[i] | b[i].
func OrI32(dst, a, b []int32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] | b[i]
	}
}

// XorI32 sets dst[i] = a[i] ^ b[i].
func XorI32(dst, a, b []int32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] ^ b[i]
	}
}

// ShlI32 sets dst[i] = a[i] << s.
func ShlI32(dst, a []int32, s uint) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] << s
	}
}

// ShrI32 sets dst[i] = a[i] >> s (arithmetic shift).
func ShrI32(dst, a []int32, s uint) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] >> s
	}
}

// MulI32 sets dst[i] = a[i] * b[i].
func MulI32(dst, a, b []int32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] * b[i]
	}
}

// DivF64 sets dst[i] = a[i] / b[i].
func DivF64(dst, a, b []float64) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] / b[i]
	}
}

// MaskMinF64 sets dst[i] = min(a[i], b[i]) for enabled lanes.
func MaskMinF64(dst, a, b []float64, m Mask) {
	_ = dst[len(a)-1]
	for i := range a {
		if m.Bit(i) {
			if b[i] < a[i] {
				dst[i] = b[i]
			} else {
				dst[i] = a[i]
			}
		}
	}
}

// GatherF64 emulates a gather: dst[i] = base[idx[i]].
func GatherF64(dst []float64, base []float64, idx []int32) {
	_ = dst[len(idx)-1]
	for i := range idx {
		dst[i] = base[idx[i]]
	}
}

// HMaxF64 returns the horizontal maximum of the row.
func HMaxF64(a []float64) float64 {
	m := a[0]
	for _, v := range a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArrayF64 is the float64 vector array (vdouble); a register of the same
// physical width holds Width.Lanes64() lanes.
type ArrayF64 struct {
	width int
	data  []float64
}

// NewArrayF64 allocates a zeroed float64 vector array. w is the register's
// float32 lane width; rows use w/2 float64 lanes.
func NewArrayF64(w Width, rows int) (*ArrayF64, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if rows < 0 {
		return nil, errNegativeRows(rows)
	}
	lanes := w.Lanes64()
	return &ArrayF64{width: lanes, data: make([]float64, rows*lanes)}, nil
}

func errNegativeRows(rows int) error {
	return &rowError{rows}
}

type rowError struct{ rows int }

func (e *rowError) Error() string { return "vec: negative row count" }

// Width returns the float64 lane count per row.
func (a *ArrayF64) Width() int { return a.width }

// Rows returns the number of rows.
func (a *ArrayF64) Rows() int { return len(a.data) / a.width }

// Row returns row i, aliasing the backing store.
func (a *ArrayF64) Row(i int) []float64 {
	off := i * a.width
	return a.data[off : off+a.width : off+a.width]
}

// Fill broadcasts v into every element.
func (a *ArrayF64) Fill(v float64) { FillF64(a.data, v) }

// ReduceMin folds rows [0,n) with MinF64 into row 0 and returns it.
func (a *ArrayF64) ReduceMin(n int) []float64 {
	r0 := a.Row(0)
	for i := 1; i < n; i++ {
		MinF64(r0, r0, a.Row(i))
	}
	return r0
}

// ReduceSum folds rows [0,n) with AddF64 into row 0 and returns it.
func (a *ArrayF64) ReduceSum(n int) []float64 {
	r0 := a.Row(0)
	for i := 1; i < n; i++ {
		AddF64(r0, r0, a.Row(i))
	}
	return r0
}
