package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFMAF32(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{2, 2, 2, 2}
	c := []float32{10, 10, 10, 10}
	dst := make([]float32, 4)
	FMAF32(dst, a, b, c)
	want := []float32{12, 14, 16, 18}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("FMA lane %d = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestAbsNegSqrtF32(t *testing.T) {
	a := []float32{-4, 9, -16, 25}
	dst := make([]float32, 4)
	AbsF32(dst, a)
	if dst[0] != 4 || dst[2] != 16 {
		t.Fatalf("Abs = %v", dst)
	}
	NegF32(dst, a)
	if dst[0] != 4 || dst[1] != -9 {
		t.Fatalf("Neg = %v", dst)
	}
	SqrtF32(dst, []float32{4, 9, 16, 25})
	want := []float32{2, 3, 4, 5}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Sqrt lane %d = %v", i, dst[i])
		}
	}
}

func TestComparisonsF32(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{2, 2, 2, 2}
	if m := CmpLeF32(a, b); m != 0b0011 {
		t.Errorf("CmpLe = %#b", uint64(m))
	}
	if m := CmpGtF32(a, b); m != 0b1100 {
		t.Errorf("CmpGt = %#b", uint64(m))
	}
	if m := CmpEqF32(a, b); m != 0b0010 {
		t.Errorf("CmpEq = %#b", uint64(m))
	}
	// Lt | Eq == Le, Gt == ^Le (over 4 lanes).
	lt := CmpLtF32(a, b)
	if lt.Or(CmpEqF32(a, b)) != CmpLeF32(a, b) {
		t.Error("Lt|Eq != Le")
	}
	if CmpGtF32(a, b) != CmpLeF32(a, b).AndNot(FullMask(4)).Or(FullMask(4).AndNot(CmpLeF32(a, b))) {
		t.Error("Gt != ~Le")
	}
}

func TestMaskedExtF32(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{10, 20, 30, 40}
	dst := []float32{0, 0, 0, 0}
	MaskSubF32(dst, b, a, Mask(0b0101))
	if dst[0] != 9 || dst[1] != 0 || dst[2] != 27 || dst[3] != 0 {
		t.Fatalf("MaskSub = %v", dst)
	}
	FillF32(dst, 0)
	MaskMulF32(dst, a, b, Mask(0b1010))
	if dst[0] != 0 || dst[1] != 40 || dst[2] != 0 || dst[3] != 160 {
		t.Fatalf("MaskMul = %v", dst)
	}
}

func TestHArgMinAndCount(t *testing.T) {
	a := []float32{3, 1, 4, 1}
	lane, min := HArgMinF32(a)
	if lane != 1 || min != 1 {
		t.Fatalf("HArgMin = %d,%v (ties must pick lowest index)", lane, min)
	}
	if HCountF32(a, 1) != 2 || HCountF32(a, 9) != 0 {
		t.Fatal("HCount wrong")
	}
}

func TestConversions(t *testing.T) {
	i := []int32{-3, 0, 7, 100}
	f := make([]float32, 4)
	CvtI32toF32(f, i)
	if f[0] != -3 || f[3] != 100 {
		t.Fatalf("CvtI32toF32 = %v", f)
	}
	back := make([]int32, 4)
	CvtF32toI32(back, []float32{-3.9, 0.5, 7.1, 100})
	want := []int32{-3, 0, 7, 100} // truncation toward zero
	for k := range want {
		if back[k] != want[k] {
			t.Fatalf("CvtF32toI32 lane %d = %d, want %d", k, back[k], want[k])
		}
	}
}

func TestBitwiseI32(t *testing.T) {
	a := []int32{0b1100, 0b1010}
	b := []int32{0b1010, 0b0110}
	dst := make([]int32, 2)
	AndI32(dst, a, b)
	if dst[0] != 0b1000 || dst[1] != 0b0010 {
		t.Fatalf("And = %v", dst)
	}
	OrI32(dst, a, b)
	if dst[0] != 0b1110 || dst[1] != 0b1110 {
		t.Fatalf("Or = %v", dst)
	}
	XorI32(dst, a, b)
	if dst[0] != 0b0110 || dst[1] != 0b1100 {
		t.Fatalf("Xor = %v", dst)
	}
	ShlI32(dst, a, 2)
	if dst[0] != 0b110000 {
		t.Fatalf("Shl = %v", dst)
	}
	ShrI32(dst, []int32{-8, 8}, 1)
	if dst[0] != -4 || dst[1] != 4 {
		t.Fatalf("Shr (arithmetic) = %v", dst)
	}
	MulI32(dst, []int32{3, -4}, []int32{5, 6})
	if dst[0] != 15 || dst[1] != -24 {
		t.Fatalf("Mul = %v", dst)
	}
}

func TestF64Extensions(t *testing.T) {
	a := []float64{8, 18}
	b := []float64{2, 3}
	dst := make([]float64, 2)
	DivF64(dst, a, b)
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("DivF64 = %v", dst)
	}
	FillF64(dst, 100)
	MaskMinF64(dst, a, b, Mask(0b01))
	if dst[0] != 2 || dst[1] != 100 {
		t.Fatalf("MaskMinF64 = %v", dst)
	}
	base := []float64{0, 10, 20, 30}
	GatherF64(dst, base, []int32{3, 1})
	if dst[0] != 30 || dst[1] != 10 {
		t.Fatalf("GatherF64 = %v", dst)
	}
	if HMaxF64([]float64{1, 7, 3}) != 7 {
		t.Fatal("HMaxF64 wrong")
	}
}

func TestArrayF64(t *testing.T) {
	a, err := NewArrayF64(WidthMIC, 3) // 8 float64 lanes per row
	if err != nil {
		t.Fatal(err)
	}
	if a.Width() != 8 || a.Rows() != 3 {
		t.Fatalf("shape = %dx%d", a.Rows(), a.Width())
	}
	a.Fill(5)
	copy(a.Row(1), []float64{1, 9, 2, 9, 3, 9, 4, 9})
	got := a.ReduceMin(2)
	want := []float64{1, 5, 2, 5, 3, 5, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReduceMin lane %d = %v, want %v", i, got[i], want[i])
		}
	}
	a.Fill(2)
	sum := a.ReduceSum(3)
	for _, v := range sum {
		if v != 6 {
			t.Fatalf("ReduceSum = %v", sum)
		}
	}
	if _, err := NewArrayF64(Width(5), 2); err == nil {
		t.Fatal("accepted bad width")
	}
	if _, err := NewArrayF64(WidthCPU, -1); err == nil {
		t.Fatal("accepted negative rows")
	}
	if cap(a.Row(0)) != 8 {
		t.Fatal("row capacity not clamped")
	}
}

// property: FMA equals separate mul+add for finite inputs.
func TestQuickFMAConsistency(t *testing.T) {
	f := func(av, bv, cv [4]float32) bool {
		a, b, c := av[:], bv[:], cv[:]
		fma := make([]float32, 4)
		FMAF32(fma, a, b, c)
		mul := make([]float32, 4)
		MulF32(mul, a, b)
		add := make([]float32, 4)
		AddF32(add, mul, c)
		for i := range fma {
			if fma[i] != add[i] && !(math.IsNaN(float64(fma[i])) && math.IsNaN(float64(add[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
