package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWidthValid(t *testing.T) {
	valid := []Width{2, 4, 8, 16, 32, 64}
	for _, w := range valid {
		if !w.Valid() {
			t.Errorf("Width(%d).Valid() = false, want true", w)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("Width(%d).Validate() = %v, want nil", w, err)
		}
	}
	invalid := []Width{-4, 0, 1, 3, 5, 6, 7, 12, 17, 128}
	for _, w := range invalid {
		if w.Valid() {
			t.Errorf("Width(%d).Valid() = true, want false", w)
		}
		if err := w.Validate(); err == nil {
			t.Errorf("Width(%d).Validate() = nil, want error", w)
		}
	}
}

func TestWidthDeviceConstants(t *testing.T) {
	if WidthCPU != 4 {
		t.Errorf("WidthCPU = %d, want 4 (SSE4.2 float32 lanes)", WidthCPU)
	}
	if WidthMIC != 16 {
		t.Errorf("WidthMIC = %d, want 16 (IMCI float32 lanes)", WidthMIC)
	}
	if Width(WidthMIC).Lanes64() != 8 {
		t.Errorf("MIC Lanes64 = %d, want 8", Width(WidthMIC).Lanes64())
	}
}

func TestWidthRoundUpGroups(t *testing.T) {
	w := Width(16)
	cases := []struct{ n, up, groups int }{
		{0, 0, 0}, {1, 16, 1}, {16, 16, 1}, {17, 32, 2}, {31, 32, 2}, {32, 32, 2}, {33, 48, 3},
	}
	for _, c := range cases {
		if got := w.RoundUp(c.n); got != c.up {
			t.Errorf("RoundUp(%d) = %d, want %d", c.n, got, c.up)
		}
		if got := w.Groups(c.n); got != c.groups {
			t.Errorf("Groups(%d) = %d, want %d", c.n, got, c.groups)
		}
	}
}

func TestMaskBasics(t *testing.T) {
	m := FullMask(4)
	if m != 0xF {
		t.Fatalf("FullMask(4) = %#x, want 0xF", uint64(m))
	}
	if FullMask(64) != ^Mask(0) {
		t.Fatalf("FullMask(64) should set all bits")
	}
	m = m.Clear(1)
	if m.Bit(1) || !m.Bit(0) || !m.Bit(2) || !m.Bit(3) {
		t.Fatalf("Clear(1) wrong: %#x", uint64(m))
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	if m.Set(1) != 0xF {
		t.Fatalf("Set(1) should restore full mask")
	}
	if !Mask(0).None() || m.None() {
		t.Fatalf("None() wrong")
	}
	a, b := Mask(0b1100), Mask(0b1010)
	if a.And(b) != 0b1000 || a.Or(b) != 0b1110 || a.AndNot(b) != 0b0100 {
		t.Fatalf("mask boolean ops wrong")
	}
}

// property: MinF32 then MaxF32 of the same operands reconstructs a multiset
// {a[i],b[i]} per lane: min+max == a+b.
func TestQuickMinMaxPartition(t *testing.T) {
	f := func(av, bv [8]float32) bool {
		a, b := av[:], bv[:]
		mn := make([]float32, 8)
		mx := make([]float32, 8)
		MinF32(mn, a, b)
		MaxF32(mx, a, b)
		for i := range a {
			if mn[i] > mx[i] {
				return false
			}
			// NaNs are not produced by graph workloads; skip them.
			if math.IsNaN(float64(a[i])) || math.IsNaN(float64(b[i])) {
				continue
			}
			if mn[i]+mx[i] != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// property: masked op touches exactly the enabled lanes.
func TestQuickMaskWriteDiscipline(t *testing.T) {
	f := func(av, bv [8]float32, mbits uint8) bool {
		a, b := av[:], bv[:]
		m := Mask(mbits)
		dst := make([]float32, 8)
		sentinel := float32(-12345)
		FillF32(dst, sentinel)
		MaskAddF32(dst, a, b, m)
		for i := 0; i < 8; i++ {
			if m.Bit(i) {
				if dst[i] != a[i]+b[i] {
					return false
				}
			} else if dst[i] != sentinel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// property: BlendF32 selects b where mask set, a elsewhere.
func TestQuickBlend(t *testing.T) {
	f := func(av, bv [8]float32, mbits uint8) bool {
		a, b := av[:], bv[:]
		m := Mask(mbits)
		dst := make([]float32, 8)
		BlendF32(dst, a, b, m)
		for i := 0; i < 8; i++ {
			want := a[i]
			if m.Bit(i) {
				want = b[i]
			}
			if dst[i] != want && !(math.IsNaN(float64(want)) && math.IsNaN(float64(dst[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// property: horizontal sum equals scalar fold (exact: same order).
func TestQuickHSumMatchesScalarFold(t *testing.T) {
	f := func(av [16]float32) bool {
		var s float32
		for _, v := range av {
			s += v
		}
		got := HSumF32(av[:])
		return got == s || (math.IsNaN(float64(got)) && math.IsNaN(float64(s)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithmeticF32(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{10, 20, 30, 40}
	dst := make([]float32, 4)
	AddF32(dst, a, b)
	want := []float32{11, 22, 33, 44}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Add lane %d = %v, want %v", i, dst[i], want[i])
		}
	}
	SubF32(dst, b, a)
	for i := range a {
		if dst[i] != b[i]-a[i] {
			t.Fatalf("Sub lane %d wrong", i)
		}
	}
	MulF32(dst, a, b)
	for i := range a {
		if dst[i] != a[i]*b[i] {
			t.Fatalf("Mul lane %d wrong", i)
		}
	}
	DivF32(dst, b, a)
	for i := range a {
		if dst[i] != b[i]/a[i] {
			t.Fatalf("Div lane %d wrong", i)
		}
	}
	AddScalarF32(dst, a, 0.5)
	for i := range a {
		if dst[i] != a[i]+0.5 {
			t.Fatalf("AddScalar lane %d wrong", i)
		}
	}
	MulScalarF32(dst, a, 2)
	for i := range a {
		if dst[i] != a[i]*2 {
			t.Fatalf("MulScalar lane %d wrong", i)
		}
	}
}

func TestInPlaceAliasing(t *testing.T) {
	// dst may alias a (the reduction loop does `res = min(res, row)`).
	a := []float32{5, 1, 7, 3}
	b := []float32{4, 2, 8, 2}
	MinF32(a, a, b)
	want := []float32{4, 1, 7, 2}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("in-place Min lane %d = %v, want %v", i, a[i], want[i])
		}
	}
}

func TestCmpLtF32(t *testing.T) {
	a := []float32{1, 5, 2, 9}
	b := []float32{2, 4, 2, 10}
	m := CmpLtF32(a, b)
	if !m.Bit(0) || m.Bit(1) || m.Bit(2) || !m.Bit(3) {
		t.Fatalf("CmpLt mask = %#b", uint64(m))
	}
}

func TestHMinHMax(t *testing.T) {
	a := []float32{3, -1, 7, 0}
	if HMinF32(a) != -1 {
		t.Errorf("HMin = %v, want -1", HMinF32(a))
	}
	if HMaxF32(a) != 7 {
		t.Errorf("HMax = %v, want 7", HMaxF32(a))
	}
}

func TestGatherScatterF32(t *testing.T) {
	base := []float32{0, 10, 20, 30, 40, 50}
	idx := []int32{5, 0, 3, 3}
	dst := make([]float32, 4)
	GatherF32(dst, base, idx)
	want := []float32{50, 0, 30, 30}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Gather lane %d = %v, want %v", i, dst[i], want[i])
		}
	}
	src := []float32{-1, -2, -3, -4}
	ScatterF32(base, src, idx, FullMask(4).Clear(1))
	if base[5] != -1 || base[0] != 0 /* masked off */ || base[3] != -4 /* highest lane wins */ {
		t.Fatalf("Scatter result wrong: %v", base)
	}
}

func TestOpsF64(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	dst := make([]float64, 4)
	AddF64(dst, a, b)
	for i := range a {
		if dst[i] != 5 {
			t.Fatalf("AddF64 lane %d = %v", i, dst[i])
		}
	}
	SubF64(dst, a, b)
	MulF64(dst, a, b)
	MinF64(dst, a, b)
	want := []float64{1, 2, 2, 1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MinF64 lane %d = %v, want %v", i, dst[i], want[i])
		}
	}
	MaxF64(dst, a, b)
	want = []float64{4, 3, 3, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MaxF64 lane %d = %v, want %v", i, dst[i], want[i])
		}
	}
	FillF64(dst, 9)
	MaskAddF64(dst, a, b, Mask(0b0101))
	if dst[0] != 5 || dst[1] != 9 || dst[2] != 5 || dst[3] != 9 {
		t.Fatalf("MaskAddF64 = %v", dst)
	}
	if HSumF64(a) != 10 || HMinF64(a) != 1 {
		t.Fatalf("F64 horizontals wrong")
	}
}

func TestOpsI32(t *testing.T) {
	a := []int32{1, -2, 3, -4}
	b := []int32{-1, 2, -3, 4}
	dst := make([]int32, 4)
	AddI32(dst, a, b)
	for i := range a {
		if dst[i] != 0 {
			t.Fatalf("AddI32 lane %d = %v", i, dst[i])
		}
	}
	SubI32(dst, a, b)
	MinI32(dst, a, b)
	want := []int32{-1, -2, -3, -4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MinI32 lane %d = %v, want %v", i, dst[i], want[i])
		}
	}
	MaxI32(dst, a, b)
	want = []int32{1, 2, 3, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MaxI32 lane %d = %v, want %v", i, dst[i], want[i])
		}
	}
	FillI32(dst, 7)
	MaskAddI32(dst, a, b, Mask(0b0011))
	if dst[0] != 0 || dst[1] != 0 || dst[2] != 7 || dst[3] != 7 {
		t.Fatalf("MaskAddI32 = %v", dst)
	}
	MaskMinI32(dst, a, b, FullMask(4))
	if HSumI32([]int32{1, 2, 3}) != 6 {
		t.Fatalf("HSumI32 wrong")
	}
	if HMinI32(a) != -4 {
		t.Fatalf("HMinI32 wrong")
	}
	m := CmpEqI32([]int32{1, 2, 3, 4}, []int32{1, 0, 3, 0})
	if m != 0b0101 {
		t.Fatalf("CmpEqI32 = %#b", uint64(m))
	}
}

func TestArrayF32Shape(t *testing.T) {
	if _, err := NewArrayF32(Width(3), 4); err == nil {
		t.Fatal("NewArrayF32 accepted invalid width")
	}
	if _, err := NewArrayF32(Width(4), -1); err == nil {
		t.Fatal("NewArrayF32 accepted negative rows")
	}
	a := MustArrayF32(Width(4), 3)
	if a.Width() != 4 || a.Rows() != 3 {
		t.Fatalf("shape = %dx%d, want 3x4", a.Rows(), a.Width())
	}
	a.Set(1, 2, 42)
	if a.At(1, 2) != 42 || a.Row(1)[2] != 42 {
		t.Fatalf("Set/At/Row disagree")
	}
	// Row slices must have capacity clamped to the row (no overrun into the
	// next row via append).
	r := a.Row(0)
	if cap(r) != 4 {
		t.Fatalf("row capacity = %d, want 4", cap(r))
	}
}

func TestMustArrayF32Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustArrayF32 did not panic on invalid width")
		}
	}()
	MustArrayF32(Width(5), 1)
}

func TestArrayReduceMin(t *testing.T) {
	a := MustArrayF32(Width(4), 3)
	copy(a.Row(0), []float32{5, 5, 5, 5})
	copy(a.Row(1), []float32{1, 9, 5, 2})
	copy(a.Row(2), []float32{3, 2, 9, 9})
	got := a.ReduceMin(3)
	want := []float32{1, 2, 5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReduceMin lane %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestArrayReduceSum(t *testing.T) {
	a := MustArrayF32(Width(4), 4)
	for r := 0; r < 4; r++ {
		for l := 0; l < 4; l++ {
			a.Set(r, l, float32(r+1))
		}
	}
	got := a.ReduceSum(4)
	for l := 0; l < 4; l++ {
		if got[l] != 10 {
			t.Fatalf("ReduceSum lane %d = %v, want 10", l, got[l])
		}
	}
	// Reducing a prefix must not touch later rows.
	a.Fill(1)
	a.ReduceSum(2)
	if a.At(2, 0) != 1 || a.At(3, 3) != 1 {
		t.Fatalf("ReduceSum(2) modified rows beyond prefix")
	}
}

func TestArrayI32(t *testing.T) {
	a, err := NewArrayI32(Width(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Width() != 8 || a.Rows() != 2 {
		t.Fatalf("shape wrong")
	}
	a.Fill(3)
	if a.Row(1)[7] != 3 {
		t.Fatalf("Fill wrong")
	}
	if len(a.Raw()) != 16 {
		t.Fatalf("Raw length = %d", len(a.Raw()))
	}
	if _, err := NewArrayI32(Width(7), 2); err == nil {
		t.Fatal("accepted invalid width")
	}
	if _, err := NewArrayI32(Width(8), -2); err == nil {
		t.Fatal("accepted negative rows")
	}
}

// property: ReduceMin over n rows equals per-lane scalar min.
func TestQuickArrayReduceMin(t *testing.T) {
	f := func(rowsRaw [6][4]float32) bool {
		a := MustArrayF32(Width(4), 6)
		for r := range rowsRaw {
			for l, v := range rowsRaw[r] {
				if math.IsNaN(float64(v)) {
					v = 0
				}
				a.Set(r, l, v)
			}
		}
		want := make([]float32, 4)
		for l := 0; l < 4; l++ {
			m := a.At(0, l)
			for r := 1; r < 6; r++ {
				if a.At(r, l) < m {
					m = a.At(r, l)
				}
			}
			want[l] = m
		}
		got := a.ReduceMin(6)
		for l := range want {
			if got[l] != want[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
