package vec

import (
	"fmt"
	"slices"
)

// ArrayF32 is an aligned vector array: `rows` consecutive rows of `width`
// float32 lanes backed by one contiguous allocation. This is the unit the
// Condensed Static Buffer allocates per vertex group ("k aligned vector
// arrays ... with an array size of max_group_degree").
type ArrayF32 struct {
	width int
	data  []float32
}

// NewArrayF32 allocates a zeroed vector array of the given shape.
func NewArrayF32(w Width, rows int) (*ArrayF32, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if rows < 0 {
		return nil, fmt.Errorf("vec: negative row count %d", rows)
	}
	return &ArrayF32{width: int(w), data: make([]float32, rows*int(w))}, nil
}

// MustArrayF32 is NewArrayF32 that panics on invalid shape; for callers that
// validated the width at configuration time.
func MustArrayF32(w Width, rows int) *ArrayF32 {
	a, err := NewArrayF32(w, rows)
	if err != nil {
		panic(err)
	}
	return a
}

// Width returns the lane width of each row.
func (a *ArrayF32) Width() int { return a.width }

// Rows returns the number of rows.
func (a *ArrayF32) Rows() int { return len(a.data) / a.width }

// Row returns row i as a slice aliasing the backing store.
func (a *ArrayF32) Row(i int) []float32 {
	off := i * a.width
	return a.data[off : off+a.width : off+a.width]
}

// At returns the element in row r, lane l.
func (a *ArrayF32) At(r, l int) float32 { return a.data[r*a.width+l] }

// Set stores v into row r, lane l.
func (a *ArrayF32) Set(r, l int, v float32) { a.data[r*a.width+l] = v }

// Fill broadcasts v into every element.
func (a *ArrayF32) Fill(v float32) { FillF32(a.data, v) }

// Raw exposes the backing slice (e.g. for serialization in the comm layer).
func (a *ArrayF32) Raw() []float32 { return a.data }

// ReduceMin folds rows [0,n) with MinF32 into row 0 and returns it.
// This is the paper's SSSP message reduction, one SIMD op per row.
func (a *ArrayF32) ReduceMin(n int) []float32 {
	r0 := a.Row(0)
	for i := 1; i < n; i++ {
		MinF32(r0, r0, a.Row(i))
	}
	return r0
}

// ReduceSum folds rows [0,n) with AddF32 into row 0 and returns it
// (the paper's PageRank reduction).
func (a *ArrayF32) ReduceSum(n int) []float32 {
	r0 := a.Row(0)
	for i := 1; i < n; i++ {
		AddF32(r0, r0, a.Row(i))
	}
	return r0
}

// SortLane sorts the first count cells of lane l ascending, staging the
// strided column through scratch (grown as needed) and returning it for
// reuse. The engine uses this for order-sensitive reductions (float32
// sums): the multiset of a lane's messages is deterministic for a given
// vertex state, so folding the sorted sequence makes the reduction
// byte-deterministic regardless of insertion order. Identity padding above
// count is untouched — x + 0.0 is exact, so the row-order fold over the
// padded tail stays canonical.
func (a *ArrayF32) SortLane(l, count int, scratch []float32) []float32 {
	if count < 2 {
		return scratch
	}
	scratch = scratch[:0]
	for r := 0; r < count; r++ {
		scratch = append(scratch, a.data[r*a.width+l])
	}
	slices.Sort(scratch)
	for r := 0; r < count; r++ {
		a.data[r*a.width+l] = scratch[r]
	}
	return scratch
}

// ArrayI32 is the int32 counterpart of ArrayF32.
type ArrayI32 struct {
	width int
	data  []int32
}

// NewArrayI32 allocates a zeroed int32 vector array.
func NewArrayI32(w Width, rows int) (*ArrayI32, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if rows < 0 {
		return nil, fmt.Errorf("vec: negative row count %d", rows)
	}
	return &ArrayI32{width: int(w), data: make([]int32, rows*int(w))}, nil
}

// Width returns the lane width of each row.
func (a *ArrayI32) Width() int { return a.width }

// Rows returns the number of rows.
func (a *ArrayI32) Rows() int { return len(a.data) / a.width }

// Row returns row i as a slice aliasing the backing store.
func (a *ArrayI32) Row(i int) []int32 {
	off := i * a.width
	return a.data[off : off+a.width : off+a.width]
}

// Fill broadcasts v into every element.
func (a *ArrayI32) Fill(v int32) { FillI32(a.data, v) }

// Raw exposes the backing slice.
func (a *ArrayI32) Raw() []int32 { return a.data }
