package vec

// Row operations on float32 lanes. Each function is the portable equivalent
// of one SIMD instruction: it touches exactly len(dst) lanes and performs the
// same operation in every lane. Slices must have equal length; this is the
// caller's contract, as with real intrinsics, and is checked in debug builds
// via the tests rather than per call (these sit on the hottest path of the
// message-processing step).

// AddF32 sets dst[i] = a[i] + b[i].
func AddF32(dst, a, b []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// SubF32 sets dst[i] = a[i] - b[i].
func SubF32(dst, a, b []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// MulF32 sets dst[i] = a[i] * b[i].
func MulF32(dst, a, b []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] * b[i]
	}
}

// DivF32 sets dst[i] = a[i] / b[i].
func DivF32(dst, a, b []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] / b[i]
	}
}

// MinF32 sets dst[i] = min(a[i], b[i]). The wrapped intrinsic on MIC is
// _mm512_min_ps (the paper's SSSP reduction).
func MinF32(dst, a, b []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		if b[i] < a[i] {
			dst[i] = b[i]
		} else {
			dst[i] = a[i]
		}
	}
}

// MaxF32 sets dst[i] = max(a[i], b[i]).
func MaxF32(dst, a, b []float32) {
	_ = dst[len(a)-1]
	for i := range a {
		if b[i] > a[i] {
			dst[i] = b[i]
		} else {
			dst[i] = a[i]
		}
	}
}

// FillF32 broadcasts s into every lane of dst.
func FillF32(dst []float32, s float32) {
	for i := range dst {
		dst[i] = s
	}
}

// AddScalarF32 sets dst[i] = a[i] + s.
func AddScalarF32(dst, a []float32, s float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] + s
	}
}

// MulScalarF32 sets dst[i] = a[i] * s.
func MulScalarF32(dst, a []float32, s float32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] * s
	}
}

// MaskAddF32 sets dst[i] = a[i] + b[i] for lanes enabled in m; other lanes
// of dst are left unchanged (write-mask semantics).
func MaskAddF32(dst, a, b []float32, m Mask) {
	_ = dst[len(a)-1]
	for i := range a {
		if m.Bit(i) {
			dst[i] = a[i] + b[i]
		}
	}
}

// MaskMinF32 sets dst[i] = min(a[i], b[i]) for lanes enabled in m.
func MaskMinF32(dst, a, b []float32, m Mask) {
	_ = dst[len(a)-1]
	for i := range a {
		if m.Bit(i) {
			if b[i] < a[i] {
				dst[i] = b[i]
			} else {
				dst[i] = a[i]
			}
		}
	}
}

// MaskMaxF32 sets dst[i] = max(a[i], b[i]) for lanes enabled in m.
func MaskMaxF32(dst, a, b []float32, m Mask) {
	_ = dst[len(a)-1]
	for i := range a {
		if m.Bit(i) {
			if b[i] > a[i] {
				dst[i] = b[i]
			} else {
				dst[i] = a[i]
			}
		}
	}
}

// MaskFillF32 broadcasts s into enabled lanes of dst.
func MaskFillF32(dst []float32, s float32, m Mask) {
	for i := range dst {
		if m.Bit(i) {
			dst[i] = s
		}
	}
}

// BlendF32 sets dst[i] = b[i] where m is set, else a[i] (vector select).
func BlendF32(dst, a, b []float32, m Mask) {
	_ = dst[len(a)-1]
	for i := range a {
		if m.Bit(i) {
			dst[i] = b[i]
		} else {
			dst[i] = a[i]
		}
	}
}

// CmpLtF32 returns a mask of lanes where a[i] < b[i].
func CmpLtF32(a, b []float32) Mask {
	var m Mask
	for i := range a {
		if a[i] < b[i] {
			m = m.Set(i)
		}
	}
	return m
}

// HSumF32 returns the horizontal sum of the row.
func HSumF32(a []float32) float32 {
	var s float32
	for _, v := range a {
		s += v
	}
	return s
}

// HMinF32 returns the horizontal minimum of the row.
// It panics on an empty row, as there is no identity to return.
func HMinF32(a []float32) float32 {
	m := a[0]
	for _, v := range a[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// HMaxF32 returns the horizontal maximum of the row.
func HMaxF32(a []float32) float32 {
	m := a[0]
	for _, v := range a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// GatherF32 emulates a gather: dst[i] = base[idx[i]].
func GatherF32(dst []float32, base []float32, idx []int32) {
	_ = dst[len(idx)-1]
	for i := range idx {
		dst[i] = base[idx[i]]
	}
}

// ScatterF32 emulates a scatter: base[idx[i]] = src[i] for enabled lanes.
// Colliding indices within one scatter resolve to the highest enabled lane,
// matching IMCI's defined behaviour.
func ScatterF32(base []float32, src []float32, idx []int32, m Mask) {
	_ = src[len(idx)-1]
	for i := range idx {
		if m.Bit(i) {
			base[idx[i]] = src[i]
		}
	}
}
