package vec

// int32 row operations (vint in the paper's API). TopoSort's in-degree
// decrement and BFS levels use these.

// AddI32 sets dst[i] = a[i] + b[i].
func AddI32(dst, a, b []int32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// SubI32 sets dst[i] = a[i] - b[i].
func SubI32(dst, a, b []int32) {
	_ = dst[len(a)-1]
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// MinI32 sets dst[i] = min(a[i], b[i]).
func MinI32(dst, a, b []int32) {
	_ = dst[len(a)-1]
	for i := range a {
		if b[i] < a[i] {
			dst[i] = b[i]
		} else {
			dst[i] = a[i]
		}
	}
}

// MaxI32 sets dst[i] = max(a[i], b[i]).
func MaxI32(dst, a, b []int32) {
	_ = dst[len(a)-1]
	for i := range a {
		if b[i] > a[i] {
			dst[i] = b[i]
		} else {
			dst[i] = a[i]
		}
	}
}

// FillI32 broadcasts s into every lane of dst.
func FillI32(dst []int32, s int32) {
	for i := range dst {
		dst[i] = s
	}
}

// MaskAddI32 sets dst[i] = a[i] + b[i] for enabled lanes.
func MaskAddI32(dst, a, b []int32, m Mask) {
	_ = dst[len(a)-1]
	for i := range a {
		if m.Bit(i) {
			dst[i] = a[i] + b[i]
		}
	}
}

// MaskMinI32 sets dst[i] = min(a[i], b[i]) for enabled lanes.
func MaskMinI32(dst, a, b []int32, m Mask) {
	_ = dst[len(a)-1]
	for i := range a {
		if m.Bit(i) {
			if b[i] < a[i] {
				dst[i] = b[i]
			} else {
				dst[i] = a[i]
			}
		}
	}
}

// HSumI32 returns the horizontal sum of the row.
func HSumI32(a []int32) int32 {
	var s int32
	for _, v := range a {
		s += v
	}
	return s
}

// HMinI32 returns the horizontal minimum of the row.
func HMinI32(a []int32) int32 {
	m := a[0]
	for _, v := range a[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// CmpEqI32 returns a mask of lanes where a[i] == b[i].
func CmpEqI32(a, b []int32) Mask {
	var m Mask
	for i := range a {
		if a[i] == b[i] {
			m = m.Set(i)
		}
	}
	return m
}
