// Package vec provides portable SIMD-style vector primitives.
//
// The paper's framework exposes vector types (vint, vfloat, vdouble) whose
// operations wrap architecture intrinsics: IMCI on the MIC (512-bit, 16
// float32 lanes) and SSE4.2 on the CPU (128-bit, 4 float32 lanes). Go has no
// intrinsics, so this package reproduces the *semantics*: fixed-width lane
// groups, element-wise arithmetic, write-masked variants, and horizontal
// reductions. The lane width is a runtime parameter so the same code serves
// both simulated devices, exactly as the paper's API is portable between KNC
// and SSE.
//
// All operations are defined on rows: slices whose length equals the lane
// width. A row is the unit the Condensed Static Buffer stores and reduces.
package vec

import "fmt"

// Standard lane widths for the two devices modeled in this reproduction,
// in float32 lanes (w / msgSize with w the SIMD register width in bytes).
const (
	// WidthCPU is the SSE4.2 width: 128-bit registers, 4 float32 lanes.
	WidthCPU = 4
	// WidthMIC is the IMCI width: 512-bit registers, 16 float32 lanes.
	WidthMIC = 16
	// MaxWidth bounds lane widths so masks fit in a uint64.
	MaxWidth = 64
)

// Width is a SIMD lane width in scalar elements.
type Width int

// Valid reports whether w is a supported lane width: a power of two
// between 2 and MaxWidth.
func (w Width) Valid() bool {
	return w >= 2 && w <= MaxWidth && w&(w-1) == 0
}

// Validate returns an error describing why w is not a usable lane width.
func (w Width) Validate() error {
	if !w.Valid() {
		return fmt.Errorf("vec: invalid lane width %d (want power of two in [2,%d])", int(w), MaxWidth)
	}
	return nil
}

// Lanes64 returns the number of float64 lanes for the same register width.
// A 512-bit register holds 16 float32 or 8 float64.
func (w Width) Lanes64() int { return int(w) / 2 }

// RoundUp returns the smallest multiple of w that is >= n.
func (w Width) RoundUp(n int) int {
	k := int(w)
	return (n + k - 1) / k * k
}

// Groups returns how many rows of width w are needed to cover n elements.
func (w Width) Groups(n int) int {
	k := int(w)
	return (n + k - 1) / k
}
