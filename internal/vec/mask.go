package vec

import "math/bits"

// Mask is a per-lane write mask, one bit per lane (bit i = lane i), mirroring
// the hardware mask registers of IMCI. Lane widths are capped at 64 so a
// mask always fits.
type Mask uint64

// FullMask returns a mask with the low n lanes set.
func FullMask(n int) Mask {
	if n >= 64 {
		return ^Mask(0)
	}
	return Mask(1)<<uint(n) - 1
}

// Bit reports whether lane i is enabled.
func (m Mask) Bit(i int) bool { return m&(1<<uint(i)) != 0 }

// Set returns m with lane i enabled.
func (m Mask) Set(i int) Mask { return m | 1<<uint(i) }

// Clear returns m with lane i disabled.
func (m Mask) Clear(i int) Mask { return m &^ (1 << uint(i)) }

// Count returns the number of enabled lanes.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// None reports whether no lane is enabled.
func (m Mask) None() bool { return m == 0 }

// And returns the intersection of two masks.
func (m Mask) And(o Mask) Mask { return m & o }

// Or returns the union of two masks.
func (m Mask) Or(o Mask) Mask { return m | o }

// AndNot returns lanes in m that are not in o.
func (m Mask) AndNot(o Mask) Mask { return m &^ o }
