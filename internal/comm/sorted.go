package comm

import (
	"cmp"
	"slices"

	"hetgraph/internal/graph"
)

// SortingCombiner is the determinism-preserving variant of Combiner for
// reductions that are order-sensitive in floating point (PageRank's float32
// sum). Where Combiner eagerly combines duplicates in arrival order — which
// varies run to run under parallel generation — this one buffers every
// value per destination and folds each destination's values in ascending
// sorted order at drain time. The multiset of values a destination receives
// is deterministic for a given vertex state, so the sorted-order fold makes
// the combined result byte-deterministic. Destinations drain in ascending
// vertex order for a deterministic wire layout as well.
//
// The price is buffering all duplicates instead of one running value per
// destination; remote (cut-edge) traffic is a small fraction of total
// messages for any sensible partition, so the engine pays it only for apps
// that declare an order-sensitive reduction.
type SortingCombiner[T cmp.Ordered] struct {
	combine func(a, b T) T
	vals    [][]T
	touched []graph.VertexID
}

// NewSortingCombiner creates a sorting combiner over n destination vertices.
func NewSortingCombiner[T cmp.Ordered](n int, combine func(a, b T) T) *SortingCombiner[T] {
	return &SortingCombiner[T]{combine: combine, vals: make([][]T, n)}
}

// Add buffers one remote message. Not safe for concurrent use (same
// contract as Combiner.Add).
func (c *SortingCombiner[T]) Add(dst graph.VertexID, v T) {
	if len(c.vals[dst]) == 0 {
		c.touched = append(c.touched, dst)
	}
	c.vals[dst] = append(c.vals[dst], v)
}

// fold combines one destination's buffered values in sorted order and
// resets its buffer.
func (c *SortingCombiner[T]) fold(dst graph.VertexID) T {
	vs := c.vals[dst]
	slices.Sort(vs)
	acc := vs[0]
	for _, v := range vs[1:] {
		acc = c.combine(acc, v)
	}
	c.vals[dst] = vs[:0]
	return acc
}

// Drain appends the combined messages to out in ascending destination
// order, resets the combiner, and returns out.
func (c *SortingCombiner[T]) Drain(out []Msg[T]) []Msg[T] {
	slices.Sort(c.touched)
	for _, dst := range c.touched {
		out = append(out, Msg[T]{Dst: dst, Val: c.fold(dst)})
	}
	c.touched = c.touched[:0]
	return out
}

// DrainRouted distributes the combined messages into per-rank buckets in
// ascending destination order, resets the combiner, and returns the
// buckets (same contract as Combiner.DrainRouted).
func (c *SortingCombiner[T]) DrainRouted(out [][]Msg[T], rankOf func(graph.VertexID) int) [][]Msg[T] {
	slices.Sort(c.touched)
	for _, dst := range c.touched {
		out[rankOf(dst)] = append(out[rankOf(dst)], Msg[T]{Dst: dst, Val: c.fold(dst)})
	}
	c.touched = c.touched[:0]
	return out
}

// Len returns the number of distinct destinations currently held.
func (c *SortingCombiner[T]) Len() int { return len(c.touched) }
