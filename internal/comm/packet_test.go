package comm

import (
	"errors"
	"testing"

	"hetgraph/internal/machine"
)

func TestPacketRoundTripF32(t *testing.T) {
	msgs := []Msg[float32]{{Dst: 0, Val: 1.5}, {Dst: 7, Val: -0.25}, {Dst: 1 << 20, Val: 3e8}}
	h := wireHeader{epoch: 3, seq: 11, active: 42}
	b := encodePacketF32(h, msgs)
	got, gotMsgs, err := decodePacket(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.epoch != 3 || got.seq != 11 || got.active != 42 || got.headerOnly {
		t.Fatalf("header round trip: %+v", got)
	}
	if len(gotMsgs) != len(msgs) {
		t.Fatalf("got %d msgs, want %d", len(gotMsgs), len(msgs))
	}
	for i := range msgs {
		if gotMsgs[i] != msgs[i] {
			t.Errorf("msg %d: %+v != %+v", i, gotMsgs[i], msgs[i])
		}
	}
}

func TestPacketRoundTripEmpty(t *testing.T) {
	b := encodePacketF32(wireHeader{epoch: 1, seq: 0, active: 5}, nil)
	h, msgs, err := decodePacket(b)
	if err != nil || len(msgs) != 0 || h.active != 5 {
		t.Fatalf("empty round trip: %+v, %v, %v", h, msgs, err)
	}
}

func TestPacketRoundTripHeaderOnly(t *testing.T) {
	b := encodeHeaderOnly(wireHeader{epoch: 2, seq: 9, active: 17, nmsgs: 4, msgBytes: 16})
	h, msgs, err := decodePacket(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !h.headerOnly || h.epoch != 2 || h.seq != 9 || h.active != 17 || h.nmsgs != 4 || h.msgBytes != 16 {
		t.Fatalf("header-only round trip: %+v", h)
	}
	if msgs != nil {
		t.Fatalf("header-only decode returned payload %v", msgs)
	}
}

func TestPacketDecodeDetectsEveryBitFlip(t *testing.T) {
	// Flipping any single byte anywhere in the image — magic, header,
	// payload, or the CRC trailer itself — must be detected.
	b := encodePacketF32(wireHeader{epoch: 1, seq: 2, active: 3}, []Msg[float32]{{Dst: 4, Val: 5}, {Dst: 6, Val: 7}})
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x41
		if _, _, err := decodePacket(mut); !errors.Is(err, ErrCorruptPacket) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorruptPacket", i, err)
		}
	}
}

func TestPacketDecodeDetectsTruncation(t *testing.T) {
	b := encodePacketF32(wireHeader{epoch: 1, seq: 2, active: 3}, []Msg[float32]{{Dst: 4, Val: 5}})
	for n := 0; n < len(b); n++ {
		if _, _, err := decodePacket(b[:n]); !errors.Is(err, ErrCorruptPacket) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorruptPacket", n, err)
		}
	}
	if _, _, err := decodePacket(nil); !errors.Is(err, ErrCorruptPacket) {
		t.Fatalf("nil image: err = %v, want ErrCorruptPacket", err)
	}
}

func TestCorruptPacketFlipsOnlyTheCopy(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	p := encodePacket(n, []Msg[float32]{{Dst: 1, Val: 2}}, 1, 0, 0)
	orig := append([]byte(nil), p.wire...)
	c := corruptPacket(p, 3)
	if _, _, err := decodePacket(c.wire); !errors.Is(err, ErrCorruptPacket) {
		t.Fatalf("corrupted copy still decodes: %v", err)
	}
	if string(p.wire) != string(orig) {
		t.Fatal("corruptPacket mutated the original wire image")
	}
	if _, _, err := decodePacket(p.wire); err != nil {
		t.Fatalf("original no longer decodes: %v", err)
	}
}
