package comm

import (
	"bytes"
	"testing"
)

// FuzzDecodePacket throws arbitrary byte strings at the checksummed packet
// decoder. The properties: decodePacket never panics whatever the input; an
// accepted image re-encodes byte-identically (the encoding is canonical, so
// a verified retransmission is exactly the original packet); and flipping
// any byte of an accepted image makes it rejected (no undetected
// single-byte corruption).
func FuzzDecodePacket(f *testing.F) {
	// Valid full packets.
	f.Add(encodePacketF32(wireHeader{epoch: 1, seq: 2, active: 3},
		[]Msg[float32]{{Dst: 4, Val: 5}, {Dst: 6, Val: -7.5}}))
	f.Add(encodePacketF32(wireHeader{epoch: 0, seq: 0, active: 0}, nil))
	// Valid header-only packet.
	f.Add(encodeHeaderOnly(wireHeader{epoch: 9, seq: 8, active: 7, nmsgs: 6, msgBytes: 16}))
	// Truncated.
	f.Add(encodePacketF32(wireHeader{epoch: 1, seq: 1, active: 1}, []Msg[float32]{{Dst: 1, Val: 1}})[:20])
	// Bit-flipped.
	flipped := encodePacketF32(wireHeader{epoch: 2, seq: 3, active: 4}, []Msg[float32]{{Dst: 9, Val: 1}})
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	// Garbage.
	f.Add([]byte("HGW1 but not really a packet"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, msgs, err := decodePacket(data)
		if err != nil {
			return
		}
		var again []byte
		if h.headerOnly {
			again = encodeHeaderOnly(h)
		} else {
			again = encodePacketF32(h, msgs)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("accepted image is not canonical: %x re-encodes to %x", data, again)
		}
		if len(data) <= 256 { // bound the quadratic flip scan
			for i := range data {
				mut := append([]byte(nil), data...)
				mut[i] ^= 0x01
				if _, _, err := decodePacket(mut); err == nil {
					t.Fatalf("single-bit flip at byte %d of %x went undetected", i, data)
				}
			}
		}
	})
}
