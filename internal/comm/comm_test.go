package comm

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
)

func TestNetValidation(t *testing.T) {
	if _, err := NewNet[float32](machine.PCIe(), 0); err == nil {
		t.Error("accepted zero msgBytes")
	}
	n, err := NewNet[float32](machine.PCIe(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint(2); err == nil {
		t.Error("accepted rank 2")
	}
	e0, err := n.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if e0.Rank() != 0 {
		t.Error("rank wrong")
	}
}

func TestExchangeBothDirections(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var recv0, recv1 []Msg[float32]
	var act0, act1 int64
	var st0, st1 Stats
	var err0, err1 error
	go func() {
		defer wg.Done()
		recv0, act0, st0, err0 = e0.Exchange([]Msg[float32]{{Dst: 1, Val: 10}, {Dst: 2, Val: 20}}, 7)
	}()
	go func() {
		defer wg.Done()
		recv1, act1, st1, err1 = e1.Exchange([]Msg[float32]{{Dst: 9, Val: 90}}, 3)
	}()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("exchange errors: %v, %v", err0, err1)
	}
	if len(recv0) != 1 || recv0[0].Dst != 9 || recv0[0].Val != 90 {
		t.Errorf("rank 0 received %v", recv0)
	}
	if len(recv1) != 2 || recv1[0].Val != 10 {
		t.Errorf("rank 1 received %v", recv1)
	}
	if act0 != 3 || act1 != 7 {
		t.Errorf("active counts: %d %d", act0, act1)
	}
	if st0.MsgsSent != 2 || st0.MsgsRecv != 1 || st0.BytesSent != 16 || st0.BytesRecv != 8 {
		t.Errorf("rank 0 stats %+v", st0)
	}
	// Full-duplex: both ranks see the same round time (slower direction).
	if st0.SimSeconds != st1.SimSeconds {
		t.Errorf("asymmetric sim time: %v vs %v", st0.SimSeconds, st1.SimSeconds)
	}
	if st0.SimSeconds <= 0 {
		t.Error("non-positive sim time")
	}
}

func TestExchangeEmptyPayloadsNoDeadlock(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	for r, e := range []*Endpoint[float32]{e0, e1} {
		go func(r int, e *Endpoint[float32]) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				recv, _, st, err := e.Exchange(nil, 0)
				if err != nil {
					t.Errorf("zero-message round %d: %v", i, err)
					return
				}
				if len(recv) != 0 {
					t.Errorf("unexpected messages")
					return
				}
				if st.SimSeconds < machine.PCIe().LatencyUS*1e-6 {
					t.Errorf("round cheaper than latency")
					return
				}
			}
		}(r, e)
	}
	wg.Wait()
}

func TestExchangeTimeGrowsWithBytes(t *testing.T) {
	link := machine.PCIe()
	n, _ := NewNet[float32](link, 4)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	run := func(k int) float64 {
		msgs := make([]Msg[float32], k)
		var st Stats
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); _, _, st, _ = e0.Exchange(msgs, 0) }()
		go func() { defer wg.Done(); _, _, _, _ = e1.Exchange(nil, 0) }()
		wg.Wait()
		return st.SimSeconds
	}
	small, big := run(10), run(1_000_000)
	if big <= small {
		t.Errorf("1M messages (%v s) not slower than 10 (%v s)", big, small)
	}
}

func TestCombinerCombines(t *testing.T) {
	min := func(a, b float32) float32 {
		if a < b {
			return a
		}
		return b
	}
	c := NewCombiner(8, min)
	c.Add(3, 5)
	c.Add(3, 2)
	c.Add(3, 9)
	c.Add(1, 7)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	out := c.Drain(nil)
	if len(out) != 2 {
		t.Fatalf("Drain len %d", len(out))
	}
	// First-touch order: 3 then 1.
	if out[0].Dst != 3 || out[0].Val != 2 {
		t.Errorf("combined[0] = %+v, want {3 2}", out[0])
	}
	if out[1].Dst != 1 || out[1].Val != 7 {
		t.Errorf("combined[1] = %+v", out[1])
	}
	// Drain resets.
	if c.Len() != 0 {
		t.Error("Drain did not reset")
	}
	c.Add(3, 100)
	out = c.Drain(nil)
	if out[0].Val != 100 {
		t.Errorf("stale value after reset: %v", out[0].Val)
	}
}

func TestCombinerMerge(t *testing.T) {
	sum := func(a, b float32) float32 { return a + b }
	a := NewCombiner(4, sum)
	b := NewCombiner(4, sum)
	a.Add(0, 1)
	a.Add(2, 5)
	b.Add(2, 7)
	b.Add(3, 9)
	a.Merge(b)
	got := map[int32]float32{}
	for _, m := range a.Drain(nil) {
		got[m.Dst] = m.Val
	}
	if got[0] != 1 || got[2] != 12 || got[3] != 9 {
		t.Errorf("merged = %v", got)
	}
}

func TestExchangeCombinedFlow(t *testing.T) {
	// Remote messages for the same destination combine before the wire:
	// the peer receives one message per destination.
	min := func(a, b float32) float32 {
		if a < b {
			return a
		}
		return b
	}
	c := NewCombiner(16, min)
	for i := 0; i < 100; i++ {
		c.Add(5, float32(100-i))
	}
	n, _ := NewNet[float32](machine.PCIe(), 4)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var recv []Msg[float32]
	go func() { defer wg.Done(); _, _, _, _ = e0.Exchange(c.Drain(nil), 0) }()
	go func() { defer wg.Done(); recv, _, _, _ = e1.Exchange(nil, 0) }()
	wg.Wait()
	if len(recv) != 1 || recv[0].Dst != 5 || recv[0].Val != 1 {
		t.Errorf("combined exchange delivered %v", recv)
	}
}

// property: for a commutative, associative reduction, the combiner's result
// per destination is order-independent.
func TestQuickCombinerOrderIndependent(t *testing.T) {
	min := func(a, b float32) float32 {
		if a < b {
			return a
		}
		return b
	}
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		c1 := NewCombiner(16, min)
		c2 := NewCombiner(16, min)
		for _, r := range raw {
			c1.Add(int32(r%16), float32(r/16))
		}
		for i := len(raw) - 1; i >= 0; i-- {
			c2.Add(int32(raw[i]%16), float32(raw[i]/16))
		}
		m1 := map[int32]float32{}
		for _, m := range c1.Drain(nil) {
			m1[m.Dst] = m.Val
		}
		m2 := map[int32]float32{}
		for _, m := range c2.Drain(nil) {
			m2[m.Dst] = m.Val
		}
		if len(m1) != len(m2) {
			return false
		}
		for k, v := range m1 {
			if m2[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExchangeManyRounds(t *testing.T) {
	// Sustained ping-pong: per-round payloads must never cross rounds.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan string, 2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			recv, _, _, err := e0.Exchange([]Msg[float32]{{Dst: 0, Val: float32(i)}}, int64(i))
			if err != nil || len(recv) != 1 || recv[0].Val != float32(-i) {
				errs <- "rank 0 round payload mismatch"
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			recv, active, _, err := e1.Exchange([]Msg[float32]{{Dst: 1, Val: float32(-i)}}, 0)
			if err != nil || len(recv) != 1 || recv[0].Val != float32(i) || active != int64(i) {
				errs <- "rank 1 round payload mismatch"
				return
			}
		}
	}()
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// --- fault tolerance ---

func TestExchangeTimeoutReturnsDeviceFailed(t *testing.T) {
	// Regression: a rank whose peer never shows up must get a typed
	// DeviceFailedError within the deadline instead of hanging forever.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetTimeout(30 * time.Millisecond)
	e0, _ := n.Endpoint(0)
	done := make(chan error, 1)
	go func() {
		_, _, _, err := e0.Exchange([]Msg[float32]{{Dst: 1, Val: 1}}, 1)
		done <- err
	}()
	select {
	case err := <-done:
		var dfe *DeviceFailedError
		if !errors.As(err, &dfe) {
			t.Fatalf("want DeviceFailedError, got %v", err)
		}
		if dfe.Rank != 1 {
			t.Errorf("blamed rank %d, want peer rank 1", dfe.Rank)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("exchange hung past its deadline")
	}
	// Once declared dead, the next round fails fast from either side.
	start := time.Now()
	_, _, _, err := e0.Exchange(nil, 0)
	if err == nil {
		t.Fatal("second exchange succeeded against a dead peer")
	}
	if time.Since(start) > 20*time.Millisecond {
		t.Errorf("dead-peer exchange waited %v; want fast failure", time.Since(start))
	}
	e1, _ := n.Endpoint(1)
	if _, _, _, err := e1.Exchange(nil, 0); err == nil {
		t.Error("dead rank's own exchange succeeded")
	}
}

func TestExchangeAsymmetricPayloads(t *testing.T) {
	// One side floods, the other sends nothing; both directions complete
	// and the stats reflect each side's own view.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	big := make([]Msg[float32], 10_000)
	for i := range big {
		big[i] = Msg[float32]{Dst: graph.VertexID(i), Val: float32(i)}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	var st0, st1 Stats
	var recv1 []Msg[float32]
	go func() { defer wg.Done(); _, _, st0, _ = e0.Exchange(big, 5) }()
	go func() { defer wg.Done(); recv1, _, st1, _ = e1.Exchange(nil, 0) }()
	wg.Wait()
	if len(recv1) != len(big) || recv1[9999].Val != 9999 {
		t.Fatalf("rank 1 received %d messages", len(recv1))
	}
	if st0.MsgsSent != 10_000 || st0.MsgsRecv != 0 || st1.MsgsSent != 0 || st1.MsgsRecv != 10_000 {
		t.Errorf("asymmetric stats wrong: %+v / %+v", st0, st1)
	}
	if st0.SimSeconds != st1.SimSeconds {
		t.Errorf("full-duplex round time differs: %v vs %v", st0.SimSeconds, st1.SimSeconds)
	}
}

func TestExchangeInjectedDrop(t *testing.T) {
	plan, err := fault.Parse("rank1:drop@2")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetInjector(inj)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	errs := [2]error{}
	steps := [2]int{}
	run := func(r int, e *Endpoint[float32]) {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, _, _, err := e.Exchange(nil, 0); err != nil {
				errs[r] = err
				return
			}
			steps[r]++
		}
	}
	go run(0, e0)
	go run(1, e1)
	wg.Wait()
	var d0, d1 *DeviceFailedError
	if !errors.As(errs[0], &d0) || !errors.As(errs[1], &d1) {
		t.Fatalf("want DeviceFailedError on both ranks, got %v / %v", errs[0], errs[1])
	}
	if d0.Rank != 1 || d1.Rank != 1 {
		t.Errorf("both ranks must blame rank 1, got %d / %d", d0.Rank, d1.Rank)
	}
	if !d1.Injected {
		t.Error("victim's error not marked injected")
	}
	if steps[0] != 2 || steps[1] != 2 {
		t.Errorf("completed rounds %v, want 2 on each rank before the drop at step 2", steps)
	}
}

func TestExchangeTransientLinkFaultRetries(t *testing.T) {
	plan, err := fault.Parse("rank0:fail@1x3")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetInjector(inj)
	n.SetRetryBase(10 * time.Microsecond)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var st0 Stats
	var err0 error
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			var st Stats
			_, _, st, err0 = e0.Exchange(nil, 0)
			st0.Retries += st.Retries
			if err0 != nil {
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, _, _, err := e1.Exchange(nil, 0); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	if err0 != nil {
		t.Fatalf("transient fault not retried away: %v", err0)
	}
	if st0.Retries != 3 {
		t.Errorf("retries = %d, want 3", st0.Retries)
	}
}

func TestExchangePersistentLinkFaultDeclaresPeerDead(t *testing.T) {
	plan, err := fault.Parse("rank0:fail@0x100")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetInjector(inj)
	n.SetRetryBase(10 * time.Microsecond)
	e0, _ := n.Endpoint(0)
	_, _, _, err = e0.Exchange(nil, 0)
	var dfe *DeviceFailedError
	if !errors.As(err, &dfe) || dfe.Rank != 1 {
		t.Fatalf("persistent link fault: got %v, want DeviceFailedError blaming rank 1", err)
	}
}

func TestAbortWakesPeer(t *testing.T) {
	// A rank that fails outside the exchange (recovered panic) aborts; its
	// peer, already waiting in Exchange with no deadline set, must wake.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	done := make(chan error, 1)
	go func() {
		_, _, _, err := e0.Exchange(nil, 0)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	e1.Abort()
	select {
	case err := <-done:
		var dfe *DeviceFailedError
		if !errors.As(err, &dfe) || dfe.Rank != 1 {
			t.Fatalf("got %v, want DeviceFailedError blaming rank 1", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer did not wake after Abort")
	}
}

func TestExchangeInjectedDelayUnderDeadline(t *testing.T) {
	plan, err := fault.Parse("rank0:delay@0:2ms")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetInjector(inj)
	n.SetTimeout(500 * time.Millisecond)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var err0, err1 error
	go func() { defer wg.Done(); _, _, _, err0 = e0.Exchange(nil, 0) }()
	go func() { defer wg.Done(); _, _, _, err1 = e1.Exchange(nil, 0) }()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("delayed-but-alive round failed: %v / %v", err0, err1)
	}
}

func TestResumeHandshakeAgree(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		ep, _ := n.Endpoint(r)
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := ep.ResumeHandshake(7)
			if err != nil || got != 7 {
				t.Errorf("handshake: gen %d, err %v, want 7/nil", got, err)
			}
		}()
	}
	wg.Wait()
}

func TestResumeHandshakeMismatch(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	gens := [2]uint64{7, 8}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		ep, _ := n.Endpoint(r)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, errs[r] = ep.ResumeHandshake(gens[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d accepted mismatched resume generations", r)
		}
		if !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("rank %d: %v, want generation mismatch", r, err)
		}
	}
}

func TestResumeHandshakeDeadPeer(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetTimeout(50 * time.Millisecond)
	ep0, _ := n.Endpoint(0)
	ep1, _ := n.Endpoint(1)
	ep1.Abort()
	_, err := ep0.ResumeHandshake(3)
	var dfe *DeviceFailedError
	if !errors.As(err, &dfe) || dfe.Rank != 1 {
		t.Fatalf("handshake with dead peer: %v, want *DeviceFailedError{Rank: 1}", err)
	}
}

func TestExchangeDropsStaleEpochPacket(t *testing.T) {
	// A packet stamped with an old epoch that lands after the membership
	// change (NewEpoch drains the buffers, but a rank dying mid-round can
	// park its last send later) must be count-and-dropped by the receiver
	// rather than delivered as superstep payload.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	old := n.Epoch()
	n.NewEpoch()
	n.chans[1][0] <- encodePacket(n, []Msg[float32]{{Dst: 9, Val: 99}}, 42, old, 0)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var recv0 []Msg[float32]
	var act0 int64
	var st0, st1 Stats
	var err0, err1 error
	go func() {
		defer wg.Done()
		recv0, act0, st0, err0 = e0.Exchange(nil, 0)
	}()
	go func() {
		defer wg.Done()
		_, _, st1, err1 = e1.Exchange([]Msg[float32]{{Dst: 3, Val: 7}}, 1)
	}()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("exchange errors: %v / %v", err0, err1)
	}
	if len(recv0) != 1 || recv0[0].Dst != 3 || recv0[0].Val != 7 {
		t.Fatalf("rank 0 received %v, want only the fresh-epoch payload", recv0)
	}
	if act0 != 1 {
		t.Errorf("activeRemote = %d leaked from the stale packet, want 1", act0)
	}
	if st0.StaleDrops != 1 {
		t.Errorf("rank 0 StaleDrops = %d, want 1", st0.StaleDrops)
	}
	if st1.StaleDrops != 0 {
		t.Errorf("rank 1 StaleDrops = %d, want 0", st1.StaleDrops)
	}
}

func TestExchangeDropsWrongSeqPacket(t *testing.T) {
	// Same fence, other dimension: a current-epoch packet with the wrong
	// superstep sequence number (e.g. a duplicate from a replayed rank) is
	// dropped, not delivered.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	// seq 5 is a "future" packet relative to the receiver's round 0: the
	// fence rejects it as stale, never delivers it.
	n.chans[1][0] <- encodePacket(n, []Msg[float32]{{Dst: 1, Val: 11}}, 0, n.Epoch(), 5)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var recv0 []Msg[float32]
	var st0 Stats
	go func() { defer wg.Done(); recv0, _, st0, _ = e0.Exchange(nil, 0) }()
	go func() { defer wg.Done(); _, _, _, _ = e1.Exchange(nil, 0) }()
	wg.Wait()
	if len(recv0) != 0 {
		t.Fatalf("rank 0 received %v from a wrong-seq packet", recv0)
	}
	if st0.StaleDrops != 1 {
		t.Errorf("StaleDrops = %d, want 1", st0.StaleDrops)
	}
}

func TestRejoinHandshakeAgree(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	epoch := n.NewEpoch()
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		ep, _ := n.Endpoint(r)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ep.RejoinHandshake(epoch, 3, 7); err != nil {
				t.Errorf("rejoin handshake: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestRejoinHandshakeMismatch(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	epoch := n.NewEpoch()
	steps := [2]int64{7, 8}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		ep, _ := n.Endpoint(r)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = ep.RejoinHandshake(epoch, 3, steps[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d accepted mismatched rejoin supersteps", r)
		}
		if !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("rank %d: %v, want rejoin mismatch", r, err)
		}
	}
}

func TestRejoinHandshakeWrongEpoch(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.NewEpoch()
	ep, _ := n.Endpoint(0)
	if err := ep.RejoinHandshake(99, 0, 0); err == nil {
		t.Fatal("accepted a handshake for an epoch the net is not in")
	}
}

func TestRejoinHandshakeDeadPeer(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetTimeout(50 * time.Millisecond)
	epoch := n.NewEpoch()
	ep0, _ := n.Endpoint(0)
	ep1, _ := n.Endpoint(1)
	ep1.Abort()
	err := ep0.RejoinHandshake(epoch, 1, 2)
	var dfe *DeviceFailedError
	if !errors.As(err, &dfe) || dfe.Rank != 1 {
		t.Fatalf("rejoin with dead peer: %v, want *DeviceFailedError{Rank: 1}", err)
	}
}

func TestNewEpochDrainsParkedPayloads(t *testing.T) {
	// Two ranks of a four-rank group fail mid-round after the survivors'
	// sends to each other were already buffered. The degrade path bumps the
	// epoch and shrinks membership to the two survivors; their first
	// exchange of the new epoch must not deadlock on link buffers still
	// holding the failed round's payloads (the buffers are capacity-1, so
	// without the NewEpoch drain both survivors would block in their send
	// loop forever — the receive-side epoch fence never gets a chance).
	n, _ := NewGroupNet[float32](machine.PCIe(), 4, 4)
	n.chans[0][2] <- packet[float32]{msgs: []Msg[float32]{{Dst: 5, Val: 50}}, epoch: n.Epoch(), seq: 3}
	n.chans[2][0] <- packet[float32]{msgs: []Msg[float32]{{Dst: 6, Val: 60}}, epoch: n.Epoch(), seq: 3}
	n.NewEpoch()
	n.SetMembers([]int{0, 2})
	e0, _ := n.Endpoint(0)
	e2, _ := n.Endpoint(2)
	e0.SetStep(3)
	e2.SetStep(3)
	var wg sync.WaitGroup
	wg.Add(2)
	var recv0, recv2 []Msg[float32]
	var err0, err2 error
	go func() {
		defer wg.Done()
		out := make([][]Msg[float32], 4)
		out[2] = []Msg[float32]{{Dst: 1, Val: 1}}
		recv0, _, _, err0 = e0.ExchangeAll(out, 0)
	}()
	go func() {
		defer wg.Done()
		out := make([][]Msg[float32], 4)
		out[0] = []Msg[float32]{{Dst: 2, Val: 2}}
		recv2, _, _, err2 = e2.ExchangeAll(out, 0)
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("post-degrade ExchangeAll deadlocked on parked payloads")
	}
	if err0 != nil || err2 != nil {
		t.Fatalf("exchange errors: %v / %v", err0, err2)
	}
	if len(recv0) != 1 || recv0[0].Val != 2 {
		t.Errorf("rank 0 received %v, want the fresh payload only", recv0)
	}
	if len(recv2) != 1 || recv2[0].Val != 1 {
		t.Errorf("rank 2 received %v, want the fresh payload only", recv2)
	}
}

func TestNewEpochClearsDeadMarkers(t *testing.T) {
	// NewEpoch must make a previously-declared-dead net usable again: after
	// the bump, a normal exchange succeeds where it would have failed fast.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	e1.Abort()
	if _, _, _, err := e0.Exchange(nil, 0); err == nil {
		t.Fatal("exchange against an aborted peer succeeded")
	}
	n.NewEpoch()
	f0, _ := n.Endpoint(0)
	f1, _ := n.Endpoint(1)
	f0.SetStep(1)
	f1.SetStep(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var err0, err1 error
	go func() { defer wg.Done(); _, _, _, err0 = f0.Exchange(nil, 0) }()
	go func() { defer wg.Done(); _, _, _, err1 = f1.Exchange(nil, 0) }()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("post-NewEpoch exchange failed: %v / %v", err0, err1)
	}
}

func TestSetStepAlignsRounds(t *testing.T) {
	n, _ := NewNet[float32](machine.PCIe(), 4)
	ep, _ := n.Endpoint(0)
	ep.SetStep(5)
	if ep.Step() != 5 {
		t.Fatalf("Step() = %d after SetStep(5)", ep.Step())
	}
}
