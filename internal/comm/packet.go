// Wire-level packet encoding with end-to-end integrity checking.
//
// Every exchange payload is serialized into a checksummed wire image before
// it enters a link and verified on receive, so flipped bytes anywhere in the
// packet — header or payload — are detected and repaired by retransmission
// instead of being delivered as live data. The layout (all integers
// little-endian):
//
//	offset size field
//	0      4    magic "HGW1"
//	4      1    version (currently 1)
//	5      1    flags (bit 0: header-only — payload carried out of band)
//	6      2    msgBytes: wire size of one message value
//	8      8    epoch: communication epoch the packet belongs to
//	16     8    seq: sender's superstep sequence number
//	24     8    active: sender's active-vertex count
//	32     4    nmsgs: number of messages
//	36     n    payload: nmsgs × (4-byte destination + msgBytes value)
//	36+n   4    CRC32C (Castagnoli) over every preceding byte
//
// float32 nets (the f32 engines) serialize their full payload; nets over
// other message types have no registered value codec, so their wire image is
// header-only (flag bit 0) and the in-memory messages travel alongside it —
// header corruption is still CRC-detected, which is what the epoch/seq
// fencing depends on.
package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"hetgraph/internal/graph"
)

const (
	packetMagic   = "HGW1"
	packetVersion = 1

	flagHeaderOnly = 1 << 0

	wireHeaderLen = 36
	wireCRCLen    = 4
	// f32WireBytes is the wire size of one float32 message value.
	f32WireBytes = 4
)

// ErrCorruptPacket is wrapped by every decode failure: short buffers, bad
// magic, unknown versions, length mismatches, and checksum mismatches all
// mean the wire image cannot be trusted.
var ErrCorruptPacket = errors.New("comm: corrupt packet")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// wireHeader is the decoded fixed-size packet header.
type wireHeader struct {
	epoch      uint64
	seq        int64
	active     int64
	nmsgs      uint32
	msgBytes   int
	headerOnly bool
}

func appendWireHeader(b []byte, h wireHeader) []byte {
	b = append(b, packetMagic...)
	flags := byte(0)
	if h.headerOnly {
		flags |= flagHeaderOnly
	}
	b = append(b, packetVersion, flags)
	b = binary.LittleEndian.AppendUint16(b, uint16(h.msgBytes))
	b = binary.LittleEndian.AppendUint64(b, h.epoch)
	b = binary.LittleEndian.AppendUint64(b, uint64(h.seq))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.active))
	b = binary.LittleEndian.AppendUint32(b, h.nmsgs)
	return b
}

func appendCRC(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

// encodePacketF32 serializes a full float32 packet: header, payload, CRC.
func encodePacketF32(h wireHeader, msgs []Msg[float32]) []byte {
	h.nmsgs = uint32(len(msgs))
	h.msgBytes = f32WireBytes
	h.headerOnly = false
	b := make([]byte, 0, wireHeaderLen+len(msgs)*(4+f32WireBytes)+wireCRCLen)
	b = appendWireHeader(b, h)
	for _, m := range msgs {
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Dst))
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(m.Val))
	}
	return appendCRC(b)
}

// encodeHeaderOnly serializes a header-only wire image for message types
// without a value codec; nmsgs and msgBytes still describe the out-of-band
// payload so its shape is covered by the checksum.
func encodeHeaderOnly(h wireHeader) []byte {
	h.headerOnly = true
	b := make([]byte, 0, wireHeaderLen+wireCRCLen)
	b = appendWireHeader(b, h)
	return appendCRC(b)
}

// decodePacket verifies and decodes a wire image. For full float32 packets
// it returns the decoded messages; for header-only images it returns nil
// messages (the payload travels out of band). Any integrity violation
// returns an error wrapping ErrCorruptPacket.
func decodePacket(b []byte) (wireHeader, []Msg[float32], error) {
	var h wireHeader
	if len(b) < wireHeaderLen+wireCRCLen {
		return h, nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorruptPacket, len(b), wireHeaderLen+wireCRCLen)
	}
	body, trailer := b[:len(b)-wireCRCLen], b[len(b)-wireCRCLen:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(trailer); got != want {
		return h, nil, fmt.Errorf("%w: CRC32C mismatch: computed %08x, trailer %08x", ErrCorruptPacket, got, want)
	}
	if string(b[:4]) != packetMagic {
		return h, nil, fmt.Errorf("%w: bad magic %q", ErrCorruptPacket, b[:4])
	}
	if b[4] != packetVersion {
		return h, nil, fmt.Errorf("%w: unknown version %d", ErrCorruptPacket, b[4])
	}
	h.headerOnly = b[5]&flagHeaderOnly != 0
	h.msgBytes = int(binary.LittleEndian.Uint16(b[6:8]))
	h.epoch = binary.LittleEndian.Uint64(b[8:16])
	h.seq = int64(binary.LittleEndian.Uint64(b[16:24]))
	h.active = int64(binary.LittleEndian.Uint64(b[24:32]))
	h.nmsgs = binary.LittleEndian.Uint32(b[32:36])
	payload := body[wireHeaderLen:]
	if h.headerOnly {
		if len(payload) != 0 {
			return h, nil, fmt.Errorf("%w: header-only packet carries %d payload bytes", ErrCorruptPacket, len(payload))
		}
		return h, nil, nil
	}
	per := 4 + h.msgBytes
	if h.msgBytes <= 0 || int64(len(payload)) != int64(h.nmsgs)*int64(per) {
		return h, nil, fmt.Errorf("%w: payload is %d bytes, header says %d msgs × %d bytes",
			ErrCorruptPacket, len(payload), h.nmsgs, per)
	}
	if h.msgBytes != f32WireBytes {
		return h, nil, fmt.Errorf("%w: unsupported value size %d", ErrCorruptPacket, h.msgBytes)
	}
	msgs := make([]Msg[float32], h.nmsgs)
	for i := range msgs {
		off := i * per
		msgs[i] = Msg[float32]{
			Dst: graph.VertexID(binary.LittleEndian.Uint32(payload[off : off+4])),
			Val: math.Float32frombits(binary.LittleEndian.Uint32(payload[off+4 : off+8])),
		}
	}
	return h, msgs, nil
}

// encodePacket builds one outgoing packet with its wire image. float32
// payloads are fully serialized (the wire is authoritative: msgs rides only
// in the image); other message types get a header-only image with the
// in-memory messages alongside.
func encodePacket[T any](n *Net[T], msgs []Msg[T], active int64, epoch uint64, seq int64) packet[T] {
	h := wireHeader{epoch: epoch, seq: seq, active: active}
	if m32, ok := any(msgs).([]Msg[float32]); ok {
		return packet[T]{active: active, epoch: epoch, seq: seq, wire: encodePacketF32(h, m32)}
	}
	h.nmsgs = uint32(len(msgs))
	h.msgBytes = n.msgBytes
	return packet[T]{msgs: msgs, active: active, epoch: epoch, seq: seq, wire: encodeHeaderOnly(h)}
}

// msgsFromF32 converts decoded float32 messages back to the net's message
// type; only called for nets whose T is float32.
func msgsFromF32[T any](msgs []Msg[float32]) []Msg[T] {
	m, _ := any(msgs).([]Msg[T])
	return m
}

// corruptPacket returns a copy of p whose wire image has one byte flipped at
// a salt-determined position — the injected "bad bytes on the wire". The
// original (and with it the send buffer) stays pristine.
func corruptPacket[T any](p packet[T], salt int64) packet[T] {
	w := append([]byte(nil), p.wire...)
	if len(w) > 0 {
		w[int((salt*7+13)%int64(len(w)))] ^= 0x5A
	}
	p.wire = w
	return p
}
