package comm

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"hetgraph/internal/fault"
	"hetgraph/internal/machine"
)

func mustInjector(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	plan, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestExchangeCorruptDropAndRetransmit(t *testing.T) {
	// rank 1's transmission at round 0 arrives with flipped bytes; rank 0
	// must detect it by checksum, NACK, pull a clean retransmission from
	// the send buffer, and deliver the original payload intact.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetInjector(mustInjector(t, "rank1:corrupt@0"))
	n.SetRetryBase(10 * time.Microsecond)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var recv0 []Msg[float32]
	var st0, st1 Stats
	var err0, err1 error
	go func() {
		defer wg.Done()
		recv0, _, st0, err0 = e0.Exchange(nil, 0)
	}()
	go func() {
		defer wg.Done()
		_, _, st1, err1 = e1.Exchange([]Msg[float32]{{Dst: 3, Val: 7}}, 1)
	}()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("exchange errors: %v / %v", err0, err1)
	}
	if len(recv0) != 1 || recv0[0].Dst != 3 || recv0[0].Val != 7 {
		t.Fatalf("rank 0 received %v, want the pristine payload", recv0)
	}
	if st0.CorruptDrops != 1 || st0.Retransmits != 1 {
		t.Errorf("rank 0 CorruptDrops=%d Retransmits=%d, want 1/1", st0.CorruptDrops, st0.Retransmits)
	}
	if st1.CorruptDrops != 0 || st1.Retransmits != 0 {
		t.Errorf("rank 1 CorruptDrops=%d Retransmits=%d, want 0/0", st1.CorruptDrops, st1.Retransmits)
	}
	ig := n.Integrity()
	if ig.CorruptDrops != 1 || ig.Retransmits != 1 || ig.DupDrops != 0 {
		t.Errorf("net integrity = %+v, want 1 corrupt drop and 1 retransmit", ig)
	}
	found := false
	for _, ls := range n.LinkStats() {
		if ls.From == 1 && ls.To == 0 {
			found = true
			if ls.Retransmits != 1 {
				t.Errorf("link 1→0 Retransmits = %d, want 1", ls.Retransmits)
			}
		}
	}
	if !found {
		t.Error("link 1→0 missing from LinkStats")
	}
}

func TestExchangePersistentCorruptKillsLink(t *testing.T) {
	// A link that corrupts every transmission attempt past the retry
	// budget is dead, and the corrupting sender is to blame.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetInjector(mustInjector(t, "rank1:corrupt@0x100"))
	n.SetRetryBase(10 * time.Microsecond)
	n.SetTimeout(time.Second)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var st0 Stats
	var err0 error
	go func() {
		defer wg.Done()
		_, _, st0, err0 = e0.Exchange(nil, 0)
	}()
	go func() {
		defer wg.Done()
		// The victim's own round may succeed or fail fast once declared
		// dead; either way it must return.
		e1.Exchange([]Msg[float32]{{Dst: 1, Val: 1}}, 1)
	}()
	wg.Wait()
	var dfe *DeviceFailedError
	if !errors.As(err0, &dfe) {
		t.Fatalf("err = %v, want *DeviceFailedError", err0)
	}
	if dfe.Rank != 1 || !dfe.Injected {
		t.Errorf("blamed rank %d (injected=%v), want rank 1 injected", dfe.Rank, dfe.Injected)
	}
	if st0.CorruptDrops <= int64(maxLinkRetries) {
		t.Errorf("CorruptDrops = %d, want > %d (budget exhausted)", st0.CorruptDrops, maxLinkRetries)
	}
}

func TestExchangeDupDrop(t *testing.T) {
	// rank 1's round-0 packet is delivered twice. Round 0 consumes the
	// first copy; the leftover must be dropped by the sequence fence in
	// round 1, not delivered.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetInjector(mustInjector(t, "rank1:dup@0"))
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var recvs [2][]Msg[float32]
	var dups int64
	var errs [2]error
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			recv, _, st, err := e0.Exchange(nil, 0)
			dups += st.DupDrops
			if err != nil {
				errs[0] = err
				return
			}
			recvs[i] = recv
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, _, _, err := e1.Exchange([]Msg[float32]{{Dst: graph32(i), Val: float32(i)}}, 0); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("exchange errors: %v / %v", errs[0], errs[1])
	}
	if len(recvs[0]) != 1 || recvs[0][0].Dst != 0 || len(recvs[1]) != 1 || recvs[1][0].Dst != 1 {
		t.Fatalf("payloads duplicated or lost: round0=%v round1=%v", recvs[0], recvs[1])
	}
	if dups != 1 {
		t.Errorf("DupDrops = %d, want exactly 1", dups)
	}
	if ig := n.Integrity(); ig.DupDrops != 1 {
		t.Errorf("net DupDrops = %d, want 1", ig.DupDrops)
	}
}

func TestExchangeReorderDrop(t *testing.T) {
	// At round 1 rank 1's link swaps adjacent packets: the round-0 packet
	// is retransmitted ahead of the round-1 one. The receiver must drop
	// the stale packet and still deliver round 1's payload.
	n, _ := NewNet[float32](machine.PCIe(), 4)
	n.SetInjector(mustInjector(t, "rank1:reorder@1"))
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var recvs [2][]Msg[float32]
	var dups int64
	var errs [2]error
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			recv, _, st, err := e0.Exchange(nil, 0)
			dups += st.DupDrops
			if err != nil {
				errs[0] = err
				return
			}
			recvs[i] = recv
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, _, _, err := e1.Exchange([]Msg[float32]{{Dst: graph32(i), Val: float32(10 + i)}}, 0); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("exchange errors: %v / %v", errs[0], errs[1])
	}
	if len(recvs[1]) != 1 || recvs[1][0].Val != 11 {
		t.Fatalf("round 1 delivered %v, want the round-1 payload", recvs[1])
	}
	if dups != 1 {
		t.Errorf("DupDrops = %d, want exactly 1 (the swapped stale packet)", dups)
	}
}

func TestExchangePartitionSeversLinks(t *testing.T) {
	// Under partition@0:{0,1}|{2,3} every rank's exchange fails
	// immediately with a LinkSeveredError naming exactly the other side —
	// the per-link topology the supervisor fences from.
	n, _ := NewGroupNet[float32](machine.PCIe(), 4, 4)
	n.SetInjector(mustInjector(t, "partition@0:{0,1}|{2,3}"))
	n.SetTimeout(time.Second)
	otherSide := [][]int{{2, 3}, {2, 3}, {0, 1}, {0, 1}}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for r := 0; r < 4; r++ {
		ep, _ := n.Endpoint(r)
		wg.Add(1)
		go func(r int, ep *Endpoint[float32]) {
			defer wg.Done()
			_, _, _, errs[r] = ep.ExchangeAll(nil, 0)
		}(r, ep)
	}
	wg.Wait()
	for r := 0; r < 4; r++ {
		var lse *LinkSeveredError
		if !errors.As(errs[r], &lse) {
			t.Fatalf("rank %d: err = %v, want *LinkSeveredError", r, errs[r])
		}
		got := append([]int(nil), lse.Peers...)
		sort.Ints(got)
		if len(got) != 2 || got[0] != otherSide[r][0] || got[1] != otherSide[r][1] {
			t.Errorf("rank %d lost peers %v, want %v", r, got, otherSide[r])
		}
		if lse.Rank != r || lse.Superstep != 0 {
			t.Errorf("rank %d: verdict %+v", r, lse)
		}
	}
}

func TestExchangeHeaderOnlyIntegrity(t *testing.T) {
	// Nets over message types without a value codec ship header-only wire
	// images; corruption of those is still CRC-detected and repaired, and
	// the out-of-band payload survives.
	type pair struct{ A, B int64 }
	n, _ := NewNet[pair](machine.PCIe(), 16)
	n.SetInjector(mustInjector(t, "rank1:corrupt@0"))
	n.SetRetryBase(10 * time.Microsecond)
	e0, _ := n.Endpoint(0)
	e1, _ := n.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	var recv0 []Msg[pair]
	var st0 Stats
	var err0, err1 error
	go func() {
		defer wg.Done()
		recv0, _, st0, err0 = e0.Exchange(nil, 0)
	}()
	go func() {
		defer wg.Done()
		_, _, _, err1 = e1.Exchange([]Msg[pair]{{Dst: 2, Val: pair{A: 8, B: 9}}}, 1)
	}()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("exchange errors: %v / %v", err0, err1)
	}
	if len(recv0) != 1 || recv0[0].Val != (pair{A: 8, B: 9}) {
		t.Fatalf("rank 0 received %v, want the out-of-band payload", recv0)
	}
	if st0.CorruptDrops != 1 || st0.Retransmits != 1 {
		t.Errorf("CorruptDrops=%d Retransmits=%d, want 1/1", st0.CorruptDrops, st0.Retransmits)
	}
}

// graph32 keeps test literals tidy.
func graph32(i int) int32 { return int32(i) }
