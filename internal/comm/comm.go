// Package comm provides the cross-device message exchange of the
// heterogeneous runtime. The paper runs MPI in symmetric mode — CPU as rank
// 0, MIC as rank 1, connected by PCIe — and between the message-generation
// and message-processing steps each device combines its remote message
// buffer and ships the combined result to the other device as a single MPI
// message (§IV-A).
//
// Here the two ranks are in-process engines; the transport is a pair of
// buffered channels (real data movement, real synchronization), and the
// PCIe cost is computed from the actual bytes shipped using the machine
// package's link model.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
)

// Msg is one combined remote message <dst_id, value>.
type Msg[T any] struct {
	Dst graph.VertexID
	Val T
}

// packet is one exchange round's payload: the combined messages plus the
// sender's active-vertex count, which the BSP termination check needs. Every
// packet is stamped with the net's communication epoch and the sender's
// superstep sequence number, so a receiver can reject a payload left behind
// by a rank that died mid-round instead of consuming it as live data.
type packet[T any] struct {
	msgs   []Msg[T]
	active int64
	epoch  uint64
	seq    int64
}

// DeviceFailedError reports that a rank died, stalled past the exchange
// deadline, or lost its link permanently. Rank names the rank that failed
// (which may be the caller's own rank, when the failure was injected into it
// or its peer declared it dead).
type DeviceFailedError struct {
	// Rank is the rank that failed.
	Rank int
	// Superstep is the exchange round at which the failure was detected.
	Superstep int64
	// Injected is true when the failure came from the fault injector.
	Injected bool
	// Reason describes the failure.
	Reason string
}

func (e *DeviceFailedError) Error() string {
	return fmt.Sprintf("comm: device rank %d failed at superstep %d: %s", e.Rank, e.Superstep, e.Reason)
}

// Retry policy for transient link faults: capped exponential backoff. A
// fault that persists past maxLinkRetries attempts declares the link — and
// with it the peer — dead.
const (
	maxLinkRetries   = 6
	defaultRetryBase = 200 * time.Microsecond
	maxRetryBackoff  = 5 * time.Millisecond
)

// Net is the two-rank interconnect.
type Net[T any] struct {
	link     machine.Link
	msgBytes int
	chans    [2]chan packet[T]

	// timeout bounds each Exchange round (0 = wait forever, the classic
	// deadlock-prone MPI behavior).
	timeout time.Duration
	// inj, when non-nil, injects planned faults into exchanges.
	inj *fault.Injector
	// retryBase is the first backoff interval for transient link faults.
	retryBase time.Duration
	// dead[r] is closed once rank r is declared dead (by fault injection,
	// or by its peer giving up on it); pending and future exchanges then
	// fail fast instead of waiting out the full deadline again.
	dead     [2]chan struct{}
	deadOnce [2]sync.Once
	// resume[r] carries rank r's restored checkpoint generation during the
	// cold-start resume handshake.
	resume [2]chan uint64
	// epoch is the current communication epoch, bumped by NewEpoch on every
	// rejoin. Exchange stamps outgoing packets with it and rejects received
	// packets from any other epoch (or the wrong superstep) as stale.
	epoch atomic.Uint64
	// rejoin[r] carries rank r's (epoch, generation, superstep) triple
	// during the mid-run rejoin handshake.
	rejoin [2]chan rejoinInfo
}

// rejoinInfo is one rank's view of the rejoin agreement: the new epoch, the
// checkpoint generation the restart is based on, and the superstep lockstep
// resumes at.
type rejoinInfo struct {
	epoch uint64
	gen   uint64
	step  int64
}

// NewNet creates the interconnect. msgBytes is the wire size of one
// message's value; 4 bytes of destination ID are added per message.
func NewNet[T any](link machine.Link, msgBytes int) (*Net[T], error) {
	if msgBytes <= 0 {
		return nil, fmt.Errorf("comm: msgBytes %d <= 0", msgBytes)
	}
	n := &Net[T]{link: link, msgBytes: msgBytes, retryBase: defaultRetryBase}
	// Capacity 1 lets both ranks send before either receives, so a
	// symmetric Exchange cannot deadlock.
	n.chans[0] = make(chan packet[T], 1)
	n.chans[1] = make(chan packet[T], 1)
	n.dead[0] = make(chan struct{})
	n.dead[1] = make(chan struct{})
	n.resume[0] = make(chan uint64, 1)
	n.resume[1] = make(chan uint64, 1)
	n.rejoin[0] = make(chan rejoinInfo, 1)
	n.rejoin[1] = make(chan rejoinInfo, 1)
	return n, nil
}

// Epoch returns the current communication epoch (0 until the first rejoin).
func (n *Net[T]) Epoch() uint64 { return n.epoch.Load() }

// NewEpoch opens a new communication epoch for a rejoin: both ranks' dead
// markers are cleared, stale handshake slots are drained, and the epoch
// counter is bumped. Data channels are deliberately left alone — a payload
// the dead rank (or its stranded peer) left behind carries the old epoch
// stamp and is rejected by Exchange's receive loop (counted in
// Stats.StaleDrops), which exercises the same fencing that protects
// overlapping rounds. Must only be called while no rank goroutine is
// running: the supervisor owns the net between lockstep segments.
func (n *Net[T]) NewEpoch() uint64 {
	for r := 0; r < 2; r++ {
		n.dead[r] = make(chan struct{})
		n.deadOnce[r] = sync.Once{}
		select {
		case <-n.resume[r]:
		default:
		}
		select {
		case <-n.rejoin[r]:
		default:
		}
	}
	return n.epoch.Add(1)
}

// SetTimeout bounds every subsequent Exchange round; 0 restores unbounded
// waiting. Call before the run starts.
func (n *Net[T]) SetTimeout(d time.Duration) { n.timeout = d }

// SetInjector attaches a fault injector. Call before the run starts.
func (n *Net[T]) SetInjector(inj *fault.Injector) { n.inj = inj }

// SetRetryBase overrides the first backoff interval for transient link
// faults (tests use tiny values to keep chaos runs fast).
func (n *Net[T]) SetRetryBase(d time.Duration) {
	if d > 0 {
		n.retryBase = d
	}
}

// markDead declares rank r dead, waking any exchange that waits on it.
func (n *Net[T]) markDead(r int) {
	n.deadOnce[r].Do(func() { close(n.dead[r]) })
}

// isDead reports whether rank r has been declared dead.
func (n *Net[T]) isDead(r int) bool {
	select {
	case <-n.dead[r]:
		return true
	default:
		return false
	}
}

// Endpoint returns rank r's view of the interconnect.
func (n *Net[T]) Endpoint(rank int) (*Endpoint[T], error) {
	if rank != 0 && rank != 1 {
		return nil, fmt.Errorf("comm: rank %d not in {0,1}", rank)
	}
	return &Endpoint[T]{net: n, rank: rank}, nil
}

// Endpoint is one rank's exchange port. An endpoint is used by a single
// goroutine (its rank's engine loop); the Net underneath carries the
// cross-rank synchronization.
type Endpoint[T any] struct {
	net  *Net[T]
	rank int
	// step counts exchange rounds initiated by this endpoint; fault plans
	// index rounds with it.
	step int64
}

// Stats describes one exchange round from this endpoint's perspective.
type Stats struct {
	// MsgsSent and MsgsRecv are combined message counts.
	MsgsSent, MsgsRecv int64
	// BytesSent and BytesRecv are the wire sizes.
	BytesSent, BytesRecv int64
	// SimSeconds is the modeled PCIe time of the round: one latency plus
	// the slower direction's payload (the link is full duplex).
	SimSeconds float64
	// WallNS is the measured host wall-clock duration of the round in
	// nanoseconds, including the block waiting for the peer (the BSP
	// lockstep wait) and any injected delay or retry backoff.
	WallNS int64
	// Retries is the number of transient link faults retried away this
	// round.
	Retries int64
	// StaleDrops is the number of received packets rejected this round for
	// carrying a previous epoch or the wrong superstep sequence number —
	// leftovers of a rank that died mid-round, fenced off after a rejoin
	// instead of delivered as live data.
	StaleDrops int64
}

// Exchange ships this rank's combined remote messages and local
// active-vertex count to the peer, and receives the peer's. Both ranks must
// call Exchange once per iteration; the call blocks until the peer's
// payload arrives, which is the implicit cross-device synchronization point
// of the BSP superstep.
//
// The round is bounded by the net's timeout (SetTimeout): a peer that does
// not show up within the deadline is declared dead and a *DeviceFailedError
// naming it is returned, instead of the unbounded wait that would otherwise
// deadlock the run. Injected faults (SetInjector) can drop this rank, delay
// it, or fail the link transiently; transient faults are retried with
// capped exponential backoff and reported in Stats.Retries.
func (e *Endpoint[T]) Exchange(msgs []Msg[T], activeLocal int64) (recv []Msg[T], activeRemote int64, st Stats, err error) {
	n := e.net
	peer := 1 - e.rank
	step := e.step
	e.step++
	wallStart := time.Now()

	// A rank declared dead stays dead: fail fast on every later round.
	if n.isDead(e.rank) {
		return nil, 0, st, &DeviceFailedError{Rank: e.rank, Superstep: step, Reason: "rank previously declared dead"}
	}
	if n.inj != nil {
		if n.inj.Drop(e.rank, step) {
			// The device dies here: it never sends this round, and the
			// closed dead channel lets the peer fail fast instead of
			// waiting out its deadline.
			n.markDead(e.rank)
			return nil, 0, st, &DeviceFailedError{Rank: e.rank, Superstep: step, Injected: true, Reason: "injected exchange drop"}
		}
		if d := n.inj.Delay(e.rank, step); d > 0 {
			time.Sleep(d)
		}
		// Transient link faults: retry with capped exponential backoff. A
		// fault that outlives the retry budget is a permanent link loss —
		// indistinguishable from a dead peer, and treated as one.
		backoff := n.retryBase
		for attempt := 0; n.inj.LinkFails(e.rank, step, attempt); attempt++ {
			if attempt >= maxLinkRetries {
				n.markDead(peer)
				return nil, 0, st, &DeviceFailedError{
					Rank: peer, Superstep: step, Injected: true,
					Reason: fmt.Sprintf("link failed %d consecutive attempts", attempt+1),
				}
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxRetryBackoff {
				backoff = maxRetryBackoff
			}
			st.Retries++
		}
	}

	// One deadline covers the whole round (send + receive).
	var timeoutC <-chan time.Time
	if n.timeout > 0 {
		timer := time.NewTimer(n.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}

	epoch := n.epoch.Load()
	pkt := packet[T]{msgs: msgs, active: activeLocal, epoch: epoch, seq: step}
	select {
	case n.chans[e.rank] <- pkt:
	case <-n.dead[peer]:
		return nil, 0, st, &DeviceFailedError{Rank: peer, Superstep: step, Reason: "peer dead before send"}
	case <-n.dead[e.rank]:
		return nil, 0, st, &DeviceFailedError{Rank: e.rank, Superstep: step, Reason: "declared dead by peer"}
	case <-timeoutC:
		n.markDead(peer)
		return nil, 0, st, &DeviceFailedError{Rank: peer, Superstep: step, Reason: fmt.Sprintf("exchange send timed out after %s", n.timeout)}
	}

	// Receive, fencing off stale payloads: a packet stamped with a previous
	// epoch (or the wrong superstep) is a leftover from before a failure —
	// a rank that died mid-round may have parked its last send in the
	// channel — and is counted and dropped, never delivered.
	var p packet[T]
recv:
	for {
		select {
		case p = <-n.chans[peer]:
		case <-n.dead[peer]:
			// The peer died, but it may have sent this round's payload
			// before dying — drain it if so, otherwise the round is lost.
			select {
			case p = <-n.chans[peer]:
			default:
				return nil, 0, st, &DeviceFailedError{Rank: peer, Superstep: step, Reason: "peer died mid-round"}
			}
		case <-n.dead[e.rank]:
			return nil, 0, st, &DeviceFailedError{Rank: e.rank, Superstep: step, Reason: "declared dead by peer"}
		case <-timeoutC:
			n.markDead(peer)
			return nil, 0, st, &DeviceFailedError{Rank: peer, Superstep: step, Reason: fmt.Sprintf("exchange timed out after %s", n.timeout)}
		}
		if p.epoch == epoch && p.seq == step {
			break recv
		}
		st.StaleDrops++
	}

	perMsg := int64(n.msgBytes + 4)
	st.MsgsSent = int64(len(msgs))
	st.MsgsRecv = int64(len(p.msgs))
	st.BytesSent = st.MsgsSent * perMsg
	st.BytesRecv = st.MsgsRecv * perMsg
	slower := st.BytesSent
	if st.BytesRecv > slower {
		slower = st.BytesRecv
	}
	st.SimSeconds = n.link.TransferSeconds(slower)
	st.WallNS = time.Since(wallStart).Nanoseconds()
	return p.msgs, p.active, st, nil
}

// Abort declares this endpoint's own rank dead — called by an engine whose
// superstep failed outside the exchange (for example a recovered panic in a
// user function), so the peer's next exchange fails fast instead of timing
// out.
func (e *Endpoint[T]) Abort() { e.net.markDead(e.rank) }

// Step returns the number of exchange rounds this endpoint has initiated.
func (e *Endpoint[T]) Step() int64 { return e.step }

// SetStep aligns the endpoint's round counter so that fault-plan steps and
// failure reports index absolute supersteps after a cold-start resume (a run
// restored at superstep s starts its first exchange as round s, not 0).
func (e *Endpoint[T]) SetStep(step int64) { e.step = step }

// ResumeHandshake exchanges the restored checkpoint generation with the
// peer before a resumed run starts. Both ranks must agree on the generation
// they restored from — in the paper's symmetric-MPI setting this is where
// the two processes would reconcile their views of shared storage; here it
// guards against wiring bugs that would restore the ranks from different
// snapshots. It is bounded by the net's timeout and by peer death, like
// Exchange.
func (e *Endpoint[T]) ResumeHandshake(gen uint64) (uint64, error) {
	n := e.net
	peer := 1 - e.rank

	var timeoutC <-chan time.Time
	if n.timeout > 0 {
		timer := time.NewTimer(n.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}

	select {
	case n.resume[e.rank] <- gen:
	case <-n.dead[peer]:
		return 0, &DeviceFailedError{Rank: peer, Reason: "peer dead before resume handshake"}
	case <-n.dead[e.rank]:
		return 0, &DeviceFailedError{Rank: e.rank, Reason: "declared dead by peer"}
	case <-timeoutC:
		n.markDead(peer)
		return 0, &DeviceFailedError{Rank: peer, Reason: fmt.Sprintf("resume handshake send timed out after %s", n.timeout)}
	}

	var peerGen uint64
	select {
	case peerGen = <-n.resume[peer]:
	case <-n.dead[peer]:
		select {
		case peerGen = <-n.resume[peer]:
		default:
			return 0, &DeviceFailedError{Rank: peer, Reason: "peer died during resume handshake"}
		}
	case <-n.dead[e.rank]:
		return 0, &DeviceFailedError{Rank: e.rank, Reason: "declared dead by peer"}
	case <-timeoutC:
		n.markDead(peer)
		return 0, &DeviceFailedError{Rank: peer, Reason: fmt.Sprintf("resume handshake timed out after %s", n.timeout)}
	}

	if peerGen != gen {
		return peerGen, fmt.Errorf("comm: resume generation mismatch: rank %d restored gen %d, rank %d restored gen %d",
			e.rank, gen, peer, peerGen)
	}
	return peerGen, nil
}

// RejoinHandshake re-admits a restarted rank at a superstep barrier after a
// degrade→heal cycle. Both ranks exchange the (epoch, checkpoint generation,
// restart superstep) triple they believe the healed run resumes under and
// must agree on all three; the epoch must also match the net's current epoch
// as bumped by the supervisor's NewEpoch. Mirrors ResumeHandshake: bounded
// by the net's timeout and by peer death.
func (e *Endpoint[T]) RejoinHandshake(epoch, gen uint64, step int64) error {
	n := e.net
	peer := 1 - e.rank

	if cur := n.epoch.Load(); cur != epoch {
		return fmt.Errorf("comm: rejoin epoch mismatch: rank %d expects epoch %d, net is at epoch %d",
			e.rank, epoch, cur)
	}

	var timeoutC <-chan time.Time
	if n.timeout > 0 {
		timer := time.NewTimer(n.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}

	info := rejoinInfo{epoch: epoch, gen: gen, step: step}
	select {
	case n.rejoin[e.rank] <- info:
	case <-n.dead[peer]:
		return &DeviceFailedError{Rank: peer, Superstep: step, Reason: "peer dead before rejoin handshake"}
	case <-n.dead[e.rank]:
		return &DeviceFailedError{Rank: e.rank, Superstep: step, Reason: "declared dead by peer"}
	case <-timeoutC:
		n.markDead(peer)
		return &DeviceFailedError{Rank: peer, Superstep: step, Reason: fmt.Sprintf("rejoin handshake send timed out after %s", n.timeout)}
	}

	var peerInfo rejoinInfo
	select {
	case peerInfo = <-n.rejoin[peer]:
	case <-n.dead[peer]:
		select {
		case peerInfo = <-n.rejoin[peer]:
		default:
			return &DeviceFailedError{Rank: peer, Superstep: step, Reason: "peer died during rejoin handshake"}
		}
	case <-n.dead[e.rank]:
		return &DeviceFailedError{Rank: e.rank, Superstep: step, Reason: "declared dead by peer"}
	case <-timeoutC:
		n.markDead(peer)
		return &DeviceFailedError{Rank: peer, Superstep: step, Reason: fmt.Sprintf("rejoin handshake timed out after %s", n.timeout)}
	}

	if peerInfo != info {
		return fmt.Errorf("comm: rejoin mismatch: rank %d at (epoch %d, gen %d, step %d), rank %d at (epoch %d, gen %d, step %d)",
			e.rank, info.epoch, info.gen, info.step, peer, peerInfo.epoch, peerInfo.gen, peerInfo.step)
	}
	return nil
}

// Rank returns this endpoint's rank.
func (e *Endpoint[T]) Rank() int { return e.rank }

// Combiner accumulates remote messages per destination and combines
// duplicates with a user reduction before the exchange ("to reduce the
// communication overhead, a combination is conducted to the remote message
// buffer"). It is the remote message buffer of Fig. 2 for reducible types.
type Combiner[T any] struct {
	combine func(a, b T) T
	has     []bool
	vals    []T
	touched []graph.VertexID
}

// NewCombiner creates a combiner over n destination vertices.
func NewCombiner[T any](n int, combine func(a, b T) T) *Combiner[T] {
	return &Combiner[T]{
		combine: combine,
		has:     make([]bool, n),
		vals:    make([]T, n),
	}
}

// Add merges one remote message. Not safe for concurrent use; the engine
// shards combiners per thread and merges, or guards with the generation
// scheme's ownership, depending on the scheme.
func (c *Combiner[T]) Add(dst graph.VertexID, v T) {
	if c.has[dst] {
		c.vals[dst] = c.combine(c.vals[dst], v)
		return
	}
	c.has[dst] = true
	c.vals[dst] = v
	c.touched = append(c.touched, dst)
}

// Merge folds another combiner into this one (used to join per-thread
// shards before the exchange).
func (c *Combiner[T]) Merge(o *Combiner[T]) {
	for _, dst := range o.touched {
		c.Add(dst, o.vals[dst])
	}
}

// Drain appends the combined messages to out, resets the combiner, and
// returns out. Message order follows first-touch order, which is
// deterministic for a deterministic generation order.
func (c *Combiner[T]) Drain(out []Msg[T]) []Msg[T] {
	var zero T
	for _, dst := range c.touched {
		out = append(out, Msg[T]{Dst: dst, Val: c.vals[dst]})
		c.has[dst] = false
		c.vals[dst] = zero
	}
	c.touched = c.touched[:0]
	return out
}

// Len returns the number of distinct destinations currently held.
func (c *Combiner[T]) Len() int { return len(c.touched) }
