// Package comm provides the cross-device message exchange of the
// heterogeneous runtime. The paper runs MPI in symmetric mode — CPU as rank
// 0, MIC as rank 1, connected by PCIe — and between the message-generation
// and message-processing steps each device combines its remote message
// buffer and ships the combined result to the other device as a single MPI
// message (§IV-A).
//
// Here the ranks are in-process engines; the transport is a matrix of
// buffered channels (real data movement, real synchronization), and the
// PCIe cost is computed from the actual bytes shipped using the machine
// package's link model.
//
// # Device groups
//
// A Net is built for an N-rank device group (NewGroupNet; NewNet is the
// classic two-rank CPU+MIC pair). Every ordered pair of ranks gets its own
// capacity-1 channel, so an all-to-all round cannot deadlock: each rank
// deposits all its outgoing payloads before it starts receiving. Rank r's
// view of the group is an Endpoint; Endpoint.ExchangeAll ships one payload
// per live peer and collects one from each, which generalizes the pairwise
// Endpoint.Exchange used when the group has exactly two ranks.
//
// The supervisor can shrink the group after a failure (SetMembers) and
// re-grow it on rejoin; epoch fencing (NewEpoch) stamps every packet so a
// payload left behind by a dead rank is dropped as stale instead of being
// delivered into the healed run. Per-link traffic is tallied in LinkStats.
package comm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
)

// Msg is one combined remote message <dst_id, value>.
type Msg[T any] struct {
	Dst graph.VertexID
	Val T
}

// packet is one exchange round's payload: the combined messages plus the
// sender's active-vertex count, which the BSP termination check needs. Every
// packet is stamped with the net's communication epoch and the sender's
// superstep sequence number, so a receiver can reject a payload left behind
// by a rank that died mid-round instead of consuming it as live data.
//
// wire is the checksummed wire image (see packet.go) the receive path
// verifies before trusting anything else. For float32 nets it carries the
// full payload and is authoritative — msgs is nil in flight and
// reconstructed from the wire on receive; for other message types it is a
// header-only image and msgs travels alongside it.
type packet[T any] struct {
	msgs   []Msg[T]
	active int64
	epoch  uint64
	seq    int64
	wire   []byte
}

// DeviceFailedError reports that a rank died, stalled past the exchange
// deadline, or lost its link permanently. Rank names the rank that failed
// (which may be the caller's own rank, when the failure was injected into it
// or a peer declared it dead).
type DeviceFailedError struct {
	// Rank is the rank that failed.
	Rank int
	// Superstep is the exchange round at which the failure was detected.
	Superstep int64
	// Injected is true when the failure came from the fault injector.
	Injected bool
	// Reason describes the failure.
	Reason string
}

func (e *DeviceFailedError) Error() string {
	return fmt.Sprintf("comm: device rank %d failed at superstep %d: %s", e.Rank, e.Superstep, e.Reason)
}

// LinkSeveredError reports that a rank found links to some of its peers cut
// at the start of an exchange round — the per-link view of a network
// partition (which links died, not just which rank). The supervisor
// aggregates these verdicts across ranks to reconstruct the cut and fence
// the minority side.
type LinkSeveredError struct {
	// Rank is the reporting rank.
	Rank int
	// Superstep is the exchange round at which the cut was detected.
	Superstep int64
	// Peers are the unreachable peer ranks, ascending.
	Peers []int
}

func (e *LinkSeveredError) Error() string {
	return fmt.Sprintf("comm: rank %d lost links to peers %v at superstep %d", e.Rank, e.Peers, e.Superstep)
}

// PartitionedError reports that the device group split into two sides that
// cannot reach each other. The quorum-holding majority side degrades and
// continues; the minority side is fenced and its ranks abort with this
// error. Ties are broken toward the side containing the lowest rank (rank
// 0 — the host, which owns the storage path).
type PartitionedError struct {
	// Superstep is the exchange round at which the split was detected.
	Superstep int64
	// Majority is the quorum side that continues, ascending.
	Majority []int
	// Minority is the fenced side, ascending.
	Minority []int
}

func (e *PartitionedError) Error() string {
	return fmt.Sprintf("comm: network partitioned at superstep %d: quorum side %v continues, minority side %v fenced",
		e.Superstep, e.Majority, e.Minority)
}

// Retry policy for transient link faults: capped exponential backoff. A
// fault that persists past maxLinkRetries attempts declares the link — and
// with it the peer — dead.
const (
	maxLinkRetries   = 6
	defaultRetryBase = 200 * time.Microsecond
	maxRetryBackoff  = 5 * time.Millisecond
)

// linkCounter tallies one directed link's lifetime traffic.
type linkCounter struct {
	msgs    atomic.Int64
	bytes   atomic.Int64
	retrans atomic.Int64
}

// LinkStat is one directed link's cumulative traffic across the run, as
// counted on the sender side.
type LinkStat struct {
	// From and To are the sender and receiver ranks.
	From, To int
	// Msgs and Bytes are the combined messages and wire bytes shipped.
	Msgs, Bytes int64
	// Retransmits counts packets re-pulled from this link's send buffer
	// after the receiver NACKed a corrupt delivery.
	Retransmits int64
}

// IntegrityStats aggregates the net's lifetime link-integrity counters
// across all ranks and links.
type IntegrityStats struct {
	// CorruptDrops counts received packets dropped for failing checksum or
	// decode validation.
	CorruptDrops int64
	// DupDrops counts received packets dropped for carrying an
	// already-delivered sequence number — duplicated or reordered
	// leftovers.
	DupDrops int64
	// StaleDrops counts received packets dropped by the epoch/sequence
	// fence as leftovers from before a membership change.
	StaleDrops int64
	// Retransmits counts packets re-pulled from a send buffer after a
	// corrupt delivery was NACKed.
	Retransmits int64
}

// integrityCounters is the atomic backing store of IntegrityStats.
type integrityCounters struct {
	corrupt atomic.Int64
	dup     atomic.Int64
	stale   atomic.Int64
	retrans atomic.Int64
}

// sentSlot is one directed link's send buffer: the pristine wire image of
// the most recent packet the sender deposited, kept for NACK retransmission.
// The sender overwrites it on every send; the receiver pulls a copy when a
// delivery fails its checksum.
type sentSlot[T any] struct {
	mu sync.Mutex
	// pkts is a depth-2 ring of the packets most recently stored on this
	// link, newest first. Depth 2 is sufficient because the exchange is
	// lockstep: a sender can run at most one round ahead of a receiver
	// that is still NACK-retrying the previous round, so the packet a
	// retransmission needs is always one of the last two stored.
	pkts [2]packet[T]
	ok   [2]bool
}

func (s *sentSlot[T]) store(p packet[T]) {
	s.mu.Lock()
	s.pkts[1], s.ok[1] = s.pkts[0], s.ok[0]
	s.pkts[0], s.ok[0] = p, true
	s.mu.Unlock()
}

// load returns the buffered packet with sequence number seq, if the ring
// still holds it.
func (s *sentSlot[T]) load(seq int64) (packet[T], bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.pkts {
		if s.ok[i] && s.pkts[i].seq == seq {
			return s.pkts[i], true
		}
	}
	return packet[T]{}, false
}

func (s *sentSlot[T]) clear() {
	s.mu.Lock()
	s.pkts = [2]packet[T]{}
	s.ok = [2]bool{}
	s.mu.Unlock()
}

// Net is the N-rank interconnect of a device group.
type Net[T any] struct {
	link     machine.Link
	msgBytes int
	ranks    int
	// chans[from][to] carries from→to payloads. Depositing all sends
	// before receiving keeps a symmetric all-to-all round deadlock-free;
	// the capacity (4, see NewGroupNet) leaves headroom for injected
	// duplicate and reordered packets plus a leftover from the previous
	// round, so wire faults cannot wedge a sender either.
	chans [][]chan packet[T]
	// sent[from][to] is the per-link send buffer for NACK retransmission.
	sent [][]*sentSlot[T]

	// timeout bounds each Exchange round (0 = wait forever, the classic
	// deadlock-prone MPI behavior).
	timeout time.Duration
	// inj, when non-nil, injects planned faults into exchanges.
	inj *fault.Injector
	// retryBase is the first backoff interval for transient link faults.
	retryBase time.Duration
	// dead[r] is closed once rank r is declared dead (by fault injection,
	// or by a peer giving up on it); pending and future exchanges then
	// fail fast instead of waiting out the full deadline again.
	dead     []chan struct{}
	deadOnce []sync.Once
	// resumeB[r] carries rank r's restored checkpoint generation during the
	// cold-start resume handshake. A board, not a channel: every live peer
	// reads it.
	resumeB []*board[uint64]
	// epoch is the current communication epoch, bumped by NewEpoch on every
	// membership change. Exchange stamps outgoing packets with it and
	// rejects received packets from any other epoch (or the wrong
	// superstep) as stale.
	epoch atomic.Uint64
	// rejoinB[r] carries rank r's (epoch, generation, superstep) triple
	// during the mid-run rejoin handshake.
	rejoinB []*board[rejoinInfo]

	// memMu guards members, the ranks currently in lockstep. The
	// supervisor shrinks it on degradation and restores it on rejoin,
	// always between segments while no rank goroutine runs.
	memMu   sync.RWMutex
	members []int

	// linkStats[from][to] tallies per-directed-link traffic.
	linkStats [][]linkCounter
	// integ tallies lifetime link-integrity counters across all ranks.
	integ integrityCounters
}

// rejoinInfo is one rank's view of the rejoin agreement: the new epoch, the
// checkpoint generation the restart is based on, and the superstep lockstep
// resumes at.
type rejoinInfo struct {
	epoch uint64
	gen   uint64
	step  int64
}

// board is a one-shot, multi-reader handshake slot: the owner posts a value
// once per epoch and every peer reads it. NewEpoch replaces the boards.
type board[V any] struct {
	mu     sync.Mutex
	ready  chan struct{}
	val    V
	posted bool
}

func newBoard[V any]() *board[V] { return &board[V]{ready: make(chan struct{})} }

func (b *board[V]) post(v V) {
	b.mu.Lock()
	if !b.posted {
		b.val = v
		b.posted = true
		close(b.ready)
	}
	b.mu.Unlock()
}

func (b *board[V]) get() (V, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val, b.posted
}

// NewNet creates the classic two-rank CPU+MIC interconnect. msgBytes is the
// wire size of one message's value; 4 bytes of destination ID are added per
// message.
func NewNet[T any](link machine.Link, msgBytes int) (*Net[T], error) {
	return NewGroupNet[T](link, msgBytes, 2)
}

// NewGroupNet creates the interconnect of an N-rank device group
// (ranks >= 2). msgBytes is the wire size of one message's value; 4 bytes of
// destination ID are added per message.
func NewGroupNet[T any](link machine.Link, msgBytes, ranks int) (*Net[T], error) {
	if msgBytes <= 0 {
		return nil, fmt.Errorf("comm: msgBytes %d <= 0", msgBytes)
	}
	if ranks < 2 {
		return nil, fmt.Errorf("comm: ranks %d < 2", ranks)
	}
	n := &Net[T]{link: link, msgBytes: msgBytes, ranks: ranks, retryBase: defaultRetryBase}
	n.chans = make([][]chan packet[T], ranks)
	n.sent = make([][]*sentSlot[T], ranks)
	n.linkStats = make([][]linkCounter, ranks)
	n.dead = make([]chan struct{}, ranks)
	n.deadOnce = make([]sync.Once, ranks)
	n.resumeB = make([]*board[uint64], ranks)
	n.rejoinB = make([]*board[rejoinInfo], ranks)
	n.members = make([]int, ranks)
	for r := 0; r < ranks; r++ {
		n.chans[r] = make([]chan packet[T], ranks)
		n.sent[r] = make([]*sentSlot[T], ranks)
		n.linkStats[r] = make([]linkCounter, ranks)
		for s := 0; s < ranks; s++ {
			if s != r {
				// Capacity 4: the normal in-flight packet, plus an injected
				// duplicate, plus an injected reordered (stale) packet, plus
				// one leftover from the previous round.
				n.chans[r][s] = make(chan packet[T], 4)
				n.sent[r][s] = &sentSlot[T]{}
			}
		}
		n.dead[r] = make(chan struct{})
		n.resumeB[r] = newBoard[uint64]()
		n.rejoinB[r] = newBoard[rejoinInfo]()
		n.members[r] = r
	}
	return n, nil
}

// Ranks returns the size of the device group.
func (n *Net[T]) Ranks() int { return n.ranks }

// Epoch returns the current communication epoch (0 until the first
// membership change).
func (n *Net[T]) Epoch() uint64 { return n.epoch.Load() }

// NewEpoch opens a new communication epoch for a membership change (degrade
// or rejoin): every rank's dead marker is cleared, the handshake boards are
// replaced, leftover payloads are drained from the data channels, and the
// epoch counter is bumped. The drain matters once a membership change
// leaves two or more live ranks: a payload a dead rank (or its stranded
// peer) parked in a link's buffer would otherwise keep that buffer full and
// block the new epoch's first send forever — the receive-loop epoch fence
// only rejects stale payloads that a receiver actually reaches. Packets
// that slip through anyway (a rank that died mid-round, a wrong-superstep
// replay) are still rejected by the receive fence and counted in
// Stats.StaleDrops. Must only be called while no rank goroutine is running:
// the supervisor owns the net between lockstep segments, which is also what
// makes the drain safe — any resident packet predates the new epoch.
func (n *Net[T]) NewEpoch() uint64 {
	for r := 0; r < n.ranks; r++ {
		n.dead[r] = make(chan struct{})
		n.deadOnce[r] = sync.Once{}
		n.resumeB[r] = newBoard[uint64]()
		n.rejoinB[r] = newBoard[rejoinInfo]()
		for s := 0; s < n.ranks; s++ {
			if c := n.chans[r][s]; c != nil {
			drain:
				for {
					select {
					case <-c:
					default:
						break drain
					}
				}
			}
			if slot := n.sent[r][s]; slot != nil {
				slot.clear()
			}
		}
	}
	return n.epoch.Add(1)
}

// SetMembers replaces the live membership — the sorted set of ranks expected
// in lockstep. Called by the supervisor between segments; defaults to all
// ranks.
func (n *Net[T]) SetMembers(members []int) {
	m := append([]int(nil), members...)
	sort.Ints(m)
	n.memMu.Lock()
	n.members = m
	n.memMu.Unlock()
}

// Members returns a copy of the live membership, sorted ascending.
func (n *Net[T]) Members() []int {
	n.memMu.RLock()
	defer n.memMu.RUnlock()
	return append([]int(nil), n.members...)
}

// LinkStats returns the cumulative per-directed-link traffic, counted on the
// sender side, sorted by (From, To). Links that never carried a message are
// omitted.
func (n *Net[T]) LinkStats() []LinkStat {
	var out []LinkStat
	for from := 0; from < n.ranks; from++ {
		for to := 0; to < n.ranks; to++ {
			if from == to {
				continue
			}
			c := &n.linkStats[from][to]
			if m, rt := c.msgs.Load(), c.retrans.Load(); m > 0 || rt > 0 {
				out = append(out, LinkStat{From: from, To: to, Msgs: m, Bytes: c.bytes.Load(), Retransmits: rt})
			}
		}
	}
	return out
}

// Integrity returns the net's lifetime link-integrity counters, aggregated
// across all ranks and links.
func (n *Net[T]) Integrity() IntegrityStats {
	return IntegrityStats{
		CorruptDrops: n.integ.corrupt.Load(),
		DupDrops:     n.integ.dup.Load(),
		StaleDrops:   n.integ.stale.Load(),
		Retransmits:  n.integ.retrans.Load(),
	}
}

// SetTimeout bounds every subsequent Exchange round; 0 restores unbounded
// waiting. Call before the run starts.
func (n *Net[T]) SetTimeout(d time.Duration) { n.timeout = d }

// SetInjector attaches a fault injector (nil detaches it; the supervisor
// suspends injection during degraded segments so a planned fault cannot
// re-fire against an already-degraded group). Call while no rank goroutine
// is running.
func (n *Net[T]) SetInjector(inj *fault.Injector) { n.inj = inj }

// SetRetryBase overrides the first backoff interval for transient link
// faults (tests use tiny values to keep chaos runs fast).
func (n *Net[T]) SetRetryBase(d time.Duration) {
	if d > 0 {
		n.retryBase = d
	}
}

// markDead declares rank r dead, waking any exchange that waits on it.
func (n *Net[T]) markDead(r int) {
	n.deadOnce[r].Do(func() { close(n.dead[r]) })
}

// isDead reports whether rank r has been declared dead.
func (n *Net[T]) isDead(r int) bool {
	select {
	case <-n.dead[r]:
		return true
	default:
		return false
	}
}

// Endpoint returns rank r's view of the interconnect.
func (n *Net[T]) Endpoint(rank int) (*Endpoint[T], error) {
	if rank < 0 || rank >= n.ranks {
		if n.ranks == 2 {
			return nil, fmt.Errorf("comm: rank %d not in {0,1}", rank)
		}
		return nil, fmt.Errorf("comm: rank %d not in [0,%d)", rank, n.ranks)
	}
	return &Endpoint[T]{
		net: n, rank: rank,
		pending:    make([]packet[T], n.ranks),
		hasPending: make([]bool, n.ranks),
	}, nil
}

// Endpoint is one rank's exchange port. An endpoint is used by a single
// goroutine (its rank's engine loop); the Net underneath carries the
// cross-rank synchronization.
type Endpoint[T any] struct {
	net  *Net[T]
	rank int
	// step counts exchange rounds initiated by this endpoint; fault plans
	// index rounds with it.
	step int64
	// pending[peer] stashes a verified next-round packet: in lockstep the
	// sender may run one round ahead while this rank is still NACK-retrying
	// another link, and its early packet must be kept for the next round
	// rather than dropped. Endpoint methods run on a single goroutine, so
	// the stash needs no locking.
	pending    []packet[T]
	hasPending []bool
}

// Stats describes one exchange round from this endpoint's perspective.
type Stats struct {
	// MsgsSent and MsgsRecv are combined message counts, summed over peers.
	MsgsSent, MsgsRecv int64
	// BytesSent and BytesRecv are the wire sizes.
	BytesSent, BytesRecv int64
	// SimSeconds is the modeled PCIe time of the round: one latency plus
	// the slower direction's payload (the link is full duplex).
	SimSeconds float64
	// WallNS is the measured host wall-clock duration of the round in
	// nanoseconds, including the block waiting for peers (the BSP
	// lockstep wait) and any injected delay or retry backoff.
	WallNS int64
	// Retries is the number of transient link faults retried away this
	// round.
	Retries int64
	// StaleDrops is the number of received packets rejected this round for
	// carrying a previous epoch (or an impossible future sequence number) —
	// leftovers of a rank that died mid-round, fenced off after a rejoin
	// instead of delivered as live data.
	StaleDrops int64
	// CorruptDrops is the number of received packets dropped this round
	// for failing their CRC32C checksum or decode validation; each drop is
	// NACKed and repaired by retransmission.
	CorruptDrops int64
	// DupDrops is the number of received packets dropped this round for
	// carrying an already-delivered sequence number — duplicated or
	// reordered leftovers on the link.
	DupDrops int64
	// Retransmits is the number of packets re-pulled from a peer's send
	// buffer this round after NACKing a corrupt delivery.
	Retransmits int64
}

// livePeers returns the current members excluding this rank, ascending.
func (e *Endpoint[T]) livePeers() []int {
	n := e.net
	n.memMu.RLock()
	defer n.memMu.RUnlock()
	peers := make([]int, 0, len(n.members)-1)
	for _, m := range n.members {
		if m != e.rank {
			peers = append(peers, m)
		}
	}
	return peers
}

// NumLivePeers returns how many other ranks are currently in lockstep with
// this one. Zero means exchanges are no-ops (a lone survivor).
func (e *Endpoint[T]) NumLivePeers() int { return len(e.livePeers()) }

// Ranks is the size of the device group this endpoint belongs to.
func (e *Endpoint[T]) Ranks() int { return e.net.ranks }

// Exchange ships this rank's combined remote messages and local
// active-vertex count to the peer, and receives the peer's — the classic
// two-rank round (the group's other member is the single peer; with more
// than two live members use ExchangeAll). Both ranks must call Exchange once
// per iteration; the call blocks until the peer's payload arrives, which is
// the implicit cross-device synchronization point of the BSP superstep.
//
// The round is bounded by the net's timeout (SetTimeout): a peer that does
// not show up within the deadline is declared dead and a *DeviceFailedError
// naming it is returned, instead of the unbounded wait that would otherwise
// deadlock the run. Injected faults (SetInjector) can drop this rank, delay
// it, or fail the link transiently; transient faults are retried with
// capped exponential backoff and reported in Stats.Retries.
func (e *Endpoint[T]) Exchange(msgs []Msg[T], activeLocal int64) (recv []Msg[T], activeRemote int64, st Stats, err error) {
	out := make([][]Msg[T], e.net.ranks)
	if peer := e.peerOf(); peer >= 0 {
		out[peer] = msgs
	}
	return e.exchangeAll(out, activeLocal)
}

// peerOf returns the single live peer, or -1 when the live membership does
// not consist of exactly this rank plus one other.
func (e *Endpoint[T]) peerOf() int {
	peers := e.livePeers()
	if len(peers) == 1 {
		return peers[0]
	}
	if e.net.ranks == 2 {
		return 1 - e.rank
	}
	return -1
}

// ExchangeAll ships one combined payload per live peer and receives each
// peer's payload — the all-to-all generalization of Exchange. out is indexed
// by destination rank (entries for this rank or non-members are ignored; a
// short or nil slice sends empty payloads). Every live member must call
// ExchangeAll once per iteration; the call blocks until all peers' payloads
// arrive, which is the cross-device synchronization point of the BSP
// superstep. With zero live peers the round is a no-op that touches neither
// the injector nor the stats, so a lone survivor can keep its engine loop
// unchanged.
//
// Failure semantics match Exchange: the round is bounded by the net's
// timeout, injected faults can drop, delay, or transiently fail this rank,
// and a fault that outlives the retry budget is a permanent link loss. With
// one live peer the loss blames that peer (indistinguishable from its
// death); with several it blames this rank — one rank losing all its links
// at once is its own NIC, not N-1 simultaneous peer deaths.
func (e *Endpoint[T]) ExchangeAll(out [][]Msg[T], activeLocal int64) (recv []Msg[T], activeRemote int64, st Stats, err error) {
	return e.exchangeAll(out, activeLocal)
}

func (e *Endpoint[T]) exchangeAll(out [][]Msg[T], activeLocal int64) (recv []Msg[T], activeRemote int64, st Stats, err error) {
	n := e.net
	peers := e.livePeers()
	step := e.step
	e.step++
	wallStart := time.Now()

	if len(peers) == 0 {
		// A lone survivor: no cross-device traffic, no modeled link time.
		return nil, 0, st, nil
	}

	// A rank declared dead stays dead: fail fast on every later round.
	if n.isDead(e.rank) {
		return nil, 0, st, &DeviceFailedError{Rank: e.rank, Superstep: step, Reason: "rank previously declared dead"}
	}
	if n.inj != nil {
		// Partition check first: a severed link is a topology fault, not a
		// device fault. A real transport would discover the cut as per-link
		// exchange timeouts; the deterministic injector lets every affected
		// rank report its lost links in the same round, which is the
		// topology the supervisor aggregates to fence the minority side.
		var severed []int
		for _, peer := range peers {
			if n.inj.Severed(e.rank, peer, step) {
				severed = append(severed, peer)
			}
		}
		if len(severed) > 0 {
			return nil, 0, st, &LinkSeveredError{Rank: e.rank, Superstep: step, Peers: severed}
		}
		if n.inj.Drop(e.rank, step) {
			// The device dies here: it never sends this round, and the
			// closed dead channel lets the peers fail fast instead of
			// waiting out their deadlines.
			n.markDead(e.rank)
			return nil, 0, st, &DeviceFailedError{Rank: e.rank, Superstep: step, Injected: true, Reason: "injected exchange drop"}
		}
		if d := n.inj.Delay(e.rank, step); d > 0 {
			time.Sleep(d)
		}
		// Transient link faults: retry with capped exponential backoff. A
		// fault that outlives the retry budget is a permanent link loss —
		// with a single peer indistinguishable from that peer's death, and
		// treated as one; with several peers it is this rank's own link.
		backoff := n.retryBase
		for attempt := 0; n.inj.LinkFails(e.rank, step, attempt); attempt++ {
			if attempt >= maxLinkRetries {
				blamed := e.rank
				if len(peers) == 1 {
					blamed = peers[0]
				}
				n.markDead(blamed)
				return nil, 0, st, &DeviceFailedError{
					Rank: blamed, Superstep: step, Injected: true,
					Reason: fmt.Sprintf("link failed %d consecutive attempts", attempt+1),
				}
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxRetryBackoff {
				backoff = maxRetryBackoff
			}
			st.Retries++
		}
	}

	// One deadline covers the whole round (all sends + all receives).
	var timeoutC <-chan time.Time
	if n.timeout > 0 {
		timer := time.NewTimer(n.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}

	epoch := n.epoch.Load()
	perMsg := int64(n.msgBytes + 4)
	for _, peer := range peers {
		var msgs []Msg[T]
		if peer < len(out) {
			msgs = out[peer]
		}
		pkt := encodePacket(n, msgs, activeLocal, epoch, step)

		// The pristine packet goes into the link's send buffer before any
		// transmission, so a NACKing receiver can always pull a clean copy.
		slot := n.sent[e.rank][peer]
		prev, havePrev := slot.load(step - 1)
		slot.store(pkt)

		// Wire faults fire at the link seam, between the buffer and the
		// channel: the buffered copy stays pristine, only the transmitted
		// bytes are damaged, duplicated, or swapped.
		sends := make([]packet[T], 0, 3)
		if n.inj != nil && n.inj.Reorder(e.rank, step) && havePrev {
			// Swap adjacent packets: the previous round's packet is
			// transmitted ahead of the current one.
			sends = append(sends, prev)
		}
		first := pkt
		if n.inj != nil && n.inj.CorruptWire(e.rank, step, 0) {
			first = corruptPacket(pkt, step)
		}
		sends = append(sends, first)
		if n.inj != nil && n.inj.Duplicate(e.rank, step) {
			sends = append(sends, first)
		}

		for _, sp := range sends {
			select {
			case n.chans[e.rank][peer] <- sp:
			case <-n.dead[peer]:
				return nil, 0, st, &DeviceFailedError{Rank: peer, Superstep: step, Reason: "peer dead before send"}
			case <-n.dead[e.rank]:
				return nil, 0, st, &DeviceFailedError{Rank: e.rank, Superstep: step, Reason: "declared dead by peer"}
			case <-timeoutC:
				n.markDead(peer)
				return nil, 0, st, &DeviceFailedError{Rank: peer, Superstep: step, Reason: fmt.Sprintf("exchange send timed out after %s", n.timeout)}
			}
		}
		// Only the real packet counts as traffic; duplicated and reordered
		// copies are fault artifacts, invisible to the cost model.
		lc := &n.linkStats[e.rank][peer]
		lc.msgs.Add(int64(len(msgs)))
		lc.bytes.Add(int64(len(msgs)) * perMsg)
		st.MsgsSent += int64(len(msgs))
	}

	// Receive from every peer. Every delivery is checksum-verified before
	// anything else is trusted; the decoded wire header is then the
	// authority for the epoch/sequence fence. Classification:
	//
	//	decode/CRC failure   → CorruptDrops, NACK: pull a retransmission
	//	                       from the sender's buffer (capped backoff;
	//	                       budget exhausted declares the link dead)
	//	wrong epoch          → StaleDrops (leftover from before a
	//	                       membership change)
	//	seq < expected       → DupDrops (duplicated or reordered leftover)
	//	seq > expected       → StaleDrops (impossible future packet)
	//	exact epoch and seq  → delivered
	for _, peer := range peers {
		var p packet[T]
		attempt := 0
		backoff := n.retryBase
		fromChannel := true
		// A packet stashed last round (the peer ran ahead while this rank
		// was NACK-retrying) is consumed before the channel; it re-enters
		// the classification below like any other delivery.
		if e.hasPending != nil && e.hasPending[peer] {
			p = e.pending[peer]
			e.pending[peer] = packet[T]{}
			e.hasPending[peer] = false
			fromChannel = false
		}
	recv:
		for {
			if fromChannel {
				select {
				case p = <-n.chans[peer][e.rank]:
				case <-n.dead[peer]:
					// The peer died, but it may have sent this round's payload
					// before dying — drain it if so, otherwise the round is lost.
					select {
					case p = <-n.chans[peer][e.rank]:
					default:
						return nil, 0, st, &DeviceFailedError{Rank: peer, Superstep: step, Reason: "peer died mid-round"}
					}
				case <-n.dead[e.rank]:
					return nil, 0, st, &DeviceFailedError{Rank: e.rank, Superstep: step, Reason: "declared dead by peer"}
				case <-timeoutC:
					n.markDead(peer)
					return nil, 0, st, &DeviceFailedError{Rank: peer, Superstep: step, Reason: fmt.Sprintf("exchange timed out after %s", n.timeout)}
				}
			}
			fromChannel = true
			hdr, msgs32, derr := decodePacket(p.wire)
			if derr != nil {
				// Bad bytes on the wire: drop the delivery and NACK. The
				// round trip to the sender is modeled by the backoff sleep;
				// the retransmission is pulled from the sender's buffer. A
				// link that stays corrupt past the retry budget is dead,
				// and the corrupting sender is to blame.
				st.CorruptDrops++
				n.integ.corrupt.Add(1)
				attempt++
				if attempt > maxLinkRetries {
					n.markDead(peer)
					return nil, 0, st, &DeviceFailedError{
						Rank: peer, Superstep: step, Injected: true,
						Reason: fmt.Sprintf("link integrity: %d consecutive corrupt deliveries (%v)", attempt, derr),
					}
				}
				time.Sleep(backoff)
				if backoff *= 2; backoff > maxRetryBackoff {
					backoff = maxRetryBackoff
				}
				if rp, ok := n.sent[peer][e.rank].load(step); ok {
					st.Retransmits++
					n.integ.retrans.Add(1)
					n.linkStats[peer][e.rank].retrans.Add(1)
					// A persistently corrupting link damages retransmissions
					// too; the injector indexes transmission attempts.
					if n.inj != nil && n.inj.CorruptWire(peer, step, attempt) {
						rp = corruptPacket(rp, step+int64(attempt))
					}
					p = rp
					fromChannel = false
				}
				continue
			}
			if hdr.epoch != epoch {
				st.StaleDrops++
				n.integ.stale.Add(1)
				continue
			}
			if hdr.seq != step {
				switch {
				case hdr.seq < step:
					st.DupDrops++
					n.integ.dup.Add(1)
				case hdr.seq == step+1 && e.hasPending != nil && !e.hasPending[peer]:
					// The lockstep peer ran one round ahead while this rank
					// was NACK-retrying: keep its early packet for the next
					// round instead of losing it.
					e.pending[peer] = p
					e.hasPending[peer] = true
				case hdr.seq == step+1:
					// A second copy of the stashed next-round packet
					// (injected duplicate): drop it.
					st.DupDrops++
					n.integ.dup.Add(1)
				default:
					// More than one round ahead is impossible in lockstep:
					// a stale replay.
					st.StaleDrops++
					n.integ.stale.Add(1)
				}
				continue
			}
			// Verified: the wire image is authoritative. Full packets
			// rebuild their messages from the decoded payload; header-only
			// packets carry them out of band.
			p.active = hdr.active
			if !hdr.headerOnly {
				p.msgs = msgsFromF32[T](msgs32)
			}
			break recv
		}
		recv = append(recv, p.msgs...)
		activeRemote += p.active
		st.MsgsRecv += int64(len(p.msgs))
	}

	st.BytesSent = st.MsgsSent * perMsg
	st.BytesRecv = st.MsgsRecv * perMsg
	slower := st.BytesSent
	if st.BytesRecv > slower {
		slower = st.BytesRecv
	}
	st.SimSeconds = n.link.TransferSeconds(slower)
	st.WallNS = time.Since(wallStart).Nanoseconds()
	return recv, activeRemote, st, nil
}

// Abort declares this endpoint's own rank dead — called by an engine whose
// superstep failed outside the exchange (for example a recovered panic in a
// user function), so the peers' next exchange fails fast instead of timing
// out.
func (e *Endpoint[T]) Abort() { e.net.markDead(e.rank) }

// Step returns the number of exchange rounds this endpoint has initiated.
func (e *Endpoint[T]) Step() int64 { return e.step }

// SetStep aligns the endpoint's round counter so that fault-plan steps and
// failure reports index absolute supersteps after a cold-start resume (a run
// restored at superstep s starts its first exchange as round s, not 0).
func (e *Endpoint[T]) SetStep(step int64) { e.step = step }

// Rank returns this endpoint's rank.
func (e *Endpoint[T]) Rank() int { return e.rank }

// readBoard waits for peer's handshake board, bounded by the net's timeout
// and by rank death. what names the handshake in failure reasons.
func readBoard[V any, T any](e *Endpoint[T], boards []*board[V], peer int, timeoutC <-chan time.Time, what string) (V, error) {
	n := e.net
	var zero V
	select {
	case <-boards[peer].ready:
	case <-n.dead[peer]:
		if v, ok := boards[peer].get(); ok {
			return v, nil
		}
		return zero, &DeviceFailedError{Rank: peer, Reason: fmt.Sprintf("peer died during %s handshake", what)}
	case <-n.dead[e.rank]:
		return zero, &DeviceFailedError{Rank: e.rank, Reason: "declared dead by peer"}
	case <-timeoutC:
		n.markDead(peer)
		return zero, &DeviceFailedError{Rank: peer, Reason: fmt.Sprintf("%s handshake timed out after %s", what, n.timeout)}
	}
	v, _ := boards[peer].get()
	return v, nil
}

// ResumeHandshake exchanges the restored checkpoint generation with every
// live peer before a resumed run starts. All ranks must agree on the
// generation they restored from — in the paper's symmetric-MPI setting this
// is where the processes would reconcile their views of shared storage; here
// it guards against wiring bugs that would restore the ranks from different
// snapshots. It is bounded by the net's timeout and by peer death, like
// Exchange.
func (e *Endpoint[T]) ResumeHandshake(gen uint64) (uint64, error) {
	n := e.net
	var timeoutC <-chan time.Time
	if n.timeout > 0 {
		timer := time.NewTimer(n.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	n.resumeB[e.rank].post(gen)
	for _, peer := range e.livePeers() {
		peerGen, err := readBoard(e, n.resumeB, peer, timeoutC, "resume")
		if err != nil {
			return 0, err
		}
		if peerGen != gen {
			return peerGen, fmt.Errorf("comm: resume generation mismatch: rank %d restored gen %d, rank %d restored gen %d",
				e.rank, gen, peer, peerGen)
		}
	}
	return gen, nil
}

// RejoinHandshake re-admits restarted ranks at a superstep barrier after a
// degrade→heal cycle. Every live member posts the (epoch, checkpoint
// generation, restart superstep) triple it believes the healed run resumes
// under and must agree with every peer on all three; the epoch must also
// match the net's current epoch as bumped by the supervisor's NewEpoch.
// Mirrors ResumeHandshake: bounded by the net's timeout and by peer death.
func (e *Endpoint[T]) RejoinHandshake(epoch, gen uint64, step int64) error {
	n := e.net
	if cur := n.epoch.Load(); cur != epoch {
		return fmt.Errorf("comm: rejoin epoch mismatch: rank %d expects epoch %d, net is at epoch %d",
			e.rank, epoch, cur)
	}
	var timeoutC <-chan time.Time
	if n.timeout > 0 {
		timer := time.NewTimer(n.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	info := rejoinInfo{epoch: epoch, gen: gen, step: step}
	n.rejoinB[e.rank].post(info)
	for _, peer := range e.livePeers() {
		peerInfo, err := readBoard(e, n.rejoinB, peer, timeoutC, "rejoin")
		if err != nil {
			if dfe, ok := err.(*DeviceFailedError); ok && dfe.Superstep == 0 {
				dfe.Superstep = step
			}
			return err
		}
		if peerInfo != info {
			return fmt.Errorf("comm: rejoin mismatch: rank %d at (epoch %d, gen %d, step %d), rank %d at (epoch %d, gen %d, step %d)",
				e.rank, info.epoch, info.gen, info.step, peer, peerInfo.epoch, peerInfo.gen, peerInfo.step)
		}
	}
	return nil
}

// Combiner accumulates remote messages per destination and combines
// duplicates with a user reduction before the exchange ("to reduce the
// communication overhead, a combination is conducted to the remote message
// buffer"). It is the remote message buffer of Fig. 2 for reducible types.
type Combiner[T any] struct {
	combine func(a, b T) T
	has     []bool
	vals    []T
	touched []graph.VertexID
}

// NewCombiner creates a combiner over n destination vertices.
func NewCombiner[T any](n int, combine func(a, b T) T) *Combiner[T] {
	return &Combiner[T]{
		combine: combine,
		has:     make([]bool, n),
		vals:    make([]T, n),
	}
}

// Add merges one remote message. Not safe for concurrent use; the engine
// shards combiners per thread and merges, or guards with the generation
// scheme's ownership, depending on the scheme.
func (c *Combiner[T]) Add(dst graph.VertexID, v T) {
	if c.has[dst] {
		c.vals[dst] = c.combine(c.vals[dst], v)
		return
	}
	c.has[dst] = true
	c.vals[dst] = v
	c.touched = append(c.touched, dst)
}

// Merge folds another combiner into this one (used to join per-thread
// shards before the exchange).
func (c *Combiner[T]) Merge(o *Combiner[T]) {
	for _, dst := range o.touched {
		c.Add(dst, o.vals[dst])
	}
}

// Drain appends the combined messages to out, resets the combiner, and
// returns out. Message order follows first-touch order, which is
// deterministic for a deterministic generation order.
func (c *Combiner[T]) Drain(out []Msg[T]) []Msg[T] {
	var zero T
	for _, dst := range c.touched {
		out = append(out, Msg[T]{Dst: dst, Val: c.vals[dst]})
		c.has[dst] = false
		c.vals[dst] = zero
	}
	c.touched = c.touched[:0]
	return out
}

// DrainRouted distributes the combined messages into per-rank buckets using
// rankOf (the partition assignment), resets the combiner, and returns the
// buckets. out must have one slot per rank of the group; existing bucket
// contents are appended to. Message order within a bucket follows
// first-touch order, like Drain.
func (c *Combiner[T]) DrainRouted(out [][]Msg[T], rankOf func(graph.VertexID) int) [][]Msg[T] {
	var zero T
	for _, dst := range c.touched {
		r := rankOf(dst)
		out[r] = append(out[r], Msg[T]{Dst: dst, Val: c.vals[dst]})
		c.has[dst] = false
		c.vals[dst] = zero
	}
	c.touched = c.touched[:0]
	return out
}

// Len returns the number of distinct destinations currently held.
func (c *Combiner[T]) Len() int { return len(c.touched) }
