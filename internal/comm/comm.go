// Package comm provides the cross-device message exchange of the
// heterogeneous runtime. The paper runs MPI in symmetric mode — CPU as rank
// 0, MIC as rank 1, connected by PCIe — and between the message-generation
// and message-processing steps each device combines its remote message
// buffer and ships the combined result to the other device as a single MPI
// message (§IV-A).
//
// Here the two ranks are in-process engines; the transport is a pair of
// buffered channels (real data movement, real synchronization), and the
// PCIe cost is computed from the actual bytes shipped using the machine
// package's link model.
package comm

import (
	"fmt"

	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
)

// Msg is one combined remote message <dst_id, value>.
type Msg[T any] struct {
	Dst graph.VertexID
	Val T
}

// packet is one exchange round's payload: the combined messages plus the
// sender's active-vertex count, which the BSP termination check needs.
type packet[T any] struct {
	msgs   []Msg[T]
	active int64
}

// Net is the two-rank interconnect.
type Net[T any] struct {
	link     machine.Link
	msgBytes int
	chans    [2]chan packet[T]
}

// NewNet creates the interconnect. msgBytes is the wire size of one
// message's value; 4 bytes of destination ID are added per message.
func NewNet[T any](link machine.Link, msgBytes int) (*Net[T], error) {
	if msgBytes <= 0 {
		return nil, fmt.Errorf("comm: msgBytes %d <= 0", msgBytes)
	}
	n := &Net[T]{link: link, msgBytes: msgBytes}
	// Capacity 1 lets both ranks send before either receives, so a
	// symmetric Exchange cannot deadlock.
	n.chans[0] = make(chan packet[T], 1)
	n.chans[1] = make(chan packet[T], 1)
	return n, nil
}

// Endpoint returns rank r's view of the interconnect.
func (n *Net[T]) Endpoint(rank int) (*Endpoint[T], error) {
	if rank != 0 && rank != 1 {
		return nil, fmt.Errorf("comm: rank %d not in {0,1}", rank)
	}
	return &Endpoint[T]{net: n, rank: rank}, nil
}

// Endpoint is one rank's exchange port.
type Endpoint[T any] struct {
	net  *Net[T]
	rank int
}

// Stats describes one exchange round from this endpoint's perspective.
type Stats struct {
	// MsgsSent and MsgsRecv are combined message counts.
	MsgsSent, MsgsRecv int64
	// BytesSent and BytesRecv are the wire sizes.
	BytesSent, BytesRecv int64
	// SimSeconds is the modeled PCIe time of the round: one latency plus
	// the slower direction's payload (the link is full duplex).
	SimSeconds float64
}

// Exchange ships this rank's combined remote messages and local
// active-vertex count to the peer, and receives the peer's. Both ranks must
// call Exchange once per iteration; the call blocks until the peer's
// payload arrives, which is the implicit cross-device synchronization point
// of the BSP superstep.
func (e *Endpoint[T]) Exchange(msgs []Msg[T], activeLocal int64) (recv []Msg[T], activeRemote int64, st Stats) {
	e.net.chans[e.rank] <- packet[T]{msgs: msgs, active: activeLocal}
	p := <-e.net.chans[1-e.rank]
	perMsg := int64(e.net.msgBytes + 4)
	st.MsgsSent = int64(len(msgs))
	st.MsgsRecv = int64(len(p.msgs))
	st.BytesSent = st.MsgsSent * perMsg
	st.BytesRecv = st.MsgsRecv * perMsg
	slower := st.BytesSent
	if st.BytesRecv > slower {
		slower = st.BytesRecv
	}
	st.SimSeconds = e.net.link.TransferSeconds(slower)
	return p.msgs, p.active, st
}

// Rank returns this endpoint's rank.
func (e *Endpoint[T]) Rank() int { return e.rank }

// Combiner accumulates remote messages per destination and combines
// duplicates with a user reduction before the exchange ("to reduce the
// communication overhead, a combination is conducted to the remote message
// buffer"). It is the remote message buffer of Fig. 2 for reducible types.
type Combiner[T any] struct {
	combine func(a, b T) T
	has     []bool
	vals    []T
	touched []graph.VertexID
}

// NewCombiner creates a combiner over n destination vertices.
func NewCombiner[T any](n int, combine func(a, b T) T) *Combiner[T] {
	return &Combiner[T]{
		combine: combine,
		has:     make([]bool, n),
		vals:    make([]T, n),
	}
}

// Add merges one remote message. Not safe for concurrent use; the engine
// shards combiners per thread and merges, or guards with the generation
// scheme's ownership, depending on the scheme.
func (c *Combiner[T]) Add(dst graph.VertexID, v T) {
	if c.has[dst] {
		c.vals[dst] = c.combine(c.vals[dst], v)
		return
	}
	c.has[dst] = true
	c.vals[dst] = v
	c.touched = append(c.touched, dst)
}

// Merge folds another combiner into this one (used to join per-thread
// shards before the exchange).
func (c *Combiner[T]) Merge(o *Combiner[T]) {
	for _, dst := range o.touched {
		c.Add(dst, o.vals[dst])
	}
}

// Drain appends the combined messages to out, resets the combiner, and
// returns out. Message order follows first-touch order, which is
// deterministic for a deterministic generation order.
func (c *Combiner[T]) Drain(out []Msg[T]) []Msg[T] {
	var zero T
	for _, dst := range c.touched {
		out = append(out, Msg[T]{Dst: dst, Val: c.vals[dst]})
		c.has[dst] = false
		c.vals[dst] = zero
	}
	c.touched = c.touched[:0]
	return out
}

// Len returns the number of distinct destinations currently held.
func (c *Combiner[T]) Len() int { return len(c.touched) }
