package metis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
)

func TestPartitionValidation(t *testing.T) {
	g := graph.PaperExample()
	if _, err := Partition(g, 0, DefaultOptions()); err == nil {
		t.Error("accepted k=0")
	}
	o := DefaultOptions()
	o.Imbalance = -1
	if _, err := Partition(g, 2, o); err == nil {
		t.Error("accepted negative imbalance")
	}
	o = DefaultOptions()
	o.RefinePasses = -1
	if _, err := Partition(g, 2, o); err == nil {
		t.Error("accepted negative passes")
	}
}

func TestPartitionTrivialCases(t *testing.T) {
	g := graph.PaperExample()
	p1, err := Partition(g, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range p1 {
		if p != 0 {
			t.Fatal("k=1 must put everything in part 0")
		}
	}
	p16, err := Partition(g, 16, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, p := range p16 {
		if p < 0 || p >= 16 {
			t.Fatalf("part %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 16 {
		t.Fatalf("k>=n case: %d distinct parts, want 16", len(seen))
	}
	// Empty graph.
	empty := &graph.CSR{Offsets: []int64{0}}
	pe, err := Partition(empty, 4, DefaultOptions())
	if err != nil || len(pe) != 0 {
		t.Fatalf("empty graph: %v %v", pe, err)
	}
}

func TestPartitionRangeAndDeterminism(t *testing.T) {
	g, err := gen.Community(gen.DefaultCommunity(3000))
	if err != nil {
		t.Fatal(err)
	}
	const k = 16
	pa, err := Partition(g, k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Partition(g, k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for v := range pa {
		if pa[v] < 0 || pa[v] >= k {
			t.Fatalf("part[%d] = %d out of range", v, pa[v])
		}
		if pa[v] != pb[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	g, err := gen.Community(gen.DefaultCommunity(4000))
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	part, err := Partition(g, k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, imb := BalanceStats(g, part, k)
	if imb > 0.30 {
		t.Errorf("imbalance = %.3f, want <= 0.30", imb)
	}
}

// randomAssign is the baseline the partitioner must beat on cut size.
func randomAssign(n, k int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	part := make([]int32, n)
	for v := range part {
		part[v] = int32(rng.Intn(k))
	}
	return part
}

func TestPartitionBeatsRandomCutOnCommunityGraph(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 5000, Communities: 25, IntraDeg: 3, InterFrac: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	const k = 16
	part, err := Partition(g, k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cut := EdgeCut(g, part)
	randCut := EdgeCut(g, randomAssign(g.NumVertices(), k, 9))
	if cut*3 > randCut {
		t.Errorf("metis cut %d not well below random cut %d", cut, randCut)
	}
}

func TestPartitionBeatsRandomCutOnPowerLaw(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 4000, MeanDeg: 10, Alpha: 2.2, FrontBias: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	part, err := Partition(g, k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cut, randCut := EdgeCut(g, part), EdgeCut(g, randomAssign(g.NumVertices(), k, 9)); cut >= randCut {
		t.Errorf("metis cut %d >= random cut %d even on power-law", cut, randCut)
	}
}

func TestEdgeCutCounts(t *testing.T) {
	g := graph.PaperExample()
	all0 := make([]int32, 16)
	if EdgeCut(g, all0) != 0 {
		t.Error("single part must have zero cut")
	}
	alt := make([]int32, 16)
	for v := range alt {
		alt[v] = int32(v % 2)
	}
	cut := EdgeCut(g, alt)
	// Oracle: count directed edges with different-parity endpoints.
	var want int64
	for u := 0; u < 16; u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if u%2 != int(v)%2 {
				want++
			}
		}
	}
	if cut != want {
		t.Errorf("cut = %d, want %d", cut, want)
	}
}

func TestBalanceStats(t *testing.T) {
	g := graph.PaperExample()
	part := make([]int32, 16)
	for v := 8; v < 16; v++ {
		part[v] = 1
	}
	weights, imb := BalanceStats(g, part, 2)
	var total int64
	for _, w := range weights {
		total += w
	}
	if total != 16+28 {
		t.Errorf("total weight = %d, want 44 (n + edges)", total)
	}
	if imb < 0 {
		t.Errorf("imbalance = %v", imb)
	}
	if _, z := BalanceStats(&graph.CSR{Offsets: []int64{0}}, nil, 0); z != 0 {
		t.Error("degenerate BalanceStats not zero")
	}
}

func TestSymmetrize(t *testing.T) {
	// 0->1 twice and 1->0 once collapse into one undirected edge weight 3.
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1, 0)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 0, 0)
	b.AddEdge(2, 2, 0) // self loop must vanish
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := symmetrize(g)
	if w.n() != 3 {
		t.Fatal("vertex count changed")
	}
	if got := w.xadj[1] - w.xadj[0]; got != 1 {
		t.Fatalf("vertex 0 has %d undirected neighbors, want 1", got)
	}
	if w.adjwgt[w.xadj[0]] != 3 {
		t.Fatalf("collapsed weight = %d, want 3", w.adjwgt[w.xadj[0]])
	}
	if got := w.xadj[3] - w.xadj[2]; got != 0 {
		t.Fatalf("self loop survived: vertex 2 has %d neighbors", got)
	}
	// Vertex weights: 1 + out-degree.
	if w.vwgt[0] != 3 || w.vwgt[1] != 2 || w.vwgt[2] != 2 {
		t.Fatalf("vwgt = %v", w.vwgt)
	}
}

func TestCoarsenShrinks(t *testing.T) {
	g, err := gen.Community(gen.DefaultCommunity(2000))
	if err != nil {
		t.Fatal(err)
	}
	w := symmetrize(g)
	rng := rand.New(rand.NewSource(4))
	levels := coarsen(w, 8, 200, rng)
	if len(levels) < 2 {
		t.Fatal("no coarsening happened")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].g.n() >= levels[i-1].g.n() {
			t.Fatalf("level %d did not shrink: %d -> %d", i, levels[i-1].g.n(), levels[i].g.n())
		}
		// Total vertex weight is conserved by contraction.
		if levels[i].g.totalVWgt() != levels[i-1].g.totalVWgt() {
			t.Fatalf("level %d lost vertex weight", i)
		}
	}
}

func TestRefineNeverWorsensCut(t *testing.T) {
	g, err := gen.Community(gen.DefaultCommunity(1500))
	if err != nil {
		t.Fatal(err)
	}
	w := symmetrize(g)
	rng := rand.New(rand.NewSource(6))
	const k = 6
	part := make([]int32, w.n())
	for v := range part {
		part[v] = int32(rng.Intn(k))
	}
	before := w.cut(part)
	refine(w, part, k, 0.10, 6)
	after := w.cut(part)
	if after > before {
		t.Errorf("refine worsened cut: %d -> %d", before, after)
	}
	if after == before {
		t.Errorf("refine made no progress on a random partition (before=%d)", before)
	}
}

func TestProject(t *testing.T) {
	coarse := []int32{7, 9}
	f2c := []int32{0, 1, 1, 0}
	fine := project(coarse, f2c)
	want := []int32{7, 9, 9, 7}
	for i := range want {
		if fine[i] != want[i] {
			t.Fatalf("project = %v, want %v", fine, want)
		}
	}
}

// property: for arbitrary small random graphs and any k, the partition is
// total, in range, and deterministic.
func TestQuickPartitionWellFormed(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%80
		k := 1 + int(kRaw)%10
		b := graph.NewBuilder(n, false)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		p1, err := Partition(g, k, DefaultOptions())
		if err != nil || len(p1) != n {
			return false
		}
		for _, p := range p1 {
			if p < 0 || int(p) >= max(k, n) {
				return false
			}
		}
		p2, err := Partition(g, k, DefaultOptions())
		if err != nil {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPartitionStarGraph(t *testing.T) {
	// A star graph has no good cut; the partitioner must still terminate
	// with a balanced result.
	n := 600
	b := graph.NewBuilder(n, false)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VertexID(v), 0, 0)
	}
	g, _ := b.Build()
	part, err := Partition(g, 4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, imb := BalanceStats(g, part, 4)
	if imb > 0.5 {
		t.Errorf("star graph imbalance %.3f", imb)
	}
}

func TestPartitionEdgelessGraph(t *testing.T) {
	g := &graph.CSR{Offsets: make([]int64, 101)}
	part, err := Partition(g, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int32]int{}
	for _, p := range part {
		counts[p]++
	}
	// Balance must still hold with no edges to guide anything.
	for p, c := range counts {
		if c > 40 {
			t.Errorf("part %d holds %d of 100 isolated vertices", p, c)
		}
	}
}
