package metis

// refine improves a k-way partition with greedy boundary passes in the
// FM/KL spirit: every boundary vertex is examined for the gain of moving to
// its best-connected other part; positive-gain moves that keep every part
// within the balance tolerance are applied immediately. Passes repeat until
// a pass makes no move or maxPasses is hit. Gains are recomputed on the
// fly, which is O(boundary * degree) per pass — fine at the scales this
// reproduction targets, and far simpler than bucket gain structures.
func refine(g *wgraph, part []int32, k int, imbalance float64, maxPasses int) {
	n := g.n()
	pw := g.partWeights(part, k)
	maxW := int64(float64(g.totalVWgt()) / float64(k) * (1 + imbalance))
	if maxW < 1 {
		maxW = 1
	}
	rebalance(g, part, pw, maxW)
	conn := make([]int64, k) // scratch: connectivity of one vertex per part
	for pass := 0; pass < maxPasses; pass++ {
		moves := 0
		for v := 0; v < n; v++ {
			home := part[v]
			// Compute connectivity to each part; skip interior vertices.
			boundary := false
			touched := []int32{}
			for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
				p := part[g.adjncy[e]]
				if conn[p] == 0 {
					touched = append(touched, p)
				}
				conn[p] += g.adjwgt[e]
				if p != home {
					boundary = true
				}
			}
			if boundary {
				best, bestGain := home, int64(0)
				for _, p := range touched {
					if p == home {
						continue
					}
					gain := conn[p] - conn[home]
					if gain > bestGain && pw[p]+g.vwgt[v] <= maxW {
						bestGain, best = gain, p
					}
				}
				if best != home {
					pw[home] -= g.vwgt[v]
					pw[best] += g.vwgt[v]
					part[v] = best
					moves++
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
		}
		if moves == 0 {
			break
		}
	}
}

// rebalance drains overweight parts before gain refinement runs: vertices
// in parts above maxW move to their most-connected part with room (or the
// lightest part if none of their neighbors' parts have room). Cut quality is
// secondary here; the subsequent gain passes recover it.
func rebalance(g *wgraph, part []int32, pw []int64, maxW int64) {
	k := len(pw)
	conn := make([]int64, k)
	for sweep := 0; sweep < 4; sweep++ {
		over := false
		for _, w := range pw {
			if w > maxW {
				over = true
				break
			}
		}
		if !over {
			return
		}
		for v := 0; v < g.n(); v++ {
			home := part[v]
			if pw[home] <= maxW {
				continue
			}
			var touched []int32
			for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
				p := part[g.adjncy[e]]
				if conn[p] == 0 {
					touched = append(touched, p)
				}
				conn[p] += g.adjwgt[e]
			}
			best := int32(-1)
			var bestConn int64 = -1
			for _, p := range touched {
				if p != home && pw[p]+g.vwgt[v] <= maxW && conn[p] > bestConn {
					bestConn, best = conn[p], p
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
			if best < 0 {
				for p := int32(0); p < int32(k); p++ {
					if p != home && pw[p]+g.vwgt[v] <= maxW && (best < 0 || pw[p] < pw[best]) {
						best = p
					}
				}
			}
			if best >= 0 {
				pw[home] -= g.vwgt[v]
				pw[best] += g.vwgt[v]
				part[v] = best
			}
		}
	}
}

// project lifts a coarse partition to the finer level through the
// fine→coarse map.
func project(coarsePart []int32, fineToCoarse []int32) []int32 {
	fine := make([]int32, len(fineToCoarse))
	for v, cv := range fineToCoarse {
		fine[v] = coarsePart[cv]
	}
	return fine
}
