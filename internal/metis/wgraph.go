// Package metis implements a from-scratch multilevel k-way graph
// partitioner in the style of Metis (Karypis & Kumar), which the paper's
// hybrid CPU–MIC partitioning uses as its blocked min-connectivity stage
// (§IV-E): coarsening by heavy-edge matching, greedy region-growing initial
// partitioning on the coarsest graph, and boundary Kernighan–Lin/FM-style
// refinement during uncoarsening.
//
// The hybrid scheme only requires blocks that are balanced in workload
// (vertex weight = 1 + out-degree) with few cross edges; this implementation
// provides that property without the full Metis feature set.
package metis

import (
	"sort"

	"hetgraph/internal/graph"
)

// wgraph is an undirected weighted graph in CSR form, the internal
// representation at every level of the multilevel hierarchy.
type wgraph struct {
	xadj   []int64 // n+1 offsets
	adjncy []int32 // neighbor IDs
	adjwgt []int64 // edge weights (collapsed multiplicity)
	vwgt   []int64 // vertex weights (collapsed workload)
}

func (w *wgraph) n() int { return len(w.xadj) - 1 }

func (w *wgraph) totalVWgt() int64 {
	var t int64
	for _, x := range w.vwgt {
		t += x
	}
	return t
}

// symmetrize converts a directed CSR into the undirected weighted wgraph the
// partitioner works on: an edge {u,v} carries the number of directed edges
// between u and v in either direction, and vertex v weighs 1 + out-degree
// (the workload proxy the hybrid scheme balances).
func symmetrize(g *graph.CSR) *wgraph {
	n := g.NumVertices()
	type half struct {
		u, v int32
	}
	// Count undirected degree first (each directed edge contributes to
	// both endpoints).
	deg := make([]int64, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if int32(u) == v {
				continue
			}
			deg[u]++
			deg[v]++
		}
	}
	w := &wgraph{
		xadj: make([]int64, n+1),
		vwgt: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		w.xadj[v+1] = w.xadj[v] + deg[v]
		w.vwgt[v] = 1 + int64(g.OutDegree(graph.VertexID(v)))
	}
	m := w.xadj[n]
	w.adjncy = make([]int32, m)
	w.adjwgt = make([]int64, m)
	cursor := make([]int64, n)
	copy(cursor, w.xadj[:n])
	put := func(a, b int32) {
		p := cursor[a]
		cursor[a]++
		w.adjncy[p] = b
		w.adjwgt[p] = 1
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if int32(u) == v {
				continue
			}
			put(int32(u), v)
			put(v, int32(u))
		}
	}
	return dedupe(w)
}

// dedupe merges parallel edges of each adjacency list, summing weights.
func dedupe(w *wgraph) *wgraph {
	n := w.n()
	out := &wgraph{
		xadj: make([]int64, n+1),
		vwgt: w.vwgt,
	}
	// First pass: sort each list and count distinct neighbors.
	type pair struct {
		v int32
		w int64
	}
	lists := make([][]pair, n)
	for u := 0; u < n; u++ {
		lo, hi := w.xadj[u], w.xadj[u+1]
		if lo == hi {
			continue
		}
		l := make([]pair, 0, hi-lo)
		for i := lo; i < hi; i++ {
			l = append(l, pair{w.adjncy[i], w.adjwgt[i]})
		}
		sort.Slice(l, func(i, j int) bool { return l[i].v < l[j].v })
		k := 0
		for i := 1; i < len(l); i++ {
			if l[i].v == l[k].v {
				l[k].w += l[i].w
			} else {
				k++
				l[k] = l[i]
			}
		}
		lists[u] = l[:k+1]
	}
	for u := 0; u < n; u++ {
		out.xadj[u+1] = out.xadj[u] + int64(len(lists[u]))
	}
	m := out.xadj[n]
	out.adjncy = make([]int32, m)
	out.adjwgt = make([]int64, m)
	for u := 0; u < n; u++ {
		p := out.xadj[u]
		for _, e := range lists[u] {
			out.adjncy[p] = e.v
			out.adjwgt[p] = e.w
			p++
		}
	}
	return out
}

// cut returns the total weight of edges crossing between parts (each
// undirected edge counted once).
func (w *wgraph) cut(part []int32) int64 {
	var c int64
	for u := 0; u < w.n(); u++ {
		for i := w.xadj[u]; i < w.xadj[u+1]; i++ {
			v := w.adjncy[i]
			if part[u] != part[v] {
				c += w.adjwgt[i]
			}
		}
	}
	return c / 2
}

// partWeights sums vertex weights per part.
func (w *wgraph) partWeights(part []int32, k int) []int64 {
	pw := make([]int64, k)
	for v := 0; v < w.n(); v++ {
		pw[part[v]] += w.vwgt[v]
	}
	return pw
}
