package metis

import (
	"fmt"
	"math/rand"

	"hetgraph/internal/graph"
)

// Options tunes the partitioner.
type Options struct {
	// Imbalance is the allowed per-part weight overshoot (Metis' ufactor);
	// 0.05 means parts may weigh up to 5% above average.
	Imbalance float64
	// CoarseTarget stops coarsening near this many vertices.
	CoarseTarget int
	// RefinePasses bounds boundary-refinement sweeps per level.
	RefinePasses int
	// Seed drives the randomized matching and seeding; fixed seed gives a
	// deterministic partition.
	Seed int64
}

// DefaultOptions returns the options used by the hybrid partitioning module.
func DefaultOptions() Options {
	return Options{Imbalance: 0.05, CoarseTarget: 2000, RefinePasses: 8, Seed: 1}
}

// Partition splits g into k blocks, minimizing the number of directed edges
// whose endpoints fall into different blocks while balancing per-block
// workload (vertex weight = 1 + out-degree). It returns part[v] in [0,k).
func Partition(g *graph.CSR, k int, opts Options) ([]int32, error) {
	n := g.NumVertices()
	if k < 1 {
		return nil, fmt.Errorf("metis: k = %d < 1", k)
	}
	if opts.Imbalance < 0 {
		return nil, fmt.Errorf("metis: negative imbalance %v", opts.Imbalance)
	}
	if opts.RefinePasses < 0 {
		return nil, fmt.Errorf("metis: negative refine passes %d", opts.RefinePasses)
	}
	if n == 0 {
		return []int32{}, nil
	}
	if k == 1 {
		return make([]int32, n), nil
	}
	if k >= n {
		// Trivial: one vertex (or none) per block.
		part := make([]int32, n)
		for v := range part {
			part[v] = int32(v)
		}
		return part, nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	w := symmetrize(g)
	levels := coarsen(w, k, opts.CoarseTarget, rng)
	coarsest := levels[len(levels)-1].g
	part := initialPartition(coarsest, k, rng)
	refine(coarsest, part, k, opts.Imbalance, opts.RefinePasses)
	for li := len(levels) - 1; li >= 1; li-- {
		part = project(part, levels[li].map_)
		refine(levels[li-1].g, part, k, opts.Imbalance, opts.RefinePasses)
	}
	return part, nil
}

// EdgeCut counts the directed edges of g crossing between different parts.
func EdgeCut(g *graph.CSR, part []int32) int64 {
	var cut int64
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		pu := part[u]
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if part[v] != pu {
				cut++
			}
		}
	}
	return cut
}

// BalanceStats reports per-part workload (1 + out-degree summed) and the
// max/avg imbalance factor.
func BalanceStats(g *graph.CSR, part []int32, k int) (weights []int64, imbalance float64) {
	weights = make([]int64, k)
	for v := 0; v < g.NumVertices(); v++ {
		weights[part[v]] += 1 + int64(g.OutDegree(graph.VertexID(v)))
	}
	var total, maxW int64
	for _, w := range weights {
		total += w
		if w > maxW {
			maxW = w
		}
	}
	if total == 0 || k == 0 {
		return weights, 0
	}
	avg := float64(total) / float64(k)
	return weights, float64(maxW)/avg - 1
}
