package metis

import "math/rand"

// initialPartition produces a k-way partition of the coarsest graph by
// recursive bisection, the strategy of the original Metis: split the graph
// into two sides with weight proportion floor(k/2):(k-floor(k/2)) using
// region-growing bisection plus 2-way FM refinement, then recurse into the
// induced subgraphs. Recursive bisection finds far better cuts than direct
// k-way greedy growing because every split is globally refined.
func initialPartition(g *wgraph, k int, rng *rand.Rand) []int32 {
	part := make([]int32, g.n())
	kwayRecurse(g, k, 0, part, identity(g.n()), rng)
	return part
}

func identity(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// kwayRecurse assigns parts [base, base+k) to the vertices of sub, whose
// vertex i corresponds to origIDs[i] in the coarsest graph, writing results
// into part.
func kwayRecurse(sub *wgraph, k int, base int32, part []int32, origIDs []int32, rng *rand.Rand) {
	if k <= 1 || sub.n() == 0 {
		for _, ov := range origIDs {
			part[ov] = base
		}
		return
	}
	k0 := k / 2
	frac := float64(k0) / float64(k)
	side := bisect(sub, frac, rng)
	g0, ids0 := extract(sub, side, 0)
	g1, ids1 := extract(sub, side, 1)
	orig0 := make([]int32, len(ids0))
	for i, v := range ids0 {
		orig0[i] = origIDs[v]
	}
	orig1 := make([]int32, len(ids1))
	for i, v := range ids1 {
		orig1[i] = origIDs[v]
	}
	kwayRecurse(g0, k0, base, part, orig0, rng)
	kwayRecurse(g1, k-k0, base+int32(k0), part, orig1, rng)
}

// bisect splits g into sides {0,1} with side 0 holding ~frac of the total
// vertex weight. It grows side 0 by Prim-style region growing from several
// seeds, keeps the best cut, and polishes it with 2-way FM passes.
func bisect(g *wgraph, frac float64, rng *rand.Rand) []int32 {
	target := int64(frac * float64(g.totalVWgt()))
	if target < 1 {
		target = 1
	}
	const tries = 4
	var best []int32
	var bestCut int64 = -1
	for trial := 0; trial < tries; trial++ {
		side := growRegion(g, target, rng)
		fm2way(g, side, target, g.totalVWgt()-target, 0.08, 8)
		if c := g.cut(side); bestCut < 0 || c < bestCut {
			bestCut = c
			best = side
		}
	}
	return best
}

// growRegion grows side 0 from a random seed until it reaches the weight
// target, always absorbing the frontier vertex most connected to the grown
// region (Prim-like, keeps the region compact). Everything else is side 1.
func growRegion(g *wgraph, target int64, rng *rand.Rand) []int32 {
	n := g.n()
	side := make([]int32, n)
	for i := range side {
		side[i] = 1
	}
	inFrontier := make([]bool, n)
	conn := make([]int64, n) // connectivity of frontier vertices to side 0
	var frontier []int32
	var w int64
	seed := int32(rng.Intn(n))
	absorb := func(v int32) {
		side[v] = 0
		w += g.vwgt[v]
		for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
			u := g.adjncy[e]
			if side[u] == 1 {
				conn[u] += g.adjwgt[e]
				if !inFrontier[u] {
					inFrontier[u] = true
					frontier = append(frontier, u)
				}
			}
		}
	}
	absorb(seed)
	for w < target && len(frontier) > 0 {
		bestI := -1
		var bestConn int64 = -1
		for i, v := range frontier {
			if side[v] == 0 {
				continue // already absorbed, lazy removal
			}
			if conn[v] > bestConn {
				bestConn, bestI = conn[v], i
			}
		}
		if bestI < 0 {
			break
		}
		v := frontier[bestI]
		frontier[bestI] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		absorb(v)
	}
	// Disconnected remainder: absorb arbitrary side-1 vertices if the
	// region could not reach its weight target through edges.
	if w < target {
		for v := int32(0); v < int32(n) && w < target; v++ {
			if side[v] == 1 {
				side[v] = 0
				w += g.vwgt[v]
			}
		}
	}
	return side
}

// fm2way runs greedy boundary passes moving vertices between the two sides
// when the move reduces the cut and keeps both sides within (1+tol) of
// their weight targets. Zero-gain moves are allowed when they improve
// balance, which lets the pass escape plateaus.
func fm2way(g *wgraph, side []int32, target0, target1 int64, tol float64, maxPasses int) {
	n := g.n()
	var w0, w1 int64
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			w0 += g.vwgt[v]
		} else {
			w1 += g.vwgt[v]
		}
	}
	max0 := int64(float64(target0) * (1 + tol))
	max1 := int64(float64(target1) * (1 + tol))
	for pass := 0; pass < maxPasses; pass++ {
		moves := 0
		for v := 0; v < n; v++ {
			var internal, external int64
			s := side[v]
			for e := g.xadj[v]; e < g.xadj[v+1]; e++ {
				if side[g.adjncy[e]] == s {
					internal += g.adjwgt[e]
				} else {
					external += g.adjwgt[e]
				}
			}
			gain := external - internal
			if gain < 0 {
				continue
			}
			if s == 0 {
				overshoot := w1+g.vwgt[v] > max1
				balanceHelps := w0 > max0
				if (gain > 0 && !overshoot) || (gain == 0 && balanceHelps) {
					side[v] = 1
					w0 -= g.vwgt[v]
					w1 += g.vwgt[v]
					moves++
				}
			} else {
				overshoot := w0+g.vwgt[v] > max0
				balanceHelps := w1 > max1
				if (gain > 0 && !overshoot) || (gain == 0 && balanceHelps) {
					side[v] = 0
					w1 -= g.vwgt[v]
					w0 += g.vwgt[v]
					moves++
				}
			}
		}
		if moves == 0 {
			break
		}
	}
}

// extract returns the induced subgraph of the vertices on the given side,
// along with the sub→parent vertex mapping. Edges to the other side drop.
func extract(g *wgraph, side []int32, which int32) (*wgraph, []int32) {
	n := g.n()
	subID := make([]int32, n)
	var ids []int32
	for v := 0; v < n; v++ {
		if side[v] == which {
			subID[v] = int32(len(ids))
			ids = append(ids, int32(v))
		} else {
			subID[v] = -1
		}
	}
	sub := &wgraph{
		xadj: make([]int64, len(ids)+1),
		vwgt: make([]int64, len(ids)),
	}
	var m int64
	for i, ov := range ids {
		sub.vwgt[i] = g.vwgt[ov]
		for e := g.xadj[ov]; e < g.xadj[ov+1]; e++ {
			if subID[g.adjncy[e]] >= 0 {
				m++
			}
		}
		sub.xadj[i+1] = m
	}
	sub.adjncy = make([]int32, m)
	sub.adjwgt = make([]int64, m)
	var p int64
	for _, ov := range ids {
		for e := g.xadj[ov]; e < g.xadj[ov+1]; e++ {
			if nv := subID[g.adjncy[e]]; nv >= 0 {
				sub.adjncy[p] = nv
				sub.adjwgt[p] = g.adjwgt[e]
				p++
			}
		}
	}
	return sub, ids
}
