package metis

import (
	"math/rand"
	"sort"
)

// level is one rung of the multilevel hierarchy: the coarse graph plus the
// mapping from the finer graph's vertices to coarse vertices.
type level struct {
	g    *wgraph
	map_ []int32 // finer vertex -> coarse vertex (nil at the finest level)
}

// coarsenOnce contracts g by heavy-edge matching: each unmatched vertex, in
// randomized order, matches with its heaviest-edge unmatched neighbor (or
// stays single). Returns the coarse graph and the fine→coarse map, or ok =
// false when matching stopped making progress (graph too tangled to shrink).
func coarsenOnce(g *wgraph, rng *rand.Rand) (coarse *wgraph, fineToCoarse []int32, ok bool) {
	n := g.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	// Visit low-degree vertices first (random within a degree class): they
	// have few matching options, and letting hubs match early would glue
	// unrelated regions together through them — ruinous on power-law
	// graphs. This is Metis' sorted heavy-edge matching.
	order := rng.Perm(n)
	sort.SliceStable(order, func(i, j int) bool {
		di := g.xadj[order[i]+1] - g.xadj[order[i]]
		dj := g.xadj[order[j]+1] - g.xadj[order[j]]
		return di < dj
	})
	matched := 0
	for _, u := range order {
		if match[u] >= 0 {
			continue
		}
		best := int32(-1)
		var bestW int64 = -1
		var bestDeg int64 = 1 << 62
		for i := g.xadj[u]; i < g.xadj[u+1]; i++ {
			v := g.adjncy[i]
			if match[v] >= 0 || int(v) == u {
				continue
			}
			// Heaviest edge wins; ties prefer the lowest-degree partner.
			// Without hub avoidance, power-law graphs match everything
			// through a few hubs and the coarse graph loses all locality.
			vdeg := g.xadj[v+1] - g.xadj[v]
			if g.adjwgt[i] > bestW || (g.adjwgt[i] == bestW && vdeg < bestDeg) {
				bestW = g.adjwgt[i]
				bestDeg = vdeg
				best = v
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = int32(u)
			matched += 2
		} else {
			match[u] = int32(u)
		}
	}
	if matched < n/10 {
		return nil, nil, false
	}
	// Assign coarse IDs: the lower endpoint of each pair owns the ID.
	fineToCoarse = make([]int32, n)
	next := int32(0)
	for u := 0; u < n; u++ {
		m := int(match[u])
		if m >= u {
			fineToCoarse[u] = next
			if m != u {
				fineToCoarse[m] = next
			}
			next++
		}
	}
	// Build the coarse graph: sum vertex weights, merge adjacency.
	cn := int(next)
	cvwgt := make([]int64, cn)
	for u := 0; u < n; u++ {
		cvwgt[fineToCoarse[u]] += g.vwgt[u]
	}
	// Accumulate coarse adjacency with a per-vertex scatter map.
	type pair struct {
		v int32
		w int64
	}
	lists := make([][]pair, cn)
	markVal := make([]int32, cn) // coarse neighbor -> slot+1 marker
	markOwner := make([]int32, cn)
	for i := range markOwner {
		markOwner[i] = -1
	}
	for u := 0; u < n; u++ {
		cu := fineToCoarse[u]
		for i := g.xadj[u]; i < g.xadj[u+1]; i++ {
			cv := fineToCoarse[g.adjncy[i]]
			if cv == cu {
				continue
			}
			if markOwner[cv] == cu {
				lists[cu][markVal[cv]].w += g.adjwgt[i]
			} else {
				markOwner[cv] = cu
				markVal[cv] = int32(len(lists[cu]))
				lists[cu] = append(lists[cu], pair{cv, g.adjwgt[i]})
			}
		}
	}
	coarse = &wgraph{xadj: make([]int64, cn+1), vwgt: cvwgt}
	for u := 0; u < cn; u++ {
		coarse.xadj[u+1] = coarse.xadj[u] + int64(len(lists[u]))
	}
	m := coarse.xadj[cn]
	coarse.adjncy = make([]int32, m)
	coarse.adjwgt = make([]int64, m)
	for u := 0; u < cn; u++ {
		p := coarse.xadj[u]
		for _, e := range lists[u] {
			coarse.adjncy[p] = e.v
			coarse.adjwgt[p] = e.w
			p++
		}
	}
	return coarse, fineToCoarse, true
}

// coarsen builds the hierarchy down to ~coarseTarget vertices (but never
// fewer than 4*k so the initial partitioner has room to balance).
func coarsen(g *wgraph, k int, coarseTarget int, rng *rand.Rand) []level {
	levels := []level{{g: g}}
	floor := 4 * k
	if coarseTarget < floor {
		coarseTarget = floor
	}
	cur := g
	for cur.n() > coarseTarget {
		coarse, f2c, ok := coarsenOnce(cur, rng)
		if !ok {
			break
		}
		levels = append(levels, level{g: coarse, map_: f2c})
		cur = coarse
	}
	return levels
}
