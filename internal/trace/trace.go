// Package trace records per-superstep, per-phase timelines of engine runs:
// which phase of which iteration cost how much simulated time and processed
// how many events, on which device. It is the observability layer a user
// needs to see *why* a run costs what it does — e.g. that a TopoSort run is
// generation-bound on hot iterations, or that BFS's tail iterations are
// pure launch overhead.
//
// A Recorder is attached to a run through core.Options.Trace; nil disables
// recording with no overhead on the hot path (one nil check per iteration).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Phase names used by the engine.
const (
	PhaseGenerate = "generate"
	PhaseExchange = "exchange"
	PhaseProcess  = "process"
	PhaseUpdate   = "update"
)

// Sample is one phase of one superstep on one device.
type Sample struct {
	// Device is the modeled device label ("CPU", "MIC"; N-rank device
	// groups disambiguate duplicate names as "MIC#2").
	Device string
	// Iteration is the superstep index (0-based).
	Iteration int64
	// Phase is one of the Phase* constants.
	Phase string
	// Direction is the traversal direction of the superstep ("push" or
	// "pull"); empty for applications without direction switching.
	Direction string
	// SimSeconds is the phase's simulated device time.
	SimSeconds float64
	// Events is the phase's primary event count (messages generated,
	// messages reduced, vertices updated, bytes exchanged).
	Events int64
}

// Recorder accumulates samples; safe for concurrent use (the heterogeneous
// runner records from two device goroutines).
type Recorder struct {
	mu      sync.Mutex
	samples []Sample
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one sample.
func (r *Recorder) Record(s Sample) {
	r.mu.Lock()
	r.samples = append(r.samples, s)
	r.mu.Unlock()
}

// Samples returns a copy of everything recorded, ordered by (device,
// iteration, recording order).
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	out := append([]Sample(nil), r.samples...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Device != out[j].Device {
			return deviceLess(out[i].Device, out[j].Device)
		}
		return out[i].Iteration < out[j].Iteration
	})
	return out
}

// deviceLess orders device labels by base name, then numerically by the
// "#rank" suffix hetero runs append to disambiguate duplicate names — so a
// 12-rank group lists MIC#2 before MIC#10 and output stays in rank order
// regardless of map iteration or recording interleaving.
func deviceLess(a, b string) bool {
	an, ar := splitDeviceLabel(a)
	bn, br := splitDeviceLabel(b)
	if an != bn {
		return an < bn
	}
	return ar < br
}

func splitDeviceLabel(s string) (string, int) {
	if i := strings.LastIndexByte(s, '#'); i >= 0 {
		if r, err := strconv.Atoi(s[i+1:]); err == nil {
			return s[:i], r
		}
	}
	return s, -1
}

// Len returns the number of recorded samples.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.mu.Unlock()
}

// PhaseTotal is one phase's aggregate across a run.
type PhaseTotal struct {
	Device     string
	Phase      string
	SimSeconds float64
	Events     int64
	Samples    int
}

// Summary aggregates the recording.
type Summary struct {
	// Totals per (device, phase), sorted by device then phase.
	Totals []PhaseTotal
	// Iterations per device.
	Iterations map[string]int64
	// HottestIteration per device: the superstep with the largest summed
	// simulated time, and that time.
	HottestIteration map[string]int64
	HottestSeconds   map[string]float64
}

// Summarize computes the Summary.
func (r *Recorder) Summarize() Summary {
	samples := r.Samples()
	type key struct{ dev, phase string }
	totals := map[key]*PhaseTotal{}
	iters := map[string]int64{}
	perIter := map[string]map[int64]float64{}
	for _, s := range samples {
		k := key{s.Device, s.Phase}
		t := totals[k]
		if t == nil {
			t = &PhaseTotal{Device: s.Device, Phase: s.Phase}
			totals[k] = t
		}
		t.SimSeconds += s.SimSeconds
		t.Events += s.Events
		t.Samples++
		if s.Iteration+1 > iters[s.Device] {
			iters[s.Device] = s.Iteration + 1
		}
		if perIter[s.Device] == nil {
			perIter[s.Device] = map[int64]float64{}
		}
		perIter[s.Device][s.Iteration] += s.SimSeconds
	}
	sum := Summary{
		Iterations:       iters,
		HottestIteration: map[string]int64{},
		HottestSeconds:   map[string]float64{},
	}
	for _, t := range totals {
		sum.Totals = append(sum.Totals, *t)
	}
	sort.Slice(sum.Totals, func(i, j int) bool {
		if sum.Totals[i].Device != sum.Totals[j].Device {
			return deviceLess(sum.Totals[i].Device, sum.Totals[j].Device)
		}
		return sum.Totals[i].Phase < sum.Totals[j].Phase
	})
	for dev, byIter := range perIter {
		best, bestT := int64(-1), -1.0
		for it, t := range byIter {
			if t > bestT || (t == bestT && it < best) {
				best, bestT = it, t
			}
		}
		sum.HottestIteration[dev] = best
		sum.HottestSeconds[dev] = bestT
	}
	return sum
}

// WriteCSV emits the samples as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"device", "iteration", "phase", "sim_seconds", "events"}); err != nil {
		return err
	}
	for _, s := range r.Samples() {
		err := cw.Write([]string{
			s.Device,
			strconv.FormatInt(s.Iteration, 10),
			s.Phase,
			strconv.FormatFloat(s.SimSeconds, 'g', -1, 64),
			strconv.FormatInt(s.Events, 10),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatSummary renders the summary as an aligned text block.
func FormatSummary(s Summary) string {
	out := fmt.Sprintf("%-6s %-9s %14s %12s %8s\n", "device", "phase", "sim(s)", "events", "samples")
	for _, t := range s.Totals {
		out += fmt.Sprintf("%-6s %-9s %14.6f %12d %8d\n", t.Device, t.Phase, t.SimSeconds, t.Events, t.Samples)
	}
	// Map iteration order is randomized per run; sort the device keys (in
	// rank order for N-rank labels) so the rendered summary is
	// byte-identical across runs.
	devs := make([]string, 0, len(s.Iterations))
	for dev := range s.Iterations {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return deviceLess(devs[i], devs[j]) })
	for _, dev := range devs {
		out += fmt.Sprintf("%s: %d iterations, hottest #%d (%.6fs)\n",
			dev, s.Iterations[dev], s.HottestIteration[dev], s.HottestSeconds[dev])
	}
	return out
}
