package trace

import (
	"bytes"
	"encoding/csv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Record(Sample{Device: "MIC", Iteration: 1, Phase: PhaseGenerate, SimSeconds: 0.5, Events: 10})
	r.Record(Sample{Device: "CPU", Iteration: 0, Phase: PhaseProcess, SimSeconds: 0.2, Events: 5})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	s := r.Samples()
	// Ordered by device, then iteration.
	if s[0].Device != "CPU" || s[1].Device != "MIC" {
		t.Fatalf("ordering wrong: %+v", s)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for d := 0; d < 4; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				r.Record(Sample{Device: "D", Iteration: int64(i), Phase: PhaseUpdate, Events: 1})
			}
		}(d)
	}
	wg.Wait()
	if r.Len() != 1000 {
		t.Fatalf("lost samples: %d", r.Len())
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder()
	r.Record(Sample{Device: "MIC", Iteration: 0, Phase: PhaseGenerate, SimSeconds: 1, Events: 100})
	r.Record(Sample{Device: "MIC", Iteration: 0, Phase: PhaseProcess, SimSeconds: 0.5, Events: 100})
	r.Record(Sample{Device: "MIC", Iteration: 1, Phase: PhaseGenerate, SimSeconds: 3, Events: 300})
	r.Record(Sample{Device: "MIC", Iteration: 1, Phase: PhaseProcess, SimSeconds: 0.5, Events: 300})
	r.Record(Sample{Device: "CPU", Iteration: 0, Phase: PhaseGenerate, SimSeconds: 2, Events: 50})
	s := r.Summarize()
	if s.Iterations["MIC"] != 2 || s.Iterations["CPU"] != 1 {
		t.Fatalf("iterations: %+v", s.Iterations)
	}
	if s.HottestIteration["MIC"] != 1 || s.HottestSeconds["MIC"] != 3.5 {
		t.Fatalf("hottest: %+v / %+v", s.HottestIteration, s.HottestSeconds)
	}
	// Totals per device+phase.
	var micGen *PhaseTotal
	for i := range s.Totals {
		if s.Totals[i].Device == "MIC" && s.Totals[i].Phase == PhaseGenerate {
			micGen = &s.Totals[i]
		}
	}
	if micGen == nil || micGen.SimSeconds != 4 || micGen.Events != 400 || micGen.Samples != 2 {
		t.Fatalf("MIC generate total wrong: %+v", micGen)
	}
	out := FormatSummary(s)
	if !strings.Contains(out, "MIC") || !strings.Contains(out, "generate") || !strings.Contains(out, "hottest #1") {
		t.Fatalf("summary rendering:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record(Sample{Device: "CPU", Iteration: 0, Phase: PhaseUpdate, SimSeconds: 0.125, Events: 7})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines: %v", lines)
	}
	if lines[0] != "device,iteration,phase,sim_seconds,events" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "CPU,0,update,0.125,7" {
		t.Fatalf("row = %q", lines[1])
	}
}

// TestFormatSummaryDeterministic guards against map-iteration order leaking
// into the rendered summary: with three devices the per-device lines used to
// come out in random order run to run.
func TestFormatSummaryDeterministic(t *testing.T) {
	r := NewRecorder()
	for i, dev := range []string{"MIC", "CPU", "GPU"} {
		r.Record(Sample{Device: dev, Iteration: int64(i), Phase: PhaseGenerate, SimSeconds: float64(i) + 0.25, Events: int64(10 * (i + 1))})
		r.Record(Sample{Device: dev, Iteration: int64(i), Phase: PhaseProcess, SimSeconds: 0.5, Events: int64(i + 1)})
	}
	want := "device phase             sim(s)       events  samples\n" +
		"CPU    generate        1.250000           20        1\n" +
		"CPU    process         0.500000            2        1\n" +
		"GPU    generate        2.250000           30        1\n" +
		"GPU    process         0.500000            3        1\n" +
		"MIC    generate        0.250000           10        1\n" +
		"MIC    process         0.500000            1        1\n" +
		"CPU: 2 iterations, hottest #1 (1.750000s)\n" +
		"GPU: 3 iterations, hottest #2 (2.750000s)\n" +
		"MIC: 1 iterations, hottest #0 (0.750000s)\n"
	for run := 0; run < 20; run++ {
		got := FormatSummary(r.Summarize())
		if got != want {
			t.Fatalf("run %d: summary diverged:\ngot:\n%s\nwant:\n%s", run, got, want)
		}
	}
}

// TestWriteCSVRoundTrip parses WriteCSV output back into samples and checks
// it reproduces the recorder's contents exactly.
func TestWriteCSVRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Record(Sample{Device: "CPU", Iteration: 3, Phase: PhaseExchange, SimSeconds: 0.0078125, Events: 4096})
	r.Record(Sample{Device: "MIC", Iteration: 0, Phase: PhaseGenerate, SimSeconds: 1.5e-7, Events: 12})
	r.Record(Sample{Device: "MIC", Iteration: 1, Phase: PhaseUpdate, SimSeconds: 0, Events: 0})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("CSV output does not re-parse: %v", err)
	}
	want := r.Samples()
	if len(rows) != len(want)+1 {
		t.Fatalf("rows = %d, want %d data rows + header", len(rows), len(want))
	}
	for i, s := range want {
		row := rows[i+1]
		sim, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("row %d sim_seconds %q: %v", i, row[3], err)
		}
		iter, _ := strconv.ParseInt(row[1], 10, 64)
		ev, _ := strconv.ParseInt(row[4], 10, 64)
		got := Sample{Device: row[0], Iteration: iter, Phase: row[2], SimSeconds: sim, Events: ev}
		if got != s {
			t.Fatalf("row %d: got %+v, want %+v", i, got, s)
		}
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewRecorder().Summarize()
	if len(s.Totals) != 0 || len(s.Iterations) != 0 {
		t.Fatal("empty recorder produced totals")
	}
	if FormatSummary(s) == "" {
		t.Fatal("empty summary renders nothing (want header)")
	}
}

// TestFormatSummaryFourRankGolden locks the rendered summary of a 4-rank
// device group (CPU + three MICs, rank-disambiguated labels) byte for byte:
// the device sections must come out in rank order — MIC#2 before MIC#10-style
// numeric ordering, not lexicographic — independent of recording
// interleaving and map iteration.
func TestFormatSummaryFourRankGolden(t *testing.T) {
	r := NewRecorder()
	// Record in deliberately scrambled rank order, twice per device.
	for _, dev := range []string{"MIC#3", "CPU", "MIC#2", "MIC#1"} {
		for i := int64(0); i < 2; i++ {
			r.Record(Sample{Device: dev, Iteration: i, Phase: PhaseGenerate, SimSeconds: 0.5, Events: 100})
			r.Record(Sample{Device: dev, Iteration: i, Phase: PhaseExchange, SimSeconds: 0.25, Events: 40})
		}
	}
	want := "device phase             sim(s)       events  samples\n" +
		"CPU    exchange        0.500000           80        2\n" +
		"CPU    generate        1.000000          200        2\n" +
		"MIC#1  exchange        0.500000           80        2\n" +
		"MIC#1  generate        1.000000          200        2\n" +
		"MIC#2  exchange        0.500000           80        2\n" +
		"MIC#2  generate        1.000000          200        2\n" +
		"MIC#3  exchange        0.500000           80        2\n" +
		"MIC#3  generate        1.000000          200        2\n" +
		"CPU: 2 iterations, hottest #0 (0.750000s)\n" +
		"MIC#1: 2 iterations, hottest #0 (0.750000s)\n" +
		"MIC#2: 2 iterations, hottest #0 (0.750000s)\n" +
		"MIC#3: 2 iterations, hottest #0 (0.750000s)\n"
	for run := 0; run < 20; run++ {
		if got := FormatSummary(r.Summarize()); got != want {
			t.Fatalf("run %d: summary diverged:\ngot:\n%s\nwant:\n%s", run, got, want)
		}
	}
}

// TestDeviceLessNumericRanks pins the rank-suffix comparator: numeric rank
// order within a base name, base-name order across names, and plain names
// before any suffixed variant of the same name.
func TestDeviceLessNumericRanks(t *testing.T) {
	devs := []string{"MIC#10", "MIC#2", "CPU", "MIC#1", "GPU#3", "MIC"}
	sort.Slice(devs, func(i, j int) bool { return deviceLess(devs[i], devs[j]) })
	want := []string{"CPU", "GPU#3", "MIC", "MIC#1", "MIC#2", "MIC#10"}
	for i := range want {
		if devs[i] != want[i] {
			t.Fatalf("order = %v, want %v", devs, want)
		}
	}
}
