package trace_test

import (
	"bytes"
	"fmt"

	"hetgraph/internal/trace"
)

// ExampleRecorder_WriteCSV shows the CSV schema: one row per recorded
// sample, columns device, iteration, phase, sim_seconds, events.
func ExampleRecorder_WriteCSV() {
	r := trace.NewRecorder()
	r.Record(trace.Sample{Device: "CPU", Iteration: 0, Phase: trace.PhaseGenerate, SimSeconds: 0.002, Events: 1500})
	r.Record(trace.Sample{Device: "CPU", Iteration: 0, Phase: trace.PhaseProcess, SimSeconds: 0.0015, Events: 1500})
	r.Record(trace.Sample{Device: "MIC", Iteration: 0, Phase: trace.PhaseGenerate, SimSeconds: 0.004, Events: 6200})

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		panic(err)
	}
	fmt.Print(buf.String())
	// Output:
	// device,iteration,phase,sim_seconds,events
	// CPU,0,generate,0.002,1500
	// CPU,0,process,0.0015,1500
	// MIC,0,generate,0.004,6200
}
