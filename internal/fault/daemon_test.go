package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDaemonFaultsNilReceiverSafe(t *testing.T) {
	var df *DaemonFaults
	if err := df.At(PointJobStart); err != nil {
		t.Fatalf("nil DaemonFaults.At returned %v", err)
	}
}

func TestDaemonFaultsSetClearAt(t *testing.T) {
	df := NewDaemonFaults()
	if err := df.At(PointJobStart); err != nil {
		t.Fatalf("unset point returned %v", err)
	}
	boom := errors.New("boom")
	calls := 0
	df.Set(PointJobStart, func() error {
		calls++
		return boom
	})
	if err := df.At(PointJobStart); !errors.Is(err, boom) {
		t.Fatalf("hooked point returned %v, want boom", err)
	}
	if err := df.At(PointJobRetry); err != nil {
		t.Fatalf("different point tripped the hook: %v", err)
	}
	df.Clear(PointJobStart)
	if err := df.At(PointJobStart); err != nil {
		t.Fatalf("cleared point returned %v", err)
	}
	if calls != 1 {
		t.Fatalf("hook ran %d times, want 1", calls)
	}
}

func TestDaemonFaultsHookRunsOutsideLock(t *testing.T) {
	df := NewDaemonFaults()
	df.Set(PointJournalAppend, func() error {
		// Re-entering the registry from inside a hook must not deadlock.
		df.Clear(PointJobStart)
		return nil
	})
	done := make(chan struct{})
	go func() {
		df.At(PointJournalAppend)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("re-entrant hook deadlocked")
	}
}
