package fault

import "sync"

// Daemon-level fault points: where a DaemonFaults hook can interpose on the
// serve daemon's job lifecycle. Unlike the superstep-indexed Injector plan,
// daemon hooks are arbitrary callbacks — chaos tests use them to park
// workers (overload), fail journal appends (durability), or crash the
// process between state transitions (recovery).
const (
	// PointJobStart fires in a worker immediately before a dequeued job's
	// first engine superstep.
	PointJobStart = "job-start"
	// PointJobRetry fires before each retry attempt of a failed job.
	PointJobRetry = "job-retry"
	// PointJournalAppend fires before every journal append.
	PointJournalAppend = "journal-append"
)

// DaemonFaults is a registry of named hooks for daemon-level chaos testing.
// A nil *DaemonFaults is valid and fires nothing, so production code calls
// At unconditionally. Hooks may block (to park a worker) or return an error
// (which the call site surfaces as if the guarded operation failed).
type DaemonFaults struct {
	mu    sync.Mutex
	hooks map[string]func() error
}

// NewDaemonFaults creates an empty registry.
func NewDaemonFaults() *DaemonFaults {
	return &DaemonFaults{hooks: map[string]func() error{}}
}

// Set installs fn at the named point, replacing any previous hook.
func (d *DaemonFaults) Set(point string, fn func() error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hooks[point] = fn
}

// Clear removes the hook at the named point.
func (d *DaemonFaults) Clear(point string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.hooks, point)
}

// At fires the hook at the named point, returning its error. Nil-safe: a
// nil registry or an unset point returns nil immediately. The hook runs
// outside the registry lock, so it may block or call back into the registry.
func (d *DaemonFaults) At(point string) error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	fn := d.hooks[point]
	d.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}
