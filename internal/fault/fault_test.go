package fault

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"rank1:drop@3",
		"rank0:delay@2:5ms",
		"rank1:fail@2x3",
		"rank0:panic@4:generate",
		"rank1:panic@0:process;rank0:panic@1:update",
		"rank1:drop@3;rank0:delay@2:5ms,rank1:fail@7x2",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", spec, p.String(), err)
		}
		if len(again.Events) != len(p.Events) {
			t.Fatalf("round trip of %q lost events: %v vs %v", spec, p, again)
		}
		for i := range p.Events {
			if !reflect.DeepEqual(p.Events[i], again.Events[i]) {
				t.Errorf("round trip of %q: event %d: %+v != %+v", spec, i, p.Events[i], again.Events[i])
			}
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"drop@3",               // no rank
		"rank-2:drop@3",        // negative rank
		"rank0:drop@-1",        // negative step
		"rank0:explode@3",      // unknown kind
		"rank0:panic@3",        // panic without phase
		"rank0:panic@3:sleep",  // unknown phase
		"rank0:delay@3",        // delay without duration
		"rank0:delay@3:banana", // bad duration
		"rank0:fail@1xq",       // bad fail count
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted garbage", spec)
		}
	}
}

func TestParseEmptyIsEmptyPlan(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || len(p.Events) != 0 {
		t.Fatalf("Parse(blank) = %v, %v", p, err)
	}
}

func TestInjectorQueries(t *testing.T) {
	p, err := Parse("rank1:drop@3;rank0:delay@2:1ms;rank1:fail@5x2;rank0:panic@4:process")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Drop(1, 3) || in.Drop(0, 3) || in.Drop(1, 2) {
		t.Error("Drop matching wrong")
	}
	if in.Delay(0, 2) != time.Millisecond || in.Delay(1, 2) != 0 {
		t.Error("Delay matching wrong")
	}
	if !in.LinkFails(1, 5, 0) || !in.LinkFails(1, 5, 1) || in.LinkFails(1, 5, 2) {
		t.Error("LinkFails should fail attempts 0,1 and pass attempt 2")
	}
	if in.LinkFails(0, 5, 0) || in.LinkFails(1, 4, 0) {
		t.Error("LinkFails matched wrong rank/step")
	}
	if in.PanicNow(0, 4, PhaseGenerate) || in.PanicNow(1, 4, PhaseProcess) {
		t.Error("PanicNow matched wrong phase/rank")
	}
	if !in.PanicNow(0, 4, PhaseProcess) {
		t.Error("PanicNow missed its event")
	}
	if in.PanicNow(0, 4, PhaseProcess) {
		t.Error("PanicNow fired twice")
	}
}

func TestPanicNowFiresExactlyOnceUnderConcurrency(t *testing.T) {
	in, err := NewInjector(Plan{Events: []Event{{Rank: 0, Step: 1, Kind: KindPanic, Phase: PhaseUpdate}}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 32
	var wg sync.WaitGroup
	fired := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.PanicNow(0, 1, PhaseUpdate) {
					fired <- struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	if n := len(fired); n != 1 {
		t.Fatalf("panic event fired %d times, want 1", n)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Drop(0, 0) || in.Delay(0, 0) != 0 || in.LinkFails(0, 0, 0) || in.PanicNow(0, 0, PhaseGenerate) {
		t.Error("nil injector injected something")
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a := Random(42, 10, 8)
	b := Random(42, 10, 8)
	if len(a.Events) != 8 || len(b.Events) != 8 {
		t.Fatalf("wrong event counts: %d, %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if !reflect.DeepEqual(a.Events[i], b.Events[i]) {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if err := a.Validate(); err != nil {
		t.Errorf("random plan invalid: %v", err)
	}
	c := Random(43, 10, 8)
	same := true
	for i := range a.Events {
		if !reflect.DeepEqual(a.Events[i], c.Events[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical plans")
	}
}

func TestParseDiskFaults(t *testing.T) {
	for _, spec := range []string{
		"rank0:iofail@3:write",
		"rank0:iofail@3:sync",
		"rank0:iofail@3:rename",
		"rank0:torn@2",
		"rank0:torn@2;rank0:iofail@3:sync;rank1:drop@4",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", spec, p.String(), err)
		}
		for i := range p.Events {
			if !reflect.DeepEqual(p.Events[i], again.Events[i]) {
				t.Errorf("round trip of %q: event %d: %+v != %+v", spec, i, p.Events[i], again.Events[i])
			}
		}
	}
}

func TestParseDiskFaultGarbage(t *testing.T) {
	for _, spec := range []string{
		"rank0:iofail@3",       // no operation
		"rank0:iofail@3:flush", // unknown operation
		"rank0:torn@2:write",   // torn takes no operation
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted garbage", spec)
		}
	}
}

func TestInjectorDiskQueries(t *testing.T) {
	p, err := Parse("rank0:iofail@3:sync;rank0:torn@2")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	if !in.IOFails(0, 3, OpSync) {
		t.Error("IOFails missed its event")
	}
	// iofail is persistent: the storage path stays broken for that step.
	if !in.IOFails(0, 3, OpSync) {
		t.Error("IOFails should keep firing for the same step")
	}
	if in.IOFails(0, 3, OpWrite) || in.IOFails(1, 3, OpSync) || in.IOFails(0, 2, OpSync) {
		t.Error("IOFails matched wrong op/rank/step")
	}
	if in.TornWrite(0, 3) || in.TornWrite(1, 2) {
		t.Error("TornWrite matched wrong rank/step")
	}
	if !in.TornWrite(0, 2) {
		t.Error("TornWrite missed its event")
	}
	// torn is one-shot: a retried commit of the same step succeeds.
	if in.TornWrite(0, 2) {
		t.Error("TornWrite fired twice")
	}
	var nilIn *Injector
	if nilIn.IOFails(0, 3, OpSync) || nilIn.TornWrite(0, 2) {
		t.Error("nil injector should be inert for disk faults")
	}
}

func TestParseHealingFaults(t *testing.T) {
	for _, spec := range []string{
		"rank1:flaky@3x2",
		"rank1:flaky@3", // down-window defaults to 1
		"rank0:recover@5",
		"rank1:flaky@2x1;rank1:drop@6",
		"rank1:drop@3;rank1:recover@5",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Validate(%q): %v", spec, err)
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", spec, p.String(), err)
		}
		if len(again.Events) != len(p.Events) {
			t.Fatalf("round trip of %q lost events", spec)
		}
	}
	// The bare form normalizes to an explicit x1 window.
	p, _ := Parse("rank1:flaky@3")
	if got := p.String(); got != "rank1:flaky@3x1" {
		t.Errorf("String() = %q, want rank1:flaky@3x1", got)
	}
}

func TestParseHealingFaultGarbage(t *testing.T) {
	for _, spec := range []string{
		"rank1:flaky@3xq",  // bad down-window
		"rank1:recover@-1", // negative step
		"rank-1:recover@5", // negative rank
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted garbage", spec)
		}
	}
	// Ranks beyond the classic CPU+MIC pair are valid: N-rank device groups
	// address any non-negative rank.
	if _, err := Parse("rank3:recover@5"); err != nil {
		t.Errorf("Parse(rank3:recover@5) rejected an N-rank event: %v", err)
	}
	if err := (Event{Rank: 1, Step: 3, Kind: KindFlaky, Times: -2}).Validate(); err == nil {
		t.Error("Validate accepted a negative flaky down-window")
	}
}

func TestFlakyDropsLikeDrop(t *testing.T) {
	p, err := Parse("rank1:flaky@3x2")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Drop(1, 3) {
		t.Error("flaky did not kill the rank at its step")
	}
	if in.Drop(1, 4) || in.Drop(0, 3) {
		t.Error("flaky matched the wrong step/rank")
	}
}

func TestRecoverAtPairsWithItsOwnFailure(t *testing.T) {
	p, err := Parse("rank1:flaky@3x2")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	// Down for supersteps 3 and 4, recoverable from 5 on.
	if in.RecoverAt(1, 3, 3) || in.RecoverAt(1, 3, 4) {
		t.Error("rank declared recovered inside its down-window")
	}
	if !in.RecoverAt(1, 3, 5) || !in.RecoverAt(1, 3, 6) {
		t.Error("rank not recoverable after its down-window")
	}
	// A flaky event only heals the failure it caused: a later failure at a
	// different superstep must stay permanent.
	if in.RecoverAt(1, 6, 8) {
		t.Error("flaky@3 healed an unrelated failure at superstep 6")
	}
	if in.RecoverAt(0, 3, 5) {
		t.Error("recovery matched the wrong rank")
	}
	// An unattributed failure (failedStep -1, e.g. a panic) is not matched
	// by flaky self-recovery.
	if in.RecoverAt(1, -1, 5) {
		t.Error("flaky healed an unattributed failure")
	}
}

func TestRecoverEventMatchesLaterFailures(t *testing.T) {
	p, err := Parse("rank1:drop@3;rank1:recover@5")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	if in.RecoverAt(1, 3, 4) {
		t.Error("recovered before the recover event's superstep")
	}
	if !in.RecoverAt(1, 3, 5) {
		t.Error("explicit recover@5 not honored")
	}
	// Explicit recover events do match unattributed failures.
	if !in.RecoverAt(1, -1, 5) {
		t.Error("recover@5 did not match an unattributed failure")
	}
	// But not failures that happen at or after the recover step: the
	// declaration must postdate the failure it heals.
	if in.RecoverAt(1, 5, 7) || in.RecoverAt(1, 6, 9) {
		t.Error("recover@5 healed a failure at/after its own superstep")
	}
	var nilIn *Injector
	if nilIn.RecoverAt(1, 3, 5) {
		t.Error("nil injector declared a recovery")
	}
}

func TestParseWireFaults(t *testing.T) {
	for spec, want := range map[string]string{
		"rank1:corrupt@3":          "rank1:corrupt@3x1",
		"rank1:corrupt@3x8":        "rank1:corrupt@3x8",
		"rank0:dup@2":              "rank0:dup@2",
		"rank1:reorder@4":          "rank1:reorder@4",
		"partition@3:{0,1}|{2,3}":  "partition@3:{0,1}|{2,3}",
		"partition@3:{1, 0}|{3,2}": "partition@3:{0,1}|{2,3}", // sides sort
		"heal@6":                   "heal@6",
		"partition@3:{0,1}|{2,3};heal@6;rank1:corrupt@2": "partition@3:{0,1}|{2,3};heal@6;rank1:corrupt@2x1",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := p.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", spec, got, want)
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", spec, p.String(), err)
		}
		if len(again.Events) != len(p.Events) {
			t.Fatalf("round trip of %q lost events", spec)
		}
		for i := range p.Events {
			if !reflect.DeepEqual(p.Events[i], again.Events[i]) {
				t.Errorf("round trip of %q: event %d: %+v != %+v", spec, i, p.Events[i], again.Events[i])
			}
		}
	}
}

func TestParseWireFaultGarbage(t *testing.T) {
	for _, spec := range []string{
		"rank1:corrupt@3xq",        // bad corrupt count
		"rank1:dup@-1",             // negative step
		"partition@3",              // no sides
		"partition@3:{0,1}",        // one side
		"partition@3:{0,1}{2,3}",   // missing separator
		"partition@3:{0,1}|{1,2}",  // overlapping sides
		"partition@3:{}|{2,3}",     // empty side
		"partition@3:{0,-1}|{2,3}", // negative rank
		"partition@q:{0}|{1}",      // bad step
		"heal@x",                   // bad step
		"heal@-2",                  // negative step
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted garbage", spec)
		}
	}
}

func TestInjectorWireQueries(t *testing.T) {
	p, err := Parse("rank1:corrupt@3x2;rank0:dup@2;rank1:reorder@4")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	if !in.CorruptWire(1, 3, 0) || !in.CorruptWire(1, 3, 1) || in.CorruptWire(1, 3, 2) {
		t.Error("CorruptWire should corrupt attempts 0,1 and pass attempt 2")
	}
	if in.CorruptWire(0, 3, 0) || in.CorruptWire(1, 2, 0) {
		t.Error("CorruptWire matched wrong rank/step")
	}
	if !in.Duplicate(0, 2) || in.Duplicate(1, 2) || in.Duplicate(0, 3) {
		t.Error("Duplicate matching wrong")
	}
	if !in.Reorder(1, 4) || in.Reorder(0, 4) || in.Reorder(1, 3) {
		t.Error("Reorder matching wrong")
	}
	var nilIn *Injector
	if nilIn.CorruptWire(0, 0, 0) || nilIn.Duplicate(0, 0) || nilIn.Reorder(0, 0) || nilIn.Severed(0, 1, 0) {
		t.Error("nil injector injected a wire fault")
	}
}

func TestSeveredWindow(t *testing.T) {
	p, err := Parse("partition@3:{0,1}|{2,3};heal@6")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	// Before the partition and from the heal on, all links are up.
	if in.Severed(0, 2, 2) || in.Severed(0, 2, 6) || in.Severed(0, 2, 9) {
		t.Error("link severed outside the partition window")
	}
	// Inside [3, 6): cross-cut links are down, both directions.
	for step := int64(3); step < 6; step++ {
		if !in.Severed(0, 2, step) || !in.Severed(2, 0, step) || !in.Severed(1, 3, step) {
			t.Errorf("cross-cut link not severed at step %d", step)
		}
		if in.Severed(0, 1, step) || in.Severed(2, 3, step) {
			t.Errorf("intra-side link severed at step %d", step)
		}
	}
	// A rank named in neither side keeps all its links.
	if in.Severed(0, 4, 4) || in.Severed(4, 2, 4) {
		t.Error("unnamed rank's links severed")
	}
}

func TestSeveredWithoutHealIsPermanent(t *testing.T) {
	p, err := Parse("partition@2:{0}|{1}")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	if in.Severed(0, 1, 1) {
		t.Error("severed before the partition step")
	}
	if !in.Severed(0, 1, 2) || !in.Severed(0, 1, 1000) {
		t.Error("unhealed partition should sever forever")
	}
}

func TestHealActsAsRecoverForAnyRank(t *testing.T) {
	p, err := Parse("partition@3:{0,1}|{2,3};heal@6")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{0, 1, 2, 3} {
		if in.RecoverAt(rank, 3, 5) {
			t.Errorf("rank %d recovered before the heal", rank)
		}
		if !in.RecoverAt(rank, 3, 6) {
			t.Errorf("rank %d not recovered at the heal step", rank)
		}
		if got := in.RecoverStep(rank, 3); got != 6 {
			t.Errorf("RecoverStep(rank %d) = %d, want 6", rank, got)
		}
	}
	// Heal only matches failures before its step.
	if in.RecoverAt(0, 6, 8) {
		t.Error("heal@6 healed a failure at its own superstep")
	}
}

func TestRandomGroupPlanDeterministicAndValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := RandomGroup(seed, 8, 6, 4)
		b := RandomGroup(seed, 8, 6, 4)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d diverged: %v vs %v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d produced an invalid plan %q: %v", seed, a, err)
		}
		// Round-trips through the grammar.
		again, err := Parse(a.String())
		if err != nil {
			t.Fatalf("seed %d plan %q does not re-parse: %v", seed, a, err)
		}
		if len(again.Events) != len(a.Events) {
			t.Fatalf("seed %d plan %q lost events in round trip", seed, a)
		}
		// Every partition has a later heal.
		for _, e := range a.Events {
			if e.Kind == KindPartition {
				healed := false
				for _, h := range a.Events {
					if h.Kind == KindHeal && h.Step > e.Step {
						healed = true
					}
				}
				if !healed {
					t.Fatalf("seed %d: partition without a paired heal in %q", seed, a)
				}
				if got := len(e.SideA) + len(e.SideB); got != 4 {
					t.Fatalf("seed %d: partition sides cover %d ranks, want 4: %q", seed, got, a)
				}
			}
		}
	}
}

func TestParseGrayFaults(t *testing.T) {
	for _, spec := range []string{
		"rank1:slow@3:50ms",
		"rank1:gslow@3x4:20ms",
		"rank2:gslow@0x1:1ms;rank1:slow@2:500us",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", spec, p.String(), err)
		}
		if !reflect.DeepEqual(p.Events, again.Events) {
			t.Errorf("round trip of %q: %+v != %+v", spec, p.Events, again.Events)
		}
	}
}

func TestParseGrayFaultGarbage(t *testing.T) {
	for _, spec := range []string{
		"rank1:slow@3",          // no duration
		"rank1:slow@3:banana",   // bad duration
		"rank1:slow@3x2:50ms",   // slow takes no window
		"rank1:gslow@3:50ms",    // gslow needs a window
		"rank1:gslow@3x2",       // gslow without duration
		"rank1:gslow@3xq:50ms",  // bad window
		"rank1:gslow@3x2:-50ms", // negative stall
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted garbage", spec)
		}
	}
}

// TestInjectorSlowWindows: slow fires on its exact superstep, gslow over its
// whole window, overlapping events sum, and the nil injector is inert.
func TestInjectorSlowWindows(t *testing.T) {
	p, err := Parse("rank1:slow@3:50ms;rank1:gslow@2x3:20ms;rank0:gslow@5x2:7ms")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]map[int64]time.Duration{
		1: {2: 20 * time.Millisecond, 3: 70 * time.Millisecond, 4: 20 * time.Millisecond},
		0: {5: 7 * time.Millisecond, 6: 7 * time.Millisecond},
	}
	for rank := 0; rank < 3; rank++ {
		for step := int64(0); step < 9; step++ {
			if got := in.Slow(rank, step); got != want[rank][step] {
				t.Errorf("Slow(%d, %d) = %s, want %s", rank, step, got, want[rank][step])
			}
		}
	}
	var nilInj *Injector
	if got := nilInj.Slow(1, 3); got != 0 {
		t.Errorf("nil injector Slow = %s, want 0", got)
	}
}

// TestRandomGroupPairsFatalWithRecover: every fatal fault a random group
// plan draws (drop, panic, persistent corrupt) must be paired with a later
// recover for the same rank, so rejoin-enabled chaos sweeps exercise the
// degrade-and-heal path instead of only permanent degradation.
func TestRandomGroupPairsFatalWithRecover(t *testing.T) {
	sawFatal, sawGray := false, false
	for seed := int64(0); seed < 64; seed++ {
		p := RandomGroup(seed, 8, 6, 4)
		for _, e := range p.Events {
			fatal := e.Kind == KindDrop || e.Kind == KindPanic ||
				(e.Kind == KindCorrupt && e.Times >= 10)
			if e.Kind == KindSlow || e.Kind == KindGSlow {
				sawGray = true
			}
			if !fatal {
				continue
			}
			sawFatal = true
			paired := false
			for _, r := range p.Events {
				if r.Kind == KindRecover && r.Rank == e.Rank && r.Step > e.Step {
					paired = true
					break
				}
			}
			if !paired {
				t.Fatalf("seed %d: fatal %s has no later recover in %q", seed, e, p)
			}
		}
	}
	if !sawFatal {
		t.Fatal("no fatal faults drawn across 64 seeds: pairing property untested")
	}
	if !sawGray {
		t.Fatal("no gray faults drawn across 64 seeds: slow/gslow arms unreachable")
	}
}
