// Package fault provides deterministic, seedable fault injection for the
// heterogeneous runtime's chaos tests. A Plan is a list of concrete fault
// events — drop, delay, or fail a rank's exchange at superstep k, panic a
// worker in a given phase, break the checkpoint store, or stall a rank
// transiently (flaky/recover, driving the degrade→heal lifecycle) — and an
// Injector answers the runtime's "does a fault fire here?" queries against
// that plan. Because the plan is explicit
// data (optionally generated from a seed by Random), every chaos run is
// reproducible: the same plan yields the same faults at the same points.
//
// Superstep indices are 0-based and count exchange rounds as seen by each
// endpoint. For the float32 engines one exchange round corresponds to one
// BSP superstep; the generic engine performs two rounds per superstep (the
// second carries the active count), so plan steps there index rounds, not
// supersteps.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Phase identifies the engine phase a panic fault fires in.
type Phase uint8

const (
	// PhaseGenerate panics inside the user's generate_messages.
	PhaseGenerate Phase = iota + 1
	// PhaseProcess panics inside message processing.
	PhaseProcess
	// PhaseUpdate panics inside vertex updating.
	PhaseUpdate
)

func (p Phase) String() string {
	switch p {
	case PhaseGenerate:
		return "generate"
	case PhaseProcess:
		return "process"
	case PhaseUpdate:
		return "update"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// ParsePhase parses a phase name as used in plan specs.
func ParsePhase(s string) (Phase, error) {
	switch s {
	case "generate":
		return PhaseGenerate, nil
	case "process":
		return PhaseProcess, nil
	case "update":
		return PhaseUpdate, nil
	default:
		return 0, fmt.Errorf("fault: unknown phase %q (want generate|process|update)", s)
	}
}

// IOOp identifies the checkpoint-store operation a disk fault fires on.
type IOOp uint8

const (
	// OpWrite is the checkpoint data (or manifest) write.
	OpWrite IOOp = iota + 1
	// OpSync is the fsync after a write.
	OpSync
	// OpRename is the temp-file → final-name commit rename.
	OpRename
)

func (o IOOp) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	default:
		return fmt.Sprintf("IOOp(%d)", uint8(o))
	}
}

// ParseIOOp parses a disk-operation name as used in plan specs.
func ParseIOOp(s string) (IOOp, error) {
	switch s {
	case "write":
		return OpWrite, nil
	case "sync":
		return OpSync, nil
	case "rename":
		return OpRename, nil
	default:
		return 0, fmt.Errorf("fault: unknown I/O op %q (want write|sync|rename)", s)
	}
}

// Kind identifies what a fault event does.
type Kind uint8

const (
	// KindDrop kills the rank at the given exchange: it stops communicating
	// permanently, modeling a dead coprocessor.
	KindDrop Kind = iota + 1
	// KindDelay stalls the rank's exchange by Delay before it proceeds,
	// modeling a transient hiccup that stays under the deadline (or not).
	KindDelay
	// KindFail makes the rank's exchange attempt fail Times consecutive
	// times, modeling transient link errors; the runtime retries with
	// backoff, so Times below the retry cap is recoverable.
	KindFail
	// KindPanic panics a worker goroutine in the given Phase, modeling a
	// crash inside a user function.
	KindPanic
	// KindIOFail makes the checkpoint store's Op fail while committing the
	// checkpoint of superstep Step, modeling a storage-path error. The
	// failed commit aborts the run like a crash; the on-disk store keeps
	// the previous generations and a restart can resume from them.
	KindIOFail
	// KindTorn makes the checkpoint data write of superstep Step silently
	// drop the second half of its payload — a lying disk or torn page.
	// The commit reports success; recovery must detect the corruption by
	// checksum and fall back to the previous generation.
	KindTorn
	// KindFlaky kills the rank at exchange Step like KindDrop, but declares
	// it recovered — ready to rejoin a healing run — Times supersteps later
	// (Times 0 means 1). It models a transient device stall: fatal without
	// rejoin support, a bounded outage with it.
	KindFlaky
	// KindRecover declares the rank recovered at superstep Step. It injects
	// no failure itself; it pairs with an earlier drop/flaky/panic on the
	// same rank to name the superstep a healing run may re-admit it at.
	KindRecover
	// KindCorrupt flips bytes in every packet the rank transmits at
	// exchange Step, for Times consecutive transmission attempts (0 means
	// 1). The receiver's checksum detects the damage, drops the packet and
	// pulls a retransmission; a Times under the retry cap is recoverable,
	// a larger Times convicts the sender as a dead link.
	KindCorrupt
	// KindDup delivers every packet the rank transmits at exchange Step
	// twice, modeling a duplicating link; the receiver's sequence fence
	// drops the extra copy.
	KindDup
	// KindReorder swaps adjacent packets on the rank's outgoing links at
	// exchange Step: the previous round's packet arrives ahead of the
	// current one, modeling an out-of-order link; the receiver's sequence
	// fence drops the stale packet and recovers the real one.
	KindReorder
	// KindPartition severs every link crossing the cut SideA|SideB from
	// superstep Step until the first later KindHeal event, modeling a
	// network split. The supervisor fences the minority side and continues
	// on the quorum side. Partition events are group-level: Rank is -1.
	KindPartition
	// KindHeal ends the most recent partition (and declares any felled
	// rank recovered) at superstep Step. Group-level: Rank is -1.
	KindHeal
	// KindSlow stalls the rank's superstep Step by Delay before its local
	// compute, modeling a transient gray failure (a thermal-throttle spike,
	// a contended bus) that slows the rank without killing it. Unlike
	// KindDelay — which stalls only the exchange call — the stall is charged
	// to the rank's superstep time, so lockstep makes the whole group wait:
	// the signal the straggler detector feeds on.
	KindSlow
	// KindGSlow is the sustained form of KindSlow: the rank stalls by Delay
	// on every superstep in [Step, Step+Times), modeling persistent gray
	// degradation (a sick device). Times 0 means 1.
	KindGSlow
)

func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindFail:
		return "fail"
	case KindPanic:
		return "panic"
	case KindIOFail:
		return "iofail"
	case KindTorn:
		return "torn"
	case KindFlaky:
		return "flaky"
	case KindRecover:
		return "recover"
	case KindCorrupt:
		return "corrupt"
	case KindDup:
		return "dup"
	case KindReorder:
		return "reorder"
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	case KindSlow:
		return "slow"
	case KindGSlow:
		return "gslow"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one planned fault.
type Event struct {
	// Rank is the rank the fault hits (any non-negative rank of the device
	// group; a plan targeting a rank outside the run's group simply never
	// fires).
	Rank int
	// Step is the 0-based superstep (exchange round) the fault fires at.
	Step int64
	// Kind is what happens.
	Kind Kind
	// Phase is the engine phase for KindPanic events.
	Phase Phase
	// Delay is the injected stall for KindDelay events.
	Delay time.Duration
	// Times is the number of consecutive failing attempts for KindFail
	// events, or the number of supersteps a KindFlaky rank stays down
	// before it is recoverable (0 means 1 for both).
	Times int
	// Op is the failing storage operation for KindIOFail events. Disk
	// faults index the superstep of the checkpoint being committed, and
	// conventionally name rank 0 — the host owns the storage path.
	Op IOOp
	// SideA and SideB are the two rank sets a KindPartition event cuts
	// apart (sorted ascending, disjoint). Every link with one endpoint in
	// each side is severed; links within a side, or touching a rank named
	// in neither side, stay up. Group-level events (partition, heal) set
	// Rank to -1.
	SideA, SideB []int
}

// String renders the event in the spec grammar accepted by Parse.
func (e Event) String() string {
	switch e.Kind {
	case KindDrop:
		return fmt.Sprintf("rank%d:drop@%d", e.Rank, e.Step)
	case KindDelay:
		return fmt.Sprintf("rank%d:delay@%d:%s", e.Rank, e.Step, e.Delay)
	case KindFail:
		t := e.Times
		if t == 0 {
			t = 1
		}
		return fmt.Sprintf("rank%d:fail@%dx%d", e.Rank, e.Step, t)
	case KindPanic:
		return fmt.Sprintf("rank%d:panic@%d:%s", e.Rank, e.Step, e.Phase)
	case KindIOFail:
		return fmt.Sprintf("rank%d:iofail@%d:%s", e.Rank, e.Step, e.Op)
	case KindFlaky:
		t := e.Times
		if t == 0 {
			t = 1
		}
		return fmt.Sprintf("rank%d:flaky@%dx%d", e.Rank, e.Step, t)
	case KindCorrupt:
		t := e.Times
		if t == 0 {
			t = 1
		}
		return fmt.Sprintf("rank%d:corrupt@%dx%d", e.Rank, e.Step, t)
	case KindPartition:
		return fmt.Sprintf("partition@%d:%s|%s", e.Step, sideString(e.SideA), sideString(e.SideB))
	case KindHeal:
		return fmt.Sprintf("heal@%d", e.Step)
	case KindSlow:
		return fmt.Sprintf("rank%d:slow@%d:%s", e.Rank, e.Step, e.Delay)
	case KindGSlow:
		t := e.Times
		if t == 0 {
			t = 1
		}
		return fmt.Sprintf("rank%d:gslow@%dx%d:%s", e.Rank, e.Step, t, e.Delay)
	default:
		return fmt.Sprintf("rank%d:%s@%d", e.Rank, e.Kind, e.Step)
	}
}

func sideString(side []int) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, r := range side {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(r))
	}
	sb.WriteByte('}')
	return sb.String()
}

// Validate checks the event's fields.
func (e Event) Validate() error {
	if e.Rank < 0 && e.Kind != KindPartition && e.Kind != KindHeal {
		return fmt.Errorf("fault: event rank %d < 0", e.Rank)
	}
	if e.Step < 0 {
		return fmt.Errorf("fault: event step %d < 0", e.Step)
	}
	switch e.Kind {
	case KindDrop:
	case KindDelay:
		if e.Delay < 0 {
			return fmt.Errorf("fault: negative delay %s", e.Delay)
		}
	case KindFail:
		if e.Times < 0 {
			return fmt.Errorf("fault: negative fail count %d", e.Times)
		}
	case KindPanic:
		if e.Phase < PhaseGenerate || e.Phase > PhaseUpdate {
			return fmt.Errorf("fault: panic event needs a phase")
		}
	case KindIOFail:
		if e.Op < OpWrite || e.Op > OpRename {
			return fmt.Errorf("fault: iofail event needs an I/O op")
		}
	case KindTorn:
	case KindFlaky:
		if e.Times < 0 {
			return fmt.Errorf("fault: negative flaky down-window %d", e.Times)
		}
	case KindRecover:
	case KindCorrupt:
		if e.Times < 0 {
			return fmt.Errorf("fault: negative corrupt count %d", e.Times)
		}
	case KindDup:
	case KindReorder:
	case KindPartition:
		if len(e.SideA) == 0 || len(e.SideB) == 0 {
			return fmt.Errorf("fault: partition event needs two non-empty sides")
		}
		seen := make(map[int]bool, len(e.SideA)+len(e.SideB))
		for _, r := range append(append([]int(nil), e.SideA...), e.SideB...) {
			if r < 0 {
				return fmt.Errorf("fault: partition side rank %d < 0", r)
			}
			if seen[r] {
				return fmt.Errorf("fault: rank %d appears twice in partition sides", r)
			}
			seen[r] = true
		}
	case KindHeal:
	case KindSlow:
		if e.Delay < 0 {
			return fmt.Errorf("fault: negative slow stall %s", e.Delay)
		}
	case KindGSlow:
		if e.Delay < 0 {
			return fmt.Errorf("fault: negative gslow stall %s", e.Delay)
		}
		if e.Times < 0 {
			return fmt.Errorf("fault: negative gslow window %d", e.Times)
		}
	default:
		return fmt.Errorf("fault: unknown kind %d", uint8(e.Kind))
	}
	return nil
}

// Plan is an ordered set of fault events — the full chaos scenario of one
// run.
type Plan struct {
	Events []Event
}

// Validate checks every event.
func (p Plan) Validate() error {
	for i, e := range p.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("fault: event %d: %w", i, err)
		}
	}
	return nil
}

// String renders the plan in the spec grammar accepted by Parse.
func (p Plan) String() string {
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Parse reads a plan spec: events separated by ';' (or ','), each of the
// form
//
//	rank<r>:drop@<step>
//	rank<r>:delay@<step>:<duration>
//	rank<r>:fail@<step>[x<times>]
//	rank<r>:panic@<step>:<generate|process|update>
//	rank<r>:iofail@<step>:<write|sync|rename>
//	rank<r>:torn@<step>
//	rank<r>:flaky@<step>[x<down>]
//	rank<r>:recover@<step>
//	rank<r>:corrupt@<step>[x<times>]
//	rank<r>:dup@<step>
//	rank<r>:reorder@<step>
//	rank<r>:slow@<step>:<duration>
//	rank<r>:gslow@<step>x<supersteps>:<duration>
//	partition@<step>:{<r>,...}|{<r>,...}
//	heal@<step>
//
// e.g. "rank1:drop@3;rank0:panic@2:generate;rank0:iofail@3:write". Disk
// faults (iofail, torn) fire in the durable checkpoint store while it
// commits the checkpoint of superstep <step>. Healing faults: flaky@<step>x<down>
// kills the rank at <step> and declares it recovered <down> supersteps later;
// recover@<step> declares a rank felled by an earlier event recovered at
// <step> (both are acted on only by runs with rejoin enabled). Wire faults:
// corrupt flips payload bytes on the rank's outgoing packets (x<times>
// consecutive transmission attempts), dup delivers each of its packets
// twice, reorder swaps adjacent packets on its links.
// "partition@3:{0,1}|{2,3}" severs every link between the two rank sets
// from superstep 3 until the first later "heal@<n>", which also readmits
// the fenced side under rejoin-enabled runs. Sides should jointly cover
// the run's ranks for a clean quorum/minority fence. Gray faults: slow
// stalls the rank's compute at one superstep by <duration> — charged to
// its superstep time, so the whole lockstep group waits (delay, by
// contrast, stalls only the exchange call of a rank that already finished
// computing); gslow sustains the same per-superstep stall for
// <supersteps> consecutive supersteps, the straggler detector's target.
func Parse(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, tok := range splitEvents(spec) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		e, err := parseEvent(tok)
		if err != nil {
			return Plan{}, err
		}
		p.Events = append(p.Events, e)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// splitEvents splits a spec on ';' or ',' separators, except inside the
// '{...}' rank sets of partition events, where commas separate ranks.
func splitEvents(spec string) []string {
	var toks []string
	depth, start := 0, 0
	for i, r := range spec {
		switch r {
		case '{':
			depth++
		case '}':
			if depth > 0 {
				depth--
			}
		case ';', ',':
			if depth == 0 {
				toks = append(toks, spec[start:i])
				start = i + 1
			}
		}
	}
	return append(toks, spec[start:])
}

func parseEvent(tok string) (Event, error) {
	var e Event
	if rest, ok := strings.CutPrefix(tok, "partition@"); ok {
		return parsePartition(tok, rest)
	}
	if rest, ok := strings.CutPrefix(tok, "heal@"); ok {
		step, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return e, fmt.Errorf("fault: event %q: bad step: %w", tok, err)
		}
		return Event{Rank: -1, Step: step, Kind: KindHeal}, nil
	}
	rest, ok := strings.CutPrefix(tok, "rank")
	if !ok {
		return e, fmt.Errorf("fault: event %q does not start with rank<r> (or partition@/heal@)", tok)
	}
	head, tail, ok := strings.Cut(rest, ":")
	if !ok {
		return e, fmt.Errorf("fault: event %q missing ':'", tok)
	}
	rank, err := strconv.Atoi(head)
	if err != nil {
		return e, fmt.Errorf("fault: event %q: bad rank: %w", tok, err)
	}
	e.Rank = rank
	kind, at, ok := strings.Cut(tail, "@")
	if !ok {
		return e, fmt.Errorf("fault: event %q missing '@<step>'", tok)
	}
	// The step may carry a suffix: ":<duration>", ":<phase>", ":<op>", or
	// "x<times>".
	stepStr, extra := at, ""
	if i := strings.IndexAny(at, ":x"); i >= 0 && kind != "delay" && kind != "panic" && kind != "iofail" && kind != "slow" {
		// fail@<step>x<times> (gslow@<step>x<n>:<dur> rides the same split;
		// its case cuts the duration back out of extra)
		if at[i] == 'x' {
			stepStr, extra = at[:i], at[i+1:]
		}
	}
	if kind == "delay" || kind == "panic" || kind == "iofail" || kind == "slow" {
		if s, x, ok := strings.Cut(at, ":"); ok {
			stepStr, extra = s, x
		}
	}
	step, err := strconv.ParseInt(stepStr, 10, 64)
	if err != nil {
		return e, fmt.Errorf("fault: event %q: bad step: %w", tok, err)
	}
	e.Step = step
	switch kind {
	case "drop":
		e.Kind = KindDrop
	case "delay":
		e.Kind = KindDelay
		if extra == "" {
			return e, fmt.Errorf("fault: event %q: delay needs ':<duration>'", tok)
		}
		d, err := time.ParseDuration(extra)
		if err != nil {
			return e, fmt.Errorf("fault: event %q: bad duration: %w", tok, err)
		}
		e.Delay = d
	case "fail":
		e.Kind = KindFail
		e.Times = 1
		if extra != "" {
			t, err := strconv.Atoi(extra)
			if err != nil {
				return e, fmt.Errorf("fault: event %q: bad fail count: %w", tok, err)
			}
			e.Times = t
		}
	case "flaky":
		e.Kind = KindFlaky
		e.Times = 1
		if extra != "" {
			t, err := strconv.Atoi(extra)
			if err != nil {
				return e, fmt.Errorf("fault: event %q: bad flaky down-window: %w", tok, err)
			}
			e.Times = t
		}
	case "recover":
		e.Kind = KindRecover
	case "panic":
		e.Kind = KindPanic
		if extra == "" {
			return e, fmt.Errorf("fault: event %q: panic needs ':<phase>'", tok)
		}
		ph, err := ParsePhase(extra)
		if err != nil {
			return e, err
		}
		e.Phase = ph
	case "iofail":
		e.Kind = KindIOFail
		if extra == "" {
			return e, fmt.Errorf("fault: event %q: iofail needs ':<write|sync|rename>'", tok)
		}
		op, err := ParseIOOp(extra)
		if err != nil {
			return e, err
		}
		e.Op = op
	case "torn":
		e.Kind = KindTorn
	case "corrupt":
		e.Kind = KindCorrupt
		e.Times = 1
		if extra != "" {
			t, err := strconv.Atoi(extra)
			if err != nil {
				return e, fmt.Errorf("fault: event %q: bad corrupt count: %w", tok, err)
			}
			e.Times = t
		}
	case "dup":
		e.Kind = KindDup
	case "reorder":
		e.Kind = KindReorder
	case "slow":
		e.Kind = KindSlow
		if extra == "" {
			return e, fmt.Errorf("fault: event %q: slow needs ':<duration>'", tok)
		}
		d, err := time.ParseDuration(extra)
		if err != nil {
			return e, fmt.Errorf("fault: event %q: bad duration: %w", tok, err)
		}
		e.Delay = d
	case "gslow":
		e.Kind = KindGSlow
		cnt, dur, ok := strings.Cut(extra, ":")
		if !ok || cnt == "" || dur == "" {
			return e, fmt.Errorf("fault: event %q: gslow needs 'x<supersteps>:<duration>'", tok)
		}
		t, err := strconv.Atoi(cnt)
		if err != nil {
			return e, fmt.Errorf("fault: event %q: bad gslow window: %w", tok, err)
		}
		e.Times = t
		d, err := time.ParseDuration(dur)
		if err != nil {
			return e, fmt.Errorf("fault: event %q: bad duration: %w", tok, err)
		}
		e.Delay = d
	default:
		return e, fmt.Errorf("fault: event %q: unknown kind %q", tok, kind)
	}
	return e, nil
}

func parsePartition(tok, rest string) (Event, error) {
	e := Event{Rank: -1, Kind: KindPartition}
	stepStr, sides, ok := strings.Cut(rest, ":")
	if !ok {
		return e, fmt.Errorf("fault: event %q: partition needs ':{a,..}|{b,..}'", tok)
	}
	step, err := strconv.ParseInt(stepStr, 10, 64)
	if err != nil {
		return e, fmt.Errorf("fault: event %q: bad step: %w", tok, err)
	}
	e.Step = step
	a, b, ok := strings.Cut(sides, "|")
	if !ok {
		return e, fmt.Errorf("fault: event %q: partition needs two '|'-separated sides", tok)
	}
	if e.SideA, err = parseSide(tok, a); err != nil {
		return e, err
	}
	if e.SideB, err = parseSide(tok, b); err != nil {
		return e, err
	}
	return e, nil
}

func parseSide(tok, s string) ([]int, error) {
	inner, ok := strings.CutPrefix(s, "{")
	if !ok {
		return nil, fmt.Errorf("fault: event %q: partition side %q missing '{'", tok, s)
	}
	inner, ok = strings.CutSuffix(inner, "}")
	if !ok {
		return nil, fmt.Errorf("fault: event %q: partition side %q missing '}'", tok, s)
	}
	var side []int
	for _, f := range strings.Split(inner, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("fault: event %q: bad partition side rank %q: %w", tok, f, err)
		}
		side = append(side, r)
	}
	sort.Ints(side)
	return side, nil
}

// Random derives a plan of n events from a seed, deterministically: the same
// (seed, maxStep, n) always yields the same plan. Steps are drawn uniformly
// from [0, maxStep), kinds and ranks uniformly; delays stay small (≤ 2ms)
// and fail bursts short (≤ 3 attempts) so random plans remain recoverable
// under default retry settings. Events are sorted by step for readability.
func Random(seed, maxStep int64, n int) Plan {
	rng := rand.New(rand.NewSource(seed))
	var p Plan
	if maxStep < 1 {
		maxStep = 1
	}
	for i := 0; i < n; i++ {
		e := Event{
			Rank: rng.Intn(2),
			Step: rng.Int63n(maxStep),
		}
		switch rng.Intn(4) {
		case 0:
			e.Kind = KindDrop
		case 1:
			e.Kind = KindDelay
			e.Delay = time.Duration(rng.Intn(2000)) * time.Microsecond
		case 2:
			e.Kind = KindFail
			e.Times = 1 + rng.Intn(3)
		default:
			e.Kind = KindPanic
			e.Phase = Phase(1 + rng.Intn(3))
		}
		p.Events = append(p.Events, e)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Step < p.Events[j].Step })
	return p
}

// RandomGroup derives a plan of n events for a device group of the given
// size, deterministically from the seed. It mixes every event kind —
// fail-stop (drop, flaky, panic), link noise (delay, fail, corrupt, dup,
// reorder), gray failures (slow, gslow), storage (iofail, torn), and
// split-brain (partition with a paired heal covering all ranks) — under
// constraints that keep outcomes classifiable for chaos oracles: fatal rank
// faults (drop, flaky, panic, and persistent corrupt/fail bursts) all
// target one designated victim rank so a quorum of survivors always exists,
// every fatal fault is paired with a recover@N one to three supersteps
// later so rejoin-enabled sweeps exercise the heal path, and partition
// steps avoid the victim's fatal steps so the supervisor sees a clean cut.
// Transient noise stays under the default retry budget, and injected stalls
// stay well under the default exchange deadline.
func RandomGroup(seed, maxStep int64, n, ranks int) Plan {
	rng := rand.New(rand.NewSource(seed))
	if maxStep < 3 {
		maxStep = 3
	}
	if ranks < 2 {
		ranks = 2
	}
	victim := 1 + rng.Intn(ranks-1)
	fatalSteps := make(map[int64]bool)
	partitions := 0
	var p Plan
	for i := 0; i < n; i++ {
		e := Event{
			Rank: rng.Intn(ranks),
			Step: rng.Int63n(maxStep),
		}
		fatal := false
		switch rng.Intn(14) {
		case 0:
			e.Kind = KindDrop
			e.Rank = victim
			fatal = true
		case 1:
			e.Kind = KindDelay
			e.Delay = time.Duration(rng.Intn(2000)) * time.Microsecond
		case 2:
			e.Kind = KindFail
			e.Times = 1 + rng.Intn(3)
		case 3:
			e.Kind = KindPanic
			e.Rank = victim
			e.Phase = Phase(1 + rng.Intn(3))
			fatal = true
		case 4:
			e.Kind = KindIOFail
			e.Rank = 0 // the host owns the storage path
			e.Op = IOOp(1 + rng.Intn(3))
		case 5:
			e.Kind = KindTorn
			e.Rank = 0
		case 6:
			e.Kind = KindFlaky
			e.Rank = victim
			e.Times = 1 + rng.Intn(2)
			fatalSteps[e.Step] = true
		case 7:
			e.Kind = KindRecover
			e.Rank = victim
		case 8:
			e.Kind = KindCorrupt
			if rng.Intn(3) == 0 {
				// Persistent: exhausts the retry budget, convicting the
				// sender — fatal, so it must hit the victim.
				e.Rank = victim
				e.Times = 10
				fatal = true
			} else {
				e.Times = 1 + rng.Intn(3)
			}
		case 9:
			e.Kind = KindDup
		case 10:
			e.Kind = KindReorder
		case 11:
			e.Kind = KindSlow
			e.Delay = time.Duration(500+rng.Intn(1500)) * time.Microsecond
		case 12:
			e.Kind = KindGSlow
			e.Times = 1 + rng.Intn(3)
			e.Delay = time.Duration(200+rng.Intn(800)) * time.Microsecond
		default:
			// Defer partitions to a second pass so they can avoid every
			// fatal step (a simultaneous cut and device death is not
			// attributable to a single cause), and keep at most one per
			// plan so the supervisor sees exactly one two-component cut.
			partitions++
			continue
		}
		p.Events = append(p.Events, e)
		if fatal {
			// Pair every fatal fault with an explicit recovery shortly
			// after, so rejoin-enabled sweeps exercise the degrade→heal
			// path instead of only the permanent-degrade one. (Flaky
			// events carry their own recovery window and need no pair.)
			fatalSteps[e.Step] = true
			p.Events = append(p.Events, Event{
				Rank: victim, Step: e.Step + 1 + rng.Int63n(3), Kind: KindRecover,
			})
		}
	}
	if partitions > 0 {
		e := Event{Rank: -1, Kind: KindPartition}
		step := rng.Int63n(maxStep)
		for try := 0; fatalSteps[step] && try < 16; try++ {
			step = rng.Int63n(maxStep)
		}
		if !fatalSteps[step] {
			e.Step = step
			cut := 1 + rng.Intn(ranks-1)
			perm := rng.Perm(ranks)
			e.SideA = append([]int(nil), perm[:cut]...)
			e.SideB = append([]int(nil), perm[cut:]...)
			sort.Ints(e.SideA)
			sort.Ints(e.SideB)
			heal := Event{Rank: -1, Step: e.Step + 1 + rng.Int63n(3), Kind: KindHeal}
			p.Events = append(p.Events, e, heal)
		}
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Step < p.Events[j].Step })
	return p
}

// Injector answers the runtime's fault queries against a plan. All query
// methods are safe for concurrent use; PanicNow consumes its event so that
// exactly one worker panics per planned panic.
type Injector struct {
	events []Event
	fired  []atomic.Bool // parallel to events; used by one-shot kinds
}

// NewInjector validates the plan and builds an injector for it.
func NewInjector(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	evs := append([]Event(nil), p.Events...)
	return &Injector{events: evs, fired: make([]atomic.Bool, len(evs))}, nil
}

// Drop reports whether rank's exchange at step is dropped (the rank dies).
// Both permanent drops and flaky stalls kill the rank here; the difference
// is whether RecoverAt later declares it rejoinable.
func (in *Injector) Drop(rank int, step int64) bool {
	if in == nil {
		return false
	}
	for _, e := range in.events {
		if (e.Kind == KindDrop || e.Kind == KindFlaky) && e.Rank == rank && e.Step == step {
			return true
		}
	}
	return false
}

// RecoverAt reports whether rank — felled by a fault detected at superstep
// failedStep — is recovered and may rejoin at superstep step. A flaky event
// recovers its own failure (same step) Times supersteps after it fired; a
// recover event pairs with any earlier failure on the same rank and names
// the rejoin superstep explicitly; a heal event acts as a recover event for
// every rank (it readmits a fenced partition side). failedStep may be -1
// for failures that could not be attributed to a superstep (panics); only
// explicit recover/heal events match those.
func (in *Injector) RecoverAt(rank int, failedStep, step int64) bool {
	if in == nil {
		return false
	}
	for _, e := range in.events {
		if e.Rank != rank && e.Kind != KindHeal {
			continue
		}
		switch e.Kind {
		case KindFlaky:
			down := int64(e.Times)
			if down < 1 {
				down = 1
			}
			if e.Step == failedStep && step >= e.Step+down {
				return true
			}
		case KindRecover, KindHeal:
			if e.Step > failedStep && step >= e.Step {
				return true
			}
		}
	}
	return false
}

// RecoverStep returns the earliest superstep at which rank — felled by a
// fault detected at superstep failedStep — becomes recoverable, or -1 if the
// plan never recovers it. It is the closed form of RecoverAt: RecoverAt(rank,
// failedStep, s) holds exactly for s >= RecoverStep(rank, failedStep). The
// supervisor uses it to bound degraded segments instead of polling every
// superstep.
func (in *Injector) RecoverStep(rank int, failedStep int64) int64 {
	if in == nil {
		return -1
	}
	best := int64(-1)
	consider := func(s int64) {
		if best < 0 || s < best {
			best = s
		}
	}
	for _, e := range in.events {
		if e.Rank != rank && e.Kind != KindHeal {
			continue
		}
		switch e.Kind {
		case KindFlaky:
			down := int64(e.Times)
			if down < 1 {
				down = 1
			}
			if e.Step == failedStep {
				consider(e.Step + down)
			}
		case KindRecover, KindHeal:
			if e.Step > failedStep {
				consider(e.Step)
			}
		}
	}
	return best
}

// Delay returns the injected stall for rank's exchange at step (0 if none).
func (in *Injector) Delay(rank int, step int64) time.Duration {
	if in == nil {
		return 0
	}
	var d time.Duration
	for _, e := range in.events {
		if e.Kind == KindDelay && e.Rank == rank && e.Step == step {
			d += e.Delay
		}
	}
	return d
}

// Slow returns the injected compute stall for rank's superstep step (0 if
// none): the sum of matching slow events plus every gslow window covering
// step. The supervisor applies the stall before the rank's local compute and
// charges it to the rank's superstep time, so unlike Delay it slows the
// whole lockstep group — the gray-failure signal the straggler detector
// consumes.
func (in *Injector) Slow(rank int, step int64) time.Duration {
	if in == nil {
		return 0
	}
	var d time.Duration
	for _, e := range in.events {
		if e.Rank != rank {
			continue
		}
		switch e.Kind {
		case KindSlow:
			if e.Step == step {
				d += e.Delay
			}
		case KindGSlow:
			times := int64(e.Times)
			if times < 1 {
				times = 1
			}
			if step >= e.Step && step < e.Step+times {
				d += e.Delay
			}
		}
	}
	return d
}

// LinkFails reports whether the attempt'th try (0-based) of rank's exchange
// at step fails. Deterministic: attempts below the event's Times fail, later
// attempts succeed — so a Times under the runtime's retry cap models a
// transient fault, and a larger Times a persistent link failure.
func (in *Injector) LinkFails(rank int, step int64, attempt int) bool {
	if in == nil {
		return false
	}
	for _, e := range in.events {
		if e.Kind == KindFail && e.Rank == rank && e.Step == step {
			t := e.Times
			if t == 0 {
				t = 1
			}
			if attempt < t {
				return true
			}
		}
	}
	return false
}

// CorruptWire reports whether the attempt'th transmission (0-based; attempt
// 0 is the original send, later attempts are retransmissions) of rank's
// outgoing packets at step is corrupted in flight. Deterministic like
// LinkFails: attempts below the event's Times are corrupted, later attempts
// arrive clean — so a Times under the retry cap models a transient burst of
// bad bytes and a larger Times a persistently corrupting link.
func (in *Injector) CorruptWire(rank int, step int64, attempt int) bool {
	if in == nil {
		return false
	}
	for _, e := range in.events {
		if e.Kind == KindCorrupt && e.Rank == rank && e.Step == step {
			t := e.Times
			if t == 0 {
				t = 1
			}
			if attempt < t {
				return true
			}
		}
	}
	return false
}

// Duplicate reports whether rank's outgoing packets at step are delivered
// twice.
func (in *Injector) Duplicate(rank int, step int64) bool {
	if in == nil {
		return false
	}
	for _, e := range in.events {
		if e.Kind == KindDup && e.Rank == rank && e.Step == step {
			return true
		}
	}
	return false
}

// Reorder reports whether rank's outgoing links swap adjacent packets at
// step: the previous round's packet is transmitted ahead of the current
// one.
func (in *Injector) Reorder(rank int, step int64) bool {
	if in == nil {
		return false
	}
	for _, e := range in.events {
		if e.Kind == KindReorder && e.Rank == rank && e.Step == step {
			return true
		}
	}
	return false
}

// Severed reports whether the link between from and to is cut at step by an
// active partition: a KindPartition event with Step <= step whose window has
// not yet been closed by a heal event, with from and to on opposite sides of
// the cut. Symmetric in from/to.
func (in *Injector) Severed(from, to int, step int64) bool {
	if in == nil {
		return false
	}
	for _, e := range in.events {
		if e.Kind != KindPartition || e.Step > step {
			continue
		}
		if step >= in.healBound(e.Step) {
			continue
		}
		if crossesCut(e, from, to) {
			return true
		}
	}
	return false
}

// healBound returns the step of the earliest KindHeal event strictly after
// partStep, or MaxInt64 if the plan never heals that partition.
func (in *Injector) healBound(partStep int64) int64 {
	bound := int64(1<<63 - 1)
	for _, e := range in.events {
		if e.Kind == KindHeal && e.Step > partStep && e.Step < bound {
			bound = e.Step
		}
	}
	return bound
}

func crossesCut(e Event, from, to int) bool {
	in := func(side []int, r int) bool {
		for _, s := range side {
			if s == r {
				return true
			}
		}
		return false
	}
	return (in(e.SideA, from) && in(e.SideB, to)) || (in(e.SideB, from) && in(e.SideA, to))
}

// IOFails reports whether rank's checkpoint-store operation op fails while
// committing the checkpoint of superstep step. Deterministic and
// non-consuming: every matching attempt fails, modeling a persistent
// storage-path error at that commit.
func (in *Injector) IOFails(rank int, step int64, op IOOp) bool {
	if in == nil {
		return false
	}
	for _, e := range in.events {
		if e.Kind == KindIOFail && e.Rank == rank && e.Step == step && e.Op == op {
			return true
		}
	}
	return false
}

// TornWrite reports whether rank's checkpoint data write at step is torn
// (silently truncated). Each planned tear fires exactly once, so the
// corrupted generation is a single on-disk artifact.
func (in *Injector) TornWrite(rank int, step int64) bool {
	if in == nil {
		return false
	}
	for i, e := range in.events {
		if e.Kind == KindTorn && e.Rank == rank && e.Step == step {
			if in.fired[i].CompareAndSwap(false, true) {
				return true
			}
		}
	}
	return false
}

// PanicNow reports whether a worker on rank at step in phase should panic.
// Each planned panic fires exactly once, in whichever worker goroutine asks
// first.
func (in *Injector) PanicNow(rank int, step int64, phase Phase) bool {
	if in == nil {
		return false
	}
	for i, e := range in.events {
		if e.Kind == KindPanic && e.Rank == rank && e.Step == step && e.Phase == phase {
			if in.fired[i].CompareAndSwap(false, true) {
				return true
			}
		}
	}
	return false
}

// Events returns a copy of the plan's events.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	return append([]Event(nil), in.events...)
}
