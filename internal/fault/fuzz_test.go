package fault

import (
	"reflect"
	"testing"
)

// FuzzParseFaultPlan throws arbitrary specs at the fault-plan grammar. The
// properties: Parse never panics; an accepted plan validates cleanly; and
// the String rendering of an accepted plan parses back to the same events
// (the grammar round-trips, so reports and logs can echo plans verbatim).
func FuzzParseFaultPlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"rank1:drop@3",
		"rank0:delay@2:5ms",
		"rank1:fail@2x3",
		"rank0:panic@4:generate",
		"rank0:iofail@3:sync",
		"rank0:torn@2",
		"rank1:flaky@3x2",
		"rank1:recover@5",
		"rank1:flaky@2x1;rank1:drop@6",
		"rank1:drop@3;rank0:delay@2:5ms,rank1:fail@7x2",
		"rank1:drop@-1",
		"rank2:flaky@1x1",
		"rank0:flaky@1x",
		"rank0:recover@5:write",
		"rank1:corrupt@3",
		"rank1:corrupt@3x8",
		"rank0:dup@2",
		"rank1:reorder@4",
		"partition@3:{0,1}|{2,3};heal@6",
		"partition@1:{0}|{1,2}",
		"partition@1:{0,0}|{1}",
		"partition@1:{}|{1}",
		"heal@-2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted a plan that fails Validate: %v", spec, err)
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("String() of accepted plan %q does not re-parse: %q: %v", spec, p.String(), err)
		}
		if len(again.Events) != len(p.Events) {
			t.Fatalf("round trip of %q changed event count: %d -> %d", spec, len(p.Events), len(again.Events))
		}
		for i := range p.Events {
			a, b := normalize(p.Events[i]), normalize(again.Events[i])
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("round trip of %q: event %d: %+v != %+v", spec, i, a, b)
			}
		}
	})
}

// normalize folds the Times=0 / Times=1 equivalence (both mean "once" for
// fail, corrupt, and flaky's down-window) so round-trip comparison sees
// through the canonical x1 rendering. Events are compared with DeepEqual
// because partition events carry rank-set slices.
func normalize(e Event) Event {
	if (e.Kind == KindFail || e.Kind == KindFlaky || e.Kind == KindCorrupt) && e.Times == 0 {
		e.Times = 1
	}
	return e
}
