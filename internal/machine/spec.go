// Package machine models the two devices of the paper's evaluation node —
// an Intel Xeon E5-2680 CPU and an Intel Xeon Phi SE10P coprocessor — plus
// the PCIe link between them.
//
// Reproduction note (see DESIGN.md §2): this repository runs on commodity
// hardware without a Xeon Phi, SIMD intrinsics, or 240 hardware threads. The
// runtime therefore executes all data structures and concurrency logic for
// real (goroutines, real locks, real queues, real buffers — correctness is
// never simulated), while *time* on each modeled device is computed by the
// CostModel in this package from event counters recorded during that real
// execution. All cross-device and cross-scheme performance comparisons in the
// benchmark harness are over this simulated time; wall-clock time on the host
// is reported separately and makes no CPU-vs-MIC claim.
package machine

import (
	"fmt"

	"hetgraph/internal/vec"
)

// DeviceSpec describes one compute device. Cost constants are in
// nanoseconds of simulated device time; see calib.go for their derivation.
type DeviceSpec struct {
	Name           string
	Cores          int
	ThreadsPerCore int
	ClockGHz       float64
	SIMDWidth      vec.Width // float32 lanes per SIMD register

	// ScalarNS is the cost of one edge-grain scalar operation (read an
	// edge, compute a candidate message value, touch the destination) on
	// one thread. The MIC's in-order low-frequency cores run this class of
	// irregular code ~11x slower than a CPU core (paper §V-F).
	ScalarNS float64
	// BranchPenalty multiplies ScalarNS for branch-heavy user functions
	// (Semi-Clustering's sort-and-merge); the paper attributes the CPU's SC
	// advantage to "the more complex conditional instructions involved,
	// which CPU is better at".
	BranchPenalty float64
	// VecOpNS is the cost of one SIMD row operation over SIMDWidth lanes.
	VecOpNS float64
	// MemBandwidthGBs is the aggregate streaming bandwidth shared by all
	// threads; the CPU's is much smaller, which is why message buffering
	// costs offset the framework's benefits there (paper §V-C).
	MemBandwidthGBs float64
	// LockNS is the uncontended cost of a lock acquire+release.
	LockNS float64
	// ConflictNS is the extra cost when an acquisition collides with
	// another thread (serialization + coherence traffic across the ring).
	ConflictNS float64
	// OMPLockNS is the cost of an OpenMP lock operation used by the
	// baseline codes; the paper observes these are more expensive than the
	// framework's hand-rolled spinlocks, severely so on the MIC.
	OMPLockNS float64
	// QueueOpNS is one SPSC message-queue push or pop in the pipelining
	// scheme: a release cursor store plus, typically, one acquire load of
	// the peer's cursor line — a cross-core handshake per message.
	QueueOpNS float64
	// QueueBatchNS is the per-message cost of moving one element inside a
	// *batched* queue transfer, where the cursor handshake (QueueOpNS) is
	// paid once per batch rather than once per message. What remains per
	// message is a plain store/load into a ring the producer/consumer
	// already owns in cache, far below QueueOpNS on both devices.
	QueueBatchNS float64
	// FetchNS is one dynamic-scheduler task fetch (atomic fetch-and-add).
	FetchNS float64
	// StepLaunchNS is the fork/join overhead of launching one parallel
	// step across all threads; with 240+ threads on in-order cores this is
	// what makes light iterations (BFS tails) expensive on the MIC.
	StepLaunchNS float64
}

// Threads returns the total hardware thread count.
func (d DeviceSpec) Threads() int { return d.Cores * d.ThreadsPerCore }

// Validate checks that the spec is usable.
func (d DeviceSpec) Validate() error {
	if d.Cores <= 0 || d.ThreadsPerCore <= 0 {
		return fmt.Errorf("machine: %s: non-positive thread geometry", d.Name)
	}
	if err := d.SIMDWidth.Validate(); err != nil {
		return fmt.Errorf("machine: %s: %w", d.Name, err)
	}
	if d.ScalarNS <= 0 || d.VecOpNS <= 0 || d.MemBandwidthGBs <= 0 {
		return fmt.Errorf("machine: %s: non-positive cost constants", d.Name)
	}
	return nil
}

// CPU returns the spec of the evaluation node's Xeon E5-2680
// (16 cores, 2.7 GHz, SSE4.2).
func CPU() DeviceSpec {
	return DeviceSpec{
		Name:            "CPU",
		Cores:           16,
		ThreadsPerCore:  1,
		ClockGHz:        2.7,
		SIMDWidth:       vec.WidthCPU,
		ScalarNS:        cpuScalarNS,
		BranchPenalty:   cpuBranchPenalty,
		VecOpNS:         cpuVecOpNS,
		MemBandwidthGBs: cpuMemBWGBs,
		LockNS:          cpuLockNS,
		ConflictNS:      cpuConflictNS,
		OMPLockNS:       cpuOMPLockNS,
		QueueOpNS:       cpuQueueOpNS,
		QueueBatchNS:    cpuQueueBatchNS,
		FetchNS:         cpuFetchNS,
		StepLaunchNS:    cpuStepLaunchNS,
	}
}

// MIC returns the spec of the Xeon Phi SE10P (61 cores at 1.1 GHz, 4
// hyperthreads each, IMCI). One core is conventionally reserved for the OS,
// matching the paper's best configurations of 240 threads.
func MIC() DeviceSpec {
	return DeviceSpec{
		Name:            "MIC",
		Cores:           60,
		ThreadsPerCore:  4,
		ClockGHz:        1.1,
		SIMDWidth:       vec.WidthMIC,
		ScalarNS:        micScalarNS,
		BranchPenalty:   micBranchPenalty,
		VecOpNS:         micVecOpNS,
		MemBandwidthGBs: micMemBWGBs,
		LockNS:          micLockNS,
		ConflictNS:      micConflictNS,
		OMPLockNS:       micOMPLockNS,
		QueueOpNS:       micQueueOpNS,
		QueueBatchNS:    micQueueBatchNS,
		FetchNS:         micFetchNS,
		StepLaunchNS:    micStepLaunchNS,
	}
}

// Link models the PCIe interconnect used by MPI symmetric mode.
type Link struct {
	BandwidthGBs float64 // sustained host<->device bandwidth
	LatencyUS    float64 // per-exchange latency (MPI message setup)
}

// PCIe returns the modeled PCIe 2.0 x16 link of the evaluation node.
func PCIe() Link {
	return Link{BandwidthGBs: pcieBWGBs, LatencyUS: pcieLatencyUS}
}

// TransferSeconds returns the simulated time to move b bytes in one
// exchange over the link.
func (l Link) TransferSeconds(b int64) float64 {
	return l.LatencyUS*1e-6 + float64(b)/(l.BandwidthGBs*1e9)
}
