package machine

import "fmt"

// CostModel converts the event counters of one real execution step into
// simulated seconds on a modeled device, for one application profile.
//
// Every phase is modeled as a roofline: the larger of its compute-side time
// (scalar/vector ops, lock traffic, queue ops, scheduler fetches, divided by
// the threads working on it) and its memory-side time (bytes moved at the
// device's aggregate bandwidth), plus the per-step fork/join launch cost.
// Lock collisions add serialized time: the expected collision count (from
// ContentionStats over the real per-column insert counts) priced at
// ConflictNS, with a hard serial floor when a single column saturates.
type CostModel struct {
	Dev DeviceSpec
	App AppProfile
}

// NewCostModel validates the pair and returns a model.
func NewCostModel(dev DeviceSpec, app AppProfile) (CostModel, error) {
	if err := dev.Validate(); err != nil {
		return CostModel{}, err
	}
	if err := app.Validate(); err != nil {
		return CostModel{}, err
	}
	return CostModel{Dev: dev, App: app}, nil
}

// scalarNS is the device's per-op cost under this app's branchiness.
func (m CostModel) scalarNS() float64 {
	if m.App.Branchy {
		return m.Dev.ScalarNS * m.Dev.BranchPenalty
	}
	return m.Dev.ScalarNS
}

// memSeconds prices b bytes of buffer traffic at aggregate bandwidth.
func (m CostModel) memSeconds(b float64) float64 {
	return b / (m.Dev.MemBandwidthGBs * 1e9)
}

// launchSeconds prices k parallel step launches.
func (m CostModel) launchSeconds(k int64) float64 {
	return float64(k) * m.Dev.StepLaunchNS * 1e-9
}

// roof combines compute-side and memory-side time for one phase.
func roof(compute, mem float64) float64 {
	if mem > compute {
		return mem
	}
	return compute
}

// msgBytesStored is the buffer footprint of one message: its value plus the
// 4-byte redirected destination handling.
func (m CostModel) msgBytesStored() float64 { return float64(m.App.MsgBytes + 4) }

// GenerateLocking returns the simulated time of one message-generation step
// under the locking scheme with the given thread count.
func (m CostModel) GenerateLocking(c Counters, threads int) float64 {
	t := float64(threads)
	compute := (float64(c.EdgesTraversed)*m.App.GenOps*m.scalarNS() +
		float64(c.Messages)*m.Dev.LockNS +
		c.ConflictExpected*m.Dev.ConflictNS +
		float64(c.TaskFetches)*m.Dev.FetchNS) * 1e-9 / t
	mem := m.memSeconds(float64(c.EdgesTraversed)*8 + float64(c.Messages)*m.msgBytesStored() + float64(c.BufferResetBytes))
	return roof(compute, mem) + m.launchSeconds(1)
}

// GeneratePipelined returns the simulated time of one message-generation
// step under the worker/mover pipelining scheme. Workers and movers run
// concurrently; the step takes as long as the slower side (they overlap, per
// §IV-C), and movers lock only to allocate columns.
//
// The handoff is priced from the counters the pipeline actually reports:
// per-element runs charge one QueueOpNS push per message to the workers and
// one QueueOpNS pop per message to the movers (QueueOps == 2*Messages);
// batched runs instead charge QueueOpNS once per cursor publication
// (QueueBatchOps, split evenly between the pushing and popping side) plus a
// QueueBatchNS plain ring store per message on each side — which is the
// entire point of batching: the cross-core handshake is amortized over the
// batch.
func (m CostModel) GeneratePipelined(c Counters, workers, movers int) float64 {
	pushes := float64(c.QueueOps) / 2
	pops := pushes
	batchPushPubs := float64(c.QueueBatchOps) / 2
	batchPopPubs := float64(c.QueueBatchOps) - batchPushPubs
	var batchedMsgs float64
	if c.QueueBatchOps > 0 {
		batchedMsgs = float64(c.Messages)
	}
	worker := (float64(c.EdgesTraversed)*m.App.GenOps*m.scalarNS() +
		pushes*m.Dev.QueueOpNS +
		batchPushPubs*m.Dev.QueueOpNS + batchedMsgs*m.Dev.QueueBatchNS +
		float64(c.TaskFetches)*m.Dev.FetchNS) * 1e-9 / float64(workers)
	// Each message is popped and stored; insertNS models the redirection
	// lookup plus the store (one edge-grain op: the mover's access pattern
	// is far more cache-friendly than the workers' — it only walks its own
	// columns).
	insertNS := m.Dev.ScalarNS
	mover := (pops*m.Dev.QueueOpNS +
		batchPopPubs*m.Dev.QueueOpNS + batchedMsgs*m.Dev.QueueBatchNS +
		float64(c.Messages)*insertNS +
		float64(c.ColumnsUsed)*m.Dev.LockNS) * 1e-9 / float64(movers)
	compute := worker
	if mover > compute {
		compute = mover
	}
	mem := m.memSeconds(float64(c.EdgesTraversed)*8 + float64(c.Messages)*(m.msgBytesStored()+float64(m.App.MsgBytes+4)) + float64(c.BufferResetBytes)) // queue traffic doubles message movement
	// Coordinating two thread classes costs considerably more at the
	// fork/join points than a flat parallel-for: queue fill at start, queue
	// drain at the tail, and movers polling workers' completion.
	return roof(compute, mem) + 4.0*m.launchSeconds(1)
}

// Process returns the simulated time of one message-processing step.
// When vectorized (and the app's reduction is SIMD-eligible), the work is
// the real number of vector rows priced at VecOpNS; otherwise each message
// costs a scalar op. Lane bubbles are therefore captured by the measured
// VecRows, not by a constant.
func (m CostModel) Process(c Counters, threads int, vectorized bool) float64 {
	t := float64(threads)
	var compute float64
	if vectorized && m.App.Reducible {
		compute = float64(c.VecRows) * m.App.ProcOps * m.Dev.VecOpNS * 1e-9 / t
	} else {
		compute = float64(c.ReducedMessages) * m.App.ProcOps * m.scalarNS() * 1e-9 / t
	}
	compute += float64(c.TaskFetches) * m.Dev.FetchNS * 1e-9 / t
	// No DRAM roofline here: the dynamic scheduler hands out task units
	// (vector arrays) that are L2-resident while reduced; the vector-op
	// cost already includes the L2 access. The paper's "processing can
	// become memory bound" shows up as the VecOpNS floor on wide lanes.
	return compute + m.launchSeconds(1)
}

// Pull returns the simulated time of one bottom-up (pull) sweep: each
// scanned in-edge costs one frontier-bitmap membership test plus, bounded
// above, the generate-grade arithmetic of the message it replaces; the
// memory side is the edge walk plus the gather of parent state. There is
// no lock traffic and no message-buffer store — that is the entire point
// of pulling — so dense supersteps trade Messages*LockNS for a plain
// bandwidth-bound scan.
func (m CostModel) Pull(c Counters, threads int) float64 {
	if c.PullEdgesScanned == 0 {
		return 0
	}
	t := float64(threads)
	compute := float64(c.PullEdgesScanned) * (m.App.GenOps + 1) * m.scalarNS() * 1e-9 / t
	mem := m.memSeconds(float64(c.PullEdgesScanned) * 12) // 8B edge walk + 4B parent-state gather
	return roof(compute, mem) + m.launchSeconds(1)
}

// Update returns the simulated time of one vertex-updating step.
func (m CostModel) Update(c Counters, threads int) float64 {
	t := float64(threads)
	compute := (float64(c.UpdatedVertices)*m.App.UpdOps*m.scalarNS() +
		float64(c.TaskFetches)*m.Dev.FetchNS) * 1e-9 / t
	mem := m.memSeconds(float64(c.UpdatedVertices) * 8)
	return roof(compute, mem) + m.launchSeconds(1)
}

// Sequential returns the simulated time of the plain single-thread C++-style
// implementation (Table II baselines): pure compute, no message buffer, no
// locks, no launches.
func (m CostModel) Sequential(c Counters) float64 {
	ops := float64(c.EdgesTraversed)*m.App.GenOps +
		float64(c.ReducedMessages)*m.App.ProcOps +
		float64(c.UpdatedVertices)*m.App.UpdOps
	return ops * m.scalarNS() * 1e-9
}

// OMP returns the simulated time of one iteration of the OpenMP baseline:
// a fused parallel loop over vertices that updates destinations in place
// under per-vertex OpenMP locks, with no SIMD (the paper confirms the
// compiler does not vectorize these irregular loops).
func (m CostModel) OMP(c Counters, threads int) float64 {
	t := float64(threads)
	compute := (float64(c.EdgesTraversed)*m.App.GenOps*m.scalarNS() +
		float64(c.ReducedMessages)*m.App.ProcOps*m.scalarNS() +
		float64(c.UpdatedVertices)*m.App.UpdOps*m.scalarNS() +
		float64(c.Messages)*m.Dev.OMPLockNS +
		c.ConflictExpected*m.Dev.ConflictNS) * 1e-9 / t
	mem := m.memSeconds(float64(c.EdgesTraversed) * 8)
	return roof(compute, mem) + m.launchSeconds(1)
}

// DefaultPipeSplit returns the worker/mover thread split the paper found
// best: on the MIC, 180 workers + 60 movers; proportionally 12 + 4 on the
// 16-thread CPU.
func DefaultPipeSplit(dev DeviceSpec) (workers, movers int) {
	total := dev.Threads()
	movers = total / 4
	if movers < 1 {
		movers = 1
	}
	return total - movers, movers
}

// String describes the model.
func (m CostModel) String() string {
	return fmt.Sprintf("CostModel(%s, %s)", m.Dev.Name, m.App.Name)
}
