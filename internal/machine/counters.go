package machine

// Counters records what actually happened during one (real) execution step
// or run: every field is a count of concrete events observed in the running
// data structures, never an estimate. The CostModel converts these into
// simulated device time.
type Counters struct {
	// Iterations is the number of BSP supersteps executed.
	Iterations int64
	// Steps is the number of parallel step launches (fork/join regions).
	Steps int64
	// ActiveVertices is the total count of vertices whose GenerateMessages
	// ran, summed over iterations.
	ActiveVertices int64
	// EdgesTraversed counts edges walked during message generation.
	EdgesTraversed int64
	// Messages counts messages inserted into the local message buffer.
	Messages int64
	// RemoteMessages counts messages destined for the other device (these
	// go to the remote buffer and across the link after combination).
	RemoteMessages int64
	// ColumnsUsed counts dynamic column allocations (one lock each in the
	// CSB allocation path).
	ColumnsUsed int64
	// ConflictExpected is the expected number of lock collisions under the
	// locking scheme, computed from the real per-column message counts and
	// the device thread count by ContentionStats.
	ConflictExpected float64
	// SerialFloorMsgs is the message count of the hottest saturated column
	// (0 when no column saturates); inserts to a saturated column fully
	// serialize, bounding the step from below.
	SerialFloorMsgs int64
	// QueueOps counts per-element SPSC cursor publications (pushes plus
	// pops) in the pipelined scheme with batch size 1; zero for batched
	// runs.
	QueueOps int64
	// QueueBatchOps counts batched SPSC cursor publications (PushBatch and
	// PopBatch calls that moved data) in the pipelined scheme with batch
	// size > 1; zero for per-element runs. Each publication covers up to a
	// whole batch of messages, so the model prices the cross-core handshake
	// per publication and the per-message element store at the far cheaper
	// QueueBatchNS.
	QueueBatchOps int64
	// BufferResetBytes is the message-buffer memory rewritten at the start
	// of the iteration (the CSB identity fill); it charges the framework's
	// buffer-storage overhead, which matters on the bandwidth-poor CPU.
	BufferResetBytes int64
	// VecRows counts SIMD rows reduced during message processing.
	VecRows int64
	// ReducedMessages counts messages consumed by message processing
	// (vector or scalar path alike; the scalar path costs one op each).
	ReducedMessages int64
	// UpdatedVertices counts vertices whose UpdateVertex ran.
	UpdatedVertices int64
	// TaskFetches counts dynamic-scheduler task retrievals.
	TaskFetches int64
	// PullEdgesScanned counts in-edges examined by pull/bottom-up sweeps
	// (each is one frontier-membership test, plus the message arithmetic
	// when the parent is in the frontier).
	PullEdgesScanned int64
	// PullSupersteps counts supersteps executed in the pull direction.
	PullSupersteps int64
	// BytesSent is the total payload exchanged with the other device.
	BytesSent int64
	// Exchanges is the number of cross-device exchange rounds.
	Exchanges int64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Iterations += o.Iterations
	c.Steps += o.Steps
	c.ActiveVertices += o.ActiveVertices
	c.EdgesTraversed += o.EdgesTraversed
	c.Messages += o.Messages
	c.RemoteMessages += o.RemoteMessages
	c.ColumnsUsed += o.ColumnsUsed
	c.ConflictExpected += o.ConflictExpected
	if o.SerialFloorMsgs > c.SerialFloorMsgs {
		c.SerialFloorMsgs = o.SerialFloorMsgs
	}
	c.QueueOps += o.QueueOps
	c.QueueBatchOps += o.QueueBatchOps
	c.BufferResetBytes += o.BufferResetBytes
	c.VecRows += o.VecRows
	c.ReducedMessages += o.ReducedMessages
	c.UpdatedVertices += o.UpdatedVertices
	c.TaskFetches += o.TaskFetches
	c.PullEdgesScanned += o.PullEdgesScanned
	c.PullSupersteps += o.PullSupersteps
	c.BytesSent += o.BytesSent
	c.Exchanges += o.Exchanges
}

// ContentionStats derives the locking-contention counters from the real
// per-column insertion counts of one generation step.
//
// Model: while a thread inserts into column j, the probability that another
// of the threads-1 threads is concurrently targeting j is approximately
// rho_j = (threads-1) * m_j / M (each thread spends an m_j/M fraction of
// the step on column j), capped at 1 — in a closed system threads stall on
// hot columns rather than producing unbounded extra traffic. Each collision
// costs one coherence round trip (the device's ConflictNS). The expected
// collision count is sum_j min(rho_j, 1) * m_j: negligible on cold columns,
// approaching one per message when the receive pattern concentrates
// (TopoSort's "large number of messages sent to a single vertex", §V-C).
//
// serialFloor reports the hottest column's message count (diagnostic).
func ContentionStats(colCounts []int32, threads int) (expected float64, serialFloor int64) {
	if threads <= 1 || len(colCounts) == 0 {
		return 0, 0
	}
	var total int64
	for _, m := range colCounts {
		total += int64(m)
	}
	if total == 0 {
		return 0, 0
	}
	t1 := float64(threads - 1)
	for _, m := range colCounts {
		mj := float64(m)
		rho := t1 * mj / float64(total)
		if rho > 1 {
			rho = 1
		}
		expected += rho * mj
		if int64(m) > serialFloor {
			serialFloor = int64(m)
		}
	}
	return expected, serialFloor
}
