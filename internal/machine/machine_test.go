package machine

import (
	"math"
	"testing"
	"testing/quick"

	"hetgraph/internal/vec"
)

func TestDeviceSpecs(t *testing.T) {
	cpu, mic := CPU(), MIC()
	if err := cpu.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := mic.Validate(); err != nil {
		t.Fatal(err)
	}
	if cpu.Threads() != 16 {
		t.Errorf("CPU threads = %d, want 16", cpu.Threads())
	}
	if mic.Threads() != 240 {
		t.Errorf("MIC threads = %d, want 240 (60 cores x 4)", mic.Threads())
	}
	if cpu.SIMDWidth != vec.WidthCPU || mic.SIMDWidth != vec.WidthMIC {
		t.Error("SIMD widths do not match paper's devices")
	}
	// Paper §V-F: ~11x sequential gap despite 2.45x clock gap.
	ratio := mic.ScalarNS / cpu.ScalarNS
	if ratio < 9 || ratio > 13 {
		t.Errorf("MIC/CPU scalar cost ratio = %.1f, want ~11", ratio)
	}
	if mic.OMPLockNS <= mic.LockNS || cpu.OMPLockNS <= cpu.LockNS {
		t.Error("OpenMP locks must be costlier than framework locks (paper §V-C)")
	}
	if mic.MemBandwidthGBs <= cpu.MemBandwidthGBs {
		t.Error("MIC must have higher aggregate bandwidth than CPU")
	}
}

func TestDeviceSpecValidate(t *testing.T) {
	d := CPU()
	d.Cores = 0
	if d.Validate() == nil {
		t.Error("accepted zero cores")
	}
	d = CPU()
	d.SIMDWidth = 3
	if d.Validate() == nil {
		t.Error("accepted invalid SIMD width")
	}
	d = CPU()
	d.ScalarNS = 0
	if d.Validate() == nil {
		t.Error("accepted zero scalar cost")
	}
}

func TestLinkTransfer(t *testing.T) {
	l := PCIe()
	zero := l.TransferSeconds(0)
	if zero != l.LatencyUS*1e-6 {
		t.Errorf("zero-byte transfer = %v, want pure latency", zero)
	}
	oneMB := l.TransferSeconds(1 << 20)
	if oneMB <= zero {
		t.Error("transfer time must grow with bytes")
	}
	// 1 GB at 5.5 GB/s ~ 0.18 s.
	oneGB := l.TransferSeconds(1 << 30)
	if oneGB < 0.15 || oneGB > 0.25 {
		t.Errorf("1GB transfer = %v s, want ~0.18", oneGB)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Messages: 10, VecRows: 3, SerialFloorMsgs: 5, Exchanges: 1}
	b := Counters{Messages: 5, VecRows: 2, SerialFloorMsgs: 9, BytesSent: 100}
	a.Add(b)
	if a.Messages != 15 || a.VecRows != 5 || a.BytesSent != 100 || a.Exchanges != 1 {
		t.Errorf("Add wrong: %+v", a)
	}
	if a.SerialFloorMsgs != 9 {
		t.Errorf("SerialFloorMsgs should take max, got %d", a.SerialFloorMsgs)
	}
}

func TestContentionStatsBasics(t *testing.T) {
	// Single thread: no contention by definition.
	if e, f := ContentionStats([]int32{100, 100}, 1); e != 0 || f != 0 {
		t.Errorf("1 thread: expected %v floor %v, want 0,0", e, f)
	}
	if e, f := ContentionStats(nil, 8); e != 0 || f != 0 {
		t.Errorf("empty: %v %v", e, f)
	}
	if e, f := ContentionStats([]int32{0, 0}, 8); e != 0 || f != 0 {
		t.Errorf("zero messages: %v %v", e, f)
	}
	// Uniform spread over many columns, few threads: tiny contention.
	cols := make([]int32, 10000)
	for i := range cols {
		cols[i] = 10
	}
	e, f := ContentionStats(cols, 16)
	if f != 10 {
		t.Errorf("uniform: hottest column = %d, want 10", f)
	}
	// expected = sum (15 * 10/100000) * 10 = 10000 * 0.015 = 150
	if math.Abs(e-150) > 1e-6 {
		t.Errorf("uniform expected = %v, want 150", e)
	}
	// One hot column with everything: saturates (one collision per
	// message, capped).
	e, f = ContentionStats([]int32{100000, 1}, 240)
	if f != 100000 {
		t.Errorf("hottest column = %d, want 100000", f)
	}
	if e < 100000 || e > 100001 {
		t.Errorf("hot column expected = %v, want ~100000 (capped)", e)
	}
}

// property: contention expectation is bounded by total messages and
// monotone in thread count.
func TestQuickContentionBounds(t *testing.T) {
	f := func(raw []uint16, threadsRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		cols := make([]int32, len(raw))
		var total float64
		for i, v := range raw {
			cols[i] = int32(v % 1000)
			total += float64(cols[i])
		}
		threads := 2 + int(threadsRaw)%256
		e1, _ := ContentionStats(cols, threads)
		e2, _ := ContentionStats(cols, threads+10)
		return e1 >= 0 && e1 <= total+1e-9 && e2+1e-9 >= e1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestProfilesValid(t *testing.T) {
	for _, p := range []AppProfile{PageRankProfile, BFSProfile, SSSPProfile, SCProfile, TopoSortProfile} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if !SCProfile.Branchy {
		t.Error("SC must be branchy (paper: CPU wins on SC due to conditionals)")
	}
	if BFSProfile.Reducible || SCProfile.Reducible {
		t.Error("BFS and SC must not use SIMD reduction (paper §V-D)")
	}
	bad := AppProfile{Name: "x", GenOps: 0, ProcOps: 1, UpdOps: 1, MsgBytes: 4}
	if bad.Validate() == nil {
		t.Error("accepted zero GenOps")
	}
	bad = AppProfile{Name: "x", GenOps: 1, ProcOps: 1, UpdOps: 1, MsgBytes: 0}
	if bad.Validate() == nil {
		t.Error("accepted zero MsgBytes")
	}
}

func TestNewCostModel(t *testing.T) {
	if _, err := NewCostModel(CPU(), PageRankProfile); err != nil {
		t.Fatal(err)
	}
	bad := CPU()
	bad.Cores = -1
	if _, err := NewCostModel(bad, PageRankProfile); err == nil {
		t.Error("accepted invalid device")
	}
	if _, err := NewCostModel(CPU(), AppProfile{}); err == nil {
		t.Error("accepted invalid profile")
	}
	m, _ := NewCostModel(MIC(), SSSPProfile)
	if m.String() == "" {
		t.Error("empty String")
	}
}

// A medium iteration's counters for cost sanity checks.
func sampleCounters() Counters {
	return Counters{
		Iterations:      1,
		Steps:           3,
		ActiveVertices:  100000,
		EdgesTraversed:  2000000,
		Messages:        2000000,
		ColumnsUsed:     90000,
		VecRows:         220000, // ~9.1 lanes of 16 occupied
		ReducedMessages: 2000000,
		UpdatedVertices: 95000,
		TaskFetches:     5000,
	}
}

func TestVectorizationSpeedupDirection(t *testing.T) {
	c := sampleCounters()
	for _, dev := range []DeviceSpec{CPU(), MIC()} {
		m, _ := NewCostModel(dev, PageRankProfile)
		vecT := m.Process(c, dev.Threads(), true)
		novecT := m.Process(c, dev.Threads(), false)
		if vecT >= novecT {
			t.Errorf("%s: vectorized %v >= scalar %v", dev.Name, vecT, novecT)
		}
	}
	// MIC gains more from vectorization than CPU (wider lanes) when lane
	// occupancy is comparable.
	cCPU := c
	cCPU.VecRows = 625000 // 2M/4 lanes * 0.8 occupancy
	mCPU, _ := NewCostModel(CPU(), PageRankProfile)
	mMIC, _ := NewCostModel(MIC(), PageRankProfile)
	spCPU := mCPU.Process(cCPU, 16, false) / mCPU.Process(cCPU, 16, true)
	spMIC := mMIC.Process(c, 240, false) / mMIC.Process(c, 240, true)
	if spMIC <= spCPU {
		t.Errorf("MIC vec speedup %v <= CPU %v", spMIC, spCPU)
	}
}

func TestNonReducibleAppIgnoresVectorFlag(t *testing.T) {
	c := sampleCounters()
	m, _ := NewCostModel(MIC(), SCProfile)
	if m.Process(c, 240, true) != m.Process(c, 240, false) {
		t.Error("SC must cost the same with and without the vector flag")
	}
}

func TestConflictsRaiseLockingCost(t *testing.T) {
	c := sampleCounters()
	c.ConflictExpected = 800000 // hot receive pattern
	m, _ := NewCostModel(MIC(), TopoSortProfile)
	with := m.GenerateLocking(c, 240)
	c2 := c
	c2.ConflictExpected = 0
	without := m.GenerateLocking(c2, 240)
	if with <= without {
		t.Errorf("conflicts did not raise locking cost: %v <= %v", with, without)
	}
	wantDelta := 800000 * m.Dev.ConflictNS * 1e-9 / 240
	if got := with - without; got < wantDelta*0.99 || got > wantDelta*1.01 {
		t.Errorf("conflict surcharge = %v, want ~%v", got, wantDelta)
	}
	// OMP pays the same collision structure with its own lock cost.
	if m.OMP(c, 240) <= m.OMP(c2, 240) {
		t.Error("OMP ignored conflicts")
	}
}

func TestPipeliningBeatsLockingUnderContention(t *testing.T) {
	// High fan-in counters (TopoSort-like on MIC): locking should lose.
	c := sampleCounters()
	c.ConflictExpected = 800000
	c.SerialFloorMsgs = 120000
	m, _ := NewCostModel(MIC(), TopoSortProfile)
	w, mv := DefaultPipeSplit(MIC())
	lock := m.GenerateLocking(c, 240)
	pipe := m.GeneratePipelined(c, w, mv)
	if pipe >= lock {
		t.Errorf("under heavy contention, pipe %v >= lock %v", pipe, lock)
	}
	// Low-volume counters (BFS-like): locking should win on MIC too,
	// because the pipeline's extra fork/join coordination dominates when
	// there is little to move.
	c = Counters{Steps: 3, ActiveVertices: 3000, EdgesTraversed: 15000,
		Messages: 15000, ColumnsUsed: 9000, ReducedMessages: 15000,
		UpdatedVertices: 3000, TaskFetches: 400}
	mb, _ := NewCostModel(MIC(), BFSProfile)
	lock = mb.GenerateLocking(c, 240)
	pipe = mb.GeneratePipelined(c, w, mv)
	if lock >= pipe {
		t.Errorf("for sparse messaging, lock %v >= pipe %v", lock, pipe)
	}
}

func TestSequentialGap(t *testing.T) {
	c := sampleCounters()
	mc, _ := NewCostModel(CPU(), PageRankProfile)
	mm, _ := NewCostModel(MIC(), PageRankProfile)
	gap := mm.Sequential(c) / mc.Sequential(c)
	if gap < 9 || gap > 13 {
		t.Errorf("MIC/CPU sequential gap = %v, want ~11 (paper §V-F)", gap)
	}
}

func TestUpdateAndExchangeCosts(t *testing.T) {
	c := sampleCounters()
	m, _ := NewCostModel(CPU(), PageRankProfile)
	u16 := m.Update(c, 16)
	u1 := m.Update(c, 1)
	if u16 >= u1 {
		t.Errorf("more threads should reduce update time: %v >= %v", u16, u1)
	}
}

func TestDefaultPipeSplit(t *testing.T) {
	w, m := DefaultPipeSplit(MIC())
	if w != 180 || m != 60 {
		t.Errorf("MIC split = %d+%d, want 180+60 (paper's best)", w, m)
	}
	w, m = DefaultPipeSplit(CPU())
	if w != 12 || m != 4 {
		t.Errorf("CPU split = %d+%d, want 12+4", w, m)
	}
	one := DeviceSpec{Cores: 1, ThreadsPerCore: 1}
	w, m = DefaultPipeSplit(one)
	if m < 1 || w < 0 {
		t.Errorf("degenerate split = %d+%d", w, m)
	}
}

// property: all phase costs are non-negative and monotone in message volume.
func TestQuickCostMonotone(t *testing.T) {
	m, _ := NewCostModel(MIC(), SSSPProfile)
	f := func(msgsRaw uint32) bool {
		msgs := int64(msgsRaw % 10_000_000)
		c := Counters{EdgesTraversed: msgs, Messages: msgs, ReducedMessages: msgs,
			VecRows: msgs / 10, UpdatedVertices: msgs / 20, ColumnsUsed: msgs / 30}
		c2 := c
		c2.EdgesTraversed *= 2
		c2.Messages *= 2
		c2.ReducedMessages *= 2
		c2.VecRows *= 2
		lock1 := m.GenerateLocking(c, 240)
		lock2 := m.GenerateLocking(c2, 240)
		proc1 := m.Process(c, 240, true)
		proc2 := m.Process(c2, 240, true)
		return lock1 >= 0 && lock2 >= lock1 && proc1 >= 0 && proc2 >= proc1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOMPCostStructure(t *testing.T) {
	c := sampleCounters()
	for _, dev := range []DeviceSpec{CPU(), MIC()} {
		m, _ := NewCostModel(dev, PageRankProfile)
		omp := m.OMP(c, dev.Threads())
		if omp <= 0 {
			t.Errorf("%s: OMP time %v", dev.Name, omp)
		}
		// More threads help.
		if m.OMP(c, 2) <= omp {
			t.Errorf("%s: OMP time not reduced by threads", dev.Name)
		}
	}
	// OpenMP locks cost more per message than the framework's.
	mic, _ := NewCostModel(MIC(), PageRankProfile)
	lockOnly := Counters{Messages: 1_000_000}
	frameworkLocks := mic.GenerateLocking(lockOnly, 240)
	ompLocks := mic.OMP(lockOnly, 240)
	if ompLocks <= frameworkLocks {
		t.Errorf("OMP per-message lock cost (%v) not above framework's (%v)", ompLocks, frameworkLocks)
	}
}

func TestGeneratePipelinedBottleneck(t *testing.T) {
	// The pipelined step takes as long as its slower side: starving the
	// movers must raise the time.
	m, _ := NewCostModel(MIC(), PageRankProfile)
	c := Counters{EdgesTraversed: 2_000_000, Messages: 2_000_000, QueueOps: 4_000_000, ColumnsUsed: 60_000}
	balanced := m.GeneratePipelined(c, 180, 60)
	moverStarved := m.GeneratePipelined(c, 235, 5)
	if moverStarved <= balanced {
		t.Errorf("5 movers (%v) not slower than 60 (%v)", moverStarved, balanced)
	}
	workerStarved := m.GeneratePipelined(c, 5, 235)
	if workerStarved <= balanced {
		t.Errorf("5 workers (%v) not slower than 180 (%v)", workerStarved, balanced)
	}
}

func TestSequentialScalesWithBranchiness(t *testing.T) {
	c := sampleCounters()
	plain, _ := NewCostModel(MIC(), PageRankProfile)
	branchy, _ := NewCostModel(MIC(), SCProfile)
	// Same counters: the branchy profile must cost more per op.
	opsPlain := plain.Sequential(c) / (PageRankProfile.GenOps + PageRankProfile.ProcOps + PageRankProfile.UpdOps)
	opsBranchy := branchy.Sequential(c) / (SCProfile.GenOps + SCProfile.ProcOps + SCProfile.UpdOps)
	if opsBranchy <= opsPlain {
		t.Errorf("branch penalty missing: %v <= %v", opsBranchy, opsPlain)
	}
}

func TestProcessLaunchFloor(t *testing.T) {
	// Even an empty processing step costs one launch.
	m, _ := NewCostModel(MIC(), SSSPProfile)
	empty := Counters{}
	if got := m.Process(empty, 240, true); got < MIC().StepLaunchNS*1e-9 {
		t.Errorf("empty process %v below launch floor", got)
	}
	if got := m.Update(empty, 240); got < MIC().StepLaunchNS*1e-9 {
		t.Errorf("empty update %v below launch floor", got)
	}
}

func TestBatchedHandoffCheaperThanPerElement(t *testing.T) {
	// Same workload counted two ways: per-element (QueueOps = 2 per
	// message) vs. batched at 64 (QueueBatchOps = 2*Messages/64 cursor
	// publications). The batched handoff must be priced cheaper on both
	// devices — that is the point of PushBatch/PopBatch.
	perElem := sampleCounters()
	perElem.QueueOps = 2 * perElem.Messages
	batched := sampleCounters()
	batched.QueueBatchOps = 2 * batched.Messages / 64
	for _, dev := range []DeviceSpec{CPU(), MIC()} {
		m, _ := NewCostModel(dev, PageRankProfile)
		w, mv := DefaultPipeSplit(dev)
		tPer := m.GeneratePipelined(perElem, w, mv)
		tBat := m.GeneratePipelined(batched, w, mv)
		if tBat >= tPer {
			t.Errorf("%s: batched %v >= per-element %v", dev.Name, tBat, tPer)
		}
	}
}

func TestQueueBatchNSBelowQueueOpNS(t *testing.T) {
	// The calibration must keep the batched per-message store cheaper than
	// a full cursor handshake, or batching could never win.
	for _, dev := range []DeviceSpec{CPU(), MIC()} {
		if dev.QueueBatchNS <= 0 || dev.QueueBatchNS >= dev.QueueOpNS {
			t.Errorf("%s: QueueBatchNS = %v not in (0, QueueOpNS=%v)", dev.Name, dev.QueueBatchNS, dev.QueueOpNS)
		}
	}
}
