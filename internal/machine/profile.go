package machine

import "fmt"

// AppProfile characterizes an application's per-event work for the cost
// model: how many edge-grain scalar operations one event of each kind costs.
// These are properties of the user functions (Listing 1 and §V-B of the
// paper), not of the device.
type AppProfile struct {
	Name string
	// GenOps: scalar ops to generate one message (read edge, compute
	// value, form the message).
	GenOps float64
	// ProcOps: scalar ops to reduce one message (or, on the vector path,
	// per-lane work of one row op relative to VecOpNS).
	ProcOps float64
	// UpdOps: scalar ops to update one vertex from its reduced message.
	UpdOps float64
	// Branchy marks branch-heavy user functions (SC's sort-and-merge),
	// which pay the device's BranchPenalty.
	Branchy bool
	// MsgBytes is the size of one message value on the wire and in the
	// buffer (plus a 4-byte destination ID accounted separately).
	MsgBytes int
	// Reducible reports whether message processing is an associative,
	// commutative reduction over a basic type, i.e. whether the SIMD path
	// applies (true for PageRank/SSSP/TopoSort; false for BFS, which has
	// no reduction, and SC, whose messages are cluster lists).
	Reducible bool
}

// Validate checks the profile's constants.
func (p AppProfile) Validate() error {
	if p.GenOps <= 0 || p.ProcOps < 0 || p.UpdOps <= 0 {
		return fmt.Errorf("machine: profile %q has non-positive op costs", p.Name)
	}
	if p.MsgBytes <= 0 {
		return fmt.Errorf("machine: profile %q has non-positive MsgBytes", p.Name)
	}
	return nil
}

// Profiles for the five evaluated applications. Op weights follow the
// user-function bodies: PageRank divides by out-degree during generation;
// SSSP adds a weight and compares; BFS writes level+1 with no reduction;
// TopoSort sends constant 1 and decrements a counter; SC builds, merges and
// sorts cluster lists (heavily branchy, large messages).
var (
	PageRankProfile = AppProfile{Name: "PageRank", GenOps: 4.0, ProcOps: 2.0, UpdOps: 4.0, MsgBytes: 4, Reducible: true}
	BFSProfile      = AppProfile{Name: "BFS", GenOps: 3.0, ProcOps: 1.0, UpdOps: 3.0, MsgBytes: 4, Reducible: false}
	SSSPProfile     = AppProfile{Name: "SSSP", GenOps: 4.0, ProcOps: 2.0, UpdOps: 4.0, MsgBytes: 4, Reducible: true}
	SCProfile       = AppProfile{Name: "SC", GenOps: 12.0, ProcOps: 20.0, UpdOps: 15.0, Branchy: true, MsgBytes: 96, Reducible: false}
	TopoSortProfile = AppProfile{Name: "TopoSort", GenOps: 3.0, ProcOps: 2.0, UpdOps: 3.0, MsgBytes: 4, Reducible: true}
)
