package machine

// Calibration constants for the device cost models, in nanoseconds of
// simulated device time unless noted. They were fixed once, by hand, against
// the anchors below, and are not tuned per experiment. Sources of anchors:
//
//   - Paper §V-F: a CPU core runs the same sequential graph code ~11x faster
//     than a MIC core despite only a 2.45x clock advantage (out-of-order
//     execution) -> micScalarNS / cpuScalarNS ≈ 11.
//   - Paper §V-C: on the CPU, OpenMP ≈ framework (±2.5%), locking beats
//     pipelining, and the smaller memory bandwidth makes message storage
//     offset the framework's benefits -> cpuMemBWGBs well below micMemBWGBs
//     (Stream-class numbers for E5-2680 vs SE10P: ~50 vs ~160 GB/s).
//   - Paper §V-C: MIC locking contention is severe for high-fan-in
//     workloads (TopoSort pipelining 3.36x over locking; PageRank 2.33x)
//     -> micConflictNS >> cpuConflictNS (coherence across the 60-core ring
//     with 240 threads vs 16).
//   - Paper §V-C: OpenMP locks are more expensive than the framework's
//     (MIC OMP up to 4.15x slower) -> OMPLockNS > LockNS on both devices.
//   - Paper §V-D: SIMD message reduction achieves 5.16–7.85x on MIC
//     (16 lanes) and 2.22–2.35x on CPU (4 lanes); the gap to the lane count
//     comes from lane bubbles (measured by the CSB, not a constant here) and
//     a vector op being slightly more expensive than a scalar one.
//   - Paper §II-A / §V-A: device geometry (16 cores @2.7 GHz; 60+1 cores
//     @1.1 GHz x 4 threads), PCIe-attached coprocessor.
//
// Absolute times produced by the model are for *scaled-down* input graphs
// and are not comparable to the paper's absolute seconds; EXPERIMENTS.md
// compares ratios only.
const (
	// CPU: aggressive out-of-order core. One edge-grain scalar op ~1.6 ns
	// (a few L2-resident accesses amortized by OoO overlap).
	cpuScalarNS      = 1.6
	cpuBranchPenalty = 1.0
	// A 4-lane SSE op on gathered message rows.
	cpuVecOpNS    = 2.2
	cpuMemBWGBs   = 50.0
	cpuLockNS     = 22.0
	cpuConflictNS = 150.0
	cpuOMPLockNS  = 26.0
	cpuQueueOpNS  = 10.0
	// Per-message cost inside a batched queue transfer: a plain store into
	// an exclusively-held ring line, no cross-core handshake (that is paid
	// once per batch at QueueOpNS).
	cpuQueueBatchNS = 1.0
	cpuFetchNS      = 12.0
	// Forking 16 threads via a pool.
	cpuStepLaunchNS = 2500.0

	// MIC: in-order 1.1 GHz core, ~11x slower on irregular scalar code.
	micScalarNS = 17.6
	// Branch-heavy user code (SC's sort/merge) suffers further on in-order
	// pipelines with no speculation to hide mispredicts.
	micBranchPenalty = 2.4
	// A 16-lane IMCI op; vpu issue + aligned load. Slightly over the scalar
	// cost, so the per-row speedup is bounded by lanes x occupancy.
	micVecOpNS  = 24.0
	micMemBWGBs = 160.0
	// Locks on the 60-core ring: expensive — every acquisition bounces a
	// cache line across the ring among up to 240 threads — and collisions
	// cost a full coherence round trip.
	micLockNS     = 400.0
	micConflictNS = 500.0
	micOMPLockNS  = 600.0
	micQueueOpNS  = 16.0
	// Batched per-message ring store on the in-order core: dearer than the
	// CPU's (no store buffer magic) but still far below the per-element
	// handshake and below micScalarNS — it is a sequential streaming store,
	// not an edge-grain irregular access.
	micQueueBatchNS = 4.0
	micFetchNS      = 40.0
	// Forking 240 threads of in-order cores.
	micStepLaunchNS = 15000.0

	// PCIe 2.0 x16 sustained, MPI symmetric mode.
	pcieBWGBs     = 5.5
	pcieLatencyUS = 8.0
)
