package csb

import (
	"sync/atomic"

	"hetgraph/internal/graph"
	"hetgraph/internal/vec"
)

// The message-processing step treats "the set of all vector arrays from all
// vertex groups as task units" (§IV-D). A task index t identifies array
// t%K of group t/K.

// Lane describes one occupied column of a task's vector array: which vertex
// owns it, which lane it sits in, and how many messages it received.
type Lane struct {
	Vertex graph.VertexID
	Lane   int
	Count  int32
}

// NumTasks returns the number of vector arrays across all groups.
func (b *Buffer) NumTasks() int { return len(b.groups) * b.cfg.K }

// Task returns the vector array of task t and the number of rows that hold
// messages (the maximum fill among the array's lanes). A dynamic-mode buffer
// condenses messages into the front columns, so trailing arrays of a group
// report zero rows and are skipped — this is exactly the SIMD-lane saving of
// dynamic column allocation.
func (b *Buffer) Task(t int) (*vec.ArrayF32, int) {
	gi, ai := t/b.cfg.K, t%b.cfg.K
	gr := &b.groups[gi]
	w := int(b.cfg.Width)
	base := ai * w
	rows := int32(0)
	for l := 0; l < w; l++ {
		if f := atomic.LoadInt32(&gr.fill[base+l]); f > rows {
			rows = f
		}
	}
	return gr.arrays[ai], int(rows)
}

// Lanes appends the occupied lanes of task t to out and returns it. Lanes
// are reported in lane order; each carries the destination vertex resolved
// through the group's owner table and the buffer's sorted order.
func (b *Buffer) Lanes(t int, out []Lane) []Lane {
	gi, ai := t/b.cfg.K, t%b.cfg.K
	gr := &b.groups[gi]
	w := int(b.cfg.Width)
	base := ai * w
	for l := 0; l < w; l++ {
		col := base + l
		f := atomic.LoadInt32(&gr.fill[col])
		if f == 0 {
			continue
		}
		posIn := atomic.LoadInt32(&gr.owner[col])
		v := b.sorted[gi*b.groupWidth+int(posIn)]
		out = append(out, Lane{Vertex: v, Lane: l, Count: f})
	}
	return out
}

// OccupancyStats reports, over all occupied rows of all tasks, the total
// number of rows and the total number of occupied cells within those rows.
// occupied/total/width is the SIMD lane occupancy; bubbles are what keep the
// measured vectorization speedup below the lane count (§V-D).
func (b *Buffer) OccupancyStats() (rows int64, occupiedCells int64) {
	w := int(b.cfg.Width)
	for t := 0; t < b.NumTasks(); t++ {
		gi, ai := t/b.cfg.K, t%b.cfg.K
		gr := &b.groups[gi]
		base := ai * w
		maxF := int32(0)
		var cells int64
		for l := 0; l < w; l++ {
			f := atomic.LoadInt32(&gr.fill[base+l])
			cells += int64(f)
			if f > maxF {
				maxF = f
			}
		}
		rows += int64(maxF)
		occupiedCells += cells
	}
	return rows, occupiedCells
}
