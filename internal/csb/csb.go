// Package csb implements the Condensed Static Buffer (§IV-B of the paper),
// the core data structure of the runtime: a message buffer organized so that
// messages destined to w/msg_size different vertices land in the lanes of
// one aligned SIMD row, enabling vectorized message reduction while keeping
// memory bounded.
//
// Construction (once per graph):
//  1. sort vertices by in-degree, descending (stable by ID), and build a
//     redirection map from vertex IDs to sorted positions;
//  2. group consecutive sorted vertices into vertex groups of k*width
//     vertices (k a small constant, width the SIMD lane count);
//  3. allocate k vector arrays per group, each with max-in-degree-of-group
//     rows.
//
// Per iteration, messages are inserted into columns (a column is one lane of
// one of the group's arrays) either by a fixed one-to-one position→column
// mapping, or by dynamic column allocation, which condenses occupied columns
// to the front so fewer rows of fewer arrays need reduction (§IV-C).
package csb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hetgraph/internal/graph"
	"hetgraph/internal/vec"
)

// InsertMode selects the vertex→column mapping policy.
type InsertMode int

const (
	// Dynamic allocates columns on first message per vertex per iteration,
	// condensing used columns to the front of each group (Fig. 3b).
	Dynamic InsertMode = iota
	// OneToOne maps each vertex to a fixed column (Fig. 3a); simpler, but
	// wastes SIMD lanes on vertices that receive nothing. Kept for the
	// ablation benchmarks.
	OneToOne
)

func (m InsertMode) String() string {
	switch m {
	case Dynamic:
		return "dynamic"
	case OneToOne:
		return "one-to-one"
	default:
		return fmt.Sprintf("InsertMode(%d)", int(m))
	}
}

// Config parameterizes buffer construction.
type Config struct {
	// Width is the SIMD lane count (w/msg_size).
	Width vec.Width
	// K is the vertex-group width factor: each group spans K*Width
	// vertices and owns K vector arrays. The paper uses a small constant
	// (2 in its running example).
	K int
	// Identity is the reduction identity stored in empty cells, so that
	// lane bubbles cannot corrupt a SIMD reduction (+Inf for min, 0 for
	// sum, -Inf for max).
	Identity float32
	// Mode is the column-mapping policy.
	Mode InsertMode
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Width.Validate(); err != nil {
		return err
	}
	if c.K < 1 || c.K > 64 {
		return fmt.Errorf("csb: K = %d out of [1,64]", c.K)
	}
	if c.Mode != Dynamic && c.Mode != OneToOne {
		return fmt.Errorf("csb: unknown insert mode %d", int(c.Mode))
	}
	return nil
}

// group is one vertex group: k vector arrays of maxDeg rows, plus the
// dynamic-column-allocation state.
type group struct {
	maxDeg int
	arrays []*vec.ArrayF32
	// index[posInGroup] is the column allocated to that vertex this
	// iteration, or -1 ("index array", Fig. 3b). Accessed atomically.
	index []int32
	// owner[col] is the posInGroup that holds the column, or -1.
	owner []int32
	// fill[col] counts messages inserted into the column this iteration.
	// The fetch-add on this counter is the per-insert critical section the
	// locking scheme pays for; the pipelined scheme makes it uncontended
	// by routing each destination to exactly one mover.
	fill []int32
	// colOffset is the next unallocated column ("column offset"),
	// guarded by allocMu during generation.
	colOffset int32
	// allocMu serializes column allocation — the one place the paper's
	// dynamic scheme locks ("allocates the next available column from that
	// vertex group, using locking in the process"). The per-message hot
	// path stays lock-free.
	allocMu sync.Mutex
}

// Buffer is a Condensed Static Buffer for float32 messages.
type Buffer struct {
	cfg        Config
	n          int
	groupWidth int
	// redirect[v] is v's position in the in-degree-sorted order
	// ("redirection map").
	redirect []int32
	// sorted[pos] is the vertex at that position.
	sorted []graph.VertexID
	groups []group
}

// Build constructs the buffer for graph g under cfg. The in-degree sort is
// descending and stable by vertex ID, matching Figure 3.
func Build(g *graph.CSR, cfg Config) (*Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := g.InDegrees()
	return BuildFromDegrees(in, cfg)
}

// BuildFromDegrees constructs the buffer given per-vertex in-degrees
// directly. The heterogeneous engine uses this form: a device's buffer is
// sized by in-degrees restricted to its local partition plus potential
// remote contributions.
func BuildFromDegrees(in []int32, cfg Config) (*Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(in)
	b := &Buffer{
		cfg:        cfg,
		n:          n,
		groupWidth: cfg.K * int(cfg.Width),
		redirect:   make([]int32, n),
		sorted:     make([]graph.VertexID, n),
	}
	for v := range b.sorted {
		b.sorted[v] = graph.VertexID(v)
	}
	sort.SliceStable(b.sorted, func(i, j int) bool {
		return in[b.sorted[i]] > in[b.sorted[j]]
	})
	for pos, v := range b.sorted {
		b.redirect[v] = int32(pos)
	}
	numGroups := (n + b.groupWidth - 1) / b.groupWidth
	b.groups = make([]group, numGroups)
	for gi := range b.groups {
		lo := gi * b.groupWidth
		hi := lo + b.groupWidth
		if hi > n {
			hi = n
		}
		maxDeg := 0
		for pos := lo; pos < hi; pos++ {
			if d := int(in[b.sorted[pos]]); d > maxDeg {
				maxDeg = d
			}
		}
		gr := &b.groups[gi]
		gr.maxDeg = maxDeg
		gr.arrays = make([]*vec.ArrayF32, cfg.K)
		for a := range gr.arrays {
			arr, err := vec.NewArrayF32(cfg.Width, maxDeg)
			if err != nil {
				return nil, err
			}
			gr.arrays[a] = arr
		}
		gr.index = make([]int32, b.groupWidth)
		gr.owner = make([]int32, b.groupWidth)
		gr.fill = make([]int32, b.groupWidth)
	}
	b.initialize()
	return b, nil
}

// NumVertices returns the number of destinations the buffer covers.
func (b *Buffer) NumVertices() int { return b.n }

// NumGroups returns the vertex-group count.
func (b *Buffer) NumGroups() int { return len(b.groups) }

// GroupWidth returns the vertices per group (k*width).
func (b *Buffer) GroupWidth() int { return b.groupWidth }

// Width returns the SIMD lane width.
func (b *Buffer) Width() int { return int(b.cfg.Width) }

// K returns the group width factor.
func (b *Buffer) K() int { return b.cfg.K }

// Mode returns the insertion mode.
func (b *Buffer) Mode() InsertMode { return b.cfg.Mode }

// GroupMaxDegree returns the row count of group gi's arrays.
func (b *Buffer) GroupMaxDegree(gi int) int { return b.groups[gi].maxDeg }

// Redirect returns the sorted position of vertex v.
func (b *Buffer) Redirect(v graph.VertexID) int32 { return b.redirect[v] }

// SortedVertex returns the vertex at sorted position pos.
func (b *Buffer) SortedVertex(pos int) graph.VertexID { return b.sorted[pos] }

// FootprintBytes returns the allocated message-cell memory. The condensed
// design's point is that this is far below n*maxInDegree*4, the naive
// rectangular buffer ("significantly reduces the memory requirement").
func (b *Buffer) FootprintBytes() int64 {
	var cells int64
	for gi := range b.groups {
		cells += int64(b.groups[gi].maxDeg) * int64(b.groupWidth)
	}
	return cells * 4
}

// NaiveFootprintBytes returns the rectangular n x maxInDegree buffer size
// the condensed layout is compared against.
func (b *Buffer) NaiveFootprintBytes() int64 {
	maxDeg := 0
	for gi := range b.groups {
		if b.groups[gi].maxDeg > maxDeg {
			maxDeg = b.groups[gi].maxDeg
		}
	}
	return int64(b.n) * int64(maxDeg) * 4
}

// initialize fills every cell with the identity and establishes the
// column-mapping state; called once at Build.
func (b *Buffer) initialize() {
	for gi := range b.groups {
		gr := &b.groups[gi]
		for _, arr := range gr.arrays {
			arr.Fill(b.cfg.Identity)
		}
		for i := range gr.index {
			gr.index[i] = -1
			gr.owner[i] = -1
			gr.fill[i] = 0
		}
		gr.colOffset = 0
		if b.cfg.Mode == OneToOne {
			// Fixed mapping: column i belongs to position i; establish it
			// once so Insert and reduction share one code path.
			for i := range gr.index {
				gr.index[i] = int32(i)
				gr.owner[i] = int32(i)
			}
			gr.colOffset = int32(b.groupWidth)
		}
	}
}

// Reset prepares the buffer for a new iteration by clearing only the cells
// that the previous iteration wrote (the CSB is static; a full wipe per
// iteration would cost the whole footprint in bandwidth for nothing when
// few vertices are active, e.g. BFS tails). It returns the number of bytes
// rewritten, which the cost model charges as buffer maintenance traffic.
//
// This partial reset relies on the reduction contract: ReduceVec must be a
// per-lane fold, so lanes that held only identity cells still hold the
// identity afterwards.
func (b *Buffer) Reset() int64 {
	var bytes int64
	w := int(b.cfg.Width)
	for gi := range b.groups {
		gr := &b.groups[gi]
		limit := int(gr.colOffset)
		if limit > len(gr.fill) {
			limit = len(gr.fill)
		}
		for c := 0; c < limit; c++ {
			f := int(gr.fill[c])
			if f > 0 {
				arr := gr.arrays[c/w]
				lane := c % w
				for r := 0; r < f; r++ {
					arr.Set(r, lane, b.cfg.Identity)
				}
				bytes += int64(f) * 4
			}
			gr.fill[c] = 0
			if b.cfg.Mode == Dynamic {
				if own := gr.owner[c]; own >= 0 {
					gr.index[own] = -1
					gr.owner[c] = -1
				}
			}
		}
		if b.cfg.Mode == Dynamic {
			gr.colOffset = 0
		}
	}
	return bytes
}

// locate splits a destination vertex into (group, position-in-group).
func (b *Buffer) locate(dst graph.VertexID) (gi int, posIn int) {
	pos := int(b.redirect[dst])
	return pos / b.groupWidth, pos % b.groupWidth
}

// Insert places one message for dst into the buffer. It is safe for
// concurrent use: column allocation uses a CAS on the index array plus an
// atomic column-offset increment (the "locking" the paper describes), and
// row claims use an atomic fetch-add on the column fill count.
//
// It panics if dst receives more messages in one iteration than its
// in-degree allows, which would indicate a broken application contract.
func (b *Buffer) Insert(dst graph.VertexID, val float32) {
	gi, posIn := b.locate(dst)
	gr := &b.groups[gi]
	col := atomic.LoadInt32(&gr.index[posIn])
	if col < 0 {
		// Allocate the next available column, exactly once per vertex per
		// iteration, under the group's allocation lock (§IV-B). Distinct
		// vertices per group never exceed the group width, so the offset
		// stays in range.
		col = b.allocColumn(gr, posIn)
	}
	row := atomic.AddInt32(&gr.fill[col], 1) - 1
	if int(row) >= gr.maxDeg {
		panic(fmt.Sprintf("csb: vertex %d received %d messages, exceeding group max in-degree %d", dst, row+1, gr.maxDeg))
	}
	arr := gr.arrays[int(col)/int(b.cfg.Width)]
	arr.Set(int(row), int(col)%int(b.cfg.Width), val)
}

// InsertOwned places one message for dst without per-message atomics. The
// caller must guarantee single-threaded ownership of dst for the iteration —
// the pipelined scheme does: each destination class (dst mod movers) is
// drained by exactly one mover, so dst's index entry and its column's fill
// count are touched by one goroutine only. Column allocation still takes the
// group's allocMu, because colOffset is shared by every vertex of the group
// and movers owning different classes can allocate in the same group
// concurrently. Visibility to post-run readers (ColumnFills, reduction) is
// established by the pipeline's WaitGroup.
func (b *Buffer) InsertOwned(dst graph.VertexID, val float32) {
	gi, posIn := b.locate(dst)
	gr := &b.groups[gi]
	col := gr.index[posIn]
	if col < 0 {
		col = b.allocColumn(gr, posIn)
	}
	row := gr.fill[col]
	gr.fill[col] = row + 1
	if int(row) >= gr.maxDeg {
		panic(fmt.Sprintf("csb: vertex %d received %d messages, exceeding group max in-degree %d", dst, row+1, gr.maxDeg))
	}
	arr := gr.arrays[int(col)/int(b.cfg.Width)]
	arr.Set(int(row), int(col)%int(b.cfg.Width), val)
}

// InsertOwnedBatch places one message per (dsts[i], vals[i]) pair under the
// same ownership contract as InsertOwned. This is the batch-insert path the
// movers use when draining whole SPSC batches: one call per drained batch
// instead of one per message.
func (b *Buffer) InsertOwnedBatch(dsts []graph.VertexID, vals []float32) {
	for i, dst := range dsts {
		b.InsertOwned(dst, vals[i])
	}
}

// allocColumn allocates the next available column of gr for posIn under the
// group's allocation lock and returns it.
func (b *Buffer) allocColumn(gr *group, posIn int) int32 {
	gr.allocMu.Lock()
	col := atomic.LoadInt32(&gr.index[posIn])
	if col < 0 {
		col = gr.colOffset
		gr.colOffset++
		atomic.StoreInt32(&gr.owner[col], int32(posIn))
		atomic.StoreInt32(&gr.index[posIn], col)
	}
	gr.allocMu.Unlock()
	return col
}

// ColumnFills appends the per-column message counts of this iteration to
// dst and returns it; the cost model's contention estimator consumes these.
func (b *Buffer) ColumnFills(dst []int32) []int32 {
	for gi := range b.groups {
		gr := &b.groups[gi]
		limit := int(atomic.LoadInt32(&gr.colOffset))
		if limit > len(gr.fill) {
			limit = len(gr.fill)
		}
		for c := 0; c < limit; c++ {
			if f := atomic.LoadInt32(&gr.fill[c]); f > 0 {
				dst = append(dst, f)
			}
		}
	}
	return dst
}

// ColumnsUsed returns the number of columns allocated this iteration.
func (b *Buffer) ColumnsUsed() int64 {
	var used int64
	for gi := range b.groups {
		gr := &b.groups[gi]
		limit := int(atomic.LoadInt32(&gr.colOffset))
		if limit > len(gr.fill) {
			limit = len(gr.fill)
		}
		for c := 0; c < limit; c++ {
			if atomic.LoadInt32(&gr.fill[c]) > 0 {
				used++
			}
		}
	}
	return used
}

// Messages returns the number of messages inserted this iteration.
func (b *Buffer) Messages() int64 {
	var total int64
	for gi := range b.groups {
		gr := &b.groups[gi]
		for c := range gr.fill {
			total += int64(atomic.LoadInt32(&gr.fill[c]))
		}
	}
	return total
}
