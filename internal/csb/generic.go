package csb

import (
	"sync"

	"hetgraph/internal/graph"
)

// GenericBuffer is the message buffer for applications whose messages are
// not basic SSE-supported types — Semi-Clustering sends cluster lists — and
// which therefore cannot use the SIMD-reducible Condensed Static Buffer
// (§III: "SIMD processing of messages only applies to messages with basic
// data types"). It stores per-vertex message lists under sharded locks.
type GenericBuffer[T any] struct {
	shards int
	mu     []sync.Mutex
	lists  [][]T
}

// NewGenericBuffer creates a buffer for n destination vertices with the
// given number of lock shards (vertex v is guarded by shard v%shards).
func NewGenericBuffer[T any](n, shards int) *GenericBuffer[T] {
	if shards < 1 {
		shards = 1
	}
	return &GenericBuffer[T]{
		shards: shards,
		mu:     make([]sync.Mutex, shards),
		lists:  make([][]T, n),
	}
}

// Insert appends one message for dst. Safe for concurrent use.
func (b *GenericBuffer[T]) Insert(dst graph.VertexID, msg T) {
	s := int(dst) % b.shards
	b.mu[s].Lock()
	b.lists[dst] = append(b.lists[dst], msg)
	b.mu[s].Unlock()
}

// InsertOwned appends without locking; the pipelined scheme's movers own
// disjoint destination classes (dst mod movers), making this race-free.
func (b *GenericBuffer[T]) InsertOwned(dst graph.VertexID, msg T) {
	b.lists[dst] = append(b.lists[dst], msg)
}

// InsertOwnedBatch appends one message per (dsts[i], msgs[i]) pair under the
// InsertOwned ownership contract — the batch-insert path for movers draining
// whole SPSC batches.
func (b *GenericBuffer[T]) InsertOwnedBatch(dsts []graph.VertexID, msgs []T) {
	for i, dst := range dsts {
		b.lists[dst] = append(b.lists[dst], msgs[i])
	}
}

// Drain returns the messages of v (nil if none). The returned slice is
// owned by the caller until the next Reset.
func (b *GenericBuffer[T]) Drain(v graph.VertexID) []T { return b.lists[v] }

// Has reports whether v received any message.
func (b *GenericBuffer[T]) Has(v graph.VertexID) bool { return len(b.lists[v]) > 0 }

// Messages returns the total message count of this iteration.
func (b *GenericBuffer[T]) Messages() int64 {
	var total int64
	for _, l := range b.lists {
		total += int64(len(l))
	}
	return total
}

// ColumnFills appends per-vertex message counts (for the contention
// estimator), mirroring Buffer.ColumnFills.
func (b *GenericBuffer[T]) ColumnFills(dst []int32) []int32 {
	for _, l := range b.lists {
		if len(l) > 0 {
			dst = append(dst, int32(len(l)))
		}
	}
	return dst
}

// NumVertices returns the destination count.
func (b *GenericBuffer[T]) NumVertices() int { return len(b.lists) }

// Reset clears all lists, retaining their capacity for the next iteration.
func (b *GenericBuffer[T]) Reset() {
	for i := range b.lists {
		b.lists[i] = b.lists[i][:0]
	}
}
