package csb

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"hetgraph/internal/graph"
	"hetgraph/internal/vec"
)

var inf = float32(math.Inf(1))

// paperBuffer builds the CSB of the paper's running example: Figure 1's
// graph, lane width 4 (w/msg_size = 4) and k = 2, as in Figure 3.
func paperBuffer(t *testing.T, mode InsertMode) *Buffer {
	t.Helper()
	b, err := Build(graph.PaperExample(), Config{Width: 4, K: 2, Identity: inf, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPaperExampleConstruction(t *testing.T) {
	b := paperBuffer(t, Dynamic)
	// "resulting in two vertex groups in total"
	if b.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", b.NumGroups())
	}
	if b.GroupWidth() != 8 {
		t.Fatalf("GroupWidth = %d, want 8", b.GroupWidth())
	}
	// "for the first vertex group ... 2 arrays ... length of each being 5.
	//  Similarly, for the second vertex group ... length being 1."
	if b.GroupMaxDegree(0) != 5 {
		t.Errorf("group 0 max degree = %d, want 5", b.GroupMaxDegree(0))
	}
	if b.GroupMaxDegree(1) != 1 {
		t.Errorf("group 1 max degree = %d, want 1", b.GroupMaxDegree(1))
	}
	// Sorted order must match Figure 3's table.
	for pos, want := range graph.PaperExampleSortedByInDegree {
		if got := b.SortedVertex(pos); got != want {
			t.Errorf("sorted[%d] = %d, want %d", pos, got, want)
		}
		if b.Redirect(want) != int32(pos) {
			t.Errorf("redirect[%d] = %d, want %d", want, b.Redirect(want), pos)
		}
	}
	if b.NumTasks() != 4 {
		t.Errorf("NumTasks = %d, want 4 (2 groups x k=2)", b.NumTasks())
	}
	if b.NumVertices() != 16 {
		t.Errorf("NumVertices = %d", b.NumVertices())
	}
}

// paperMessages is Table I: the messages sent by the active vertices
// {6,7,11,13,14,15} of the running SSSP iteration.
func paperMessages() []struct {
	dst graph.VertexID
	val float32
} {
	return []struct {
		dst graph.VertexID
		val float32
	}{
		{2, 6.5}, {2, 7.5}, // from 6 and 7
		{6, 11.0}, {9, 11.5}, // from 11
		{9, 13.0}, {12, 13.5}, // from 13
		{10, 14.0}, // from 14
		{7, 15.0},  // from 15
	}
}

func TestPaperTableIInsertionDynamic(t *testing.T) {
	b := paperBuffer(t, Dynamic)
	for _, m := range paperMessages() {
		b.Insert(m.dst, m.val)
	}
	if got := b.Messages(); got != 8 {
		t.Fatalf("Messages = %d, want 8", got)
	}
	// Table I touches 6 distinct destinations: 2,6,7,9,10,12.
	if got := b.ColumnsUsed(); got != 6 {
		t.Fatalf("ColumnsUsed = %d, want 6", got)
	}
	// Dynamic allocation condenses columns to the front: group 0 holds
	// destinations {2,9,6,7} (4 columns -> first array only), so its second
	// array (task 1) must be empty.
	if _, rows := b.Task(1); rows != 0 {
		t.Errorf("group 0 array 1 rows = %d, want 0 (condensed)", rows)
	}
	_, rows0 := b.Task(0)
	if rows0 != 2 {
		// Vertex 2 and vertex 9 each receive 2 messages.
		t.Errorf("group 0 array 0 rows = %d, want 2", rows0)
	}
	// Per-destination reduced minimum must match a scalar oracle.
	want := map[graph.VertexID]float32{2: 6.5, 6: 11, 7: 15, 9: 11.5, 10: 14, 12: 13.5}
	got := reduceAll(b)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reduced = %v, want %v", got, want)
	}
}

func TestPaperTableIOneToOne(t *testing.T) {
	b := paperBuffer(t, OneToOne)
	for _, m := range paperMessages() {
		b.Insert(m.dst, m.val)
	}
	// Same reduction result regardless of mapping policy.
	want := map[graph.VertexID]float32{2: 6.5, 6: 11, 7: 15, 9: 11.5, 10: 14, 12: 13.5}
	if got := reduceAll(b); !reflect.DeepEqual(got, want) {
		t.Errorf("reduced = %v, want %v", got, want)
	}
	// One-to-one wastes lanes: vertex 2 is at sorted position 1 and vertex
	// 9 at position 3, both in array 0 of group 0; vertices 6,7 at
	// positions 6,7 land in array 1. Both arrays of group 0 are occupied,
	// where dynamic mode needed one.
	if _, rows := b.Task(1); rows == 0 {
		t.Errorf("one-to-one: group 0 array 1 unexpectedly empty")
	}
}

// reduceAll performs a full vectorized min-reduction over the buffer and
// returns the per-vertex results.
func reduceAll(b *Buffer) map[graph.VertexID]float32 {
	out := map[graph.VertexID]float32{}
	var lanes []Lane
	for t := 0; t < b.NumTasks(); t++ {
		arr, rows := b.Task(t)
		if rows == 0 {
			continue
		}
		arr.ReduceMin(rows)
		lanes = b.Lanes(t, lanes[:0])
		for _, l := range lanes {
			out[l.Vertex] = arr.At(0, l.Lane)
		}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	g := graph.PaperExample()
	if _, err := Build(g, Config{Width: 3, K: 2}); err == nil {
		t.Error("accepted invalid width")
	}
	if _, err := Build(g, Config{Width: 4, K: 0}); err == nil {
		t.Error("accepted K=0")
	}
	if _, err := Build(g, Config{Width: 4, K: 65}); err == nil {
		t.Error("accepted K=65")
	}
	if _, err := Build(g, Config{Width: 4, K: 1, Mode: InsertMode(9)}); err == nil {
		t.Error("accepted unknown mode")
	}
	if Dynamic.String() != "dynamic" || OneToOne.String() != "one-to-one" {
		t.Error("mode names wrong")
	}
	if InsertMode(9).String() == "" {
		t.Error("unknown mode String empty")
	}
}

func TestResetClearsState(t *testing.T) {
	b := paperBuffer(t, Dynamic)
	for _, m := range paperMessages() {
		b.Insert(m.dst, m.val)
	}
	b.Reset()
	if b.Messages() != 0 || b.ColumnsUsed() != 0 {
		t.Fatal("Reset left messages behind")
	}
	for tk := 0; tk < b.NumTasks(); tk++ {
		if _, rows := b.Task(tk); rows != 0 {
			t.Fatalf("task %d has %d rows after Reset", tk, rows)
		}
	}
	// Cells must be identity again.
	arr, _ := b.Task(0)
	if arr.At(0, 0) != inf {
		t.Fatal("cells not reset to identity")
	}
	// Buffer must be reusable.
	b.Insert(2, 1.5)
	if got := reduceAll(b)[2]; got != 1.5 {
		t.Fatalf("post-reset insert reduced to %v", got)
	}
}

func TestInsertOverflowPanics(t *testing.T) {
	b := paperBuffer(t, Dynamic)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on exceeding group max in-degree")
		}
	}()
	// Vertex 10 has in-degree 1, group 1 max degree 1: second message to
	// any group-1 vertex overflows.
	b.Insert(10, 1)
	b.Insert(10, 2)
}

func TestFootprintCondensed(t *testing.T) {
	b := paperBuffer(t, Dynamic)
	// Group 0: 5 rows x 8 lanes, group 1: 1 x 8 -> 48 cells x 4 bytes.
	if got := b.FootprintBytes(); got != 48*4 {
		t.Errorf("FootprintBytes = %d, want %d", got, 48*4)
	}
	// Naive rectangular buffer: 16 vertices x max degree 5.
	if got := b.NaiveFootprintBytes(); got != 16*5*4 {
		t.Errorf("NaiveFootprintBytes = %d, want %d", got, 16*5*4)
	}
	if b.FootprintBytes() >= b.NaiveFootprintBytes() {
		t.Error("condensed buffer not smaller than naive")
	}
}

func TestSkewedGraphFootprintSavings(t *testing.T) {
	// A star graph: one hub with huge in-degree, everyone else tiny. The
	// condensed buffer's savings are dramatic here.
	n := 1 << 12
	bld := graph.NewBuilder(n, false)
	for v := 1; v < n; v++ {
		bld.AddEdge(graph.VertexID(v), 0, 0)
	}
	g, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, Config{Width: 16, K: 2, Identity: 0, Mode: Dynamic})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(b.NaiveFootprintBytes()) / float64(b.FootprintBytes()); ratio < 50 {
		t.Errorf("footprint saving ratio = %.1f, want >= 50 on a star graph", ratio)
	}
}

func TestConcurrentInsertMatchesOracle(t *testing.T) {
	// Hammer the buffer from many goroutines; the reduced minimum per
	// destination must equal a sequential oracle. This validates the
	// CAS-based column allocation and atomic row claims under real
	// parallelism (run with -race in CI).
	g := graph.PaperExample()
	tr := g.Transpose() // in-edges: source lists per destination
	b, err := Build(g, Config{Width: 4, K: 2, Identity: inf, Mode: Dynamic})
	if err != nil {
		t.Fatal(err)
	}
	type msg struct {
		dst graph.VertexID
		val float32
	}
	var all []msg
	rng := rand.New(rand.NewSource(8))
	// Every vertex sends along every out-edge: the maximal message load.
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			all = append(all, msg{d, rng.Float32()})
		}
	}
	_ = tr
	oracle := map[graph.VertexID]float32{}
	for _, m := range all {
		if cur, ok := oracle[m.dst]; !ok || m.val < cur {
			oracle[m.dst] = m.val
		}
	}
	for trial := 0; trial < 20; trial++ {
		b.Reset()
		var wg sync.WaitGroup
		const workers = 8
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(all); i += workers {
					b.Insert(all[i].dst, all[i].val)
				}
			}(w)
		}
		wg.Wait()
		if got := b.Messages(); got != int64(len(all)) {
			t.Fatalf("trial %d: Messages = %d, want %d", trial, got, len(all))
		}
		got := reduceAll(b)
		for v, want := range oracle {
			if got[v] != want {
				t.Fatalf("trial %d: vertex %d reduced to %v, want %v", trial, v, got[v], want)
			}
		}
	}
}

func TestColumnFillsAndOccupancy(t *testing.T) {
	b := paperBuffer(t, Dynamic)
	for _, m := range paperMessages() {
		b.Insert(m.dst, m.val)
	}
	fills := b.ColumnFills(nil)
	if len(fills) != 6 {
		t.Fatalf("ColumnFills returned %d entries, want 6", len(fills))
	}
	var total int32
	for _, f := range fills {
		total += f
	}
	if total != 8 {
		t.Fatalf("fills sum to %d, want 8", total)
	}
	rows, cells := b.OccupancyStats()
	if cells != 8 {
		t.Errorf("occupied cells = %d, want 8", cells)
	}
	// Group 0 array 0: fills {2,2,1,1} -> 2 rows; group 1 array 0:
	// fills {1,1} -> 1 row.
	if rows != 3 {
		t.Errorf("rows = %d, want 3", rows)
	}
}

func TestBuildFromDegrees(t *testing.T) {
	in := []int32{0, 3, 1, 7, 0, 2}
	b, err := BuildFromDegrees(in, Config{Width: 2, K: 1, Identity: 0, Mode: Dynamic})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", b.NumGroups())
	}
	// Sorted: 3(7), 1(3), 5(2), 2(1), 0(0), 4(0).
	if b.SortedVertex(0) != 3 || b.SortedVertex(1) != 1 {
		t.Errorf("degree sort wrong: %d %d", b.SortedVertex(0), b.SortedVertex(1))
	}
	if b.GroupMaxDegree(0) != 7 || b.GroupMaxDegree(1) != 2 || b.GroupMaxDegree(2) != 0 {
		t.Errorf("group degrees: %d %d %d", b.GroupMaxDegree(0), b.GroupMaxDegree(1), b.GroupMaxDegree(2))
	}
	if _, err := BuildFromDegrees(in, Config{Width: 5, K: 1}); err == nil {
		t.Error("accepted bad width")
	}
}

func TestAccessors(t *testing.T) {
	b := paperBuffer(t, Dynamic)
	if b.Width() != 4 || b.K() != 2 || b.Mode() != Dynamic {
		t.Error("accessors disagree with config")
	}
}

// property: for random degree distributions and random messages bounded by
// in-degree, the vector reduction matches a scalar oracle, in both modes.
func TestQuickReductionMatchesOracle(t *testing.T) {
	f := func(seed int64, modeRaw bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		mode := Dynamic
		if modeRaw {
			mode = OneToOne
		}
		in := make([]int32, n)
		for i := range in {
			in[i] = int32(rng.Intn(6))
		}
		b, err := BuildFromDegrees(in, Config{Width: 4, K: 2, Identity: inf, Mode: mode})
		if err != nil {
			return false
		}
		oracle := map[graph.VertexID]float32{}
		for v := 0; v < n; v++ {
			k := rng.Intn(int(in[v]) + 1)
			for j := 0; j < k; j++ {
				val := rng.Float32() * 100
				b.Insert(graph.VertexID(v), val)
				if cur, ok := oracle[graph.VertexID(v)]; !ok || val < cur {
					oracle[graph.VertexID(v)] = val
				}
			}
		}
		got := reduceAll(b)
		if len(got) != len(oracle) {
			return false
		}
		for v, want := range oracle {
			if got[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// property: dynamic mode never needs more reduction rows than one-to-one.
func TestQuickDynamicCondensesRows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(100)
		in := make([]int32, n)
		for i := range in {
			in[i] = int32(rng.Intn(5))
		}
		mk := func(mode InsertMode) *Buffer {
			b, err := BuildFromDegrees(in, Config{Width: 8, K: 2, Identity: 0, Mode: mode})
			if err != nil {
				panic(err)
			}
			return b
		}
		dyn, oto := mk(Dynamic), mk(OneToOne)
		for v := 0; v < n; v++ {
			if in[v] > 0 && rng.Intn(3) == 0 {
				dyn.Insert(graph.VertexID(v), 1)
				oto.Insert(graph.VertexID(v), 1)
			}
		}
		dr, _ := dyn.OccupancyStats()
		or, _ := oto.OccupancyStats()
		return dr <= or
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGenericBuffer(t *testing.T) {
	b := NewGenericBuffer[string](4, 2)
	if b.NumVertices() != 4 {
		t.Fatal("NumVertices wrong")
	}
	b.Insert(1, "a")
	b.Insert(1, "b")
	b.InsertOwned(3, "c")
	if b.Messages() != 3 {
		t.Fatalf("Messages = %d", b.Messages())
	}
	if !b.Has(1) || b.Has(0) {
		t.Error("Has wrong")
	}
	if got := b.Drain(1); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Drain = %v", got)
	}
	fills := b.ColumnFills(nil)
	if len(fills) != 2 {
		t.Errorf("ColumnFills = %v", fills)
	}
	b.Reset()
	if b.Messages() != 0 || b.Has(1) {
		t.Error("Reset incomplete")
	}
	// Shard clamp.
	b2 := NewGenericBuffer[int](2, 0)
	b2.Insert(0, 5)
	if b2.Messages() != 1 {
		t.Error("shard clamp broken")
	}
}

func TestGenericBufferConcurrent(t *testing.T) {
	b := NewGenericBuffer[int](64, 8)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Insert(graph.VertexID((w*per+i)%64), i)
			}
		}(w)
	}
	wg.Wait()
	if got := b.Messages(); got != workers*per {
		t.Fatalf("Messages = %d, want %d", got, workers*per)
	}
}

func TestLanesReportCounts(t *testing.T) {
	b := paperBuffer(t, Dynamic)
	for _, m := range paperMessages() {
		b.Insert(m.dst, m.val)
	}
	var lanes []Lane
	counts := map[graph.VertexID]int32{}
	for tk := 0; tk < b.NumTasks(); tk++ {
		lanes = b.Lanes(tk, lanes[:0])
		for _, l := range lanes {
			counts[l.Vertex] = l.Count
		}
	}
	want := map[graph.VertexID]int32{2: 2, 9: 2, 6: 1, 7: 1, 10: 1, 12: 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("lane counts = %v, want %v", counts, want)
	}
}

func TestWidthMICBuffer(t *testing.T) {
	// Full-width MIC config on the paper graph still reduces correctly.
	b, err := Build(graph.PaperExample(), Config{Width: vec.WidthMIC, K: 2, Identity: inf, Mode: Dynamic})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumGroups() != 1 {
		t.Fatalf("NumGroups = %d, want 1 (16 vertices in one 32-wide group)", b.NumGroups())
	}
	for _, m := range paperMessages() {
		b.Insert(m.dst, m.val)
	}
	want := map[graph.VertexID]float32{2: 6.5, 6: 11, 7: 15, 9: 11.5, 10: 14, 12: 13.5}
	if got := reduceAll(b); !reflect.DeepEqual(got, want) {
		t.Errorf("reduced = %v, want %v", got, want)
	}
}

// property: the buffer survives arbitrary insert/reduce/reset cycles — the
// partial reset must leave no stale cell behind.
func TestQuickResetCycles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		in := make([]int32, n)
		for i := range in {
			in[i] = int32(rng.Intn(5))
		}
		b, err := BuildFromDegrees(in, Config{Width: 4, K: 2, Identity: inf, Mode: Dynamic})
		if err != nil {
			return false
		}
		for round := 0; round < 5; round++ {
			oracle := map[graph.VertexID]float32{}
			for v := 0; v < n; v++ {
				k := rng.Intn(int(in[v]) + 1)
				for j := 0; j < k; j++ {
					val := rng.Float32() * 50
					b.Insert(graph.VertexID(v), val)
					if cur, ok := oracle[graph.VertexID(v)]; !ok || val < cur {
						oracle[graph.VertexID(v)] = val
					}
				}
			}
			got := reduceAll(b)
			if len(got) != len(oracle) {
				return false
			}
			for v, want := range oracle {
				if got[v] != want {
					return false
				}
			}
			b.Reset()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestResetReturnsBytes(t *testing.T) {
	b := paperBuffer(t, Dynamic)
	if got := b.Reset(); got != 0 {
		t.Fatalf("empty reset rewrote %d bytes", got)
	}
	for _, m := range paperMessages() {
		b.Insert(m.dst, m.val)
	}
	if got := b.Reset(); got != 8*4 {
		t.Fatalf("reset rewrote %d bytes, want 32 (8 messages x 4B)", got)
	}
}
