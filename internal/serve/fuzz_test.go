package serve_test

import (
	"errors"
	"strings"
	"testing"

	"hetgraph/internal/serve"
)

// FuzzParseJobSpec hammers the daemon's untrusted-input boundary: whatever
// bytes arrive on POST /jobs, ParseJobSpec must never panic, and every
// rejection must be the typed *SpecError the HTTP layer maps to 400.
func FuzzParseJobSpec(f *testing.F) {
	f.Add([]byte(`{"algorithm":"pagerank","iterations":10}`))
	f.Add([]byte(`{"algorithm":"bfs","source":3,"tenant":"team-a"}`))
	f.Add([]byte(`{"algorithm":"quantum-annealing"}`))
	f.Add([]byte(`{"algorithm":"sssp","source":-9223372036854775808}`))
	f.Add([]byte(`{"algorithm":"cc","tenant":"` + strings.Repeat("x", 200) + `"}`))
	f.Add([]byte(`{"algorithm":"cc","iterations":99999999999}`))
	f.Add([]byte(`{"algorithm":"bfs","timeout_ms":-1}`))
	f.Add([]byte(`{"algorithm":"bfs"}{"algorithm":"cc"}`))
	f.Add([]byte(`{"algorithm":"bfs","rogue_field":true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\xff\xfe{"))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := serve.ParseJobSpec(data)
		if err != nil {
			var se *serve.SpecError
			if !errors.As(err, &se) {
				t.Fatalf("ParseJobSpec(%q) returned untyped error %T: %v", data, err, err)
			}
			return
		}
		// An accepted spec must be self-consistently valid: re-validation
		// passes and the tenant default was applied.
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("accepted spec %+v fails its own Validate: %v", spec, verr)
		}
		if spec.Tenant == "" {
			t.Fatalf("accepted spec %+v has no tenant", spec)
		}
		if spec.WorkloadFingerprint("sig") == "" {
			t.Fatal("accepted spec produced an empty fingerprint")
		}
	})
}
