package serve_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hetgraph/internal/checkpoint"
	"hetgraph/internal/comm"
	"hetgraph/internal/fault"
	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
	"hetgraph/internal/metrics"
	"hetgraph/internal/serve"
)

// serveGraph is a small weighted power-law graph shared by the daemon tests.
func serveGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 400, MeanDeg: 6, Alpha: 2.2, FrontBias: 0.7, Locality: 0.6, LocalWindow: 0.05, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	wg, err := gen.WithWeights(g, 0, 10, 32)
	if err != nil {
		t.Fatal(err)
	}
	return wg
}

// recoveryGraph is a larger weighted power-law graph for the crash/drain
// recovery tests: SSSP on it runs ~20 fsync-checkpointed supersteps, wide
// enough to interrupt a job mid-flight reliably. Every served algorithm is
// fingerprint-stable across runs — the min-combining ones are
// order-insensitive, and PageRank's float32 sums go through the engine's
// canonical-order (sorted) reductions.
func recoveryGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 8000, MeanDeg: 6, Alpha: 2.2, FrontBias: 0.7, Locality: 0.6, LocalWindow: 0.05, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	wg, err := gen.WithWeights(g, 0, 10, 34)
	if err != nil {
		t.Fatal(err)
	}
	return wg
}

// fastConfig returns a serving config tuned for tests: tiny backoffs, one
// state dir per test.
func fastConfig(t testing.TB, g *graph.CSR) serve.Config {
	t.Helper()
	return serve.Config{
		Graph:     g,
		GraphPath: "test.adj",
		StateDir:  t.TempDir(),
		RetryBase: time.Millisecond,
		RetryCap:  5 * time.Millisecond,
	}
}

// waitDone blocks until the job terminates, with a deadline guard.
func waitDone(t testing.TB, job *serve.Job) {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not terminate within the deadline guard", job.ID())
	}
}

func TestServeSubmitRunsToCompletion(t *testing.T) {
	srv, err := serve.New(fastConfig(t, serveGraph(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	job, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	st := srv.Status(job)
	if st.State != serve.StateCompleted {
		t.Fatalf("job state %q (error %q), want completed", st.State, st.Error)
	}
	if st.Result == nil || st.Result.ResultFingerprint == "" {
		t.Fatal("completed job has no result fingerprint")
	}
	if st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", st.Attempts)
	}
	if st.Checkpoints == 0 {
		t.Fatal("served job committed no durable checkpoints")
	}
	if st.Result.Iterations != 5 {
		t.Fatalf("iterations = %d, want the requested 5", st.Result.Iterations)
	}
}

func TestServeAllAlgorithms(t *testing.T) {
	srv, err := serve.New(fastConfig(t, serveGraph(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, spec := range []serve.JobSpec{
		{Algorithm: serve.AlgoPageRank, Iterations: 3},
		{Algorithm: serve.AlgoBFS, Source: 1},
		{Algorithm: serve.AlgoSSSP, Source: 1},
		{Algorithm: serve.AlgoCC},
	} {
		job, err := srv.Submit(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Algorithm, err)
		}
		waitDone(t, job)
		if st := srv.Status(job); st.State != serve.StateCompleted {
			t.Fatalf("%s: state %q (error %q)", spec.Algorithm, st.State, st.Error)
		}
	}
}

func TestServeResultCacheHit(t *testing.T) {
	srv, err := serve.New(fastConfig(t, serveGraph(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	spec := serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 4}
	first, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)
	fp := srv.Status(first).Result.ResultFingerprint

	second, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, second) // already closed: a cache hit is terminal at submit
	st := srv.Status(second)
	if !st.Cached || st.State != serve.StateCompleted {
		t.Fatalf("repeat submission cached=%v state=%q, want a completed cache hit", st.Cached, st.State)
	}
	if st.Result.ResultFingerprint != fp {
		t.Fatalf("cached fingerprint %s != computed %s", st.Result.ResultFingerprint, fp)
	}
	if st.Attempts != 0 {
		t.Fatalf("cache hit ran the engine (%d attempts)", st.Attempts)
	}
}

func TestServeCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	faults := fault.NewDaemonFaults()
	faults.Set(fault.PointJobStart, func() error {
		<-release
		return nil
	})
	cfg := fastConfig(t, serveGraph(t))
	cfg.Workers = 1
	cfg.Faults = faults
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(release); srv.Close() }()

	blocker, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoBFS, Source: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, queued)
	if st := srv.Status(queued); st.State != serve.StateCanceled {
		t.Fatalf("canceled queued job state %q", st.State)
	}
	_ = blocker
	if err := srv.Cancel("j99999999"); err == nil {
		t.Fatal("canceling an unknown job succeeded")
	} else if nf := new(serve.JobNotFoundError); !errors.As(err, &nf) {
		t.Fatalf("unknown-job cancel error %T, want *JobNotFoundError", err)
	}
}

func TestServeRetryOnDeviceFailure(t *testing.T) {
	faults := fault.NewDaemonFaults()
	failures := 1
	faults.Set(fault.PointJobStart, func() error {
		if failures > 0 {
			failures--
			return &comm.DeviceFailedError{Rank: 1, Superstep: 2, Reason: "injected test failure"}
		}
		return nil
	})
	cfg := fastConfig(t, serveGraph(t))
	cfg.Faults = faults
	cfg.MaxRetries = 2
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	job, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	st := srv.Status(job)
	if st.State != serve.StateCompleted {
		t.Fatalf("retried job state %q (error %q), want completed", st.State, st.Error)
	}
	if st.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one failure, one retry)", st.Attempts)
	}
}

func TestServeRetryBudgetExhaustedFailsTyped(t *testing.T) {
	faults := fault.NewDaemonFaults()
	faults.Set(fault.PointJobStart, func() error {
		return &comm.DeviceFailedError{Rank: 1, Superstep: 1, Reason: "always down"}
	})
	cfg := fastConfig(t, serveGraph(t))
	cfg.Faults = faults
	cfg.MaxRetries = 1
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	job, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	st := srv.Status(job)
	if st.State != serve.StateFailed {
		t.Fatalf("state %q, want failed after the retry budget", st.State)
	}
	if st.Attempts != 2 {
		t.Fatalf("attempts = %d, want MaxRetries+1 = 2", st.Attempts)
	}
	if !strings.Contains(st.Error, "always down") {
		t.Fatalf("terminal error %q does not carry the device failure", st.Error)
	}
}

func TestServePermanentErrorFailsFast(t *testing.T) {
	faults := fault.NewDaemonFaults()
	calls := 0
	faults.Set(fault.PointJobStart, func() error {
		calls++
		return errors.New("permanent misconfiguration")
	})
	cfg := fastConfig(t, serveGraph(t))
	cfg.Faults = faults
	cfg.MaxRetries = 3
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	job, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if st := srv.Status(job); st.State != serve.StateFailed {
		t.Fatalf("state %q, want fail-fast failed", st.State)
	}
	if calls != 1 {
		t.Fatalf("untyped error was retried %d times; must fail fast", calls)
	}
}

func TestServeDeadlineFailsJob(t *testing.T) {
	srv, err := serve.New(fastConfig(t, serveGraph(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// 500 checkpointed supersteps cannot finish inside 1ms; the deadline
	// aborts the run at a superstep boundary.
	job, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 500, TimeoutMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	st := srv.Status(job)
	if st.State != serve.StateFailed {
		t.Fatalf("deadline job state %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadline job error %q does not name the deadline", st.Error)
	}
}

func TestServeJournalFailureRejectsSubmit(t *testing.T) {
	faults := fault.NewDaemonFaults()
	cfg := fastConfig(t, serveGraph(t))
	cfg.Faults = faults
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	faults.Set(fault.PointJournalAppend, func() error { return errors.New("disk full") })
	_, err = srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 2})
	var serr *checkpoint.StoreError
	if !errors.As(err, &serr) {
		t.Fatalf("submit with failing journal: %v, want *StoreError (admission must be durable-first)", err)
	}
	faults.Clear(fault.PointJournalAppend)
	job, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 2})
	if err != nil {
		t.Fatalf("submit after journal recovered: %v", err)
	}
	waitDone(t, job)
	if st := srv.Status(job); st.State != serve.StateCompleted {
		t.Fatalf("job after journal hiccup: state %q", st.State)
	}
}

func TestServeBadSpecsRejectedTyped(t *testing.T) {
	srv, err := serve.New(fastConfig(t, serveGraph(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, spec := range []serve.JobSpec{
		{Algorithm: "pagerankz"},
		{Algorithm: serve.AlgoBFS, Source: -1},
		{Algorithm: serve.AlgoBFS, Source: 1 << 40}, // outside the graph
		{Algorithm: serve.AlgoPageRank, Iterations: -3},
		{Algorithm: serve.AlgoPageRank, Tenant: strings.Repeat("x", 100)},
	} {
		_, err := srv.Submit(spec)
		var se *serve.SpecError
		if !errors.As(err, &se) {
			t.Fatalf("spec %+v: error %v, want *SpecError", spec, err)
		}
	}
}

func TestServeJobEventsRecorded(t *testing.T) {
	col := metrics.NewCollector()
	cfg := fastConfig(t, serveGraph(t))
	cfg.Metrics = col
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	srv.Close()
	kinds := map[string]bool{}
	for _, e := range col.Report().Events {
		kinds[e.Kind] = true
	}
	for _, want := range []string{metrics.EventJobAdmitted, metrics.EventJobStarted, metrics.EventJobCompleted, metrics.EventDrain} {
		if !kinds[want] {
			t.Fatalf("metrics missing %q event; got %v", want, kinds)
		}
	}
	if g := col.Gauges(); g["jobs_queued"] != 0 || g["jobs_running"] != 0 {
		t.Fatalf("gauges not drained to zero: %v", g)
	}
}
