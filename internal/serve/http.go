package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs          submit a JobSpec  → 202 {"id": ...} (429 on shed)
//	GET    /jobs          list job statuses
//	GET    /jobs/{id}     one job's status (state, attempts, result, ...)
//	POST   /jobs/{id}/cancel  cancel a queued or running job
//	GET    /healthz       liveness: "ok" (200) while the process serves at all
//	GET    /readyz        readiness: "ok" (200) when a submission would be
//	                      admitted; "draining" or "saturated" (503) when it
//	                      would be shed
//
// Admission rejections surface as 429 with a Retry-After header; malformed
// specs as 400 with the offending field; unknown jobs as 404. Mount it on
// its own listener or as the debug mux's sibling.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxSpecBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	spec, err := ParseJobSpec(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		var adm *AdmissionRejectedError
		if errors.As(err, &adm) {
			w.Header().Set("Retry-After", strconv.Itoa(int((adm.RetryAfter.Seconds())+0.5)))
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: adm.Error(), Reason: adm.Reason})
			return
		}
		var serr *SpecError
		if errors.As(err, &serr) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: serr.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, s.Status(job))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: (&JobNotFoundError{ID: id}).Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.Status(job))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	job, _ := s.Get(id)
	writeJSON(w, http.StatusOK, s.Status(job))
}

// handleHealth is pure liveness: as long as the process answers, it is
// alive — a draining or saturated daemon must NOT be restarted by an
// orchestrator probing this endpoint. Routing decisions belong to /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReady is readiness: 503 whenever a submission arriving now would be
// shed — during a drain, and while the admission queue is saturated — so a
// load balancer stops routing new work here before it is rejected.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !s.Ready() {
		http.Error(w, "saturated", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
