package serve_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hetgraph/internal/core"
	"hetgraph/internal/serve"
)

// TestWorkloadFingerprintCanonicalization: specs that execute the same
// workload must share one fingerprint (one result-cache entry), however the
// client spelled the defaults or filled ignored fields.
func TestWorkloadFingerprintCanonicalization(t *testing.T) {
	const sig = "feedfacefeedface"
	same := []struct {
		name string
		a, b serve.JobSpec
	}{
		{"pagerank iteration default", serve.JobSpec{Algorithm: serve.AlgoPageRank}, serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: serve.DefaultPageRankIterations}},
		{"pagerank ignores source", serve.JobSpec{Algorithm: serve.AlgoPageRank, Source: 7}, serve.JobSpec{Algorithm: serve.AlgoPageRank}},
		{"cc ignores source", serve.JobSpec{Algorithm: serve.AlgoCC, Source: 3}, serve.JobSpec{Algorithm: serve.AlgoCC}},
		{"bfs iteration default", serve.JobSpec{Algorithm: serve.AlgoBFS, Source: 1}, serve.JobSpec{Algorithm: serve.AlgoBFS, Source: 1, Iterations: core.DefaultMaxIterations}},
		{"tenant and timeout excluded", serve.JobSpec{Algorithm: serve.AlgoSSSP, Tenant: "a", TimeoutMS: 99}, serve.JobSpec{Algorithm: serve.AlgoSSSP, Tenant: "b"}},
	}
	for _, tc := range same {
		if fa, fb := tc.a.WorkloadFingerprint(sig), tc.b.WorkloadFingerprint(sig); fa != fb {
			t.Errorf("%s: fingerprints fragment: %s != %s", tc.name, fa, fb)
		}
	}
	diff := []struct {
		name string
		a, b serve.JobSpec
	}{
		{"bfs source matters", serve.JobSpec{Algorithm: serve.AlgoBFS, Source: 1}, serve.JobSpec{Algorithm: serve.AlgoBFS, Source: 2}},
		{"pagerank iterations matter", serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 5}, serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 6}},
		{"algorithm matters", serve.JobSpec{Algorithm: serve.AlgoBFS}, serve.JobSpec{Algorithm: serve.AlgoSSSP}},
	}
	for _, tc := range diff {
		if fa, fb := tc.a.WorkloadFingerprint(sig), tc.b.WorkloadFingerprint(sig); fa == fb {
			t.Errorf("%s: distinct workloads collide on %s", tc.name, fa)
		}
	}
}

// TestSubmitRejectsOutOfRangeSource: a bfs/sssp source beyond the resident
// graph's vertex count is a typed *SpecError (HTTP 400) naming the valid
// range — not an index panic inside the worker. The check is scoped to the
// source-rooted algorithms; pagerank/cc ignore Source and stay admissible.
func TestSubmitRejectsOutOfRangeSource(t *testing.T) {
	g := serveGraph(t)
	srv, err := serve.New(fastConfig(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	n := int64(g.NumVertices())
	for _, algo := range []string{serve.AlgoBFS, serve.AlgoSSSP} {
		_, err := srv.Submit(serve.JobSpec{Algorithm: algo, Source: n})
		var se *serve.SpecError
		if !errors.As(err, &se) || se.Field != "source" {
			t.Fatalf("%s source=%d: got %v, want *SpecError on field source", algo, n, err)
		}
		if !strings.Contains(se.Reason, "[0,") {
			t.Errorf("%s: reason %q does not name the valid range", algo, se.Reason)
		}
	}
	// In-range boundary source is admissible.
	job, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoBFS, Source: n - 1})
	if err != nil {
		t.Fatalf("boundary source %d rejected: %v", n-1, err)
	}
	waitDone(t, job)
	// pagerank ignores Source, so an out-of-range value is inert.
	job, err = srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Source: n + 100, Iterations: 2})
	if err != nil {
		t.Fatalf("pagerank with inert out-of-range source rejected: %v", err)
	}
	waitDone(t, job)
	if st := srv.Status(job); st.State != serve.StateCompleted {
		t.Fatalf("pagerank job state %q (error %q)", st.State, st.Error)
	}
}

// TestReplayFailsOutOfRangeSource: a journaled in-flight job whose source
// does not exist in the graph the daemon restarted with must fail terminally
// at replay — never re-queue and panic in the worker.
func TestReplayFailsOutOfRangeSource(t *testing.T) {
	big := recoveryGraph(t) // 8000 vertices
	cfg := fastConfig(t, big)
	stateDir := cfg.StateDir
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoSSSP, Source: int64(big.NumVertices()) - 1})
	if err != nil {
		t.Fatal(err)
	}
	// Crash with the job journaled but not terminal.
	deadline := time.Now().Add(60 * time.Second)
	for srv.Status(job).Checkpoints < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never committed a checkpoint")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Crash()

	// Restart on the same state dir with a much smaller graph: the source is
	// now out of range.
	cfg2 := fastConfig(t, serveGraph(t)) // 400 vertices
	cfg2.StateDir = stateDir
	srv2, err := serve.New(cfg2)
	if err != nil {
		t.Fatalf("reopen with smaller graph: %v", err)
	}
	defer srv2.Close()
	revived, ok := srv2.Get(job.ID())
	if !ok {
		t.Fatalf("job %s lost across the restart", job.ID())
	}
	waitDone(t, revived)
	st := srv2.Status(revived)
	if st.State != serve.StateFailed {
		t.Fatalf("replayed out-of-range job state %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "source") {
		t.Errorf("failure %q does not name the source field", st.Error)
	}
	// The daemon itself stays healthy.
	ok2, err := srv2.Submit(serve.JobSpec{Algorithm: serve.AlgoBFS, Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ok2)
	if st := srv2.Status(ok2); st.State != serve.StateCompleted {
		t.Fatalf("post-replay job state %q (error %q)", st.State, st.Error)
	}
}
