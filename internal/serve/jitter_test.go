package serve

import (
	"testing"
	"time"
)

// TestJitteredBounds: the jitter spreads a duration uniformly over
// [0.8d, 1.2d] — never outside it — and passes zero through unchanged, so
// an unset hint stays unset.
func TestJitteredBounds(t *testing.T) {
	const d = time.Second
	lo, hi := 8*d/10, 12*d/10
	var sawLow, sawHigh bool
	for i := 0; i < 10_000; i++ {
		got := jittered(d)
		if got < lo || got > hi {
			t.Fatalf("jittered(%s) = %s, outside [%s, %s]", d, got, lo, hi)
		}
		if got < d {
			sawLow = true
		}
		if got > d {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Errorf("jitter never spread both ways (low=%v high=%v)", sawLow, sawHigh)
	}
	if got := jittered(0); got != 0 {
		t.Errorf("jittered(0) = %s, want 0", got)
	}
}
