package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"hetgraph/internal/apps"
	"hetgraph/internal/checkpoint"
	"hetgraph/internal/comm"
	"hetgraph/internal/core"
	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/metrics"
	"hetgraph/internal/partition"
)

// Config configures a Server. Graph and StateDir are required; everything
// else has a serving-safe default.
type Config struct {
	// Graph is the resident graph every job runs against.
	Graph *graph.CSR
	// GraphPath labels the graph in fingerprints and status output.
	GraphPath string
	// Assign maps each vertex to a rank (nil = continuous partition
	// weighted by each device's thread count).
	Assign []int32
	// Devices is the device group jobs execute on (nil = the classic
	// CPU+MIC pair).
	Devices []machine.DeviceSpec
	// StateDir holds the job journal and each job's durable checkpoint
	// store; a daemon restarted on the same StateDir resumes its jobs.
	StateDir string
	// CheckpointEvery is the superstep checkpoint cadence for served jobs
	// (0 = every superstep, the crash-recovery default).
	CheckpointEvery int
	// CheckpointRetain bounds each job's on-disk generations (0 = default).
	CheckpointRetain int
	// QueueDepth bounds the job queue; submissions past it are shed with a
	// typed AdmissionRejectedError (0 = 8). Admission never buffers beyond
	// this bound.
	QueueDepth int
	// Workers is the number of jobs executed concurrently (0 = 2).
	Workers int
	// TenantLimit bounds one tenant's queued+running jobs (0 = 4).
	TenantLimit int
	// DefaultTimeout is the wall deadline applied to jobs that specify no
	// timeout_ms (0 = unbounded).
	DefaultTimeout time.Duration
	// MaxRetries is how many times a job failing with a retryable typed
	// error (DeviceFailedError, StoreError) is re-attempted with capped
	// backoff before failing for good (0 = 2; -1 = never retry).
	MaxRetries int
	// RetryBase is the first retry's backoff, doubling per attempt up to
	// RetryCap (0 = 50ms).
	RetryBase time.Duration
	// RetryCap caps the backoff (0 = 2s).
	RetryCap time.Duration
	// RetryAfterHint is the Retry-After suggestion attached to admission
	// rejections (0 = 1s).
	RetryAfterHint time.Duration
	// Metrics, when non-nil, receives job-lifecycle events and engine phase
	// samples; a sink that also implements metrics.GaugeRecorder gets live
	// queue-depth/running/shed gauges.
	Metrics metrics.Sink
	// Faults, when non-nil, interposes daemon-level chaos hooks on the job
	// lifecycle (see fault.Point*).
	Faults *fault.DaemonFaults
}

func (c Config) withDefaults() Config {
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.TenantLimit == 0 {
		c.TenantLimit = 4
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase == 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap == 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.RetryAfterHint == 0 {
		c.RetryAfterHint = time.Second
	}
	if len(c.Devices) == 0 {
		c.Devices = []machine.DeviceSpec{machine.CPU(), machine.MIC()}
	}
	return c
}

// Job is one submitted computation tracked by the server.
type Job struct {
	id   string
	spec JobSpec
	fp   string // workload fingerprint (result-cache key)
	dir  string // durable checkpoint store for this job
	ctl  *core.AbortController
	done chan struct{} // closed at terminal state

	mu        sync.Mutex
	state     string
	attempts  int
	resumed   bool
	cached    bool
	abortWhy  string // "cancel" | "deadline" | "drain" | "crash"
	errText   string
	result    *JobResult
	submitted int64
	finished  int64
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// abortWith records why the job is being aborted (first reason wins) and
// closes its abort channel.
func (j *Job) abortWith(why string) {
	j.mu.Lock()
	if j.abortWhy == "" {
		j.abortWhy = why
	}
	j.mu.Unlock()
	j.ctl.Abort()
}

func (j *Job) abortReason() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.abortWhy
}

// journalRecord is one durable job-journal entry (JSON payload inside the
// CRC-framed journal). Spec rides on "queued" records; Result on
// "completed" ones, so a restarted daemon can serve finished jobs without
// recomputing.
type journalRecord struct {
	ID       string     `json:"id"`
	State    string     `json:"state"` // queued|running|interrupted|completed|failed|canceled
	Spec     *JobSpec   `json:"spec,omitempty"`
	Attempt  int        `json:"attempt,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
	UnixNano int64      `json:"unix_nano"`
}

// stateInterrupted is a journal-only state: the job was checkpointed and
// abandoned mid-run by a graceful drain (or an in-process crash); replay
// re-queues it like "running".
const stateInterrupted = "interrupted"

// Server is the resident-graph job daemon. Create with New, submit with
// Submit (or the HTTP handler from Handler), stop with Drain or Close.
type Server struct {
	cfg      Config
	graphSig string
	assign   []int32
	journal  *checkpoint.Journal

	queue    chan *Job
	stopPull chan struct{}
	wg       sync.WaitGroup
	pullOnce sync.Once

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   uint64
	queued   int
	running  int
	shed     int64
	resumedN int64
	tenants  map[string]int
	cache    map[string]*JobResult
	draining bool
	crashed  bool
}

// New builds a server: it partitions the graph if no assignment was given,
// opens (and replays) the job journal under StateDir, re-queues every job
// that was queued or in flight when the previous process died, and starts
// the worker pool. Completed jobs replay into the result cache so their
// status — including the result fingerprint — survives the restart.
func New(cfg Config) (*Server, error) {
	if cfg.Graph == nil {
		return nil, errors.New("serve: Config.Graph is required")
	}
	if cfg.StateDir == "" {
		return nil, errors.New("serve: Config.StateDir is required")
	}
	cfg = cfg.withDefaults()
	assign := cfg.Assign
	if assign == nil {
		weights := make([]int, len(cfg.Devices))
		for i, d := range cfg.Devices {
			weights[i] = d.Threads()
		}
		var err error
		assign, err = partition.MakeN(partition.MethodContinuous, cfg.Graph, weights)
		if err != nil {
			return nil, fmt.Errorf("serve: partitioning the resident graph: %w", err)
		}
	}
	s := &Server{
		cfg:      cfg,
		graphSig: graphSignature(cfg.GraphPath, cfg.Graph),
		assign:   assign,
		stopPull: make(chan struct{}),
		jobs:     map[string]*Job{},
		tenants:  map[string]int{},
		cache:    map[string]*JobResult{},
	}
	j, err := checkpoint.OpenJournal(cfg.StateDir, nil)
	if err != nil {
		return nil, err
	}
	s.journal = j
	pending, err := s.replay()
	if err != nil {
		j.Close()
		return nil, err
	}
	s.queue = make(chan *Job, cfg.QueueDepth+len(pending))
	for _, job := range pending {
		s.queue <- job
	}
	s.publishGauges()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// graphSignature fingerprints the resident graph for the workload cache key.
func graphSignature(path string, g *graph.CSR) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%v", path, g.NumVertices(), g.NumEdges(), g.Weighted())
	return fmt.Sprintf("%016x", h.Sum64())
}

// replay folds the journal into job objects: terminal jobs become
// status-servable history (completed ones feed the result cache), pending
// ones are re-queued for execution with Resumed set. It then compacts the
// journal to one queued record plus at most one terminal record per job.
func (s *Server) replay() ([]*Job, error) {
	type folded struct {
		spec     *JobSpec
		state    string
		result   *JobResult
		errText  string
		attempts int
		first    int64
		last     int64
	}
	byID := map[string]*folded{}
	var ids []string
	for _, raw := range s.journal.Records() {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.ID == "" {
			continue // skip undecodable records; the frame CRC already passed, so this is schema drift, not corruption
		}
		f := byID[rec.ID]
		if f == nil {
			f = &folded{first: rec.UnixNano}
			byID[rec.ID] = f
			ids = append(ids, rec.ID)
		}
		if rec.Spec != nil {
			f.spec = rec.Spec
		}
		if rec.State != "" {
			f.state = rec.State
		}
		if rec.Attempt > f.attempts {
			f.attempts = rec.Attempt
		}
		if rec.Result != nil {
			f.result = rec.Result
		}
		if rec.Error != "" {
			f.errText = rec.Error
		}
		f.last = rec.UnixNano
	}
	sort.Strings(ids)
	var pending []*Job
	var compacted [][]byte
	for _, id := range ids {
		f := byID[id]
		if f.spec == nil {
			continue // a job without its queued record is unrecoverable
		}
		if n := idNumber(id); n >= s.nextID {
			s.nextID = n + 1
		}
		job := &Job{
			id:        id,
			spec:      *f.spec,
			fp:        f.spec.WorkloadFingerprint(s.graphSig),
			dir:       s.jobDir(id),
			ctl:       core.NewAbortController(),
			done:      make(chan struct{}),
			attempts:  f.attempts,
			submitted: f.first,
		}
		queuedRec := journalRecord{ID: id, State: StateQueued, Spec: f.spec, UnixNano: f.first}
		qb, _ := json.Marshal(queuedRec)
		compacted = append(compacted, qb)
		switch f.state {
		case StateCompleted, StateFailed, StateCanceled:
			job.state = f.state
			job.result = f.result
			job.errText = f.errText
			job.finished = f.last
			close(job.done)
			if f.state == StateCompleted && f.result != nil {
				s.cache[job.fp] = f.result
			}
			term := journalRecord{ID: id, State: f.state, Attempt: f.attempts, Result: f.result, Error: f.errText, UnixNano: f.last}
			tb, _ := json.Marshal(term)
			compacted = append(compacted, tb)
		default: // queued, running, interrupted: resume
			// Re-validate source bounds against the graph the daemon restarted
			// with: a journaled job admitted against a larger graph would
			// otherwise re-queue and panic inside the worker's app
			// constructor. Such jobs fail terminally instead of resuming.
			if err := validateSourceBounds(job.spec, s.cfg.Graph.NumVertices()); err != nil {
				job.state = StateFailed
				job.errText = err.Error()
				job.finished = f.last
				close(job.done)
				term := journalRecord{ID: id, State: StateFailed, Attempt: f.attempts, Error: job.errText, UnixNano: f.last}
				tb, _ := json.Marshal(term)
				compacted = append(compacted, tb)
				s.event(metrics.EventJobFailed, id)
				break
			}
			job.state = StateQueued
			job.resumed = true
			s.queued++
			s.resumedN++
			s.tenants[job.spec.Tenant]++
			pending = append(pending, job)
			s.event(metrics.EventJobResumed, id)
		}
		s.jobs[id] = job
		s.order = append(s.order, id)
	}
	if err := s.journal.Compact(compacted); err != nil {
		return nil, err
	}
	return pending, nil
}

func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.StateDir, "jobs", id)
}

func idNumber(id string) uint64 {
	var n uint64
	fmt.Sscanf(id, "j%d", &n)
	return n
}

// Submit admits a job (or rejects it with a typed error): the spec is
// validated, the result cache is consulted, admission control checks the
// queue-depth and per-tenant bounds, the queued record is made durable, and
// only then is the job enqueued. The returned Job's Done channel closes at
// its terminal state.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if spec.Tenant == "" {
		spec.Tenant = DefaultTenant
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := validateSourceBounds(spec, s.cfg.Graph.NumVertices()); err != nil {
		return nil, err
	}
	fp := spec.WorkloadFingerprint(s.graphSig)
	now := time.Now().UnixNano()

	s.mu.Lock()
	if s.draining || s.crashed {
		s.shed++
		s.publishGaugesLocked()
		s.mu.Unlock()
		s.event(metrics.EventJobShed, spec.Tenant+"/draining")
		return nil, &AdmissionRejectedError{Reason: "draining", Tenant: spec.Tenant, RetryAfter: jittered(s.cfg.RetryAfterHint)}
	}
	if cached, ok := s.cache[fp]; ok {
		job := s.newJobLocked(spec, fp, now)
		job.state = StateCompleted
		job.cached = true
		job.result = cached
		job.finished = now
		rec := journalRecord{ID: job.id, State: StateQueued, Spec: &spec, UnixNano: now}
		term := journalRecord{ID: job.id, State: StateCompleted, Result: cached, UnixNano: now}
		if err := s.logLocked(rec); err == nil {
			s.logLocked(term) // best-effort: the cache hit is re-derivable
		}
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
		close(job.done)
		s.mu.Unlock()
		s.event(metrics.EventJobAdmitted, job.id)
		s.event(metrics.EventJobCompleted, job.id+" (cached)")
		return job, nil
	}
	if s.tenants[spec.Tenant] >= s.cfg.TenantLimit {
		s.shed++
		s.publishGaugesLocked()
		s.mu.Unlock()
		s.event(metrics.EventJobShed, spec.Tenant+"/tenant-limit")
		return nil, &AdmissionRejectedError{Reason: "tenant-limit", Tenant: spec.Tenant, RetryAfter: jittered(s.cfg.RetryAfterHint)}
	}
	if s.queued >= s.cfg.QueueDepth {
		s.shed++
		s.publishGaugesLocked()
		s.mu.Unlock()
		s.event(metrics.EventJobShed, spec.Tenant+"/queue-full")
		return nil, &AdmissionRejectedError{Reason: "queue-full", Tenant: spec.Tenant, RetryAfter: jittered(s.cfg.RetryAfterHint)}
	}
	job := s.newJobLocked(spec, fp, now)
	job.state = StateQueued
	rec := journalRecord{ID: job.id, State: StateQueued, Spec: &spec, UnixNano: now}
	if err := s.logLocked(rec); err != nil {
		s.nextID-- // the ID was never made durable; reuse it
		s.mu.Unlock()
		return nil, err
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.queued++
	s.tenants[spec.Tenant]++
	s.publishGaugesLocked()
	s.mu.Unlock()

	s.event(metrics.EventJobAdmitted, job.id)
	s.queue <- job // capacity ≥ QueueDepth ≥ queued: never blocks
	return job, nil
}

func (s *Server) newJobLocked(spec JobSpec, fp string, now int64) *Job {
	id := fmt.Sprintf("j%08d", s.nextID)
	s.nextID++
	return &Job{
		id:        id,
		spec:      spec,
		fp:        fp,
		dir:       s.jobDir(id),
		ctl:       core.NewAbortController(),
		done:      make(chan struct{}),
		submitted: now,
	}
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel aborts a job: a queued job is skipped when dequeued, a running one
// stops at its next superstep boundary (capturing a final checkpoint).
// Canceling a terminal job is a no-op.
func (s *Server) Cancel(id string) error {
	job, ok := s.Get(id)
	if !ok {
		return &JobNotFoundError{ID: id}
	}
	job.abortWith("cancel")
	// A queued job never enters runJob's abort handling, so finalize it
	// here if it is still waiting.
	job.mu.Lock()
	if job.state == StateQueued {
		job.mu.Unlock()
		s.finalize(job, StateCanceled, "canceled before start", nil, false)
		return nil
	}
	job.mu.Unlock()
	return nil
}

// Status snapshots a job for the HTTP layer.
func (s *Server) Status(job *Job) JobStatus {
	job.mu.Lock()
	st := JobStatus{
		ID:                job.id,
		State:             job.state,
		Spec:              job.spec,
		Fingerprint:       job.fp,
		Attempts:          job.attempts,
		Resumed:           job.resumed,
		Cached:            job.cached,
		Error:             job.errText,
		Result:            job.result,
		SubmittedUnixNano: job.submitted,
		FinishedUnixNano:  job.finished,
	}
	job.mu.Unlock()
	if entries, err := os.ReadDir(job.dir); err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "ckpt-") && strings.HasSuffix(e.Name(), ".ckpt") {
				st.Checkpoints++
			}
		}
	}
	return st
}

// Jobs lists every tracked job's status, oldest first.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = s.Status(j)
	}
	return out
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Ready reports whether the server would admit a job right now: it is not
// draining (or crash-simulating) and the queue has room. Distinct from
// liveness — a saturated server is alive but not ready, and a load balancer
// should route around it rather than restart it.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && !s.crashed && s.queued < s.cfg.QueueDepth
}

// jittered spreads d uniformly over [0.8d, 1.2d], so clients shed or failed
// at the same instant do not come back in lockstep and re-overload the
// server (thundering herd). Zero and negative durations pass through.
func jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}

// log journals a record through the daemon fault hook.
func (s *Server) logLocked(rec journalRecord) error {
	if s.crashed {
		return nil // a crashed daemon journals nothing (kill -9 semantics)
	}
	if err := s.cfg.Faults.At(fault.PointJournalAppend); err != nil {
		return &checkpoint.StoreError{Op: "append", Path: s.cfg.StateDir, Err: err}
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return s.journal.Append(b)
}

func (s *Server) log(rec journalRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logLocked(rec)
}

// event records a job-lifecycle event on the metrics sink.
func (s *Server) event(kind, detail string) {
	if s.cfg.Metrics == nil {
		return
	}
	s.cfg.Metrics.RecordEvent(metrics.Event{
		UnixNano: time.Now().UnixNano(), Kind: kind, Rank: -1, Superstep: -1, Detail: detail,
	})
}

func (s *Server) publishGauges() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publishGaugesLocked()
}

func (s *Server) publishGaugesLocked() {
	g, ok := s.cfg.Metrics.(metrics.GaugeRecorder)
	if !ok {
		return
	}
	g.SetGauge("jobs_queued", int64(s.queued))
	g.SetGauge("jobs_running", int64(s.running))
	g.SetGauge("jobs_shed_total", s.shed)
	g.SetGauge("jobs_resumed_total", s.resumedN)
}

// Shed returns how many submissions admission control has rejected.
func (s *Server) Shed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed
}

// worker pulls jobs until the queue is stopped (drain) or closed.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopPull:
			return
		case job, ok := <-s.queue:
			if !ok {
				return
			}
			// Re-check after the pop: drain must not start new jobs (the
			// popped job stays journaled as queued and resumes on restart).
			s.mu.Lock()
			stopped := s.draining || s.crashed
			s.mu.Unlock()
			if stopped {
				return
			}
			s.runJob(job)
		}
	}
}

// runJob executes one job with deadline, cancellation, retry, and journal
// bookkeeping.
func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	alreadyAborted := job.abortWhy
	job.mu.Unlock()
	if alreadyAborted == "cancel" {
		return // finalized by Cancel while queued
	}

	s.mu.Lock()
	s.queued--
	s.running++
	s.publishGaugesLocked()
	s.mu.Unlock()

	// The wall deadline covers the whole job — retries included.
	timeout := time.Duration(job.spec.TimeoutMS) * time.Millisecond
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() { job.abortWith("deadline") })
		defer t.Stop()
	}

	// Resume from the job's durable store when a previous attempt (or a
	// previous process) committed a checkpoint there.
	resume := hasManifest(job.dir)
	for {
		job.mu.Lock()
		job.state = StateRunning
		job.attempts++
		attempt := job.attempts
		job.mu.Unlock()
		s.log(journalRecord{ID: job.id, State: StateRunning, Attempt: attempt, UnixNano: time.Now().UnixNano()})
		s.event(metrics.EventJobStarted, job.id)

		var res *JobResult
		err := s.cfg.Faults.At(fault.PointJobStart)
		if err == nil {
			res, err = s.execute(job, resume)
			if resume && err != nil && errors.Is(err, checkpoint.ErrNoCheckpoint) {
				// The store was unusable after all (e.g. every generation
				// corrupt): run the attempt from scratch instead.
				res, err = s.execute(job, false)
			}
		}
		if err == nil {
			s.finalize(job, StateCompleted, "", res, false)
			return
		}
		var aerr *core.RunAbortedError
		if errors.As(err, &aerr) {
			switch job.abortReason() {
			case "deadline":
				derr := &DeadlineExceededError{ID: job.id, Timeout: timeout}
				s.finalize(job, StateFailed, derr.Error(), nil, false)
			case "drain", "crash":
				// Checkpointed at the boundary; the restart re-queues it.
				s.finalize(job, stateInterrupted, "", nil, false)
			default: // "cancel"
				s.finalize(job, StateCanceled, "canceled", nil, false)
			}
			return
		}
		if job.abortReason() != "" {
			// Aborted but the engine surfaced a different error first (e.g.
			// a deadline racing a failure): treat the abort as authoritative.
			if job.abortReason() == "deadline" {
				derr := &DeadlineExceededError{ID: job.id, Timeout: timeout}
				s.finalize(job, StateFailed, derr.Error(), nil, false)
			} else {
				s.finalize(job, StateCanceled, "canceled", nil, false)
			}
			return
		}
		if !retryable(err) || attempt > s.cfg.MaxRetries {
			s.finalize(job, StateFailed, err.Error(), nil, false)
			return
		}
		// Capped exponential backoff before the retry, abandoned early if
		// the job is aborted while waiting.
		backoff := s.cfg.RetryBase << (attempt - 1)
		if backoff > s.cfg.RetryCap {
			backoff = s.cfg.RetryCap
		}
		select {
		case <-job.ctl.Channel():
		case <-time.After(jittered(backoff)):
		}
		if herr := s.cfg.Faults.At(fault.PointJobRetry); herr != nil {
			s.finalize(job, StateFailed, herr.Error(), nil, false)
			return
		}
		s.event(metrics.EventJobRetried, job.id)
		resume = hasManifest(job.dir) // a partial attempt may have committed progress
	}
}

// retryable classifies typed engine errors: a device failure or a transient
// durable-store failure is worth re-attempting (the retry resumes from the
// newest committed checkpoint); anything else — invalid options, spec
// errors, fenced partitions — fails fast.
func retryable(err error) bool {
	var de *comm.DeviceFailedError
	var se *checkpoint.StoreError
	return errors.As(err, &de) || errors.As(err, &se)
}

func hasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, "MANIFEST"))
	return err == nil
}

// finalize moves a job to a terminal (or interrupted) state, journals it,
// updates counters and the result cache, and closes Done.
func (s *Server) finalize(job *Job, state, errText string, res *JobResult, requeued bool) {
	now := time.Now().UnixNano()
	job.mu.Lock()
	if job.state == StateCompleted || job.state == StateFailed || job.state == StateCanceled {
		job.mu.Unlock()
		return
	}
	wasQueued := job.state == StateQueued
	attempts := job.attempts
	if state == stateInterrupted {
		// Keep the in-memory state "running" — the process is exiting; the
		// journal record is what matters.
	} else {
		job.state = state
		job.errText = errText
		job.result = res
		job.finished = now
	}
	job.mu.Unlock()

	s.log(journalRecord{ID: job.id, State: state, Attempt: attempts, Result: res, Error: errText, UnixNano: now})

	s.mu.Lock()
	if wasQueued {
		s.queued--
	} else {
		s.running--
	}
	s.tenants[job.spec.Tenant]--
	if s.tenants[job.spec.Tenant] <= 0 {
		delete(s.tenants, job.spec.Tenant)
	}
	if state == StateCompleted && res != nil {
		s.cache[job.fp] = res
	}
	s.publishGaugesLocked()
	s.mu.Unlock()

	switch state {
	case StateCompleted:
		s.event(metrics.EventJobCompleted, job.id)
	case StateFailed:
		s.event(metrics.EventJobFailed, job.id)
	case StateCanceled:
		s.event(metrics.EventJobCanceled, job.id)
	}
	if state != stateInterrupted {
		close(job.done)
	}
}

// execute runs one engine attempt of the job against the resident graph.
func (s *Server) execute(job *Job, resume bool) (*JobResult, error) {
	var app core.AppF32
	// Canonical resolves the same defaults the fingerprint hashed, so the
	// cache key and the executed workload can never drift apart.
	spec := job.spec.Canonical()
	iters := spec.Iterations
	switch spec.Algorithm {
	case AlgoPageRank:
		app = apps.NewPageRank()
	case AlgoBFS:
		app = apps.NewBFS(graph.VertexID(spec.Source))
	case AlgoSSSP:
		app = apps.NewSSSP(graph.VertexID(spec.Source))
	case AlgoCC:
		app = apps.NewConnectedComponents()
	default:
		return nil, &SpecError{Field: "algorithm", Reason: fmt.Sprintf("unknown algorithm %q", spec.Algorithm)}
	}
	opts := make([]core.Options, len(s.cfg.Devices))
	for r, dev := range s.cfg.Devices {
		o := core.Options{
			Dev:           dev,
			Scheme:        core.SchemePipelined,
			Vectorized:    true,
			MaxIterations: iters,
			Abort:         job.ctl.Channel(),
		}
		if dev.Name == "CPU" {
			o.Scheme = core.SchemeLocking
		}
		if r == 0 {
			o.CheckpointEvery = s.cfg.CheckpointEvery
			o.CheckpointDir = job.dir
			o.CheckpointRetain = s.cfg.CheckpointRetain
			o.Resume = resume
			if s.cfg.Metrics != nil {
				o.Metrics = s.cfg.Metrics
			}
		}
		opts[r] = o
	}
	res, err := core.RunF32Hetero(app, s.cfg.Graph, s.assign, opts...)
	if err != nil {
		return nil, err
	}
	snap, err := app.(checkpoint.Snapshotter).Snapshot()
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write(snap)
	return &JobResult{
		ResultFingerprint: fmt.Sprintf("%016x", h.Sum64()),
		Iterations:        res.Iterations,
		Converged:         res.Converged,
		SimSeconds:        res.SimSeconds,
		WallSeconds:       res.WallSeconds,
		Degraded:          res.Degraded,
		DiskResumed:       res.DiskResumed,
	}, nil
}

// Drain is the SIGTERM path: stop admitting (new submissions shed with
// reason "draining"), let in-flight jobs finish for up to grace, then abort
// the stragglers at their next superstep boundary — which captures a final
// checkpoint and journals them interrupted — flush the journal, and stop the
// workers. Queued jobs stay journaled as queued; both kinds resume when a
// new daemon opens the same StateDir.
func (s *Server) Drain(grace time.Duration) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.event(metrics.EventDrain, "")
	s.pullOnce.Do(func() { close(s.stopPull) })

	deadline := time.Now().Add(grace)
	for {
		s.mu.Lock()
		n := s.running
		s.mu.Unlock()
		if n == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.mu.Lock()
	var stragglers []*Job
	for _, id := range s.order {
		job := s.jobs[id]
		job.mu.Lock()
		if job.state == StateRunning {
			stragglers = append(stragglers, job)
		}
		job.mu.Unlock()
	}
	s.mu.Unlock()
	for _, job := range stragglers {
		job.abortWith("drain")
	}
	s.wg.Wait()
	return s.journal.Close()
}

// Close stops the server immediately: equivalent to Drain with zero grace.
func (s *Server) Close() error { return s.Drain(0) }

// Crash simulates a kill -9 for recovery tests: journaling and state
// transitions stop cold (no terminal records are written), in-flight engine
// runs are torn down, and the journal handle is dropped. The on-disk journal
// and each job's committed checkpoint generations are left exactly as a real
// SIGKILL would leave them; reopen the StateDir with New to exercise the
// recovery path.
func (s *Server) Crash() {
	s.mu.Lock()
	s.crashed = true
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	s.pullOnce.Do(func() { close(s.stopPull) })
	for _, job := range jobs {
		job.abortWith("crash")
	}
	s.wg.Wait()
	s.journal.Close()
}
