package serve_test

import (
	"testing"
	"time"

	"hetgraph/internal/serve"
)

// baselineFingerprint runs the spec uninterrupted on its own state dir and
// returns the result fingerprint — the ground truth the recovery tests
// compare against. Every served algorithm is a meaningful oracle here: the
// min-combining ones (bfs, sssp, cc) are order-insensitive, and PageRank's
// float32 sums are folded in canonical sorted order by the engine, so even
// its repeated runs are byte-identical.
func baselineFingerprint(t *testing.T, spec serve.JobSpec) string {
	t.Helper()
	srv, err := serve.New(fastConfig(t, recoveryGraph(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	st := srv.Status(job)
	if st.State != serve.StateCompleted {
		t.Fatalf("baseline run state %q (error %q)", st.State, st.Error)
	}
	return st.Result.ResultFingerprint
}

// TestServeCrashRecoveryResumesAndMatches is the core invariant: a daemon
// killed cold mid-job restarts on the same state dir, replays the journal,
// resumes the job from its newest durable checkpoint, and produces a result
// byte-identical to an uninterrupted run. It runs once per algorithm class:
// sssp (order-insensitive min fold) and pagerank (order-sensitive float32
// sum, byte-deterministic through the engine's canonical-order reductions).
func TestServeCrashRecoveryResumesAndMatches(t *testing.T) {
	for _, spec := range []serve.JobSpec{
		{Algorithm: serve.AlgoSSSP},
		{Algorithm: serve.AlgoPageRank, Iterations: 40},
	} {
		t.Run(spec.Algorithm, func(t *testing.T) { testCrashRecovery(t, spec) })
	}
}

func testCrashRecovery(t *testing.T, spec serve.JobSpec) {
	want := baselineFingerprint(t, spec)

	cfg := fastConfig(t, recoveryGraph(t))
	stateDir := cfg.StateDir
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the run commit real progress before pulling the plug.
	deadline := time.Now().Add(60 * time.Second)
	for srv.Status(job).Checkpoints < 2 {
		if time.Now().After(deadline) {
			t.Fatal("job never committed two checkpoint generations")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Crash()
	select {
	case <-job.Done():
		t.Fatal("crash closed the job's Done channel; a killed daemon acknowledges nothing")
	default:
	}

	// A new daemon on the same state dir replays the journal and finishes
	// the job.
	cfg2 := fastConfig(t, recoveryGraph(t))
	cfg2.StateDir = stateDir
	srv2, err := serve.New(cfg2)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer srv2.Close()
	revived, ok := srv2.Get(job.ID())
	if !ok {
		t.Fatalf("job %s lost across the crash", job.ID())
	}
	waitDone(t, revived)
	st := srv2.Status(revived)
	if st.State != serve.StateCompleted {
		t.Fatalf("resumed job state %q (error %q), want completed", st.State, st.Error)
	}
	if !st.Resumed {
		t.Fatal("job does not report Resumed after the restart")
	}
	if !st.Result.DiskResumed {
		t.Fatal("resumed job re-ran from scratch instead of loading the durable checkpoint")
	}
	if st.Result.ResultFingerprint != want {
		t.Fatalf("recovered fingerprint %s != uninterrupted baseline %s", st.Result.ResultFingerprint, want)
	}
}

// TestServeCompletedJobsSurviveRestart: terminal jobs replay as servable
// history and feed the result cache, so a restart serves them without
// recomputation.
func TestServeCompletedJobsSurviveRestart(t *testing.T) {
	spec := serve.JobSpec{Algorithm: serve.AlgoBFS, Source: 3}
	cfg := fastConfig(t, serveGraph(t))
	stateDir := cfg.StateDir
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	want := srv.Status(job).Result.ResultFingerprint
	srv.Crash() // even a cold kill preserves the completed record

	cfg2 := fastConfig(t, serveGraph(t))
	cfg2.StateDir = stateDir
	srv2, err := serve.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	old, ok := srv2.Get(job.ID())
	if !ok {
		t.Fatal("completed job forgotten across restart")
	}
	if st := srv2.Status(old); st.State != serve.StateCompleted || st.Result.ResultFingerprint != want {
		t.Fatalf("replayed job state %q fingerprint %q, want completed/%s", st.State, st.Result.ResultFingerprint, want)
	}
	// And the cache: resubmitting is instant.
	hit, err := srv2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, hit)
	if st := srv2.Status(hit); !st.Cached || st.Result.ResultFingerprint != want {
		t.Fatalf("restarted daemon recomputed a cached workload (cached=%v fp=%s)", st.Cached, st.Result.ResultFingerprint)
	}
}

// TestServeDrainCheckpointsStragglersForResume: a graceful drain with no
// grace aborts in-flight jobs at a superstep boundary, journals them
// interrupted, and the next daemon resumes them to the same answer.
func TestServeDrainCheckpointsStragglersForResume(t *testing.T) {
	spec := serve.JobSpec{Algorithm: serve.AlgoSSSP}
	want := baselineFingerprint(t, spec)

	cfg := fastConfig(t, recoveryGraph(t))
	stateDir := cfg.StateDir
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for srv.Status(job).Checkpoints < 2 {
		if time.Now().After(deadline) {
			t.Fatal("job never committed two checkpoint generations")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Drain(0); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("server does not report draining")
	}
	// Draining daemons shed everything.
	if _, err := srv.Submit(spec); err == nil {
		t.Fatal("draining daemon admitted a job")
	}

	cfg2 := fastConfig(t, recoveryGraph(t))
	cfg2.StateDir = stateDir
	srv2, err := serve.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	revived, ok := srv2.Get(job.ID())
	if !ok {
		t.Fatal("interrupted job lost across the drain")
	}
	waitDone(t, revived)
	st := srv2.Status(revived)
	if st.State != serve.StateCompleted || st.Result.ResultFingerprint != want {
		t.Fatalf("drain-resumed job: state %q fingerprint %q, want completed/%s (error %q)",
			st.State, st.Result.ResultFingerprint, want, st.Error)
	}
}
