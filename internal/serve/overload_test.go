package serve_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"hetgraph/internal/fault"
	"hetgraph/internal/serve"
)

// TestServeOverloadShedsTyped drives the daemon into overload with parked
// workers, asserting the ISSUE's admission contract: bounded queueing with
// typed AdmissionRejectedError (never unbounded buffering), per-tenant caps,
// zero goroutine growth after the storm drains, and no hang — the whole test
// runs under a deadline guard in the chaos-test style.
func TestServeOverloadShedsTyped(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		overloadScenario(t)
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("overload scenario hung past the deadline guard")
	}
}

func overloadScenario(t *testing.T) {
	before := runtime.NumGoroutine()

	release := make(chan struct{})
	faults := fault.NewDaemonFaults()
	faults.Set(fault.PointJobStart, func() error {
		<-release
		return nil
	})
	cfg := fastConfig(t, serveGraph(t))
	cfg.Workers = 1
	cfg.QueueDepth = 2
	cfg.TenantLimit = 2
	cfg.Faults = faults
	cfg.RetryAfterHint = 3 * time.Second
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// One job parks in the worker; its distinct iteration counts keep each
	// spec out of the result cache.
	parked, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 1, Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, parked, serve.StateRunning)

	// Tenant "a" holds 1 running + 1 queued = its limit of 2; one more from
	// "a" trips the per-tenant cap.
	fillA, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 2, Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 50, Tenant: "a"})
	assertShed(t, err, "tenant-limit")

	// Tenant "b" tops the queue up to its global bound of 2, then hits it.
	fillB, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 3, Tenant: "b"})
	if err != nil {
		t.Fatal(err)
	}
	queued := []*serve.Job{fillA, fillB}
	_, err = srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 51, Tenant: "b"})
	assertShed(t, err, "queue-full")

	// A rejection storm must not grow memory or goroutines: nothing about a
	// shed submission allocates per-job state.
	for i := 0; i < 50; i++ {
		if _, err := srv.Submit(serve.JobSpec{Algorithm: serve.AlgoPageRank, Iterations: 60 + i, Tenant: "b"}); err == nil {
			t.Fatal("overloaded daemon admitted a job")
		}
	}
	if got := srv.Shed(); got != 52 {
		t.Fatalf("shed counter %d, want 52", got)
	}
	during := runtime.NumGoroutine()
	if during > before+10 {
		t.Fatalf("goroutines grew from %d to %d during the rejection storm", before, during)
	}

	// Release the workers: everything admitted completes, nothing hangs.
	close(release)
	waitDone(t, parked)
	for _, job := range queued {
		waitDone(t, job)
	}
	for _, job := range append(queued, parked) {
		if st := srv.Status(job); st.State != serve.StateCompleted {
			t.Fatalf("admitted job %s ended %q (error %q)", st.ID, st.State, st.Error)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// After the drain the goroutine count settles back to the baseline.
	deadline := time.Now().Add(30 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func waitState(t *testing.T, srv *serve.Server, job *serve.Job, state string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for srv.Status(job).State != state {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %q (now %q)", job.ID(), state, srv.Status(job).State)
		}
		time.Sleep(time.Millisecond)
	}
}

func assertShed(t *testing.T, err error, reason string) {
	t.Helper()
	var adm *serve.AdmissionRejectedError
	if !errors.As(err, &adm) {
		t.Fatalf("overload error %v, want *AdmissionRejectedError", err)
	}
	if adm.Reason != reason {
		t.Fatalf("shed reason %q, want %q", adm.Reason, reason)
	}
	if adm.RetryAfter <= 0 {
		t.Fatal("shed response carries no Retry-After hint")
	}
}
