// Package serve is the daemon layer of hetgraph: it holds one loaded,
// partitioned graph resident in memory and executes concurrent analytics
// jobs against it over HTTP/JSON. The robustness contract is the point —
// bounded admission (typed AdmissionRejectedError, never unbounded
// buffering), per-job wall deadlines and cancellation through Options.Abort,
// capped-backoff retry for retryable typed errors, a durable CRC-verified
// job journal so a kill -9'd daemon resumes in-flight jobs from their newest
// checkpoint, and graceful drain on SIGTERM. See docs/serving.md.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"hetgraph/internal/core"
)

// Algorithms servable by the daemon: exactly the bundled apps that implement
// checkpoint.Snapshotter, since every served job must be checkpointable for
// crash recovery.
const (
	AlgoPageRank = "pagerank"
	AlgoBFS      = "bfs"
	AlgoSSSP     = "sssp"
	AlgoCC       = "cc"
)

// Spec limits enforced by ParseJobSpec on untrusted input.
const (
	// MaxSpecBytes bounds the JSON body of a job submission.
	MaxSpecBytes = 1 << 16
	// MaxTenantLen bounds the tenant identifier.
	MaxTenantLen = 64
	// MaxIterations bounds a job's requested iteration count.
	MaxIterations = 1_000_000
	// DefaultTenant is used when a spec names no tenant.
	DefaultTenant = "default"
	// DefaultPageRankIterations is the iteration count a pagerank job runs
	// when its spec leaves Iterations at 0.
	DefaultPageRankIterations = 10
)

// JobSpec is the client-supplied description of one job, decoded from the
// POST /jobs body.
type JobSpec struct {
	// Algorithm is one of the Algo* constants.
	Algorithm string `json:"algorithm"`
	// Source is the source vertex for bfs/sssp (ignored by pagerank/cc).
	Source int64 `json:"source,omitempty"`
	// Iterations bounds the run (0 = algorithm default: 10 for pagerank,
	// converge for the rest).
	Iterations int `json:"iterations,omitempty"`
	// Tenant attributes the job for per-tenant admission limits (empty =
	// DefaultTenant).
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMS is the job's wall deadline in milliseconds (0 = the
	// server's default; capped admission-side, enforced via Options.Abort).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SpecError reports a malformed or out-of-range job spec (HTTP 400).
type SpecError struct {
	// Field names the offending field ("algorithm", "source", ...; "body"
	// for JSON-level problems).
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("serve: invalid job spec: %s: %s", e.Field, e.Reason)
}

// ParseJobSpec decodes and validates a job spec from untrusted JSON. It
// rejects oversized bodies, unknown fields, trailing data, unknown
// algorithms, negative or absurd sources/iterations/timeouts, and oversized
// tenant IDs — everything the FuzzParseJobSpec fuzzer throws at it must
// come back as a *SpecError, never a panic.
func ParseJobSpec(data []byte) (JobSpec, error) {
	var spec JobSpec
	if len(data) > MaxSpecBytes {
		return spec, &SpecError{Field: "body", Reason: fmt.Sprintf("%d bytes exceeds %d", len(data), MaxSpecBytes)}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, &SpecError{Field: "body", Reason: err.Error()}
	}
	if dec.More() {
		return JobSpec{}, &SpecError{Field: "body", Reason: "trailing data after the JSON object"}
	}
	if err := spec.Validate(); err != nil {
		return JobSpec{}, err
	}
	if spec.Tenant == "" {
		spec.Tenant = DefaultTenant
	}
	return spec, nil
}

// Validate checks the spec's fields against the daemon's limits.
func (s JobSpec) Validate() error {
	switch s.Algorithm {
	case AlgoPageRank, AlgoBFS, AlgoSSSP, AlgoCC:
	case "":
		return &SpecError{Field: "algorithm", Reason: "required (pagerank | bfs | sssp | cc)"}
	default:
		return &SpecError{Field: "algorithm", Reason: fmt.Sprintf("unknown algorithm %q (want pagerank | bfs | sssp | cc)", s.Algorithm)}
	}
	if s.Source < 0 {
		return &SpecError{Field: "source", Reason: fmt.Sprintf("%d < 0", s.Source)}
	}
	if s.Iterations < 0 || s.Iterations > MaxIterations {
		return &SpecError{Field: "iterations", Reason: fmt.Sprintf("%d outside [0, %d]", s.Iterations, MaxIterations)}
	}
	if len(s.Tenant) > MaxTenantLen {
		return &SpecError{Field: "tenant", Reason: fmt.Sprintf("%d bytes exceeds %d", len(s.Tenant), MaxTenantLen)}
	}
	for _, r := range s.Tenant {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.') {
			return &SpecError{Field: "tenant", Reason: fmt.Sprintf("character %q outside [a-zA-Z0-9._-]", r)}
		}
	}
	if s.TimeoutMS < 0 {
		return &SpecError{Field: "timeout_ms", Reason: fmt.Sprintf("%d < 0", s.TimeoutMS)}
	}
	return nil
}

// Canonical resolves every defaulted or result-irrelevant field to the value
// the executor actually runs with: pagerank and cc ignore Source (zeroed),
// pagerank's Iterations default is DefaultPageRankIterations, and the
// convergence-bounded algorithms run to the engine's DefaultMaxIterations
// when Iterations is 0. Execution and the workload fingerprint both go
// through Canonical, so specs that compute the same result share one
// cache entry instead of fragmenting on spelling (e.g. pagerank
// {iterations: 0} vs {iterations: 10}).
func (s JobSpec) Canonical() JobSpec {
	switch s.Algorithm {
	case AlgoPageRank:
		s.Source = 0
		if s.Iterations == 0 {
			s.Iterations = DefaultPageRankIterations
		}
	case AlgoCC:
		s.Source = 0
		if s.Iterations == 0 {
			s.Iterations = core.DefaultMaxIterations
		}
	case AlgoBFS, AlgoSSSP:
		if s.Iterations == 0 {
			s.Iterations = core.DefaultMaxIterations
		}
	}
	return s
}

// WorkloadFingerprint is the result-cache key: an FNV-1a hash over the
// graph signature and every result-determining spec field of the canonical
// spec (tenant and timeout excluded — they do not change the answer; see
// Canonical for the default/ignored-field resolution). Two jobs with equal
// fingerprints compute the same deterministic result, which is also what
// the crash-recovery smoke asserts across a kill -9.
func (s JobSpec) WorkloadFingerprint(graphSig string) string {
	c := s.Canonical()
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d", graphSig, c.Algorithm, c.Source, c.Iterations)
	return fmt.Sprintf("%016x", h.Sum64())
}

// validateSourceBounds rejects a bfs or sssp spec whose source vertex does
// not exist in the resident graph. It is scoped to the source-rooted
// algorithms — pagerank and cc ignore Source entirely (Canonical zeroes it),
// so an out-of-range value there is inert rather than an index panic waiting
// inside the worker's app constructor. Surfaced as a *SpecError (HTTP 400)
// naming the valid range.
func validateSourceBounds(spec JobSpec, numVertices int) error {
	switch spec.Algorithm {
	case AlgoBFS, AlgoSSSP:
		if spec.Source >= int64(numVertices) {
			return &SpecError{Field: "source", Reason: fmt.Sprintf("source %d outside the resident graph's valid range [0, %d)", spec.Source, numVertices)}
		}
	}
	return nil
}

// Job states, in lifecycle order. Queued and running jobs survive a crash:
// the journal replays them and the daemon re-queues them (resuming from the
// newest durable checkpoint when one exists).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateCompleted = "completed"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
)

// AdmissionRejectedError reports a submission refused by admission control;
// the HTTP layer surfaces it as 429 with a Retry-After header. Reasons:
// "queue-full", "tenant-limit", "draining".
type AdmissionRejectedError struct {
	// Reason is the admission rule that rejected the job.
	Reason string
	// Tenant is the submitting tenant.
	Tenant string
	// RetryAfter is the suggested backoff before resubmitting.
	RetryAfter time.Duration
}

func (e *AdmissionRejectedError) Error() string {
	return fmt.Sprintf("serve: admission rejected for tenant %q: %s (retry after %s)", e.Tenant, e.Reason, e.RetryAfter)
}

// JobNotFoundError reports an unknown job ID (HTTP 404).
type JobNotFoundError struct{ ID string }

func (e *JobNotFoundError) Error() string { return fmt.Sprintf("serve: no job %q", e.ID) }

// DeadlineExceededError reports a job aborted by its wall deadline.
type DeadlineExceededError struct {
	// ID is the job.
	ID string
	// Timeout is the deadline that expired.
	Timeout time.Duration
}

func (e *DeadlineExceededError) Error() string {
	return fmt.Sprintf("serve: job %s exceeded its %s deadline", e.ID, e.Timeout)
}

// JobStatus is the JSON snapshot of one job served by GET /jobs/{id}.
type JobStatus struct {
	ID    string  `json:"id"`
	State string  `json:"state"`
	Spec  JobSpec `json:"spec"`
	// Fingerprint is the workload fingerprint (the result-cache key).
	Fingerprint string `json:"fingerprint"`
	// Attempts counts started executions (retries included).
	Attempts int `json:"attempts,omitempty"`
	// Resumed is true when the job was re-queued from the journal after a
	// daemon restart.
	Resumed bool `json:"resumed,omitempty"`
	// Cached is true when the result came from the fingerprint cache
	// without running the engine.
	Cached bool `json:"cached,omitempty"`
	// Error is the terminal error of a failed or canceled job.
	Error string `json:"error,omitempty"`
	// Result summarizes a completed run.
	Result *JobResult `json:"result,omitempty"`
	// Checkpoints is the number of durable checkpoint generations the job
	// has committed (its crash-recovery budget).
	Checkpoints       int   `json:"checkpoints,omitempty"`
	SubmittedUnixNano int64 `json:"submitted_unix_nano,omitempty"`
	FinishedUnixNano  int64 `json:"finished_unix_nano,omitempty"`
}

// JobResult summarizes a completed job.
type JobResult struct {
	// ResultFingerprint is an FNV-1a hash of the application's final vertex
	// state — runs of the same workload are byte-deterministic, so equal
	// fingerprints mean byte-identical results (the crash-recovery
	// invariant is asserted on this value).
	ResultFingerprint string  `json:"result_fingerprint"`
	Iterations        int64   `json:"iterations"`
	Converged         bool    `json:"converged"`
	SimSeconds        float64 `json:"sim_seconds"`
	WallSeconds       float64 `json:"wall_seconds"`
	// Degraded/DiskResumed echo the engine's robustness outcome.
	Degraded    bool `json:"degraded,omitempty"`
	DiskResumed bool `json:"disk_resumed,omitempty"`
}
