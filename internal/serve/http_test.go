package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hetgraph/internal/fault"
	"hetgraph/internal/serve"
)

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServeHTTPLifecycle(t *testing.T) {
	srv, err := serve.New(fastConfig(t, serveGraph(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Submit: 202 with the job's status snapshot.
	resp, body := postJSON(t, ts.URL+"/jobs", `{"algorithm":"pagerank","iterations":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Fingerprint == "" {
		t.Fatalf("submit response missing id/fingerprint: %s", body)
	}

	// Poll until completed.
	deadline := time.Now().Add(60 * time.Second)
	for st.State != serve.StateCompleted {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if code := getJSON(t, ts.URL+"/jobs/"+st.ID, &st); code != http.StatusOK {
			t.Fatalf("status poll returned %d", code)
		}
	}
	if st.Result == nil || st.Result.ResultFingerprint == "" {
		t.Fatal("completed status has no result fingerprint")
	}

	// List includes it.
	var list struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/jobs", &list); code != http.StatusOK || len(list.Jobs) != 1 {
		t.Fatalf("list: code %d jobs %d", code, len(list.Jobs))
	}

	// Health is green.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz %d", code)
	}
}

func TestServeHTTPErrors(t *testing.T) {
	srv, err := serve.New(fastConfig(t, serveGraph(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []string{
		`not json at all`,
		`{"algorithm":"quantum"}`,
		`{"algorithm":"bfs","source":-2}`,
		`{"algorithm":"bfs","unknown_field":1}`,
		`{"algorithm":"bfs"}{"trailing":"object"}`,
	} {
		resp, b := postJSON(t, ts.URL+"/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
	if code := getJSON(t, ts.URL+"/jobs/j99999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", code)
	}
	resp, _ := postJSON(t, ts.URL+"/jobs/j99999999/cancel", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cancel status %d, want 404", resp.StatusCode)
	}
}

func TestServeHTTPOverloadIs429(t *testing.T) {
	release := make(chan struct{})
	faults := fault.NewDaemonFaults()
	faults.Set(fault.PointJobStart, func() error {
		<-release
		return nil
	})
	cfg := fastConfig(t, serveGraph(t))
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.Faults = faults
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(release); srv.Close() }()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Park one job in the worker, queue one, then overflow.
	for i, want := range []int{http.StatusAccepted, http.StatusAccepted, http.StatusTooManyRequests} {
		resp, body := postJSON(t, ts.URL+"/jobs",
			`{"algorithm":"pagerank","iterations":`+string(rune('2'+i))+`}`)
		if i == 0 {
			// Wait for the first job to leave the queue for the worker.
			deadline := time.Now().Add(30 * time.Second)
			var st serve.JobStatus
			json.Unmarshal(body, &st)
			for srv.Status(mustGet(t, srv, st.ID)).State != serve.StateRunning {
				if time.Now().After(deadline) {
					t.Fatal("first job never started")
				}
				time.Sleep(time.Millisecond)
			}
		}
		if resp.StatusCode != want {
			t.Fatalf("submit %d: status %d (%s), want %d", i, resp.StatusCode, body, want)
		}
		if want == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without a Retry-After header")
		}
	}

	// Readiness mirrors admission: with the queue saturated, /readyz answers
	// 503 so a balancer stops routing here — while liveness stays green.
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("saturated readyz %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("saturated healthz %d, want 200", code)
	}
}

func mustGet(t *testing.T, srv *serve.Server, id string) *serve.Job {
	t.Helper()
	job, ok := srv.Get(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	return job
}

func TestServeHTTPDrainingHealthAndShed(t *testing.T) {
	srv, err := serve.New(fastConfig(t, serveGraph(t)))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Drain(0); err != nil {
		t.Fatal(err)
	}
	// Liveness stays green through the drain — only readiness goes red, so
	// an orchestrator routes around the draining daemon without restarting it.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("draining healthz %d, want 200 (liveness, not readiness)", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz %d, want 503", code)
	}
	resp, _ := postJSON(t, ts.URL+"/jobs", `{"algorithm":"cc"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("draining submit %d, want 429", resp.StatusCode)
	}
}
