package bench

import (
	"fmt"

	"hetgraph/internal/apps"
	"hetgraph/internal/core"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/metis"
	"hetgraph/internal/ompbase"
	"hetgraph/internal/partition"
	"hetgraph/internal/seqref"
)

// pageRankIters fixes PageRank's run length across all configurations.
const pageRankIters = 10

// scIters bounds Semi-Clustering's refinement rounds.
const scIters = 5

// AppSpec describes one evaluated application: how to instantiate it, its
// input, and its best heterogeneous configuration. The MIC scheme follows
// the paper (pipelining for all apps except BFS; the CPU always uses
// locking). Ratios are the best measured on THIS reproduction's simulated
// devices, analogous to the paper's "ratios that gave the best load
// balance" (theirs: PR 3:5, BFS 4:3, SC 2:1, SSSP 1:1, Topo 1:4; ours
// agree in direction, quantized to eighths).
type AppSpec struct {
	Name      string
	Graph     *graph.CSR
	MaxIters  int             // 0 = run to convergence
	Ratio     partition.Ratio // best CPU:MIC ratio (§V-C)
	MICScheme core.Scheme
	// HeteroMethod is the partitioning used for the CPU-MIC rows. Hybrid
	// for all apps except TopoSort: the layered DAG's min-cut blocks align
	// with layers, which would serialize the devices, and the paper notes
	// its DAG has "almost equal number of cross edges using round-robin
	// and hybrid partitionings".
	HeteroMethod partition.Method

	newF32 func() core.AppF32
	newGen func() core.AppGeneric[apps.SCMsg]
}

// Specs returns the five evaluated applications over the workloads.
func Specs(w Workloads) []AppSpec {
	return []AppSpec{
		{
			Name: "PageRank", Graph: w.Pokec, MaxIters: pageRankIters,
			Ratio: partition.Ratio{A: 3, B: 5}, MICScheme: core.SchemePipelined, HeteroMethod: partition.MethodHybrid,
			newF32: func() core.AppF32 { return apps.NewPageRank() },
		},
		{
			Name: "BFS", Graph: w.Pokec,
			Ratio: partition.Ratio{A: 5, B: 3}, MICScheme: core.SchemeLocking, HeteroMethod: partition.MethodHybrid,
			newF32: func() core.AppF32 { return apps.NewBFS(0) },
		},
		{
			Name: "SC", Graph: w.DBLP, MaxIters: scIters,
			Ratio: partition.Ratio{A: 5, B: 3}, MICScheme: core.SchemePipelined, HeteroMethod: partition.MethodHybrid,
			newGen: func() core.AppGeneric[apps.SCMsg] { return apps.NewSemiClustering(3, 4, 0.2) },
		},
		{
			Name: "SSSP", Graph: w.PokecW,
			Ratio: partition.Ratio{A: 4, B: 4}, MICScheme: core.SchemePipelined, HeteroMethod: partition.MethodHybrid,
			newF32: func() core.AppF32 { return apps.NewSSSP(0) },
		},
		{
			Name: "TopoSort", Graph: w.DAG,
			Ratio: partition.Ratio{A: 2, B: 6}, MICScheme: core.SchemePipelined,
			HeteroMethod: partition.MethodRoundRobin,
			newF32:       func() core.AppF32 { return apps.NewTopoSort() },
		},
	}
}

// SpecByName finds an application spec.
func SpecByName(specs []AppSpec, name string) (AppSpec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return AppSpec{}, fmt.Errorf("bench: unknown app %q", name)
}

// IsGeneric reports whether the app uses the structured-message path.
func (s AppSpec) IsGeneric() bool { return s.newGen != nil }

// RunFramework executes the app on one modeled device.
func (s AppSpec) RunFramework(opt core.Options) (core.Result, error) {
	opt.MaxIterations = s.MaxIters
	if s.IsGeneric() {
		return core.RunGeneric(s.newGen(), s.Graph, opt)
	}
	return core.RunF32(s.newF32(), s.Graph, opt)
}

// RunOMP executes the OpenMP baseline on one modeled device.
func (s AppSpec) RunOMP(dev machine.DeviceSpec, threads int) (ompbase.Result, error) {
	if s.IsGeneric() {
		return ompbase.RunGeneric(s.newGen(), s.Graph, dev, threads, orDefault(s.MaxIters))
	}
	return ompbase.RunF32(s.newF32(), s.Graph, dev, threads, s.MaxIters)
}

// RunHetero executes the CPU+MIC configuration with the given assignment.
func (s AppSpec) RunHetero(assign []int32, opt0, opt1 core.Options) (core.HeteroResult, error) {
	opt0.MaxIterations = s.MaxIters
	opt1.MaxIterations = s.MaxIters
	if s.IsGeneric() {
		return core.RunGenericHetero(s.newGen(), s.Graph, assign, opt0, opt1)
	}
	return core.RunF32Hetero(s.newF32(), s.Graph, assign, opt0, opt1)
}

// RunSeq runs the sequential reference and prices it on dev (Table II).
func (s AppSpec) RunSeq(dev machine.DeviceSpec) (float64, machine.Counters, error) {
	var c machine.Counters
	var err error
	if s.IsGeneric() {
		_, c, err = seqref.RunGenericSeq(s.newGen(), s.Graph, orDefault(s.MaxIters))
	} else {
		_, c, err = seqref.RunF32Seq(s.newF32(), s.Graph, orDefault(s.MaxIters))
	}
	if err != nil {
		return 0, c, err
	}
	var app machine.AppProfile
	if s.IsGeneric() {
		app = s.newGen().Profile()
	} else {
		app = s.newF32().Profile()
	}
	cm, err := machine.NewCostModel(dev, app)
	if err != nil {
		return 0, c, err
	}
	return cm.Sequential(c), c, nil
}

// BestSingle runs both single-device framework configurations the paper
// found best (CPU locking, MIC with the app's best scheme) and returns the
// results keyed "CPU" and "MIC".
func (s AppSpec) BestSingle() (cpu, mic core.Result, err error) {
	cpu, err = s.RunFramework(core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true})
	if err != nil {
		return
	}
	mic, err = s.RunFramework(core.Options{Dev: machine.MIC(), Scheme: s.MICScheme, Vectorized: true})
	return
}

// HeteroAssign computes the assignment for one partitioning method at the
// app's best ratio (hybrid blocks are scaled to the graph).
func (s AppSpec) HeteroAssign(method partition.Method) ([]int32, error) {
	return s.HeteroAssignRatio(method, s.Ratio)
}

// HeteroAssignRatio computes the assignment at an explicit ratio.
func (s AppSpec) HeteroAssignRatio(method partition.Method, r partition.Ratio) ([]int32, error) {
	switch method {
	case partition.MethodHybrid:
		return partition.Hybrid(s.Graph, r, partition.BlocksFor(s.Graph.NumVertices()), metis.DefaultOptions())
	default:
		return partition.Make(method, s.Graph, r)
	}
}

// RatioFromSpeeds quantizes the measured single-device execution times into
// a CPU:MIC workload ratio in eighths — the device that is k times faster
// gets k times the work, which is the balance criterion of §IV-E.
func RatioFromSpeeds(tCPU, tMIC float64) partition.Ratio {
	if tCPU <= 0 || tMIC <= 0 {
		return partition.Ratio{A: 1, B: 1}
	}
	wCPU := 1 / tCPU
	wMIC := 1 / tMIC
	a := int(8*wCPU/(wCPU+wMIC) + 0.5)
	if a < 1 {
		a = 1
	}
	if a > 7 {
		a = 7
	}
	return partition.Ratio{A: a, B: 8 - a}
}

// HeteroOptions returns the device options the paper uses for CPU-MIC
// execution: locking on the CPU, the app's best scheme on the MIC.
func (s AppSpec) HeteroOptions() (core.Options, core.Options) {
	return core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true},
		core.Options{Dev: machine.MIC(), Scheme: s.MICScheme, Vectorized: true}
}

func orDefault(n int) int {
	if n == 0 {
		return core.DefaultMaxIterations
	}
	return n
}
