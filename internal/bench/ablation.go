package bench

import (
	"fmt"
	"time"

	"hetgraph/internal/core"
	"hetgraph/internal/csb"
	"hetgraph/internal/fault"
	"hetgraph/internal/machine"
	"hetgraph/internal/metis"
	"hetgraph/internal/partition"
)

// AblationCSBMode compares dynamic column allocation against the one-to-one
// mapping (Fig. 3a vs 3b): same application, same device, different lane
// occupancy and therefore different reduction row counts. Use an app whose
// per-iteration reception is sparse relative to the vertex set (TopoSort's
// wavefront) — that is the case dynamic allocation exists for. When every
// vertex receives every iteration (PageRank), the in-degree-sorted
// one-to-one mapping is already near-optimal and the two modes tie.
func AblationCSBMode(spec AppSpec) (Figure, error) {
	fig := Figure{ID: "A1", Title: fmt.Sprintf("Ablation: CSB column mapping (%s, MIC)", spec.Name)}
	var rows [2]int64
	var times [2]float64
	for i, mode := range []csb.InsertMode{csb.OneToOne, csb.Dynamic} {
		res, err := spec.RunFramework(core.Options{
			Dev: machine.MIC(), Scheme: spec.MICScheme, Vectorized: true, CSBMode: mode,
		})
		if err != nil {
			return fig, err
		}
		rows[i] = res.Counters.VecRows
		times[i] = res.SimSeconds
		fig.Rows = append(fig.Rows, Row{
			Config:  mode.String(),
			ExecSim: res.SimSeconds,
			Wall:    res.WallSeconds,
			Extra:   map[string]float64{"vecRows": float64(res.Counters.VecRows)},
		})
	}
	fig.note("dynamic allocation reduces SIMD rows by %.2fx and time by %.2fx",
		float64(rows[0])/float64(rows[1]), times[0]/times[1])
	return fig, nil
}

// AblationGroupFactor sweeps the CSB vertex-group width factor k,
// reporting buffer footprint against reduction efficiency.
func AblationGroupFactor(spec AppSpec) (Figure, error) {
	fig := Figure{ID: "A2", Title: fmt.Sprintf("Ablation: CSB group factor k (%s, MIC)", spec.Name)}
	in := spec.Graph.InDegrees()
	for _, k := range []int{1, 2, 4} {
		res, err := spec.RunFramework(core.Options{
			Dev: machine.MIC(), Scheme: spec.MICScheme, Vectorized: true, K: k,
		})
		if err != nil {
			return fig, err
		}
		buf, err := csb.BuildFromDegrees(in, csb.Config{Width: machine.MIC().SIMDWidth, K: k})
		if err != nil {
			return fig, err
		}
		fig.Rows = append(fig.Rows, Row{
			Config:  fmt.Sprintf("k=%d", k),
			ExecSim: res.SimSeconds,
			Wall:    res.WallSeconds,
			Extra: map[string]float64{
				"bufMB":   float64(buf.FootprintBytes()) / (1 << 20),
				"naiveMB": float64(buf.NaiveFootprintBytes()) / (1 << 20),
				"vecRows": float64(res.Counters.VecRows),
			},
		})
	}
	return fig, nil
}

// AblationMoverSplit sweeps the worker/mover thread split of the pipelined
// scheme on the MIC (the paper's best is 180+60; auto-tuning this split is
// listed as future work).
func AblationMoverSplit(spec AppSpec) (Figure, error) {
	fig := Figure{ID: "A3", Title: fmt.Sprintf("Ablation: pipelined worker/mover split (%s, MIC)", spec.Name)}
	total := machine.MIC().Threads()
	for _, movers := range []int{20, 40, 60, 100, 120} {
		res, err := spec.RunFramework(core.Options{
			Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
			Workers: total - movers, Movers: movers,
		})
		if err != nil {
			return fig, err
		}
		fig.Rows = append(fig.Rows, Row{
			Config:  fmt.Sprintf("%d+%d", total-movers, movers),
			ExecSim: res.SimSeconds,
			Wall:    res.WallSeconds,
		})
	}
	return fig, nil
}

// AblationMetisBlocks sweeps the hybrid scheme's block count, reporting
// cross edges and balance error at the app's ratio.
func AblationMetisBlocks(spec AppSpec) (Figure, error) {
	fig := Figure{ID: "A4", Title: fmt.Sprintf("Ablation: hybrid partitioning block count (%s)", spec.Name)}
	for _, blocks := range []int{4, 8, 16, 64, 256} {
		if blocks >= spec.Graph.NumVertices() {
			continue
		}
		assign, err := partition.Hybrid(spec.Graph, spec.Ratio, blocks, metis.DefaultOptions())
		if err != nil {
			return fig, err
		}
		fig.Rows = append(fig.Rows, Row{
			Config: fmt.Sprintf("blocks=%d", blocks),
			Extra: map[string]float64{
				"crossEdges": float64(partition.CrossEdges(spec.Graph, assign)),
				"balanceErr": partition.BalanceError(spec.Graph, assign, spec.Ratio),
			},
		})
	}
	return fig, nil
}

// AblationChunkSize sweeps the dynamic scheduler chunk size through the
// thread-count override (chunking is derived from threads and totals), by
// comparing fetch counts across devices.
func AblationChunkSize(spec AppSpec) (Figure, error) {
	fig := Figure{ID: "A5", Title: fmt.Sprintf("Ablation: dynamic scheduling overhead (%s)", spec.Name)}
	for _, dev := range []machine.DeviceSpec{machine.CPU(), machine.MIC()} {
		res, err := spec.RunFramework(core.Options{Dev: dev, Scheme: core.SchemeLocking, Vectorized: true})
		if err != nil {
			return fig, err
		}
		fig.Rows = append(fig.Rows, Row{
			Config:  dev.Name,
			ExecSim: res.SimSeconds,
			Extra: map[string]float64{
				"taskFetches": float64(res.Counters.TaskFetches),
				"fetchNSShare": 100 * float64(res.Counters.TaskFetches) * dev.FetchNS * 1e-9 /
					float64(dev.Threads()) / res.SimSeconds,
			},
		})
	}
	return fig, nil
}

// AblationGenScheme compares the three message-generation handoffs on the
// MIC for one application: locking, pipelined with the paper's per-element
// SPSC handoff (GenBatchSize 1), and pipelined with the batched handoff
// (DefaultGenBatch). The queue-event columns show what batching buys —
// cursor publications per message drop from 2 (one push + one pop each) to
// 2/batch — and the generate-phase simulated time shows the cost model
// pricing that cheaper handoff.
func AblationGenScheme(spec AppSpec) (Figure, error) {
	fig := Figure{ID: "A7", Title: fmt.Sprintf("Ablation: generation handoff lock vs pipe vs pipe-batched (%s, MIC)", spec.Name)}
	type config struct {
		name   string
		scheme core.Scheme
		batch  int
	}
	configs := []config{
		{"lock", core.SchemeLocking, 0},
		{"pipe", core.SchemePipelined, 1},
		{fmt.Sprintf("pipe-b%d", core.DefaultGenBatch), core.SchemePipelined, core.DefaultGenBatch},
	}
	var genTimes [3]float64
	var evtPerMsg [3]float64
	for i, cfg := range configs {
		res, err := spec.RunFramework(core.Options{
			Dev: machine.MIC(), Scheme: cfg.scheme, Vectorized: true, GenBatchSize: cfg.batch,
		})
		if err != nil {
			return fig, err
		}
		c := res.Counters
		if c.Messages > 0 {
			evtPerMsg[i] = float64(c.QueueOps+c.QueueBatchOps) / float64(c.Messages)
		}
		genTimes[i] = res.Phases.Generate
		fig.Rows = append(fig.Rows, Row{
			Config:  cfg.name,
			ExecSim: res.SimSeconds,
			Wall:    res.WallSeconds,
			Extra: map[string]float64{
				"generateSim":    res.Phases.Generate,
				"queueOps":       float64(c.QueueOps),
				"queueBatchOps":  float64(c.QueueBatchOps),
				"queueEvtPerMsg": evtPerMsg[i],
			},
		})
	}
	fig.note("batching cuts queue events/message %.2f -> %.2f and generate time %.2fx vs per-element (%.2fx vs locking)",
		evtPerMsg[1], evtPerMsg[2], genTimes[1]/genTimes[2], genTimes[0]/genTimes[2])
	return fig, nil
}

// AblationDirection compares the three traversal directions — push, pull,
// and the auto switch — for a source-rooted traversal on the power-law
// graph, on the CPU with the locking scheme. The message column is the
// headline: a hub-dominated frontier makes push insert millions of soon-
// discarded messages, while pull scans in-edges and writes one delivery per
// vertex; auto should match push's narrow early supersteps and pull's wide
// middle, generating no more messages than either extreme. This figure
// seeds the repo's BENCH_* perf artifacts (see WriteArtifact).
func AblationDirection(spec AppSpec) (Figure, error) {
	fig := Figure{ID: "A8", Title: fmt.Sprintf("Ablation: traversal direction push vs pull vs auto (%s, CPU)", spec.Name)}
	dirs := []core.Direction{core.DirectionPush, core.DirectionPull, core.DirectionAuto}
	var msgs [3]float64
	var times [3]float64
	for i, dir := range dirs {
		res, err := spec.RunFramework(core.Options{
			Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true, Direction: dir,
		})
		if err != nil {
			return fig, err
		}
		c := res.Counters
		msgs[i] = float64(c.Messages)
		times[i] = res.SimSeconds
		fig.Rows = append(fig.Rows, Row{
			Config:  dir.String(),
			ExecSim: res.SimSeconds,
			Wall:    res.WallSeconds,
			Extra: map[string]float64{
				"messages":       float64(c.Messages),
				"pullEdges":      float64(c.PullEdgesScanned),
				"pullSupersteps": float64(c.PullSupersteps),
				"iterations":     float64(res.Iterations),
			},
		})
	}
	fig.note("auto generates %.2fx the messages of push (%.0f vs %.0f) in %.2fx the sim time",
		msgs[2]/msgs[0], msgs[2], msgs[0], times[2]/times[0])
	return fig, nil
}

// AblationRatioSweep sweeps the CPU:MIC workload ratio for one application
// under its partitioning method, producing the balance curve behind the
// paper's "we tried different partitioning ratios and report the best"
// methodology (and behind internal/autotune's search).
func AblationRatioSweep(spec AppSpec) (Figure, error) {
	fig := Figure{ID: "A6", Title: fmt.Sprintf("Ablation: CPU:MIC ratio sweep (%s, %s)", spec.Name, spec.HeteroMethod)}
	best := Row{}
	for a := 1; a <= 7; a++ {
		r := partition.Ratio{A: a, B: 8 - a}
		assign, err := spec.HeteroAssignRatio(spec.HeteroMethod, r)
		if err != nil {
			return fig, err
		}
		o0, o1 := spec.HeteroOptions()
		res, err := spec.RunHetero(assign, o0, o1)
		if err != nil {
			return fig, err
		}
		row := Row{
			Config:  fmt.Sprintf("%d:%d", r.A, r.B),
			ExecSim: res.ExecSeconds,
			CommSim: res.CommSeconds,
			Wall:    res.WallSeconds,
		}
		fig.Rows = append(fig.Rows, row)
		if best.Config == "" || row.Total() < best.Total() {
			best = row
		}
	}
	fig.note("best ratio %s at %.6f sim s (spec default %d:%d)", best.Config, best.Total(), spec.Ratio.A, spec.Ratio.B)
	return fig, nil
}

// AblationStraggler measures the payoff of gray-failure mitigation (A9): a
// four-rank group whose rank 1 stalls every superstep for the first six
// supersteps (the stall is calibrated below), run once with straggler
// handling off — the whole group
// waits behind the stall for the entire window — and once under
// demote-rehab, where the supervisor soft-degrades the straggler at a
// checkpoint barrier and restores it once its latency re-normalizes. The
// simulated exec column is the headline: the mitigated run stops paying the
// stall after the demotion barrier, and the artifact's acceptance check
// (Artifact.Validate) holds that gap as the optimization's bar.
func AblationStraggler(spec AppSpec) (Figure, error) {
	fig := Figure{ID: "A9", Title: fmt.Sprintf("Ablation: straggler mitigation off vs demote-rehab (%s, 4 ranks)", spec.Name)}
	if spec.IsGeneric() {
		return fig, fmt.Errorf("bench: straggler ablation needs a float32 app, %s is generic", spec.Name)
	}
	const ranks = 4
	weights := make([]int, ranks)
	for i := range weights {
		weights[i] = 1
	}
	assign, err := partition.MakeN(partition.MethodRoundRobin, spec.Graph, weights)
	if err != nil {
		return fig, err
	}
	iters := spec.MaxIters
	if iters == 0 || iters > 12 {
		iters = 12 // enough supersteps for demote (~3) and rehab (~8) to land
	}
	groupOpts := func(inj *fault.Injector, threshold time.Duration, policy core.StragglerPolicy) []core.Options {
		opts := make([]core.Options, ranks)
		opts[0] = core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true,
			MaxIterations: iters, CheckpointEvery: 1, Fault: inj,
			StragglerThreshold: threshold, StragglerPolicy: policy}
		for r := 1; r < ranks; r++ {
			opts[r] = core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
				MaxIterations: iters}
		}
		return opts
	}

	// Calibrate against the workload: one fault-free run measures the
	// per-superstep charged exec time — the same modeled quantity the
	// health scorer consumes — then the injected stall is set to dominate
	// healthy compute (8x) and the threshold to separate the two (4x), so
	// the straggler — and only the straggler — crosses it at any scale.
	base, err := core.RunF32Hetero(spec.newF32(), spec.Graph, assign, groupOpts(nil, 0, core.StragglerOff)...)
	if err != nil {
		return fig, err
	}
	baseIters := base.Iterations
	if baseIters < 1 {
		baseIters = 1
	}
	stall := time.Duration(8 * base.ExecSeconds / float64(baseIters) * float64(time.Second))
	if stall < 40*time.Millisecond {
		stall = 40 * time.Millisecond
	}

	for _, policy := range []core.StragglerPolicy{core.StragglerOff, core.StragglerDemoteRehab} {
		plan, err := fault.Parse(fmt.Sprintf("rank1:gslow@0x6:%s", stall))
		if err != nil {
			return fig, err
		}
		inj, err := fault.NewInjector(plan)
		if err != nil {
			return fig, err
		}
		threshold := stall / 2
		if policy == core.StragglerOff {
			threshold = 0
		}
		res, err := core.RunF32Hetero(spec.newF32(), spec.Graph, assign, groupOpts(inj, threshold, policy)...)
		if err != nil {
			return fig, err
		}
		fig.Rows = append(fig.Rows, Row{
			Config:  policy.String(),
			ExecSim: res.ExecSeconds,
			CommSim: res.CommSeconds,
			Wall:    res.WallSeconds,
			Extra: map[string]float64{
				"softDegraded":    float64(len(res.SoftDegraded)),
				"rehabilitated":   float64(len(res.Rehabilitated)),
				"demoteSuperstep": float64(res.SoftDegradeSuperstep),
				"rehabSuperstep":  float64(res.RehabilitateSuperstep),
				"iterations":      float64(res.Iterations),
			},
		})
	}
	off, mit := fig.Rows[0], fig.Rows[1]
	fig.note("demote-rehab cut simulated exec %.3fs -> %.3fs (demoted at %d, rehabilitated at %d)",
		off.ExecSim, mit.ExecSim, int64(mit.Extra["demoteSuperstep"]), int64(mit.Extra["rehabSuperstep"]))
	return fig, nil
}
