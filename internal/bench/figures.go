package bench

import (
	"fmt"
	"strings"

	"hetgraph/internal/core"
	"hetgraph/internal/machine"
	"hetgraph/internal/partition"
)

// Row is one configuration's measurement within a figure or table.
type Row struct {
	Config string
	// ExecSim is simulated execution seconds (compute phases).
	ExecSim float64
	// CommSim is simulated communication seconds (CPU-MIC rows only).
	CommSim float64
	// Wall is host wall-clock seconds (reference only).
	Wall float64
	// Extra carries figure-specific values (e.g. message-processing
	// sub-step time for Fig. 5f).
	Extra map[string]float64
}

// Total returns exec + comm simulated seconds.
func (r Row) Total() float64 { return r.ExecSim + r.CommSim }

// Figure is one regenerated artifact.
type Figure struct {
	ID    string
	Title string
	Rows  []Row
	// Notes records shape observations (who wins, by what factor).
	Notes []string
}

// FindRow returns the row with the given config name.
func (f Figure) FindRow(config string) (Row, bool) {
	for _, r := range f.Rows {
		if r.Config == config {
			return r, true
		}
	}
	return Row{}, false
}

// note appends a formatted shape note.
func (f *Figure) note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Fig5 regenerates one of Figures 5(a)–5(e): the seven execution
// configurations for one application.
func Fig5(spec AppSpec) (Figure, error) {
	id := map[string]string{"PageRank": "5a", "BFS": "5b", "SC": "5c", "SSSP": "5d", "TopoSort": "5e"}[spec.Name]
	fig := Figure{ID: id, Title: fmt.Sprintf("Figure %s: %s execution schemes", id, spec.Name)}
	cpu, mic := machine.CPU(), machine.MIC()

	type cfg struct {
		name string
		run  func() (exec, comm, wall float64, err error)
	}
	frame := func(dev machine.DeviceSpec, scheme core.Scheme) func() (float64, float64, float64, error) {
		return func() (float64, float64, float64, error) {
			res, err := spec.RunFramework(core.Options{Dev: dev, Scheme: scheme, Vectorized: true})
			return res.SimSeconds, 0, res.WallSeconds, err
		}
	}
	omp := func(dev machine.DeviceSpec) func() (float64, float64, float64, error) {
		return func() (float64, float64, float64, error) {
			res, err := spec.RunOMP(dev, 0)
			return res.SimSeconds, 0, res.WallSeconds, err
		}
	}
	configs := []cfg{
		{"CPU OMP", omp(cpu)},
		{"CPU Lock", frame(cpu, core.SchemeLocking)},
		{"CPU Pipe", frame(cpu, core.SchemePipelined)},
		{"MIC OMP", omp(mic)},
		{"MIC Lock", frame(mic, core.SchemeLocking)},
		{"MIC Pipe", frame(mic, core.SchemePipelined)},
	}
	for _, c := range configs {
		exec, comm, wall, err := c.run()
		if err != nil {
			return fig, fmt.Errorf("bench: %s %s: %w", spec.Name, c.name, err)
		}
		fig.Rows = append(fig.Rows, Row{Config: c.name, ExecSim: exec, CommSim: comm, Wall: wall})
	}
	// CPU-MIC execution at the workload ratio implied by the measured
	// single-device speeds (the paper reports "the ratios that gave the
	// best load balance"), quantized to eighths.
	{
		cpuBest, _ := fig.FindRow("CPU Lock")
		micBest, _ := fig.FindRow("MIC Pipe")
		if spec.MICScheme == core.SchemeLocking {
			micBest, _ = fig.FindRow("MIC Lock")
		}
		ratio := RatioFromSpeeds(cpuBest.ExecSim, micBest.ExecSim)
		assign, err := spec.HeteroAssignRatio(spec.HeteroMethod, ratio)
		if err != nil {
			return fig, err
		}
		o0, o1 := spec.HeteroOptions()
		res, err := spec.RunHetero(assign, o0, o1)
		if err != nil {
			return fig, fmt.Errorf("bench: %s CPU-MIC: %w", spec.Name, err)
		}
		fig.Rows = append(fig.Rows, Row{Config: "CPU-MIC", ExecSim: res.ExecSeconds, CommSim: res.CommSeconds, Wall: res.WallSeconds})
		fig.note("CPU-MIC ratio used: %d:%d", ratio.A, ratio.B)
	}

	// Shape notes corresponding to the paper's §V-C observations.
	get := func(name string) float64 { r, _ := fig.FindRow(name); return r.Total() }
	fig.note("MIC Pipe/Lock speedup: %.2fx (paper: PR 2.33, BFS 0.84, SC 1.25, SSSP ~1.08, Topo 3.36)",
		get("MIC Lock")/get("MIC Pipe"))
	bestMIC := get("MIC Pipe")
	if get("MIC Lock") < bestMIC {
		bestMIC = get("MIC Lock")
	}
	fig.note("MIC framework/OMP speedup: %.2fx (paper range 1.11-4.15)", get("MIC OMP")/bestMIC)
	fig.note("CPU Lock/Pipe ratio: %.2f (paper: locking wins on CPU)", get("CPU Pipe")/get("CPU Lock"))
	fig.note("CPU OMP/framework ratio: %.2f (paper: ~1.0 on CPU)", get("CPU OMP")/get("CPU Lock"))
	bestSingle := get("CPU Lock")
	if bestMIC < bestSingle {
		bestSingle = bestMIC
	}
	fig.note("CPU-MIC speedup over best single device: %.2fx (paper range 1.20-1.41)",
		bestSingle/get("CPU-MIC"))
	fig.note("best MIC vs best CPU: %.2fx (paper: PR MIC 1.72x faster, BFS CPU 1.30x, SC CPU ~2.1x, SSSP ~equal, Topo MIC 3.32x)",
		get("CPU Lock")/bestMIC)
	return fig, nil
}

// Fig5f regenerates Figure 5(f): message-processing sub-step time with and
// without vectorization, for the three SIMD-reducible applications, on both
// devices, using the best scheme per device.
func Fig5f(w Workloads) (Figure, error) {
	fig := Figure{ID: "5f", Title: "Figure 5f: effect of SIMD processing on execution times"}
	specs := Specs(w)
	for _, name := range []string{"PageRank", "SSSP", "TopoSort"} {
		spec, err := SpecByName(specs, name)
		if err != nil {
			return fig, err
		}
		for _, dev := range []machine.DeviceSpec{machine.CPU(), machine.MIC()} {
			scheme := core.SchemeLocking
			if dev.Name == "MIC" {
				scheme = spec.MICScheme
			}
			var procTimes, totals [2]float64 // [novec, vec]
			for i, vecOn := range []bool{false, true} {
				res, err := spec.RunFramework(core.Options{Dev: dev, Scheme: scheme, Vectorized: vecOn})
				if err != nil {
					return fig, err
				}
				procTimes[i] = res.Phases.Process
				totals[i] = res.SimSeconds
				label := "novec"
				if vecOn {
					label = "vec"
				}
				fig.Rows = append(fig.Rows, Row{
					Config:  fmt.Sprintf("%s %s %s", name, dev.Name, label),
					ExecSim: res.SimSeconds,
					Extra:   map[string]float64{"msgproc": res.Phases.Process},
				})
			}
			fig.note("%s %s: msg-processing vec speedup %.2fx, whole-app gain %.1f%% (paper: CPU 2.2-2.4x / 8-13%%, MIC 5.2-7.9x / 18-23%%)",
				name, dev.Name, procTimes[0]/procTimes[1], 100*(1-totals[1]/totals[0]))
		}
	}
	return fig, nil
}

// Fig6 regenerates Figure 6: the three partitioning methods per
// application at the app's best ratio, reporting execution and
// communication time separately.
func Fig6(w Workloads) (Figure, error) {
	fig := Figure{ID: "6", Title: "Figure 6: impact of graph partitioning methods on CPU-MIC execution"}
	for _, spec := range Specs(w) {
		var totals = map[partition.Method]float64{}
		for _, method := range []partition.Method{partition.MethodRoundRobin, partition.MethodContinuous, partition.MethodHybrid} {
			assign, err := spec.HeteroAssign(method)
			if err != nil {
				return fig, err
			}
			o0, o1 := spec.HeteroOptions()
			res, err := spec.RunHetero(assign, o0, o1)
			if err != nil {
				return fig, fmt.Errorf("bench: fig6 %s %v: %w", spec.Name, method, err)
			}
			totals[method] = res.SimSeconds
			fig.Rows = append(fig.Rows, Row{
				Config:  fmt.Sprintf("%s %s", spec.Name, method),
				ExecSim: res.ExecSeconds,
				CommSim: res.CommSeconds,
				Wall:    res.WallSeconds,
			})
		}
		fig.note("%s: hybrid speedup vs continuous %.2fx, vs roundrobin %.2fx (paper: PR 1.72/1.13, BFS 1.31/1.09, SSSP 1.50/1.10, SC 1.17/1.36, Topo: continuous much slower)",
			spec.Name,
			totals[partition.MethodContinuous]/totals[partition.MethodHybrid],
			totals[partition.MethodRoundRobin]/totals[partition.MethodHybrid])
	}
	return fig, nil
}

// Table2 regenerates Table II: sequential baselines on both devices and the
// parallel efficiencies of the framework configurations.
func Table2(w Workloads) (Figure, error) {
	fig := Figure{ID: "T2", Title: "Table II: parallel efficiency obtained from the framework"}
	for _, spec := range Specs(w) {
		cpuSeq, _, err := spec.RunSeq(machine.CPU())
		if err != nil {
			return fig, err
		}
		micSeq, _, err := spec.RunSeq(machine.MIC())
		if err != nil {
			return fig, err
		}
		cpuPar, micPar, err := spec.BestSingle()
		if err != nil {
			return fig, err
		}
		ratio := RatioFromSpeeds(cpuPar.SimSeconds, micPar.SimSeconds)
		assign, err := spec.HeteroAssignRatio(spec.HeteroMethod, ratio)
		if err != nil {
			return fig, err
		}
		o0, o1 := spec.HeteroOptions()
		het, err := spec.RunHetero(assign, o0, o1)
		if err != nil {
			return fig, err
		}
		fig.Rows = append(fig.Rows,
			Row{Config: spec.Name + " CPU Seq", ExecSim: cpuSeq},
			Row{Config: spec.Name + " MIC Seq", ExecSim: micSeq},
			Row{Config: spec.Name + " CPU Multi-core", ExecSim: cpuPar.SimSeconds, Wall: cpuPar.WallSeconds},
			Row{Config: spec.Name + " MIC Many-core", ExecSim: micPar.SimSeconds, Wall: micPar.WallSeconds},
			Row{Config: spec.Name + " CPU-MIC", ExecSim: het.ExecSeconds, CommSim: het.CommSeconds, Wall: het.WallSeconds},
		)
		fig.note("%s: CPU multi-core %.1fx over CPU seq (paper 3.6-7.6), MIC many-core %.1fx over MIC seq (paper 32-129), CPU-MIC %.1fx over CPU seq (paper 6.7-15.3), MIC/CPU seq gap %.1fx (paper ~11)",
			spec.Name, cpuSeq/cpuPar.SimSeconds, micSeq/micPar.SimSeconds, cpuSeq/het.SimSeconds, micSeq/cpuSeq)
	}
	return fig, nil
}

// Format renders a figure as an aligned text table with its notes.
func Format(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "%-28s %14s %14s %12s\n", "config", "exec(sim s)", "comm(sim s)", "wall(s)")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-28s %14.6f %14.6f %12.3f", r.Config, r.ExecSim, r.CommSim, r.Wall)
		for k, v := range r.Extra {
			fmt.Fprintf(&b, "  %s=%.6f", k, v)
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
