package bench

import (
	"path/filepath"
	"testing"
)

// TestCheckedInDirectionArtifact: the repo's seeded perf artifact must parse
// under the current schema and still claim the direction win (auto message
// count no worse than push). If a change to the engine invalidates the
// numbers, regenerate with:
//
//	go run ./cmd/hetgraph-bench -scale small -only dir -artifact results/BENCH_direction.json
func TestCheckedInDirectionArtifact(t *testing.T) {
	path := filepath.Join("..", "..", "results", "BENCH_direction.json")
	a, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Figure.ID != "A8" {
		t.Fatalf("figure ID %q, want A8", a.Figure.ID)
	}
	if len(a.Figure.Rows) != 3 {
		t.Fatalf("%d rows, want push/pull/auto", len(a.Figure.Rows))
	}
}

// TestArtifactValidate covers the rejection paths ReadArtifact relies on.
func TestArtifactValidate(t *testing.T) {
	good := NewArtifact(Figure{
		ID: "A8",
		Rows: []Row{
			{Config: "push", Extra: map[string]float64{"messages": 100}},
			{Config: "pull", Extra: map[string]float64{"messages": 0}},
			{Config: "auto", Extra: map[string]float64{"messages": 50}},
		},
	}, "test", "small")
	if err := good.Validate(); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(a *Artifact)
	}{
		{"wrong schema", func(a *Artifact) { a.SchemaVersion = 99 }},
		{"no figure id", func(a *Artifact) { a.Figure.ID = "" }},
		{"no rows", func(a *Artifact) { a.Figure.Rows = nil }},
		{"unnamed row", func(a *Artifact) { a.Figure.Rows[1].Config = "" }},
		{"missing auto row", func(a *Artifact) { a.Figure.Rows[2].Config = "other" }},
		{"regressed direction win", func(a *Artifact) { a.Figure.Rows[2].Extra["messages"] = 101 }},
		{"push without messages", func(a *Artifact) { a.Figure.Rows[0].Extra["messages"] = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewArtifact(Figure{
				ID: good.Figure.ID,
				Rows: []Row{
					{Config: "push", Extra: map[string]float64{"messages": 100}},
					{Config: "pull", Extra: map[string]float64{"messages": 0}},
					{Config: "auto", Extra: map[string]float64{"messages": 50}},
				},
			}, "test", "small")
			tc.mutate(&a)
			if err := a.Validate(); err == nil {
				t.Fatal("invalid artifact accepted")
			}
		})
	}
}
