package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// ArtifactSchemaVersion is the current BENCH_*.json schema. Bump only with a
// migration note in docs/benchmarks.md; readers reject versions they do not
// know rather than guessing.
const ArtifactSchemaVersion = 1

// Artifact is the schema of a checked-in BENCH_*.json perf artifact: one
// figure plus enough provenance to judge whether a regenerated run regressed
// it. Artifacts are produced by `hetgraph-bench -artifact` and validated in
// CI by `-check-artifact`, so a perf win claimed in a PR stays reproducible
// and machine-checkable instead of living in a commit message.
type Artifact struct {
	SchemaVersion int `json:"schema_version"`
	// Generator names the tool and flags that produced the artifact.
	Generator string `json:"generator"`
	// Scale is the workload scale the figure ran at ("small" | "full").
	Scale  string `json:"scale"`
	Figure Figure `json:"figure"`
}

// NewArtifact wraps a figure in the current schema.
func NewArtifact(fig Figure, generator, scale string) Artifact {
	return Artifact{SchemaVersion: ArtifactSchemaVersion, Generator: generator, Scale: scale, Figure: fig}
}

// WriteArtifact writes the artifact as indented JSON with a trailing
// newline (diff-friendly for a checked-in file).
func WriteArtifact(path string, a Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifact reads and validates an artifact file.
func ReadArtifact(path string) (Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Artifact{}, fmt.Errorf("bench: artifact %s: %w", path, err)
	}
	if err := a.Validate(); err != nil {
		return Artifact{}, fmt.Errorf("bench: artifact %s: %w", path, err)
	}
	return a, nil
}

// Validate checks the schema and the figure-specific claims the artifact
// exists to record — each figure's acceptance bar. For the direction
// ablation (A8): auto generates no more messages than push. For the
// straggler ablation (A9): the demote-rehab run actually demoted and spent
// less simulated exec time than the unmitigated run.
func (a Artifact) Validate() error {
	if a.SchemaVersion != ArtifactSchemaVersion {
		return fmt.Errorf("schema_version %d, want %d", a.SchemaVersion, ArtifactSchemaVersion)
	}
	if a.Figure.ID == "" {
		return fmt.Errorf("figure has no ID")
	}
	if len(a.Figure.Rows) == 0 {
		return fmt.Errorf("figure %s has no rows", a.Figure.ID)
	}
	for i, r := range a.Figure.Rows {
		if r.Config == "" {
			return fmt.Errorf("figure %s row %d has no config name", a.Figure.ID, i)
		}
	}
	if a.Figure.ID == "A8" {
		push, okP := a.Figure.FindRow("push")
		auto, okA := a.Figure.FindRow("auto")
		if !okP || !okA {
			return fmt.Errorf("direction ablation misses push/auto rows")
		}
		pm, am := push.Extra["messages"], auto.Extra["messages"]
		if pm <= 0 {
			return fmt.Errorf("direction ablation push row has no message count")
		}
		if am > pm {
			return fmt.Errorf("direction ablation regressed: auto generated %.0f messages > push's %.0f", am, pm)
		}
	}
	if a.Figure.ID == "A9" {
		off, okO := a.Figure.FindRow("off")
		mit, okM := a.Figure.FindRow("demote-rehab")
		if !okO || !okM {
			return fmt.Errorf("straggler ablation misses off/demote-rehab rows")
		}
		if mit.Extra["softDegraded"] < 1 {
			return fmt.Errorf("straggler ablation never demoted: mitigation was not exercised")
		}
		if mit.ExecSim >= off.ExecSim {
			return fmt.Errorf("straggler mitigation regressed: demote-rehab exec %.3fs >= off's %.3fs",
				mit.ExecSim, off.ExecSim)
		}
	}
	return nil
}
