// Package bench is the harness that regenerates every table and figure of
// the paper's evaluation (§V) on the simulated CPU/MIC node: Figures
// 5(a)–5(e) (execution-scheme comparison per application), Figure 5(f)
// (SIMD message processing), Figure 6 (partitioning schemes), Table I (the
// worked example, checked in csb's tests), and Table II (parallel
// efficiency), plus ablation sweeps over the design choices DESIGN.md
// calls out.
//
// Reported numbers are simulated device seconds from the cost model over
// real execution counters (see internal/machine); wall-clock seconds on
// the host are included for reference only.
package bench

import (
	"fmt"

	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
)

// Workloads bundles the synthetic stand-ins for the paper's datasets.
type Workloads struct {
	// Pokec is the power-law social graph substitute (paper: 1.6M
	// vertices, 31M edges, used by PageRank/BFS/SSSP).
	Pokec *graph.CSR
	// PokecW is Pokec with uniformly random positive edge weights (SSSP).
	PokecW *graph.CSR
	// DBLP is the undirected community graph substitute (SC).
	DBLP *graph.CSR
	// DAG is the dense random DAG (TopoSort; paper: 40K vertices, 200M
	// edges — density direction preserved at reduced scale).
	DAG *graph.CSR
}

// Scale selects workload sizes.
type Scale struct {
	Name   string
	PokecN int
	DBLPN  int
	DAGN   int
	DAGM   int
}

// ScaleSmall is used by unit benches and tests (seconds per run).
func ScaleSmall() Scale {
	return Scale{Name: "small", PokecN: 20000, DBLPN: 8000, DAGN: 1200, DAGM: 700_000}
}

// ScaleFull is used by cmd/hetgraph-bench (tens of seconds per figure on
// this host).
func ScaleFull() Scale {
	return Scale{Name: "full", PokecN: 60000, DBLPN: 24000, DAGN: 2500, DAGM: 3_000_000}
}

// Load generates the workloads for a scale (deterministic seeds).
func Load(s Scale) (Workloads, error) {
	var w Workloads
	pokec, err := gen.PowerLaw(gen.DefaultPowerLaw(s.PokecN))
	if err != nil {
		return w, fmt.Errorf("bench: pokec: %w", err)
	}
	pokecW, err := gen.WithWeights(pokec, 0, 100, 4242)
	if err != nil {
		return w, fmt.Errorf("bench: pokec weights: %w", err)
	}
	dblp, err := gen.Community(gen.DefaultCommunity(s.DBLPN))
	if err != nil {
		return w, fmt.Errorf("bench: dblp: %w", err)
	}
	dag, err := gen.RandomDAG(gen.DefaultDAG(s.DAGN, s.DAGM))
	if err != nil {
		return w, fmt.Errorf("bench: dag: %w", err)
	}
	w.Pokec, w.PokecW, w.DBLP, w.DAG = pokec, pokecW, dblp, dag
	return w, nil
}
