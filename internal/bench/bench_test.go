package bench

import (
	"strings"
	"testing"

	"hetgraph/internal/core"
	"hetgraph/internal/machine"
	"hetgraph/internal/partition"
)

// The harness tests run at small scale and assert the *directional* shapes
// of the paper's headline results — who wins, not by how much. The full
// magnitudes are produced by cmd/hetgraph-bench and recorded in
// EXPERIMENTS.md.

var testWorkloads Workloads

func loadTestWorkloads(t *testing.T) Workloads {
	t.Helper()
	if testWorkloads.Pokec == nil {
		w, err := Load(ScaleSmall())
		if err != nil {
			t.Fatal(err)
		}
		testWorkloads = w
	}
	return testWorkloads
}

func TestLoadWorkloads(t *testing.T) {
	w := loadTestWorkloads(t)
	if w.Pokec == nil || w.PokecW == nil || w.DBLP == nil || w.DAG == nil {
		t.Fatal("missing workloads")
	}
	if !w.PokecW.Weighted() {
		t.Error("PokecW must be weighted")
	}
	if !w.DAG.IsDAG() {
		t.Error("DAG workload is cyclic")
	}
	if !w.DBLP.Weighted() {
		t.Error("DBLP must carry interaction weights")
	}
}

func TestSpecs(t *testing.T) {
	w := loadTestWorkloads(t)
	specs := Specs(w)
	if len(specs) != 5 {
		t.Fatalf("%d specs, want 5", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if err := s.Ratio.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.IsGeneric() != (s.Name == "SC") {
			t.Errorf("%s: IsGeneric wrong", s.Name)
		}
	}
	for _, want := range []string{"PageRank", "BFS", "SC", "SSSP", "TopoSort"} {
		if !names[want] {
			t.Errorf("missing spec %s", want)
		}
	}
	if _, err := SpecByName(specs, "PageRank"); err != nil {
		t.Error(err)
	}
	if _, err := SpecByName(specs, "nope"); err == nil {
		t.Error("found nonexistent spec")
	}
	// BFS is the one app whose best MIC scheme is locking (§V-C).
	bfs, _ := SpecByName(specs, "BFS")
	if bfs.MICScheme != core.SchemeLocking {
		t.Error("BFS must use locking on the MIC")
	}
}

func TestRatioFromSpeeds(t *testing.T) {
	if r := RatioFromSpeeds(1, 1); r.A != 4 || r.B != 4 {
		t.Errorf("equal speeds -> %d:%d, want 4:4", r.A, r.B)
	}
	if r := RatioFromSpeeds(3, 1); r.A != 2 || r.B != 6 {
		// CPU 3x slower -> CPU gets 1/4 of the work.
		t.Errorf("3:1 times -> %d:%d, want 2:6", r.A, r.B)
	}
	if r := RatioFromSpeeds(0, 1); r.A != 1 || r.B != 1 {
		t.Errorf("degenerate -> %d:%d, want 1:1", r.A, r.B)
	}
	// Extremes are clamped so neither device idles completely.
	if r := RatioFromSpeeds(1, 1000); r.A != 7 || r.B != 1 {
		t.Errorf("extreme -> %d:%d, want 7:1", r.A, r.B)
	}
}

func TestFig5PageRankShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	spec := specByName(t, "PageRank")
	fig, err := Fig5(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(fig.Rows))
	}
	get := func(name string) float64 {
		r, ok := fig.FindRow(name)
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		return r.Total()
	}
	// §V-C headline shapes for PageRank.
	if get("MIC Pipe") >= get("MIC Lock") {
		t.Errorf("MIC pipe (%v) not faster than lock (%v)", get("MIC Pipe"), get("MIC Lock"))
	}
	if get("MIC Pipe") >= get("MIC OMP") {
		t.Errorf("MIC pipe (%v) not faster than OMP (%v)", get("MIC Pipe"), get("MIC OMP"))
	}
	if get("CPU Lock") >= get("CPU Pipe") {
		t.Errorf("CPU lock (%v) not faster than pipe (%v)", get("CPU Lock"), get("CPU Pipe"))
	}
	if len(fig.Notes) == 0 || !strings.Contains(Format(fig), "note:") {
		t.Error("missing shape notes")
	}
}

func TestFig5TopoSortContention(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	spec := specByName(t, "TopoSort")
	fig, err := Fig5(spec)
	if err != nil {
		t.Fatal(err)
	}
	lock, _ := fig.FindRow("MIC Lock")
	pipe, _ := fig.FindRow("MIC Pipe")
	// At small scale contention is milder than the full-scale 3.2x, but
	// pipelining must still win clearly.
	if lock.Total() < 1.3*pipe.Total() {
		t.Errorf("TopoSort contention shape missing: lock %v < 1.3x pipe %v", lock.Total(), pipe.Total())
	}
}

func TestFig5fVectorizationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	w := loadTestWorkloads(t)
	fig, err := Fig5f(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 12 {
		t.Fatalf("%d rows, want 12 (3 apps x 2 devices x 2 modes)", len(fig.Rows))
	}
	// Vectorized message processing must beat scalar everywhere, and
	// PageRank's MIC gain must exceed its CPU gain (wider lanes).
	speedup := func(app, dev string) float64 {
		no, ok1 := fig.FindRow(app + " " + dev + " novec")
		ye, ok2 := fig.FindRow(app + " " + dev + " vec")
		if !ok1 || !ok2 {
			t.Fatalf("missing rows for %s %s", app, dev)
		}
		return no.Extra["msgproc"] / ye.Extra["msgproc"]
	}
	for _, app := range []string{"PageRank", "SSSP", "TopoSort"} {
		for _, dev := range []string{"CPU", "MIC"} {
			if s := speedup(app, dev); s <= 1 {
				t.Errorf("%s %s: vec speedup %v <= 1", app, dev, s)
			}
		}
	}
	if speedup("PageRank", "MIC") <= speedup("PageRank", "CPU") {
		t.Error("MIC vectorization gain not larger than CPU's for PageRank")
	}
}

func TestFig6HybridShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	w := loadTestWorkloads(t)
	fig, err := Fig6(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 15 {
		t.Fatalf("%d rows, want 15 (5 apps x 3 methods)", len(fig.Rows))
	}
	// PageRank on the front-loaded power-law graph: hybrid must beat
	// continuous clearly (the paper's central Fig. 6 claim), and hybrid's
	// communication must be below round-robin's.
	get := func(name string) Row {
		r, ok := fig.FindRow(name)
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		return r
	}
	hyb := get("PageRank hybrid")
	cont := get("PageRank continuous")
	rr := get("PageRank roundrobin")
	if hyb.Total() >= cont.Total() {
		t.Errorf("hybrid (%v) not faster than continuous (%v)", hyb.Total(), cont.Total())
	}
	if hyb.CommSim >= rr.CommSim {
		t.Errorf("hybrid comm (%v) not below roundrobin comm (%v)", hyb.CommSim, rr.CommSim)
	}
}

func TestTable2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	w := loadTestWorkloads(t)
	fig, err := Table2(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 25 {
		t.Fatalf("%d rows, want 25 (5 apps x 5 configs)", len(fig.Rows))
	}
	for _, app := range []string{"PageRank", "BFS", "SC", "SSSP", "TopoSort"} {
		cpuSeq, _ := fig.FindRow(app + " CPU Seq")
		micSeq, _ := fig.FindRow(app + " MIC Seq")
		cpuPar, _ := fig.FindRow(app + " CPU Multi-core")
		micPar, _ := fig.FindRow(app + " MIC Many-core")
		// Sequential gap ~11x (§V-F), parallel always beats sequential on
		// the same device, and the MIC's parallel speedup exceeds the
		// CPU's (240 threads vs 16).
		gap := micSeq.ExecSim / cpuSeq.ExecSim
		if gap < 9 || gap > 30 {
			t.Errorf("%s: MIC/CPU seq gap %v out of range", app, gap)
		}
		if cpuPar.ExecSim >= cpuSeq.ExecSim {
			t.Errorf("%s: CPU parallel not faster than sequential", app)
		}
		if micPar.ExecSim >= micSeq.ExecSim {
			t.Errorf("%s: MIC parallel not faster than sequential", app)
		}
		if micSeq.ExecSim/micPar.ExecSim <= cpuSeq.ExecSim/cpuPar.ExecSim {
			t.Errorf("%s: MIC speedup not above CPU speedup", app)
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	pr := specByName(t, "PageRank")
	topo := specByName(t, "TopoSort")

	mode, err := AblationCSBMode(topo)
	if err != nil {
		t.Fatal(err)
	}
	oto, _ := mode.FindRow("one-to-one")
	dyn, _ := mode.FindRow("dynamic")
	if dyn.Extra["vecRows"] > oto.Extra["vecRows"] {
		t.Error("dynamic allocation used more SIMD rows than one-to-one")
	}

	kfig, err := AblationGroupFactor(pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(kfig.Rows) != 3 {
		t.Fatalf("group factor rows = %d", len(kfig.Rows))
	}
	// Larger k means coarser groups and a bigger buffer.
	if kfig.Rows[0].Extra["bufMB"] > kfig.Rows[2].Extra["bufMB"] {
		t.Error("buffer should grow with k")
	}
	for _, r := range kfig.Rows {
		if r.Extra["bufMB"] > r.Extra["naiveMB"] {
			t.Errorf("%s: condensed buffer larger than naive", r.Config)
		}
	}

	split, err := AblationMoverSplit(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Rows) != 5 {
		t.Fatalf("mover split rows = %d", len(split.Rows))
	}

	blocks, err := AblationMetisBlocks(pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range blocks.Rows {
		if r.Extra["crossEdges"] <= 0 {
			t.Errorf("%s: no cross edges measured", r.Config)
		}
		if r.Extra["balanceErr"] > 0.2 {
			t.Errorf("%s: balance error %v too high", r.Config, r.Extra["balanceErr"])
		}
	}

	chunk, err := AblationChunkSize(pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range chunk.Rows {
		if r.Extra["taskFetches"] <= 0 {
			t.Errorf("%s: no fetches", r.Config)
		}
		if r.Extra["fetchNSShare"] > 10 {
			t.Errorf("%s: scheduling overhead %v%% of runtime — chunking broken", r.Config, r.Extra["fetchNSShare"])
		}
	}
}

func TestAblationGenScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	pr := specByName(t, "PageRank")
	fig, err := AblationGenScheme(pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(fig.Rows))
	}
	lock, ok := fig.FindRow("lock")
	if !ok {
		t.Fatal("no lock row")
	}
	pipe, ok := fig.FindRow("pipe")
	if !ok {
		t.Fatal("no pipe row")
	}
	batched := fig.Rows[2]
	// Per-element pipelining pays two cursor publications per message; the
	// batched handoff must pay far fewer events per message.
	if got := pipe.Extra["queueEvtPerMsg"]; got != 2 {
		t.Errorf("per-element queue events/message = %v, want 2", got)
	}
	if got := batched.Extra["queueEvtPerMsg"]; got >= 0.5 {
		t.Errorf("batched queue events/message = %v, want well below per-element 2", got)
	}
	if batched.Extra["queueOps"] != 0 || pipe.Extra["queueBatchOps"] != 0 {
		t.Error("per-element and batched op counters not disjoint across configs")
	}
	// The cost model must price the cheaper handoff: batched generation is
	// faster than per-element, which in turn beats locking on the MIC's
	// power-law workload (§V-C).
	if batched.Extra["generateSim"] >= pipe.Extra["generateSim"] {
		t.Errorf("batched generate %v not faster than per-element %v",
			batched.Extra["generateSim"], pipe.Extra["generateSim"])
	}
	if pipe.Extra["generateSim"] >= lock.Extra["generateSim"] {
		t.Errorf("pipelined generate %v not faster than locking %v on MIC",
			pipe.Extra["generateSim"], lock.Extra["generateSim"])
	}
	if batched.ExecSim >= pipe.ExecSim {
		t.Errorf("batched total sim %v not below per-element %v", batched.ExecSim, pipe.ExecSim)
	}
}

func TestFormatRendering(t *testing.T) {
	fig := Figure{ID: "x", Title: "T", Rows: []Row{{Config: "a", ExecSim: 1, Extra: map[string]float64{"k": 2}}}}
	fig.note("hello %d", 7)
	out := Format(fig)
	for _, want := range []string{"== T ==", "a", "k=2", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestHeteroMethodOverride(t *testing.T) {
	spec := specByName(t, "TopoSort")
	if spec.HeteroMethod != partition.MethodRoundRobin {
		t.Error("TopoSort must default to round-robin (layer-aligned hybrid blocks serialize devices)")
	}
	assign, err := spec.HeteroAssign(spec.HeteroMethod)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != spec.Graph.NumVertices() {
		t.Fatal("assignment length wrong")
	}
}

func TestRunSeqCountsForAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	w := loadTestWorkloads(t)
	for _, spec := range Specs(w) {
		sim, c, err := spec.RunSeq(machine.CPU())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if sim <= 0 || c.Messages == 0 {
			t.Errorf("%s: empty sequential run (sim=%v msgs=%d)", spec.Name, sim, c.Messages)
		}
	}
}

func specByName(t *testing.T, name string) AppSpec {
	t.Helper()
	spec, err := SpecByName(Specs(loadTestWorkloads(t)), name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestAblationRatioSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	fig, err := AblationRatioSweep(specByName(t, "PageRank"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 7 {
		t.Fatalf("ratio sweep rows = %d, want 7", len(fig.Rows))
	}
	// The curve must be meaningful: the best ratio beats the worst by a
	// clear margin (an imbalanced split wastes the faster device).
	best, worst := fig.Rows[0].Total(), fig.Rows[0].Total()
	for _, r := range fig.Rows {
		if r.Total() < best {
			best = r.Total()
		}
		if r.Total() > worst {
			worst = r.Total()
		}
	}
	if worst < 1.2*best {
		t.Errorf("ratio sweep flat: best %v, worst %v", best, worst)
	}
}
