// Package frontier provides the bitmap frontier representation used by the
// engine's direction-optimizing traversal (push/pull switching, after
// Beamer's hybrid BFS and the Xeon Phi vectorized-BFS line of work in
// PAPERS.md): O(1) membership tests during the bottom-up sweep and
// popcount-based occupancy for the switch heuristic.
package frontier

import (
	"math/bits"

	"hetgraph/internal/graph"
)

// Bitmap is a fixed-capacity vertex set over [0, n) backed by one uint64
// word per 64 vertices. It is not synchronized: the engine writes it
// single-threaded at the superstep boundary and reads it concurrently
// (read-only) during the pull sweep.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap creates an empty bitmap over n vertices.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		n = 0
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the capacity n the bitmap was created with.
func (b *Bitmap) Len() int { return b.n }

// Set adds v to the set.
func (b *Bitmap) Set(v graph.VertexID) { b.words[v>>6] |= 1 << (uint(v) & 63) }

// Clear removes v from the set.
func (b *Bitmap) Clear(v graph.VertexID) { b.words[v>>6] &^= 1 << (uint(v) & 63) }

// Has reports whether v is in the set.
func (b *Bitmap) Has(v graph.VertexID) bool { return b.words[v>>6]&(1<<(uint(v)&63)) != 0 }

// Count returns the set's occupancy via word-wise popcount.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ClearAll empties the set in O(n/64).
func (b *Bitmap) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// FillFrom empties the set and inserts every vertex of vs.
func (b *Bitmap) FillFrom(vs []graph.VertexID) {
	b.ClearAll()
	for _, v := range vs {
		b.Set(v)
	}
}
