package frontier

import (
	"math/rand"
	"testing"

	"hetgraph/internal/graph"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(200)
	if b.Len() != 200 || b.Count() != 0 {
		t.Fatalf("fresh bitmap: len %d count %d", b.Len(), b.Count())
	}
	for _, v := range []graph.VertexID{0, 63, 64, 127, 199} {
		b.Set(v)
		if !b.Has(v) {
			t.Fatalf("Has(%d) false after Set", v)
		}
	}
	if b.Count() != 5 {
		t.Fatalf("count %d, want 5", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 4 {
		t.Fatalf("Clear(64): has=%v count=%d", b.Has(64), b.Count())
	}
	// Setting twice is idempotent.
	b.Set(0)
	if b.Count() != 4 {
		t.Fatalf("double Set changed count to %d", b.Count())
	}
	b.ClearAll()
	if b.Count() != 0 || b.Has(0) || b.Has(199) {
		t.Fatal("ClearAll left members behind")
	}
}

func TestBitmapAgainstMapModel(t *testing.T) {
	const n = 1000
	b := NewBitmap(n)
	model := map[graph.VertexID]bool{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := graph.VertexID(rng.Intn(n))
		if rng.Intn(3) == 0 {
			b.Clear(v)
			delete(model, v)
		} else {
			b.Set(v)
			model[v] = true
		}
	}
	if b.Count() != len(model) {
		t.Fatalf("count %d, model %d", b.Count(), len(model))
	}
	for v := graph.VertexID(0); v < n; v++ {
		if b.Has(v) != model[v] {
			t.Fatalf("Has(%d)=%v, model=%v", v, b.Has(v), model[v])
		}
	}
}

func TestBitmapFillFrom(t *testing.T) {
	b := NewBitmap(128)
	b.Set(5)
	b.FillFrom([]graph.VertexID{1, 64, 127, 1})
	if b.Has(5) {
		t.Fatal("FillFrom did not clear previous contents")
	}
	if b.Count() != 3 || !b.Has(1) || !b.Has(64) || !b.Has(127) {
		t.Fatalf("FillFrom: count %d", b.Count())
	}
}

func TestBitmapZeroLength(t *testing.T) {
	b := NewBitmap(0)
	if b.Count() != 0 || b.Len() != 0 {
		t.Fatal("zero-length bitmap not empty")
	}
	b.ClearAll()
}
