// Package sched implements the intra-device dynamic load balancing of
// §IV-D: task units (vertices, vertex blocks, or vector arrays) are handed
// out through a shared scheduling offset that threads advance atomically,
// several tasks at a time "to lower the task retrieving frequency and thus
// the scheduling overhead".
package sched

import (
	"fmt"
	"sync/atomic"
)

// Scheduler hands out half-open index ranges [lo, hi) over a task space of
// `total` units in chunks of `chunk`. It is safe for concurrent use.
type Scheduler struct {
	total   int64
	chunk   int64
	next    atomic.Int64
	fetches atomic.Int64
}

// New creates a scheduler over total task units with the given chunk size.
func New(total, chunk int64) (*Scheduler, error) {
	if total < 0 {
		return nil, fmt.Errorf("sched: negative total %d", total)
	}
	if chunk < 1 {
		return nil, fmt.Errorf("sched: chunk %d < 1", chunk)
	}
	return &Scheduler{total: total, chunk: chunk}, nil
}

// Next returns the next chunk of work. ok is false when the task space is
// exhausted.
func (s *Scheduler) Next() (lo, hi int64, ok bool) {
	lo = s.next.Add(s.chunk) - s.chunk
	if lo >= s.total {
		return 0, 0, false
	}
	s.fetches.Add(1)
	hi = lo + s.chunk
	if hi > s.total {
		hi = s.total
	}
	return lo, hi, true
}

// Fetches returns how many chunks were handed out; the cost model prices
// each at the device's atomic fetch cost.
func (s *Scheduler) Fetches() int64 { return s.fetches.Load() }

// Total returns the task-space size.
func (s *Scheduler) Total() int64 { return s.total }

// Reset rewinds the scheduler for reuse in the next step.
func (s *Scheduler) Reset(total int64) {
	s.total = total
	s.next.Store(0)
	s.fetches.Store(0)
}

// ChunkFor picks a chunk size that amortizes fetch overhead while keeping
// roughly 8 chunks per thread for balance, clamped to [1, 4096]. This is
// the heuristic the engine uses for all three steps.
func ChunkFor(total int64, threads int) int64 {
	if threads < 1 {
		threads = 1
	}
	c := total / int64(threads*8)
	if c < 1 {
		c = 1
	}
	if c > 4096 {
		c = 4096
	}
	return c
}
