package sched

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 1); err == nil {
		t.Error("accepted negative total")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("accepted zero chunk")
	}
}

func TestSequentialCoverage(t *testing.T) {
	s, err := New(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		lo, hi, ok := s.Next()
		if !ok {
			break
		}
		for i := lo; i < hi; i++ {
			got = append(got, i)
		}
	}
	if len(got) != 10 {
		t.Fatalf("covered %d units, want 10", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("unit %d out of order: %d", i, v)
		}
	}
	if s.Fetches() != 4 {
		t.Errorf("Fetches = %d, want 4 (3+3+3+1)", s.Fetches())
	}
	if s.Total() != 10 {
		t.Errorf("Total = %d", s.Total())
	}
}

func TestEmptyTotal(t *testing.T) {
	s, _ := New(0, 5)
	if _, _, ok := s.Next(); ok {
		t.Fatal("empty scheduler handed out work")
	}
	if s.Fetches() != 0 {
		t.Fatal("empty fetch counted")
	}
}

func TestConcurrentExactlyOnce(t *testing.T) {
	const total, chunk, workers = 100000, 7, 8
	s, _ := New(total, chunk)
	seen := make([]int32, total)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, 0, total/workers)
			for {
				lo, hi, ok := s.Next()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					local = append(local, i)
				}
			}
			mu.Lock()
			for _, i := range local {
				seen[i]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("unit %d scheduled %d times", i, c)
		}
	}
}

func TestReset(t *testing.T) {
	s, _ := New(5, 2)
	for {
		if _, _, ok := s.Next(); !ok {
			break
		}
	}
	s.Reset(4)
	lo, hi, ok := s.Next()
	if !ok || lo != 0 || hi != 2 {
		t.Fatalf("after Reset: %d %d %v", lo, hi, ok)
	}
	if s.Fetches() != 1 {
		t.Fatalf("Fetches after reset = %d", s.Fetches())
	}
}

func TestChunkFor(t *testing.T) {
	if c := ChunkFor(0, 16); c != 1 {
		t.Errorf("ChunkFor(0,16) = %d, want 1", c)
	}
	if c := ChunkFor(1_000_000_000, 16); c != 4096 {
		t.Errorf("huge total chunk = %d, want cap 4096", c)
	}
	if c := ChunkFor(1280, 16); c != 10 {
		t.Errorf("ChunkFor(1280,16) = %d, want 10", c)
	}
	if c := ChunkFor(100, 0); c < 1 {
		t.Errorf("degenerate threads chunk = %d", c)
	}
}

// property: the scheduler covers [0,total) exactly once for any chunk size.
func TestQuickCoverage(t *testing.T) {
	f := func(totalRaw, chunkRaw uint16) bool {
		total := int64(totalRaw % 2000)
		chunk := int64(chunkRaw%50) + 1
		s, err := New(total, chunk)
		if err != nil {
			return false
		}
		var count int64
		prevHi := int64(0)
		for {
			lo, hi, ok := s.Next()
			if !ok {
				break
			}
			if lo != prevHi || hi <= lo || hi > total {
				return false
			}
			prevHi = hi
			count += hi - lo
		}
		return count == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFetchesCountedUnderConcurrency(t *testing.T) {
	s, _ := New(10000, 100)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, _, ok := s.Next(); !ok {
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Fetches() != 100 {
		t.Fatalf("fetches = %d, want 100", s.Fetches())
	}
}
