package checkpoint

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem seam the durable Store writes through. Production
// code uses OSFS; tests substitute failing or recording implementations to
// exercise every error path of the commit protocol without touching a real
// disk fault.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens a file for writing (the store passes os.O_WRONLY |
	// os.O_CREATE | os.O_TRUNC).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
}

// File is the writable-file subset the Store needs: sequential writes, an
// fsync, and a close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
