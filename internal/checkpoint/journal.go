package checkpoint

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal is an append-only durable record log living next to the checkpoint
// store: the serve daemon journals each job's spec and state transitions
// through it so a kill -9'd process can replay them on restart. The payloads
// are opaque to this package — callers define their own record schema.
//
// On-disk layout is a single file
//
//	<dir>/JOURNAL
//
// holding a header line followed by framed records:
//
//	HGJN 1\n
//	[uint32 BE payload length][payload][uint32 BE CRC32C of payload] ...
//
// Every Append writes one frame and fsyncs before returning, so an
// acknowledged record survives a crash. A torn tail — a frame cut short by
// the crash, or one whose checksum fails — is detected at open time and
// truncated away; every frame before it replays intact. Like the Store,
// all I/O goes through the FS seam so tests can inject failures.
type Journal struct {
	dir  string
	fsys FS

	mu      sync.Mutex
	f       File
	records [][]byte
	closed  bool
}

const (
	journalName   = "JOURNAL"
	journalHeader = "HGJN 1\n"
	// journalMaxRecord bounds a single record so a corrupt length prefix
	// cannot make replay attempt a multi-gigabyte allocation.
	journalMaxRecord = 1 << 20
)

// OpenJournal opens (creating if needed) the journal in dir. An existing
// journal is replayed: intact records become Records(), and a torn tail is
// repaired by atomically rewriting the file without it. The directory is
// created if missing.
func OpenJournal(dir string, fsys FS) (*Journal, error) {
	if dir == "" {
		return nil, &StoreError{Op: "open", Path: dir, Err: fmt.Errorf("empty journal directory")}
	}
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, &StoreError{Op: "mkdir", Path: dir, Err: err}
	}
	j := &Journal{dir: dir, fsys: fsys}
	path := j.path()
	records, torn, err := j.replay()
	if err != nil {
		return nil, err
	}
	j.records = records
	if torn {
		// Rewrite without the torn tail so the append handle starts at a
		// clean frame boundary.
		if err := j.rewrite(records); err != nil {
			return nil, err
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, &StoreError{Op: "open", Path: path, Err: err}
	}
	j.f = f
	if len(records) == 0 && !torn {
		// Fresh file (or empty one): make sure the header is present.
		if st, err := fsys.ReadFile(path); err != nil || len(st) == 0 {
			if _, err := f.Write([]byte(journalHeader)); err != nil {
				f.Close()
				return nil, &StoreError{Op: "write", Path: path, Err: err}
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, &StoreError{Op: "sync", Path: path, Err: err}
			}
		}
	}
	return j, nil
}

func (j *Journal) path() string { return filepath.Join(j.dir, journalName) }

// Records returns the records replayed at open plus every successful Append
// since, oldest first. The returned slices alias the journal's buffers; do
// not mutate them.
func (j *Journal) Records() [][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([][]byte(nil), j.records...)
}

// Append frames payload, writes it, and fsyncs. When it returns nil the
// record is durable; any failure is a *StoreError and the journal file keeps
// every previously acknowledged record (a partial frame from a failed write
// is truncated at the next open).
func (j *Journal) Append(payload []byte) error {
	if len(payload) > journalMaxRecord {
		return &StoreError{Op: "append", Path: j.path(), Err: fmt.Errorf("record %d bytes exceeds %d", len(payload), journalMaxRecord)}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.f == nil {
		return &StoreError{Op: "append", Path: j.path(), Err: os.ErrClosed}
	}
	frame := make([]byte, 4+len(payload)+4)
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	binary.BigEndian.PutUint32(frame[4+len(payload):], Checksum(payload))
	if _, err := j.f.Write(frame); err != nil {
		return &StoreError{Op: "write", Path: j.path(), Err: err}
	}
	if err := j.f.Sync(); err != nil {
		return &StoreError{Op: "sync", Path: j.path(), Err: err}
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	j.records = append(j.records, cp)
	return nil
}

// Compact atomically replaces the journal's contents with the given records
// (temp file + fsync + rename, like a store commit) and reopens the append
// handle. Callers use it after replay to drop transitions that no longer
// matter (e.g. per-job histories collapsed to their final state).
func (j *Journal) Compact(records [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return &StoreError{Op: "compact", Path: j.path(), Err: os.ErrClosed}
	}
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	if err := j.rewrite(records); err != nil {
		return err
	}
	f, err := j.fsys.OpenFile(j.path(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return &StoreError{Op: "open", Path: j.path(), Err: err}
	}
	j.f = f
	j.records = make([][]byte, len(records))
	for i, r := range records {
		cp := make([]byte, len(r))
		copy(cp, r)
		j.records[i] = cp
	}
	return nil
}

// Close releases the append handle. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return &StoreError{Op: "close", Path: j.path(), Err: err}
	}
	return nil
}

// rewrite writes header+records to a temp file, fsyncs, and renames it over
// the journal. Caller holds j.mu (or the journal is not yet shared).
func (j *Journal) rewrite(records [][]byte) error {
	final := j.path()
	tmp := final + ".tmp"
	f, err := j.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return &StoreError{Op: "create", Path: tmp, Err: err}
	}
	write := func(b []byte) error {
		_, err := f.Write(b)
		return err
	}
	werr := write([]byte(journalHeader))
	for _, r := range records {
		if werr != nil {
			break
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(r)))
		if werr = write(hdr[:]); werr == nil {
			if werr = write(r); werr == nil {
				var crc [4]byte
				binary.BigEndian.PutUint32(crc[:], Checksum(r))
				werr = write(crc[:])
			}
		}
	}
	if werr != nil {
		f.Close()
		j.fsys.Remove(tmp)
		return &StoreError{Op: "write", Path: tmp, Err: werr}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		j.fsys.Remove(tmp)
		return &StoreError{Op: "sync", Path: tmp, Err: err}
	}
	if err := f.Close(); err != nil {
		j.fsys.Remove(tmp)
		return &StoreError{Op: "close", Path: tmp, Err: err}
	}
	if err := j.fsys.Rename(tmp, final); err != nil {
		j.fsys.Remove(tmp)
		return &StoreError{Op: "rename", Path: final, Err: err}
	}
	return nil
}

// replay reads the journal file and decodes every intact frame. It reports
// whether a torn tail (truncated frame, bad checksum, or bad header) was
// found — everything from the first damaged byte on is discarded. A missing
// file replays as empty.
func (j *Journal) replay() (records [][]byte, torn bool, err error) {
	b, rerr := j.fsys.ReadFile(j.path())
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, false, nil
		}
		return nil, false, &StoreError{Op: "read", Path: j.path(), Err: rerr}
	}
	if len(b) == 0 {
		return nil, false, nil
	}
	if len(b) < len(journalHeader) || string(b[:len(journalHeader)]) != journalHeader {
		// Unrecognizable file: treat the whole thing as torn rather than
		// guessing at frame boundaries.
		return nil, true, nil
	}
	off := len(journalHeader)
	for off < len(b) {
		if off+4 > len(b) {
			return records, true, nil
		}
		n := int(binary.BigEndian.Uint32(b[off:]))
		if n > journalMaxRecord || off+4+n+4 > len(b) {
			return records, true, nil
		}
		payload := b[off+4 : off+4+n]
		crc := binary.BigEndian.Uint32(b[off+4+n:])
		if Checksum(payload) != crc {
			return records, true, nil
		}
		cp := make([]byte, n)
		copy(cp, payload)
		records = append(records, cp)
		off += 4 + n + 4
	}
	return records, false, nil
}
