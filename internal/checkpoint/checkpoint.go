// Package checkpoint provides superstep-boundary checkpointing for the
// heterogeneous runtime. A checkpoint captures the application's vertex
// state plus every rank's next-superstep frontier at a point where no rank
// is mutating state, so that after a device failure the surviving ranks can
// restore the last checkpoint, absorb the dead ranks' partitions, and finish
// the run degraded.
//
// The capture point is an N-party barrier (Coordinator) placed after the
// vertex-update step: all live members arrive, the lowest-ranked member
// snapshots the shared state arrays while the others are parked, and then
// releases them. Because the BSP loop's only state writers are the update
// steps, and every member has finished update for the superstep when it
// arrives, the snapshot is a consistent global cut. The barrier degrades
// safely: a rank that dies marks itself dead and wakes any member waiting at
// the barrier, and an optional deadline bounds the wait for a silently
// stalled member. SetMembers shrinks (or re-grows) the barrier when the
// supervisor changes the live membership.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"sync"
	"time"

	"hetgraph/internal/graph"
	"hetgraph/internal/metrics"
)

// Snapshotter is implemented by applications that support checkpointing:
// Snapshot serializes the full vertex state, Restore replaces it. The
// built-in float32 applications (PageRank, BFS, SSSP, ConnectedComponents)
// implement it.
type Snapshotter interface {
	// Snapshot returns an opaque serialization of the application's vertex
	// state. It is called only when no update step is running.
	Snapshot() ([]byte, error)
	// Restore replaces the application's vertex state from a Snapshot
	// payload, recomputing any derived state.
	Restore(state []byte) error
}

// Snapshot is one superstep-boundary checkpoint.
type Snapshot struct {
	// Superstep is the number of completed supersteps at capture: restoring
	// this snapshot resumes the run at superstep Superstep.
	Superstep int64
	// State is the application's serialized vertex state.
	State []byte
	// Frontier holds each rank's active set for superstep Superstep,
	// indexed by rank (nil for ranks that were dead at capture).
	Frontier [][]graph.VertexID
}

// MergedFrontier returns all ranks' frontiers joined — the active set the
// surviving devices continue with. Ownership partitions the vertex space, so
// the union is concatenation.
func (s *Snapshot) MergedFrontier() []graph.VertexID {
	total := 0
	for _, f := range s.Frontier {
		total += len(f)
	}
	out := make([]graph.VertexID, 0, total)
	for _, f := range s.Frontier {
		out = append(out, f...)
	}
	return out
}

// Binary checkpoint format: magic, version, superstep, the frontiers, then
// the state blob. All integers little-endian. Version 2 holds exactly two
// frontiers (the classic CPU+MIC pair) and appends a CRC32C (Castagnoli)
// checksum of every preceding byte, so the durable store can detect torn or
// bit-rotted on-disk snapshots; version 1 streams (written by earlier
// releases' in-memory encoder) still decode. Version 3 prefixes the frontier
// list with its count, carrying any device-group size; two-rank snapshots
// keep encoding as v2 so their on-disk bytes are unchanged.
const (
	snapMagic    = 0x4847_434b // "HGCK"
	snapVersion1 = 1
	snapVersion2 = 2
	snapVersion3 = 3
)

// castagnoli is the CRC32C polynomial table shared by the v2/v3 snapshot
// trailer and the store manifest.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC32C checksum the v2/v3 formats and the store
// manifest use.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Encode serializes the snapshot to the current checksummed binary
// checkpoint format: v2 for snapshots of up to two frontiers (byte-identical
// to earlier releases), v3 for larger device groups.
func (s *Snapshot) Encode() []byte {
	version := byte(snapVersion2)
	if len(s.Frontier) > 2 {
		version = snapVersion3
	}
	b := s.encodeBody(version)
	return binary.LittleEndian.AppendUint32(b, Checksum(b))
}

// EncodeV1 serializes the snapshot to the legacy v1 format without the
// checksum trailer. New code writes v2/v3; this exists so compatibility
// tests (and tools replaying old captures) can produce v1 streams. Only the
// first two frontiers are representable in v1.
func (s *Snapshot) EncodeV1() []byte { return s.encodeBody(snapVersion1) }

func (s *Snapshot) encodeBody(version byte) []byte {
	ids := 0
	for _, f := range s.Frontier {
		ids += len(f)
	}
	size := 4 + 1 + 8 + 4 + 4*len(s.Frontier) + 4*ids + 4 + len(s.State) + 4
	b := make([]byte, 0, size)
	b = binary.LittleEndian.AppendUint32(b, snapMagic)
	b = append(b, version)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Superstep))
	frontiers := s.Frontier
	if version != snapVersion3 {
		// v1/v2 carry exactly two frontiers; pad or truncate.
		padded := make([][]graph.VertexID, 2)
		copy(padded, frontiers)
		frontiers = padded
	} else {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(frontiers)))
	}
	for _, f := range frontiers {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f)))
		for _, v := range f {
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.State)))
	b = append(b, s.State...)
	return b
}

// Decode parses a snapshot from the binary checkpoint format, accepting the
// checksummed v2/v3 framings and the legacy v1 framing. A v2/v3 stream
// whose trailer does not match the CRC32C of its body is rejected.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < 4+1+8 {
		return nil, errors.New("checkpoint: truncated header")
	}
	if binary.LittleEndian.Uint32(b) != snapMagic {
		return nil, errors.New("checkpoint: bad magic")
	}
	switch b[4] {
	case snapVersion1:
	case snapVersion2, snapVersion3:
		if len(b) < 4+1+8+4 {
			return nil, errors.New("checkpoint: truncated v2 trailer")
		}
		body, trailer := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
		if got := Checksum(body); got != trailer {
			return nil, fmt.Errorf("checkpoint: checksum mismatch: body CRC32C %08x, trailer %08x", got, trailer)
		}
		b = body
	default:
		return nil, fmt.Errorf("checkpoint: unsupported version %d", b[4])
	}
	s := &Snapshot{Superstep: int64(binary.LittleEndian.Uint64(b[5:]))}
	off := 13
	numFrontiers := 2
	if b[4] == snapVersion3 {
		if len(b) < off+4 {
			return nil, errors.New("checkpoint: truncated frontier count")
		}
		numFrontiers = int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if numFrontiers < 0 || numFrontiers > len(b)/4 {
			return nil, fmt.Errorf("checkpoint: implausible frontier count %d", numFrontiers)
		}
	}
	// Pad to the two-rank minimum so Frontier[0]/Frontier[1] are always
	// addressable on a decoded snapshot.
	alloc := numFrontiers
	if alloc < 2 {
		alloc = 2
	}
	s.Frontier = make([][]graph.VertexID, alloc)
	for r := 0; r < numFrontiers; r++ {
		if len(b) < off+4 {
			return nil, errors.New("checkpoint: truncated frontier length")
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if n < 0 || len(b) < off+4*n {
			return nil, errors.New("checkpoint: truncated frontier")
		}
		if n > 0 {
			f := make([]graph.VertexID, n)
			for i := range f {
				f[i] = graph.VertexID(binary.LittleEndian.Uint32(b[off+4*i:]))
			}
			s.Frontier[r] = f
		}
		off += 4 * n
	}
	if len(b) < off+4 {
		return nil, errors.New("checkpoint: truncated state length")
	}
	n := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if len(b) != off+n {
		return nil, fmt.Errorf("checkpoint: state is %d bytes, header says %d", len(b)-off, n)
	}
	if n > 0 {
		s.State = append([]byte(nil), b[off:]...)
	}
	return s, nil
}

// EncodeF32 serializes a float32 slice (little-endian IEEE 754 bits) — a
// helper for Snapshotter implementations whose state is float32 arrays.
func EncodeF32(xs []float32) []byte {
	b := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(x))
	}
	return b
}

// DecodeF32 parses a float32 slice written by EncodeF32.
func DecodeF32(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("checkpoint: float32 payload length %d not a multiple of 4", len(b))
	}
	xs := make([]float32, len(b)/4)
	for i := range xs {
		xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return xs, nil
}

// EncodeI32 serializes an int32 slice little-endian.
func EncodeI32(xs []int32) []byte {
	b := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint32(b, uint32(x))
	}
	return b
}

// DecodeI32 parses an int32 slice written by EncodeI32.
func DecodeI32(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("checkpoint: int32 payload length %d not a multiple of 4", len(b))
	}
	xs := make([]int32, len(b)/4)
	for i := range xs {
		xs[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return xs, nil
}

// ErrPeerDead is returned from Checkpoint when another rank died (or
// stalled past the deadline) instead of arriving at the barrier.
var ErrPeerDead = errors.New("checkpoint: peer rank died before the checkpoint barrier")

// arrival is one non-capturing member's barrier entry.
type arrival struct {
	rank      int
	completed int64
	frontier  []graph.VertexID
}

// Coordinator runs the N-party checkpoint barrier for one heterogeneous
// run. The lowest live rank is the capturing side; the other members park
// at the barrier while it snapshots.
type Coordinator struct {
	every   int64
	ranks   int
	state   Snapshotter
	timeout time.Duration

	// arrive carries the waiters' frontiers to the capturer; release
	// carries the capture result back. Both are buffered to the group size
	// so a member whose peers died can still deposit and fail fast on the
	// dead channel instead of blocking forever.
	arrive  chan arrival
	release chan error

	deadOnce sync.Once
	deadCh   chan struct{}

	// memMu guards members, the ranks currently taking part in the
	// barrier. The supervisor shrinks it on degradation and restores it on
	// rejoin, always between segments.
	memMu   sync.Mutex
	members []int

	// store, when non-nil, makes every captured snapshot durable: capture
	// commits it to disk and fails (wrapping *StoreError) when the commit
	// does, so a broken storage path aborts the run like a crash instead of
	// silently continuing without durability.
	store *Store

	// sink, when non-nil, receives one timestamped event per capture (and
	// per failed capture), with the wall-clock cost of the snapshot plus the
	// durable commit.
	sink metrics.Sink

	mu     sync.Mutex
	latest *Snapshot
}

// NewCoordinator creates a two-party coordinator (the classic CPU+MIC pair)
// that checkpoints every `every` completed supersteps. timeout bounds each
// barrier wait (0 = unbounded, relying on dead-rank notification alone).
func NewCoordinator(state Snapshotter, every int, timeout time.Duration) (*Coordinator, error) {
	return NewGroupCoordinator(state, 2, every, timeout)
}

// NewGroupCoordinator creates a coordinator for an N-rank device group that
// checkpoints every `every` completed supersteps. timeout bounds each
// barrier wait (0 = unbounded, relying on dead-rank notification alone).
func NewGroupCoordinator(state Snapshotter, ranks, every int, timeout time.Duration) (*Coordinator, error) {
	if state == nil {
		return nil, errors.New("checkpoint: nil snapshotter")
	}
	if every < 1 {
		return nil, fmt.Errorf("checkpoint: interval %d < 1", every)
	}
	if ranks < 1 {
		return nil, fmt.Errorf("checkpoint: ranks %d < 1", ranks)
	}
	members := make([]int, ranks)
	for r := range members {
		members[r] = r
	}
	return &Coordinator{
		every:   int64(every),
		ranks:   ranks,
		state:   state,
		timeout: timeout,
		arrive:  make(chan arrival, ranks),
		release: make(chan error, ranks),
		deadCh:  make(chan struct{}),
		members: members,
	}, nil
}

// SetStore attaches a durable store: every subsequent capture is committed
// to disk. Call before the run starts.
func (c *Coordinator) SetStore(s *Store) { c.store = s }

// SetSink attaches a metrics sink that receives checkpoint events. Call
// before the run starts; nil disables event emission.
func (c *Coordinator) SetSink(s metrics.Sink) { c.sink = s }

// SetMembers replaces the live membership of the barrier — the sorted set of
// ranks expected to arrive. Supervisor-only: call between run segments.
func (c *Coordinator) SetMembers(members []int) {
	m := append([]int(nil), members...)
	sort.Ints(m)
	c.memMu.Lock()
	c.members = m
	c.memMu.Unlock()
}

// emit records a checkpoint event on the sink, if any.
func (c *Coordinator) emit(kind string, completed int64, wallNS int64, detail string) {
	if c.sink == nil {
		return
	}
	c.sink.RecordEvent(metrics.Event{
		UnixNano: time.Now().UnixNano(), Kind: kind, Rank: -1,
		Superstep: completed, WallNS: wallNS, Detail: detail,
	})
}

// Due reports whether a checkpoint is taken after `completed` supersteps.
func (c *Coordinator) Due(completed int64) bool {
	return completed > 0 && completed%c.every == 0
}

// Initial captures the superstep-0 snapshot before the rank loops start
// (single-threaded), guaranteeing recovery is always possible. frontiers are
// positional by rank.
func (c *Coordinator) Initial(frontiers ...[]graph.VertexID) error {
	return c.InitialAt(0, frontiers...)
}

// InitialAt is Initial for a run that cold-starts at a restored superstep:
// the pre-loop snapshot carries the restored state and frontiers, so a
// failure before the first new boundary checkpoint still has something to
// fall back to. frontiers are positional by rank; missing trailing ranks
// get empty frontiers.
func (c *Coordinator) InitialAt(completed int64, frontiers ...[]graph.VertexID) error {
	if len(frontiers) > c.ranks {
		return fmt.Errorf("checkpoint: %d frontiers for a %d-rank group", len(frontiers), c.ranks)
	}
	byRank := make([][]graph.VertexID, c.ranks)
	copy(byRank, frontiers)
	return c.capture(completed, byRank)
}

// Checkpoint is the per-rank barrier call, made by every live member after
// it finishes the update step of superstep completed-1. frontier is the
// caller's active set for superstep `completed`. It returns ErrPeerDead
// (possibly wrapped) when another member never arrives.
func (c *Coordinator) Checkpoint(rank int, completed int64, frontier []graph.VertexID) error {
	c.memMu.Lock()
	members := append([]int(nil), c.members...)
	c.memMu.Unlock()
	capturer := members[0]
	waiters := len(members) - 1

	var timeoutC <-chan time.Time
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	if rank != capturer {
		// The deposit cannot block (arrive is buffered to the group size),
		// so a waiter whose capturer died fails fast at the release wait.
		c.arrive <- arrival{rank: rank, completed: completed, frontier: frontier}
		select {
		case err := <-c.release:
			return err
		case <-c.deadCh:
			return ErrPeerDead
		case <-timeoutC:
			return fmt.Errorf("checkpoint: barrier wait exceeded %s: %w", c.timeout, ErrPeerDead)
		}
	}
	frontiers := make([][]graph.VertexID, c.ranks)
	frontiers[rank] = frontier
	var barrierErr error
	for i := 0; i < waiters; i++ {
		select {
		case a := <-c.arrive:
			if a.completed != completed && barrierErr == nil {
				barrierErr = fmt.Errorf("checkpoint: barrier disagreement: rank %d arrived at superstep %d, rank %d at superstep %d",
					rank, completed, a.rank, a.completed)
			}
			frontiers[a.rank] = a.frontier
		case <-c.deadCh:
			return ErrPeerDead
		case <-timeoutC:
			return fmt.Errorf("checkpoint: barrier wait exceeded %s: %w", c.timeout, ErrPeerDead)
		}
	}
	// Every waiter is parked in the release wait; no update step is running
	// anywhere, so the shared state arrays are quiescent.
	err := barrierErr
	if err == nil {
		err = c.capture(completed, frontiers)
	}
	for i := 0; i < waiters; i++ {
		select {
		case c.release <- err:
		case <-c.deadCh:
			return ErrPeerDead
		}
	}
	return err
}

// capture snapshots state and stores the checkpoint. frontiers is indexed
// by rank and already sized to the group.
func (c *Coordinator) capture(completed int64, frontiers [][]graph.VertexID) error {
	var start time.Time
	if c.sink != nil {
		start = time.Now()
	}
	state, err := c.state.Snapshot()
	if err != nil {
		err = fmt.Errorf("checkpoint: snapshot failed: %w", err)
		c.emit(metrics.EventCheckpointFailed, completed, elapsedNS(start, c.sink), err.Error())
		return err
	}
	snap := &Snapshot{Superstep: completed, State: state}
	snap.Frontier = make([][]graph.VertexID, len(frontiers))
	for r, f := range frontiers {
		snap.Frontier[r] = append([]graph.VertexID(nil), f...)
	}
	c.mu.Lock()
	c.latest = snap
	c.mu.Unlock()
	gen := int64(-1)
	if c.store != nil {
		g, err := c.store.Commit(snap)
		if err != nil {
			err = fmt.Errorf("checkpoint: durable commit of superstep %d failed: %w", completed, err)
			c.emit(metrics.EventCheckpointFailed, completed, elapsedNS(start, c.sink), err.Error())
			return err
		}
		gen = int64(g)
	}
	if c.sink != nil {
		detail := fmt.Sprintf("superstep %d, %d state bytes", completed, len(state))
		if gen >= 0 {
			detail += fmt.Sprintf(", durable generation %d", gen)
		}
		c.emit(metrics.EventCheckpoint, completed, time.Since(start).Nanoseconds(), detail)
	}
	return nil
}

// elapsedNS returns nanoseconds since start, or 0 when no sink is attached
// (start is the zero time in that case).
func elapsedNS(start time.Time, sink metrics.Sink) int64 {
	if sink == nil {
		return 0
	}
	return time.Since(start).Nanoseconds()
}

// MarkDead records that a rank died, waking any member waiting at the
// barrier and failing all future barrier calls.
func (c *Coordinator) MarkDead(rank int) {
	c.deadOnce.Do(func() { close(c.deadCh) })
}

// Reopen re-arms a coordinator whose barrier was torn down by MarkDead so
// the N-party barrier works again after a membership change. Leftover
// deposits and release results of the torn-down barrier are drained.
// Supervisor-only: call it between run segments, when no rank goroutine is
// blocked at the barrier — reopening while a barrier wait is parked on the
// old dead channel would strand it.
func (c *Coordinator) Reopen() {
	c.deadOnce = sync.Once{}
	c.deadCh = make(chan struct{})
	for {
		select {
		case <-c.arrive:
		case <-c.release:
		default:
			return
		}
	}
}

// Latest returns the most recent checkpoint (nil if none was taken).
func (c *Coordinator) Latest() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latest
}

// Restore applies the latest checkpoint's state to the application and
// returns the snapshot; it is called single-threaded, after the rank loops
// have exited.
func (c *Coordinator) Restore() (*Snapshot, error) {
	snap := c.Latest()
	if snap == nil {
		return nil, errors.New("checkpoint: no checkpoint to restore")
	}
	if err := c.state.Restore(snap.State); err != nil {
		return nil, fmt.Errorf("checkpoint: restore failed: %w", err)
	}
	return snap, nil
}
