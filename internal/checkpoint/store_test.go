package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetgraph/internal/fault"
	"hetgraph/internal/graph"
)

func testSnap(step int64) *Snapshot {
	s := &Snapshot{Superstep: step, State: []byte{byte(step), 1, 2, 3}, Frontier: make([][]graph.VertexID, 2)}
	s.Frontier[0] = []graph.VertexID{graph.VertexID(step), 7}
	s.Frontier[1] = []graph.VertexID{9}
	return s
}

func TestStoreCommitLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(1); step <= 2; step++ {
		if _, err := st.Commit(testSnap(step)); err != nil {
			t.Fatal(err)
		}
	}
	snap, gen, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || snap.Superstep != 2 {
		t.Fatalf("loaded gen %d superstep %d, want 2/2", gen, snap.Superstep)
	}
	if len(snap.Frontier[0]) != 2 || snap.Frontier[0][0] != 2 {
		t.Fatalf("bad frontier %v", snap.Frontier[0])
	}
	// The commit protocol never leaves temp files behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestStoreRetentionPrunes(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(1); step <= 5; step++ {
		if _, err := st.Commit(testSnap(step)); err != nil {
			t.Fatal(err)
		}
	}
	gens := st.Generations()
	if len(gens) != 2 || gens[0].Gen != 5 || gens[1].Gen != 4 {
		t.Fatalf("retained %+v, want gens 5 and 4", gens)
	}
	var ckpts int
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "ckpt-") {
			ckpts++
		}
	}
	if ckpts != 2 {
		t.Fatalf("%d checkpoint files on disk, want 2", ckpts)
	}
}

func TestStoreRetainBelowTwoRejected(t *testing.T) {
	if _, err := OpenStore(t.TempDir(), StoreOptions{Retain: 1}); err == nil {
		t.Fatal("retain 1 accepted; corruption fallback needs a spare generation")
	}
}

func TestStoreLoadFallsBackPastCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(1); step <= 3; step++ {
		if _, err := st.Commit(testSnap(step)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest generation's file in place.
	newest := st.Generations()[0]
	path := filepath.Join(dir, newest.File)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, gen, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || snap.Superstep != 2 {
		t.Fatalf("loaded gen %d superstep %d, want fallback to 2/2", gen, snap.Superstep)
	}
}

func TestStoreLoadScansDirWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(1); step <= 2; step++ {
		if _, err := st.Commit(testSnap(step)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, gen, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || snap.Superstep != 2 {
		t.Fatalf("dir-scan load gave gen %d superstep %d, want 2/2", gen, snap.Superstep)
	}
	// Numbering continues past the scanned generations.
	if g, err := st2.Commit(testSnap(3)); err != nil || g != 3 {
		t.Fatalf("commit after rescan: gen %d, err %v, want 3/nil", g, err)
	}
}

func TestStoreLoadEmptyDirIsErrNoCheckpoint(t *testing.T) {
	st, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load on empty dir: %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreOpenUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits do not bind")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	_, err := OpenStore(dir, StoreOptions{})
	var serr *StoreError
	if !errors.As(err, &serr) {
		t.Fatalf("OpenStore on read-only dir: %v, want *StoreError", err)
	}
}

func TestStoreGenerationNumberingSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(testSnap(1)); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := st2.Commit(testSnap(2))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("post-restart commit got gen %d, want 2", gen)
	}
}

func TestStoreInjectedIOFailures(t *testing.T) {
	for _, op := range []string{"write", "sync", "rename"} {
		t.Run(op, func(t *testing.T) {
			plan, err := fault.Parse(fmt.Sprintf("rank0:iofail@3:%s", op))
			if err != nil {
				t.Fatal(err)
			}
			inj, err := fault.NewInjector(plan)
			if err != nil {
				t.Fatal(err)
			}
			st, err := OpenStore(t.TempDir(), StoreOptions{Fault: inj})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Commit(testSnap(2)); err != nil {
				t.Fatalf("unfaulted step: %v", err)
			}
			_, err = st.Commit(testSnap(3))
			var serr *StoreError
			if !errors.As(err, &serr) || serr.Op != op {
				t.Fatalf("faulted commit: %v, want *StoreError with Op %q", err, op)
			}
			// The failed commit must not damage the previous generation.
			snap, gen, err := st.Load()
			if err != nil || gen != 1 || snap.Superstep != 2 {
				t.Fatalf("after failed commit: snap %v gen %d err %v, want 2/1/nil", snap, gen, err)
			}
		})
	}
}

func TestStoreTornWriteDetectedAtLoad(t *testing.T) {
	plan, err := fault.Parse("rank0:torn@3")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(t.TempDir(), StoreOptions{Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(testSnap(2)); err != nil {
		t.Fatal(err)
	}
	// The torn commit itself reports success — that is the point.
	if _, err := st.Commit(testSnap(3)); err != nil {
		t.Fatalf("torn commit should look successful, got %v", err)
	}
	snap, gen, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || snap.Superstep != 2 {
		t.Fatalf("loaded gen %d superstep %d, want fallback past torn gen 2 to 1/2", gen, snap.Superstep)
	}
}

// failFS wraps OSFS and fails one operation kind, proving the seam reaches
// every error path without real disk faults.
type failFS struct {
	OSFS
	failRename bool
}

func (f failFS) Rename(oldpath, newpath string) error {
	if f.failRename {
		return errors.New("boom")
	}
	return f.OSFS.Rename(oldpath, newpath)
}

func TestStoreFSSeamRenameFailure(t *testing.T) {
	st, err := OpenStore(t.TempDir(), StoreOptions{FS: failFS{failRename: true}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Commit(testSnap(1))
	var serr *StoreError
	if !errors.As(err, &serr) || serr.Op != "rename" {
		t.Fatalf("commit through failing FS: %v, want *StoreError{Op: rename}", err)
	}
}
