package checkpoint

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hetgraph/internal/graph"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(superstep int64, state []byte, f0, f1 []int32) bool {
		if superstep < 0 {
			superstep = -superstep
		}
		s := &Snapshot{Superstep: superstep, State: state, Frontier: make([][]graph.VertexID, 2)}
		for _, v := range f0 {
			s.Frontier[0] = append(s.Frontier[0], graph.VertexID(v&0x7fffffff))
		}
		for _, v := range f1 {
			s.Frontier[1] = append(s.Frontier[1], graph.VertexID(v&0x7fffffff))
		}
		got, err := Decode(s.Encode())
		if err != nil {
			t.Logf("Decode: %v", err)
			return false
		}
		if got.Superstep != s.Superstep || !bytes.Equal(got.State, s.State) {
			return false
		}
		for r := 0; r < 2; r++ {
			if len(got.Frontier[r]) != len(s.Frontier[r]) {
				return false
			}
			for i := range got.Frontier[r] {
				if got.Frontier[r][i] != s.Frontier[r][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := &Snapshot{Superstep: 7, State: []byte{1, 2, 3}, Frontier: make([][]graph.VertexID, 2)}
	s.Frontier[0] = []graph.VertexID{4, 5}
	s.Frontier[1] = []graph.VertexID{6}
	b := s.Encode()
	if _, err := Decode(b[:len(b)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := Decode(b[:5]); err == nil {
		t.Error("truncated header accepted")
	}
	bad := append([]byte(nil), b...)
	bad[0] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), b...)
	bad[4] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("bad version accepted")
	}
}

func TestF32I32Helpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fs := make([]float32, 100)
	for i := range fs {
		fs[i] = rng.Float32()
	}
	back, err := DecodeF32(EncodeF32(fs))
	if err != nil || !reflect.DeepEqual(fs, back) {
		t.Fatalf("f32 round trip failed: %v", err)
	}
	is := make([]int32, 100)
	for i := range is {
		is[i] = rng.Int31() - rng.Int31()
	}
	iback, err := DecodeI32(EncodeI32(is))
	if err != nil || !reflect.DeepEqual(is, iback) {
		t.Fatalf("i32 round trip failed: %v", err)
	}
	if _, err := DecodeF32(make([]byte, 5)); err == nil {
		t.Error("DecodeF32 accepted ragged payload")
	}
	if _, err := DecodeI32(make([]byte, 7)); err == nil {
		t.Error("DecodeI32 accepted ragged payload")
	}
}

// fakeApp is a Snapshotter over a float32 array.
type fakeApp struct {
	mu   sync.Mutex
	vals []float32
}

func (a *fakeApp) Snapshot() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return EncodeF32(a.vals), nil
}

func (a *fakeApp) Restore(state []byte) error {
	vs, err := DecodeF32(state)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.vals = vs
	a.mu.Unlock()
	return nil
}

func TestCoordinatorBarrierCaptures(t *testing.T) {
	app := &fakeApp{vals: []float32{1, 2, 3}}
	c, err := NewCoordinator(app, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if c.Due(0) || c.Due(1) || !c.Due(2) || c.Due(3) || !c.Due(4) {
		t.Error("Due schedule wrong for every=2")
	}
	if err := c.Initial([]graph.VertexID{0}, []graph.VertexID{1}); err != nil {
		t.Fatal(err)
	}
	if s := c.Latest(); s == nil || s.Superstep != 0 {
		t.Fatalf("initial snapshot missing: %+v", s)
	}

	app.vals = []float32{9, 8, 7}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = c.Checkpoint(0, 2, []graph.VertexID{0, 2}) }()
	go func() { defer wg.Done(); errs[1] = c.Checkpoint(1, 2, []graph.VertexID{1}) }()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("barrier errors: %v, %v", errs[0], errs[1])
	}
	s := c.Latest()
	if s.Superstep != 2 {
		t.Fatalf("superstep = %d, want 2", s.Superstep)
	}
	if got := s.MergedFrontier(); len(got) != 3 {
		t.Fatalf("merged frontier = %v", got)
	}
	vs, err := DecodeF32(s.State)
	if err != nil || !reflect.DeepEqual(vs, []float32{9, 8, 7}) {
		t.Fatalf("captured state = %v (%v)", vs, err)
	}

	// Restore rolls the app back to the captured values.
	app.vals = []float32{0, 0, 0}
	snap, err := c.Restore()
	if err != nil || snap.Superstep != 2 {
		t.Fatalf("Restore: %v, %+v", err, snap)
	}
	if !reflect.DeepEqual(app.vals, []float32{9, 8, 7}) {
		t.Fatalf("restored vals = %v", app.vals)
	}
}

func TestCoordinatorMarkDeadWakesWaiter(t *testing.T) {
	app := &fakeApp{vals: []float32{1}}
	c, err := NewCoordinator(app, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Checkpoint(0, 1, nil) }()
	time.Sleep(5 * time.Millisecond)
	c.MarkDead(1)
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerDead) {
			t.Fatalf("got %v, want ErrPeerDead", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken by MarkDead")
	}
	// Later barrier calls fail immediately from either side.
	if err := c.Checkpoint(1, 2, nil); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("post-death checkpoint: %v", err)
	}
}

func TestCoordinatorTimeout(t *testing.T) {
	app := &fakeApp{vals: []float32{1}}
	c, err := NewCoordinator(app, 1, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Checkpoint(1, 1, nil); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("got %v, want wrapped ErrPeerDead", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(nil, 1, 0); err == nil {
		t.Error("nil snapshotter accepted")
	}
	if _, err := NewCoordinator(&fakeApp{}, 0, 0); err == nil {
		t.Error("every=0 accepted")
	}
}
