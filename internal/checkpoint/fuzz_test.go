package checkpoint

import (
	"bytes"
	"testing"

	"hetgraph/internal/graph"
)

// TestDecodeV1BackwardCompat proves snapshots written by the legacy
// (pre-checksum) v1 encoder still decode: in-memory checkpoints captured by
// earlier releases remain restorable.
func TestDecodeV1BackwardCompat(t *testing.T) {
	want := testSnap(7)
	b := want.EncodeV1()
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if got.Superstep != want.Superstep || !bytes.Equal(got.State, want.State) {
		t.Fatalf("v1 round-trip mismatch: %+v vs %+v", got, want)
	}
	for r := 0; r < 2; r++ {
		if len(got.Frontier[r]) != len(want.Frontier[r]) {
			t.Fatalf("frontier %d: %v vs %v", r, got.Frontier[r], want.Frontier[r])
		}
		for i := range got.Frontier[r] {
			if got.Frontier[r][i] != want.Frontier[r][i] {
				t.Fatalf("frontier %d: %v vs %v", r, got.Frontier[r], want.Frontier[r])
			}
		}
	}
}

// FuzzDecode throws arbitrary bytes at the snapshot decoder: it must never
// panic, and anything it accepts must re-encode to a stream that decodes to
// the same snapshot.
func FuzzDecode(f *testing.F) {
	valid := &Snapshot{Superstep: 3, State: []byte{1, 2, 3, 4}, Frontier: make([][]graph.VertexID, 2)}
	valid.Frontier[0] = []graph.VertexID{0, 2}
	valid.Frontier[1] = []graph.VertexID{1}
	f.Add(valid.Encode())
	f.Add(valid.EncodeV1())
	f.Add((&Snapshot{}).Encode())
	f.Add(valid.Encode()[:5])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return
		}
		re, err := Decode(s.Encode())
		if err != nil {
			t.Fatalf("accepted stream did not survive re-encode: %v", err)
		}
		if re.Superstep != s.Superstep || !bytes.Equal(re.State, s.State) ||
			len(re.Frontier[0]) != len(s.Frontier[0]) || len(re.Frontier[1]) != len(s.Frontier[1]) {
			t.Fatalf("re-encode round trip diverged: %+v vs %+v", re, s)
		}
	})
}
