package checkpoint

import (
	"os"
	"strings"
	"testing"
)

// countFiles returns how many directory entries match the given suffix.
func countFiles(t *testing.T, dir, suffix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			n++
		}
	}
	return n
}

// TestStoreRetentionUnderChurn hammers a Retain=2 store with rapid commits
// while reopening it every few generations, asserting the daemon-critical
// invariants the serve layer leans on: Load always returns the newest
// committed generation, pruning never lets on-disk generations exceed the
// retain bound, and no commit leaves an orphaned temp file behind.
func TestStoreRetentionUnderChurn(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	const churn = 40
	var last int64
	for step := int64(1); step <= churn; step++ {
		if _, err := st.Commit(testSnap(step)); err != nil {
			t.Fatalf("commit %d: %v", step, err)
		}
		// Interleave reopens: a freshly opened store must agree with the
		// long-lived handle about the newest generation.
		if step%5 == 0 {
			st2, err := OpenStore(dir, StoreOptions{Retain: 2})
			if err != nil {
				t.Fatalf("reopen at step %d: %v", step, err)
			}
			snap, _, err := st2.Load()
			if err != nil {
				t.Fatalf("load from reopened store at step %d: %v", step, err)
			}
			if snap.Superstep != step {
				t.Fatalf("reopened store at step %d loaded superstep %d, want the newest", step, snap.Superstep)
			}
			// The reopened handle keeps committing — the two handles churn
			// the same directory the way restarting daemons do.
			step++
			if _, err := st2.Commit(testSnap(step)); err != nil {
				t.Fatalf("commit %d via reopened store: %v", step, err)
			}
			st = st2
		}
		last = step
		if n := countFiles(t, dir, ".ckpt"); n > 2 {
			t.Fatalf("after commit %d: %d checkpoint files on disk, retain bound is 2", step, n)
		}
		if n := countFiles(t, dir, ".tmp"); n != 0 {
			t.Fatalf("after commit %d: %d orphaned temp files", step, n)
		}
	}
	// Final invariant: the newest generation is the one a cold resume loads.
	final, err := OpenStore(dir, StoreOptions{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap, gen, err := final.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Superstep != last {
		t.Fatalf("cold load superstep %d (gen %d), want %d", snap.Superstep, gen, last)
	}
	gens := final.Generations()
	if len(gens) == 0 || len(gens) > 2 {
		t.Fatalf("manifest tracks %d generations, want 1..2 under Retain=2", len(gens))
	}
	for i := 1; i < len(gens); i++ {
		if gens[i-1].Gen < gens[i].Gen {
			t.Fatalf("manifest generations out of newest-first order: %v", gens)
		}
	}
}
