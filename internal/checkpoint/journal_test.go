package checkpoint

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func journalRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte{byte(i), 0xAB, byte(i * 3)}
	}
	return recs
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := journalRecords(5)
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Records()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %x, want %x", i, got[i], want[i])
		}
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := journalRecords(3)
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a crash mid-append: a length prefix promising a record that
	// was never fully written.
	path := filepath.Join(dir, "JOURNAL")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	f.Write(hdr[:])
	f.Write([]byte("only-part-of-the-promised-payload"))
	f.Close()

	j2, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	if got := j2.Records(); len(got) != len(want) {
		t.Fatalf("replayed %d records over torn tail, want %d intact", len(got), len(want))
	}
	// The repair rewrote the file: appends land on a clean boundary and the
	// next open sees everything.
	if err := j2.Append([]byte("after-repair")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	got := j3.Records()
	if len(got) != 4 || string(got[3]) != "after-repair" {
		t.Fatalf("post-repair replay = %d records (last %q), want 4 ending in after-repair", len(got), got[len(got)-1])
	}
}

func TestJournalChecksumCorruptionStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range journalRecords(4) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Flip one payload byte inside the third frame. Frames are
	// header + (4 len + 3 payload + 4 crc) * i.
	path := filepath.Join(dir, "JOURNAL")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := len("HGJN 1\n") + 2*(4+3+4) + 4 + 1 // second byte of record 2's payload
	b[off] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatalf("open over corrupt frame: %v", err)
	}
	defer j2.Close()
	if got := j2.Records(); len(got) != 2 {
		t.Fatalf("replayed %d records past a corrupt frame, want 2 (everything before it)", len(got))
	}
}

func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range journalRecords(6) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	keep := [][]byte{[]byte("alpha"), []byte("beta")}
	if err := j.Compact(keep); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("gamma")); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	j.Close()
	j2, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Records()
	if len(got) != 3 || string(got[0]) != "alpha" || string(got[2]) != "gamma" {
		t.Fatalf("post-compact replay = %q, want [alpha beta gamma]", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "JOURNAL.tmp")); !os.IsNotExist(err) {
		t.Fatal("compaction left its temp file behind")
	}
}

// journalFailFS fails every file Sync, proving Append surfaces durability
// failures as typed *StoreError without real disk faults.
type journalFailFS struct{ OSFS }

type failSyncFile struct{ File }

func (failSyncFile) Sync() error { return errors.New("sync boom") }

func (fs journalFailFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := fs.OSFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return failSyncFile{f}, nil
}

func TestJournalAppendSyncFailureIsStoreError(t *testing.T) {
	dir := t.TempDir()
	// Seed a valid journal first so the failing open does not trip on the
	// header write.
	j0, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j0.Append([]byte("seed")); err != nil {
		t.Fatal(err)
	}
	j0.Close()

	j, err := OpenJournal(dir, journalFailFS{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	err = j.Append([]byte("doomed"))
	var serr *StoreError
	if !errors.As(err, &serr) || serr.Op != "sync" {
		t.Fatalf("append through failing FS: %v, want *StoreError{Op: sync}", err)
	}
	// Every acknowledged record must still replay after reopen (the failed
	// one may or may not — it was never acknowledged).
	j.Close()
	j2, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Records()
	if len(recs) == 0 || string(recs[0]) != "seed" {
		t.Fatalf("acknowledged record lost after a failed append: %q", recs)
	}
}

func TestJournalOversizedRecordRejected(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	err = j.Append(make([]byte, journalMaxRecord+1))
	var serr *StoreError
	if !errors.As(err, &serr) {
		t.Fatalf("oversized append: %v, want *StoreError", err)
	}
}

func TestJournalCloseIdempotentAndFencing(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v, want nil", err)
	}
	if err := j.Append([]byte("late")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestJournalGarbageFileTreatedAsTorn(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "JOURNAL"), []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatalf("open over garbage: %v", err)
	}
	defer j.Close()
	if got := j.Records(); len(got) != 0 {
		t.Fatalf("garbage file replayed %d records, want 0", len(got))
	}
	if err := j.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
}
