package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hetgraph/internal/fault"
)

// Store persists checkpoints to a directory so a crashed or killed hetgraph
// process can cold-start from its last committed generation. The on-disk
// layout is
//
//	<dir>/ckpt-<generation>.ckpt   one v2-encoded snapshot each
//	<dir>/MANIFEST                 ordered ledger of retained generations
//
// and every mutation follows the atomic commit protocol: write to a temp
// file in the same directory, fsync, rename over the final name, then
// rewrite the manifest the same way. A reader therefore never observes a
// half-written checkpoint under the committed name; corruption that slips
// past the protocol (a lying disk, a torn page) is caught at load time by
// the manifest's size/CRC32C record and the v2 trailer, and Load falls back
// to the previous generation.
type Store struct {
	dir    string
	fsys   FS
	retain int
	rank   int
	inj    *fault.Injector

	mu   sync.Mutex
	gens []Gen // newest first
}

// DefaultRetain is the default number of newest generations kept on disk.
// It must be at least 2 so corruption of the newest generation always
// leaves a fallback.
const DefaultRetain = 3

const (
	manifestName   = "MANIFEST"
	manifestHeader = "HGMF 1"
	ckptPrefix     = "ckpt-"
	ckptSuffix     = ".ckpt"
)

// Gen is one retained checkpoint generation as recorded in the manifest.
type Gen struct {
	// Gen is the monotonically increasing generation number.
	Gen uint64
	// Superstep is the snapshot's completed-superstep count.
	Superstep int64
	// Size is the byte length of the checkpoint file.
	Size int64
	// CRC is the CRC32C of the whole checkpoint file.
	CRC uint32
	// File is the checkpoint's base file name inside the store directory.
	File string
}

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// Retain is how many newest generations to keep (0 = DefaultRetain;
	// values below 2 are rejected — corruption fallback needs a spare).
	Retain int
	// Rank labels this store's writer for disk-fault plan queries
	// (conventionally 0: the host owns the storage path).
	Rank int
	// Fault, when non-nil, injects planned disk faults (iofail, torn) into
	// commits.
	Fault *fault.Injector
	// FS overrides the filesystem (nil = the real one).
	FS FS
}

// StoreError reports a failed durable-store operation. The runtime treats
// it as a process-fatal storage failure: the run aborts (the on-disk state
// keeps its previous generations) and a restart can resume.
type StoreError struct {
	// Op is the failed operation ("write", "sync", "rename", "probe", ...).
	Op string
	// Path is the file the operation targeted.
	Path string
	// Err is the underlying cause.
	Err error
}

func (e *StoreError) Error() string {
	return fmt.Sprintf("checkpoint: store %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *StoreError) Unwrap() error { return e.Err }

// ErrNoCheckpoint is wrapped by Store.Load when no decodable checkpoint
// generation exists (empty directory, absent manifest with no snapshot
// files, or every retained generation corrupt).
var ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint on disk")

// errInjected marks failures produced by the fault injector.
var errInjected = errors.New("injected I/O fault")

// OpenStore opens (creating if needed) a checkpoint directory. It probes
// writability immediately — an unwritable directory fails here, not at the
// first commit minutes into a run — and reads any existing manifest so new
// commits continue the generation numbering of a previous process.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty store directory")
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.Retain == 0 {
		opts.Retain = DefaultRetain
	}
	if opts.Retain < 2 {
		return nil, fmt.Errorf("checkpoint: store retain %d < 2 (corruption fallback needs a spare generation)", opts.Retain)
	}
	s := &Store{dir: dir, fsys: opts.FS, retain: opts.Retain, rank: opts.Rank, inj: opts.Fault}
	if err := s.fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, &StoreError{Op: "mkdir", Path: dir, Err: err}
	}
	probe := filepath.Join(dir, ".probe")
	f, err := s.fsys.OpenFile(probe, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, &StoreError{Op: "probe", Path: probe, Err: err}
	}
	f.Close()
	s.fsys.Remove(probe)
	if gens, err := s.readManifest(); err == nil {
		s.gens = gens
	} else {
		// No (or unreadable) manifest: fall back to a directory scan so
		// generation numbering still continues past whatever is on disk.
		s.gens = s.scanDir()
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Generations returns the retained generations, newest first.
func (s *Store) Generations() []Gen {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Gen(nil), s.gens...)
}

// Commit encodes snap, writes it as the next generation with the atomic
// temp-file+fsync+rename protocol, updates the manifest, and prunes
// generations beyond the retention limit. It returns the committed
// generation number. Any failure is a *StoreError; the previously committed
// generations remain intact.
func (s *Store) Commit(snap *Snapshot) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data := snap.Encode()
	gen := uint64(1)
	if len(s.gens) > 0 {
		gen = s.gens[0].Gen + 1
	}
	name := fmt.Sprintf("%s%08d%s", ckptPrefix, gen, ckptSuffix)
	payload := data
	// A torn write silently loses the tail of the payload; the commit
	// believes it succeeded, and only the load-time checksum exposes it.
	if s.inj.TornWrite(s.rank, snap.Superstep) {
		payload = data[:len(data)/2]
	}
	if err := s.writeAtomic(name, payload, snap.Superstep); err != nil {
		return 0, err
	}
	entry := Gen{Gen: gen, Superstep: snap.Superstep, Size: int64(len(data)), CRC: Checksum(data), File: name}
	gens := append([]Gen{entry}, s.gens...)
	for len(gens) > s.retain {
		last := gens[len(gens)-1]
		s.fsys.Remove(filepath.Join(s.dir, last.File)) // best-effort prune
		gens = gens[:len(gens)-1]
	}
	if err := s.writeAtomic(manifestName, encodeManifest(gens), snap.Superstep); err != nil {
		return 0, err
	}
	s.gens = gens
	return gen, nil
}

// writeAtomic writes data to name via temp file, fsync, and rename,
// consulting the fault injector (indexed by the checkpointed superstep) at
// each operation.
func (s *Store) writeAtomic(name string, data []byte, step int64) error {
	final := filepath.Join(s.dir, name)
	tmp := final + ".tmp"
	if s.inj.IOFails(s.rank, step, fault.OpWrite) {
		return &StoreError{Op: "write", Path: tmp, Err: errInjected}
	}
	f, err := s.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return &StoreError{Op: "create", Path: tmp, Err: err}
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		s.fsys.Remove(tmp)
		return &StoreError{Op: "write", Path: tmp, Err: err}
	}
	if s.inj.IOFails(s.rank, step, fault.OpSync) {
		f.Close()
		s.fsys.Remove(tmp)
		return &StoreError{Op: "sync", Path: tmp, Err: errInjected}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fsys.Remove(tmp)
		return &StoreError{Op: "sync", Path: tmp, Err: err}
	}
	if err := f.Close(); err != nil {
		s.fsys.Remove(tmp)
		return &StoreError{Op: "close", Path: tmp, Err: err}
	}
	if s.inj.IOFails(s.rank, step, fault.OpRename) {
		s.fsys.Remove(tmp)
		return &StoreError{Op: "rename", Path: final, Err: errInjected}
	}
	if err := s.fsys.Rename(tmp, final); err != nil {
		s.fsys.Remove(tmp)
		return &StoreError{Op: "rename", Path: final, Err: err}
	}
	return nil
}

// Load returns the newest generation that passes verification: the manifest
// is scanned newest-first, each candidate's size and CRC32C are checked
// against the ledger, and the snapshot is decoded (which re-verifies the v2
// trailer). A corrupt newest generation falls back to the previous one.
// When the manifest itself is missing or corrupt, the directory is scanned
// for ckpt-*.ckpt files instead, relying on the in-file checksum alone.
// With nothing decodable, the error wraps ErrNoCheckpoint.
func (s *Store) Load() (*Snapshot, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	candidates, merr := s.readManifest()
	verify := true
	if merr != nil {
		candidates = s.scanDir()
		verify = false
	}
	var reasons []string
	for _, g := range candidates {
		b, err := s.fsys.ReadFile(filepath.Join(s.dir, g.File))
		if err != nil {
			reasons = append(reasons, fmt.Sprintf("gen %d: %v", g.Gen, err))
			continue
		}
		if verify {
			if int64(len(b)) != g.Size {
				reasons = append(reasons, fmt.Sprintf("gen %d: %d bytes, manifest says %d", g.Gen, len(b), g.Size))
				continue
			}
			if crc := Checksum(b); crc != g.CRC {
				reasons = append(reasons, fmt.Sprintf("gen %d: CRC32C %08x, manifest says %08x", g.Gen, crc, g.CRC))
				continue
			}
		}
		snap, err := Decode(b)
		if err != nil {
			reasons = append(reasons, fmt.Sprintf("gen %d: %v", g.Gen, err))
			continue
		}
		return snap, g.Gen, nil
	}
	detail := "directory is empty"
	if merr != nil && len(candidates) == 0 {
		detail = fmt.Sprintf("no manifest (%v) and no snapshot files", merr)
	} else if len(reasons) > 0 {
		detail = strings.Join(reasons, "; ")
	}
	return nil, 0, fmt.Errorf("%w: %s: %s", ErrNoCheckpoint, s.dir, detail)
}

// encodeManifest renders the generation ledger, newest first:
//
//	HGMF 1
//	<gen> <superstep> <size> <crc32c-hex> <file>
func encodeManifest(gens []Gen) []byte {
	var b strings.Builder
	b.WriteString(manifestHeader)
	b.WriteByte('\n')
	for _, g := range gens {
		fmt.Fprintf(&b, "%d %d %d %08x %s\n", g.Gen, g.Superstep, g.Size, g.CRC, g.File)
	}
	return []byte(b.String())
}

// readManifest parses the on-disk manifest into a generation list.
func (s *Store) readManifest() ([]Gen, error) {
	b, err := s.fsys.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) == 0 || lines[0] != manifestHeader {
		return nil, fmt.Errorf("checkpoint: bad manifest header %q", lines[0])
	}
	var gens []Gen
	for i, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("checkpoint: manifest line %d: %d fields, want 5", i+2, len(fields))
		}
		var g Gen
		if g.Gen, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("checkpoint: manifest line %d: bad generation: %w", i+2, err)
		}
		if g.Superstep, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("checkpoint: manifest line %d: bad superstep: %w", i+2, err)
		}
		if g.Size, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
			return nil, fmt.Errorf("checkpoint: manifest line %d: bad size: %w", i+2, err)
		}
		crc, err := strconv.ParseUint(fields[3], 16, 32)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: manifest line %d: bad CRC: %w", i+2, err)
		}
		g.CRC = uint32(crc)
		g.File = fields[4]
		if g.File != filepath.Base(g.File) || !strings.HasPrefix(g.File, ckptPrefix) {
			return nil, fmt.Errorf("checkpoint: manifest line %d: suspicious file name %q", i+2, g.File)
		}
		gens = append(gens, g)
	}
	sort.SliceStable(gens, func(i, j int) bool { return gens[i].Gen > gens[j].Gen })
	return gens, nil
}

// scanDir lists ckpt-*.ckpt files, newest generation first, for recovery
// without a manifest. Size/CRC are unknown (zero); loading relies on the
// snapshots' own v2 trailers.
func (s *Store) scanDir() []Gen {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var gens []Gen
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		gen, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, Gen{Gen: gen, File: name})
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Gen > gens[j].Gen })
	return gens
}
