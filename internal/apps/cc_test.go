package apps

import (
	"testing"

	"hetgraph/internal/graph"
)

func TestCCInitAndUpdate(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddUndirected(0, 1, 0)
	b.AddUndirected(2, 3, 0)
	g, _ := b.Build()
	cc := NewConnectedComponents()
	active := cc.Init(g)
	if len(active) != 4 {
		t.Fatalf("initial active = %d", len(active))
	}
	for v := 0; v < 4; v++ {
		if cc.Labels[v] != float32(v) {
			t.Fatalf("label[%d] = %v", v, cc.Labels[v])
		}
	}
	if !cc.Update(1, 0) {
		t.Fatal("smaller label must activate")
	}
	if cc.Update(1, 0.5) {
		t.Fatal("larger label must not activate")
	}
	if cc.ReduceScalar(3, 2) != 2 || cc.ReduceScalar(2, 3) != 2 {
		t.Fatal("reduce must be min")
	}
	var got []float32
	cc.Generate(1, func(_ graph.VertexID, l float32) { got = append(got, l) })
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("generate sent %v, want the updated label 0", got)
	}
	if cc.Profile().Name != "ConnectedComponents" || !cc.Profile().Reducible {
		t.Fatal("profile wrong")
	}
}

func TestCCRejectsHugeGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted graph beyond float32-exact range")
		}
	}()
	// Fake a CSR with 2^24 vertices without allocating edges.
	g := &graph.CSR{Offsets: make([]int64, (1<<24)+1)}
	NewConnectedComponents().Init(g)
}

func TestCCHelpers(t *testing.T) {
	b := graph.NewBuilder(3, false)
	g, _ := b.Build()
	cc := NewConnectedComponents()
	cc.Init(g)
	if cc.NumComponents() != 3 {
		t.Fatalf("isolated vertices: %d components, want 3", cc.NumComponents())
	}
	cc.Labels[2] = 0
	if cc.NumComponents() != 2 || !cc.SameComponent(0, 2) || cc.SameComponent(0, 1) {
		t.Fatal("helpers wrong")
	}
}
