package apps

import (
	"math"

	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/vec"
)

// ConnectedComponents labels the weakly connected components of a graph by
// min-label propagation: every vertex starts with its own ID as label and
// repeatedly adopts the smallest label it hears about; at the fixed point,
// two vertices share a label iff they are connected (treating edges as
// undirected — run it on a symmetrized graph, or accept directed-reachability
// components otherwise).
//
// This is not one of the paper's five evaluated applications; it is the
// kind of extension §VII anticipates ("providing additional functionality
// for graph applications"), and it exercises the same SIMD min-reduction
// path as SSSP — labels are float32-encoded vertex IDs, exactly
// representable up to 2^24 vertices.
type ConnectedComponents struct {
	g *graph.CSR
	// Labels holds each vertex's current component label (a vertex ID).
	Labels []float32
}

// ccMaxVertices bounds the graph so float32 encodes every ID exactly.
const ccMaxVertices = 1 << 24

// NewConnectedComponents creates the app.
func NewConnectedComponents() *ConnectedComponents { return &ConnectedComponents{} }

// CCProfile reuses SSSP's cost profile: identical message structure (one
// float32, min reduction) and near-identical user-function bodies.
func ccProfile() machine.AppProfile {
	p := machine.SSSPProfile
	p.Name = "ConnectedComponents"
	return p
}

// Profile implements AppF32.
func (c *ConnectedComponents) Profile() machine.AppProfile { return ccProfile() }

// Init implements AppF32: every vertex starts active with its own label.
func (c *ConnectedComponents) Init(g *graph.CSR) []graph.VertexID {
	if g.NumVertices() >= ccMaxVertices {
		panic("apps: ConnectedComponents requires < 2^24 vertices (float32-exact labels)")
	}
	c.g = g
	n := g.NumVertices()
	c.Labels = make([]float32, n)
	active := make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		c.Labels[v] = float32(v)
		active[v] = graph.VertexID(v)
	}
	return active
}

// Generate implements AppF32: propagate the current label.
func (c *ConnectedComponents) Generate(v graph.VertexID, emit func(graph.VertexID, float32)) {
	label := c.Labels[v]
	for _, d := range c.g.Neighbors(v) {
		emit(d, label)
	}
}

// Identity implements AppF32.
func (c *ConnectedComponents) Identity() float32 { return float32(math.Inf(1)) }

// ReduceVec implements AppF32: SIMD min over received labels.
func (c *ConnectedComponents) ReduceVec(arr *vec.ArrayF32, rows int) { arr.ReduceMin(rows) }

// ReduceScalar implements AppF32.
func (c *ConnectedComponents) ReduceScalar(a, b float32) float32 {
	if b < a {
		return b
	}
	return a
}

// Update implements AppF32: adopt a smaller label and stay active.
func (c *ConnectedComponents) Update(v graph.VertexID, msg float32) bool {
	if msg < c.Labels[v] {
		c.Labels[v] = msg
		return true
	}
	return false
}

// NumComponents counts distinct labels after a converged run.
func (c *ConnectedComponents) NumComponents() int {
	seen := make(map[float32]struct{})
	for _, l := range c.Labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// SameComponent reports whether u and v converged to the same label.
func (c *ConnectedComponents) SameComponent(u, v graph.VertexID) bool {
	return c.Labels[u] == c.Labels[v]
}
