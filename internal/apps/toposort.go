package apps

import (
	"fmt"
	"sync/atomic"

	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/vec"
)

// TopoSort produces a topological order of a DAG (§V-B): zero-in-degree
// vertices start active and send 1 to their neighbors; receivers sum the
// messages (SIMD), subtract from their remaining in-degree, and activate
// when it reaches zero. Order positions are issued from a monotone counter
// at activation time: a vertex's position is always issued in a later
// superstep than all of its predecessors', so the result is a valid
// topological order.
type TopoSort struct {
	g      *graph.CSR
	remain []int32
	seq    atomic.Int64
	// Order holds each vertex's position in the topological order, -1
	// until assigned.
	Order []int64
}

// NewTopoSort creates the app.
func NewTopoSort() *TopoSort { return &TopoSort{} }

// Profile implements AppF32.
func (t *TopoSort) Profile() machine.AppProfile { return machine.TopoSortProfile }

// Init implements AppF32. The graph must be a DAG; cycles leave their
// vertices unordered (detectable as Order[v] == -1 after the run).
func (t *TopoSort) Init(g *graph.CSR) []graph.VertexID {
	t.g = g
	t.remain = g.InDegrees()
	t.Order = make([]int64, g.NumVertices())
	t.seq.Store(0)
	var active []graph.VertexID
	for v := range t.Order {
		t.Order[v] = -1
	}
	for v := 0; v < g.NumVertices(); v++ {
		if t.remain[v] == 0 {
			t.Order[v] = t.seq.Add(1) - 1
			active = append(active, graph.VertexID(v))
		}
	}
	return active
}

// Generate implements AppF32: send the constant 1 along every out-edge;
// the sender then goes inactive (it is not re-activated by Update).
func (t *TopoSort) Generate(v graph.VertexID, emit func(graph.VertexID, float32)) {
	for _, d := range t.g.Neighbors(v) {
		emit(d, 1)
	}
}

// Identity implements AppF32.
func (t *TopoSort) Identity() float32 { return 0 }

// ReduceVec implements AppF32: SIMD sum of removed-edge counts.
func (t *TopoSort) ReduceVec(arr *vec.ArrayF32, rows int) { arr.ReduceSum(rows) }

// ReduceScalar implements AppF32.
func (t *TopoSort) ReduceScalar(a, b float32) float32 { return a + b }

// Update implements AppF32: subtract the removed-edge count; on reaching
// zero, take the next order position and activate.
func (t *TopoSort) Update(v graph.VertexID, sum float32) bool {
	removed := int32(sum + 0.5)
	t.remain[v] -= removed
	if t.remain[v] < 0 {
		panic(fmt.Sprintf("apps: TopoSort vertex %d in-degree went negative (cyclic input or duplicate delivery)", v))
	}
	if t.remain[v] == 0 {
		t.Order[v] = t.seq.Add(1) - 1
		return true
	}
	return false
}

// Ordered reports whether every vertex received a position (false for
// cyclic inputs).
func (t *TopoSort) Ordered() bool {
	for _, o := range t.Order {
		if o < 0 {
			return false
		}
	}
	return true
}
