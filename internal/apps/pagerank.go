// Package apps implements the paper's five evaluation applications on the
// framework API (§V-B): PageRank, BFS, Semi-Clustering, SSSP, and
// Topological Sorting. Each is a direct transcription of the three
// user-defined functions the paper describes; the float32 applications use
// the SIMD vector API for their message reductions, exactly as Listing 1
// does for SSSP.
package apps

import (
	"fmt"
	"math"

	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/vec"
)

// PageRank ranks vertices by incoming link structure. Message generation
// propagates rank/out_degree along every out-edge; message processing sums
// (SIMD); vertex update applies the damping rule. Every vertex stays active
// for a fixed number of iterations, driven by Options.MaxIterations.
type PageRank struct {
	g       *graph.CSR
	damping float32
	// Ranks holds the current PageRank value per vertex.
	Ranks []float32
	// contribution per out-edge, refreshed in Update (value/out_degree).
	share []float32
}

// NewPageRank creates the app with the standard damping factor 0.85.
func NewPageRank() *PageRank { return &PageRank{damping: 0.85} }

// Profile implements AppF32.
func (p *PageRank) Profile() machine.AppProfile { return machine.PageRankProfile }

// FixedActiveSet marks PageRank as an always-active application: all
// vertices generate messages along all edges every iteration (§V-C). The
// run length is set by Options.MaxIterations.
func (p *PageRank) FixedActiveSet() bool { return true }

// Init implements AppF32: every vertex starts with rank 1 and is active.
func (p *PageRank) Init(g *graph.CSR) []graph.VertexID {
	p.g = g
	n := g.NumVertices()
	p.Ranks = make([]float32, n)
	p.share = make([]float32, n)
	active := make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		p.Ranks[v] = 1
		if d := g.OutDegree(graph.VertexID(v)); d > 0 {
			p.share[v] = 1 / float32(d)
		}
		active[v] = graph.VertexID(v)
	}
	return active
}

// Generate implements AppF32: propagate rank divided by out-degree.
func (p *PageRank) Generate(v graph.VertexID, emit func(graph.VertexID, float32)) {
	share := p.share[v]
	for _, d := range p.g.Neighbors(v) {
		emit(d, share)
	}
}

// Identity implements AppF32: the sum identity.
func (p *PageRank) Identity() float32 { return 0 }

// ReduceVec implements AppF32: SIMD sum of the received contributions.
func (p *PageRank) ReduceVec(arr *vec.ArrayF32, rows int) { arr.ReduceSum(rows) }

// ReduceScalar implements AppF32.
func (p *PageRank) ReduceScalar(a, b float32) float32 { return a + b }

// Update implements AppF32: damped rank update; vertices stay active (the
// run length is bounded by MaxIterations, as in the paper's fixed-iteration
// PageRank).
func (p *PageRank) Update(v graph.VertexID, sum float32) bool {
	p.Ranks[v] = (1 - p.damping) + p.damping*sum
	if d := p.g.OutDegree(v); d > 0 {
		p.share[v] = p.Ranks[v] / float32(d)
	}
	return true
}

// BFS performs breadth-first traversal from a source. Active vertices send
// level+1; unvisited receivers adopt any received level ("message reduction
// is not needed" — the framework still stores messages in the CSB, and the
// scalar min over duplicates implements 'any').
type BFS struct {
	g      *graph.CSR
	source graph.VertexID
	// Levels holds the BFS depth per vertex, -1 if unreached.
	Levels []int32
}

// NewBFS creates the app for the given source vertex.
func NewBFS(source graph.VertexID) *BFS { return &BFS{source: source} }

// Profile implements AppF32.
func (b *BFS) Profile() machine.AppProfile { return machine.BFSProfile }

// Init implements AppF32.
func (b *BFS) Init(g *graph.CSR) []graph.VertexID {
	b.g = g
	b.Levels = make([]int32, g.NumVertices())
	for v := range b.Levels {
		b.Levels[v] = -1
	}
	b.Levels[b.source] = 0
	return []graph.VertexID{b.source}
}

// Generate implements AppF32: active vertices send their level plus one.
func (b *BFS) Generate(v graph.VertexID, emit func(graph.VertexID, float32)) {
	next := float32(b.Levels[v] + 1)
	for _, d := range b.g.Neighbors(v) {
		emit(d, next)
	}
}

// Identity implements AppF32.
func (b *BFS) Identity() float32 { return float32(math.Inf(1)) }

// ReduceVec implements AppF32 (unused in the paper's BFS configuration, but
// correct: min over duplicates picks one of the equal levels).
func (b *BFS) ReduceVec(arr *vec.ArrayF32, rows int) { arr.ReduceMin(rows) }

// ReduceScalar implements AppF32.
func (b *BFS) ReduceScalar(a, x float32) float32 {
	if x < a {
		return x
	}
	return a
}

// Update implements AppF32: unvisited vertices adopt the level and become
// active; visited ones stay inactive.
func (b *BFS) Update(v graph.VertexID, msg float32) bool {
	if b.Levels[v] >= 0 {
		return false
	}
	b.Levels[v] = int32(msg)
	return true
}

// SSSP computes single-source shortest paths on a positively weighted
// directed graph — the paper's running example (Listing 1).
type SSSP struct {
	g      *graph.CSR
	source graph.VertexID
	// Dist holds the current tentative distance per vertex (+Inf if
	// unreached).
	Dist []float32
}

// NewSSSP creates the app for the given source vertex.
func NewSSSP(source graph.VertexID) *SSSP { return &SSSP{source: source} }

// Profile implements AppF32.
func (s *SSSP) Profile() machine.AppProfile { return machine.SSSPProfile }

// Init implements AppF32. The graph must be weighted.
func (s *SSSP) Init(g *graph.CSR) []graph.VertexID {
	if !g.Weighted() {
		panic(fmt.Sprintf("apps: SSSP requires a weighted graph (source %d)", s.source))
	}
	s.g = g
	s.Dist = make([]float32, g.NumVertices())
	inf := float32(math.Inf(1))
	for v := range s.Dist {
		s.Dist[v] = inf
	}
	s.Dist[s.source] = 0
	return []graph.VertexID{s.source}
}

// Generate implements AppF32: Listing 1's generate_messages — propagate
// my_dist + edge weight along every out-edge.
func (s *SSSP) Generate(v graph.VertexID, emit func(graph.VertexID, float32)) {
	my := s.Dist[v]
	nb := s.g.Neighbors(v)
	ws := s.g.EdgeWeights(v)
	for i, d := range nb {
		emit(d, my+ws[i])
	}
}

// Identity implements AppF32.
func (s *SSSP) Identity() float32 { return float32(math.Inf(1)) }

// ReduceVec implements AppF32: Listing 1's process_messages — SIMD min
// folding all rows into row 0 (_mm512_min_ps on the MIC).
func (s *SSSP) ReduceVec(arr *vec.ArrayF32, rows int) { arr.ReduceMin(rows) }

// ReduceScalar implements AppF32.
func (s *SSSP) ReduceScalar(a, x float32) float32 {
	if x < a {
		return x
	}
	return a
}

// Update implements AppF32: Listing 1's update_vertex — adopt a shorter
// distance and become active, else go inactive.
func (s *SSSP) Update(v graph.VertexID, msg float32) bool {
	if msg < s.Dist[v] {
		s.Dist[v] = msg
		return true
	}
	return false
}
