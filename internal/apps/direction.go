package apps

import "hetgraph/internal/graph"

// Direction-optimizing hooks (core.PullerF32) for the traversal apps, and the
// order-sensitivity declaration (core.OrderSensitiveReduction) for PageRank.
//
// BFS and SSSP are min-fold traversals: the value a frontier parent u pushes
// along u→v is a pure function of u's state and the edge weight, so a pull
// sweep can recompute it from the transposed adjacency and reduce the exact
// multiset the push schedule would have delivered. PageRank stays push-only —
// with a fixed active set every vertex messages every superstep, so a pull
// sweep scans the same edges without saving work — but its float32 sum is not
// exactly associative, so it opts into the engine's canonical-order
// reductions instead.

// PullTarget reports whether v is still unvisited and worth an in-edge scan.
func (b *BFS) PullTarget(v graph.VertexID) bool { return b.Levels[v] < 0 }

// PullFrom recomputes the message a frontier parent would have pushed:
// its level plus one. The edge weight is ignored, as in Generate.
func (b *BFS) PullFrom(u graph.VertexID, _ float32) float32 {
	return float32(b.Levels[u] + 1)
}

// PullEarlyExit is true: every frontier parent offers the same level+1, so
// the first hit decides the minimum.
func (b *BFS) PullEarlyExit() bool { return true }

// PullTarget is always true for SSSP: any vertex's distance may still
// improve from a relaxed in-edge.
func (s *SSSP) PullTarget(_ graph.VertexID) bool { return true }

// PullFrom recomputes the relaxation a frontier parent would have pushed:
// its tentative distance plus the edge weight.
func (s *SSSP) PullFrom(u graph.VertexID, w float32) float32 {
	return s.Dist[u] + w
}

// PullEarlyExit is false: frontier parents offer different distances and the
// minimum needs them all.
func (s *SSSP) PullEarlyExit() bool { return false }

// OrderSensitiveReduction is true: float32 summation differs in the last bit
// across fold orders, so the engine canonicalizes reduction order (sorted
// lane folds, sorting remote combiner) to make repeated and crash-resumed
// runs byte-identical.
func (p *PageRank) OrderSensitiveReduction() bool { return true }
