package apps

import (
	"sort"

	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
)

// LabelVote is one candidate community label and the number of neighbors
// voting for it.
type LabelVote struct {
	Label graph.VertexID
	Count int32
}

// LPAMsg is the Label Propagation message: a vote tally, sorted by label.
// Majority voting is not an associative scalar reduction, so LPA uses the
// framework's structured-message (generic) path — like Semi-Clustering —
// but its Combine (tally merge) IS associative, so remote messages still
// combine before each cross-device exchange.
type LPAMsg []LabelVote

// LabelPropagation detects communities by synchronous label propagation:
// every vertex starts with its own ID as label and repeatedly adopts the
// label held by the majority of its in-neighbors (smallest label on ties).
// The run converges when no label changes, or stops at MaxIterations —
// synchronous LPA can oscillate on bipartite-ish structures, which the
// iteration bound absorbs.
//
// A second structured-message application (beyond §V-B's Semi-Clustering)
// exercising the AppGeneric path end to end.
type LabelPropagation struct {
	g *graph.CSR
	// Labels holds the current community label per vertex.
	Labels []graph.VertexID
}

// NewLabelPropagation creates the app.
func NewLabelPropagation() *LabelPropagation { return &LabelPropagation{} }

// lpaProfile: light generation (send one small message per edge), moderate
// branchy processing (tally merge), small updates.
func lpaProfile() machine.AppProfile {
	return machine.AppProfile{
		Name: "LabelPropagation", GenOps: 3, ProcOps: 8, UpdOps: 4,
		Branchy: true, MsgBytes: 8, Reducible: false,
	}
}

// Profile implements AppGeneric.
func (l *LabelPropagation) Profile() machine.AppProfile { return lpaProfile() }

// Init implements AppGeneric: singleton labels, everyone active.
func (l *LabelPropagation) Init(g *graph.CSR) []graph.VertexID {
	l.g = g
	n := g.NumVertices()
	l.Labels = make([]graph.VertexID, n)
	active := make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		l.Labels[v] = graph.VertexID(v)
		active[v] = graph.VertexID(v)
	}
	return active
}

// Generate implements AppGeneric: send the current label as a single vote.
func (l *LabelPropagation) Generate(v graph.VertexID, emit func(graph.VertexID, LPAMsg)) {
	msg := LPAMsg{{Label: l.Labels[v], Count: 1}}
	for _, d := range l.g.Neighbors(v) {
		emit(d, msg)
	}
}

// Combine implements AppGeneric: merge two tallies (associative and
// commutative, so remote combination is sound).
func (l *LabelPropagation) Combine(a, b LPAMsg) LPAMsg { return mergeVotes(a, b) }

// Process implements AppGeneric: fold all received tallies into one.
func (l *LabelPropagation) Process(v graph.VertexID, msgs []LPAMsg) LPAMsg {
	var acc LPAMsg
	for _, m := range msgs {
		acc = mergeVotes(acc, m)
	}
	return acc
}

// Update implements AppGeneric: adopt the majority label (smallest label on
// ties); stay active only when the label changed.
func (l *LabelPropagation) Update(v graph.VertexID, votes LPAMsg) bool {
	if len(votes) == 0 {
		return false
	}
	best := votes[0]
	for _, c := range votes[1:] {
		if c.Count > best.Count || (c.Count == best.Count && c.Label < best.Label) {
			best = c
		}
	}
	if best.Label == l.Labels[v] {
		return false
	}
	l.Labels[v] = best.Label
	return true
}

// mergeVotes merges two label-sorted tallies.
func mergeVotes(a, b LPAMsg) LPAMsg {
	out := make(LPAMsg, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Label < b[j].Label:
			out = append(out, a[i])
			i++
		case a[i].Label > b[j].Label:
			out = append(out, b[j])
			j++
		default:
			out = append(out, LabelVote{Label: a[i].Label, Count: a[i].Count + b[j].Count})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// NumCommunities counts distinct labels.
func (l *LabelPropagation) NumCommunities() int {
	seen := map[graph.VertexID]struct{}{}
	for _, lb := range l.Labels {
		seen[lb] = struct{}{}
	}
	return len(seen)
}

// CommunitySizes returns the sorted (descending) sizes of all communities.
func (l *LabelPropagation) CommunitySizes() []int {
	count := map[graph.VertexID]int{}
	for _, lb := range l.Labels {
		count[lb]++
	}
	sizes := make([]int, 0, len(count))
	for _, c := range count {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
