package apps

import (
	"reflect"
	"testing"

	"hetgraph/internal/graph"
)

func TestMergeVotes(t *testing.T) {
	a := LPAMsg{{Label: 1, Count: 2}, {Label: 5, Count: 1}}
	b := LPAMsg{{Label: 1, Count: 1}, {Label: 3, Count: 4}}
	got := mergeVotes(a, b)
	want := LPAMsg{{Label: 1, Count: 3}, {Label: 3, Count: 4}, {Label: 5, Count: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	if got := mergeVotes(nil, b); !reflect.DeepEqual(got, b) {
		t.Fatalf("merge with empty = %v", got)
	}
	// Associativity on a small case: (a+b)+c == a+(b+c).
	c := LPAMsg{{Label: 3, Count: 1}, {Label: 9, Count: 2}}
	left := mergeVotes(mergeVotes(a, b), c)
	right := mergeVotes(a, mergeVotes(b, c))
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative: %v vs %v", left, right)
	}
}

func TestLPAUpdateMajorityAndTies(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 0)
	g, _ := b.Build()
	l := NewLabelPropagation()
	l.Init(g)
	// Majority wins.
	if !l.Update(1, LPAMsg{{Label: 7, Count: 3}, {Label: 2, Count: 1}}) {
		t.Fatal("majority label not adopted")
	}
	if l.Labels[1] != 7 {
		t.Fatalf("label = %d", l.Labels[1])
	}
	// Tie: smaller label wins.
	l.Update(1, LPAMsg{{Label: 9, Count: 2}, {Label: 4, Count: 2}})
	if l.Labels[1] != 4 {
		t.Fatalf("tie broke to %d, want 4", l.Labels[1])
	}
	// Unchanged label: inactive.
	if l.Update(1, LPAMsg{{Label: 4, Count: 1}}) {
		t.Fatal("unchanged label reported active")
	}
	if l.Update(1, nil) {
		t.Fatal("empty votes reported active")
	}
}

func TestLPAGenerateAndHelpers(t *testing.T) {
	b := graph.NewBuilder(3, false)
	b.AddUndirected(0, 1, 0)
	g, _ := b.Build()
	l := NewLabelPropagation()
	active := l.Init(g)
	if len(active) != 3 {
		t.Fatalf("active = %d", len(active))
	}
	var sent []LPAMsg
	l.Generate(0, func(_ graph.VertexID, m LPAMsg) { sent = append(sent, m) })
	if len(sent) != 1 || sent[0][0].Label != 0 || sent[0][0].Count != 1 {
		t.Fatalf("generate sent %v", sent)
	}
	if l.NumCommunities() != 3 {
		t.Fatalf("communities = %d", l.NumCommunities())
	}
	l.Labels[1] = 0
	if l.NumCommunities() != 2 {
		t.Fatal("label change not reflected")
	}
	sizes := l.CommunitySizes()
	if !reflect.DeepEqual(sizes, []int{2, 1}) {
		t.Fatalf("sizes = %v", sizes)
	}
	if !l.Profile().Branchy || l.Profile().Reducible {
		t.Fatal("profile flags wrong")
	}
}
